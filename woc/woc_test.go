package woc

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"conceptweb/internal/lrec"
	"conceptweb/internal/webgen"
)

var (
	once sync.Once
	tsys *System
	tw   *webgen.World
)

func system(t *testing.T) (*webgen.World, *System) {
	t.Helper()
	once.Do(func() {
		cfg := webgen.DefaultConfig()
		cfg.Restaurants = 50
		cfg.ReviewArticles = 20
		cfg.TVArticles = 4
		w := webgen.Generate(cfg)
		sys, err := Build(w.Fetch, w.SeedURLs(),
			WithLocalDomain(w.Cities(), webgen.Cuisines()))
		if err != nil {
			panic(err)
		}
		tw, tsys = w, sys
	})
	return tw, tsys
}

func pickRestaurant(t *testing.T) (*webgen.Restaurant, Record) {
	w, sys := system(t)
	for _, r := range w.Restaurants {
		if r.Homepage == "" {
			continue
		}
		for _, rec := range sys.Records("restaurant") {
			if rec.Attrs["phone"] == r.Phone && rec.Attrs["homepage"] != "" {
				return r, rec
			}
		}
	}
	t.Fatal("no suitable restaurant")
	return nil, Record{}
}

func TestBuildStats(t *testing.T) {
	_, sys := system(t)
	st := sys.Stats()
	if st.PagesFetched == 0 || st.RecordsStored == 0 || st.Candidates == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFacadeSearch(t *testing.T) {
	r, rec := pickRestaurant(t)
	_, sys := system(t)
	page := sys.Search(r.Name+" "+r.City, 5)
	if page.Box == nil {
		t.Fatalf("no box for %q", r.Name)
	}
	if page.Box.Record.ID != rec.ID {
		t.Errorf("box record %s, want %s", page.Box.Record.ID, rec.ID)
	}
	if len(page.Results) == 0 || !page.Results[0].IsHomepage {
		t.Error("homepage not first")
	}
	if len(page.Assistance) == 0 {
		t.Error("no assistance")
	}
}

func TestFacadeConceptSearchAndRecord(t *testing.T) {
	r, rec := pickRestaurant(t)
	_, sys := system(t)
	hits := sys.ConceptSearch(r.Cuisine+" "+strings.ToLower(r.City), 10)
	if len(hits) == 0 {
		t.Fatal("no concept hits")
	}
	got, err := sys.Record(rec.ID)
	if err != nil || got.Concept != "restaurant" {
		t.Fatalf("record = %+v, %v", got, err)
	}
	if _, err := sys.Record("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v", err)
	}
}

func TestFacadeAggregateAndLineage(t *testing.T) {
	_, rec := pickRestaurant(t)
	_, sys := system(t)
	agg, err := sys.Aggregate(rec.ID)
	if err != nil || agg.Title == "" || len(agg.Sources) == 0 {
		t.Fatalf("agg = %+v, %v", agg, err)
	}
	lines, err := sys.Lineage(rec.ID)
	if err != nil || len(lines) == 0 {
		t.Fatalf("lineage = %v, %v", lines, err)
	}
	if _, err := sys.Aggregate("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v", err)
	}
}

func TestFacadeRecommendations(t *testing.T) {
	_, rec := pickRestaurant(t)
	_, sys := system(t)
	if _, err := sys.Alternatives(rec.ID, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Augmentations(rec.ID, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Alternatives("nope", 5); !errors.Is(err, ErrNotFound) {
		t.Error("missing-id alternatives should fail")
	}
}

func TestFacadeLinks(t *testing.T) {
	_, rec := pickRestaurant(t)
	_, sys := system(t)
	pages := sys.PagesAbout(rec.ID)
	if len(pages) == 0 {
		t.Fatal("no pages about record")
	}
	back := sys.RecordsOn(pages[0])
	found := false
	for _, id := range back {
		if id == rec.ID {
			found = true
		}
	}
	if !found {
		t.Error("assoc not symmetric")
	}
}

func TestFacadeRefresh(t *testing.T) {
	_, sys := system(t)
	urls := sys.PagesAbout(sys.Records("restaurant")[0].ID)
	if len(urls) == 0 {
		t.Skip("no pages")
	}
	st, err := sys.Refresh(urls[:1])
	if err != nil {
		t.Fatal(err)
	}
	if st.PagesChecked != 1 || st.PagesUnchanged != 1 {
		t.Errorf("refresh = %+v", st)
	}
}

func TestFacadeReconcile(t *testing.T) {
	_, sys := system(t)
	// Already reconciled once at Build; a second pass is a no-op.
	if n := sys.Reconcile("restaurant"); n != 0 {
		t.Errorf("second reconcile changed %d records", n)
	}
}

func TestDurableBuild(t *testing.T) {
	dir := t.TempDir()
	cfg := webgen.DefaultConfig()
	cfg.Restaurants = 15
	cfg.ReviewArticles = 4
	cfg.TVArticles = 2
	w := webgen.Generate(cfg)
	sys, err := Build(w.Fetch, w.SeedURLs(),
		WithLocalDomain(w.Cities(), webgen.Cuisines()),
		WithStoreDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	n := len(sys.Records("restaurant"))
	if n == 0 {
		t.Fatal("no records")
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	// The store survives the process: reopen it directly.
	reg := lrec.NewRegistry()
	webgen.RegisterConcepts(reg)
	st, err := lrec.Open(dir, lrec.WithRegistry(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if got := st.CountByConcept("restaurant"); got != n {
		t.Errorf("reopened store has %d restaurants, want %d", got, n)
	}
}

// TestStoreHealthSurfacesRecovery: a crash mid-append (torn log tail) must
// be visible through the facade after the next durable build, and a healthy
// system must report a clean bill.
func TestStoreHealthSurfacesRecovery(t *testing.T) {
	_, sys := system(t)
	if h := sys.StoreHealth(); h.Degraded != "" || h.TornTailRepaired {
		t.Errorf("in-memory system health = %+v, want clean", h)
	}

	dir := t.TempDir()
	cfg := webgen.DefaultConfig()
	cfg.Restaurants = 15
	cfg.ReviewArticles = 4
	cfg.TVArticles = 2
	w := webgen.Generate(cfg)
	opts := []Option{WithLocalDomain(w.Cities(), webgen.Cuisines()), WithStoreDir(dir)}
	sys1, err := Build(w.Fetch, w.SeedURLs(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys1.Close(); err != nil {
		t.Fatal(err)
	}
	// Crash simulation: tear the final log frame.
	logPath := filepath.Join(dir, "lrec.log")
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(logPath, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	sys2, err := Build(w.Fetch, w.SeedURLs(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Close()
	h := sys2.StoreHealth()
	if !h.TornTailRepaired || h.TruncatedBytes == 0 {
		t.Errorf("health after torn tail = %+v, want repaired tail", h)
	}
	if h.Degraded != "" {
		t.Errorf("health degraded = %q, want healthy", h.Degraded)
	}
	if h.LogFrames == 0 {
		t.Errorf("health = %+v, want replayed log frames", h)
	}
}

func TestBuildMaxPages(t *testing.T) {
	cfg := webgen.DefaultConfig()
	cfg.Restaurants = 15
	cfg.ReviewArticles = 4
	cfg.TVArticles = 2
	w := webgen.Generate(cfg)
	sys, err := Build(w.Fetch, w.SeedURLs(),
		WithLocalDomain(w.Cities(), webgen.Cuisines()), WithMaxPages(50))
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.Stats().PagesFetched; got > 50 {
		t.Errorf("fetched %d pages, cap was 50", got)
	}
}

func TestFacadeSearchWithinAndRelated(t *testing.T) {
	r, rec := pickRestaurant(t)
	_, sys := system(t)
	docs := sys.SearchWithin(rec.ID, r.Menu[0], 5)
	if len(docs) == 0 {
		t.Skipf("no in-concept docs for %q", r.Menu[0])
	}
	pages := sys.PagesAbout(rec.ID)
	member := map[string]bool{}
	for _, u := range pages {
		member[u] = true
	}
	for _, d := range docs {
		if !member[d.URL] {
			t.Errorf("result %s outside the concept", d.URL)
		}
	}
	if len(pages) > 0 {
		rel := sys.Related(pages[0], 3)
		if len(rel) == 0 {
			t.Error("no related pages")
		}
	}
}

func TestFacadeCategories(t *testing.T) {
	_, sys := system(t)
	cats := sys.Categories("restaurant", 8, "cuisine", "menu")
	if len(cats) < 4 {
		t.Fatalf("only %d categories", len(cats))
	}
	seen := map[string]bool{}
	for name, members := range cats {
		if name == "restaurant" {
			t.Error("root leaked into categories")
		}
		for _, id := range members {
			if seen[id] {
				t.Errorf("record %s in two categories", id)
			}
			seen[id] = true
			if _, err := sys.Record(id); err != nil {
				t.Errorf("category member %s not a record", id)
			}
		}
	}
}
