// Package woc is the public API of the web-of-concepts system: build a
// concept-centric view of a document web from any page fetcher, then query
// it — web search with concept boxes, concept search, aggregation pages,
// recommendations, lineage, and incremental maintenance.
//
// The heavy machinery (extraction, entity matching, classification, the
// lrec store) lives in internal packages; this facade exposes plain view
// types so downstream users never touch internals:
//
//	sys, err := woc.Build(fetcher, seeds, woc.WithLocalDomain(cities, cuisines))
//	page := sys.Search("gochi cupertino", 10)
//	if page.Box != nil { fmt.Println(page.Box.Name, page.Box.Address) }
package woc

import (
	"errors"
	"fmt"
	"sync"

	"conceptweb/internal/core"
	"conceptweb/internal/lrec"
	"conceptweb/internal/obs"
	"conceptweb/internal/search"
	"conceptweb/internal/session"
	"conceptweb/internal/webgen"
	"conceptweb/internal/webgraph"
)

// ErrNotFound is returned when a record ID does not exist.
var ErrNotFound = errors.New("woc: record not found")

// Fetcher retrieves the HTML of a URL. URLs are "host/path" strings.
type Fetcher func(url string) (html string, err error)

// Option configures a Build.
type Option func(*buildConfig)

type buildConfig struct {
	cities   []string
	cuisines []string
	maxPages int
	storeDir string
	shards   int
}

// WithLocalDomain sets the local-domain gazetteer knowledge (cities and
// cuisine categories) used by extraction and query parsing.
func WithLocalDomain(cities, cuisines []string) Option {
	return func(c *buildConfig) {
		c.cities = cities
		c.cuisines = cuisines
	}
}

// WithMaxPages bounds the crawl.
func WithMaxPages(n int) Option {
	return func(c *buildConfig) { c.maxPages = n }
}

// WithStoreDir persists the concept store durably in dir (WAL + snapshots);
// call Close when done.
func WithStoreDir(dir string) Option {
	return func(c *buildConfig) { c.storeDir = dir }
}

// WithShards partitions the concept store and the inverted indexes into n
// hash-routed shards, each with its own write-ahead log and lock, so build
// workers write concurrently into disjoint partitions. Results — records,
// version numbers, search rankings — are identical at any shard count; only
// throughput changes. 0 or 1 keeps the single-partition layout. For durable
// stores the count is pinned in the directory on first create, and a
// conflicting later value fails the build rather than misrouting records.
func WithShards(n int) Option {
	return func(c *buildConfig) { c.shards = n }
}

// System is a built web of concepts with its application layers.
//
// All methods are safe for concurrent use: read methods (Search, Aggregate,
// …) hold a shared lock while maintenance (Refresh, Reconcile) holds it
// exclusively, so a reader never observes a half-applied refresh — every
// response is computed against a single data generation (see Epoch).
type System struct {
	builder *core.Builder
	woc     *core.WebOfConcepts
	engine  *search.Engine
	trans   *session.Transitions
	stats   *core.BuildStats
	metrics *obs.Registry

	// mu is the read/maintenance seam: the store and index have their own
	// fine-grained locks, but nothing else guards the association maps and
	// engine state that Refresh/Reconcile mutate, so the facade serializes
	// maintenance against the whole read path.
	mu sync.RWMutex
}

// Epoch returns the current data generation: it advances whenever Refresh or
// Reconcile changes visible state. Cache results keyed by (query, epoch) and
// a maintenance pass invalidates the whole cache in O(1) — stale keys are
// simply never asked for again.
func (s *System) Epoch() uint64 { return s.woc.Epoch() }

// Build crawls from seeds through the fetcher and constructs the system.
func Build(fetch Fetcher, seeds []string, opts ...Option) (*System, error) {
	var cfg buildConfig
	for _, o := range opts {
		o(&cfg)
	}
	reg := lrec.NewRegistry()
	webgen.RegisterConcepts(reg)
	metrics := obs.NewRegistry()
	coreCfg := core.StandardConfig(reg, cfg.cities, cfg.cuisines)
	coreCfg.MaxPages = cfg.maxPages
	coreCfg.StoreDir = cfg.storeDir
	coreCfg.Shards = cfg.shards
	coreCfg.Metrics = metrics
	b := &core.Builder{Fetcher: webgraph.FetcherFunc(fetch), Cfg: coreCfg}
	built, stats, err := b.Build(seeds)
	if err != nil {
		return nil, fmt.Errorf("woc: build: %w", err)
	}
	built.Reconcile("restaurant", core.PreferSupport)
	b.EnrichMenus(built)
	eng := search.NewEngine(built, search.NewParser(cfg.cities, cfg.cuisines))
	eng.Metrics = metrics
	return &System{
		builder: b, woc: built, engine: eng,
		trans: session.NewTransitions(eng), stats: stats, metrics: metrics,
	}, nil
}

// Metrics returns the system's observability registry: build-stage latency
// histograms, store counters (lrec puts/gets/WAL appends/compactions), and
// query-layer counters and latencies. Servers can register their own
// instruments (e.g. per-endpoint HTTP histograms) into the same registry so
// one snapshot covers the whole system.
func (s *System) Metrics() *obs.Registry { return s.metrics }

// BuildTrace returns the per-stage timing tree of the construction run
// (crawl/extract/resolve/link/index); render it with Table().
func (s *System) BuildTrace() *obs.TraceReport { return s.stats.Trace }

// Stats summarizes what the build did.
type Stats struct {
	PagesFetched  int
	Candidates    int
	RecordsStored int
	PagesLinked   int
}

// Stats returns the build statistics.
func (s *System) Stats() Stats {
	return Stats{
		PagesFetched:  s.stats.PagesFetched,
		Candidates:    s.stats.Candidates,
		RecordsStored: s.stats.RecordsStored,
		PagesLinked:   s.stats.PagesLinked,
	}
}

// StoreHealth reports the durability state of the concept store: whether
// the last open had to repair a torn write-ahead-log tail (the previous
// process died mid-append), and whether a write failure has latched the
// store read-only. Serving layers should alarm on Degraded and note
// TornTailRepaired.
type StoreHealth struct {
	// Degraded is empty while the store accepts writes; otherwise it holds
	// the latched write/fsync error and the store is read-only until the
	// process restarts and recovery reruns.
	Degraded string
	// TornTailRepaired is true when opening the store truncated a torn
	// final log frame left by a crash; TruncatedBytes is how much was cut.
	// Only unacknowledged (never-synced) bytes are ever dropped.
	TornTailRepaired bool
	TruncatedBytes   int64
	// SnapshotRecords and LogFrames describe the recovery replay; for a
	// sharded store they aggregate across shards.
	SnapshotRecords int
	LogFrames       int
	// Shards holds the per-partition breakdown when the store has more than
	// one shard: a write failure latches only its shard, so the store can be
	// partially degraded — some partitions read-only, the rest serving
	// writes. Empty for single-shard stores.
	Shards []ShardHealth
}

// ShardHealth is one store partition's durability state.
type ShardHealth struct {
	Shard            int
	Records          int
	Degraded         string // empty while the shard accepts writes
	TornTailRepaired bool
	TruncatedBytes   int64
	WALBytes         int64
}

// StoreHealth returns the current durability state. For in-memory builds it
// is always healthy with zero counts.
func (s *System) StoreHealth() StoreHealth {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rec := s.woc.Records.Recovery()
	h := StoreHealth{
		TornTailRepaired: rec.TornTail,
		TruncatedBytes:   rec.TruncatedBytes,
		SnapshotRecords:  rec.SnapshotRecords,
		LogFrames:        rec.LogFrames,
	}
	if err := s.woc.Records.Degraded(); err != nil {
		h.Degraded = err.Error()
	}
	if s.woc.Records.NumShards() > 1 {
		for _, st := range s.woc.Records.ShardStates() {
			h.Shards = append(h.Shards, ShardHealth{
				Shard:            st.Shard,
				Records:          st.Records,
				Degraded:         st.Degraded,
				TornTailRepaired: st.Recovery.TornTail,
				TruncatedBytes:   st.Recovery.TruncatedBytes,
				WALBytes:         st.WALBytes,
			})
		}
	}
	return h
}

// Record is the public view of an lrec: its best attribute values.
type Record struct {
	ID         string
	Concept    string
	Attrs      map[string]string
	Confidence float64
}

func viewRecord(r *lrec.Record) Record {
	out := Record{ID: r.ID, Concept: r.Concept, Attrs: map[string]string{},
		Confidence: r.Confidence()}
	for _, k := range r.Keys() {
		out.Attrs[k] = r.Get(k)
	}
	return out
}

// Record fetches one record by ID.
func (s *System) Record(id string) (Record, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, err := s.woc.Records.Get(id)
	if err != nil {
		return Record{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return viewRecord(r), nil
}

// Records lists the records of a concept.
func (s *System) Records(concept string) []Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rs := s.woc.Records.ByConcept(concept)
	out := make([]Record, len(rs))
	for i, r := range rs {
		out[i] = viewRecord(r)
	}
	return out
}

// Box is the concept box shown above web results (Figure 1 of the paper).
type Box struct {
	Record   Record
	Name     string
	Address  string
	Phone    string
	Rating   string
	Homepage string
	Reviews  []string
	// RequestedKey/RequestedValue carry the attribute the query asked for
	// ("<name> menu"), when known.
	RequestedKey   string
	RequestedValue string
	Confidence     float64
}

// Doc is one ranked web result.
type Doc struct {
	URL        string
	Score      float64
	IsHomepage bool
	RecordIDs  []string
}

// Page is a full search response.
type Page struct {
	Box        *Box
	Results    []Doc
	Assistance []string
}

// Search answers a web query with concept-aware ranking.
func (s *System) Search(query string, k int) *Page {
	defer s.metrics.TimeWindowed("api.search")()
	s.mu.RLock()
	defer s.mu.RUnlock()
	res := s.engine.Search(query, k)
	page := &Page{Assistance: res.Assistance}
	if res.Box != nil {
		page.Box = &Box{
			Record: viewRecord(res.Box.Record), Name: res.Box.Name,
			Address: res.Box.Address, Phone: res.Box.Phone,
			Rating: res.Box.Rating, Homepage: res.Box.Homepage,
			Reviews: res.Box.Reviews, Confidence: res.Box.Confidence,
			RequestedKey:   res.Box.Requested.Key,
			RequestedValue: res.Box.Requested.Value,
		}
	}
	for _, d := range res.Results {
		page.Results = append(page.Results, Doc{URL: d.URL, Score: d.Score,
			IsHomepage: d.IsHomepage, RecordIDs: d.RecordIDs})
	}
	return page
}

// Hit is one concept-search result.
type Hit struct {
	Record Record
	Score  float64
}

// ConceptSearch retrieves records (not documents) answering the query.
func (s *System) ConceptSearch(query string, k int) []Hit {
	defer s.metrics.TimeWindowed("api.concepts")()
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Hit
	for _, h := range s.engine.ConceptSearch(query, nil, k) {
		out = append(out, Hit{Record: viewRecord(h.Record), Score: h.Score})
	}
	return out
}

// Aggregation is the unified everything-about-one-instance page.
type Aggregation struct {
	Title string
	Attrs map[string]string
	// Conflicts maps attributes to values that disagree with the chosen one.
	Conflicts map[string][]string
	Sources   []Source
	Reviews   []string
}

// Source is one contributing source with trust metadata.
type Source struct {
	URL   string
	Kind  string
	Trust float64
}

// Aggregate builds the aggregation page for a record.
func (s *System) Aggregate(id string) (*Aggregation, error) {
	defer s.metrics.TimeWindowed("api.aggregate")()
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, err := s.engine.Aggregate(id)
	if err != nil {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	out := &Aggregation{Title: p.Title, Attrs: map[string]string{},
		Conflicts: map[string][]string{}, Reviews: p.Reviews}
	for _, av := range p.Attrs {
		out.Attrs[av.Key] = av.Value
		if len(av.Conflicts) > 0 {
			out.Conflicts[av.Key] = av.Conflicts
		}
	}
	for _, src := range p.Sources {
		out.Sources = append(out.Sources, Source{URL: src.URL, Kind: src.Kind, Trust: src.Trust})
	}
	return out, nil
}

// Suggestion is one recommended record.
type Suggestion struct {
	Record Record
	Reason string
	Score  float64
}

// Alternatives recommends substitutes for a record (same city/cuisine,
// not clearly worse).
func (s *System) Alternatives(id string, k int) ([]Suggestion, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	recs, err := s.trans.Rec.Alternatives(id, k)
	if err != nil {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return viewSuggestions(recs), nil
}

// Augmentations recommends complements for a record (accessories, nearby
// events).
func (s *System) Augmentations(id string, k int) ([]Suggestion, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	recs, err := s.trans.Rec.Augmentations(id, k)
	if err != nil {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return viewSuggestions(recs), nil
}

func viewSuggestions(recs []session.Recommendation) []Suggestion {
	out := make([]Suggestion, len(recs))
	for i, r := range recs {
		out[i] = Suggestion{Record: viewRecord(r.Record), Reason: r.Reason, Score: r.Score}
	}
	return out
}

// PagesAbout returns the URLs semantically linked to a record.
func (s *System) PagesAbout(id string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.woc.PagesOf(id)
}

// RecordsOn returns the record IDs a page is about.
func (s *System) RecordsOn(url string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.woc.AssocOf(url)
}

// Lineage explains where every value of a record came from (§7.3).
func (s *System) Lineage(id string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	lines, err := s.woc.Lineage(id)
	if err != nil {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return lines, nil
}

// RefreshStats reports an incremental maintenance pass.
type RefreshStats struct {
	PagesChecked   int
	PagesUnchanged int
	PagesChanged   int
	// PagesGone counts URLs whose fetch failed: the page left the corpus
	// and its lineage was retired (it may resurrect on a later pass).
	PagesGone      int
	RecordsUpdated int
	RecordsCreated int
	// RecordsSuperseded counts records retired and rebuilt from their
	// re-extracted hosts; RecordsDeleted counts records the new corpus no
	// longer supports.
	RecordsSuperseded int
	RecordsDeleted    int
	// PagesRelinked counts free-text pages whose concept link changed in
	// the pass's relink stage.
	PagesRelinked int
	// Epoch is the data generation after the pass; it advanced only if the
	// pass changed visible state.
	Epoch uint64
}

// Refresh re-fetches the given URLs, skipping extraction on unmodified pages
// and folding changes into existing records. It holds the maintenance lock:
// in-flight reads drain first, and no read observes a half-applied pass.
func (s *System) Refresh(urls []string) (RefreshStats, error) {
	defer s.metrics.TimeWindowed("api.refresh")()
	s.mu.Lock()
	defer s.mu.Unlock()
	st, err := s.builder.Refresh(s.woc, urls)
	if err != nil {
		return RefreshStats{}, err
	}
	return RefreshStats{
		PagesChecked: st.PagesChecked, PagesUnchanged: st.PagesUnchanged,
		PagesChanged: st.PagesChanged, PagesGone: st.PagesGone,
		RecordsUpdated: st.RecordsUpdated, RecordsCreated: st.RecordsCreated,
		RecordsSuperseded: st.RecordsSuperseded, RecordsDeleted: st.RecordsDeleted,
		PagesRelinked: st.PagesRelinked, Epoch: st.Epoch,
	}, nil
}

// PageURLs returns every URL currently in the page store, sorted. The
// maintenance loop (internal/maintain) selects refresh cohorts from it;
// URLs that went gone drop out and resurrect here as passes discover them.
func (s *System) PageURLs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.woc.Pages.URLs()
}

// Reconcile trims attribute values violating the concept's multiplicity
// constraints, preferring well-supported values. Returns records changed.
// Like Refresh it holds the maintenance lock exclusively.
func (s *System) Reconcile(concept string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.woc.Reconcile(concept, core.PreferSupport)
}

// Close flushes and closes the underlying store (needed for WithStoreDir
// builds; a no-op otherwise).
func (s *System) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.woc.Close()
}

// SearchWithin searches documents restricted to the pages associated with a
// record — Table 1's "search within concept".
func (s *System) SearchWithin(id, query string, k int) []Doc {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Doc
	for _, d := range s.engine.SearchWithinConcept(id, query, k) {
		out = append(out, Doc{URL: d.URL, Score: d.Score, RecordIDs: d.RecordIDs})
	}
	return out
}

// Related returns pages similar to the given page (Table 1's "related
// pages"), by text similarity plus shared concept references.
func (s *System) Related(url string, k int) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	for _, l := range s.trans.ArticleToArticle(url, k) {
		out = append(out, l.Target)
	}
	return out
}

// Categories organizes a concept's records into data-driven sub-concepts
// (§2.3's data-driven taxonomy): records cluster by the text of the given
// attributes, and the result maps each discovered sub-concept label to its
// member record IDs.
func (s *System) Categories(concept string, k int, attrs ...string) map[string][]string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	tax := s.woc.DataTaxonomy(concept, concept, k, attrs...)
	out := make(map[string][]string)
	for _, node := range tax.Nodes() {
		if node == concept {
			continue
		}
		if members := tax.InstancesOf(node); len(members) > 0 {
			out[node] = members
		}
	}
	return out
}
