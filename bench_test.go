// Experiment harness: one benchmark per paper artifact (E1–E4 usage
// studies, F1 concept box, T1 transition matrix) plus the A-series
// ablations DESIGN.md calls out. Each benchmark measures the throughput of
// the code path under test AND reports the reproduced statistic as custom
// metrics, so `go test -bench=. -benchmem` regenerates every number in
// EXPERIMENTS.md in one run.
package conceptweb

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"

	"conceptweb/internal/ads"
	"conceptweb/internal/bootstrap"
	"conceptweb/internal/classify"
	"conceptweb/internal/core"
	"conceptweb/internal/extract"
	"conceptweb/internal/logsim"
	"conceptweb/internal/lrec"
	"conceptweb/internal/match"
	"conceptweb/internal/search"
	"conceptweb/internal/session"
	"conceptweb/internal/textproc"
	"conceptweb/internal/webgen"
	"conceptweb/internal/webgraph"
)

// Shared fixture: one world, one build, one log corpus for every benchmark.
var (
	fixOnce sync.Once
	fxWorld *webgen.World
	fxWoc   *core.WebOfConcepts
	fxBld   *core.Builder
	fxEng   *search.Engine
	fxLogs  *logsim.Logs
)

func fixture(b *testing.B) (*webgen.World, *core.WebOfConcepts, *search.Engine, *logsim.Logs) {
	b.Helper()
	fixOnce.Do(func() {
		fxWorld = webgen.Generate(webgen.DefaultConfig())
		reg := lrec.NewRegistry()
		webgen.RegisterConcepts(reg)
		fxBld = &core.Builder{Fetcher: fxWorld,
			Cfg: core.StandardConfig(reg, fxWorld.Cities(), webgen.Cuisines())}
		woc, _, err := fxBld.Build(fxWorld.SeedURLs())
		if err != nil {
			panic(err)
		}
		woc.Reconcile("restaurant", core.PreferSupport)
		fxWoc = woc
		fxEng = search.NewEngine(woc, search.NewParser(fxWorld.Cities(), webgen.Cuisines()))
		fxLogs = logsim.NewSimulator(fxWorld, logsim.DefaultConfig()).Run()
	})
	return fxWorld, fxWoc, fxEng, fxLogs
}

// --- E1–E4: the §3 usage studies ---

func BenchmarkE1ConceptsVsSearch(b *testing.B) {
	_, _, _, logs := fixture(b)
	var res logsim.E1Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = logsim.AnalyzeE1(logs, webgen.PrimaryAggregator)
	}
	b.ReportMetric(100*res.BizFrac, "biz%")       // paper: 59
	b.ReportMetric(100*res.SearchFrac, "search%") // paper: 19
	b.ReportMetric(100*res.CatFrac, "cat%")       // paper: 11
}

func BenchmarkE2AttributeSearch(b *testing.B) {
	w, _, _, logs := fixture(b)
	var res logsim.E2Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = logsim.AnalyzeE2(logs, w)
	}
	frac := map[string]float64{}
	for _, tf := range res.Tokens {
		frac[tf.Token] = tf.Frac
	}
	b.ReportMetric(100*frac["menu"], "menu%")           // paper: 3
	b.ReportMetric(100*frac["coupons"], "coupons%")     // paper: 1.8
	b.ReportMetric(100*frac["locations"], "locations%") // paper: 1.5
}

func BenchmarkE3Aggregation(b *testing.B) {
	_, _, _, logs := fixture(b)
	var res logsim.E3Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = logsim.AnalyzeE3(logs, webgen.PrimaryAggregator)
	}
	b.ReportMetric(100*res.AtLeast1Other, "ge1other%") // paper: 59
	b.ReportMetric(100*res.AtLeast2Other, "ge2other%") // paper: 35
}

func BenchmarkE4Browsing(b *testing.B) {
	w, _, _, logs := fixture(b)
	var res logsim.E4Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = logsim.AnalyzeE4(logs, w)
	}
	b.ReportMetric(100*res.SearchPreceded, "preceded%")  // paper: 42
	b.ReportMetric(100*res.NextLocationFrac, "nextLoc%") // paper: 11.5
	b.ReportMetric(100*res.NextMenuFrac, "nextMenu%")    // paper: 9
	b.ReportMetric(100*res.MultiInstance, "multi%")      // paper: 10.5
}

// --- F1: the Figure 1 concept box ---

func BenchmarkF1ConceptBox(b *testing.B) {
	w, _, eng, _ := fixture(b)
	var queries []string
	for _, r := range w.Restaurants {
		queries = append(queries, r.Name+" "+r.City)
	}
	triggered, correct := 0, 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		page := eng.Search(q, 8)
		if page.Box != nil {
			triggered++
			r := w.Restaurants[i%len(queries)]
			if textproc.Normalize(page.Box.Record.Get("zip")) == r.Zip {
				correct++
			}
		}
	}
	if triggered > 0 {
		b.ReportMetric(100*float64(triggered)/float64(b.N), "trigger%")
		b.ReportMetric(100*float64(correct)/float64(triggered), "boxAcc%")
	}
}

// --- T1: the Table 1 transition matrix, one sub-benchmark per cell ---

func BenchmarkT1Transitions(b *testing.B) {
	w, woc, eng, _ := fixture(b)
	tr := session.NewTransitions(eng)
	var rec *lrec.Record
	var rest *webgen.Restaurant
	for _, r := range w.Restaurants {
		if r.Homepage == "" {
			continue
		}
		recs := woc.Records.ByAttr("restaurant", "phone", r.Phone)
		if len(recs) == 1 {
			rec, rest = recs[0], r
			break
		}
	}
	if rec == nil {
		b.Fatal("no fixture restaurant")
	}
	q := rest.Cuisine + " " + strings.ToLower(rest.City)
	article := ""
	if arts := woc.PagesOf(rec.ID); len(arts) > 0 {
		article = arts[0]
	}
	cells := []struct {
		name string
		fn   func() int
	}{
		{"assistance", func() int { return len(tr.ResultToResult(q, 5)) }},
		{"concept-search", func() int { return len(tr.ResultToConcept(q, 5)) }},
		{"vanilla-search", func() int { return len(tr.ResultToArticle(q, 5)) }},
		{"search-within-concept", func() int { return len(tr.ConceptToResult(rec.ID, rest.Menu[0], 5)) }},
		{"concept-recommendation", func() int { return len(tr.ConceptToConcept(rec.ID, 5)) }},
		{"semantic-linking-c2a", func() int { return len(tr.ConceptToArticle(rec.ID, 5)) }},
		{"semantic-linking-a2c", func() int { return len(tr.ArticleToConcept(article, 5)) }},
		{"related-pages", func() int { return len(tr.ArticleToArticle(article, 5)) }},
	}
	for _, cell := range cells {
		b.Run(cell.name, func(b *testing.B) {
			n := 0
			for i := 0; i < b.N; i++ {
				n = cell.fn()
			}
			b.ReportMetric(float64(n), "links")
		})
	}
}

// --- A1: extraction quality, domain-centric vs. the §4.1 baselines ---

func BenchmarkA1ExtractionQuality(b *testing.B) {
	w, _, _, _ := fixture(b)

	// Ground truth per aggregator category page.
	type labeled struct {
		page   *webgraph.Page
		names  map[string]bool
		nTruth int
	}
	siteOf := func(host string) []labeled {
		site, _ := w.SiteByHost(host)
		var out []labeled
		for _, p := range site.Pages {
			if p.Truth.Kind != webgen.KindCategory {
				continue
			}
			names := map[string]bool{}
			for _, id := range p.Truth.EntityIDs {
				r, _ := w.RestaurantByID(id)
				for v := 0; v < 3; v++ {
					names[textproc.Normalize(r.NameVariant(v))] = true
				}
			}
			out = append(out, labeled{webgraph.NewPage(p.URL, p.HTML), names, len(p.Truth.EntityIDs)})
		}
		return out
	}
	score := func(cands []*extract.Candidate, pages []labeled) (prec, rec float64) {
		truthTotal, tp, fp := 0, 0, 0
		byURL := map[string][]*extract.Candidate{}
		for _, c := range cands {
			byURL[c.SourceURL] = append(byURL[c.SourceURL], c)
		}
		for _, lp := range pages {
			truthTotal += lp.nTruth
			for _, c := range byURL[lp.page.URL] {
				if lp.names[textproc.Normalize(c.Get("name"))] {
					tp++
				} else {
					fp++
				}
			}
		}
		if tp+fp > 0 {
			prec = float64(tp) / float64(tp+fp)
		}
		if truthTotal > 0 {
			rec = float64(tp) / float64(truthTotal)
		}
		return prec, rec
	}

	welp := siteOf("welp.example")
	citysift := siteOf("citysift.example")
	domain := extract.RestaurantDomain(w.Cities(), webgen.Cuisines())

	b.Run("domain-centric", func(b *testing.B) {
		var prec, rec float64
		for i := 0; i < b.N; i++ {
			prop := &extract.SitePropagator{Inner: &extract.ListExtractor{Domain: domain}}
			var cands []*extract.Candidate
			for _, site := range [][]labeled{welp, citysift} {
				var pages []*webgraph.Page
				for _, lp := range site {
					pages = append(pages, lp.page)
				}
				cands = append(cands, prop.ExtractSite(pages)...)
			}
			prec, rec = score(cands, append(append([]labeled{}, welp...), citysift...))
		}
		b.ReportMetric(100*prec, "prec%")
		b.ReportMetric(100*rec, "rec%")
	})

	// Wrapper trained on welp biz pages, applied same-site and cross-site.
	var exs []extract.LabeledExample
	site, _ := w.SiteByHost("welp.example")
	for _, p := range site.Pages {
		if p.Truth.Kind == webgen.KindBiz && len(exs) < 3 {
			exs = append(exs, extract.LabeledExample{
				Page: webgraph.NewPage(p.URL, p.HTML),
				Attrs: map[string]string{"name": p.Truth.Attrs["name"],
					"zip": p.Truth.Attrs["zip"], "phone": p.Truth.Attrs["phone"]},
			})
		}
	}
	scoreBiz := func(wr *extract.Wrapper, host string) float64 {
		st, _ := w.SiteByHost(host)
		ok, total := 0, 0
		for _, p := range st.Pages {
			if p.Truth.Kind != webgen.KindBiz {
				continue
			}
			total++
			for _, c := range wr.Extract(webgraph.NewPage(p.URL, p.HTML)) {
				if textproc.Normalize(c.Get("name")) == textproc.Normalize(p.Truth.Attrs["name"]) &&
					c.Get("zip") == p.Truth.Attrs["zip"] {
					ok++
				}
			}
		}
		if total == 0 {
			return 0
		}
		return float64(ok) / float64(total)
	}
	b.Run("wrapper", func(b *testing.B) {
		var same, cross float64
		for i := 0; i < b.N; i++ {
			wr, err := extract.InduceWrapper("restaurant", "welp.example", exs)
			if err != nil {
				b.Fatal(err)
			}
			same = scoreBiz(wr, "welp.example")
			cross = scoreBiz(wr, "citysift.example")
		}
		b.ReportMetric(100*same, "sameSite%")
		b.ReportMetric(100*cross, "crossSite%")
	})
}

// --- A2: relational classification ---

func BenchmarkA2RelationalClassification(b *testing.B) {
	w, _, _, _ := fixture(b)
	trainNB := func(perCatBudget int) *classify.NaiveBayes {
		nb := classify.NewNaiveBayes()
		perCat := map[string]int{}
		for _, city := range w.Cities()[:2] {
			site, _ := w.SiteByHost(webgen.PortalHost(city))
			for _, p := range site.Pages {
				if perCat[p.Truth.Category] >= perCatBudget {
					continue
				}
				perCat[p.Truth.Category]++
				nb.Train(classify.Features(webgraph.NewPage(p.URL, p.HTML)), p.Truth.Category)
			}
		}
		return nb
	}
	evalCity := func(nb *classify.NaiveBayes, city string, refine bool) (float64, int) {
		site, _ := w.SiteByHost(webgen.PortalHost(city))
		st := webgraph.NewStore()
		var labeled []classify.PageLabel
		truth := map[string]string{}
		for _, p := range site.Pages {
			pg := webgraph.NewPage(p.URL, p.HTML)
			st.Put(pg)
			label, probs := nb.Predict(classify.Features(pg))
			labeled = append(labeled, classify.PageLabel{URL: p.URL, Label: label, Probs: probs})
			truth[p.URL] = p.Truth.Category
		}
		final := map[string]classify.PageLabel{}
		if refine {
			final = classify.Refine(labeled, webgraph.BuildGraph(st), classify.DefaultRefineOptions())
		} else {
			for _, pl := range labeled {
				final[pl.URL] = pl
			}
		}
		ok, total := 0, 0
		for u, want := range truth {
			total++
			if final[u].Label == want {
				ok++
			}
		}
		return float64(ok) / float64(total), total
	}
	evalAll := func(nb *classify.NaiveBayes) (global, refined float64) {
		var g, r float64
		n := 0
		for _, city := range w.Cities()[2:] {
			cg, _ := evalCity(nb, city, false)
			cr, _ := evalCity(nb, city, true)
			g += cg
			r += cr
			n++
		}
		return g / float64(n), r / float64(n)
	}
	// Training-budget sweep: smaller labeled samples make the global
	// classifier noisier and the relational refinement more valuable.
	for _, budget := range []int{1, 2, 4, 8} {
		budget := budget
		b.Run(fmt.Sprintf("budget-%d", budget), func(b *testing.B) {
			nb := trainNB(budget)
			var g, r float64
			for i := 0; i < b.N; i++ {
				g, r = evalAll(nb)
			}
			b.ReportMetric(100*g, "globalAcc%")
			b.ReportMetric(100*r, "refinedAcc%")
			b.ReportMetric(100*(r-g), "gain%")
		})
	}
}

// --- A3: bootstrapping growth ---

func BenchmarkA3Bootstrap(b *testing.B) {
	w, _, _, _ := fixture(b)
	var pages []*webgraph.Page
	for _, p := range w.Pages() {
		if p.Truth.Kind == webgen.KindMenu {
			pages = append(pages, webgraph.NewPage(p.URL, p.HTML))
		}
	}
	var seeds []string
	for _, r := range w.Restaurants {
		if r.Cuisine == "italian" && len(r.Menu) >= 3 {
			seeds = r.Menu[:3]
			break
		}
	}
	var res *bootstrap.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bs := &bootstrap.Bootstrapper{Concept: "menuitem", CategoryKey: "cuisine"}
		res = bs.Run(pages, map[string][]string{"italian": seeds})
	}
	truth := map[string]bool{}
	for _, r := range w.Restaurants {
		if r.Cuisine == "italian" {
			for _, d := range r.Menu {
				truth[textproc.Normalize(d)] = true
			}
		}
	}
	good := 0
	for _, c := range res.Candidates {
		if truth[textproc.Normalize(c.Get("name"))] {
			good++
		}
	}
	b.ReportMetric(float64(len(res.Candidates)), "harvested")
	b.ReportMetric(float64(len(res.Rounds)), "rounds")
	if len(res.Candidates) > 0 {
		b.ReportMetric(100*float64(good)/float64(len(res.Candidates)), "prec%")
	}
}

// --- A4: entity matching F1, exact-ID vs pairwise vs collective ---

func BenchmarkA4Matching(b *testing.B) {
	w, _, _, _ := fixture(b)
	// Build per-source records with ground-truth entity labels.
	type labeledRec struct {
		rec    *lrec.Record
		entity string
	}
	var recs []labeledRec
	for _, p := range w.Pages() {
		if p.Truth.Kind != webgen.KindBiz {
			continue
		}
		r, _ := w.RestaurantByID(p.Truth.EntityIDs[0])
		rec := lrec.NewRecord(p.URL, "restaurant").
			Set("name", p.Truth.Attrs["name"]).
			Set("street", p.Truth.Attrs["street"]).
			Set("city", p.Truth.Attrs["city"]).
			Set("zip", p.Truth.Attrs["zip"]).
			Set("phone", p.Truth.Attrs["phone"])
		recs = append(recs, labeledRec{rec, r.ID})
	}
	plain := make([]*lrec.Record, len(recs))
	entityOf := map[string]string{}
	for i, lr := range recs {
		plain[i] = lr.rec
		entityOf[lr.rec.ID] = lr.entity
	}
	pairwiseF1 := func(clusters []match.Cluster) float64 {
		// Pair-level precision/recall against entity labels.
		var tp, fp int
		inSame := map[[2]string]bool{}
		for _, cl := range clusters {
			for i := 0; i < len(cl.Members); i++ {
				for j := i + 1; j < len(cl.Members); j++ {
					a, b := cl.Members[i], cl.Members[j]
					inSame[[2]string{a, b}] = true
					if entityOf[a] == entityOf[b] {
						tp++
					} else {
						fp++
					}
				}
			}
		}
		truthPairs := 0
		byEntity := map[string][]string{}
		for id, e := range entityOf {
			byEntity[e] = append(byEntity[e], id)
		}
		for _, ids := range byEntity {
			truthPairs += len(ids) * (len(ids) - 1) / 2
		}
		if tp == 0 {
			return 0
		}
		prec := float64(tp) / float64(tp+fp)
		rec := float64(tp) / float64(truthPairs)
		return 2 * prec * rec / (prec + rec)
	}

	m := match.NewMatcher(match.RestaurantComparators())
	var exactF1, pairF1, collF1 float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Baseline: exact normalized-name+zip identity.
		groups := map[string][]string{}
		for _, r := range plain {
			k := textproc.NormalizeKey(r.Get("name")) + ":" + r.Get("zip")
			groups[k] = append(groups[k], r.ID)
		}
		var exact []match.Cluster
		for _, ids := range groups {
			exact = append(exact, match.Cluster{Members: ids})
		}
		exactF1 = pairwiseF1(exact)
		pairF1 = pairwiseF1(match.PairwiseResolve(plain, m))
		collF1 = pairwiseF1(match.Resolve(plain, m, match.DefaultCollectiveOptions()))
	}
	b.ReportMetric(100*exactF1, "exactF1%")
	b.ReportMetric(100*pairF1, "pairwiseF1%")
	b.ReportMetric(100*collF1, "collectiveF1%")
}

// --- A5: ranking augmentation (homepage MRR) ---

func BenchmarkA5RankingAugmentation(b *testing.B) {
	w, _, eng, _ := fixture(b)
	var targets []*webgen.Restaurant
	for _, r := range w.Restaurants {
		if r.Homepage != "" {
			targets = append(targets, r)
		}
	}
	mrr := func(boost bool) float64 {
		hb, ab := eng.HomepageBoost, eng.AssocBoost
		if !boost {
			eng.HomepageBoost, eng.AssocBoost = 0, 0
		}
		defer func() { eng.HomepageBoost, eng.AssocBoost = hb, ab }()
		var sum float64
		for _, r := range targets {
			page := eng.Search(r.Name+" "+r.City, 10)
			want := strings.TrimSuffix(r.Homepage, "/") + "/"
			for i, res := range page.Results {
				if res.URL == want {
					sum += 1 / float64(i+1)
					break
				}
			}
		}
		return sum / float64(len(targets))
	}
	var plain, aug float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plain = mrr(false)
		aug = mrr(true)
	}
	b.ReportMetric(plain, "plainMRR")
	b.ReportMetric(aug, "augMRR")
}

// --- A6: incremental maintenance vs full rebuild ---

func BenchmarkA6Maintenance(b *testing.B) {
	w, woc, _, _ := fixture(b)
	urls := woc.Pages.URLs()
	refresh := urls
	if len(refresh) > 300 {
		refresh = refresh[:300]
	}
	b.Run("refresh-unchanged", func(b *testing.B) {
		var st *core.RefreshStats
		for i := 0; i < b.N; i++ {
			var err error
			st, err = fxBld.Refresh(woc, refresh)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(st.PagesUnchanged), "skipped")
	})
	b.Run("full-rebuild", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			reg := lrec.NewRegistry()
			webgen.RegisterConcepts(reg)
			bb := &core.Builder{Fetcher: w,
				Cfg: core.StandardConfig(reg, w.Cities(), webgen.Cuisines())}
			if _, _, err := bb.Build(w.SeedURLs()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- A7: advertising — keyword vs concept bidding ---

func BenchmarkA7Advertising(b *testing.B) {
	w, woc, _, _ := fixture(b)
	inv := ads.NewInventory()
	// One concept bidder per zip, one keyword bidder on generic words.
	zips := map[string]bool{}
	for _, r := range w.Restaurants {
		zips[r.Zip] = true
	}
	for z := range zips {
		inv.Add(ads.Ad{ID: "zip-" + z, Bid: 1,
			Targets: []ads.Target{{Concept: "restaurant", Key: "zip", Value: z}}})
	}
	inv.Add(ads.Ad{ID: "kw-food", Bid: 1, Keywords: []string{"restaurant", "food", "menu"}})

	recs := woc.Records.ByConcept("restaurant")
	var conceptWins, kwWins, served int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conceptWins, kwWins, served = 0, 0, 0
		for _, rec := range recs {
			ctx := ads.Context{Query: textproc.Normalize(rec.Get("name")), Record: rec}
			ps := ads.Auction(inv, ctx, 1)
			if len(ps) == 0 {
				continue
			}
			served++
			if strings.HasPrefix(ps[0].Ad.ID, "zip-") {
				// A win only counts if the targeting was actually right.
				if ps[0].Ad.ID == "zip-"+rec.Get("zip") {
					conceptWins++
				}
			} else {
				kwWins++
			}
		}
	}
	if served > 0 {
		b.ReportMetric(100*float64(conceptWins)/float64(served), "conceptWin%")
		b.ReportMetric(100*float64(kwWins)/float64(served), "keywordWin%")
	}
}

// --- A8: the lrec store ---

func BenchmarkA8StorePut(b *testing.B) {
	s := lrec.NewMemStore()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := lrec.NewRecord(fmt.Sprintf("r%d", i), "restaurant").
			Set("name", "Bench Cafe").Set("zip", "95014").Set("phone", "408-555-0101")
		if err := s.Put(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkA8StoreGet(b *testing.B) {
	s := lrec.NewMemStore()
	for i := 0; i < 10000; i++ {
		s.Put(lrec.NewRecord(fmt.Sprintf("r%d", i), "restaurant").Set("name", "X"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Get(fmt.Sprintf("r%d", i%10000)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkA8StoreByAttr(b *testing.B) {
	s := lrec.NewMemStore()
	for i := 0; i < 5000; i++ {
		s.Put(lrec.NewRecord(fmt.Sprintf("r%d", i), "restaurant").
			Set("city", []string{"Cupertino", "San Jose", "Sunnyvale"}[i%3]))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := s.ByAttr("restaurant", "city", "Cupertino"); len(got) == 0 {
			b.Fatal("no hits")
		}
	}
}

func BenchmarkA8StoreDurable(b *testing.B) {
	dir := b.TempDir()
	s, err := lrec.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := lrec.NewRecord(fmt.Sprintf("r%d", i), "restaurant").
			Set("name", "Bench Cafe").Set("zip", "95014")
		if err := s.Put(r); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := s.Sync(); err != nil {
		b.Fatal(err)
	}
}

// --- end-to-end search latency ---

func BenchmarkSearchLatency(b *testing.B) {
	w, _, eng, _ := fixture(b)
	var queries []string
	for _, r := range w.Restaurants[:40] {
		queries = append(queries, r.Name+" "+r.City)
		queries = append(queries, "best "+r.Cuisine+" "+strings.ToLower(r.City))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Search(queries[i%len(queries)], 8)
	}
}

// BenchmarkBuildPipeline is the end-to-end construction benchmark. The
// worker pool defaults to GOMAXPROCS, so `-cpu 1,4,8` measures the parallel
// extract/link/index speedup directly (see EXPERIMENTS.md); per-stage wall
// times from the build trace are reported as custom metrics, and successive
// PRs archive the output as BENCH_*.json.
func BenchmarkBuildPipeline(b *testing.B) {
	cfg := webgen.DefaultConfig()
	cfg.Restaurants = 40
	cfg.ReviewArticles = 10
	cfg.TVArticles = 4
	w := webgen.Generate(cfg)
	var stats *core.BuildStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg := lrec.NewRegistry()
		webgen.RegisterConcepts(reg)
		bb := &core.Builder{Fetcher: w, Cfg: core.StandardConfig(reg, w.Cities(), webgen.Cuisines())}
		var err error
		if _, stats, err = bb.Build(w.SeedURLs()); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if stats == nil || stats.Trace == nil {
		return
	}
	b.ReportMetric(float64(stats.Workers), "workers")
	reportHostParallelism(b)
	for _, st := range []string{"crawl", "extract", "resolve", "link", "index"} {
		if n := stats.Trace.Find(st); n != nil {
			b.ReportMetric(float64(n.Duration)/1e6, st+"_ms")
		}
	}
}

// reportHostParallelism stamps the archive-bound benchmark output with the
// host's core count and scheduler width, so archived numbers (BENCH_*.json)
// are interpretable: a shard/worker sweep on a 1-core host measures overhead
// ceilings, not speedups.
func reportHostParallelism(b *testing.B) {
	b.ReportMetric(float64(runtime.NumCPU()), "numcpu")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
}

// BenchmarkBuildShards sweeps the (workers x shards) grid over the same
// fixed world as BenchmarkBuildPipeline. Output is identical at every grid
// point (the determinism matrix test proves it), so this curve isolates the
// pure cost/benefit of partitioning: per-shard WAL/index lock contention
// relief at high worker counts, routing and scatter-gather overhead at one.
// Successive PRs archive the medians as BENCH_PR7.json.
func BenchmarkBuildShards(b *testing.B) {
	cfg := webgen.DefaultConfig()
	cfg.Restaurants = 40
	cfg.ReviewArticles = 10
	cfg.TVArticles = 4
	w := webgen.Generate(cfg)
	for _, workers := range []int{1, 8} {
		for _, shards := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("workers=%d/shards=%d", workers, shards), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					reg := lrec.NewRegistry()
					webgen.RegisterConcepts(reg)
					c := core.StandardConfig(reg, w.Cities(), webgen.Cuisines())
					c.Workers = workers
					c.Shards = shards
					bb := &core.Builder{Fetcher: w, Cfg: c}
					if _, _, err := bb.Build(w.SeedURLs()); err != nil {
						b.Fatal(err)
					}
				}
				reportHostParallelism(b)
			})
		}
	}
}
