package webgraph

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"conceptweb/internal/webgen"
)

// faultFS injects write failures through the pageFS seam, mirroring the
// storeFS fault harness in internal/lrec: a budget of bytes may persist,
// then writes fail — persisting their prefix first, like a real crash or a
// full disk mid-append.
type faultFS struct {
	real osFS

	mu        sync.Mutex
	remaining int64 // write bytes until the fault trips; <0 = unlimited
	tripped   bool
}

func (f *faultFS) MkdirAll(p string, perm os.FileMode) error { return f.real.MkdirAll(p, perm) }
func (f *faultFS) Open(n string) (pageFile, error)           { return f.real.Open(n) }
func (f *faultFS) OpenFile(n string, flag int, perm os.FileMode) (pageFile, error) {
	file, err := f.real.OpenFile(n, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{pageFile: file, fs: f}, nil
}
func (f *faultFS) Truncate(n string, s int64) error   { return f.real.Truncate(n, s) }
func (f *faultFS) ReadDir(d string) ([]string, error) { return f.real.ReadDir(d) }
func (f *faultFS) SyncDir(d string) error             { return f.real.SyncDir(d) }

type faultFile struct {
	pageFile
	fs *faultFS
}

func (w *faultFile) Write(p []byte) (int, error) {
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	if w.fs.remaining < 0 {
		return w.pageFile.Write(p)
	}
	if w.fs.tripped || int64(len(p)) > w.fs.remaining {
		n := 0
		if !w.fs.tripped && w.fs.remaining > 0 {
			n, _ = w.pageFile.Write(p[:w.fs.remaining])
		}
		w.fs.tripped = true
		w.fs.remaining = 0
		return n, errors.New("faultfs: disk full")
	}
	w.fs.remaining -= int64(len(p))
	return w.pageFile.Write(p)
}

func testPage(i int) *Page {
	url := fmt.Sprintf("host-%02d.example/p/%04d", i%7, i)
	html := fmt.Sprintf("<html><head><title>page %d</title></head><body><h1>Page %d</h1>"+
		`<p>body text %d</p><a href="/p/%04d">next</a></body></html>`, i, i, i*i, i+1)
	return NewPage(url, html)
}

func openDisk(t *testing.T, dir string, opts DiskOptions) *Store {
	t.Helper()
	s, err := OpenDiskStore(dir, opts)
	if err != nil {
		t.Fatalf("OpenDiskStore: %v", err)
	}
	return s
}

// TestDiskStoreMatchesMemory drives both backends through the identical
// Put/Get/Delete/re-Put sequence over the full default world (2011 pages)
// and asserts every observable — membership, ordering, page bytes, hashes,
// outlinks, change detection — agrees. Small segments force mid-world rolls.
func TestDiskStoreMatchesMemory(t *testing.T) {
	world := webgen.Generate(webgen.DefaultConfig())
	mem := NewStore()
	disk := openDisk(t, t.TempDir(), DiskOptions{CachePages: 64, SegmentBytes: 1 << 20})
	defer disk.Close()

	for _, wp := range world.Pages() {
		p := NewPage(wp.URL, wp.HTML)
		cm := mem.Put(NewPage(wp.URL, wp.HTML))
		cd := disk.Put(p)
		if cm != cd {
			t.Fatalf("Put(%s): mem changed=%v disk changed=%v", wp.URL, cm, cd)
		}
	}
	if err := disk.Err(); err != nil {
		t.Fatalf("disk store latched: %v", err)
	}

	compare := func(stage string) {
		t.Helper()
		if mem.Len() != disk.Len() {
			t.Fatalf("%s: Len mem=%d disk=%d", stage, mem.Len(), disk.Len())
		}
		if !reflect.DeepEqual(mem.URLs(), disk.URLs()) {
			t.Fatalf("%s: URLs diverge", stage)
		}
		if !reflect.DeepEqual(mem.Hosts(), disk.Hosts()) {
			t.Fatalf("%s: Hosts diverge", stage)
		}
		for _, h := range mem.Hosts() {
			if !reflect.DeepEqual(mem.HostPages(h), disk.HostPages(h)) {
				t.Fatalf("%s: HostPages(%s) diverge", stage, h)
			}
		}
		for _, u := range mem.URLs() {
			mp, err1 := mem.Get(u)
			dp, err2 := disk.Get(u)
			if err1 != nil || err2 != nil {
				t.Fatalf("%s: Get(%s): mem err=%v disk err=%v", stage, u, err1, err2)
			}
			if mp.HTML != dp.HTML || mp.Hash != dp.Hash ||
				!reflect.DeepEqual(mp.Outlinks, dp.Outlinks) {
				t.Fatalf("%s: page %s differs between backends", stage, u)
			}
		}
	}
	compare("after put")

	// Delete a spread of pages from both; Has and membership must agree.
	urls := mem.URLs()
	var deleted []string
	for i := 0; i < len(urls); i += 7 {
		u := urls[i]
		dm, dd := mem.Delete(u), disk.Delete(u)
		if !dm || !dd {
			t.Fatalf("Delete(%s): mem=%v disk=%v", u, dm, dd)
		}
		deleted = append(deleted, u)
	}
	for _, u := range deleted {
		if mem.Has(u) || disk.Has(u) {
			t.Fatalf("deleted %s still present", u)
		}
	}
	compare("after delete")

	// Resurrect one deleted page with identical bytes: both backends must
	// report changed=true (the delete forgot the hash — the §7.3 gone-page
	// resurrection contract the maintenance loop depends on).
	res := deleted[0]
	html, _ := world.Fetch(res)
	if cm, cd := mem.Put(NewPage(res, html)), disk.Put(NewPage(res, html)); !cm || !cd {
		t.Fatalf("resurrection Put(%s): mem changed=%v disk changed=%v", res, cm, cd)
	}
	// And an unchanged re-Put reports false on both.
	if cm, cd := mem.Put(NewPage(res, html)), disk.Put(NewPage(res, html)); cm || cd {
		t.Fatalf("no-op Put(%s): mem changed=%v disk changed=%v", res, cm, cd)
	}
	compare("after resurrection")
}

// TestDiskStoreReopen: closing and reopening a directory reconstructs the
// same store from segment frames alone, including deletes and overwrites.
func TestDiskStoreReopen(t *testing.T) {
	dir := t.TempDir()
	s := openDisk(t, dir, DiskOptions{SegmentBytes: 4 << 10})
	const n = 200
	for i := 0; i < n; i++ {
		s.Put(testPage(i))
	}
	s.Delete(testPage(3).URL)
	s.Delete(testPage(99).URL)
	over := testPage(42)
	over.HTML += "<!-- v2 -->"
	s.Put(NewPage(over.URL, over.HTML))
	wantURLs := s.URLs()
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	r := openDisk(t, dir, DiskOptions{})
	defer r.Close()
	rec := r.DiskRecovery()
	if rec.TornTail {
		t.Error("clean close reported a torn tail")
	}
	if rec.Segments < 2 {
		t.Errorf("expected multiple segments with 4KiB rolls, got %d", rec.Segments)
	}
	if rec.Frames != n+3 { // n puts + 2 deletes + 1 overwrite
		t.Errorf("replayed %d frames, want %d", rec.Frames, n+3)
	}
	if !reflect.DeepEqual(r.URLs(), wantURLs) {
		t.Fatal("URLs diverge after reopen")
	}
	if r.Has(testPage(3).URL) || r.Has(testPage(99).URL) {
		t.Error("deleted pages survived reopen")
	}
	p, err := r.Get(over.URL)
	if err != nil || p.HTML != over.HTML {
		t.Fatalf("overwritten page after reopen: %v", err)
	}
	// The reopened store must keep appending correctly.
	extra := testPage(9999)
	if !r.Put(extra) {
		t.Fatal("Put after reopen reported unchanged")
	}
	if p, err := r.Get(extra.URL); err != nil || p.HTML != extra.HTML {
		t.Fatalf("page appended after reopen: %v", err)
	}
}

// TestDiskStoreTornTailRepair: garbage appended past the last valid frame —
// a crash mid-append — is truncated away on reopen, keeping every complete
// frame and reporting the repair.
func TestDiskStoreTornTailRepair(t *testing.T) {
	dir := t.TempDir()
	s := openDisk(t, dir, DiskOptions{})
	const n = 25
	for i := 0; i < n; i++ {
		s.Put(testPage(i))
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Tear the tail: a partial frame that looks plausible up front.
	torn := append(encodeFrame(framePut, "torn.example/x", "<html>half")[:20], 0xff, 0x07)
	f, err := os.OpenFile(filepath.Join(dir, segName(0)), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r := openDisk(t, dir, DiskOptions{})
	defer r.Close()
	rec := r.DiskRecovery()
	if !rec.TornTail {
		t.Fatal("torn tail not detected")
	}
	if rec.TruncatedBytes != int64(len(torn)) {
		t.Errorf("TruncatedBytes = %d, want %d", rec.TruncatedBytes, len(torn))
	}
	if rec.Frames != n {
		t.Errorf("replayed %d frames, want %d", rec.Frames, n)
	}
	if r.Len() != n {
		t.Errorf("Len = %d after repair, want %d", r.Len(), n)
	}
	// Appends after the repair must land at the truncated offset, not after
	// the (now removed) garbage.
	if !r.Put(testPage(500)) {
		t.Fatal("Put after repair reported unchanged")
	}
	if p, err := r.Get(testPage(500).URL); err != nil || p.HTML != testPage(500).HTML {
		t.Fatalf("Get after post-repair append: %v", err)
	}
}

// TestDiskStoreCrashMidWrite drives the same torn-tail contract through the
// fs seam: the fault filesystem persists only a prefix of one frame (a crash
// mid-write), and a fresh open of the directory repairs it.
func TestDiskStoreCrashMidWrite(t *testing.T) {
	dir := t.TempDir()
	ffs := &faultFS{remaining: -1}
	s := openDisk(t, dir, DiskOptions{fs: ffs, CachePages: 2})
	const n = 10
	for i := 0; i < n; i++ {
		s.Put(testPage(i))
	}
	// Allow half of the next frame to reach disk, then fail.
	ffs.mu.Lock()
	ffs.remaining = 30
	ffs.mu.Unlock()

	victim := testPage(n)
	if s.Put(victim) {
		t.Fatal("Put during crash reported changed")
	}
	if s.Err() == nil {
		t.Fatal("write failure did not latch the store")
	}
	// Latched means read-only, not dead: existing pages still serve (the
	// 2-page cache has long evicted page 1, so this is a real segment
	// pread), and further writes are rejected.
	if _, err := s.Get(testPage(1).URL); err != nil {
		t.Fatalf("read after latch: %v", err)
	}
	if s.Put(testPage(n + 1)) {
		t.Error("Put accepted after latch")
	}
	if s.Delete(testPage(2).URL) {
		t.Error("Delete accepted after latch")
	}
	s.Close()

	r := openDisk(t, dir, DiskOptions{})
	defer r.Close()
	rec := r.DiskRecovery()
	if !rec.TornTail {
		t.Fatal("mid-write crash not detected as torn tail")
	}
	if rec.TruncatedBytes != 30 {
		t.Errorf("TruncatedBytes = %d, want 30", rec.TruncatedBytes)
	}
	if r.Len() != n {
		t.Fatalf("Len = %d after crash recovery, want %d", r.Len(), n)
	}
	if r.Has(victim.URL) {
		t.Error("half-written page resurrected")
	}
	for i := 0; i < n; i++ {
		if p, err := r.Get(testPage(i).URL); err != nil || p.HTML != testPage(i).HTML {
			t.Fatalf("page %d lost in crash recovery: %v", i, err)
		}
	}
}

// TestDiskStoreCorruptMiddleSegment: a bad frame anywhere before the final
// segment's tail is real corruption, not a torn tail — Open must refuse.
func TestDiskStoreCorruptMiddleSegment(t *testing.T) {
	dir := t.TempDir()
	s := openDisk(t, dir, DiskOptions{SegmentBytes: 2 << 10})
	for i := 0; i < 60; i++ {
		s.Put(testPage(i))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	seg0 := filepath.Join(dir, segName(0))
	data, err := os.ReadFile(seg0)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(seg0, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDiskStore(dir, DiskOptions{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open over corrupt middle segment: err = %v, want ErrCorrupt", err)
	}
}

// TestDiskStoreScanBounded: Scan sees every page in sorted order through the
// LRU even when the cache is far smaller than the corpus.
func TestDiskStoreScanBounded(t *testing.T) {
	s := openDisk(t, t.TempDir(), DiskOptions{CachePages: 4, SegmentBytes: 8 << 10})
	defer s.Close()
	const n = 120
	for i := 0; i < n; i++ {
		s.Put(testPage(i))
	}
	var got []string
	s.Scan(func(p *Page) bool {
		got = append(got, p.URL)
		return true
	})
	if len(got) != n {
		t.Fatalf("Scan visited %d pages, want %d", len(got), n)
	}
	if !sortedStrings(got) {
		t.Error("Scan order not sorted")
	}
}

func sortedStrings(s []string) bool {
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			return false
		}
	}
	return true
}
