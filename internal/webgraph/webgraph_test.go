package webgraph

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"conceptweb/internal/webgen"
)

// miniWeb is a hand-built fetcher for focused crawler tests.
type miniWeb map[string]string

func (m miniWeb) Fetch(url string) (string, error) {
	html, ok := m[url]
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrNotFound, url)
	}
	return html, nil
}

func linked(links ...string) string {
	out := "<html><body>"
	for _, l := range links {
		out += `<a href="` + l + `">x</a>`
	}
	return out + "</body></html>"
}

func TestCrawlBFS(t *testing.T) {
	web := miniWeb{
		"a.example/":   linked("/p1", "/p2"),
		"a.example/p1": linked("/p2", "b.example/"),
		"a.example/p2": linked(),
		"b.example/":   linked(),
	}
	st := NewStore()
	c := &Crawler{Fetcher: web, Store: st}
	fetched, failed := c.Crawl([]string{"a.example/"})
	if fetched != 4 || failed != 0 {
		t.Fatalf("fetched=%d failed=%d", fetched, failed)
	}
	if st.Len() != 4 {
		t.Errorf("store len = %d", st.Len())
	}
}

func TestCrawlSameHostOnly(t *testing.T) {
	web := miniWeb{
		"a.example/":   linked("/p1", "b.example/"),
		"a.example/p1": linked(),
		"b.example/":   linked(),
	}
	st := NewStore()
	c := &Crawler{Fetcher: web, Store: st, SameHostOnly: true}
	fetched, _ := c.Crawl([]string{"a.example/"})
	if fetched != 2 {
		t.Errorf("fetched = %d, want 2", fetched)
	}
	if _, err := st.Get("b.example/"); !errors.Is(err, ErrNotFound) {
		t.Error("cross-host page crawled despite SameHostOnly")
	}
}

func TestCrawlMaxPages(t *testing.T) {
	web := miniWeb{}
	for i := 0; i < 50; i++ {
		web[fmt.Sprintf("a.example/p%d", i)] = linked(fmt.Sprintf("/p%d", i+1))
	}
	st := NewStore()
	c := &Crawler{Fetcher: web, Store: st, MaxPages: 10}
	fetched, _ := c.Crawl([]string{"a.example/p0"})
	if fetched != 10 {
		t.Errorf("fetched = %d, want 10", fetched)
	}
}

func TestCrawlDeadLinks(t *testing.T) {
	web := miniWeb{"a.example/": linked("/missing", "/p1"), "a.example/p1": linked()}
	st := NewStore()
	c := &Crawler{Fetcher: web, Store: st}
	fetched, failed := c.Crawl([]string{"a.example/"})
	if fetched != 2 || failed != 1 {
		t.Errorf("fetched=%d failed=%d", fetched, failed)
	}
}

func TestStoreChangeDetection(t *testing.T) {
	st := NewStore()
	p1 := NewPage("a.example/x", "<html><body>v1</body></html>")
	if !st.Put(p1) {
		t.Error("new page should report changed")
	}
	if st.Put(NewPage("a.example/x", "<html><body>v1</body></html>")) {
		t.Error("identical content should report unchanged")
	}
	if !st.Put(NewPage("a.example/x", "<html><body>v2</body></html>")) {
		t.Error("modified content should report changed")
	}
	if st.Len() != 1 {
		t.Errorf("Len = %d", st.Len())
	}
}

func TestStoreDelete(t *testing.T) {
	st := NewStore()
	st.Put(NewPage("a.example/1", "<html><body>one</body></html>"))
	st.Put(NewPage("a.example/2", "<html><body>two</body></html>"))
	if !st.Delete("a.example/1") {
		t.Error("Delete of present page should report true")
	}
	if st.Delete("a.example/1") {
		t.Error("second Delete should report false")
	}
	if st.Len() != 1 {
		t.Errorf("Len after delete = %d", st.Len())
	}
	if _, err := st.Get("a.example/1"); err == nil {
		t.Error("deleted page still readable")
	}
	if got := st.HostPages("a.example"); !reflect.DeepEqual(got, []string{"a.example/2"}) {
		t.Errorf("HostPages after delete = %v", got)
	}
	// The resurrection contract: identical bytes after a delete must
	// register as changed again, because the old hash is gone.
	if !st.Put(NewPage("a.example/1", "<html><body>one</body></html>")) {
		t.Error("re-Put after Delete should report changed")
	}
	if st.Delete("a.example/2") && st.Delete("a.example/1") {
		if got := st.Hosts(); len(got) != 0 {
			t.Errorf("Hosts after deleting all pages = %v", got)
		}
	} else {
		t.Error("deletes of present pages failed")
	}
}

func TestStoreHostIndex(t *testing.T) {
	st := NewStore()
	st.Put(NewPage("a.example/1", linked()))
	st.Put(NewPage("a.example/2", linked()))
	st.Put(NewPage("b.example/1", linked()))
	if got := st.Hosts(); !reflect.DeepEqual(got, []string{"a.example", "b.example"}) {
		t.Errorf("Hosts = %v", got)
	}
	if got := st.HostPages("a.example"); len(got) != 2 {
		t.Errorf("HostPages = %v", got)
	}
}

func TestBuildGraph(t *testing.T) {
	st := NewStore()
	st.Put(NewPage("a.example/1", linked("/2", "/2", "external.example/")))
	st.Put(NewPage("a.example/2", linked("/1")))
	g := BuildGraph(st)
	if !reflect.DeepEqual(g.Out["a.example/1"], []string{"a.example/2"}) {
		t.Errorf("Out = %v (dups/externals should be gone)", g.Out["a.example/1"])
	}
	if !reflect.DeepEqual(g.In["a.example/1"], []string{"a.example/2"}) {
		t.Errorf("In = %v", g.In["a.example/1"])
	}
}

func TestDirectory(t *testing.T) {
	cases := map[string]string{
		"a.example/calendar/ev-1": "calendar",
		"a.example/":              "",
		"a.example/about":         "", // root-level leaf: no directory
		"a.example/dir/sub/leaf":  "dir",
		"a.example":               "",
	}
	for url, want := range cases {
		if got := Directory(url); got != want {
			t.Errorf("Directory(%q) = %q, want %q", url, got, want)
		}
	}
}

func TestRelativeLinkResolution(t *testing.T) {
	p := NewPage("h.example/dir/page", `<html><body><a href="/abs">a</a><a href="http://x.example/y">b</a></body></html>`)
	if !reflect.DeepEqual(p.Outlinks, []string{"h.example/abs", "x.example/y"}) {
		t.Errorf("Outlinks = %v", p.Outlinks)
	}
}

// WorldFetcher adapts a webgen.World — this is the integration seam used by
// the whole pipeline, so test it here.
func worldFetcher(w *webgen.World) Fetcher {
	return FetcherFunc(func(url string) (string, error) {
		p, ok := w.PageByURL(url)
		if !ok {
			return "", fmt.Errorf("%w: %s", ErrNotFound, url)
		}
		return p.HTML, nil
	})
}

func TestCrawlSyntheticWorld(t *testing.T) {
	cfg := webgen.DefaultConfig()
	cfg.Restaurants = 30
	cfg.ReviewArticles = 10
	w := webgen.Generate(cfg)
	st := NewStore()
	c := &Crawler{Fetcher: worldFetcher(w), Store: st, SameHostOnly: true}
	fetched, _ := c.Crawl([]string{webgen.PrimaryAggregator + "/c/cupertino-italian"})
	if fetched == 0 {
		t.Skip("no italian restaurants in cupertino at this seed")
	}
	// Crawling the whole primary aggregator from its category pages.
	site, _ := w.SiteByHost(webgen.PrimaryAggregator)
	var seeds []string
	for _, p := range site.Pages {
		if p.Truth.Kind == webgen.KindCategory {
			seeds = append(seeds, p.URL)
		}
	}
	st2 := NewStore()
	c2 := &Crawler{Fetcher: worldFetcher(w), Store: st2, SameHostOnly: true}
	c2.Crawl(seeds)
	if st2.Len() < len(seeds) {
		t.Errorf("crawled %d < %d seeds", st2.Len(), len(seeds))
	}
	// Every crawled page should parse and have a host.
	st2.Scan(func(p *Page) bool {
		if p.Host == "" || p.Doc == nil {
			t.Errorf("bad page %s", p.URL)
		}
		return true
	})
}

func TestCrawlDeterministic(t *testing.T) {
	web := miniWeb{
		"a.example/":  linked("/b", "/c"),
		"a.example/b": linked("/d"),
		"a.example/c": linked("/d"),
		"a.example/d": linked(),
	}
	run := func() []string {
		st := NewStore()
		c := &Crawler{Fetcher: web, Store: st, Workers: 3}
		c.Crawl([]string{"a.example/"})
		return st.URLs()
	}
	if !reflect.DeepEqual(run(), run()) {
		t.Error("crawl not deterministic")
	}
}
