package webgraph

import (
	"bufio"
	"container/list"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"
)

// Disk-backed page store backend (ISSUE 9 tentpole layer 2).
//
// Layout: a directory of append-only segment files pages-0000.seg,
// pages-0001.seg, … Each segment is a sequence of CRC-framed records:
//
//	[u32 crc][u8 kind][u32 urlLen][u32 htmlLen][url bytes][html bytes]
//
// kind is framePut or frameDelete (deletes carry no html; htmlLen is 0).
// crc is IEEE CRC-32 over everything after the crc field. Writes only ever
// append; a Put of an existing URL appends a fresh frame and moves the
// in-memory ref, and compaction is deliberately out of scope — the page
// store is a crawl cache, rebuildable by recrawl, so space is reclaimed by
// deleting the directory and recrawling rather than by an online GC.
//
// Resident state is the sparse index only: map[url]pageRef (segment, frame
// offset, content hash) plus the byHost map — tens of bytes per page
// instead of the page itself. Raw HTML stays on disk; Get preads the frame
// and re-parses, fronted by a small LRU of parsed *Page so host-local
// access patterns (extraction walks one host's pages together) mostly hit.
//
// Durability: frames are written directly (no user-space buffer), fsynced
// on segment roll, Flush, and Close — not per Put. A crash can therefore
// tear the tail of the last segment; reopen truncates at the last valid
// frame, exactly lrec's torn-tail contract. A decode error in any
// non-final segment is real corruption and fails Open with ErrCorrupt.
// After a write failure the backend latches the error: reads keep working,
// further puts are rejected (mirroring lrec's degraded latch).

// ErrCorrupt reports unrecoverable segment corruption (a bad frame before
// the final segment's tail).
var ErrCorrupt = errors.New("webgraph: segment store corrupt")

const (
	framePut    = 1
	frameDelete = 2

	// frameHeader is crc(4) + kind(1) + urlLen(4) + htmlLen(4).
	frameHeader = 13

	defaultSegmentBytes = 8 << 20
	defaultCachePages   = 1024

	// maxFrameField guards replay against garbage lengths.
	maxFrameField = 1 << 28
)

// DiskOptions configures OpenDiskStore. The zero value gives sane
// defaults: 1024 cached parsed pages, 8 MiB segments.
type DiskOptions struct {
	// CachePages is the LRU capacity in parsed pages (<=0: default 1024).
	CachePages int
	// SegmentBytes rolls to a new segment file once the current one
	// exceeds this size (<=0: default 8 MiB).
	SegmentBytes int64

	fs pageFS // test seam; nil means the real filesystem
}

// DiskRecovery describes what reopening a segment directory found.
type DiskRecovery struct {
	Segments       int   // segment files opened
	Frames         int   // valid frames replayed
	TornTail       bool  // last segment ended in a torn frame
	TruncatedBytes int64 // bytes cut repairing the torn tail
}

// pageRef locates a page's latest frame: which segment, at what offset,
// plus the content hash so Put's changed-detection and Delete's
// hash-forgetting (gone-page resurrection, §7.3) work without reading disk.
type pageRef struct {
	seg  int
	off  int64
	hash uint64
}

type diskBackend struct {
	mu  sync.Mutex
	dir string
	fs  pageFS

	refs   map[string]pageRef
	byHost map[string][]string

	segBytes int64
	curSeg   int
	curOff   int64
	w        pageFile                 // append handle for the current segment
	readers  map[int]pageFile         // lazily opened read handles per segment
	cache    map[string]*list.Element // url -> LRU element
	lru      *list.List               // front = most recent; values are *cacheEntry
	cacheCap int

	latched  error
	recovery DiskRecovery
}

type cacheEntry struct {
	url  string
	page *Page
}

// OpenDiskStore opens (or creates) a disk-backed page store rooted at dir
// and returns it behind the standard Store facade. Reopening a directory
// replays the segment frames to rebuild the in-memory offset index,
// repairing a torn tail in the final segment the way lrec.Open repairs its
// WAL; corruption earlier than that fails with ErrCorrupt.
func OpenDiskStore(dir string, opts DiskOptions) (*Store, error) {
	fs := opts.fs
	if fs == nil {
		fs = osFS{}
	}
	cacheCap := opts.CachePages
	if cacheCap <= 0 {
		cacheCap = defaultCachePages
	}
	segBytes := opts.SegmentBytes
	if segBytes <= 0 {
		segBytes = defaultSegmentBytes
	}
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	b := &diskBackend{
		dir:      dir,
		fs:       fs,
		refs:     make(map[string]pageRef),
		byHost:   make(map[string][]string),
		segBytes: segBytes,
		readers:  make(map[int]pageFile),
		cache:    make(map[string]*list.Element),
		lru:      list.New(),
		cacheCap: cacheCap,
	}
	if err := b.replay(); err != nil {
		return nil, err
	}
	if err := b.openAppend(); err != nil {
		return nil, err
	}
	return &Store{b: b}, nil
}

// DiskRecovery returns what the last OpenDiskStore replay found; the zero
// value for in-memory stores and fresh directories.
func (s *Store) DiskRecovery() DiskRecovery {
	if d, ok := s.b.(*diskBackend); ok {
		d.mu.Lock()
		defer d.mu.Unlock()
		return d.recovery
	}
	return DiskRecovery{}
}

// replay scans every segment in order rebuilding refs/byHost, repairing a
// torn tail in the last segment.
func (b *diskBackend) replay() error {
	names, err := b.fs.ReadDir(b.dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	var segs []int
	for _, n := range names {
		if s := segNum(n); s >= 0 {
			segs = append(segs, s)
		}
	}
	if len(segs) == 0 {
		return nil
	}
	b.recovery.Segments = len(segs)
	last := segs[len(segs)-1]
	for _, seg := range segs {
		if err := b.replaySegment(seg, seg == last); err != nil {
			return err
		}
	}
	b.curSeg = last
	return nil
}

func (b *diskBackend) replaySegment(seg int, isLast bool) error {
	path := segPath(b.dir, seg)
	f, err := b.fs.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	var off int64
	for {
		url, html, kind, n, err := readFrame(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			if !isLast {
				return fmt.Errorf("%w: %s at offset %d: %v", ErrCorrupt, segName(seg), off, err)
			}
			// Torn tail: cut the last segment back to the last valid frame
			// (lrec's WAL repair contract). n is what the failed decode
			// consumed; the rest of the file is garbage past the tear.
			rest, _ := io.Copy(io.Discard, r)
			if terr := b.fs.Truncate(path, off); terr != nil {
				return terr
			}
			b.recovery.TornTail = true
			b.recovery.TruncatedBytes += n + rest
			b.curOff = off
			return nil
		}
		b.recovery.Frames++
		b.applyFrame(url, html, kind, seg, off)
		off += n
	}
	if isLast {
		b.curOff = off
	}
	return nil
}

func (b *diskBackend) applyFrame(url, html string, kind byte, seg int, off int64) {
	host, _ := splitURL(url)
	switch kind {
	case framePut:
		if _, ok := b.refs[url]; !ok {
			b.byHost[host] = append(b.byHost[host], url)
		}
		b.refs[url] = pageRef{seg: seg, off: off, hash: HashContent(html)}
	case frameDelete:
		if _, ok := b.refs[url]; ok {
			delete(b.refs, url)
			b.dropHostURL(host, url)
		}
	}
}

func (b *diskBackend) dropHostURL(host, url string) {
	urls := b.byHost[host]
	for i, u := range urls {
		if u == url {
			urls = append(urls[:i], urls[i+1:]...)
			break
		}
	}
	if len(urls) == 0 {
		delete(b.byHost, host)
	} else {
		b.byHost[host] = urls
	}
}

// openAppend opens the current segment for appending (creating it fresh
// when the directory is empty).
func (b *diskBackend) openAppend() error {
	f, err := b.fs.OpenFile(segPath(b.dir, b.curSeg), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	b.w = f
	return b.fs.SyncDir(b.dir)
}

// roll fsyncs and closes the full segment and starts the next one.
func (b *diskBackend) roll() error {
	if err := b.w.Sync(); err != nil {
		return err
	}
	if err := b.w.Close(); err != nil {
		return err
	}
	b.curSeg++
	b.curOff = 0
	return b.openAppend()
}

// writeFrame encodes and appends one frame, returning the segment and
// offset it landed at (captured before any roll the append triggers).
func (b *diskBackend) writeFrame(kind byte, url, html string) (seg int, off int64, err error) {
	if b.latched != nil {
		return 0, 0, b.latched
	}
	frame := encodeFrame(kind, url, html)
	seg, off = b.curSeg, b.curOff
	if _, werr := b.w.Write(frame); werr != nil {
		b.latched = fmt.Errorf("webgraph: segment append failed (store latched read-only): %w", werr)
		return 0, 0, b.latched
	}
	b.curOff += int64(len(frame))
	if b.curOff >= b.segBytes {
		if rerr := b.roll(); rerr != nil {
			b.latched = fmt.Errorf("webgraph: segment roll failed (store latched read-only): %w", rerr)
			return 0, 0, b.latched
		}
	}
	return seg, off, nil
}

func encodeFrame(kind byte, url, html string) []byte {
	n := frameHeader + len(url) + len(html)
	buf := make([]byte, n)
	buf[4] = kind
	binary.LittleEndian.PutUint32(buf[5:9], uint32(len(url)))
	binary.LittleEndian.PutUint32(buf[9:13], uint32(len(html)))
	copy(buf[frameHeader:], url)
	copy(buf[frameHeader+len(url):], html)
	binary.LittleEndian.PutUint32(buf[0:4], crc32.ChecksumIEEE(buf[4:]))
	return buf
}

// readFrame decodes one frame from a sequential reader. size is the number
// of bytes consumed — the full frame on success, whatever the failed decode
// read on error (so torn-tail accounting can be exact). A clean EOF at a
// frame boundary returns io.EOF with size 0.
func readFrame(r io.Reader) (url, html string, kind byte, size int64, err error) {
	var hdr [frameHeader]byte
	n, err := io.ReadFull(r, hdr[:])
	size = int64(n)
	if err != nil {
		if err == io.ErrUnexpectedEOF {
			err = errors.New("short frame header")
		}
		return
	}
	kind = hdr[4]
	ulen := binary.LittleEndian.Uint32(hdr[5:9])
	hlen := binary.LittleEndian.Uint32(hdr[9:13])
	if (kind != framePut && kind != frameDelete) || ulen == 0 || ulen > maxFrameField || hlen > maxFrameField {
		err = errors.New("bad frame header")
		return
	}
	body := make([]byte, int(ulen)+int(hlen))
	n, err = io.ReadFull(r, body)
	size += int64(n)
	if err != nil {
		err = errors.New("short frame body")
		return
	}
	want := binary.LittleEndian.Uint32(hdr[0:4])
	crc := crc32.ChecksumIEEE(hdr[4:])
	crc = crc32.Update(crc, crc32.IEEETable, body)
	if crc != want {
		err = errors.New("frame crc mismatch")
		return
	}
	url = string(body[:ulen])
	html = string(body[ulen:])
	return
}

// readPageAt preads and decodes the frame at ref, returning the raw HTML.
// It takes the segment handle directly so callers can pread outside the
// store mutex (ReadAt on an *os.File is safe for concurrent use).
func readPageAt(f pageFile, url string, ref pageRef) (string, error) {
	var hdr [frameHeader]byte
	if _, err := f.ReadAt(hdr[:], ref.off); err != nil {
		return "", fmt.Errorf("webgraph: read %s: %w", url, err)
	}
	ulen := binary.LittleEndian.Uint32(hdr[5:9])
	hlen := binary.LittleEndian.Uint32(hdr[9:13])
	if hdr[4] != framePut || ulen == 0 || ulen > maxFrameField || hlen > maxFrameField {
		return "", fmt.Errorf("%w: bad frame for %s", ErrCorrupt, url)
	}
	body := make([]byte, int(ulen)+int(hlen))
	if _, err := f.ReadAt(body, ref.off+frameHeader); err != nil {
		return "", fmt.Errorf("webgraph: read %s: %w", url, err)
	}
	crc := crc32.ChecksumIEEE(hdr[4:])
	crc = crc32.Update(crc, crc32.IEEETable, body)
	if crc != binary.LittleEndian.Uint32(hdr[0:4]) {
		return "", fmt.Errorf("%w: crc mismatch for %s", ErrCorrupt, url)
	}
	if string(body[:ulen]) != url {
		return "", fmt.Errorf("%w: frame url mismatch for %s", ErrCorrupt, url)
	}
	return string(body[ulen:]), nil
}

// reader returns (lazily opening) the read handle for a segment. The
// current append segment is readable through a second handle; appends go
// straight to the file, so preads observe them.
func (b *diskBackend) reader(seg int) (pageFile, error) {
	if f, ok := b.readers[seg]; ok {
		return f, nil
	}
	f, err := b.fs.Open(segPath(b.dir, seg))
	if err != nil {
		return nil, err
	}
	b.readers[seg] = f
	return f, nil
}

// cachePut inserts a parsed page into the LRU, evicting the tail.
func (b *diskBackend) cachePut(p *Page) {
	if el, ok := b.cache[p.URL]; ok {
		el.Value.(*cacheEntry).page = p
		b.lru.MoveToFront(el)
		return
	}
	b.cache[p.URL] = b.lru.PushFront(&cacheEntry{url: p.URL, page: p})
	for b.lru.Len() > b.cacheCap {
		tail := b.lru.Back()
		b.lru.Remove(tail)
		delete(b.cache, tail.Value.(*cacheEntry).url)
	}
}

func (b *diskBackend) cacheDrop(url string) {
	if el, ok := b.cache[url]; ok {
		b.lru.Remove(el)
		delete(b.cache, url)
	}
}

// --- backend interface ---

func (b *diskBackend) put(p *Page) (bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	ref, ok := b.refs[p.URL]
	if ok && ref.hash == p.Hash {
		return false, nil
	}
	seg, off, err := b.writeFrame(framePut, p.URL, p.HTML)
	if err != nil {
		return false, err
	}
	if !ok {
		b.byHost[p.Host] = append(b.byHost[p.Host], p.URL)
	}
	b.refs[p.URL] = pageRef{seg: seg, off: off, hash: p.Hash}
	b.cachePut(p)
	return true, nil
}

func (b *diskBackend) delete(url string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.refs[url]; !ok {
		return false
	}
	if _, _, err := b.writeFrame(frameDelete, url, ""); err != nil {
		return false
	}
	host, _ := splitURL(url)
	delete(b.refs, url)
	b.dropHostURL(host, url)
	b.cacheDrop(url)
	return true
}

func (b *diskBackend) get(url string) (*Page, error) {
	b.mu.Lock()
	if el, ok := b.cache[url]; ok {
		b.lru.MoveToFront(el)
		p := el.Value.(*cacheEntry).page
		b.mu.Unlock()
		return p, nil
	}
	ref, ok := b.refs[url]
	if !ok {
		b.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNotFound, url)
	}
	f, err := b.reader(ref.seg)
	b.mu.Unlock()
	if err != nil {
		return nil, err
	}
	// Pread + parse outside the lock: frames are immutable once appended,
	// so a concurrent Delete/Put can't invalidate the bytes at ref, and
	// keeping the (expensive) HTML parse unserialized is what lets the
	// build's workers read different hosts concurrently. Two goroutines
	// racing on the same cold URL may both parse; last cachePut wins.
	html, err := readPageAt(f, url, ref)
	if err != nil {
		return nil, err
	}
	p := NewPage(url, html)
	b.mu.Lock()
	b.cachePut(p)
	b.mu.Unlock()
	return p, nil
}

func (b *diskBackend) has(url string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, ok := b.refs[url]
	return ok
}

func (b *diskBackend) count() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.refs)
}

func (b *diskBackend) urls() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, 0, len(b.refs))
	for u := range b.refs {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

func (b *diskBackend) hosts() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, 0, len(b.byHost))
	for h := range b.byHost {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

func (b *diskBackend) hostPages(host string) []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := append([]string(nil), b.byHost[host]...)
	sort.Strings(out)
	return out
}

func (b *diskBackend) flush() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.latched != nil {
		return b.latched
	}
	if b.w == nil {
		return nil
	}
	if err := b.w.Sync(); err != nil {
		b.latched = err
		return err
	}
	return nil
}

func (b *diskBackend) close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	var first error
	if b.w != nil {
		if b.latched == nil {
			if err := b.w.Sync(); err != nil && first == nil {
				first = err
			}
		}
		if err := b.w.Close(); err != nil && first == nil {
			first = err
		}
		b.w = nil
	}
	for seg, f := range b.readers {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
		delete(b.readers, seg)
	}
	return first
}

func (b *diskBackend) err() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.latched
}
