package webgraph

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// pageFS abstracts the filesystem operations the disk-backed page store
// performs, mirroring the storeFS seam in internal/lrec: tests inject
// faults — kill a write mid-frame, fail a syscall — and prove the reopen
// contract instead of assuming it (see segstore_test.go). Production code
// always uses osFS.
type pageFS interface {
	MkdirAll(path string, perm os.FileMode) error
	// Open opens for reading (replay and random page reads).
	Open(name string) (pageFile, error)
	// OpenFile opens with the given flags (the append-mode segment handle).
	OpenFile(name string, flag int, perm os.FileMode) (pageFile, error)
	// Truncate cuts the named file to size (torn-tail repair on reopen).
	Truncate(name string, size int64) error
	// ReadDir lists a directory's file names, sorted.
	ReadDir(dir string) ([]string, error)
	// SyncDir fsyncs the directory itself so segment creation is durable.
	SyncDir(dir string) error
}

// pageFile is the subset of *os.File the segment store uses. ReaderAt is
// what distinguishes it from lrec's storeFile: page reads are random-access
// preads at offsets recorded in the in-memory index.
type pageFile interface {
	io.Reader
	io.ReaderAt
	io.Writer
	io.Closer
	Sync() error
}

// osFS is the real filesystem.
type osFS struct{}

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) Open(name string) (pageFile, error) { return os.Open(name) }

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (pageFile, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (osFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// segName returns the file name of segment n ("pages-0003.seg").
func segName(n int) string { return fmt.Sprintf("pages-%04d.seg", n) }

// segNum parses a segment number out of a file name, or -1.
func segNum(name string) int {
	if !strings.HasPrefix(name, "pages-") || !strings.HasSuffix(name, ".seg") {
		return -1
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, "pages-"), ".seg")
	n := 0
	for _, r := range mid {
		if r < '0' || r > '9' {
			return -1
		}
		n = n*10 + int(r-'0')
	}
	return n
}

func segPath(dir string, n int) string { return filepath.Join(dir, segName(n)) }
