// Package webgraph provides the crawl substrate: a Fetcher abstraction over
// a corpus of pages, a concurrent breadth-first crawler, a page store with
// content hashing for change detection (§7.3), and the site link graph used
// by relational classification (§4.2).
package webgraph

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"

	"conceptweb/internal/htmlx"
)

// ErrNotFound is returned when a URL cannot be fetched or found.
var ErrNotFound = errors.New("webgraph: page not found")

// Fetcher retrieves the HTML of a URL. Implementations include the synthetic
// world (webgen) and, in a production deployment, an HTTP client.
// Implementations must be safe for concurrent use: the crawler calls Fetch
// from several workers at once.
type Fetcher interface {
	Fetch(url string) (html string, err error)
}

// FetcherFunc adapts a function to the Fetcher interface.
type FetcherFunc func(url string) (string, error)

// Fetch implements Fetcher.
func (f FetcherFunc) Fetch(url string) (string, error) { return f(url) }

// Page is one crawled page: raw HTML, its parsed DOM, outlinks, and a
// content hash used to detect modification across recrawls.
type Page struct {
	URL      string
	Host     string
	Path     string
	HTML     string
	Doc      *htmlx.Node
	Outlinks []string
	Hash     uint64
}

// Host splits a URL of the form "host/path..." used throughout the system.
func splitURL(url string) (host, path string) {
	if i := strings.IndexByte(url, '/'); i >= 0 {
		return url[:i], url[i:]
	}
	return url, "/"
}

// HashContent returns the FNV-1a hash of a page body.
func HashContent(html string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(html))
	return h.Sum64()
}

// NewPage parses raw HTML into a Page: DOM, resolved outlinks, content hash.
func NewPage(url, html string) *Page {
	host, path := splitURL(url)
	doc := htmlx.Parse(html)
	links := doc.Links()
	// Resolve relative links against the host.
	resolved := make([]string, 0, len(links))
	for _, l := range links {
		switch {
		case strings.HasPrefix(l, "http://"):
			l = strings.TrimPrefix(l, "http://")
		case strings.HasPrefix(l, "https://"):
			l = strings.TrimPrefix(l, "https://")
		}
		if strings.HasPrefix(l, "/") {
			l = host + l
		}
		resolved = append(resolved, l)
	}
	return &Page{
		URL: url, Host: host, Path: path,
		HTML: html, Doc: doc, Outlinks: resolved,
		Hash: HashContent(html),
	}
}

// Store holds crawled pages, indexed by URL and host. Safe for concurrent
// use. Pages themselves (and their parsed htmlx DOMs) are immutable once
// stored and cache nothing lazily, so the build pipeline's workers may read
// the same *Page — including walking its Doc — from many goroutines at once.
//
// A Store is a facade over one of two backends: the default in-memory map
// (every page and its parsed DOM resident, the right choice for tests and
// laptop-scale worlds) or the disk-backed segment store opened with
// OpenDiskStore, which keeps only an offset index and a bounded LRU of
// parsed pages resident — the corpus-scale backend (see segstore.go). The
// backend is invisible to callers: Get/Put/Delete/Scan behave identically.
type Store struct {
	b backend
}

// backend is the storage contract behind the Store facade. Implementations
// must be safe for concurrent use.
type backend interface {
	put(p *Page) (changed bool, err error)
	delete(url string) bool
	get(url string) (*Page, error)
	has(url string) bool
	count() int
	urls() []string
	hosts() []string
	hostPages(host string) []string
	flush() error
	close() error
	err() error
}

// NewStore returns an empty in-memory page store.
func NewStore() *Store {
	return &Store{b: &memBackend{pages: make(map[string]*Page), byHost: make(map[string][]string)}}
}

// Put adds or replaces a page. It reports whether the content changed
// (true for new pages and modified bodies). On a disk-backed store a write
// failure latches the store (see Err) and Put reports false.
func (s *Store) Put(p *Page) (changed bool) {
	changed, _ = s.b.put(p)
	return changed
}

// Delete removes the page at url and reports whether it was present.
// The maintenance loop (§7.3) calls this when a page vanishes from the
// web; forgetting the old content hash is what lets a page that later
// reappears with identical bytes register as changed in Put and rejoin
// the index.
func (s *Store) Delete(url string) bool { return s.b.delete(url) }

// Get returns the page at url.
func (s *Store) Get(url string) (*Page, error) { return s.b.get(url) }

// Has reports whether a page is stored at url. On a disk-backed store this
// is an index lookup — no segment read, no parse — so membership checks
// (link-graph pruning, maintenance scheduling) stay cheap at corpus scale.
func (s *Store) Has(url string) bool { return s.b.has(url) }

// Len returns the number of stored pages.
func (s *Store) Len() int { return s.b.count() }

// URLs returns all stored URLs, sorted.
func (s *Store) URLs() []string { return s.b.urls() }

// Hosts returns all hosts with at least one page, sorted.
func (s *Store) Hosts() []string { return s.b.hosts() }

// HostPages returns the URLs of a host's pages, sorted.
func (s *Store) HostPages(host string) []string { return s.b.hostPages(host) }

// Flush makes appended pages durable (fsync); a no-op for memory stores.
func (s *Store) Flush() error { return s.b.flush() }

// Close releases backend resources (segment file handles); a no-op for
// memory stores. The store must not be used after Close.
func (s *Store) Close() error { return s.b.close() }

// Err returns the latched write error of a disk-backed store (nil while
// healthy, and always nil for memory stores). After a write failure the
// store keeps serving reads but rejects further puts, mirroring the lrec
// degraded-latch contract.
func (s *Store) Err() error { return s.b.err() }

// Scan calls fn for each page in sorted-URL order; return false to stop.
// On a disk-backed store each page is read (and parsed) through the LRU
// cache, so a full scan holds at most the cache's worth of pages resident.
func (s *Store) Scan(fn func(*Page) bool) {
	for _, u := range s.URLs() {
		p, err := s.Get(u)
		if err != nil {
			continue
		}
		if !fn(p) {
			return
		}
	}
}

// memBackend is the default backend: every page resident in a map.
type memBackend struct {
	mu     sync.RWMutex
	pages  map[string]*Page
	byHost map[string][]string
}

func (s *memBackend) put(p *Page) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	old, ok := s.pages[p.URL]
	if ok && old.Hash == p.Hash {
		return false, nil
	}
	if !ok {
		s.byHost[p.Host] = append(s.byHost[p.Host], p.URL)
	}
	s.pages[p.URL] = p
	return true, nil
}

func (s *memBackend) delete(url string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pages[url]
	if !ok {
		return false
	}
	delete(s.pages, url)
	urls := s.byHost[p.Host]
	for i, u := range urls {
		if u == url {
			urls = append(urls[:i], urls[i+1:]...)
			break
		}
	}
	if len(urls) == 0 {
		delete(s.byHost, p.Host)
	} else {
		s.byHost[p.Host] = urls
	}
	return true
}

func (s *memBackend) get(url string) (*Page, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.pages[url]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, url)
	}
	return p, nil
}

func (s *memBackend) has(url string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.pages[url]
	return ok
}

func (s *memBackend) count() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.pages)
}

func (s *memBackend) urls() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.pages))
	for u := range s.pages {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

func (s *memBackend) hosts() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.byHost))
	for h := range s.byHost {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

func (s *memBackend) hostPages(host string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := append([]string(nil), s.byHost[host]...)
	sort.Strings(out)
	return out
}

func (s *memBackend) flush() error { return nil }
func (s *memBackend) close() error { return nil }
func (s *memBackend) err() error   { return nil }

// Crawler performs a bounded-concurrency BFS crawl.
type Crawler struct {
	Fetcher Fetcher
	Store   *Store
	// MaxPages bounds the crawl (0 = unlimited).
	MaxPages int
	// Workers is the number of concurrent fetches (default 8).
	Workers int
	// SameHostOnly restricts the frontier to the seeds' hosts.
	SameHostOnly bool
}

// Crawl runs BFS from seeds and returns the number of pages fetched.
// Fetch errors (dead links) are counted but do not abort the crawl.
func (c *Crawler) Crawl(seeds []string) (fetched int, failed int) {
	workers := c.Workers
	if workers <= 0 {
		workers = 8
	}
	seedHosts := make(map[string]bool)
	for _, s := range seeds {
		h, _ := splitURL(s)
		seedHosts[h] = true
	}

	seen := make(map[string]bool)
	frontier := append([]string(nil), seeds...)
	for _, u := range seeds {
		seen[u] = true
	}

	for len(frontier) > 0 {
		if c.MaxPages > 0 && fetched >= c.MaxPages {
			break
		}
		batch := frontier
		if c.MaxPages > 0 && fetched+len(batch) > c.MaxPages {
			batch = batch[:c.MaxPages-fetched]
		}
		frontier = nil

		type result struct {
			page *Page
			err  error
		}
		results := make([]result, len(batch))
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for i, u := range batch {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int, u string) {
				defer wg.Done()
				defer func() { <-sem }()
				html, err := c.Fetcher.Fetch(u)
				if err != nil {
					results[i] = result{err: err}
					return
				}
				results[i] = result{page: NewPage(u, html)}
			}(i, u)
		}
		wg.Wait()

		for _, res := range results {
			if res.err != nil {
				failed++
				continue
			}
			fetched++
			c.Store.Put(res.page)
			for _, l := range res.page.Outlinks {
				if seen[l] {
					continue
				}
				h, _ := splitURL(l)
				if c.SameHostOnly && !seedHosts[h] {
					continue
				}
				seen[l] = true
				frontier = append(frontier, l)
			}
		}
		sort.Strings(frontier) // deterministic order across runs
	}
	return fetched, failed
}

// Graph is the directed link graph over crawled pages.
type Graph struct {
	Out map[string][]string
	In  map[string][]string
}

// BuildGraph constructs the link graph restricted to pages present in the
// store (external links are dropped).
func BuildGraph(s *Store) *Graph {
	g := &Graph{Out: make(map[string][]string), In: make(map[string][]string)}
	s.Scan(func(p *Page) bool {
		for _, l := range p.Outlinks {
			if !s.Has(l) {
				continue
			}
			if l == p.URL {
				continue
			}
			g.Out[p.URL] = append(g.Out[p.URL], l)
			g.In[l] = append(g.In[l], p.URL)
		}
		return true
	})
	for _, m := range []map[string][]string{g.Out, g.In} {
		for k := range m {
			m[k] = dedupSorted(m[k])
		}
	}
	return g
}

func dedupSorted(in []string) []string {
	sort.Strings(in)
	out := in[:0]
	var prev string
	for i, s := range in {
		if i == 0 || s != prev {
			out = append(out, s)
		}
		prev = s
	}
	return out
}

// Directory returns the first path segment of a URL's path ("" for root) —
// the "pages in a directory called calendar" signal of §4.2.
func Directory(url string) string {
	_, path := splitURL(url)
	path = strings.TrimPrefix(path, "/")
	if i := strings.IndexByte(path, '/'); i >= 0 {
		return path[:i]
	}
	return ""
}
