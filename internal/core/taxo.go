package core

import (
	"strings"

	"conceptweb/internal/taxonomy"
)

// DataTaxonomy builds a data-driven taxonomy (§2.3) over the stored records
// of a concept: records cluster by the text of the given attributes (all
// attributes when none are named), the cut at k clusters becomes a layer of
// sub-concepts under root, and each record an InstanceOf its cluster. For
// restaurants, clustering on cuisine+menu recovers a cuisine-like
// organization without any curated hierarchy; clustering on the full record
// would instead be dominated by near-unique identifiers (streets, phones).
func (woc *WebOfConcepts) DataTaxonomy(concept, root string, k int, attrs ...string) *taxonomy.Taxonomy {
	var items []taxonomy.Item
	for _, r := range woc.Records.ByConcept(concept) {
		text := r.FlatText()
		if len(attrs) > 0 {
			var parts []string
			for _, a := range attrs {
				for _, v := range r.All(a) {
					parts = append(parts, v.Value)
				}
			}
			text = strings.Join(parts, " ")
		}
		if strings.TrimSpace(text) == "" {
			continue
		}
		items = append(items, taxonomy.Item{ID: r.ID, Text: text})
	}
	if len(items) == 0 {
		return taxonomy.New()
	}
	return taxonomy.Cluster(items).BuildTaxonomy(k, root)
}
