package core

import (
	"strings"
	"testing"

	"conceptweb/internal/taxonomy"
	"conceptweb/internal/textproc"
)

func TestEnrichMenus(t *testing.T) {
	w, woc, _, b := built(t)
	stats := b.EnrichMenus(woc)
	if stats.RecordsEnriched == 0 || stats.DishesAdded == 0 {
		t.Fatalf("enrich stats = %+v", stats)
	}
	// Enriched records' menus contain the ground-truth dishes.
	checked := 0
	for _, r := range w.Restaurants {
		if r.Homepage == "" {
			continue
		}
		recs := woc.Records.ByAttr("restaurant", "phone", r.Phone)
		if len(recs) != 1 {
			continue
		}
		menu := recs[0].Get("menu")
		if menu == "" {
			continue
		}
		hits := 0
		for _, dish := range r.Menu {
			if strings.Contains(textproc.Normalize(menu), textproc.Normalize(dish)) {
				hits++
			}
		}
		if hits < len(r.Menu)/2 {
			t.Errorf("record for %s has menu %q, few ground-truth dishes", r.Name, menu)
		}
		checked++
		if checked >= 10 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no enriched record verified")
	}
	// Lineage records the enrichment operator chain.
	foundOp := false
	for _, r := range woc.Records.ByConcept("restaurant") {
		for _, v := range r.All("menu") {
			for _, op := range v.Prov.Operators {
				if op == "enrich" {
					foundOp = true
				}
			}
		}
	}
	if !foundOp {
		t.Error("no menu value carries the enrich operator in its lineage")
	}
	// Enrichment is idempotent on re-run (same dishes merge into the same
	// value, no duplicate menu entries).
	before := menuValueCount(woc)
	b.EnrichMenus(woc)
	if after := menuValueCount(woc); after != before {
		t.Errorf("re-enrichment changed menu value count: %d -> %d", before, after)
	}
}

func menuValueCount(woc *WebOfConcepts) int {
	n := 0
	for _, r := range woc.Records.ByConcept("restaurant") {
		n += len(r.All("menu"))
	}
	return n
}

func TestDataTaxonomyOverStore(t *testing.T) {
	w, woc, _, b := built(t)
	b.EnrichMenus(woc) // menus sharpen the clustering signal
	tx := woc.DataTaxonomy("restaurant", "restaurant", 12, "cuisine", "menu")
	nodes := tx.Nodes()
	if len(nodes) < 12 {
		t.Fatalf("taxonomy too small: %v", nodes)
	}
	// Every clustered record is an instance of exactly one sub-concept
	// that is-a restaurant (records without cuisine/menu text are skipped).
	placed := 0
	for _, r := range woc.Records.ByConcept("restaurant") {
		parents := tx.Parents(r.ID, taxonomy.InstanceOf)
		if len(parents) == 0 {
			continue
		}
		if len(parents) != 1 {
			t.Fatalf("record %s has parents %v", r.ID, parents)
		}
		if !tx.IsKindOf(parents[0], "restaurant") {
			t.Errorf("cluster %s not under root", parents[0])
		}
		placed++
	}
	if placed == 0 {
		t.Fatal("nothing placed")
	}
	// Clusters should be cuisine-skewed: measure purity against truth.
	cuisineOf := map[string]string{}
	for _, rest := range w.Restaurants {
		for _, rec := range woc.Records.ByAttr("restaurant", "phone", rest.Phone) {
			cuisineOf[rec.ID] = rest.Cuisine
		}
	}
	byCluster := map[string]map[string]int{}
	total, pure := 0, 0
	for _, r := range woc.Records.ByConcept("restaurant") {
		c := cuisineOf[r.ID]
		parents := tx.Parents(r.ID, taxonomy.InstanceOf)
		if c == "" || len(parents) == 0 {
			continue
		}
		p := parents[0]
		if byCluster[p] == nil {
			byCluster[p] = map[string]int{}
		}
		byCluster[p][c]++
		total++
	}
	for _, counts := range byCluster {
		maxN := 0
		for _, n := range counts {
			if n > maxN {
				maxN = n
			}
		}
		pure += maxN
	}
	purity := float64(pure) / float64(total)
	t.Logf("data-driven taxonomy purity over cuisines = %.3f (%d records, %d clusters)",
		purity, total, len(byCluster))
	if purity < 0.65 {
		t.Errorf("purity %.3f too low", purity)
	}
}
