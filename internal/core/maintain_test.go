package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"conceptweb/internal/lrec"
	"conceptweb/internal/webgen"
)

// flakyFetcher fails deterministically for a fraction of URLs, and can mark
// URLs permanently gone.
type flakyFetcher struct {
	w    *webgen.World
	gone map[string]bool
	// failEvery fails every Nth distinct fetch during Build (0 = off).
	failEvery int

	mu    sync.Mutex
	count int
}

// Fetch must be safe for concurrent use: the crawler fans fetches out
// across workers.
func (f *flakyFetcher) Fetch(url string) (string, error) {
	if f.gone[url] {
		return "", fmt.Errorf("gone: %s", url)
	}
	f.mu.Lock()
	f.count++
	n := f.count
	f.mu.Unlock()
	if f.failEvery > 0 && n%f.failEvery == 0 {
		return "", fmt.Errorf("transient failure: %s", url)
	}
	return f.w.Fetch(url)
}

func TestBuildSurvivesFlakyFetcher(t *testing.T) {
	w := smallWorld()
	reg := lrec.NewRegistry()
	webgen.RegisterConcepts(reg)
	ff := &flakyFetcher{w: w, failEvery: 10}
	b := &Builder{Fetcher: ff, Cfg: StandardConfig(reg, w.Cities(), webgen.Cuisines())}
	woc, stats, err := b.Build(w.SeedURLs())
	if err != nil {
		t.Fatal(err)
	}
	if stats.FetchFailures == 0 {
		t.Fatal("flaky fetcher produced no failures; test is vacuous")
	}
	if stats.PagesFetched == 0 || woc.Records.CountByConcept("restaurant") == 0 {
		t.Errorf("build collapsed under 10%% fetch failures: %+v", stats)
	}
	// The build should still have most of the web.
	if float64(stats.PagesFetched) < 0.8*float64(len(w.Pages())) {
		t.Errorf("fetched only %d of %d pages", stats.PagesFetched, len(w.Pages()))
	}
}

func TestRefreshHandlesGonePages(t *testing.T) {
	w := smallWorld()
	reg := lrec.NewRegistry()
	webgen.RegisterConcepts(reg)
	ff := &flakyFetcher{w: w, gone: map[string]bool{}}
	b := &Builder{Fetcher: ff, Cfg: StandardConfig(reg, w.Cities(), webgen.Cuisines())}
	woc, _, err := b.Build(w.SeedURLs())
	if err != nil {
		t.Fatal(err)
	}

	// Close down a restaurant: its homepage pages vanish.
	var target *webgen.Restaurant
	for _, r := range w.Restaurants {
		if r.Homepage != "" {
			if recs := woc.Records.ByAttr("restaurant", "phone", r.Phone); len(recs) == 1 {
				target = r
				break
			}
		}
	}
	if target == nil {
		t.Fatal("no target restaurant")
	}
	home := strings.TrimSuffix(target.Homepage, "/") + "/"
	ff.gone[home] = true

	if !woc.DocIndex.Has(home) {
		t.Fatal("homepage not indexed before refresh")
	}
	assocBefore := len(woc.AssocOf(home))
	if assocBefore == 0 {
		t.Fatal("homepage had no associations before refresh")
	}

	stats, err := b.Refresh(woc, []string{home})
	if err != nil {
		t.Fatal(err)
	}
	if stats.PagesGone != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if woc.DocIndex.Has(home) {
		t.Error("gone page still in the document index")
	}
	if len(woc.AssocOf(home)) != 0 {
		t.Error("gone page still has associations")
	}
	// The record survives (other sources still describe the restaurant) but
	// no longer points at the dead page.
	recs := woc.Records.ByAttr("restaurant", "phone", target.Phone)
	if len(recs) != 1 {
		t.Fatalf("record lost: %d", len(recs))
	}
	for _, u := range woc.PagesOf(recs[0].ID) {
		if u == home {
			t.Error("record still linked to gone page")
		}
	}
}

func TestLiveValueReadsSourceDocument(t *testing.T) {
	w := smallWorld()
	reg := lrec.NewRegistry()
	webgen.RegisterConcepts(reg)
	of := &overlayFetcher{w: w, overlay: map[string]string{}}
	b := &Builder{Fetcher: of, Cfg: StandardConfig(reg, w.Cities(), webgen.Cuisines())}
	woc, _, err := b.Build(w.SeedURLs())
	if err != nil {
		t.Fatal(err)
	}
	var target *webgen.Restaurant
	var rec *lrec.Record
	for _, r := range w.Restaurants {
		if recs := woc.Records.ByAttr("restaurant", "phone", r.Phone); len(recs) == 1 {
			target, rec = r, recs[0]
			break
		}
	}
	if target == nil {
		t.Fatal("no target")
	}
	// Live value agrees with the store before any change.
	live, err := b.LiveValue(woc, rec.ID, "phone")
	if err != nil {
		t.Fatal(err)
	}
	// Now the source page changes; the store is stale but LiveValue is not.
	best, _ := rec.Best("phone")
	src := best.Prov.SourceURL
	page, ok := w.PageByURL(src)
	if !ok {
		t.Fatalf("source %s not in world", src)
	}
	const newPhone = "408-555-4242"
	of.overlay[src] = strings.ReplaceAll(page.HTML, best.Value, newPhone)
	live2, err := b.LiveValue(woc, rec.ID, "phone")
	if err != nil {
		t.Fatal(err)
	}
	if live2 == live {
		t.Fatalf("live value did not change: %q", live2)
	}
	if got := onlyDigitsTest(live2); got != onlyDigitsTest(newPhone) {
		t.Errorf("live = %q, want %q", live2, newPhone)
	}
	// Store still holds the old value (LiveValue is read-only).
	cur, _ := woc.Records.Get(rec.ID)
	if v, _ := cur.Best("phone"); onlyDigitsTest(v.Value) == onlyDigitsTest(newPhone) {
		t.Error("LiveValue mutated the store")
	}
	// Errors: unknown record, unsourced key.
	if _, err := b.LiveValue(woc, "nope", "phone"); err == nil {
		t.Error("unknown record should fail")
	}
	if _, err := b.LiveValue(woc, rec.ID, "nonexistent-attr"); err == nil {
		t.Error("missing attribute should fail")
	}
}

func onlyDigitsTest(s string) string {
	out := []byte{}
	for i := 0; i < len(s); i++ {
		if s[i] >= '0' && s[i] <= '9' {
			out = append(out, s[i])
		}
	}
	return string(out)
}
