package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"conceptweb/internal/extract"
	"conceptweb/internal/index"
	"conceptweb/internal/lrec"
	"conceptweb/internal/match"
	"conceptweb/internal/webgen"
	"conceptweb/internal/webgraph"
)

// flakyFetcher fails deterministically for a fraction of URLs, and can mark
// URLs permanently gone.
type flakyFetcher struct {
	w    *webgen.World
	gone map[string]bool
	// failEvery fails every Nth distinct fetch during Build (0 = off).
	failEvery int

	mu    sync.Mutex
	count int
}

// Fetch must be safe for concurrent use: the crawler fans fetches out
// across workers.
func (f *flakyFetcher) Fetch(url string) (string, error) {
	if f.gone[url] {
		return "", fmt.Errorf("gone: %s", url)
	}
	f.mu.Lock()
	f.count++
	n := f.count
	f.mu.Unlock()
	if f.failEvery > 0 && n%f.failEvery == 0 {
		return "", fmt.Errorf("transient failure: %s", url)
	}
	return f.w.Fetch(url)
}

func TestBuildSurvivesFlakyFetcher(t *testing.T) {
	w := smallWorld()
	reg := lrec.NewRegistry()
	webgen.RegisterConcepts(reg)
	ff := &flakyFetcher{w: w, failEvery: 10}
	b := &Builder{Fetcher: ff, Cfg: StandardConfig(reg, w.Cities(), webgen.Cuisines())}
	woc, stats, err := b.Build(w.SeedURLs())
	if err != nil {
		t.Fatal(err)
	}
	if stats.FetchFailures == 0 {
		t.Fatal("flaky fetcher produced no failures; test is vacuous")
	}
	if stats.PagesFetched == 0 || woc.Records.CountByConcept("restaurant") == 0 {
		t.Errorf("build collapsed under 10%% fetch failures: %+v", stats)
	}
	// The build should still have most of the web.
	if float64(stats.PagesFetched) < 0.8*float64(len(w.Pages())) {
		t.Errorf("fetched only %d of %d pages", stats.PagesFetched, len(w.Pages()))
	}
}

func TestRefreshHandlesGonePages(t *testing.T) {
	w := smallWorld()
	reg := lrec.NewRegistry()
	webgen.RegisterConcepts(reg)
	ff := &flakyFetcher{w: w, gone: map[string]bool{}}
	b := &Builder{Fetcher: ff, Cfg: StandardConfig(reg, w.Cities(), webgen.Cuisines())}
	woc, _, err := b.Build(w.SeedURLs())
	if err != nil {
		t.Fatal(err)
	}

	// Close down a restaurant: its homepage pages vanish.
	var target *webgen.Restaurant
	for _, r := range w.Restaurants {
		if r.Homepage != "" {
			if recs := woc.Records.ByAttr("restaurant", "phone", r.Phone); len(recs) == 1 {
				target = r
				break
			}
		}
	}
	if target == nil {
		t.Fatal("no target restaurant")
	}
	home := strings.TrimSuffix(target.Homepage, "/") + "/"
	ff.gone[home] = true

	if !woc.DocIndex.Has(home) {
		t.Fatal("homepage not indexed before refresh")
	}
	assocBefore := len(woc.AssocOf(home))
	if assocBefore == 0 {
		t.Fatal("homepage had no associations before refresh")
	}

	stats, err := b.Refresh(woc, []string{home})
	if err != nil {
		t.Fatal(err)
	}
	if stats.PagesGone != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if woc.DocIndex.Has(home) {
		t.Error("gone page still in the document index")
	}
	if len(woc.AssocOf(home)) != 0 {
		t.Error("gone page still has associations")
	}
	// The record survives (other sources still describe the restaurant) but
	// no longer points at the dead page.
	recs := woc.Records.ByAttr("restaurant", "phone", target.Phone)
	if len(recs) != 1 {
		t.Fatalf("record lost: %d", len(recs))
	}
	for _, u := range woc.PagesOf(recs[0].ID) {
		if u == home {
			t.Error("record still linked to gone page")
		}
	}
}

// TestRefreshResurrectsGonePage pins the gone→reappear bug: a page that
// vanishes and later returns with byte-identical content must rejoin the
// document index and association maps. Before webgraph.Store.Delete
// existed, the stale page (and its content hash) stayed in woc.Pages, so
// the reappearance registered as unchanged and was silently dropped.
func TestRefreshResurrectsGonePage(t *testing.T) {
	w := smallWorld()
	reg := lrec.NewRegistry()
	webgen.RegisterConcepts(reg)
	ff := &flakyFetcher{w: w, gone: map[string]bool{}}
	b := &Builder{Fetcher: ff, Cfg: StandardConfig(reg, w.Cities(), webgen.Cuisines())}
	woc, _, err := b.Build(w.SeedURLs())
	if err != nil {
		t.Fatal(err)
	}

	var target *webgen.Restaurant
	for _, r := range w.Restaurants {
		if r.Homepage != "" {
			if recs := woc.Records.ByAttr("restaurant", "phone", r.Phone); len(recs) == 1 {
				target = r
				break
			}
		}
	}
	if target == nil {
		t.Fatal("no target restaurant")
	}
	home := strings.TrimSuffix(target.Homepage, "/") + "/"
	recID := woc.Records.ByAttr("restaurant", "phone", target.Phone)[0].ID

	// The page dies.
	ff.gone[home] = true
	if _, err := b.Refresh(woc, []string{home}); err != nil {
		t.Fatal(err)
	}
	if woc.DocIndex.Has(home) {
		t.Fatal("gone page still indexed")
	}
	if _, err := woc.Pages.Get(home); err == nil {
		t.Fatal("gone page still in the page store")
	}

	// The page returns with identical bytes ("the restaurant re-opens").
	delete(ff.gone, home)
	stats, err := b.Refresh(woc, []string{home})
	if err != nil {
		t.Fatal(err)
	}
	if stats.PagesChanged != 1 {
		t.Fatalf("resurrection not detected as a change: %+v", stats)
	}
	if !woc.DocIndex.Has(home) {
		t.Error("resurrected page missing from the document index")
	}
	if _, err := woc.Pages.Get(home); err != nil {
		t.Error("resurrected page missing from the page store")
	}
	found := false
	for _, id := range woc.AssocOf(home) {
		if id == recID {
			found = true
		}
	}
	if !found {
		t.Errorf("resurrected page not re-associated with its record: %v", woc.AssocOf(home))
	}
	recs := woc.Records.ByAttr("restaurant", "phone", target.Phone)
	if len(recs) != 1 {
		t.Fatalf("record count after resurrection = %d", len(recs))
	}
}

// TestUpsertTieBreakLowestID pins the entity-match tie-break: when two
// stored candidates score identically against an incoming record, the merge
// must land on the lowest record ID — ByConcept iterates in ascending ID
// order and an incumbent is displaced only by a strictly higher score.
func TestUpsertTieBreakLowestID(t *testing.T) {
	reg := lrec.NewRegistry()
	reg.Register(lrec.Concept{Name: "widget", Domain: "test", Attrs: []lrec.AttrSpec{
		{Key: "name", Kind: lrec.KindName}, {Key: "color", Kind: lrec.KindText},
	}})
	// One comparator whose agreement weight log(0.99/0.01) ≈ 4.6 clears the
	// default Upper threshold of 4.5 on its own.
	m := match.NewMatcher([]match.Comparator{{
		Key: "name",
		Sim: func(a, b string) float64 {
			if a == b {
				return 1
			}
			return 0
		},
		AgreeAt: 0.9, M: 0.99, U: 0.01,
	}})
	b := &Builder{Cfg: Config{Registry: reg, Matchers: map[string]*match.Matcher{"widget": m}}}
	woc := &WebOfConcepts{
		Registry: reg,
		Records:  lrec.NewMemStore(lrec.WithRegistry(reg)),
		Pages:    webgraph.NewStore(),
		DocIndex: index.NewSharded(1),
		RecIndex: index.NewSharded(1),
		Assoc:    map[string][]string{},
		RevAssoc: map[string][]string{},
	}
	// Insert in descending-ID order so "first stored wins" cannot mask an
	// iteration-order accident.
	for _, id := range []string{"widget:zz", "widget:aa"} {
		r := lrec.NewRecord(id, "widget")
		r.Set("name", "Same Name")
		if err := woc.Records.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	c := extract.NewCandidate("widget", "w.example/x", "test")
	c.Add("name", "Same Name", 1)
	c.Add("color", "blue", 1)
	created, updated := b.upsert(woc, c.ToRecord(c.SynthesizeID(), woc.Records.NextSeq()))
	if created != 0 || updated != 1 {
		t.Fatalf("upsert = (%d created, %d updated), want (0, 1)", created, updated)
	}
	low, _ := woc.Records.Get("widget:aa")
	if low.Get("color") != "blue" {
		t.Errorf("equal-score merge skipped the lowest ID: widget:aa = %s", low)
	}
	high, _ := woc.Records.Get("widget:zz")
	if high.Get("color") != "" {
		t.Errorf("equal-score merge landed on the highest ID: widget:zz = %s", high)
	}
}

// TestReconcileDegradedStore: when the store latches read-only mid-flight,
// Reconcile must not diverge what callers read from what the store holds —
// the trim happens on a clone and is only adopted after a successful put.
func TestReconcileDegradedStore(t *testing.T) {
	reg := lrec.NewRegistry()
	reg.Register(lrec.Concept{Name: "widget", Domain: "test", Attrs: []lrec.AttrSpec{
		{Key: "phone", Kind: lrec.KindPhone, MaxValues: 1},
	}})
	mk := func() *WebOfConcepts {
		store := lrec.NewMemStore(lrec.WithRegistry(reg))
		r := lrec.NewRecord("widget:1", "widget")
		r.Add("phone", lrec.AttrValue{Value: "111", Confidence: 0.9, Prov: lrec.Provenance{Seq: 1}})
		r.Add("phone", lrec.AttrValue{Value: "222", Confidence: 0.8, Prov: lrec.Provenance{Seq: 2}})
		if err := store.Put(r); err != nil {
			t.Fatal(err)
		}
		return &WebOfConcepts{Registry: reg, Records: store}
	}

	// Healthy store: the over-full attribute trims and persists.
	healthy := mk()
	if changed := healthy.Reconcile("widget", PreferRecent); changed != 1 {
		t.Fatalf("healthy reconcile changed = %d, want 1", changed)
	}
	if cur, _ := healthy.Records.Get("widget:1"); len(cur.All("phone")) != 1 {
		t.Fatalf("healthy reconcile left %d phones", len(cur.All("phone")))
	}

	// Degraded store: the put fails, nothing is counted, and the stored
	// record still holds both values — no memory/store divergence.
	degraded := mk()
	degraded.Records.LatchReadOnly(fmt.Errorf("injected log failure"))
	if changed := degraded.Reconcile("widget", PreferRecent); changed != 0 {
		t.Errorf("degraded reconcile changed = %d, want 0", changed)
	}
	cur, err := degraded.Records.Get("widget:1")
	if err != nil {
		t.Fatal(err)
	}
	if len(cur.All("phone")) != 2 {
		t.Errorf("degraded reconcile diverged: store holds %d phone values, want 2 untouched", len(cur.All("phone")))
	}
}

// TestLiveValueErrorPaths covers the three failure modes of the live-read
// path: a value with no source URL in its provenance, a fetch failure on
// the source page, and a refetched page the recognizer no longer matches.
func TestLiveValueErrorPaths(t *testing.T) {
	w := smallWorld()
	reg := lrec.NewRegistry()
	webgen.RegisterConcepts(reg)
	of := &overlayFetcher{w: w, overlay: map[string]string{}}
	ff := &flakyFetcher{w: w, gone: map[string]bool{}}
	// Chain: gone-able wrapper over the overlay wrapper over the world.
	fetch := webgraph.FetcherFunc(func(url string) (string, error) {
		if ff.gone[url] {
			return "", fmt.Errorf("gone: %s", url)
		}
		return of.Fetch(url)
	})
	b := &Builder{Fetcher: fetch, Cfg: StandardConfig(reg, w.Cities(), webgen.Cuisines())}
	woc, _, err := b.Build(w.SeedURLs())
	if err != nil {
		t.Fatal(err)
	}
	var rec *lrec.Record
	for _, r := range w.Restaurants {
		if recs := woc.Records.ByAttr("restaurant", "phone", r.Phone); len(recs) == 1 {
			rec = recs[0]
			break
		}
	}
	if rec == nil {
		t.Fatal("no target record")
	}
	best, _ := rec.Best("phone")
	src := best.Prov.SourceURL
	if src == "" {
		t.Fatal("target phone has no provenance; test setup broken")
	}

	// Missing provenance URL: a record whose best value carries no source.
	unsourced := lrec.NewRecord("restaurant:unsourced-test", "restaurant")
	unsourced.Add("name", lrec.AttrValue{Value: "No Prov Cafe", Confidence: 1})
	unsourced.Add("phone", lrec.AttrValue{Value: "408-555-0000", Confidence: 1})
	if err := woc.Records.Put(unsourced); err != nil {
		t.Fatal(err)
	}
	if _, err := b.LiveValue(woc, "restaurant:unsourced-test", "phone"); err == nil {
		t.Error("unsourced value should fail")
	}

	// Fetch failure: the source page is gone.
	ff.gone[src] = true
	if _, err := b.LiveValue(woc, rec.ID, "phone"); err == nil {
		t.Error("fetch failure should surface as an error")
	}
	delete(ff.gone, src)

	// Recognizer miss: the page now holds no recognizable phone.
	of.overlay[src] = "<html><head><title>moved</title></head><body>we have moved, call the new owner</body></html>"
	if _, err := b.LiveValue(woc, rec.ID, "phone"); err == nil {
		t.Error("recognizer miss should surface as an error")
	}
}

func TestLiveValueReadsSourceDocument(t *testing.T) {
	w := smallWorld()
	reg := lrec.NewRegistry()
	webgen.RegisterConcepts(reg)
	of := &overlayFetcher{w: w, overlay: map[string]string{}}
	b := &Builder{Fetcher: of, Cfg: StandardConfig(reg, w.Cities(), webgen.Cuisines())}
	woc, _, err := b.Build(w.SeedURLs())
	if err != nil {
		t.Fatal(err)
	}
	var target *webgen.Restaurant
	var rec *lrec.Record
	for _, r := range w.Restaurants {
		if recs := woc.Records.ByAttr("restaurant", "phone", r.Phone); len(recs) == 1 {
			target, rec = r, recs[0]
			break
		}
	}
	if target == nil {
		t.Fatal("no target")
	}
	// Live value agrees with the store before any change.
	live, err := b.LiveValue(woc, rec.ID, "phone")
	if err != nil {
		t.Fatal(err)
	}
	// Now the source page changes; the store is stale but LiveValue is not.
	best, _ := rec.Best("phone")
	src := best.Prov.SourceURL
	page, ok := w.PageByURL(src)
	if !ok {
		t.Fatalf("source %s not in world", src)
	}
	const newPhone = "408-555-4242"
	of.overlay[src] = strings.ReplaceAll(page.HTML, best.Value, newPhone)
	live2, err := b.LiveValue(woc, rec.ID, "phone")
	if err != nil {
		t.Fatal(err)
	}
	if live2 == live {
		t.Fatalf("live value did not change: %q", live2)
	}
	if got := onlyDigitsTest(live2); got != onlyDigitsTest(newPhone) {
		t.Errorf("live = %q, want %q", live2, newPhone)
	}
	// Store still holds the old value (LiveValue is read-only).
	cur, _ := woc.Records.Get(rec.ID)
	if v, _ := cur.Best("phone"); onlyDigitsTest(v.Value) == onlyDigitsTest(newPhone) {
		t.Error("LiveValue mutated the store")
	}
	// Errors: unknown record, unsourced key.
	if _, err := b.LiveValue(woc, "nope", "phone"); err == nil {
		t.Error("unknown record should fail")
	}
	if _, err := b.LiveValue(woc, rec.ID, "nonexistent-attr"); err == nil {
		t.Error("missing attribute should fail")
	}
}

func onlyDigitsTest(s string) string {
	out := []byte{}
	for i := 0; i < len(s); i++ {
		if s[i] >= '0' && s[i] <= '9' {
			out = append(out, s[i])
		}
	}
	return string(out)
}
