package core

import (
	"sort"

	"conceptweb/internal/extract"
	"conceptweb/internal/lrec"
)

// conceptGroups folds the extraction stage's candidate stream into
// per-concept, pre-merged record groups incrementally, as hosts finish
// extracting — the streamed replacement for collecting every candidate into
// one corpus-sized slice and grouping it afterwards. Candidates that
// pre-merge into an existing record (same synthesized ID) die immediately;
// only one record per distinct ID stays resident.
//
// Provenance seq stamping is deferred: each candidate's values carry its
// 0-based arrival ordinal within its concept until finish reserves the real
// seq range and rewrites them. The rewrite reproduces the eager scheme
// (one store.NextSeq per candidate, concepts processed in sorted order)
// exactly, because Record.Add keeps the earlier provenance on value dedupe
// and ordinal order is arrival order.
type conceptGroups struct {
	// filter, when non-nil, decides whether a candidate folds in (the
	// Refresh path drops candidates that re-assert untouched records).
	// Dropped candidates consume no seq ordinal.
	filter func(c *extract.Candidate, id string) bool
	groups map[string]*conceptGroup
	total  int // candidates offered, before filtering (build stats)
}

type conceptGroup struct {
	n     int // candidates folded: the next ordinal
	pre   map[string]*lrec.Record
	order []string
}

func newConceptGroups(filter func(c *extract.Candidate, id string) bool) *conceptGroups {
	return &conceptGroups{filter: filter, groups: make(map[string]*conceptGroup)}
}

// add folds one candidate. Not safe for concurrent use: callers fold from
// the ordered fan-in's consume phase or a plain loop.
func (cg *conceptGroups) add(c *extract.Candidate) {
	cg.total++
	id := c.SynthesizeID()
	if cg.filter != nil && !cg.filter(c, id) {
		return
	}
	g := cg.groups[c.Concept]
	if g == nil {
		g = &conceptGroup{pre: make(map[string]*lrec.Record)}
		cg.groups[c.Concept] = g
	}
	rec := c.ToRecord(id, uint64(g.n))
	g.n++
	if exist, ok := g.pre[id]; ok {
		exist.Merge(rec) //nolint:errcheck // same concept
	} else {
		g.pre[id] = rec
		g.order = append(g.order, id)
	}
}

// addAll folds a slice of candidates in order.
func (cg *conceptGroups) addAll(cands []*extract.Candidate) {
	for _, c := range cands {
		cg.add(c)
	}
}

// concepts returns the folded concepts in sorted order — the resolve loop's
// iteration order.
func (cg *conceptGroups) concepts() []string {
	concepts := make([]string, 0, len(cg.groups))
	for c := range cg.groups {
		concepts = append(concepts, c)
	}
	sort.Strings(concepts)
	return concepts
}

// take hands over one concept's pre-merged records in sorted-ID order,
// first reserving the concept's seq range from the store and rewriting
// every value's provisional ordinal into its final seq. The reservation
// happens per concept, from the resolve loop, because the store's logical
// clock also assigns record Versions inside Put/PutBatch: the eager scheme
// interleaved n_c provenance draws with each concept's batch of version
// draws, and candidate ordinal o of this concept drew base + o + 1 where
// base is the clock value as the concept's group was reached. A concept's
// group may be taken once.
func (cg *conceptGroups) take(concept string, store *lrec.Store) []*lrec.Record {
	g := cg.groups[concept]
	if g == nil {
		return nil
	}
	n := uint64(g.n)
	base := store.AdvanceSeq(n) - n
	sort.Strings(g.order)
	recs := make([]*lrec.Record, 0, len(g.order))
	for _, id := range g.order {
		r := g.pre[id]
		for _, vals := range r.Attrs {
			for i := range vals {
				vals[i].Prov.Seq += base + 1
			}
		}
		recs = append(recs, r)
	}
	delete(cg.groups, concept)
	return recs
}
