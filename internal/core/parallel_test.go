package core

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"unicode/utf8"

	"conceptweb/internal/index"
	"conceptweb/internal/lrec"
	"conceptweb/internal/webgen"
	"conceptweb/internal/webgraph"
)

// buildAt runs the standard pipeline over a freshly generated small world
// with the given worker-pool size.
func buildAt(t *testing.T, workers int) (*WebOfConcepts, *BuildStats, *Builder) {
	t.Helper()
	w := smallWorld()
	reg := lrec.NewRegistry()
	webgen.RegisterConcepts(reg)
	cfg := StandardConfig(reg, w.Cities(), webgen.Cuisines())
	cfg.Workers = workers
	b := &Builder{Fetcher: w, Cfg: cfg}
	woc, stats, err := b.Build(w.SeedURLs())
	if err != nil {
		t.Fatalf("build (workers=%d): %v", workers, err)
	}
	return woc, stats, b
}

// snapshotRecords flattens every stored record — ID, concept, version, and
// each attribute value with its full provenance — into a canonical string,
// so two stores compare byte-for-byte.
func snapshotRecords(woc *WebOfConcepts) []string {
	var out []string
	woc.Records.Scan(func(r *lrec.Record) bool {
		var b strings.Builder
		fmt.Fprintf(&b, "%s|%s|v%d", r.ID, r.Concept, r.Version)
		for _, k := range r.Keys() {
			for _, v := range r.All(k) {
				fmt.Fprintf(&b, "|%s=%s conf=%.6f sup=%d prov=%s",
					k, v.Value, v.Confidence, v.Support, v.Prov.String())
			}
		}
		out = append(out, b.String())
		return true
	})
	return out
}

// TestParallelBuildDeterminism is the fan-in contract: the same seed and
// corpus must yield identical record IDs and versions, Assoc/RevAssoc maps,
// and search results whether the pipeline runs on one worker or eight.
// CI runs this under -race, which also exercises the concurrent extract,
// link, and index stages for data races.
func TestParallelBuildDeterminism(t *testing.T) {
	woc1, stats1, _ := buildAt(t, 1)
	woc8, stats8, _ := buildAt(t, 8)
	defer woc1.Close()
	defer woc8.Close()

	if stats1.Workers != 1 || stats8.Workers != 8 {
		t.Fatalf("workers annotation = %d/%d, want 1/8", stats1.Workers, stats8.Workers)
	}
	if stats1.Candidates != stats8.Candidates ||
		stats1.RecordsStored != stats8.RecordsStored ||
		stats1.PagesLinked != stats8.PagesLinked ||
		stats1.ReviewRecords != stats8.ReviewRecords {
		t.Errorf("stats diverge: 1 worker %+v, 8 workers %+v", stats1, stats8)
	}

	r1, r8 := snapshotRecords(woc1), snapshotRecords(woc8)
	if len(r1) != len(r8) {
		t.Fatalf("record count diverges: %d vs %d", len(r1), len(r8))
	}
	for i := range r1 {
		if r1[i] != r8[i] {
			t.Fatalf("record %d diverges:\n  w1: %s\n  w8: %s", i, r1[i], r8[i])
		}
	}

	if !reflect.DeepEqual(woc1.Assoc, woc8.Assoc) {
		t.Error("Assoc maps diverge between worker counts")
	}
	if !reflect.DeepEqual(woc1.RevAssoc, woc8.RevAssoc) {
		t.Error("RevAssoc maps diverge between worker counts")
	}

	if woc1.DocIndex.Len() != woc8.DocIndex.Len() || woc1.DocIndex.Terms() != woc8.DocIndex.Terms() {
		t.Errorf("doc index diverges: %d docs/%d terms vs %d docs/%d terms",
			woc1.DocIndex.Len(), woc1.DocIndex.Terms(), woc8.DocIndex.Len(), woc8.DocIndex.Terms())
	}
	probes := []string{
		"mexican cupertino", "pizza menu", "sushi san jose",
		"best thai", "restaurant review", "gochi",
	}
	for _, q := range probes {
		for _, pair := range []struct {
			name string
			a, b *index.Sharded
		}{
			{"doc", woc1.DocIndex, woc8.DocIndex},
			{"rec", woc1.RecIndex, woc8.RecIndex},
		} {
			got1, got8 := searchIDs(pair.a, q, 10), searchIDs(pair.b, q, 10)
			if !reflect.DeepEqual(got1, got8) {
				t.Errorf("%s search %q diverges:\n  w1: %v\n  w8: %v", pair.name, q, got1, got8)
			}
		}
	}
}

// searchIDs flattens a ranked search into scored ID strings for comparison.
func searchIDs(ix *index.Sharded, q string, k int) []string {
	var out []string
	for _, r := range ix.Search(q, k) {
		out = append(out, fmt.Sprintf("%s@%.9f", r.ID, r.Score))
	}
	return out
}

// TestParallelRefreshDeterminism runs the same refresh (a slice of URLs,
// some of them dead) at both worker counts against identically built webs
// and asserts the resulting stores agree.
func TestParallelRefreshDeterminism(t *testing.T) {
	woc1, _, b1 := buildAt(t, 1)
	woc8, _, b8 := buildAt(t, 8)
	defer woc1.Close()
	defer woc8.Close()

	urls := woc1.Pages.URLs()
	if len(urls) > 200 {
		urls = urls[:200]
	}
	urls = append([]string{"gone.example/nowhere"}, urls...)
	st1, err := b1.Refresh(woc1, urls)
	if err != nil {
		t.Fatal(err)
	}
	st8, err := b8.Refresh(woc8, urls)
	if err != nil {
		t.Fatal(err)
	}
	if st1.PagesChecked != st8.PagesChecked || st1.PagesUnchanged != st8.PagesUnchanged ||
		st1.PagesGone != st8.PagesGone || st1.RecordsCreated != st8.RecordsCreated ||
		st1.RecordsUpdated != st8.RecordsUpdated {
		t.Errorf("refresh stats diverge: %+v vs %+v", st1, st8)
	}
	r1, r8 := snapshotRecords(woc1), snapshotRecords(woc8)
	if !reflect.DeepEqual(r1, r8) {
		t.Error("stores diverge after refresh at different worker counts")
	}
}

func TestTruncateBytes(t *testing.T) {
	cases := []struct {
		in   string
		max  int
		want string
	}{
		{"hello", 280, "hello"},
		{"hello", 4, "hell"},
		{"héllo", 2, "h"},  // é spans bytes 1-2; cut backs up
		{"héllo", 3, "hé"}, // boundary exactly after the rune
		{"日本語", 4, "日"},    // 3-byte runes
		{"日本語", 3, "日"},
		{"日本語", 2, ""},
		{"", 10, ""},
	}
	for _, c := range cases {
		got := truncateBytes(c.in, c.max)
		if got != c.want {
			t.Errorf("truncateBytes(%q, %d) = %q, want %q", c.in, c.max, got, c.want)
		}
		if !utf8.ValidString(got) {
			t.Errorf("truncateBytes(%q, %d) = %q is not valid UTF-8", c.in, c.max, got)
		}
	}
}

// corpusFetcher serves a handful of handwritten pages.
type corpusFetcher map[string]string

func (f corpusFetcher) Fetch(u string) (string, error) {
	if html, ok := f[u]; ok {
		return html, nil
	}
	return "", webgraph.ErrNotFound
}

// TestLinkTextSnippetRuneBoundary builds a two-site web whose review page is
// long multi-byte UTF-8 text positioned so the 280-byte snippet budget lands
// mid-rune, and asserts the stored review snippet is still valid UTF-8.
func TestLinkTextSnippetRuneBoundary(t *testing.T) {
	item := func(name, street, zip, phone string) string {
		return fmt.Sprintf(`<div class="hit"><a href="/biz/x">%s</a> <span>%s, Cupertino %s</span> <span>%s</span></div>`,
			name, street, zip, phone)
	}
	review := "Dinner at Café München Bistro on Alma in Cupertino was superbe — " +
		strings.Repeat("crème brûlée, weißwurst, jalapeño tapenade, ", 12) + "truly mémorable."
	fetcher := corpusFetcher{
		"guide.example/": `<html><head><title>Guide</title></head><body>` +
			item("Café München Bistro", "12 Alma St", "95014", "(408) 555-0101") +
			item("Blue Palm Diner", "99 Castro St", "95014", "(408) 555-0102") +
			`</body></html>`,
		"blog.example/review": `<html><head><title>A night out</title></head><body><p>` +
			review + `</p></body></html>`,
	}

	reg := lrec.NewRegistry()
	webgen.RegisterConcepts(reg)
	cfg := StandardConfig(reg, []string{"Cupertino"}, []string{"german"})
	cfg.Workers = 4
	b := &Builder{Fetcher: fetcher, Cfg: cfg}
	woc, stats, err := b.Build([]string{"guide.example/", "blog.example/review"})
	if err != nil {
		t.Fatal(err)
	}
	defer woc.Close()

	// Fixture sanity: the review text must exceed the snippet budget and
	// byte 280 must fall inside a multi-byte rune, or the test proves nothing.
	p, err := woc.Pages.Get("blog.example/review")
	if err != nil {
		t.Fatal(err)
	}
	text := pageMainText(p)
	if len(text) <= 280 {
		t.Fatalf("fixture: review text is %d bytes, need > 280", len(text))
	}
	if utf8.RuneStart(text[280]) {
		t.Fatalf("fixture: byte 280 of the review text is a rune boundary; adjust the fixture")
	}
	if stats.PagesLinked == 0 || stats.ReviewRecords == 0 {
		t.Fatalf("review page was not linked: %+v", stats)
	}

	var reviews []*lrec.Record
	woc.Records.Scan(func(r *lrec.Record) bool {
		if r.Concept == "review" {
			reviews = append(reviews, r)
		}
		return true
	})
	if len(reviews) == 0 {
		t.Fatal("no review records stored")
	}
	for _, r := range reviews {
		snippet := r.Get("text")
		if len(snippet) > 280 {
			t.Errorf("snippet is %d bytes, want <= 280", len(snippet))
		}
		if !utf8.ValidString(snippet) {
			t.Errorf("snippet is not valid UTF-8: %q", snippet)
		}
	}
}
