package core

import (
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"conceptweb/internal/lrec"
	"conceptweb/internal/webgen"
)

// buildMatrix runs the standard pipeline at the given worker-pool size and
// shard count, optionally backing the store durably in dir.
func buildMatrix(t *testing.T, workers, shards int, dir string) (*WebOfConcepts, *BuildStats) {
	t.Helper()
	w := smallWorld()
	reg := lrec.NewRegistry()
	webgen.RegisterConcepts(reg)
	cfg := StandardConfig(reg, w.Cities(), webgen.Cuisines())
	cfg.Workers = workers
	cfg.Shards = shards
	cfg.StoreDir = dir
	b := &Builder{Fetcher: w, Cfg: cfg}
	woc, stats, err := b.Build(w.SeedURLs())
	if err != nil {
		t.Fatalf("build (workers=%d shards=%d): %v", workers, shards, err)
	}
	return woc, stats
}

// fingerprint hashes the canonical record stream, so whole stores compare as
// one value and divergence messages stay small.
func fingerprint(woc *WebOfConcepts) string {
	h := sha256.New()
	for _, line := range snapshotRecords(woc) {
		h.Write([]byte(line))
		h.Write([]byte{'\n'})
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// TestShardWorkerMatrixDeterminism is the PR's determinism bar: the store
// fingerprint and ranked search results must be byte-identical at every
// (workers x shards) combination — partitioning is an execution detail, never
// an output detail. CI runs this under -race, which also exercises the
// concurrent per-shard writers.
func TestShardWorkerMatrixDeterminism(t *testing.T) {
	workerCounts := []int{1, 8}
	shardCounts := []int{1, 4, 16}
	queries := []string{
		"mexican cupertino", "pizza menu", "sushi san jose",
		"best thai", "restaurant review", "gochi",
	}

	type run struct {
		workers, shards int
		woc             *WebOfConcepts
		stats           *BuildStats
	}
	var runs []run
	for _, wk := range workerCounts {
		for _, sh := range shardCounts {
			woc, stats := buildMatrix(t, wk, sh, "")
			defer woc.Close()
			runs = append(runs, run{wk, sh, woc, stats})
		}
	}
	base := runs[0]
	baseFP := fingerprint(base.woc)
	baseSearch := map[string][]string{}
	for _, q := range queries {
		baseSearch["doc:"+q] = searchIDs(base.woc.DocIndex, q, 10)
		baseSearch["rec:"+q] = searchIDs(base.woc.RecIndex, q, 10)
	}
	baseEpoch := base.woc.Epoch()

	for _, r := range runs[1:] {
		tag := fmt.Sprintf("workers=%d shards=%d", r.workers, r.shards)
		if r.woc.Records.NumShards() != r.shards {
			t.Errorf("%s: NumShards = %d", tag, r.woc.Records.NumShards())
		}
		if got := fingerprint(r.woc); got != baseFP {
			t.Errorf("%s: store fingerprint diverges from workers=1 shards=1", tag)
		}
		if r.stats.RecordsStored != base.stats.RecordsStored ||
			r.stats.Candidates != base.stats.Candidates ||
			r.stats.ClustersMerged != base.stats.ClustersMerged {
			t.Errorf("%s: stats diverge: %+v vs %+v", tag, r.stats, base.stats)
		}
		if !reflect.DeepEqual(r.woc.Assoc, base.woc.Assoc) {
			t.Errorf("%s: Assoc maps diverge", tag)
		}
		for _, q := range queries {
			if got := searchIDs(r.woc.DocIndex, q, 10); !reflect.DeepEqual(got, baseSearch["doc:"+q]) {
				t.Errorf("%s: doc search %q diverges:\n got %v\nwant %v", tag, q, got, baseSearch["doc:"+q])
			}
			if got := searchIDs(r.woc.RecIndex, q, 10); !reflect.DeepEqual(got, baseSearch["rec:"+q]) {
				t.Errorf("%s: rec search %q diverges:\n got %v\nwant %v", tag, q, got, baseSearch["rec:"+q])
			}
		}
		// The composed epoch counts mutations, so it too is invariant.
		if got := r.woc.Epoch(); got != baseEpoch {
			t.Errorf("%s: composed epoch %d diverges from %d", tag, got, baseEpoch)
		}
	}
}

// TestShardWALByteIdentityAcrossWorkers: at a fixed shard count, the durable
// on-disk artifacts (every shard WAL, snapshot, and the manifest) must be
// byte-identical no matter how many workers built them — the strongest form
// of the determinism contract.
func TestShardWALByteIdentityAcrossWorkers(t *testing.T) {
	for _, shards := range []int{1, 4} {
		dirs := map[int]string{}
		for _, workers := range []int{1, 8} {
			dir := t.TempDir()
			woc, _ := buildMatrix(t, workers, shards, dir)
			if err := woc.Close(); err != nil {
				t.Fatalf("close (workers=%d shards=%d): %v", workers, shards, err)
			}
			dirs[workers] = dir
		}
		files := func(dir string) []string {
			ents, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			var names []string
			for _, e := range ents {
				names = append(names, e.Name())
			}
			sort.Strings(names)
			return names
		}
		f1, f8 := files(dirs[1]), files(dirs[8])
		if !reflect.DeepEqual(f1, f8) {
			t.Fatalf("shards=%d: directory listings diverge: %v vs %v", shards, f1, f8)
		}
		for _, name := range f1 {
			a, err := os.ReadFile(filepath.Join(dirs[1], name))
			if err != nil {
				t.Fatal(err)
			}
			b, err := os.ReadFile(filepath.Join(dirs[8], name))
			if err != nil {
				t.Fatal(err)
			}
			if string(a) != string(b) {
				t.Errorf("shards=%d: %s differs between 1 and 8 workers (%d vs %d bytes)",
					shards, name, len(a), len(b))
			}
		}
	}
}
