package core

import (
	"sort"
	"strings"

	"conceptweb/internal/extract"
	"conceptweb/internal/lrec"
	"conceptweb/internal/textproc"
	"conceptweb/internal/webgraph"
)

// Enrichment is the second of the paper's extraction operation families
// (§4: operations "either create new records belonging to the concept or
// enrich existing records"). EnrichMenus walks the official-homepage sites
// of stored restaurant records, extracts their menu lists with the menu
// domain knowledge, and folds the dishes into the records' "menu" attribute
// — which is what makes attribute queries like "gochi menu" answerable from
// the concept store.

// EnrichStats reports one enrichment pass.
type EnrichStats struct {
	RecordsEnriched int
	DishesAdded     int
}

// EnrichMenus attaches menu attributes to restaurant records from their
// homepage sites' menu pages.
func (b *Builder) EnrichMenus(woc *WebOfConcepts) EnrichStats {
	var stats EnrichStats
	// homepage host -> record ID
	hostOf := make(map[string]string)
	for _, r := range woc.Records.ByConcept("restaurant") {
		hp := strings.TrimSuffix(r.Get("homepage"), "/")
		if hp != "" {
			hostOf[hp] = r.ID
		}
	}
	if len(hostOf) == 0 {
		return stats
	}
	le := &extract.ListExtractor{Domain: extract.MenuDomain()}
	dishes := make(map[string][]string) // record ID -> dish names
	prov := make(map[string]string)     // record ID -> source URL
	woc.Pages.Scan(func(p *webgraph.Page) bool {
		rid, ok := hostOf[p.Host]
		if !ok {
			return true
		}
		for _, c := range le.Extract(p) {
			name := c.Get("name")
			if name == "" {
				continue
			}
			dishes[rid] = append(dishes[rid], name)
			prov[rid] = p.URL
		}
		return true
	})
	ids := make([]string, 0, len(dishes))
	for id := range dishes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		rec, err := woc.Records.Get(id)
		if err != nil {
			continue
		}
		ds := dedupDishes(dishes[id])
		seq := woc.Records.NextSeq()
		rec.Add("menu", lrec.AttrValue{
			Value:      strings.Join(ds, "; "),
			Confidence: 0.85,
			Prov: lrec.Provenance{SourceURL: prov[id],
				Operators: []string{"listextract:menuitem", "enrich"}, Seq: seq},
		})
		if woc.Records.Put(rec) == nil {
			stats.RecordsEnriched++
			stats.DishesAdded += len(ds)
			b.indexRecord(woc, rec) // menus become searchable
		}
	}
	return stats
}

func dedupDishes(in []string) []string {
	seen := make(map[string]bool, len(in))
	out := make([]string, 0, len(in))
	for _, d := range in {
		n := textproc.Normalize(d)
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}
