package core

import (
	"context"
	"fmt"
	"sort"

	"conceptweb/internal/extract"
	"conceptweb/internal/index"
	"conceptweb/internal/lrec"
	"conceptweb/internal/match"
	"conceptweb/internal/obs"
	"conceptweb/internal/textproc"
	"conceptweb/internal/webgraph"
)

// Maintenance (§7.3): "there is an obvious efficiency challenge in
// processing the same web pages repeatedly without re-incurring the full
// cost of extraction when the page is not modified in a material way", and
// updated pages must be linked to existing records "to correctly update
// existing records rather than create new ones".

// RefreshStats reports one incremental maintenance pass.
type RefreshStats struct {
	PagesChecked   int
	PagesUnchanged int // extraction skipped entirely
	PagesChanged   int
	PagesGone      int // fetch failed: page removed from retrieval
	RecordsUpdated int
	RecordsCreated int
	// RecordsSuperseded counts records retired by a changed page's lineage
	// and rebuilt by host re-extraction; RecordsDeleted counts retired
	// records the new corpus no longer supports at all.
	RecordsSuperseded int
	RecordsDeleted    int
	// PagesRelinked counts changed free-text pages re-linked to a record by
	// the semantic-link pass (the delta analogue of the build link stage).
	PagesRelinked int
	// Workers annotates the pass with the worker-pool size the parallel
	// refetch/extract stages ran at.
	Workers int
	// Epoch is the data generation after the pass: bumped when the pass
	// changed visible state (pages changed or gone, records touched),
	// unchanged otherwise so result caches stay warm across no-op refreshes.
	Epoch uint64
	// Trace is the per-stage timing tree of the pass (refetch/extract/upsert).
	Trace *obs.TraceReport
}

// Refresh re-fetches the given URLs against the builder's fetcher, skipping
// extraction for unmodified pages (content-hash comparison) and folding
// changes back in through the build's own pipeline stages. Records downstream
// of a changed page are retired entirely (lineage-driven: in-place value
// stripping cannot converge, because value dedupe folds sibling pages'
// co-assertions into one provenance entry), then their source hosts are
// re-extracted, re-resolved, and upserted; a relink pass re-runs the
// free-text link stage wherever retired or rebuilt records could shift
// text-match scores. The invariant, enforced by the delta-equivalence test:
// a delta pass lands on exactly the store content, association maps, and
// search results a fresh build over the new corpus would produce.
//
// Refetch (fetch + parse) and re-extraction fan out over the same worker
// pool as Build, fanning back in by task index: store/index mutations and
// upserts apply in input-URL order, so a refresh is deterministic at any
// Config.Workers value.
func (b *Builder) Refresh(woc *WebOfConcepts, urls []string) (*RefreshStats, error) {
	stats := &RefreshStats{Workers: b.workers()}
	ctx, root := pipelineCtx("refresh")
	defer func() {
		root.End()
		stats.Trace = root.Report()
		// Changed visible state invalidates epoch-keyed result caches; a
		// pass that found nothing new leaves them warm.
		if stats.PagesChanged > 0 || stats.PagesGone > 0 ||
			stats.RecordsUpdated > 0 || stats.RecordsCreated > 0 ||
			stats.RecordsSuperseded > 0 || stats.RecordsDeleted > 0 ||
			stats.PagesRelinked > 0 {
			stats.Epoch = woc.BumpEpoch()
		} else {
			stats.Epoch = woc.Epoch()
		}
		m := b.Cfg.Metrics
		m.Counter("refresh.runs").Inc()
		m.Counter("refresh.pages.checked").Add(int64(stats.PagesChecked))
		m.Counter("refresh.pages.unchanged").Add(int64(stats.PagesUnchanged))
		m.Counter("refresh.pages.changed").Add(int64(stats.PagesChanged))
		m.Counter("refresh.pages.gone").Add(int64(stats.PagesGone))
		m.Counter("refresh.records.superseded").Add(int64(stats.RecordsSuperseded))
		m.Counter("refresh.records.deleted").Add(int64(stats.RecordsDeleted))
		m.Counter("refresh.pages.relinked").Add(int64(stats.PagesRelinked))
		b.updateIndexGauges(woc)
	}()

	var changed []*webgraph.Page
	b.stage(ctx, "refetch", func(context.Context) {
		// Fetch + parse in parallel; apply results in input-URL order.
		pages := make([]*webgraph.Page, len(urls))
		parallelEach(len(urls), b.workers(), func(i int) {
			if html, err := b.Fetcher.Fetch(urls[i]); err == nil {
				pages[i] = webgraph.NewPage(urls[i], html)
			}
		})
		for i, u := range urls {
			stats.PagesChecked++
			p := pages[i]
			if p == nil {
				// The page is gone ("restaurants close down", §7.3): drop it
				// from the page store and retrieval and sever its
				// associations. Forgetting the stored content hash is load-
				// bearing: a page that later reappears with identical bytes
				// must register as changed in Pages.Put, or it would never be
				// re-indexed (the gone→resurrect bug). Its contribution to
				// records remains, flagged by lineage, until re-extraction on
				// reappearance supersedes it.
				stats.PagesGone++
				woc.Pages.Delete(u)
				woc.DocIndex.Remove(u)
				if len(woc.Assoc[u]) > 0 {
					// Remember which records the dead page fed (the lineage
					// ledger): if the page resurrects with different content,
					// the supersede stage still needs to find and strip its
					// stale contribution even though the live maps below are
					// severed now.
					if woc.goneAssoc == nil {
						woc.goneAssoc = make(map[string][]string)
					}
					woc.goneAssoc[u] = append([]string(nil), woc.Assoc[u]...)
				}
				for _, id := range woc.Assoc[u] {
					removeAssoc(woc.RevAssoc, id, u)
				}
				delete(woc.Assoc, u)
				continue
			}
			if !woc.Pages.Put(p) {
				stats.PagesUnchanged++
				continue
			}
			stats.PagesChanged++
			changed = append(changed, p)
		}
	})
	if len(changed) == 0 {
		return stats, nil
	}

	// Retire every record downstream of a changed page (the lineage walk)
	// and remember which hosts fed those records: extraction is site-scoped,
	// so converging on a fresh build means re-running the extract stage over
	// the retired records' source sites, not just the changed pages.
	var retired map[string]*lrec.Record
	var hosts map[string]bool
	b.stage(ctx, "supersede", func(context.Context) {
		retired, hosts = b.retireAffected(woc, changed, stats)
	})

	// Re-extract the affected hosts through the build's own extract stage
	// (list extraction with site propagation plus detail extraction), and
	// bring the document index up to date for the changed pages. Candidates
	// fold into the per-concept collector as hosts finish, filtered at fold
	// time to the affected set (retired IDs, changed pages' output, and IDs
	// absent from the store — members that entity resolution had merged
	// away). The store is not mutated between the supersede stage and the
	// upsert below, so filtering during extraction sees the same store state
	// the old post-extraction filter did.
	changedSet := make(map[string]bool, len(changed))
	for _, p := range changed {
		changedSet[p.URL] = true
	}
	cg := newConceptGroups(func(c *extract.Candidate, id string) bool {
		if _, wasRetired := retired[id]; wasRetired || changedSet[c.SourceURL] {
			return true
		}
		// The candidate re-asserts an untouched record from an unchanged
		// page: nothing to fold.
		_, err := woc.Records.Get(id)
		return err != nil
	})
	var analyses map[string]*extract.PageAnalysis
	b.stage(ctx, "extract", func(context.Context) {
		docs := make([]index.PreparedDoc, len(changed))
		parallelEach(len(changed), b.workers(), func(i int) {
			docs[i] = index.Prepare(pageDocument(changed[i]))
		})
		for _, d := range docs {
			woc.DocIndex.AddPrepared(d)
		}
		analyses = b.extractHosts(woc.Pages, hosts, cg)
	})

	var linkDirty bool
	b.stage(ctx, "upsert", func(context.Context) {
		linkDirty = b.applyCandidates(woc, cg, retired, stats)
	})

	// Re-run semantic linking (§5.4). When no link-concept record changed,
	// only changed pages that ended the pass unassociated need a linking
	// attempt. When one did, every linkable page is re-scored: the text
	// matcher ranks against record content, so a rebuilt record can win or
	// lose a page it never touched.
	b.stage(ctx, "relink", func(context.Context) {
		b.relinkPass(woc, changed, linkDirty, analyses, stats)
	})

	// Classify retirement outcomes now that rebuild and relink have run:
	// records that came back were superseded in place, the rest are gone.
	stats.RecordsSuperseded, stats.RecordsDeleted = 0, 0
	for id := range retired {
		if _, err := woc.Records.Get(id); err != nil {
			stats.RecordsDeleted++
		} else {
			stats.RecordsSuperseded++
		}
	}
	return stats, nil
}

// retireAffected walks the lineage of every changed page — its live
// associations, the ledger stashed when it went gone, and its deterministic
// review record — and retires each downstream record: the record is deleted
// from the store and record index and its associations severed, to be
// rebuilt from a fresh extraction over its source sites. Retirement is the
// delta analogue of "these records never existed": the rebuild then
// reproduces exactly what a from-scratch build over the new corpus stores,
// including value provenance and dedupe order, which in-place value
// stripping cannot (a stripped value may have been co-asserted by an
// unchanged sibling page whose assertion the dedupe folded away).
//
// It returns the retired records and the set of hosts whose sites must
// re-extract: every host that fed a retired record, plus the changed pages'
// own hosts.
func (b *Builder) retireAffected(woc *WebOfConcepts, changed []*webgraph.Page, stats *RefreshStats) (map[string]*lrec.Record, map[string]bool) {
	retired := make(map[string]*lrec.Record)
	reviewPage := make(map[string]string)
	var order []string
	for _, p := range changed {
		u := p.URL
		ids := append([]string(nil), woc.Assoc[u]...)
		// A page resurrecting after a gone pass has empty live associations;
		// the ledger stashed at removal still names its downstream records.
		for _, id := range woc.goneAssoc[u] {
			ids = appendUnique(ids, id)
		}
		delete(woc.goneAssoc, u)
		// Review records are linked from the page, not to it: Assoc[u] names
		// the review's subject. The review itself has a deterministic ID.
		revID := "review:" + textproc.NormalizeKey(u)
		if _, err := woc.Records.Get(revID); err == nil {
			ids = appendUnique(ids, revID)
			reviewPage[revID] = u
		}
		for _, id := range ids {
			if _, done := retired[id]; done {
				continue
			}
			rec, err := woc.Records.Get(id)
			if err != nil {
				continue
			}
			// An association without a contributed value (a review page's
			// subject, a homepage link harvested elsewhere) does not make the
			// record stale: its content is independent of this page.
			if id != revID && !sourcedFrom(rec, u) {
				continue
			}
			retired[id] = rec
			order = append(order, id)
		}
	}
	sort.Strings(order)

	hosts := make(map[string]bool)
	for _, id := range order {
		rec := retired[id]
		for _, src := range woc.RevAssoc[id] {
			if p, err := woc.Pages.Get(src); err == nil {
				hosts[p.Host] = true
			}
		}
		// Value sources whose association was folded away by dedupe still
		// need their site re-extracted; walk provenance directly too.
		for _, k := range rec.Keys() {
			for _, v := range rec.All(k) {
				if p, err := woc.Pages.Get(v.Prov.SourceURL); err == nil {
					hosts[p.Host] = true
				}
			}
		}
		woc.Records.Delete(id) //nolint:errcheck // degraded store: rebuild re-puts
		woc.RecIndex.Remove(id)
		for _, src := range woc.RevAssoc[id] {
			removeAssoc(woc.Assoc, src, id)
		}
		delete(woc.RevAssoc, id)
		if rec.Concept == "review" {
			// The review's page links to the subject, not to the review;
			// sever that edge so the relink stage sees a clean slate.
			if u := reviewPage[id]; u != "" {
				for _, sid := range woc.Assoc[u] {
					removeAssoc(woc.RevAssoc, sid, u)
				}
				delete(woc.Assoc, u)
			}
		}
	}
	for _, p := range changed {
		hosts[p.Host] = true
	}
	return retired, hosts
}

// sourcedFrom reports whether any value of r names url as its source.
func sourcedFrom(r *lrec.Record, url string) bool {
	for _, k := range r.Keys() {
		for _, v := range r.All(k) {
			if v.Prov.SourceURL == url {
				return true
			}
		}
	}
	return false
}

// applyCandidates folds the delta extraction's collector back into the
// store, mirroring the build's resolveAndStore: candidates were filtered to
// the affected set and pre-merged by synthesized ID at fold time, and are
// now clustered per concept by the same collective matcher, with the
// cluster representatives upserted in sorted order. It reports whether any
// record of a link concept was touched, which forces a global relink pass.
func (b *Builder) applyCandidates(woc *WebOfConcepts, cg *conceptGroups, retired map[string]*lrec.Record, stats *RefreshStats) bool {
	linkable := make(map[string]bool, len(b.Cfg.LinkConcepts))
	for _, c := range b.Cfg.LinkConcepts {
		linkable[c] = true
	}
	linkDirty := false
	for _, rec := range retired {
		if linkable[rec.Concept] {
			linkDirty = true
		}
	}

	for _, concept := range cg.concepts() {
		recs := cg.take(concept, woc.Records)
		toStore := recs
		if m := b.Cfg.Matchers[concept]; m != nil {
			clusters := match.Resolve(recs, m, match.DefaultCollectiveOptions())
			toStore = make([]*lrec.Record, 0, len(clusters))
			for _, cl := range clusters {
				toStore = append(toStore, cl.Rep)
			}
		}
		for _, rec := range toStore {
			created, updated := b.upsert(woc, rec)
			if _, wasRetired := retired[rec.ID]; wasRetired && created == 1 {
				// A rebuilt record is an update of the retired one, not a
				// new entity.
				created, updated = 0, 1
			}
			stats.RecordsCreated += created
			stats.RecordsUpdated += updated
			if created+updated > 0 && linkable[concept] {
				linkDirty = true
			}
		}
	}
	return linkDirty
}

// relinkPass re-runs semantic linking (§5.4) after a delta rebuild. In the
// narrow mode only changed pages with no surviving association are scored —
// free-text pages whose new content mentions a (possibly different) subject.
// When a link-concept record changed (global), every linkable page is
// re-scored: the text matcher ranks record content, so a rebuilt record can
// win or lose pages the pass never fetched. Pages whose link outcome is
// unchanged are left untouched. Scoring fans out over the worker pool; the
// apply phase walks pages in sorted-URL order so seq assignment stays
// deterministic.
func (b *Builder) relinkPass(woc *WebOfConcepts, changed []*webgraph.Page, global bool, analyses map[string]*extract.PageAnalysis, stats *RefreshStats) {
	if len(b.Cfg.LinkConcepts) == 0 {
		return
	}
	threshold := b.Cfg.LinkThreshold
	if threshold == 0 {
		threshold = 0.35
	}
	revIDOf := func(u string) string { return "review:" + textproc.NormalizeKey(u) }
	// extractionAssociated reports whether any of the page's associations is
	// justified by extraction — the page contributed a value to the record,
	// or is the record's homepage. The build links only pages the extract
	// stage left unassociated, so such a page is not linkable; a review it
	// holds from an earlier corpus state is stale.
	extractionAssociated := func(u string) bool {
		for _, id := range woc.Assoc[u] {
			rec, err := woc.Records.Get(id)
			if err != nil {
				continue
			}
			if sourcedFrom(rec, u) || rec.Get("homepage") == u {
				return true
			}
		}
		return false
	}
	// unlink severs the page→subject edge a review created, unless
	// extraction independently justifies the same edge (the rebuilt record
	// may now hold a value sourced from the page).
	unlink := func(u, about string) {
		if rec, err := woc.Records.Get(about); err == nil {
			if sourcedFrom(rec, u) || rec.Get("homepage") == u {
				return
			}
		}
		removeAssoc(woc.Assoc, u, about)
		removeAssoc(woc.RevAssoc, about, u)
	}

	var pending []string
	if global {
		// Linkable pages: unassociated ones (the build's link candidates)
		// plus pages holding a review record, which may need to move — or
		// go, if the page's rebuilt records absorbed it into extraction.
		for _, u := range woc.Pages.URLs() {
			if len(woc.Assoc[u]) == 0 {
				pending = append(pending, u)
				continue
			}
			if _, err := woc.Records.Get(revIDOf(u)); err == nil {
				pending = append(pending, u)
			}
		}
	} else {
		for _, p := range changed {
			if len(woc.Assoc[p.URL]) == 0 {
				pending = append(pending, p.URL)
			}
		}
		sort.Strings(pending)
	}
	if len(pending) == 0 {
		return
	}
	var corpus []*lrec.Record
	for _, c := range b.Cfg.LinkConcepts {
		corpus = append(corpus, woc.Records.ByConcept(c)...)
	}
	if len(corpus) == 0 {
		return
	}
	tm := match.NewTextMatcher(corpus)

	type hit struct {
		recID   string
		snippet string
	}
	hits := make([]*hit, len(pending))
	parallelEach(len(pending), b.workers(), func(i int) {
		p, err := woc.Pages.Get(pending[i])
		if err != nil {
			return
		}
		pa := analyses[p.URL]
		if pa == nil {
			pa = extract.Analyze(p)
		}
		text := pa.MainText()
		if len(text) < 40 {
			return
		}
		best, ok := tm.BestTokens(pa.MainTokens(), threshold)
		if !ok {
			return
		}
		hits[i] = &hit{recID: best.ID, snippet: truncateBytes(text, 280)}
	})

	for i, u := range pending {
		h := hits[i]
		revID := revIDOf(u)
		old, errOld := woc.Records.Get(revID)
		if extractionAssociated(u) {
			// The rebuilt records absorbed this page into extraction: it is
			// no longer a link candidate, and any review it held is stale.
			if errOld == nil {
				about := old.Get("about")
				if woc.Records.Delete(revID) == nil {
					unlink(u, about)
					stats.PagesRelinked++
				}
			}
			continue
		}
		if h == nil {
			// No subject any more: unlink, deleting the stale review.
			if errOld == nil {
				about := old.Get("about")
				if woc.Records.Delete(revID) == nil {
					unlink(u, about)
					stats.PagesRelinked++
				}
			}
			continue
		}
		if errOld == nil && old.Get("about") == h.recID && old.Get("text") == h.snippet {
			// Same subject, same snippet: the review stands, but re-assert
			// the link edges — retiring the subject severed them.
			woc.Assoc[u] = appendUnique(woc.Assoc[u], h.recID)
			woc.RevAssoc[h.recID] = appendUnique(woc.RevAssoc[h.recID], u)
			continue
		}
		if errOld == nil {
			unlink(u, old.Get("about"))
		}
		stats.PagesRelinked++
		woc.Assoc[u] = appendUnique(woc.Assoc[u], h.recID)
		woc.RevAssoc[h.recID] = appendUnique(woc.RevAssoc[h.recID], u)
		rev := lrec.NewRecord(revID, "review")
		seq := woc.Records.NextSeq()
		add := func(key, val string, conf float64) {
			rev.Add(key, lrec.AttrValue{Value: val, Confidence: conf,
				Prov: lrec.Provenance{SourceURL: u, Operators: []string{"textmatch"}, Seq: seq}})
		}
		add("text", h.snippet, 0.9)
		add("about", h.recID, 0.8)
		add("source", u, 1)
		woc.Records.Put(rev) //nolint:errcheck // degraded store: link maps still converge
	}
}

// upsert folds one resolved record into the store: if entity matching finds
// an existing record of the same concept, the values merge into it;
// otherwise a new record is created.
func (b *Builder) upsert(woc *WebOfConcepts, rec *lrec.Record) (created, updated int) {
	if exist, err := woc.Records.Get(rec.ID); err == nil {
		exist.Merge(rec) //nolint:errcheck // same concept
		if woc.Records.Put(exist) == nil {
			b.associate(woc, exist)
			b.indexRecord(woc, exist)
			return 0, 1
		}
		return 0, 0
	}

	if m := b.Cfg.Matchers[rec.Concept]; m != nil {
		// Block against stored records of the concept and score. The
		// tie-break is pinned: ByConcept iterates in ascending ID order and
		// an incumbent is displaced only by a strictly higher score, so
		// equal-scoring candidates resolve to the lowest ID — keeping delta
		// refresh deterministic and independent of how later records were
		// numbered. (The previous `>=` silently meant highest-ID-wins.)
		var bestID string
		var bestScore float64
		for _, cand := range woc.Records.ByConcept(rec.Concept) {
			s := m.Score(cand, rec)
			if s < m.Upper {
				continue
			}
			if bestID == "" || s > bestScore {
				bestScore, bestID = s, cand.ID
			}
		}
		if bestID != "" {
			exist, err := woc.Records.Get(bestID)
			if err == nil {
				exist.Merge(rec) //nolint:errcheck
				if woc.Records.Put(exist) == nil {
					b.associate(woc, exist)
					b.indexRecord(woc, exist)
					return 0, 1
				}
			}
			return 0, 0
		}
	}

	if woc.Records.Put(rec) == nil {
		b.associate(woc, rec)
		b.indexRecord(woc, rec)
		return 1, 0
	}
	return 0, 0
}

func removeString(list []string, v string) []string {
	out := list[:0]
	for _, x := range list {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}

// removeAssoc drops v from m[k], deleting the key when its list empties so
// a churned association map compares equal to a freshly built one (which
// never holds empty entries).
func removeAssoc(m map[string][]string, k, v string) {
	out := removeString(m[k], v)
	if len(out) == 0 {
		delete(m, k)
	} else {
		m[k] = out
	}
}

func (b *Builder) indexRecord(woc *WebOfConcepts, r *lrec.Record) {
	woc.RecIndex.Add(recordDocument(r))
}

// ConflictResolution names the policy Reconcile applies to over-full
// attributes.
type ConflictResolution int

// Policies.
const (
	// PreferSupport keeps the values backed by the most distinct sources,
	// breaking ties by recency then confidence.
	PreferSupport ConflictResolution = iota
	// PreferRecent keeps the most recently extracted values.
	PreferRecent
)

// Reconcile enforces the registry's multiplicity constraints on stored
// records of the concept: attributes holding more values than allowed are
// trimmed per the policy. It returns the number of records changed —
// the §7.3 "extracted information will often be inconsistent and will need
// to be reconciled to meet integrity constraints".
func (woc *WebOfConcepts) Reconcile(concept string, policy ConflictResolution) int {
	spec, ok := woc.Registry.Lookup(concept)
	if !ok {
		return 0
	}
	changed := 0
	for _, r := range woc.Records.ByConcept(concept) {
		// Trim a clone and adopt it only after the put succeeds: on a
		// degraded store the write fails, and the record every caller (and
		// this loop) observes must keep matching what the store holds —
		// trimming in place first would diverge memory from disk.
		var trimmed *lrec.Record
		for _, as := range spec.Attrs {
			if as.MaxValues <= 0 {
				continue
			}
			vals := r.All(as.Key)
			if len(vals) <= as.MaxValues {
				continue
			}
			if trimmed == nil {
				trimmed = r.Clone()
			}
			trimmed.Attrs[as.Key] = rankValues(vals, policy)[:as.MaxValues]
		}
		if trimmed != nil {
			if woc.Records.Put(trimmed) == nil {
				changed++
			}
		}
	}
	if changed > 0 {
		woc.BumpEpoch()
	}
	return changed
}

// rankValues orders attribute values best-first per the policy.
func rankValues(vals []lrec.AttrValue, policy ConflictResolution) []lrec.AttrValue {
	out := append([]lrec.AttrValue(nil), vals...)
	sort.SliceStable(out, func(i, j int) bool {
		switch policy {
		case PreferRecent:
			if out[i].Prov.Seq != out[j].Prov.Seq {
				return out[i].Prov.Seq > out[j].Prov.Seq
			}
		default:
			if out[i].Support != out[j].Support {
				return out[i].Support > out[j].Support
			}
			if out[i].Prov.Seq != out[j].Prov.Seq {
				return out[i].Prov.Seq > out[j].Prov.Seq
			}
		}
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// Lineage returns the human-readable provenance chains for every value of a
// record — the §7.3 "explanations to user queries".
func (woc *WebOfConcepts) Lineage(id string) ([]string, error) {
	r, err := woc.Records.Get(id)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, k := range r.Keys() {
		for _, v := range r.All(k) {
			out = append(out, k+"="+v.Value+" <- "+v.Prov.String())
		}
	}
	return out, nil
}

// LiveValue re-reads a volatile attribute from its source document (§7.3:
// "some concepts, like stock tickers and city temperatures, are so dynamic
// that they always need to be tied to their underlying source documents").
// It follows the stored value's provenance to the page, refetches it, and
// re-extracts just that attribute. The store is left untouched; callers who
// want to persist the fresh value can Put it.
func (b *Builder) LiveValue(woc *WebOfConcepts, recordID, key string) (string, error) {
	rec, err := woc.Records.Get(recordID)
	if err != nil {
		return "", err
	}
	best, ok := rec.Best(key)
	if !ok || best.Prov.SourceURL == "" {
		return "", fmt.Errorf("core: no sourced value for %s.%s", recordID, key)
	}
	html, err := b.Fetcher.Fetch(best.Prov.SourceURL)
	if err != nil {
		return "", fmt.Errorf("core: live fetch %s: %w", best.Prov.SourceURL, err)
	}
	page := webgraph.NewPage(best.Prov.SourceURL, html)
	text := pageMainText(page)
	for _, d := range b.Cfg.Domains {
		if d.Concept != rec.Concept {
			continue
		}
		for _, r := range d.Recognizers {
			if r.Key != key {
				continue
			}
			if v, okm := r.Match(text); okm {
				return v, nil
			}
		}
	}
	return "", fmt.Errorf("core: attribute %q not found live on %s", key, best.Prov.SourceURL)
}
