package core

import (
	"context"
	"fmt"
	"sort"

	"conceptweb/internal/extract"
	"conceptweb/internal/index"
	"conceptweb/internal/lrec"
	"conceptweb/internal/obs"
	"conceptweb/internal/webgraph"
)

// Maintenance (§7.3): "there is an obvious efficiency challenge in
// processing the same web pages repeatedly without re-incurring the full
// cost of extraction when the page is not modified in a material way", and
// updated pages must be linked to existing records "to correctly update
// existing records rather than create new ones".

// RefreshStats reports one incremental maintenance pass.
type RefreshStats struct {
	PagesChecked   int
	PagesUnchanged int // extraction skipped entirely
	PagesChanged   int
	PagesGone      int // fetch failed: page removed from retrieval
	RecordsUpdated int
	RecordsCreated int
	// Workers annotates the pass with the worker-pool size the parallel
	// refetch/extract stages ran at.
	Workers int
	// Epoch is the data generation after the pass: bumped when the pass
	// changed visible state (pages changed or gone, records touched),
	// unchanged otherwise so result caches stay warm across no-op refreshes.
	Epoch uint64
	// Trace is the per-stage timing tree of the pass (refetch/extract/upsert).
	Trace *obs.TraceReport
}

// Refresh re-fetches the given URLs against the builder's fetcher, skipping
// extraction for unmodified pages (content-hash comparison) and folding
// changed pages' candidates into existing records via entity matching.
//
// Refetch (fetch + parse) and re-extraction fan out over the same worker
// pool as Build, fanning back in by task index: store/index mutations and
// upserts apply in input-URL order, so a refresh is deterministic at any
// Config.Workers value.
func (b *Builder) Refresh(woc *WebOfConcepts, urls []string) (*RefreshStats, error) {
	stats := &RefreshStats{Workers: b.workers()}
	ctx, root := pipelineCtx("refresh")
	defer func() {
		root.End()
		stats.Trace = root.Report()
		// Changed visible state invalidates epoch-keyed result caches; a
		// pass that found nothing new leaves them warm.
		if stats.PagesChanged > 0 || stats.PagesGone > 0 ||
			stats.RecordsUpdated > 0 || stats.RecordsCreated > 0 {
			stats.Epoch = woc.BumpEpoch()
		} else {
			stats.Epoch = woc.Epoch()
		}
		m := b.Cfg.Metrics
		m.Counter("refresh.runs").Inc()
		m.Counter("refresh.pages.checked").Add(int64(stats.PagesChecked))
		m.Counter("refresh.pages.unchanged").Add(int64(stats.PagesUnchanged))
		m.Counter("refresh.pages.changed").Add(int64(stats.PagesChanged))
		b.updateIndexGauges(woc)
	}()

	var changed []*webgraph.Page
	b.stage(ctx, "refetch", func(context.Context) {
		// Fetch + parse in parallel; apply results in input-URL order.
		pages := make([]*webgraph.Page, len(urls))
		parallelEach(len(urls), b.workers(), func(i int) {
			if html, err := b.Fetcher.Fetch(urls[i]); err == nil {
				pages[i] = webgraph.NewPage(urls[i], html)
			}
		})
		for i, u := range urls {
			stats.PagesChecked++
			p := pages[i]
			if p == nil {
				// The page is gone ("restaurants close down", §7.3): drop it
				// from retrieval and sever its associations. Its contribution
				// to records remains, flagged by lineage, until reconciliation
				// or re-extraction supersedes it.
				stats.PagesGone++
				woc.DocIndex.Remove(u)
				for _, id := range woc.Assoc[u] {
					woc.RevAssoc[id] = removeString(woc.RevAssoc[id], u)
				}
				delete(woc.Assoc, u)
				continue
			}
			if !woc.Pages.Put(p) {
				stats.PagesUnchanged++
				continue
			}
			stats.PagesChanged++
			changed = append(changed, p)
		}
	})
	if len(changed) == 0 {
		return stats, nil
	}

	// Re-extract only the changed pages. Detail extraction covers the single-
	// record pages that dominate change traffic; list items on changed pages
	// are re-harvested too, without re-running the whole site.
	var cands []*extract.Candidate
	b.stage(ctx, "extract", func(context.Context) {
		type result struct {
			cands []*extract.Candidate
			doc   index.PreparedDoc
		}
		results := make([]result, len(changed))
		parallelEach(len(changed), b.workers(), func(i int) {
			p := changed[i]
			pa := extract.Analyze(p) // one shared analysis across domains
			var pc []*extract.Candidate
			for _, d := range b.Cfg.Domains {
				le := &extract.ListExtractor{Domain: d}
				listCands := le.ExtractAnalyzed(pa)
				pc = append(pc, listCands...)
				// Detail-extract only when the page shows no listing signal: no
				// list records now and no multi-record association from the
				// original build (single-result listing pages keep their shape).
				if len(listCands) == 0 && len(woc.Assoc[p.URL]) < 2 {
					pc = append(pc, (&extract.DetailExtractor{Domain: d}).ExtractAnalyzed(pa)...)
				}
			}
			// Keep the document index current: analyze here, merge in order.
			results[i] = result{cands: pc, doc: index.Prepare(pageDocument(p))}
		})
		for _, r := range results {
			cands = append(cands, r.cands...)
			woc.DocIndex.AddPrepared(r.doc)
		}
	})

	b.stage(ctx, "upsert", func(context.Context) {
		for _, c := range cands {
			created, updated := b.upsert(woc, c)
			stats.RecordsCreated += created
			stats.RecordsUpdated += updated
		}
	})
	return stats, nil
}

// upsert folds one candidate into the store: if entity matching finds an
// existing record of the same concept, the candidate's values merge into it;
// otherwise a new record is created.
func (b *Builder) upsert(woc *WebOfConcepts, c *extract.Candidate) (created, updated int) {
	seq := woc.Records.NextSeq()
	rec := c.ToRecord(c.SynthesizeID(), seq)

	if exist, err := woc.Records.Get(rec.ID); err == nil {
		exist.Merge(rec) //nolint:errcheck // same concept
		if woc.Records.Put(exist) == nil {
			b.associate(woc, exist)
			return 0, 1
		}
		return 0, 0
	}

	if m := b.Cfg.Matchers[c.Concept]; m != nil {
		// Block against stored records of the concept and score.
		var bestID string
		bestScore := m.Upper
		for _, cand := range woc.Records.ByConcept(c.Concept) {
			if s := m.Score(cand, rec); s >= bestScore {
				bestScore = s
				bestID = cand.ID
			}
		}
		if bestID != "" {
			exist, err := woc.Records.Get(bestID)
			if err == nil {
				exist.Merge(rec) //nolint:errcheck
				if woc.Records.Put(exist) == nil {
					b.associate(woc, exist)
					return 0, 1
				}
			}
			return 0, 0
		}
	}

	if woc.Records.Put(rec) == nil {
		b.associate(woc, rec)
		b.indexRecord(woc, rec)
		return 1, 0
	}
	return 0, 0
}

func removeString(list []string, v string) []string {
	out := list[:0]
	for _, x := range list {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}

func (b *Builder) indexRecord(woc *WebOfConcepts, r *lrec.Record) {
	woc.RecIndex.Add(recordDocument(r))
}

// ConflictResolution names the policy Reconcile applies to over-full
// attributes.
type ConflictResolution int

// Policies.
const (
	// PreferSupport keeps the values backed by the most distinct sources,
	// breaking ties by recency then confidence.
	PreferSupport ConflictResolution = iota
	// PreferRecent keeps the most recently extracted values.
	PreferRecent
)

// Reconcile enforces the registry's multiplicity constraints on stored
// records of the concept: attributes holding more values than allowed are
// trimmed per the policy. It returns the number of records changed —
// the §7.3 "extracted information will often be inconsistent and will need
// to be reconciled to meet integrity constraints".
func (woc *WebOfConcepts) Reconcile(concept string, policy ConflictResolution) int {
	spec, ok := woc.Registry.Lookup(concept)
	if !ok {
		return 0
	}
	changed := 0
	for _, r := range woc.Records.ByConcept(concept) {
		dirty := false
		for _, as := range spec.Attrs {
			if as.MaxValues <= 0 {
				continue
			}
			vals := r.All(as.Key)
			if len(vals) <= as.MaxValues {
				continue
			}
			trimmed := rankValues(vals, policy)[:as.MaxValues]
			r.Attrs[as.Key] = trimmed
			dirty = true
		}
		if dirty {
			if woc.Records.Put(r) == nil {
				changed++
			}
		}
	}
	if changed > 0 {
		woc.BumpEpoch()
	}
	return changed
}

// rankValues orders attribute values best-first per the policy.
func rankValues(vals []lrec.AttrValue, policy ConflictResolution) []lrec.AttrValue {
	out := append([]lrec.AttrValue(nil), vals...)
	sort.SliceStable(out, func(i, j int) bool {
		switch policy {
		case PreferRecent:
			if out[i].Prov.Seq != out[j].Prov.Seq {
				return out[i].Prov.Seq > out[j].Prov.Seq
			}
		default:
			if out[i].Support != out[j].Support {
				return out[i].Support > out[j].Support
			}
			if out[i].Prov.Seq != out[j].Prov.Seq {
				return out[i].Prov.Seq > out[j].Prov.Seq
			}
		}
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// Lineage returns the human-readable provenance chains for every value of a
// record — the §7.3 "explanations to user queries".
func (woc *WebOfConcepts) Lineage(id string) ([]string, error) {
	r, err := woc.Records.Get(id)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, k := range r.Keys() {
		for _, v := range r.All(k) {
			out = append(out, k+"="+v.Value+" <- "+v.Prov.String())
		}
	}
	return out, nil
}

// LiveValue re-reads a volatile attribute from its source document (§7.3:
// "some concepts, like stock tickers and city temperatures, are so dynamic
// that they always need to be tied to their underlying source documents").
// It follows the stored value's provenance to the page, refetches it, and
// re-extracts just that attribute. The store is left untouched; callers who
// want to persist the fresh value can Put it.
func (b *Builder) LiveValue(woc *WebOfConcepts, recordID, key string) (string, error) {
	rec, err := woc.Records.Get(recordID)
	if err != nil {
		return "", err
	}
	best, ok := rec.Best(key)
	if !ok || best.Prov.SourceURL == "" {
		return "", fmt.Errorf("core: no sourced value for %s.%s", recordID, key)
	}
	html, err := b.Fetcher.Fetch(best.Prov.SourceURL)
	if err != nil {
		return "", fmt.Errorf("core: live fetch %s: %w", best.Prov.SourceURL, err)
	}
	page := webgraph.NewPage(best.Prov.SourceURL, html)
	text := pageMainText(page)
	for _, d := range b.Cfg.Domains {
		if d.Concept != rec.Concept {
			continue
		}
		for _, r := range d.Recognizers {
			if r.Key != key {
				continue
			}
			if v, okm := r.Match(text); okm {
				return v, nil
			}
		}
	}
	return "", fmt.Errorf("core: attribute %q not found live on %s", key, best.Prov.SourceURL)
}
