package core

import (
	"conceptweb/internal/classify"
	"conceptweb/internal/extract"
	"conceptweb/internal/lrec"
	"conceptweb/internal/match"
	"conceptweb/internal/webgraph"
)

// StandardConfig returns the local-domain configuration used across the
// experiments and examples: restaurant list/detail extraction with
// collective entity matching and review linking.
func StandardConfig(reg *lrec.Registry, cities, cuisines []string) Config {
	return Config{
		Registry: reg,
		Domains: []extract.Domain{
			extract.RestaurantDomain(cities, cuisines),
			extract.EventDomain(cities),
		},
		Matchers: map[string]*match.Matcher{
			"restaurant": match.NewMatcher(match.RestaurantComparators()),
		},
		LinkConcepts: []string{"restaurant"},
	}
}

// ScaleConfig extends StandardConfig with the hotel domain the streamed
// heavy-tail corpus exercises (pair it with webgen.RegisterScaleConcepts).
// Hotels get no collective matcher: hotel aggregators render names and phone
// digits consistently, so synthesized IDs already merge cross-site mentions;
// restaurants keep the full matcher.
func ScaleConfig(reg *lrec.Registry, cities, cuisines []string) Config {
	cfg := StandardConfig(reg, cities, cuisines)
	cfg.Domains = append(cfg.Domains, extract.HotelDomain(cities))
	return cfg
}

// ClassifierGate builds a Gate from a trained global classifier refined with
// each gated host's relational structure (§4.2's "filtering out only those
// pages that belong to a certain category and then doing further extraction
// on them"). Pages on hosts outside `hosts` pass ungated; pages on gated
// hosts are admitted to a concept's detail extraction only when their
// refined label equals conceptCat[concept].
func ClassifierGate(nb *classify.NaiveBayes, conceptCat map[string]string,
	pages *webgraph.Store, graph *webgraph.Graph, hosts []string) func(string, *webgraph.Page) bool {

	gated := make(map[string]bool, len(hosts))
	labels := make(map[string]string)
	for _, h := range hosts {
		gated[h] = true
		var pls []classify.PageLabel
		for _, u := range pages.HostPages(h) {
			p, err := pages.Get(u)
			if err != nil {
				continue
			}
			label, probs := nb.Predict(classify.Features(p))
			pls = append(pls, classify.PageLabel{URL: u, Label: label, Probs: probs})
		}
		for u, pl := range classify.Refine(pls, graph, classify.DefaultRefineOptions()) {
			labels[u] = pl.Label
		}
	}
	return func(concept string, p *webgraph.Page) bool {
		if !gated[p.Host] {
			return true
		}
		want, constrained := conceptCat[concept]
		if !constrained {
			return true
		}
		return labels[p.URL] == want
	}
}
