package core

import (
	"strings"
	"sync"
	"testing"

	"conceptweb/internal/classify"
	"conceptweb/internal/lrec"
	"conceptweb/internal/textproc"
	"conceptweb/internal/webgen"
	"conceptweb/internal/webgraph"
)

func smallWorld() *webgen.World {
	cfg := webgen.DefaultConfig()
	cfg.Restaurants = 50
	cfg.Authors = 8
	cfg.Papers = 15
	cfg.Cameras = 4
	cfg.Shows = 4
	cfg.Actors = 8
	cfg.ReviewArticles = 30
	cfg.TVArticles = 4
	return webgen.Generate(cfg)
}

// buildWorld runs the standard pipeline over a world; cached per test run
// because Build is the expensive step nearly every test here needs.
var (
	buildOnce  sync.Once
	builtWorld *webgen.World
	builtWoc   *WebOfConcepts
	builtStats *BuildStats
	builtB     *Builder
)

func built(t *testing.T) (*webgen.World, *WebOfConcepts, *BuildStats, *Builder) {
	t.Helper()
	buildOnce.Do(func() {
		w := smallWorld()
		reg := lrec.NewRegistry()
		webgen.RegisterConcepts(reg)
		b := &Builder{Fetcher: w, Cfg: StandardConfig(reg, w.Cities(), nil)}
		woc, stats, err := b.Build(w.SeedURLs())
		if err != nil {
			panic(err)
		}
		builtWorld, builtWoc, builtStats, builtB = w, woc, stats, b
	})
	return builtWorld, builtWoc, builtStats, builtB
}

func TestBuildCrawlsEverything(t *testing.T) {
	w, woc, stats, _ := built(t)
	if stats.PagesFetched != len(w.Pages()) {
		t.Errorf("fetched %d of %d pages", stats.PagesFetched, len(w.Pages()))
	}
	if stats.FetchFailures != 0 {
		t.Errorf("fetch failures = %d", stats.FetchFailures)
	}
	if woc.DocIndex.Len() != stats.PagesFetched {
		t.Errorf("doc index has %d of %d pages", woc.DocIndex.Len(), stats.PagesFetched)
	}
}

func TestBuildResolvesRestaurants(t *testing.T) {
	w, woc, _, _ := built(t)
	n := woc.Records.CountByConcept("restaurant")
	want := len(w.Restaurants)
	// Each restaurant appears on up to 3 aggregators plus its homepage and a
	// portal page; resolution should collapse those to roughly one record
	// per real restaurant. Allow slack for hotels (extracted as restaurant
	// lookalikes without a classifier gate) and unresolved variants.
	if n < want || n > want+len(w.Hotels)+want/4 {
		t.Errorf("restaurant records = %d, ground truth = %d (+%d hotels)", n, want, len(w.Hotels))
	}
}

func TestBuildMergesAcrossSources(t *testing.T) {
	w, woc, _, _ := built(t)
	// Find a restaurant covered by the primary aggregator with a homepage;
	// its record should carry evidence from several sources.
	merged := 0
	for _, r := range w.Restaurants {
		recs := woc.Records.ByAttr("restaurant", "phone", r.Phone)
		if len(recs) != 1 {
			continue
		}
		rec := recs[0]
		if textproc.Normalize(rec.Get("zip")) != r.Zip {
			t.Errorf("record for %s has zip %q want %q", r.Name, rec.Get("zip"), r.Zip)
		}
		sources := map[string]bool{}
		for _, k := range rec.Keys() {
			for _, v := range rec.All(k) {
				host := strings.SplitN(v.Prov.SourceURL, "/", 2)[0]
				sources[host] = true
			}
		}
		if len(sources) >= 3 {
			merged++
		}
	}
	if merged < len(w.Restaurants)/3 {
		t.Errorf("only %d/%d restaurants merged from >=3 sources", merged, len(w.Restaurants))
	}
}

func TestBuildFindsHomepages(t *testing.T) {
	w, woc, _, _ := built(t)
	found, total := 0, 0
	for _, r := range w.Restaurants {
		if r.Homepage == "" {
			continue
		}
		total++
		recs := woc.Records.ByAttr("restaurant", "phone", r.Phone)
		if len(recs) != 1 {
			continue
		}
		hp := recs[0].Get("homepage")
		if strings.TrimSuffix(hp, "/") == strings.TrimSuffix(r.Homepage, "/") {
			found++
		}
	}
	if total == 0 {
		t.Fatal("no restaurants with homepages")
	}
	frac := float64(found) / float64(total)
	t.Logf("homepage attribute found for %.2f of restaurants (%d/%d)", frac, found, total)
	if frac < 0.7 {
		t.Errorf("homepage coverage %.2f too low", frac)
	}
}

func TestBuildLinksReviews(t *testing.T) {
	w, woc, stats, _ := built(t)
	if stats.PagesLinked == 0 || stats.ReviewRecords == 0 {
		t.Fatalf("no reviews linked: %+v", stats)
	}
	// Score linking against ReviewTruth: for blog posts that got linked, the
	// linked record's phone should belong to one of the true subjects.
	correct, linked := 0, 0
	for url, ids := range w.ReviewTruth {
		assoc := woc.AssocOf(url)
		if len(assoc) == 0 {
			continue
		}
		linked++
		rec, err := woc.Records.Get(assoc[0])
		if err != nil {
			continue
		}
		for _, id := range ids {
			r, _ := w.RestaurantByID(id)
			if r != nil && (textproc.Normalize(rec.Get("phone")) == textproc.Normalize(r.Phone) ||
				textproc.Normalize(rec.Get("name")) == textproc.Normalize(r.Name)) {
				correct++
				break
			}
		}
	}
	if linked == 0 {
		t.Fatal("no truth reviews linked")
	}
	prec := float64(correct) / float64(linked)
	recall := float64(linked) / float64(len(w.ReviewTruth))
	t.Logf("review linking: precision=%.2f recall=%.2f (%d/%d linked)", prec, recall, linked, len(w.ReviewTruth))
	if prec < 0.75 {
		t.Errorf("review-link precision %.2f too low", prec)
	}
	if recall < 0.5 {
		t.Errorf("review-link recall %.2f too low", recall)
	}
}

func TestLineageExplainsValues(t *testing.T) {
	w, woc, _, _ := built(t)
	recs := woc.Records.ByAttr("restaurant", "phone", w.Restaurants[0].Phone)
	if len(recs) == 0 {
		t.Skip("restaurant 0 not resolved to a single record")
	}
	lines, err := woc.Lineage(recs[0].ID)
	if err != nil || len(lines) == 0 {
		t.Fatalf("lineage: %v %v", lines, err)
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "via") || !strings.Contains(joined, "phone=") {
		t.Errorf("lineage lacks provenance detail:\n%s", joined)
	}
	if _, err := woc.Lineage("nonexistent"); err == nil {
		t.Error("lineage of missing record should fail")
	}
}

func TestReconcileTrimsConflicts(t *testing.T) {
	_, woc, _, _ := built(t)
	// Stale aggregator data gives some restaurants two streets; the
	// registry says street has MaxValues 1. Reconcile must fix them all.
	overfull := 0
	for _, r := range woc.Records.ByConcept("restaurant") {
		if len(r.All("street")) > 1 {
			overfull++
		}
	}
	changed := woc.Reconcile("restaurant", PreferSupport)
	if overfull > 0 && changed == 0 {
		t.Errorf("overfull=%d but reconcile changed nothing", overfull)
	}
	for _, r := range woc.Records.ByConcept("restaurant") {
		if len(r.All("street")) > 1 {
			t.Errorf("record %s still has %d streets", r.ID, len(r.All("street")))
		}
	}
	t.Logf("reconcile: %d records had conflicting streets, %d records trimmed", overfull, changed)
}

func TestReconcilePrefersSupportedValue(t *testing.T) {
	reg := lrec.NewRegistry()
	reg.Register(lrec.Concept{Name: "restaurant",
		Attrs: []lrec.AttrSpec{{Key: "street", MaxValues: 1}}})
	woc := &WebOfConcepts{Registry: reg, Records: lrec.NewMemStore(lrec.WithRegistry(reg))}
	r := lrec.NewRecord("x", "restaurant")
	r.Add("street", lrec.AttrValue{Value: "1 Fresh Ave", Confidence: 0.8, Support: 3,
		Prov: lrec.Provenance{SourceURL: "a", Seq: 5}})
	r.Add("street", lrec.AttrValue{Value: "9 Stale Rd", Confidence: 0.9, Support: 1,
		Prov: lrec.Provenance{SourceURL: "b", Seq: 9}})
	woc.Records.Put(r)
	if n := woc.Reconcile("restaurant", PreferSupport); n != 1 {
		t.Fatalf("changed = %d", n)
	}
	got, _ := woc.Records.Get("x")
	if got.Get("street") != "1 Fresh Ave" {
		t.Errorf("kept %q, want the 3-source value", got.Get("street"))
	}
	// PreferRecent keeps the newest instead.
	woc2 := &WebOfConcepts{Registry: reg, Records: lrec.NewMemStore(lrec.WithRegistry(reg))}
	woc2.Records.Put(r)
	woc2.Reconcile("restaurant", PreferRecent)
	got2, _ := woc2.Records.Get("x")
	if got2.Get("street") != "9 Stale Rd" {
		t.Errorf("PreferRecent kept %q", got2.Get("street"))
	}
}

// overlayFetcher simulates page change on top of a world.
type overlayFetcher struct {
	w       *webgen.World
	overlay map[string]string
}

func (o *overlayFetcher) Fetch(url string) (string, error) {
	if html, ok := o.overlay[url]; ok {
		return html, nil
	}
	return o.w.Fetch(url)
}

func TestRefreshSkipsUnchanged(t *testing.T) {
	w := smallWorld()
	reg := lrec.NewRegistry()
	webgen.RegisterConcepts(reg)
	b := &Builder{Fetcher: w, Cfg: StandardConfig(reg, w.Cities(), nil)}
	woc, _, err := b.Build(w.SeedURLs())
	if err != nil {
		t.Fatal(err)
	}
	var urls []string
	for _, p := range w.Pages()[:40] {
		urls = append(urls, p.URL)
	}
	stats, err := b.Refresh(woc, urls)
	if err != nil {
		t.Fatal(err)
	}
	if stats.PagesUnchanged != 40 || stats.PagesChanged != 0 {
		t.Errorf("stats = %+v, want all unchanged", stats)
	}
}

func TestRefreshAppliesChange(t *testing.T) {
	w := smallWorld()
	reg := lrec.NewRegistry()
	webgen.RegisterConcepts(reg)
	of := &overlayFetcher{w: w, overlay: map[string]string{}}
	b := &Builder{Fetcher: of, Cfg: StandardConfig(reg, w.Cities(), nil)}
	woc, _, err := b.Build(w.SeedURLs())
	if err != nil {
		t.Fatal(err)
	}

	// Pick a restaurant with a homepage and change its phone there.
	var target *webgen.Restaurant
	for _, r := range w.Restaurants {
		if r.Homepage != "" {
			if recs := woc.Records.ByAttr("restaurant", "phone", r.Phone); len(recs) == 1 {
				target = r
				break
			}
		}
	}
	if target == nil {
		t.Fatal("no suitable restaurant")
	}
	const newPhone = "408-555-9876"
	hp := strings.TrimSuffix(target.Homepage, "/") + "/"
	page, _ := w.PageByURL(hp)
	of.overlay[hp] = strings.ReplaceAll(page.HTML, target.Phone, newPhone)

	stats, err := b.Refresh(woc, []string{hp})
	if err != nil {
		t.Fatal(err)
	}
	if stats.PagesChanged != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.RecordsUpdated == 0 && stats.RecordsCreated == 0 {
		t.Fatal("change produced no record effect")
	}
	// The existing record should now also carry the new phone (linked to the
	// existing record, not a fresh one — §7.3).
	recs := woc.Records.ByAttr("restaurant", "phone", newPhone)
	if len(recs) != 1 {
		t.Fatalf("new phone found on %d records", len(recs))
	}
	if recs[0].Get("zip") != target.Zip {
		t.Errorf("updated record lost zip: %s", recs[0])
	}
	if stats.RecordsCreated > 0 && stats.RecordsUpdated == 0 {
		t.Errorf("change created a new record instead of updating: %+v", stats)
	}
}

func TestClassifierGateExcludesHotels(t *testing.T) {
	w := smallWorld()
	reg := lrec.NewRegistry()
	webgen.RegisterConcepts(reg)

	// Train the global classifier on two portals' truth labels.
	nb := classify.NewNaiveBayes()
	for _, city := range w.Cities()[:2] {
		site, _ := w.SiteByHost(webgen.PortalHost(city))
		for _, p := range site.Pages {
			nb.Train(classify.Features(webgraph.NewPage(p.URL, p.HTML)), p.Truth.Category)
		}
	}

	// Pre-crawl to build the store/graph the gate needs.
	st := webgraph.NewStore()
	(&webgraph.Crawler{Fetcher: w, Store: st}).Crawl(w.SeedURLs())
	graph := webgraph.BuildGraph(st)
	var portalHosts []string
	for _, city := range w.Cities() {
		portalHosts = append(portalHosts, webgen.PortalHost(city))
	}
	gate := ClassifierGate(nb, map[string]string{"restaurant": webgen.CatRestaurants},
		st, graph, portalHosts)

	cfg := StandardConfig(reg, w.Cities(), nil)
	cfg.Gate = gate
	b := &Builder{Fetcher: w, Cfg: cfg}
	woc, _, err := b.Build(w.SeedURLs())
	if err != nil {
		t.Fatal(err)
	}
	// No hotel should be stored as a restaurant.
	leaked := 0
	for _, h := range w.Hotels {
		if len(woc.Records.ByAttr("restaurant", "phone", h.Phone)) > 0 {
			leaked++
		}
	}
	if leaked > len(w.Hotels)/5 {
		t.Errorf("%d/%d hotels leaked into restaurant concept despite gate", leaked, len(w.Hotels))
	}
	// And real restaurants must still be there.
	if n := woc.Records.CountByConcept("restaurant"); n < len(w.Restaurants)*3/4 {
		t.Errorf("gate removed too much: %d records for %d restaurants", n, len(w.Restaurants))
	}
}

func TestBuildExtractsEvents(t *testing.T) {
	w, woc, _, _ := built(t)
	n := woc.Records.CountByConcept("event")
	want := len(w.Events)
	t.Logf("event records: %d (ground truth %d)", n, want)
	if n < want/2 {
		t.Errorf("too few events extracted: %d of %d", n, want)
	}
	if n > want*2 {
		t.Errorf("event over-extraction: %d of %d", n, want)
	}
	// Spot-check one event's attributes.
	found := false
	for _, e := range w.Events {
		recs := woc.Records.ByAttr("event", "date", e.Date)
		for _, rec := range recs {
			if textproc.Normalize(rec.Get("city")) == textproc.Normalize(e.City) {
				found = true
			}
		}
		if found {
			break
		}
	}
	if !found {
		t.Error("no event record matches ground truth date+city")
	}
}

func TestEventAugmentationsFromExtraction(t *testing.T) {
	w, woc, _, _ := built(t)
	if woc.Records.CountByConcept("event") == 0 {
		t.Skip("no events extracted")
	}
	// A restaurant in a city with events should get event augmentations.
	for _, r := range w.Restaurants {
		recs := woc.Records.ByAttr("restaurant", "phone", r.Phone)
		if len(recs) != 1 {
			continue
		}
		evs := woc.Records.ByAttr("event", "city", r.City)
		if len(evs) == 0 {
			continue
		}
		// The recommendation layer lives in session; here we verify the
		// data dependency it needs: same-city events exist in the store.
		return
	}
	t.Error("no restaurant has same-city extracted events")
}
