package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Parallel construction (§7.1): the paper's pipeline is a web-scale batch
// system, and its three dominant post-crawl stages — extraction, semantic
// linking, and indexing — are embarrassingly parallel over sites, pages,
// and documents respectively. The stages fan out over a worker pool and fan
// back in deterministically: every task writes its result into a pre-sized
// slice at its own index, and the single-threaded apply/merge phase consumes
// that slice in order. Same seed and corpus therefore yield byte-identical
// stores and indexes at any worker count, which is what makes §7.3
// incremental maintenance (and test bisection) tractable.

// workers resolves the configured pool size, defaulting to GOMAXPROCS.
func (b *Builder) workers() int {
	if b.Cfg.Workers > 0 {
		return b.Cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// parallelEach runs fn(i) for every i in [0, n) across at most w goroutines.
// Tasks are handed out through an atomic counter, so scheduling order is
// nondeterministic; callers get deterministic fan-in by writing task i's
// result only into slot i of a pre-sized slice and merging after return.
// With w <= 1 (or n <= 1) it degenerates to a plain sequential loop on the
// calling goroutine, so Workers=1 exercises the exact single-threaded path.
// parallelEachOrdered runs fn(i) for every i in [0, n) across at most w
// goroutines and feeds each result to consume in index order, calling
// consume serially. Unlike the pre-sized-slice fan-in, at most lookahead
// results are ever buffered: a worker may not start task i until
// i < next+lookahead, where next is the lowest unconsumed index — the
// backpressure that keeps a slow early task (the giant aggregator host)
// from letting every later result pile up in memory. With w <= 1 it
// degenerates to fn-then-consume in a plain loop.
func parallelEachOrdered[T any](n, w, lookahead int, fn func(i int) T, consume func(i int, v T)) {
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			consume(i, fn(i))
		}
		return
	}
	if lookahead < w {
		lookahead = w
	}
	var (
		mu      sync.Mutex
		cond    = sync.NewCond(&mu)
		issued  int
		next    int
		pending = make(map[int]T, lookahead)
	)
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				for issued < n && issued >= next+lookahead {
					cond.Wait()
				}
				if issued >= n {
					mu.Unlock()
					return
				}
				i := issued
				issued++
				mu.Unlock()

				v := fn(i)

				mu.Lock()
				pending[i] = v
				for {
					pv, ok := pending[next]
					if !ok {
						break
					}
					delete(pending, next)
					// consume runs under the lock: it is serial and in order
					// by construction, and the workers it blocks are exactly
					// the ones the lookahead gate would park anyway.
					consume(next, pv)
					next++
				}
				cond.Broadcast()
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}

func parallelEach(n, w int, fn func(i int)) {
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
