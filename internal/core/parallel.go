package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Parallel construction (§7.1): the paper's pipeline is a web-scale batch
// system, and its three dominant post-crawl stages — extraction, semantic
// linking, and indexing — are embarrassingly parallel over sites, pages,
// and documents respectively. The stages fan out over a worker pool and fan
// back in deterministically: every task writes its result into a pre-sized
// slice at its own index, and the single-threaded apply/merge phase consumes
// that slice in order. Same seed and corpus therefore yield byte-identical
// stores and indexes at any worker count, which is what makes §7.3
// incremental maintenance (and test bisection) tractable.

// workers resolves the configured pool size, defaulting to GOMAXPROCS.
func (b *Builder) workers() int {
	if b.Cfg.Workers > 0 {
		return b.Cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// parallelEach runs fn(i) for every i in [0, n) across at most w goroutines.
// Tasks are handed out through an atomic counter, so scheduling order is
// nondeterministic; callers get deterministic fan-in by writing task i's
// result only into slot i of a pre-sized slice and merging after return.
// With w <= 1 (or n <= 1) it degenerates to a plain sequential loop on the
// calling goroutine, so Workers=1 exercises the exact single-threaded path.
func parallelEach(n, w int, fn func(i int)) {
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
