package core

import (
	"crypto/sha256"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"

	"conceptweb/internal/lrec"
	"conceptweb/internal/textproc"
	"conceptweb/internal/webgen"
)

// mutableFetcher serves a world whose pages can be overlaid (content
// change) or marked gone (fetch failure) between refresh passes.
type mutableFetcher struct {
	w  *webgen.World
	mu sync.Mutex

	overlay map[string]string
	gone    map[string]bool
}

func newMutableFetcher(w *webgen.World) *mutableFetcher {
	return &mutableFetcher{w: w, overlay: map[string]string{}, gone: map[string]bool{}}
}

func (m *mutableFetcher) Fetch(url string) (string, error) {
	m.mu.Lock()
	gone := m.gone[url]
	html, ok := m.overlay[url]
	m.mu.Unlock()
	if gone {
		return "", fmt.Errorf("gone: %s", url)
	}
	if ok {
		return html, nil
	}
	return m.w.Fetch(url)
}

func (m *mutableFetcher) setOverlay(url, html string) {
	m.mu.Lock()
	m.overlay[url] = html
	m.mu.Unlock()
}

func (m *mutableFetcher) setGone(url string, gone bool) {
	m.mu.Lock()
	if gone {
		m.gone[url] = true
	} else {
		delete(m.gone, url)
	}
	m.mu.Unlock()
}

// contentFingerprint hashes the store at the content level: IDs, concepts,
// and each attribute's value set with confidence and source provenance.
// Execution history — Version, Seq, Support — is excluded, and values are
// compared as sorted sets: a delta pass that strips and re-adds a value
// reorders it and replays versions, but must converge to the same content
// a fresh build produces.
func contentFingerprint(woc *WebOfConcepts) string {
	h := sha256.New()
	woc.Records.Scan(func(r *lrec.Record) bool {
		var b strings.Builder
		fmt.Fprintf(&b, "%s|%s", r.ID, r.Concept)
		for _, k := range r.Keys() {
			var vals []string
			for _, v := range r.All(k) {
				vals = append(vals, fmt.Sprintf("%s=%s conf=%.6f src=%s ops=%s",
					k, v.Value, v.Confidence, v.Prov.SourceURL,
					strings.Join(v.Prov.Operators, "+")))
			}
			sort.Strings(vals)
			for _, v := range vals {
				b.WriteString("|")
				b.WriteString(v)
			}
		}
		h.Write([]byte(b.String()))
		h.Write([]byte{'\n'})
		return true
	})
	return fmt.Sprintf("%x", h.Sum(nil))
}

// TestDeltaRefreshConvergesToRebuild is the maintenance-loop equivalence
// bar (§7.3): a sequence of incremental passes over changed, gone, and
// resurrected pages must land on the same store content, association maps,
// and bit-identical search results as a from-scratch build over the final
// corpus — at every (workers × shards) combination. This leans on the
// whole PR: physical index removal (stats shrink), the page-store delete
// (resurrection), the supersede stage (no stale values), and the relink
// stage (free-text pages follow their new content).
func TestDeltaRefreshConvergesToRebuild(t *testing.T) {
	queries := []string{
		"mexican cupertino", "pizza menu", "sushi san jose",
		"best thai", "restaurant review", "gochi", "phone",
	}
	type combo struct{ workers, shards int }
	combos := []combo{{1, 1}, {1, 4}, {8, 1}, {8, 4}}

	var baseFP string
	for _, cb := range combos {
		cb := cb
		t.Run(fmt.Sprintf("workers=%d shards=%d", cb.workers, cb.shards), func(t *testing.T) {
			w := smallWorld()
			reg := lrec.NewRegistry()
			webgen.RegisterConcepts(reg)
			mf := newMutableFetcher(w)
			cfg := StandardConfig(reg, w.Cities(), webgen.Cuisines())
			cfg.Workers = cb.workers
			cfg.Shards = cb.shards
			b := &Builder{Fetcher: mf, Cfg: cfg}
			woc, _, err := b.Build(w.SeedURLs())
			if err != nil {
				t.Fatal(err)
			}
			defer woc.Close()

			// Three restaurants with homepages and uniquely attributable
			// records: one changes twice, one goes and returns unchanged,
			// one goes and returns changed.
			var targets []*webgen.Restaurant
			for _, r := range w.Restaurants {
				if r.Homepage != "" {
					if recs := woc.Records.ByAttr("restaurant", "phone", r.Phone); len(recs) == 1 {
						targets = append(targets, r)
						if len(targets) == 3 {
							break
						}
					}
				}
			}
			if len(targets) < 3 {
				t.Fatal("world too small for churn scenario")
			}
			home := func(r *webgen.Restaurant) string {
				return strings.TrimSuffix(r.Homepage, "/") + "/"
			}
			h1, h2, h3 := home(targets[0]), home(targets[1]), home(targets[2])
			html := func(u string) string {
				p, ok := w.PageByURL(u)
				if !ok {
					t.Fatalf("page %s not in world", u)
				}
				return p.HTML
			}

			// A free-text page the build linked to a record (it has a review
			// record); its text will change mid-churn.
			var reviewURL string
			for _, u := range woc.Pages.URLs() {
				if _, err := woc.Records.Get("review:" + textproc.NormalizeKey(u)); err == nil {
					reviewURL = u
					break
				}
			}
			if reviewURL == "" {
				t.Fatal("build linked no review pages; churn scenario needs one")
			}

			refresh := func(urls ...string) *RefreshStats {
				t.Helper()
				st, err := b.Refresh(woc, urls)
				if err != nil {
					t.Fatal(err)
				}
				return st
			}
			padding := woc.Pages.URLs()[:10] // unchanged cohort filler

			// Pass 1: phone change on h1, text change on the review page.
			mf.setOverlay(h1, strings.ReplaceAll(html(h1), targets[0].Phone, "408-555-1111"))
			mf.setOverlay(reviewURL, strings.Replace(html(reviewURL),
				"</body>", " The service was outstanding and the dining room lovely.</body>", 1))
			refresh(append([]string{h1, reviewURL}, padding...)...)

			// Pass 2: h1 changes again; h2 goes dark.
			mf.setOverlay(h1, strings.ReplaceAll(html(h1), targets[0].Phone, "408-555-2222"))
			mf.setGone(h2, true)
			refresh(append([]string{h1, h2}, padding...)...)

			// Pass 3: h2 resurrects byte-identical; h3 goes dark.
			mf.setGone(h2, false)
			mf.setGone(h3, true)
			refresh(append([]string{h2, h3}, padding...)...)

			// Pass 4: h3 resurrects with a different phone.
			mf.setGone(h3, false)
			mf.setOverlay(h3, strings.ReplaceAll(html(h3), targets[2].Phone, "408-555-3333"))
			st := refresh(append([]string{h3}, padding...)...)
			if st.PagesChanged != 1 {
				t.Fatalf("changed resurrection not detected: %+v", st)
			}

			// Full rebuild over the final corpus, same knobs.
			b2 := &Builder{Fetcher: mf, Cfg: cfg}
			woc2, _, err := b2.Build(w.SeedURLs())
			if err != nil {
				t.Fatal(err)
			}
			defer woc2.Close()

			deltaFP, rebuildFP := contentFingerprint(woc), contentFingerprint(woc2)
			if deltaFP != rebuildFP {
				diffStores(t, woc, woc2)
				t.Errorf("store content diverges from rebuild")
			}
			if !reflect.DeepEqual(woc.Assoc, woc2.Assoc) {
				diffStringMaps(t, "Assoc", woc.Assoc, woc2.Assoc)
				t.Errorf("Assoc maps diverge from rebuild")
			}
			if !reflect.DeepEqual(woc.RevAssoc, woc2.RevAssoc) {
				diffStringMaps(t, "RevAssoc", woc.RevAssoc, woc2.RevAssoc)
				t.Errorf("RevAssoc maps diverge from rebuild")
			}
			if woc.DocIndex.Len() != woc2.DocIndex.Len() || woc.RecIndex.Len() != woc2.RecIndex.Len() {
				t.Errorf("index sizes diverge: doc %d/%d rec %d/%d",
					woc.DocIndex.Len(), woc2.DocIndex.Len(), woc.RecIndex.Len(), woc2.RecIndex.Len())
			}
			for _, q := range queries {
				for _, term := range strings.Fields(q) {
					if a, b := woc.DocIndex.DF(term), woc2.DocIndex.DF(term); a != b {
						t.Errorf("doc DF(%q) = %d, rebuild %d", term, a, b)
					}
				}
				if a, b := woc.DocIndex.Search(q, 10), woc2.DocIndex.Search(q, 10); !reflect.DeepEqual(a, b) {
					t.Errorf("doc search %q diverges from rebuild:\n delta: %+v\n fresh: %+v", q, a, b)
				}
				if a, b := woc.RecIndex.Search(q, 10), woc2.RecIndex.Search(q, 10); !reflect.DeepEqual(a, b) {
					t.Errorf("rec search %q diverges from rebuild:\n delta: %+v\n fresh: %+v", q, a, b)
				}
			}

			// Every combination converges to the same state: compare the
			// first combo's fingerprint across the matrix.
			if baseFP == "" {
				baseFP = deltaFP
			} else if deltaFP != baseFP {
				t.Errorf("fingerprint diverges across the (workers × shards) matrix")
			}
		})
	}
}

// diffStringMaps prints the first few differing keys of two association maps.
func diffStringMaps(t *testing.T, label string, a, b map[string][]string) {
	t.Helper()
	shown := 0
	for k, v := range a {
		if shown >= 6 {
			return
		}
		if w, ok := b[k]; !ok || !reflect.DeepEqual(v, w) {
			t.Logf("%s[%s]: delta %v, fresh %v", label, k, v, b[k])
			shown++
		}
	}
	for k, w := range b {
		if shown >= 6 {
			return
		}
		if _, ok := a[k]; !ok {
			t.Logf("%s[%s]: delta <missing>, fresh %v", label, k, w)
			shown++
		}
	}
}

// diffStores prints the first few record-level differences to keep
// divergence messages debuggable.
func diffStores(t *testing.T, a, b *WebOfConcepts) {
	t.Helper()
	snap := func(woc *WebOfConcepts) map[string]string {
		out := map[string]string{}
		woc.Records.Scan(func(r *lrec.Record) bool {
			var sb strings.Builder
			for _, k := range r.Keys() {
				var vals []string
				for _, v := range r.All(k) {
					vals = append(vals, fmt.Sprintf("%s=%s conf=%.4f src=%s", k, v.Value, v.Confidence, v.Prov.SourceURL))
				}
				sort.Strings(vals)
				sb.WriteString(strings.Join(vals, ";") + "|")
			}
			out[r.ID] = sb.String()
			return true
		})
		return out
	}
	sa, sb := snap(a), snap(b)
	shown := 0
	for id, v := range sa {
		if shown >= 5 {
			break
		}
		if w, ok := sb[id]; !ok {
			t.Logf("only in delta: %s -> %s", id, v)
			shown++
		} else if w != v {
			t.Logf("differs: %s\n delta: %s\n fresh: %s", id, v, w)
			shown++
		}
	}
	for id, v := range sb {
		if shown >= 8 {
			break
		}
		if _, ok := sa[id]; !ok {
			t.Logf("only in rebuild: %s -> %s", id, v)
			shown++
		}
	}
}
