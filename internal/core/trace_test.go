package core

import (
	"testing"

	"conceptweb/internal/lrec"
	"conceptweb/internal/obs"
	"conceptweb/internal/webgen"
)

// TestBuildStageTrace checks the tentpole contract: every build produces a
// per-stage trace covering the five pipeline stages, and a metrics registry
// wired through Config receives stage histograms plus store counters.
func TestBuildStageTrace(t *testing.T) {
	_, _, stats, _ := built(t)
	if stats.Trace == nil {
		t.Fatal("BuildStats.Trace is nil")
	}
	if stats.Trace.Name != "build" {
		t.Errorf("root = %q, want build", stats.Trace.Name)
	}
	for _, stage := range []string{"crawl", "extract", "resolve", "link", "index"} {
		n := stats.Trace.Find(stage)
		if n == nil {
			t.Errorf("trace missing stage %q", stage)
			continue
		}
		if n.Duration < 0 {
			t.Errorf("stage %q duration = %v", stage, n.Duration)
		}
	}
	if len(stats.Trace.Children) != 5 {
		t.Errorf("stage count = %d, want 5", len(stats.Trace.Children))
	}
	table := stats.Trace.Table()
	if table == "" {
		t.Error("empty stage table")
	}
}

func TestBuildMetricsWiring(t *testing.T) {
	w := smallWorld()
	reg := lrec.NewRegistry()
	webgen.RegisterConcepts(reg)
	m := obs.NewRegistry()
	cfg := StandardConfig(reg, w.Cities(), nil)
	cfg.Metrics = m
	b := &Builder{Fetcher: w, Cfg: cfg}
	woc, stats, err := b.Build(w.SeedURLs())
	if err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	for _, name := range []string{"build.crawl", "build.extract", "build.resolve",
		"build.link", "build.index"} {
		if snap.Histograms[name].Count != 1 {
			t.Errorf("%s count = %d, want 1", name, snap.Histograms[name].Count)
		}
	}
	if snap.Counters["lrec.puts"] == 0 {
		t.Error("lrec.puts = 0, want store traffic")
	}
	if got := snap.Counters["build.records.stored"]; got != int64(stats.RecordsStored) {
		t.Errorf("build.records.stored = %d, want %d", got, stats.RecordsStored)
	}

	// A refresh pass traces its own stages into refresh.* histograms.
	urls := woc.RevAssoc[woc.Records.ByConcept("restaurant")[0].ID]
	if len(urls) == 0 {
		t.Skip("no associated pages to refresh")
	}
	rstats, err := b.Refresh(woc, urls)
	if err != nil {
		t.Fatal(err)
	}
	if rstats.Trace == nil || rstats.Trace.Find("refetch") == nil {
		t.Fatalf("refresh trace = %+v", rstats.Trace)
	}
	if m.Snapshot().Histograms["refresh.refetch"].Count != 1 {
		t.Error("refresh.refetch histogram not recorded")
	}
}
