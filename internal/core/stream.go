package core

import (
	"context"
	"fmt"

	"conceptweb/internal/extract"
	"conceptweb/internal/index"
	"conceptweb/internal/webgraph"
)

// PageSource streams a corpus page by page. Implementations (such as
// webgen.StreamWorld) generate or read pages on demand; BuildStream never
// asks for the whole corpus at once. Returning an error from emit aborts the
// stream and surfaces the error from StreamPages.
type PageSource interface {
	StreamPages(emit func(url, html string) error) error
}

// indexChunk is how many pages the streamed index stage prepares per batch.
// Chunks are processed in sorted-URL order and AddPreparedBatch preserves
// relative order per shard, so chunked indexing assigns identical doc
// numbering to the one-shot path.
const indexChunk = 1024

// BuildStream constructs the web of concepts from a streamed page source
// with memory bounded by a site, never the corpus (ISSUE 9). It differs from
// Build in exactly the ways unbounded state hides in the full pipeline:
//
//   - Pages are ingested straight into the page store as the source emits
//     them (pair with Config.PageStore = webgraph.OpenDiskStore(...) to keep
//     page bytes on disk). There is no crawl frontier and no []Page slice.
//   - Extraction runs host by host; each host's PageAnalysis values die when
//     its task returns. Build's build-wide analyses map — every DOM and
//     token stream in the corpus, alive until the link stage — is the single
//     largest resident structure in a full build and does not exist here.
//     Candidate order still matches Build exactly (sorted hosts, declared
//     domain order within a host), so resolution output is identical.
//   - The document index is filled in bounded chunks instead of one
//     corpus-sized []PreparedDoc.
//   - No link graph is built: Graph remains nil. BuildGraph's output is
//     itself O(corpus) resident memory, which contradicts a bounded build;
//     callers needing relational classification run the in-memory path.
//
// The semantic-link and resolve stages are shared with Build, so for a
// corpus whose pages are all crawl-reachable the two paths produce
// identical stores, associations, and indexes (see stream_test.go).
func (b *Builder) BuildStream(src PageSource) (*WebOfConcepts, *BuildStats, error) {
	woc, storeRecovery, err := b.newWoc()
	if err != nil {
		return nil, nil, err
	}
	stats := &BuildStats{Workers: b.workers(), StoreRecovery: storeRecovery}
	ctx, root := pipelineCtx("build")

	totalPages := 0
	if p, ok := src.(interface{ PlannedPages() int }); ok {
		totalPages = p.PlannedPages()
	}

	var ingestErr error
	b.stage(ctx, "ingest", func(context.Context) {
		n := 0
		ingestErr = src.StreamPages(func(url, html string) error {
			woc.Pages.Put(webgraph.NewPage(url, html))
			if err := woc.Pages.Err(); err != nil {
				return err
			}
			n++
			if n%512 == 0 {
				b.progress("ingest", n, totalPages)
			}
			return nil
		})
		if ingestErr == nil {
			ingestErr = woc.Pages.Flush()
		}
		stats.PagesFetched = n
		b.progress("ingest", n, totalPages)
	})
	if ingestErr != nil {
		return nil, nil, fmt.Errorf("core: ingest: %w", ingestErr)
	}

	cg := newConceptGroups(nil)
	b.stage(ctx, "extract", func(context.Context) {
		hosts := woc.Pages.Hosts()
		w := b.workers()
		// The ordered fan-in folds each host's candidates into the
		// per-concept collector as soon as every earlier host has folded; at
		// most 4·w host results are ever resident, and candidates that
		// pre-merge into an already-folded record die immediately instead of
		// riding a corpus-sized slice to the resolve stage.
		parallelEachOrdered(len(hosts), w, 4*w,
			func(i int) []*extract.Candidate {
				return b.extractHostStreaming(woc.Pages, hosts[i])
			},
			func(i int, cands []*extract.Candidate) {
				cg.addAll(cands)
				if d := i + 1; d%64 == 0 || d == len(hosts) {
					b.progress("extract", d, len(hosts))
				}
			})
		stats.Candidates = cg.total
	})

	b.stage(ctx, "resolve", func(context.Context) {
		b.progress("resolve", 0, stats.Candidates)
		b.resolveAndStore(woc, cg, stats)
		b.progress("resolve", stats.Candidates, stats.Candidates)
	})
	cg = nil

	b.stage(ctx, "link", func(context.Context) {
		b.progress("link", 0, 0)
		// nil analyses: the link stage re-analyzes candidate pages through
		// the page store's parse cache instead of holding every analysis.
		b.linkText(woc, stats, nil)
	})

	b.stage(ctx, "index", func(context.Context) {
		b.buildIndexesChunked(woc)
	})

	root.End()
	stats.Trace = root.Report()
	stats.Epoch = woc.BumpEpoch()
	m := b.Cfg.Metrics
	m.Counter("build.runs").Inc()
	m.Counter("build.pages.fetched").Add(int64(stats.PagesFetched))
	m.Counter("build.candidates").Add(int64(stats.Candidates))
	m.Counter("build.records.stored").Add(int64(stats.RecordsStored))
	m.Counter("build.pages.linked").Add(int64(stats.PagesLinked))
	return woc, stats, nil
}

// extractHostStreaming runs every configured domain over one host. The
// host's analyses are local to the call and die with it.
func (b *Builder) extractHostStreaming(pages *webgraph.Store, host string) []*extract.Candidate {
	var sitePas []*extract.PageAnalysis
	for _, u := range pages.HostPages(host) {
		if p, err := pages.Get(u); err == nil {
			sitePas = append(sitePas, extract.Analyze(p))
		}
	}
	var all []*extract.Candidate
	for _, d := range b.Cfg.Domains {
		all = append(all, b.extractSite(sitePas, d)...)
	}
	return all
}

// buildIndexesChunked is buildIndexes with the page side bounded: prepared
// docs are batched indexChunk pages at a time in sorted-URL order.
func (b *Builder) buildIndexesChunked(woc *WebOfConcepts) {
	w := b.workers()
	urls := woc.Pages.URLs()
	for lo := 0; lo < len(urls); lo += indexChunk {
		hi := lo + indexChunk
		if hi > len(urls) {
			hi = len(urls)
		}
		chunk := urls[lo:hi]
		docs := make([]index.PreparedDoc, len(chunk))
		parallelEach(len(chunk), w, func(i int) {
			p, err := woc.Pages.Get(chunk[i])
			if err != nil {
				return
			}
			docs[i] = index.Prepare(pageDocument(p))
		})
		woc.DocIndex.AddPreparedBatch(docs, w)
		b.progress("index", hi, len(urls))
	}
	b.indexRecords(woc, w)
}
