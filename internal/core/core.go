// Package core orchestrates construction and maintenance of a web of
// concepts (§4, §7.3): it crawls pages, runs domain-centric extraction
// (list + detail with site-level template propagation), resolves co-referent
// candidates with collective entity matching, links free-text pages
// (reviews, articles) to records with the generative text matcher, builds
// the document/record inverted indexes, and maintains the whole thing
// incrementally as pages change.
package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"unicode/utf8"

	"conceptweb/internal/extract"
	"conceptweb/internal/index"
	"conceptweb/internal/lrec"
	"conceptweb/internal/match"
	"conceptweb/internal/obs"
	"conceptweb/internal/textproc"
	"conceptweb/internal/webgraph"
)

// Config assembles the domain knowledge for a build.
type Config struct {
	Registry *lrec.Registry
	// Domains drive list/detail extraction, one per concept of interest.
	Domains []extract.Domain
	// Matchers provide entity matching per concept name; concepts without a
	// matcher are deduplicated by synthesized ID only.
	Matchers map[string]*match.Matcher
	// LinkConcepts are the concepts whose records participate in semantic
	// linking of free-text pages (reviews, articles).
	LinkConcepts []string
	// LinkThreshold is the minimum text-match score to create a link
	// (default 0.35).
	LinkThreshold float64
	// MaxPages bounds the crawl (0 = unlimited).
	MaxPages int
	// Workers is the size of the worker pool the extract, link, and index
	// stages (and Refresh's refetch/extract) fan out over; 0 or negative
	// means runtime.GOMAXPROCS(0). Output is deterministic at any value:
	// results fan back in by task index, so the same seed and corpus yield
	// identical stores and indexes whether Workers is 1 or 64.
	Workers int
	// Shards partitions the record store and both inverted indexes into
	// hash-routed shards, letting the resolve and index stages write
	// concurrently into disjoint partitions instead of queueing on one
	// lock. 0 or 1 keeps the single-partition layout (and, for durable
	// stores, the pre-sharding on-disk format). Like Workers, the value
	// never changes output: store contents, version numbers, and search
	// results are identical at any (workers × shards) combination.
	Shards int
	// Gate, when non-nil, admits a page to a concept's detail extraction;
	// build one with ClassifierGate to route only relevant pages to each
	// domain's extractor (§4.2 relational classification). The extract stage
	// calls Gate from several workers at once, so implementations must be
	// safe for concurrent use (ClassifierGate is: it only reads maps frozen
	// at construction).
	Gate func(concept string, p *webgraph.Page) bool
	// StoreDir, when set, backs the concept store durably (write-ahead log
	// plus snapshots) in that directory instead of memory.
	StoreDir string
	// PageStore, when non-nil, receives crawled or ingested pages instead of
	// a fresh in-memory store. Pass webgraph.OpenDiskStore's result to keep
	// page bytes in segment files with only a bounded parse cache resident —
	// the corpus-scale configuration BuildStream is designed around.
	PageStore *webgraph.Store
	// Progress, when non-nil, receives pipeline progress callbacks: a stage
	// name plus done/total counts (total is 0 when unknown). Callbacks come
	// from multiple goroutines and must be cheap and concurrency-safe.
	Progress func(stage string, done, total int)
	// Metrics, when non-nil, receives pipeline counters, store counters, and
	// per-stage latency histograms. Stage traces in BuildStats/RefreshStats
	// are produced regardless.
	Metrics *obs.Registry
}

// WebOfConcepts is the built artifact: the unified concept store plus the
// document-side structures applications consume.
type WebOfConcepts struct {
	Registry *lrec.Registry
	Records  *lrec.Store
	Pages    *webgraph.Store
	Graph    *webgraph.Graph
	// DocIndex indexes page text; RecIndex indexes flattened lrecs — the
	// paper's stipulation that concept retrieval ride on inverted indexes.
	// Both are hash-sharded (1 shard unless Config.Shards says otherwise).
	DocIndex *index.Sharded
	RecIndex *index.Sharded
	// Assoc maps page URL -> record IDs the page is about; RevAssoc is the
	// inverse. Both underlie the §5.1 ranking features and §5.4 pivots.
	Assoc    map[string][]string
	RevAssoc map[string][]string
	// goneAssoc remembers, for pages removed by a maintenance pass, which
	// records they fed — the lineage ledger the supersede stage consults
	// when a gone page resurrects with different content. Entries are
	// cleared on resurrection; pages that never return keep theirs.
	goneAssoc map[string][]string

	// epoch is the maintenance generation counter: 1 after Build, bumped by
	// every maintenance pass that changes visible state (Refresh with
	// changed or gone pages, Reconcile that trimmed records). The value
	// serving layers actually key caches by is Epoch(), which folds this
	// counter together with the per-shard epochs of the store and both
	// indexes.
	epoch atomic.Uint64
}

// Epoch returns the current data generation, composed from the maintenance
// counter plus the per-shard mutation epochs of the record store and both
// inverted indexes. Every shard epoch is monotonic, so the composed value
// strictly increases on any visible mutation anywhere — the serving
// contract — and an unchanged maintenance pass reproduces the previous
// value, keeping epoch-keyed result caches warm. Each shard epoch counts
// that shard's mutations, so the sum is invariant to how records hash
// across shards: the same build yields the same epoch at any (workers ×
// shards) combination.
func (woc *WebOfConcepts) Epoch() uint64 {
	e := woc.epoch.Load()
	if woc.Records != nil {
		for _, se := range woc.Records.ShardEpochs() {
			e += se
		}
	}
	if woc.DocIndex != nil {
		for _, se := range woc.DocIndex.ShardEpochs() {
			e += se
		}
	}
	if woc.RecIndex != nil {
		for _, se := range woc.RecIndex.ShardEpochs() {
			e += se
		}
	}
	return e
}

// BumpEpoch advances the maintenance generation counter and returns the new
// composed epoch. Callers that batch several mutations (refresh +
// reconcile) bump once per batch.
func (woc *WebOfConcepts) BumpEpoch() uint64 {
	woc.epoch.Add(1)
	return woc.Epoch()
}

// Close flushes and closes the underlying concept store (a no-op for
// in-memory builds).
func (woc *WebOfConcepts) Close() error { return woc.Records.Close() }

// AssocOf returns the record IDs associated with a page URL.
func (woc *WebOfConcepts) AssocOf(url string) []string { return woc.Assoc[url] }

// PagesOf returns the page URLs associated with a record ID.
func (woc *WebOfConcepts) PagesOf(id string) []string { return woc.RevAssoc[id] }

// BuildStats reports what a build did.
type BuildStats struct {
	PagesFetched   int
	FetchFailures  int
	Candidates     int
	RecordsStored  int
	ClustersMerged int // candidate records absorbed into clusters
	PagesLinked    int // free-text pages linked to records
	ReviewRecords  int
	// Workers annotates the trace with the worker-pool size the parallel
	// stages ran at, so recorded stage tables are comparable across runs.
	Workers int
	// Epoch is the data generation the build produced; maintenance passes
	// (Refresh, Reconcile) advance it whenever they change visible state.
	Epoch uint64
	// StoreRecovery reports what opening the durable store found and
	// repaired (snapshot/log frames replayed, torn-tail truncation); nil
	// for in-memory builds. A repaired torn tail is worth surfacing: it
	// means the previous process died mid-append.
	StoreRecovery *lrec.RecoveryStats
	// Trace is the per-stage timing tree of the build
	// (crawl/extract/resolve/link/index); render it with Trace.Table().
	Trace *obs.TraceReport
}

// Builder runs builds against a fetcher.
type Builder struct {
	Fetcher webgraph.Fetcher
	Cfg     Config

	// assocSeen is associate's reused per-record dedupe set; see associate.
	assocSeen map[string]bool
}

// Build crawls from seeds and constructs the web of concepts. Each pipeline
// stage (crawl, extract, resolve, link, index) is timed into a trace tree
// returned on BuildStats.Trace and, when Cfg.Metrics is set, into per-stage
// latency histograms named "build.<stage>".
func (b *Builder) Build(seeds []string) (*WebOfConcepts, *BuildStats, error) {
	woc, storeRecovery, err := b.newWoc()
	if err != nil {
		return nil, nil, err
	}
	stats := &BuildStats{Workers: b.workers(), StoreRecovery: storeRecovery}
	ctx, root := pipelineCtx("build")

	b.stage(ctx, "crawl", func(context.Context) {
		crawler := &webgraph.Crawler{
			Fetcher: b.Fetcher, Store: woc.Pages, MaxPages: b.Cfg.MaxPages,
		}
		stats.PagesFetched, stats.FetchFailures = crawler.Crawl(seeds)
		woc.Graph = webgraph.BuildGraph(woc.Pages)
	})

	cg := newConceptGroups(nil)
	var analyses map[string]*extract.PageAnalysis
	b.stage(ctx, "extract", func(context.Context) {
		analyses = b.extractAll(woc.Pages, cg)
		stats.Candidates = cg.total
	})
	b.stage(ctx, "resolve", func(context.Context) {
		b.resolveAndStore(woc, cg, stats)
	})
	b.stage(ctx, "link", func(context.Context) {
		b.linkText(woc, stats, analyses)
	})
	b.stage(ctx, "index", func(context.Context) {
		b.buildIndexes(woc)
	})

	root.End()
	stats.Trace = root.Report()
	stats.Epoch = woc.BumpEpoch()
	m := b.Cfg.Metrics
	m.Counter("build.runs").Inc()
	m.Counter("build.pages.fetched").Add(int64(stats.PagesFetched))
	m.Counter("build.candidates").Add(int64(stats.Candidates))
	m.Counter("build.records.stored").Add(int64(stats.RecordsStored))
	m.Counter("build.pages.linked").Add(int64(stats.PagesLinked))
	return woc, stats, nil
}

// newWoc assembles the empty artifact a build fills: the record store
// (memory or durable per StoreDir), the page store (Config.PageStore or a
// fresh in-memory one), and the sharded indexes.
func (b *Builder) newWoc() (*WebOfConcepts, *lrec.RecoveryStats, error) {
	if b.Cfg.Registry == nil {
		return nil, nil, fmt.Errorf("core: nil registry")
	}
	records := lrec.NewMemStore(lrec.WithRegistry(b.Cfg.Registry),
		lrec.WithMetrics(b.Cfg.Metrics), lrec.WithShards(b.Cfg.Shards))
	var storeRecovery *lrec.RecoveryStats
	if b.Cfg.StoreDir != "" {
		durable, err := lrec.Open(b.Cfg.StoreDir,
			lrec.WithRegistry(b.Cfg.Registry), lrec.WithMetrics(b.Cfg.Metrics),
			lrec.WithShards(b.Cfg.Shards))
		if err != nil {
			return nil, nil, fmt.Errorf("core: open store: %w", err)
		}
		records = durable
		rec := durable.Recovery()
		storeRecovery = &rec
	}
	pages := b.Cfg.PageStore
	if pages == nil {
		pages = webgraph.NewStore()
	}
	woc := &WebOfConcepts{
		Registry: b.Cfg.Registry,
		Records:  records,
		Pages:    pages,
		DocIndex: index.NewSharded(b.Cfg.Shards),
		RecIndex: index.NewSharded(b.Cfg.Shards),
		Assoc:    make(map[string][]string),
		RevAssoc: make(map[string][]string),
	}
	return woc, storeRecovery, nil
}

// progress reports pipeline progress to Config.Progress when set.
func (b *Builder) progress(stage string, done, total int) {
	if b.Cfg.Progress != nil {
		b.Cfg.Progress(stage, done, total)
	}
}

// stage runs fn inside a child span of ctx named name, mirroring its
// duration into the "<pipeline>.<name>" latency histogram (pipeline being
// the enclosing root span: build or refresh) when metrics are on.
func (b *Builder) stage(ctx context.Context, name string, fn func(context.Context)) {
	sctx, span := obs.Start(ctx, name)
	fn(sctx)
	d := span.End()
	prefix := "build"
	if r, ok := ctx.Value(rootNameKey{}).(string); ok {
		prefix = r
	}
	b.Cfg.Metrics.Histogram(prefix + "." + name).ObserveDuration(d)
}

type rootNameKey struct{}

// pipelineCtx opens the root span for a pipeline run and tags the context
// with its name so stage() can prefix metrics correctly.
func pipelineCtx(name string) (context.Context, *obs.Span) {
	ctx := context.WithValue(context.Background(), rootNameKey{}, name)
	return obs.Start(ctx, name)
}

// extractAll runs domain-centric extraction over every site: list extraction
// with template propagation, plus detail extraction on pages where no list
// of the same concept was found (a page that lists five restaurants is not a
// detail page about one).
//
// The unit of parallelism is a (host, domain) pair — per-site extraction is
// the embarrassingly parallel unit (§7.1). Each task reads only shared
// immutable inputs (parsed pages, the Domain value; extractor instances are
// created per task) and writes its own result slot; slots concatenate in
// sorted-host, declared-domain order, so candidate order — and with it every
// downstream seq assignment — is identical at any worker count.
//
// One PageAnalysis is built per page and shared by every domain task of the
// host (its lazy views are goroutine-safe), so the per-page DOM passes run
// once instead of once per domain. The analyses also return to the caller:
// the link stage reuses their main-text token streams.
func (b *Builder) extractAll(pages *webgraph.Store, cg *conceptGroups) map[string]*extract.PageAnalysis {
	return b.extractHosts(pages, nil, cg)
}

// extractHosts runs the extract stage over the given hosts (nil = every
// host), folding each task's candidates into cg through the ordered fan-in:
// candidates group per concept (pre-merged by synthesized ID) as tasks
// complete instead of concatenating into one corpus-sized slice. The fold
// preserves the full-build candidate ordering — hosts sorted, then the
// config's domain order, then site-page order — so a host-restricted delta
// extraction folds candidates in the same relative order a fresh build
// would, which the pre-merge value dedupe depends on.
func (b *Builder) extractHosts(pages *webgraph.Store, only map[string]bool, cg *conceptGroups) map[string]*extract.PageAnalysis {
	hosts := pages.Hosts()
	analyses := make(map[string]*extract.PageAnalysis)
	type task struct {
		sitePas []*extract.PageAnalysis
		domain  extract.Domain
	}
	tasks := make([]task, 0, len(hosts)*len(b.Cfg.Domains))
	for _, host := range hosts {
		if only != nil && !only[host] {
			continue
		}
		var sitePas []*extract.PageAnalysis
		for _, u := range pages.HostPages(host) {
			if p, err := pages.Get(u); err == nil {
				pa := extract.Analyze(p)
				sitePas = append(sitePas, pa)
				analyses[p.URL] = pa
			}
		}
		for _, d := range b.Cfg.Domains {
			tasks = append(tasks, task{sitePas, d})
		}
	}
	w := b.workers()
	parallelEachOrdered(len(tasks), w, 4*w,
		func(i int) []*extract.Candidate {
			return b.extractSite(tasks[i].sitePas, tasks[i].domain)
		},
		func(_ int, cands []*extract.Candidate) { cg.addAll(cands) })
	return analyses
}

// extractSite is the body of one extract task: one domain's list extraction
// with site propagation plus detail extraction over one site's pages.
func (b *Builder) extractSite(sitePas []*extract.PageAnalysis, d extract.Domain) []*extract.Candidate {
	prop := &extract.SitePropagator{Inner: &extract.ListExtractor{Domain: d}}
	listCands := prop.ExtractSiteAnalyzed(sitePas)
	listPages := make(map[string]int)
	for _, c := range listCands {
		listPages[c.SourceURL]++
	}
	all := listCands
	det := &extract.DetailExtractor{Domain: d}
	for _, pa := range sitePas {
		p := pa.Page
		if listPages[p.URL] >= 1 {
			// The page yielded list records of this concept: it is a
			// listing (even a single-result one), not a detail page.
			continue
		}
		if b.Cfg.Gate != nil && !b.Cfg.Gate(d.Concept, p) {
			continue // classification routed this page elsewhere
		}
		for _, c := range det.ExtractAnalyzed(pa) {
			if p.Path == "/" {
				// A detail page at a site root is the instance's own
				// homepage.
				c.Add("homepage", p.URL, 0.9)
			}
			if hp := officialSiteLink(p); hp != "" {
				c.Add("homepage", hp, 0.8)
			}
			all = append(all, c)
		}
	}
	return all
}

// officialSiteLink finds an outlink labeled as the official site.
func officialSiteLink(p *webgraph.Page) string {
	for _, a := range p.Doc.FindAll("a") {
		txt := textproc.Normalize(a.Text())
		if strings.Contains(txt, "official site") || strings.Contains(txt, "official website") {
			if href, ok := a.AttrVal("href"); ok {
				return canonicalURL(href)
			}
		}
		// Table-style sites label the row and link the raw URL.
		if href, ok := a.AttrVal("href"); ok && textproc.NormalizeKey(a.Text()) == textproc.NormalizeKey(href) && href != "" {
			return canonicalURL(href)
		}
	}
	return ""
}

// pageMainText returns the page text with nav/footer/breadcrumb boilerplate
// removed, so semantic linking scores content rather than chrome. The walk
// itself lives on PageAnalysis so build-time callers holding an analysis
// share the cached result.
func pageMainText(p *webgraph.Page) string {
	return extract.Analyze(p).MainText()
}

func canonicalURL(u string) string {
	u = strings.TrimPrefix(u, "http://")
	u = strings.TrimPrefix(u, "https://")
	return u
}

// resolveAndStore resolves co-references within the collector's pre-merged
// per-concept groups and stores one merged record per resolved entity. The
// extract stage already grouped candidates as they streamed in; finish only
// stamps final provenance seqs and hands over sorted groups, one concept
// resident in resolve at a time.
func (b *Builder) resolveAndStore(woc *WebOfConcepts, cg *conceptGroups, stats *BuildStats) {
	for _, concept := range cg.concepts() {
		recs := cg.take(concept, woc.Records)
		// Stores go through PutBatch: versions are assigned serially in
		// cluster order before the writes fan out one goroutine per store
		// shard, so the store contents — version numbers included — are
		// identical to a serial Put loop at any (workers × shards)
		// combination. Association bookkeeping stays serial, in the same
		// order.
		toStore := recs
		if m := b.Cfg.Matchers[concept]; m != nil {
			clusters := match.Resolve(recs, m, match.DefaultCollectiveOptions())
			toStore = make([]*lrec.Record, 0, len(clusters))
			for _, cl := range clusters {
				stats.ClustersMerged += len(cl.Members) - 1
				toStore = append(toStore, cl.Rep)
			}
		}
		for i, err := range woc.Records.PutBatch(toStore, b.workers()) {
			if err == nil {
				stats.RecordsStored++
				b.associate(woc, toStore[i])
			}
		}
	}
}

// associate records page<->record associations from provenance. It reuses
// one per-builder seen set across calls (associate runs serially, from the
// resolve apply loop) instead of allocating a map per record — the
// allocation showed up on the 100k-page resolve-stage profile.
func (b *Builder) associate(woc *WebOfConcepts, r *lrec.Record) {
	if b.assocSeen == nil {
		b.assocSeen = make(map[string]bool)
	}
	seen := b.assocSeen
	clear(seen)
	for _, k := range r.Keys() {
		for _, v := range r.All(k) {
			u := v.Prov.SourceURL
			if u == "" || seen[u] {
				continue
			}
			seen[u] = true
			woc.Assoc[u] = appendUnique(woc.Assoc[u], r.ID)
			woc.RevAssoc[r.ID] = appendUnique(woc.RevAssoc[r.ID], u)
		}
	}
	// The record's homepage (and its subpages, transitively crawled) is also
	// associated.
	if hp := r.Get("homepage"); hp != "" {
		woc.Assoc[hp] = appendUnique(woc.Assoc[hp], r.ID)
		woc.RevAssoc[r.ID] = appendUnique(woc.RevAssoc[r.ID], hp)
	}
}

// appendUnique inserts v into the sorted list if absent, keeping it sorted.
// Insertion at the right position replaces the old append-then-sort, which
// re-sorted the whole slice on every call (O(n² log n) across a build).
func appendUnique(list []string, v string) []string {
	i := sort.SearchStrings(list, v)
	if i < len(list) && list[i] == v {
		return list
	}
	list = append(list, "")
	copy(list[i+1:], list[i:])
	list[i] = v
	return list
}

// linkText runs semantic linking (§5.4): pages that produced no structured
// records but whose text matches a stored record become review/mention
// records linked to their subject.
//
// The matcher is built once and its read path (Best/Match) is goroutine-
// safe, so pages are scored across the worker pool; all mutation —
// Assoc/RevAssoc entries and review-record Puts, including their NextSeq
// stamps — happens in a single apply phase that walks the scoring results
// in sorted-URL order, keeping seq assignment deterministic. Scoring reads
// woc.Assoc concurrently, which is safe because the apply phase has not
// started and no other stage runs: each page's skip decision depends only
// on extraction-time associations, never on another page's link.
//
// analyses carries the extract stage's per-page PageAnalysis values so the
// main-text walk and its tokenization are not repeated here; pages missing
// from the map (nil map on a fresh store) are analyzed on the spot.
func (b *Builder) linkText(woc *WebOfConcepts, stats *BuildStats, analyses map[string]*extract.PageAnalysis) {
	linkConcepts := b.Cfg.LinkConcepts
	if len(linkConcepts) == 0 {
		return
	}
	threshold := b.Cfg.LinkThreshold
	if threshold == 0 {
		threshold = 0.35
	}
	var corpus []*lrec.Record
	for _, c := range linkConcepts {
		corpus = append(corpus, woc.Records.ByConcept(c)...)
	}
	if len(corpus) == 0 {
		return
	}
	tm := match.NewTextMatcher(corpus)

	type hit struct {
		url     string
		recID   string
		snippet string
	}
	urls := woc.Pages.URLs()
	hits := make([]*hit, len(urls))
	parallelEach(len(urls), b.workers(), func(i int) {
		p, err := woc.Pages.Get(urls[i])
		if err != nil {
			return
		}
		if len(woc.Assoc[p.URL]) > 0 {
			return // already associated through extraction
		}
		pa := analyses[p.URL]
		if pa == nil {
			pa = extract.Analyze(p)
		}
		text := pa.MainText()
		if len(text) < 40 {
			return
		}
		best, ok := tm.BestTokens(pa.MainTokens(), threshold)
		if !ok {
			return
		}
		hits[i] = &hit{url: p.URL, recID: best.ID, snippet: truncateBytes(text, 280)}
	})

	for _, h := range hits {
		if h == nil {
			continue
		}
		stats.PagesLinked++
		woc.Assoc[h.url] = appendUnique(woc.Assoc[h.url], h.recID)
		woc.RevAssoc[h.recID] = appendUnique(woc.RevAssoc[h.recID], h.url)
		// Store a review record for the linked mention.
		rev := lrec.NewRecord(fmt.Sprintf("review:%s", textproc.NormalizeKey(h.url)), "review")
		seq := woc.Records.NextSeq()
		add := func(key, val string, conf float64) {
			rev.Add(key, lrec.AttrValue{Value: val, Confidence: conf,
				Prov: lrec.Provenance{SourceURL: h.url, Operators: []string{"textmatch"}, Seq: seq}})
		}
		add("text", h.snippet, 0.9)
		add("about", h.recID, 0.8)
		add("source", h.url, 1)
		if err := woc.Records.Put(rev); err == nil {
			stats.ReviewRecords++
		}
	}
}

// truncateBytes cuts s to at most max bytes without splitting a multi-byte
// UTF-8 rune: the cut backs up to the nearest rune boundary.
func truncateBytes(s string, max int) string {
	if len(s) <= max {
		return s
	}
	cut := max
	for cut > 0 && !utf8.RuneStart(s[cut]) {
		cut--
	}
	return s[:cut]
}

// buildIndexes fills the document and record inverted indexes. Analysis
// (DOM text flattening + tokenization, the expensive part) fans out over the
// worker pool via index.Prepare; the prepared postings then merge with one
// writer per index shard, each adding its shard's documents in sorted
// doc-ID order, so internal doc and field numbering — and hence serialized
// index state and every score — is identical at any (workers × shards)
// combination.
func (b *Builder) buildIndexes(woc *WebOfConcepts) {
	w := b.workers()

	urls := woc.Pages.URLs()
	docs := make([]index.PreparedDoc, len(urls))
	parallelEach(len(urls), w, func(i int) {
		p, err := woc.Pages.Get(urls[i])
		if err != nil {
			return
		}
		docs[i] = index.Prepare(pageDocument(p))
	})
	woc.DocIndex.AddPreparedBatch(docs, w)
	b.indexRecords(woc, w)
}

// indexRecords fills the record inverted index; shared by the full-batch and
// chunked (BuildStream) page-indexing paths.
func (b *Builder) indexRecords(woc *WebOfConcepts, w int) {
	var recs []*lrec.Record
	woc.Records.Scan(func(r *lrec.Record) bool {
		if r.Concept != "review" { // reviews are reachable via their subject
			recs = append(recs, r)
		}
		return true
	})
	rdocs := make([]index.PreparedDoc, len(recs))
	parallelEach(len(recs), w, func(i int) {
		rdocs[i] = index.Prepare(recordDocument(recs[i]))
	})
	woc.RecIndex.AddPreparedBatch(rdocs, w)
	b.updateIndexGauges(woc)
}

// updateIndexGauges publishes each index shard's posting-entry count as the
// index.shard.<k>.postings gauge (doc and record indexes summed per shard).
func (b *Builder) updateIndexGauges(woc *WebOfConcepts) {
	if b.Cfg.Metrics == nil {
		return
	}
	dp := woc.DocIndex.ShardPostings()
	rp := woc.RecIndex.ShardPostings()
	for i, n := range dp {
		if i < len(rp) {
			n += rp[i]
		}
		b.Cfg.Metrics.Gauge(fmt.Sprintf("index.shard.%d.postings", i)).Set(int64(n))
	}
}

// pageDocument shapes a page for the document index.
func pageDocument(p *webgraph.Page) index.Document {
	title := ""
	if t := p.Doc.FindFirst("title"); t != nil {
		title = t.Text()
	}
	return index.Document{ID: p.URL, Fields: []index.Field{
		{Name: "title", Text: title, Boost: 2.5},
		{Name: "body", Text: p.Doc.Text()},
	}}
}

// recordDocument shapes a flattened lrec for the record index.
func recordDocument(r *lrec.Record) index.Document {
	name := r.Get("name")
	if name == "" {
		name = r.Get("title")
	}
	return index.Document{ID: r.ID, Fields: []index.Field{
		{Name: "name", Text: name, Boost: 3},
		{Name: "attrs", Text: r.FlatText()},
	}}
}
