package core

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"conceptweb/internal/lrec"
	"conceptweb/internal/webgen"
	"conceptweb/internal/webgraph"
)

// worldSource adapts a fully materialized webgen.World to the PageSource
// interface, so the streamed pipeline can be compared head-to-head with the
// crawl pipeline over the identical corpus.
type worldSource struct{ w *webgen.World }

func (s worldSource) StreamPages(emit func(url, html string) error) error {
	for _, p := range s.w.Pages() {
		if err := emit(p.URL, p.HTML); err != nil {
			return err
		}
	}
	return nil
}

func streamBuilder(w *webgen.World, pageStore *webgraph.Store) *Builder {
	reg := lrec.NewRegistry()
	webgen.RegisterConcepts(reg)
	cfg := StandardConfig(reg, w.Cities(), webgen.Cuisines())
	cfg.PageStore = pageStore
	return &Builder{Fetcher: w, Cfg: cfg}
}

// TestBuildStreamMatchesBuild: over the same corpus, the bounded-memory
// streamed pipeline must produce the same web of concepts as the crawl
// pipeline — same records (IDs, versions, values, provenance), same
// associations, same ranked search results. Streaming is an execution
// strategy, not a semantic variant.
func TestBuildStreamMatchesBuild(t *testing.T) {
	w := smallWorld()

	full := streamBuilder(w, nil)
	wocBuild, statsBuild, err := full.Build(w.SeedURLs())
	if err != nil {
		t.Fatal(err)
	}
	defer wocBuild.Close()

	streamed := streamBuilder(w, nil)
	wocStream, statsStream, err := streamed.BuildStream(worldSource{w})
	if err != nil {
		t.Fatal(err)
	}
	defer wocStream.Close()

	if statsStream.PagesFetched != statsBuild.PagesFetched {
		t.Errorf("ingested %d pages, crawl fetched %d", statsStream.PagesFetched, statsBuild.PagesFetched)
	}
	if statsStream.Candidates != statsBuild.Candidates ||
		statsStream.RecordsStored != statsBuild.RecordsStored ||
		statsStream.ClustersMerged != statsBuild.ClustersMerged ||
		statsStream.PagesLinked != statsBuild.PagesLinked ||
		statsStream.ReviewRecords != statsBuild.ReviewRecords {
		t.Errorf("stats diverge:\nstream %+v\nbuild  %+v", statsStream, statsBuild)
	}
	if got, want := fingerprint(wocStream), fingerprint(wocBuild); got != want {
		t.Error("record store fingerprints diverge between BuildStream and Build")
	}
	if !reflect.DeepEqual(wocStream.Assoc, wocBuild.Assoc) {
		t.Error("Assoc maps diverge")
	}
	if !reflect.DeepEqual(wocStream.RevAssoc, wocBuild.RevAssoc) {
		t.Error("RevAssoc maps diverge")
	}
	for _, q := range []string{"mexican cupertino", "pizza menu", "sushi san jose", "best thai"} {
		if got, want := searchIDs(wocStream.DocIndex, q, 10), searchIDs(wocBuild.DocIndex, q, 10); !reflect.DeepEqual(got, want) {
			t.Errorf("doc search %q diverges:\n got %v\nwant %v", q, got, want)
		}
		if got, want := searchIDs(wocStream.RecIndex, q, 10), searchIDs(wocBuild.RecIndex, q, 10); !reflect.DeepEqual(got, want) {
			t.Errorf("rec search %q diverges:\n got %v\nwant %v", q, got, want)
		}
	}
	if wocStream.Graph != nil {
		t.Error("BuildStream should not build the link graph")
	}
}

// TestBuildStreamDiskPageStore: the same streamed build through a disk-backed
// page store (segment files + parse cache) must be indistinguishable from the
// in-memory page store — the Store facade contract, proven through the whole
// extraction pipeline rather than per-method assertions.
func TestBuildStreamDiskPageStore(t *testing.T) {
	w := smallWorld()

	mem := streamBuilder(w, nil)
	wocMem, statsMem, err := mem.BuildStream(worldSource{w})
	if err != nil {
		t.Fatal(err)
	}
	defer wocMem.Close()

	ds, err := webgraph.OpenDiskStore(t.TempDir(), webgraph.DiskOptions{CachePages: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	disk := streamBuilder(w, ds)
	wocDisk, statsDisk, err := disk.BuildStream(worldSource{w})
	if err != nil {
		t.Fatal(err)
	}
	defer wocDisk.Close()

	if statsDisk.Candidates != statsMem.Candidates ||
		statsDisk.RecordsStored != statsMem.RecordsStored ||
		statsDisk.PagesLinked != statsMem.PagesLinked {
		t.Errorf("stats diverge:\ndisk %+v\nmem  %+v", statsDisk, statsMem)
	}
	if got, want := fingerprint(wocDisk), fingerprint(wocMem); got != want {
		t.Error("record store fingerprints diverge between disk and memory page stores")
	}
	if !reflect.DeepEqual(wocDisk.Assoc, wocMem.Assoc) {
		t.Error("Assoc maps diverge")
	}
	for _, q := range []string{"mexican cupertino", "restaurant review"} {
		if got, want := searchIDs(wocDisk.DocIndex, q, 10), searchIDs(wocMem.DocIndex, q, 10); !reflect.DeepEqual(got, want) {
			t.Errorf("doc search %q diverges", q)
		}
	}
}

// TestBuildStreamProgress: the Progress callback fires for every stage with
// monotonic done counts.
func TestBuildStreamProgress(t *testing.T) {
	w := smallWorld()
	var calls atomic.Int64
	stages := make(map[string]bool)
	var mu sync.Mutex
	b := streamBuilder(w, nil)
	b.Cfg.Progress = func(stage string, done, total int) {
		calls.Add(1)
		mu.Lock()
		stages[stage] = true
		mu.Unlock()
		if done < 0 || total < 0 {
			t.Errorf("negative progress: %s %d/%d", stage, done, total)
		}
	}
	woc, _, err := b.BuildStream(worldSource{w})
	if err != nil {
		t.Fatal(err)
	}
	defer woc.Close()
	if calls.Load() == 0 {
		t.Fatal("Progress never called")
	}
	for _, s := range []string{"ingest", "extract", "resolve", "index"} {
		if !stages[s] {
			t.Errorf("no progress reported for stage %s", s)
		}
	}
}
