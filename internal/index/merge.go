package index

import "container/heap"

// k-way merge of per-shard ranked result lists. Each shard returns its
// results already ordered by (score desc, ID asc); doc IDs are unique
// across shards, so that ordering is a total order and the merge is
// deterministic regardless of shard count.

// mergeHeap tracks the head of each non-empty list; the heap root is the
// globally next result.
type mergeHeap struct {
	lists [][]Result
	pos   []int // cursor into each list
	order []int // heap of list indices
}

func (h *mergeHeap) Len() int { return len(h.order) }

func (h *mergeHeap) Less(i, j int) bool {
	a := h.lists[h.order[i]][h.pos[h.order[i]]]
	b := h.lists[h.order[j]][h.pos[h.order[j]]]
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.ID < b.ID
}

func (h *mergeHeap) Swap(i, j int) { h.order[i], h.order[j] = h.order[j], h.order[i] }

func (h *mergeHeap) Push(x any) { h.order = append(h.order, x.(int)) }

func (h *mergeHeap) Pop() any {
	x := h.order[len(h.order)-1]
	h.order = h.order[:len(h.order)-1]
	return x
}

// mergeRanked merges per-shard ranked lists into one (score desc, ID asc)
// list of up to k results; k <= 0 means unlimited. Nil-ness mirrors the
// unsharded index: nil only when every input list is nil (each shard applies
// the single index's nil rules locally), else a non-nil slice — so callers
// see exactly the shapes Index.Search would have produced.
func mergeRanked(lists [][]Result, k int) []Result {
	h := &mergeHeap{lists: lists, pos: make([]int, len(lists))}
	total, allNil := 0, true
	for i, l := range lists {
		total += len(l)
		if l != nil {
			allNil = false
		}
		if len(l) > 0 {
			h.order = append(h.order, i)
		}
	}
	if total == 0 {
		if allNil {
			return nil
		}
		return []Result{}
	}
	heap.Init(h)
	if k <= 0 || k > total {
		k = total
	}
	out := make([]Result, 0, k)
	for len(out) < k && h.Len() > 0 {
		li := h.order[0]
		out = append(out, h.lists[li][h.pos[li]])
		h.pos[li]++
		if h.pos[li] == len(h.lists[li]) {
			heap.Pop(h)
		} else {
			heap.Fix(h, 0)
		}
	}
	return out
}
