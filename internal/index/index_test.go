package index

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

func doc(id, title, body string) Document {
	return Document{ID: id, Fields: []Field{
		{Name: "title", Text: title, Boost: 2},
		{Name: "body", Text: body},
	}}
}

func buildSmall() *Index {
	ix := New()
	ix.Add(doc("d1", "Gochi Fusion Tapas", "japanese izakaya in cupertino with small plates and sake"))
	ix.Add(doc("d2", "Birk's Steakhouse", "american steak house in santa clara near zipcode 95054"))
	ix.Add(doc("d3", "Pizza My Heart", "pizza by the slice in cupertino and san jose"))
	ix.Add(doc("d4", "Cupertino city guide", "restaurants parks and schools of cupertino california"))
	return ix
}

func TestSearchRanking(t *testing.T) {
	ix := buildSmall()
	res := ix.Search("gochi cupertino", 10)
	if len(res) == 0 || res[0].ID != "d1" {
		t.Fatalf("results = %+v, want d1 first", res)
	}
	for i := 1; i < len(res); i++ {
		if res[i].Score > res[i-1].Score {
			t.Errorf("results not sorted: %+v", res)
		}
	}
}

func TestTitleBoost(t *testing.T) {
	ix := New()
	ix.Add(doc("title-hit", "salsa festival", "unrelated text about nothing"))
	ix.Add(doc("body-hit", "unrelated heading", "salsa appears in the body text here"))
	res := ix.Search("salsa", 2)
	if len(res) != 2 || res[0].ID != "title-hit" {
		t.Fatalf("res = %+v, want title-hit first", res)
	}
}

func TestSearchTopK(t *testing.T) {
	ix := buildSmall()
	if res := ix.Search("cupertino", 2); len(res) != 2 {
		t.Errorf("k=2 gave %d results", len(res))
	}
	if res := ix.Search("cupertino", 0); len(res) != 3 {
		t.Errorf("k=0 (unlimited) gave %d results", len(res))
	}
}

func TestSearchEmptyAndMissing(t *testing.T) {
	ix := buildSmall()
	if res := ix.Search("", 5); res != nil {
		t.Errorf("empty query gave %v", res)
	}
	if res := ix.Search("zzzzqqq", 5); len(res) != 0 {
		t.Errorf("missing term gave %v", res)
	}
	if res := New().Search("anything", 5); res != nil {
		t.Errorf("empty index gave %v", res)
	}
}

func TestSearchStems(t *testing.T) {
	ix := buildSmall()
	// "restaurant" should match "restaurants" in d4 via stemming.
	res := ix.Search("restaurant", 5)
	if len(res) != 1 || res[0].ID != "d4" {
		t.Fatalf("res = %+v", res)
	}
}

func TestSearchAll(t *testing.T) {
	ix := buildSmall()
	if got := ix.SearchAll("pizza cupertino"); !reflect.DeepEqual(got, []string{"d3"}) {
		t.Errorf("AND = %v", got)
	}
	if got := ix.SearchAll("pizza steak"); got != nil {
		t.Errorf("disjoint AND = %v", got)
	}
	if got := ix.SearchAll(""); got != nil {
		t.Errorf("empty AND = %v", got)
	}
}

func TestSearchAny(t *testing.T) {
	ix := buildSmall()
	got := ix.SearchAny("pizza steak")
	if !reflect.DeepEqual(got, []string{"d2", "d3"}) {
		t.Errorf("OR = %v", got)
	}
}

func TestSearchPhrase(t *testing.T) {
	ix := buildSmall()
	if got := ix.SearchPhrase("small plates"); !reflect.DeepEqual(got, []string{"d1"}) {
		t.Errorf("phrase = %v", got)
	}
	// Tokens present but not adjacent.
	if got := ix.SearchPhrase("plates small"); len(got) != 0 {
		t.Errorf("reversed phrase = %v", got)
	}
	if got := ix.SearchPhrase("cupertino"); len(got) != 3 {
		t.Errorf("single-token phrase = %v", got)
	}
}

func TestPhraseDoesNotCrossFields(t *testing.T) {
	ix := New()
	ix.Add(Document{ID: "x", Fields: []Field{
		{Name: "title", Text: "alpha"},
		{Name: "body", Text: "beta"},
	}})
	if got := ix.SearchPhrase("alpha beta"); len(got) != 0 {
		t.Errorf("phrase crossed field boundary: %v", got)
	}
}

func TestReAddReplacesDocument(t *testing.T) {
	ix := New()
	ix.Add(doc("d1", "old title words", "old body"))
	ix.Add(doc("d1", "new fresh heading", "new body content"))
	if got := ix.SearchAll("old"); len(got) != 0 {
		t.Errorf("old content still findable: %v", got)
	}
	if got := ix.SearchAll("fresh"); !reflect.DeepEqual(got, []string{"d1"}) {
		t.Errorf("new content not findable: %v", got)
	}
	if ix.Len() != 1 {
		t.Errorf("Len = %d", ix.Len())
	}
}

func TestDFAndTerms(t *testing.T) {
	ix := buildSmall()
	if df := ix.DF("cupertino"); df != 3 {
		t.Errorf("DF(cupertino) = %d", df)
	}
	if df := ix.DF(""); df != 0 {
		t.Errorf("DF(empty) = %d", df)
	}
	if ix.Terms() == 0 {
		t.Error("Terms = 0")
	}
	if !ix.Has("d1") || ix.Has("nope") {
		t.Error("Has wrong")
	}
}

func TestIDFOrdering(t *testing.T) {
	// A rarer term must contribute more: query for it should rank the
	// doc containing it above docs sharing only a common term.
	ix := New()
	for i := 0; i < 10; i++ {
		ix.Add(doc(fmt.Sprintf("common%d", i), "filler", "cupertino dining spot"))
	}
	ix.Add(doc("rare", "filler", "cupertino izakaya"))
	res := ix.Search("izakaya cupertino", 3)
	if len(res) == 0 || res[0].ID != "rare" {
		t.Fatalf("res = %+v", res)
	}
}

func TestConcurrentReadWrite(t *testing.T) {
	ix := New()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ix.Add(doc(fmt.Sprintf("w%d-%d", w, i), "title text", "body word stream"))
				ix.Search("title", 3)
				ix.SearchAll("body word")
			}
		}(w)
	}
	wg.Wait()
	if ix.Len() != 200 {
		t.Errorf("Len = %d, want 200", ix.Len())
	}
}

func TestSearchNeverPanicsProperty(t *testing.T) {
	ix := buildSmall()
	f := func(q string) bool {
		_ = ix.Search(q, 5)
		_ = ix.SearchAll(q)
		_ = ix.SearchAny(q)
		_ = ix.SearchPhrase(q)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	ix := New()
	ix.Add(doc("b", "same words here", ""))
	ix.Add(doc("a", "same words here", ""))
	res := ix.Search("same words", 2)
	if len(res) != 2 || res[0].ID != "a" {
		t.Errorf("tie-break not by ID: %+v", res)
	}
}

func TestRemove(t *testing.T) {
	ix := buildSmall()
	ix.Remove("d1")
	if ix.Has("d1") {
		t.Error("removed doc still Has")
	}
	if ix.Len() != 3 {
		t.Errorf("Len = %d, want 3", ix.Len())
	}
	for _, res := range ix.Search("gochi cupertino", 10) {
		if res.ID == "d1" {
			t.Error("removed doc still retrievable")
		}
	}
	if got := ix.SearchAll("gochi"); len(got) != 0 {
		t.Errorf("boolean retrieval returned removed doc: %v", got)
	}
	if got := ix.SearchPhrase("small plates"); len(got) != 0 {
		t.Errorf("phrase retrieval returned removed doc: %v", got)
	}
	// Re-adding revives the document.
	ix.Add(doc("d1", "Gochi Fusion Tapas", "back in business in cupertino"))
	if !ix.Has("d1") || ix.Len() != 4 {
		t.Errorf("revival failed: has=%v len=%d", ix.Has("d1"), ix.Len())
	}
	if got := ix.SearchAll("gochi"); len(got) != 1 {
		t.Errorf("revived doc not retrievable: %v", got)
	}
	// Removing an unknown ID is a no-op.
	ix.Remove("never-existed")
	if ix.Len() != 4 {
		t.Error("no-op remove changed Len")
	}
}

func TestRemoveAffectsDF(t *testing.T) {
	ix := buildSmall()
	before := ix.DF("cupertino")
	ix.Remove("d3")
	if after := ix.DF("cupertino"); after != before-1 {
		t.Errorf("DF %d -> %d, want decrement", before, after)
	}
}

// TestAddPreparedMatchesAdd is the parallel-build contract: preparing
// documents concurrently and merging them in the same order must produce an
// index indistinguishable from sequential Add — same stats, same rankings.
func TestAddPreparedMatchesAdd(t *testing.T) {
	docs := []Document{
		doc("d1", "Gochi Fusion Tapas", "japanese izakaya in cupertino with small plates and sake"),
		doc("d2", "Birk's Steakhouse", "american steak house in santa clara near zipcode 95054"),
		doc("d3", "Pizza My Heart", "pizza by the slice in cupertino and san jose"),
		doc("d4", "Cupertino city guide", "restaurants parks and schools of cupertino california"),
	}
	seq := New()
	for _, d := range docs {
		seq.Add(d)
	}

	par := New()
	prepared := make([]PreparedDoc, len(docs))
	var wg sync.WaitGroup
	for i := range docs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			prepared[i] = Prepare(docs[i])
		}(i)
	}
	wg.Wait()
	for _, pd := range prepared {
		par.AddPrepared(pd)
	}

	if seq.Len() != par.Len() || seq.Terms() != par.Terms() {
		t.Fatalf("stats diverge: %d/%d docs, %d/%d terms",
			seq.Len(), par.Len(), seq.Terms(), par.Terms())
	}
	for _, q := range []string{"cupertino", "gochi cupertino", "pizza slice", "steak 95054"} {
		if !reflect.DeepEqual(seq.Search(q, 10), par.Search(q, 10)) {
			t.Errorf("Search(%q) diverges between Add and AddPrepared", q)
		}
		if !reflect.DeepEqual(seq.SearchPhrase(q), par.SearchPhrase(q)) {
			t.Errorf("SearchPhrase(%q) diverges between Add and AddPrepared", q)
		}
	}
}
