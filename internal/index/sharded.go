package index

import (
	"sort"
	"sync"

	"conceptweb/internal/shard"
)

// Sharded partitions an inverted index into n independent Index shards,
// routed by hash(doc ID) % n — the same routing function the record store
// uses. Writes touch only the owning shard's lock, so parallel builders
// index into disjoint partitions instead of queueing on one mutex; ranked
// queries scatter to all shards with globally summed corpus statistics and
// gather with a k-way merge, producing scores identical to a single Index
// holding the same documents. A single-shard Sharded is a thin forwarding
// wrapper, so the unsharded configuration costs one pointer indirection.
type Sharded struct {
	shards []*Index
}

// NewSharded returns an empty sharded index with n partitions (n < 1 is
// treated as 1). BM25 parameters are per shard and default to the standard
// k1=1.2, b=0.75.
func NewSharded(n int) *Sharded {
	if n < 1 {
		n = 1
	}
	s := &Sharded{shards: make([]*Index, n)}
	for i := range s.shards {
		s.shards[i] = New()
	}
	return s
}

// NumShards returns the number of partitions.
func (s *Sharded) NumShards() int { return len(s.shards) }

func (s *Sharded) shardFor(id string) *Index {
	return s.shards[shard.Of(id, len(s.shards))]
}

// Add indexes doc in its shard. See Index.Add for re-add semantics.
func (s *Sharded) Add(doc Document) {
	s.shardFor(doc.ID).Add(doc)
}

// AddPrepared indexes a document analyzed earlier with Prepare.
func (s *Sharded) AddPrepared(doc PreparedDoc) {
	s.shardFor(doc.ID).AddPrepared(doc)
}

// AddPreparedBatch indexes docs with up to workers concurrent writers, one
// per shard. Within each shard, documents are added in docs order, so the
// internal doc numbering of every shard — and therefore every score and
// every result — is identical for any (workers × shards) combination.
// Documents with an empty ID are skipped, matching the build pipeline's
// convention for "no document here".
func (s *Sharded) AddPreparedBatch(docs []PreparedDoc, workers int) {
	if workers <= 1 || len(s.shards) == 1 {
		for _, d := range docs {
			if d.ID == "" {
				continue
			}
			s.AddPrepared(d)
		}
		return
	}
	perShard := make([][]PreparedDoc, len(s.shards))
	for _, d := range docs {
		if d.ID == "" {
			continue
		}
		si := shard.Of(d.ID, len(s.shards))
		perShard[si] = append(perShard[si], d)
	}
	var wg sync.WaitGroup
	for si, batch := range perShard {
		if len(batch) == 0 {
			continue
		}
		wg.Add(1)
		go func(ix *Index, batch []PreparedDoc) {
			defer wg.Done()
			for _, d := range batch {
				ix.AddPrepared(d)
			}
		}(s.shards[si], batch)
	}
	wg.Wait()
}

// Remove drops the document from retrieval; see Index.Remove.
func (s *Sharded) Remove(id string) {
	s.shardFor(id).Remove(id)
}

// Has reports whether a live document with the given ID is indexed.
func (s *Sharded) Has(id string) bool {
	return s.shardFor(id).Has(id)
}

// Len returns the number of live documents across all shards.
func (s *Sharded) Len() int {
	n := 0
	for _, ix := range s.shards {
		n += ix.Len()
	}
	return n
}

// NDocs returns the live document count across all shards; alias of Len,
// named for the stats contract.
func (s *Sharded) NDocs() int { return s.Len() }

// Tombstones returns the number of removed-but-unreclaimed doc slots
// across all shards.
func (s *Sharded) Tombstones() int {
	n := 0
	for _, ix := range s.shards {
		n += ix.Tombstones()
	}
	return n
}

// CompactTombstones reclaims tombstoned doc slots in every shard.
func (s *Sharded) CompactTombstones() {
	for _, ix := range s.shards {
		ix.CompactTombstones()
	}
}

// DF returns the document frequency of the query term across all shards.
func (s *Sharded) DF(term string) int {
	n := 0
	for _, ix := range s.shards {
		n += ix.DF(term)
	}
	return n
}

// Terms returns the number of distinct terms across all shards.
func (s *Sharded) Terms() int {
	if len(s.shards) == 1 {
		return s.shards[0].Terms()
	}
	seen := make(map[string]bool)
	for _, ix := range s.shards {
		ix.mu.RLock()
		for t := range ix.postings {
			seen[t] = true
		}
		ix.mu.RUnlock()
	}
	return len(seen)
}

// Postings returns the total posting-entry count across all shards.
func (s *Sharded) Postings() int {
	n := 0
	for _, ix := range s.shards {
		n += ix.Postings()
	}
	return n
}

// ShardPostings returns each shard's posting-entry count, by shard index;
// the observability layer exposes these as index.shard.<k>.postings gauges.
func (s *Sharded) ShardPostings() []int {
	out := make([]int, len(s.shards))
	for i, ix := range s.shards {
		out[i] = ix.Postings()
	}
	return out
}

// ShardEpochs returns each shard's mutation epoch, by shard index. Serving
// layers fold the vector into one composed cache-invalidation epoch.
func (s *Sharded) ShardEpochs() []uint64 {
	out := make([]uint64, len(s.shards))
	for i, ix := range s.shards {
		out[i] = ix.Epoch()
	}
	return out
}

// each runs fn concurrently for every shard and waits.
func (s *Sharded) each(fn func(i int, ix *Index)) {
	var wg sync.WaitGroup
	for i, ix := range s.shards {
		wg.Add(1)
		go func(i int, ix *Index) {
			defer wg.Done()
			fn(i, ix)
		}(i, ix)
	}
	wg.Wait()
}

// Search runs a BM25F-ranked query with scatter-gather: every shard first
// reports its corpus statistics (doc count, term document frequencies,
// field length totals — all integers), the sums are handed back to each
// shard for scoring, and the per-shard rankings are k-way merged. Because
// the summed statistics equal what one big index would hold and shard
// scoring reuses the exact single-index arithmetic, scores are identical
// to the unsharded path bit for bit.
func (s *Sharded) Search(query string, k int) []Result {
	toks := tokenize(query)
	if len(toks) == 0 {
		return nil
	}
	if len(s.shards) == 1 {
		ix := s.shards[0]
		ix.mu.RLock()
		defer ix.mu.RUnlock()
		if len(ix.extIDs) == 0 {
			return nil
		}
		return ix.searchLocked(toks, ix.statsLocked(toks), k)
	}
	parts := make([]localStats, len(s.shards))
	s.each(func(i int, ix *Index) { parts[i] = ix.searchStats(toks) })
	gs := mergeStats(parts)
	if gs.ndocs == 0 {
		return nil
	}
	lists := make([][]Result, len(s.shards))
	s.each(func(i int, ix *Index) { lists[i] = ix.searchWithStats(toks, gs, k) })
	return mergeRanked(lists, k)
}

// mergeIDs merges per-shard sorted ID lists; shards are disjoint, so
// concatenate-and-sort reproduces a single index's output. Nil-ness mirrors
// the unsharded index: nil only when every shard returned nil (each shard
// applies Index's own nil rules locally), else non-nil even when empty.
func mergeIDs(lists [][]string) []string {
	total, allNil := 0, true
	for _, l := range lists {
		total += len(l)
		if l != nil {
			allNil = false
		}
	}
	if total == 0 {
		if allNil {
			return nil
		}
		return []string{}
	}
	out := make([]string, 0, total)
	for _, l := range lists {
		out = append(out, l...)
	}
	sort.Strings(out)
	return out
}

// SearchAll returns the IDs of documents containing all query terms,
// sorted by ID.
func (s *Sharded) SearchAll(query string) []string {
	if len(s.shards) == 1 {
		return s.shards[0].SearchAll(query)
	}
	lists := make([][]string, len(s.shards))
	s.each(func(i int, ix *Index) { lists[i] = ix.SearchAll(query) })
	return mergeIDs(lists)
}

// SearchAny returns the IDs of documents containing at least one query
// term, sorted by ID.
func (s *Sharded) SearchAny(query string) []string {
	if len(s.shards) == 1 {
		return s.shards[0].SearchAny(query)
	}
	lists := make([][]string, len(s.shards))
	s.each(func(i int, ix *Index) { lists[i] = ix.SearchAny(query) })
	return mergeIDs(lists)
}

// SearchPhrase returns the IDs of documents containing the query tokens as
// a contiguous phrase within a single field, sorted by ID.
func (s *Sharded) SearchPhrase(phrase string) []string {
	if len(s.shards) == 1 {
		return s.shards[0].SearchPhrase(phrase)
	}
	lists := make([][]string, len(s.shards))
	s.each(func(i int, ix *Index) { lists[i] = ix.SearchPhrase(phrase) })
	return mergeIDs(lists)
}
