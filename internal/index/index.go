// Package index implements an in-memory inverted index with BM25F-style
// ranked retrieval, boolean retrieval, and phrase matching.
//
// The paper's premise (§2.2) is that a web of concepts should remain
// "amenable to leveraging existing search engine infrastructure" — i.e. an
// inverted index. This package is that infrastructure: it indexes both
// plain documents (web pages) and flattened lrecs, and the search layer
// (internal/search) builds concept-aware ranking on top of it.
package index

import (
	"errors"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"conceptweb/internal/textproc"
)

// ErrNotFound is returned when a requested document is not in the index.
var ErrNotFound = errors.New("index: document not found")

// Field names a document section with its own length statistics and boost.
type Field struct {
	Name  string
	Text  string
	Boost float64 // defaults to 1 if <= 0
}

// Document is the unit of indexing.
type Document struct {
	ID     string
	Fields []Field
}

// posting records the occurrences of a term in one document field.
type posting struct {
	doc   int // internal doc number
	field int // internal field number
	freq  int
	pos   []int // token positions within the field, for phrase queries
}

// fieldStats tracks per-field length statistics for BM25F normalization.
type fieldStats struct {
	name     string
	totalLen int
	boost    float64
}

// Index is an inverted index. All methods are safe for concurrent use; a
// single RWMutex suffices because the workloads here are read-heavy after a
// bulk build, matching the paper's build-then-serve lifecycle.
type Index struct {
	mu       sync.RWMutex
	postings map[string][]posting
	extIDs   []string       // doc number -> external ID
	byExt    map[string]int // external ID -> doc number
	docLens  [][]int        // doc number -> field number -> token count
	deleted  map[int]bool   // doc numbers removed from retrieval
	fields   []fieldStats
	fieldNum map[string]int
	// BM25 parameters.
	K1 float64
	B  float64

	// epoch counts visible mutations (adds and live-doc removals); the
	// sharded wrapper folds per-shard epochs into one cache-invalidation
	// signal for the serving layer.
	epoch atomic.Uint64
}

// New returns an empty index with standard BM25 parameters (k1=1.2, b=0.75).
func New() *Index {
	return &Index{
		postings: make(map[string][]posting),
		byExt:    make(map[string]int),
		deleted:  make(map[int]bool),
		fieldNum: make(map[string]int),
		K1:       1.2,
		B:        0.75,
	}
}

// tokenize produces the index token stream: lowercased, stemmed, stopwords
// retained (they are cheap and phrase queries may need them).
func tokenize(s string) []string {
	return textproc.StemInPlace(textproc.Tokenize(s))
}

// PreparedField is one analyzed field of a PreparedDoc.
type PreparedField struct {
	Name  string
	Boost float64
	Toks  []string
}

// PreparedDoc is a document analyzed outside the index lock: Prepare runs
// tokenization (the expensive part of Add) and AddPrepared merges the
// result. Parallel builders analyze documents across workers and call
// AddPrepared in sorted doc-ID order so internal doc and field numbering
// stays deterministic regardless of worker count.
type PreparedDoc struct {
	ID     string
	Fields []PreparedField
}

// Prepare analyzes doc for a later AddPrepared. It touches no index state
// and is safe to call from any goroutine.
func Prepare(doc Document) PreparedDoc {
	pd := PreparedDoc{ID: doc.ID, Fields: make([]PreparedField, 0, len(doc.Fields))}
	for _, f := range doc.Fields {
		boost := f.Boost
		if boost <= 0 {
			boost = 1
		}
		pd.Fields = append(pd.Fields, PreparedField{
			Name: f.Name, Boost: boost, Toks: tokenize(f.Text),
		})
	}
	return pd
}

// Add indexes doc. Re-adding an existing ID replaces the old version
// logically: the old postings remain but are remapped away, so callers that
// churn heavily should rebuild; the maintenance layer (§7.3) tracks changes
// at a higher level. Add is Prepare + AddPrepared.
func (ix *Index) Add(doc Document) {
	ix.AddPrepared(Prepare(doc))
}

// AddPrepared indexes a document analyzed earlier with Prepare, holding the
// lock only for the merge.
func (ix *Index) AddPrepared(doc PreparedDoc) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	n, exists := ix.byExt[doc.ID]
	if exists {
		delete(ix.deleted, n)
	}
	if !exists {
		n = len(ix.extIDs)
		ix.extIDs = append(ix.extIDs, doc.ID)
		ix.byExt[doc.ID] = n
		ix.docLens = append(ix.docLens, nil)
	} else {
		// Remove the doc's previous postings.
		for t, ps := range ix.postings {
			kept := ps[:0]
			for _, p := range ps {
				if p.doc != n {
					kept = append(kept, p)
				}
			}
			if len(kept) == 0 {
				delete(ix.postings, t)
			} else {
				ix.postings[t] = kept
			}
		}
		for f, l := range ix.docLens[n] {
			ix.fields[f].totalLen -= l
		}
		ix.docLens[n] = nil
	}
	for _, f := range doc.Fields {
		fn, ok := ix.fieldNum[f.Name]
		if !ok {
			fn = len(ix.fields)
			ix.fieldNum[f.Name] = fn
			ix.fields = append(ix.fields, fieldStats{name: f.Name, boost: f.Boost})
		}
		toks := f.Toks
		for len(ix.docLens[n]) <= fn {
			ix.docLens[n] = append(ix.docLens[n], 0)
		}
		ix.docLens[n][fn] += len(toks)
		ix.fields[fn].totalLen += len(toks)
		occ := make(map[string][]int)
		for i, t := range toks {
			occ[t] = append(occ[t], i)
		}
		for t, positions := range occ {
			ix.postings[t] = append(ix.postings[t], posting{
				doc: n, field: fn, freq: len(positions), pos: positions,
			})
		}
	}
	ix.epoch.Add(1)
}

// Epoch returns the index's mutation counter; it advances on every add and
// on every removal of a live document.
func (ix *Index) Epoch() uint64 {
	return ix.epoch.Load()
}

// Postings returns the total number of posting entries held, a proxy for
// the index's memory footprint used by the per-shard gauges.
func (ix *Index) Postings() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	n := 0
	for _, ps := range ix.postings {
		n += len(ps)
	}
	return n
}

// Len returns the number of live (non-removed) documents.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.extIDs) - len(ix.deleted)
}

// NDocs returns the live document count that BM25 statistics are computed
// over — the same value Len reports, named for the stats contract.
func (ix *Index) NDocs() int {
	return ix.Len()
}

// Has reports whether a live document with the given external ID is indexed.
func (ix *Index) Has(id string) bool {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	n, ok := ix.byExt[id]
	return ok && !ix.deleted[n]
}

// Remove drops the document from retrieval (§7.3: pages disappear) and
// shrinks the corpus statistics immediately: the doc's field lengths leave
// the per-field totals and it stops counting toward ndocs, so BM25 scores
// after a removal are bit-identical to an index that never held the doc.
// The doc-number slot itself is tombstoned and its postings linger until
// enough tombstones accumulate to trigger compaction (see
// CompactTombstones); queries skip them meanwhile. Removing an unknown ID
// is a no-op; re-Adding the ID revives it.
func (ix *Index) Remove(id string) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if n, ok := ix.byExt[id]; ok && !ix.deleted[n] {
		for f, l := range ix.docLens[n] {
			ix.fields[f].totalLen -= l
		}
		// Nil the lengths so a later AddPrepared revival doesn't subtract
		// them a second time.
		ix.docLens[n] = nil
		ix.deleted[n] = true
		ix.epoch.Add(1)
		ix.maybeCompactLocked()
	}
}

// Tombstones returns the number of removed doc slots not yet reclaimed by
// compaction.
func (ix *Index) Tombstones() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.deleted)
}

// compactMinTombstones and compactFraction gate automatic compaction: it
// runs once at least 64 tombstones have accumulated AND they make up at
// least 1/8 of all doc slots. Small indexes under churn compact eagerly
// enough, large ones amortize the O(postings) sweep.
const (
	compactMinTombstones = 64
	compactFraction      = 8
)

func (ix *Index) maybeCompactLocked() {
	if len(ix.deleted) >= compactMinTombstones &&
		len(ix.deleted)*compactFraction >= len(ix.extIDs) {
		ix.compactLocked()
	}
}

// CompactTombstones reclaims all tombstoned doc slots immediately:
// postings of removed docs are physically deleted and live docs are
// renumbered densely. Renumbering preserves the relative order of live
// docs and of each doc's postings, so scores stay bit-identical; no epoch
// bump because retrieval output is unchanged.
func (ix *Index) CompactTombstones() {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if len(ix.deleted) > 0 {
		ix.compactLocked()
	}
}

func (ix *Index) compactLocked() {
	// Dense renumbering in old doc-number order keeps posting lists and
	// extIDs in their original relative order.
	renum := make([]int, len(ix.extIDs))
	live := 0
	for n := range ix.extIDs {
		if ix.deleted[n] {
			renum[n] = -1
			continue
		}
		renum[n] = live
		ix.extIDs[live] = ix.extIDs[n]
		ix.docLens[live] = ix.docLens[n]
		live++
	}
	ix.extIDs = ix.extIDs[:live]
	ix.docLens = ix.docLens[:live]
	ix.byExt = make(map[string]int, live)
	for n, id := range ix.extIDs {
		ix.byExt[id] = n
	}
	for t, ps := range ix.postings {
		kept := ps[:0]
		for _, p := range ps {
			if m := renum[p.doc]; m >= 0 {
				p.doc = m
				kept = append(kept, p)
			}
		}
		if len(kept) == 0 {
			delete(ix.postings, t)
		} else {
			ix.postings[t] = kept
		}
	}
	ix.deleted = make(map[int]bool)
}

// DF returns the document frequency of the query term (after normalization).
func (ix *Index) DF(term string) int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	toks := tokenize(term)
	if len(toks) == 0 {
		return 0
	}
	return ix.df(toks[0])
}

func (ix *Index) df(t string) int {
	seen := make(map[int]bool)
	for _, p := range ix.postings[t] {
		if !ix.deleted[p.doc] {
			seen[p.doc] = true
		}
	}
	return len(seen)
}

// Result is one ranked retrieval hit.
type Result struct {
	ID    string
	Score float64
}

// localStats carries the corpus-level statistics BM25F scoring depends on:
// doc count, per-term document frequency, and per-field total length. All
// fields are integers so stats gathered per shard and summed convert to
// float64 at exactly the same points as the unsharded path — the foundation
// of the "identical scores at any shard count" guarantee.
type localStats struct {
	ndocs    int
	df       map[string]int // query term -> live docs containing it
	fieldLen map[string]int // field name -> total token count
}

// statsLocked gathers this index's contribution to the query's corpus
// statistics. Caller holds at least an RLock.
func (ix *Index) statsLocked(toks []string) localStats {
	gs := localStats{
		ndocs:    len(ix.extIDs) - len(ix.deleted),
		df:       make(map[string]int, len(toks)),
		fieldLen: make(map[string]int, len(ix.fields)),
	}
	for _, t := range toks {
		if _, ok := gs.df[t]; !ok {
			gs.df[t] = ix.df(t)
		}
	}
	for _, fs := range ix.fields {
		gs.fieldLen[fs.name] += fs.totalLen
	}
	return gs
}

// searchStats is statsLocked behind the lock, for the sharded wrapper.
func (ix *Index) searchStats(toks []string) localStats {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.statsLocked(toks)
}

// mergeStats sums shard-local statistics into global ones. Every doc lives
// in exactly one shard, so plain addition reproduces the unsharded counts.
func mergeStats(parts []localStats) localStats {
	gs := localStats{df: make(map[string]int), fieldLen: make(map[string]int)}
	for _, p := range parts {
		gs.ndocs += p.ndocs
		for t, n := range p.df {
			gs.df[t] += n
		}
		for f, n := range p.fieldLen {
			gs.fieldLen[f] += n
		}
	}
	return gs
}

// searchLocked scores this index's documents against toks using the given
// corpus statistics — which may span more shards than this one — and
// returns up to k results. Caller holds at least an RLock. The arithmetic
// is the original single-index BM25F loop with the document count, term
// document frequencies, and field totals read from gs instead of local
// state, so with gs = statsLocked the result is bitwise-identical to the
// historical Search.
func (ix *Index) searchLocked(toks []string, gs localStats, k int) []Result {
	if gs.ndocs == 0 || len(ix.extIDs) == 0 {
		return nil
	}
	ndocs := float64(gs.ndocs)
	scores := make(map[int]float64)
	for _, t := range toks {
		ps := ix.postings[t]
		if len(ps) == 0 {
			continue
		}
		df := float64(gs.df[t])
		idf := math.Log(1 + (ndocs-df+0.5)/(df+0.5))
		// Accumulate boosted, length-normalized term frequency per doc.
		wtf := make(map[int]float64)
		for _, p := range ps {
			if ix.deleted[p.doc] {
				continue
			}
			fs := ix.fields[p.field]
			avg := gs.fieldLen[fs.name]
			if avg == 0 {
				continue
			}
			avgLen := float64(avg) / ndocs
			dl := 0.0
			if p.field < len(ix.docLens[p.doc]) {
				dl = float64(ix.docLens[p.doc][p.field])
			}
			norm := 1 - ix.B + ix.B*dl/avgLen
			wtf[p.doc] += fs.boost * float64(p.freq) / norm
		}
		for d, tf := range wtf {
			scores[d] += idf * tf / (ix.K1 + tf) * (ix.K1 + 1)
		}
	}
	return ix.topK(scores, k)
}

// searchWithStats is searchLocked behind the lock, for the sharded wrapper.
func (ix *Index) searchWithStats(toks []string, gs localStats, k int) []Result {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.searchLocked(toks, gs, k)
}

// Search runs a BM25F-ranked query and returns up to k results in
// descending score order (ties broken by ID for determinism).
func (ix *Index) Search(query string, k int) []Result {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	toks := tokenize(query)
	if len(toks) == 0 || len(ix.extIDs) == 0 {
		return nil
	}
	return ix.searchLocked(toks, ix.statsLocked(toks), k)
}

func (ix *Index) topK(scores map[int]float64, k int) []Result {
	out := make([]Result, 0, len(scores))
	for d, s := range scores {
		out = append(out, Result{ID: ix.extIDs[d], Score: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// SearchAll returns the IDs of documents containing all query terms
// (conjunctive boolean retrieval), unranked, sorted by ID.
func (ix *Index) SearchAll(query string) []string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	toks := tokenize(query)
	if len(toks) == 0 {
		return nil
	}
	var acc map[int]bool
	for _, t := range toks {
		cur := make(map[int]bool)
		for _, p := range ix.postings[t] {
			if !ix.deleted[p.doc] {
				cur[p.doc] = true
			}
		}
		if acc == nil {
			acc = cur
			continue
		}
		for d := range acc {
			if !cur[d] {
				delete(acc, d)
			}
		}
		if len(acc) == 0 {
			return nil
		}
	}
	out := make([]string, 0, len(acc))
	for d := range acc {
		out = append(out, ix.extIDs[d])
	}
	sort.Strings(out)
	return out
}

// SearchAny returns the IDs of documents containing at least one query term,
// sorted by ID.
func (ix *Index) SearchAny(query string) []string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	acc := make(map[int]bool)
	for _, t := range tokenize(query) {
		for _, p := range ix.postings[t] {
			if !ix.deleted[p.doc] {
				acc[p.doc] = true
			}
		}
	}
	out := make([]string, 0, len(acc))
	for d := range acc {
		out = append(out, ix.extIDs[d])
	}
	sort.Strings(out)
	return out
}

// SearchPhrase returns the IDs of documents containing the query tokens as a
// contiguous phrase within a single field, sorted by ID.
func (ix *Index) SearchPhrase(phrase string) []string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	toks := tokenize(phrase)
	if len(toks) == 0 {
		return nil
	}
	if len(toks) == 1 {
		return ix.searchAnyLocked(toks)
	}
	// candidate (doc, field) -> positions of first token
	type slot struct{ doc, field int }
	first := make(map[slot][]int)
	for _, p := range ix.postings[toks[0]] {
		if !ix.deleted[p.doc] {
			first[slot{p.doc, p.field}] = p.pos
		}
	}
	matches := make(map[int]bool)
	for s, positions := range first {
		for _, basePos := range positions {
			ok := true
			for i := 1; i < len(toks); i++ {
				if !hasPositionAt(ix.postings[toks[i]], s.doc, s.field, basePos+i) {
					ok = false
					break
				}
			}
			if ok {
				matches[s.doc] = true
				break
			}
		}
	}
	out := make([]string, 0, len(matches))
	for d := range matches {
		out = append(out, ix.extIDs[d])
	}
	sort.Strings(out)
	return out
}

func (ix *Index) searchAnyLocked(toks []string) []string {
	acc := make(map[int]bool)
	for _, t := range toks {
		for _, p := range ix.postings[t] {
			if !ix.deleted[p.doc] {
				acc[p.doc] = true
			}
		}
	}
	out := make([]string, 0, len(acc))
	for d := range acc {
		out = append(out, ix.extIDs[d])
	}
	sort.Strings(out)
	return out
}

func hasPositionAt(ps []posting, doc, field, pos int) bool {
	for _, p := range ps {
		if p.doc != doc || p.field != field {
			continue
		}
		// pos slices are ascending; binary search.
		lo, hi := 0, len(p.pos)
		for lo < hi {
			mid := (lo + hi) / 2
			switch {
			case p.pos[mid] < pos:
				lo = mid + 1
			case p.pos[mid] > pos:
				hi = mid
			default:
				return true
			}
		}
	}
	return false
}

// Terms returns the number of distinct terms in the index.
func (ix *Index) Terms() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.postings)
}
