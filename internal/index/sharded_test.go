package index

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// corpusDocs builds a deterministic synthetic corpus large enough that BM25
// statistics differ meaningfully between documents.
func corpusDocs(n int) []Document {
	rng := rand.New(rand.NewSource(42))
	words := []string{
		"pizza", "sushi", "taco", "ramen", "curry", "cupertino", "jose",
		"menu", "review", "spicy", "noodle", "grill", "bakery", "vegan",
		"brunch", "patio", "delivery", "fusion", "izakaya", "tapas",
	}
	sentence := func(k int) string {
		s := ""
		for i := 0; i < k; i++ {
			if i > 0 {
				s += " "
			}
			s += words[rng.Intn(len(words))]
		}
		return s
	}
	docs := make([]Document, n)
	for i := range docs {
		docs[i] = Document{
			ID: fmt.Sprintf("doc-%03d", i),
			Fields: []Field{
				{Name: "title", Text: sentence(3 + rng.Intn(3)), Boost: 2},
				{Name: "body", Text: sentence(15 + rng.Intn(20))},
			},
		}
	}
	return docs
}

func buildSharded(n int, docs []Document) *Sharded {
	sx := NewSharded(n)
	for _, d := range docs {
		sx.Add(d)
	}
	return sx
}

// TestShardedSearchExactScores is the scatter-gather contract: ranked
// retrieval over a hash-partitioned index must return bit-identical scores
// and order to the unsharded index, because the BM25 statistics (df, doc
// count, field lengths) are merged globally before any shard scores.
func TestShardedSearchExactScores(t *testing.T) {
	docs := corpusDocs(120)
	flat := buildSharded(1, docs)
	queries := []string{
		"pizza cupertino", "sushi ramen spicy", "vegan brunch patio",
		"izakaya", "taco delivery menu", "review", "fusion tapas grill",
		"pizza pizza pizza", "nosuchterm", "curry noodle bakery jose",
	}
	for _, n := range []int{2, 4, 16} {
		sx := buildSharded(n, docs)
		if got := sx.NumShards(); got != n {
			t.Fatalf("NumShards = %d, want %d", got, n)
		}
		if flat.Len() != sx.Len() || flat.Terms() != sx.Terms() || flat.Postings() != sx.Postings() {
			t.Fatalf("%d shards: corpus stats diverge: %d/%d/%d docs/terms/postings vs %d/%d/%d",
				n, sx.Len(), sx.Terms(), sx.Postings(), flat.Len(), flat.Terms(), flat.Postings())
		}
		for _, q := range queries {
			for _, k := range []int{1, 5, 10, 0} {
				a, b := flat.Search(q, k), sx.Search(q, k)
				if !reflect.DeepEqual(a, b) {
					t.Errorf("%d shards: Search(%q, %d) diverges:\n flat: %+v\nshard: %+v", n, q, k, a, b)
				}
			}
			if a, b := flat.SearchAll(q), sx.SearchAll(q); !reflect.DeepEqual(a, b) {
				t.Errorf("%d shards: SearchAll(%q) diverges: %v vs %v", n, q, a, b)
			}
			if a, b := flat.SearchAny(q), sx.SearchAny(q); !reflect.DeepEqual(a, b) {
				t.Errorf("%d shards: SearchAny(%q) diverges: %v vs %v", n, q, a, b)
			}
		}
		for _, p := range []string{"pizza cupertino", "spicy noodle", "vegan"} {
			if a, b := flat.SearchPhrase(p), sx.SearchPhrase(p); !reflect.DeepEqual(a, b) {
				t.Errorf("%d shards: SearchPhrase(%q) diverges: %v vs %v", n, p, a, b)
			}
		}
	}
}

// TestShardedRemoveKeepsEquality: removals must stay routed and global
// statistics must update so sharded and flat remain score-identical.
func TestShardedRemoveKeepsEquality(t *testing.T) {
	docs := corpusDocs(60)
	flat, sx := buildSharded(1, docs), buildSharded(4, docs)
	for i := 0; i < len(docs); i += 3 {
		flat.Remove(docs[i].ID)
		sx.Remove(docs[i].ID)
	}
	if flat.Len() != sx.Len() {
		t.Fatalf("Len after removals: %d vs %d", flat.Len(), sx.Len())
	}
	for _, q := range []string{"pizza", "sushi ramen", "vegan brunch patio"} {
		if a, b := flat.Search(q, 10), sx.Search(q, 10); !reflect.DeepEqual(a, b) {
			t.Errorf("Search(%q) after removals diverges:\n flat: %+v\nshard: %+v", q, a, b)
		}
	}
	// Re-adding a removed doc must also stay equivalent.
	flat.Add(docs[0])
	sx.Add(docs[0])
	if a, b := flat.Search("pizza", 10), sx.Search("pizza", 10); !reflect.DeepEqual(a, b) {
		t.Errorf("Search after re-add diverges:\n flat: %+v\nshard: %+v", a, b)
	}
}

// TestShardedBatchWorkerInvariance: AddPreparedBatch must produce the same
// index regardless of worker count (doc numbering inside each shard follows
// input order, not goroutine scheduling).
func TestShardedBatchWorkerInvariance(t *testing.T) {
	docs := corpusDocs(80)
	prep := make([]PreparedDoc, len(docs))
	for i, d := range docs {
		prep[i] = Prepare(d)
	}
	build := func(workers int) *Sharded {
		sx := NewSharded(4)
		sx.AddPreparedBatch(prep, workers)
		return sx
	}
	a, b := build(1), build(8)
	if a.Len() != b.Len() || a.Terms() != b.Terms() || a.Postings() != b.Postings() {
		t.Fatalf("stats diverge across workers: %d/%d/%d vs %d/%d/%d",
			a.Len(), a.Terms(), a.Postings(), b.Len(), b.Terms(), b.Postings())
	}
	if !reflect.DeepEqual(a.ShardEpochs(), b.ShardEpochs()) {
		t.Errorf("shard epochs diverge: %v vs %v", a.ShardEpochs(), b.ShardEpochs())
	}
	for _, q := range []string{"pizza cupertino", "izakaya tapas", "review menu"} {
		if x, y := a.Search(q, 10), b.Search(q, 10); !reflect.DeepEqual(x, y) {
			t.Errorf("Search(%q) diverges across workers:\n w1: %+v\n w8: %+v", q, x, y)
		}
	}
}

// TestMergeRanked covers the k-way heap merge directly: global order by
// (score desc, id asc), k truncation, and empty-input handling.
func TestMergeRanked(t *testing.T) {
	lists := [][]Result{
		{{ID: "a", Score: 9}, {ID: "d", Score: 3}},
		{{ID: "b", Score: 9}, {ID: "c", Score: 5}, {ID: "f", Score: 1}},
		nil,
		{{ID: "e", Score: 3}},
	}
	got := mergeRanked(lists, 0)
	want := []Result{
		{ID: "a", Score: 9}, {ID: "b", Score: 9}, {ID: "c", Score: 5},
		{ID: "d", Score: 3}, {ID: "e", Score: 3}, {ID: "f", Score: 1},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("mergeRanked = %+v, want %+v", got, want)
	}
	if got := mergeRanked(lists, 2); !reflect.DeepEqual(got, want[:2]) {
		t.Fatalf("mergeRanked k=2 = %+v, want %+v", got, want[:2])
	}
	if got := mergeRanked(nil, 5); got != nil {
		t.Fatalf("mergeRanked(nil) = %+v, want nil", got)
	}
	if got := mergeRanked([][]Result{nil, nil}, 5); got != nil {
		t.Fatalf("mergeRanked(all-nil) = %+v, want nil", got)
	}
	// One shard answered with an empty (non-nil) list: the merge mirrors the
	// unsharded index and stays non-nil.
	if got := mergeRanked([][]Result{nil, {}}, 5); got == nil || len(got) != 0 {
		t.Fatalf("mergeRanked(nil+empty) = %#v, want non-nil empty", got)
	}
}
