package index

import (
	"reflect"
	"testing"
)

// TestRemoveShrinksStats is the PR 8 regression bar: removal must shrink
// the BM25 corpus statistics (ndocs, df, field totals) immediately, not
// just tombstone the doc, so an index that churned through removals scores
// bit-for-bit like one that never held the removed docs.
func TestRemoveShrinksStats(t *testing.T) {
	docs := corpusDocs(120)
	removed := map[string]bool{}
	full := buildSharded(1, docs)
	for i := 0; i < len(docs); i += 3 {
		full.Remove(docs[i].ID)
		removed[docs[i].ID] = true
	}
	var survivors []Document
	for _, d := range docs {
		if !removed[d.ID] {
			survivors = append(survivors, d)
		}
	}
	fresh := buildSharded(1, survivors)

	if full.NDocs() != len(survivors) || full.NDocs() != fresh.NDocs() {
		t.Fatalf("NDocs after removals = %d, want %d", full.NDocs(), len(survivors))
	}
	for _, term := range []string{"pizza", "sushi", "vegan", "izakaya", "nosuchterm"} {
		if a, b := full.DF(term), fresh.DF(term); a != b {
			t.Errorf("DF(%q) = %d after removals, fresh index says %d", term, a, b)
		}
	}
	queries := []string{
		"pizza cupertino", "sushi ramen spicy", "vegan brunch patio",
		"izakaya", "taco delivery menu", "review", "fusion tapas grill",
	}
	for _, q := range queries {
		if a, b := full.Search(q, 0), fresh.Search(q, 0); !reflect.DeepEqual(a, b) {
			t.Errorf("Search(%q) after removals diverges from fresh index:\n churned: %+v\n   fresh: %+v", q, a, b)
		}
	}

	// The same must hold sharded: scatter-gather stats merge over shards
	// with removals equals a freshly built sharded index bit for bit.
	full4 := buildSharded(4, docs)
	for id := range removed {
		full4.Remove(id)
	}
	fresh4 := buildSharded(4, survivors)
	if full4.NDocs() != fresh4.NDocs() {
		t.Fatalf("sharded NDocs = %d, want %d", full4.NDocs(), fresh4.NDocs())
	}
	for _, q := range queries {
		if a, b := full4.Search(q, 0), fresh4.Search(q, 0); !reflect.DeepEqual(a, b) {
			t.Errorf("sharded Search(%q) after removals diverges from fresh:\n churned: %+v\n   fresh: %+v", q, a, b)
		}
		if a, b := full4.Search(q, 0), fresh.Search(q, 0); !reflect.DeepEqual(a, b) {
			t.Errorf("sharded-churned vs flat-fresh Search(%q) diverges:\n churned: %+v\n   fresh: %+v", q, a, b)
		}
	}
}

// TestTombstoneCompaction: enough removals trigger the automatic sweep
// that physically reclaims postings; manual CompactTombstones drains the
// rest; neither changes retrieval output, and revival by re-Add keeps
// working on a compacted index.
func TestTombstoneCompaction(t *testing.T) {
	docs := corpusDocs(200)
	ix := buildSharded(1, docs)
	before := ix.Postings()
	// Remove 80 docs one at a time: the 64-tombstone threshold fires
	// mid-way (64*8 >= 200), reclaiming postings automatically.
	for i := 0; i < 80; i++ {
		ix.Remove(docs[i].ID)
	}
	if got := ix.Tombstones(); got >= 64 {
		t.Errorf("auto-compaction never fired: %d tombstones left", got)
	}
	if got := ix.Postings(); got >= before {
		t.Errorf("postings did not shrink: %d -> %d", before, got)
	}
	ix.CompactTombstones()
	if got := ix.Tombstones(); got != 0 {
		t.Errorf("tombstones after manual compaction = %d", got)
	}

	fresh := buildSharded(1, docs[80:])
	if ix.Postings() != fresh.Postings() || ix.Terms() != fresh.Terms() || ix.Len() != fresh.Len() {
		t.Errorf("compacted stats diverge from fresh: %d/%d/%d postings/terms/docs vs %d/%d/%d",
			ix.Postings(), ix.Terms(), ix.Len(), fresh.Postings(), fresh.Terms(), fresh.Len())
	}
	for _, q := range []string{"pizza", "sushi ramen", "vegan brunch patio", "review menu"} {
		if a, b := ix.Search(q, 0), fresh.Search(q, 0); !reflect.DeepEqual(a, b) {
			t.Errorf("Search(%q) after compaction diverges:\n churned: %+v\n   fresh: %+v", q, a, b)
		}
		if a, b := ix.SearchPhrase(q), fresh.SearchPhrase(q); !reflect.DeepEqual(a, b) {
			t.Errorf("SearchPhrase(%q) after compaction diverges: %v vs %v", q, a, b)
		}
	}

	// Revive one removed doc on the compacted index.
	ix.Add(docs[0])
	if !ix.Has(docs[0].ID) || ix.Len() != fresh.Len()+1 {
		t.Fatalf("revival after compaction failed: has=%v len=%d", ix.Has(docs[0].ID), ix.Len())
	}
	freshPlus := buildSharded(1, append(append([]Document{}, docs[80:]...), docs[0]))
	for _, q := range []string{"pizza", "taco delivery menu"} {
		if a, b := ix.Search(q, 0), freshPlus.Search(q, 0); !reflect.DeepEqual(a, b) {
			t.Errorf("Search(%q) after revival diverges:\n churned: %+v\n   fresh: %+v", q, a, b)
		}
	}
}

// TestRemoveUnknownAndDoubleRemove: unknown IDs and repeated removals are
// no-ops and must not corrupt field totals (a double subtract would skew
// every later score).
func TestRemoveUnknownAndDoubleRemove(t *testing.T) {
	docs := corpusDocs(10)
	ix := buildSharded(1, docs)
	ix.Remove("no-such-doc")
	ix.Remove(docs[3].ID)
	ix.Remove(docs[3].ID) // double remove: stats must not shrink twice
	fresh := buildSharded(1, append(append([]Document{}, docs[:3]...), docs[4:]...))
	for _, q := range []string{"pizza", "sushi", "menu review"} {
		if a, b := ix.Search(q, 0), fresh.Search(q, 0); !reflect.DeepEqual(a, b) {
			t.Errorf("Search(%q) after double remove diverges:\n got: %+v\nwant: %+v", q, a, b)
		}
	}
}
