package textproc

// String-similarity measures used by entity matching (§6). All measures
// return a score in [0, 1] with 1 meaning identical.

// Levenshtein returns the edit distance between a and b (insertions,
// deletions, substitutions, unit cost), computed over bytes. Inputs are
// expected to be normalized first.
func Levenshtein(a, b string) int {
	if a == b {
		return 0
	}
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// LevenshteinSim converts edit distance into a [0,1] similarity:
// 1 - dist/max(len). Empty-vs-empty is 1.
func LevenshteinSim(a, b string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	d := Levenshtein(a, b)
	m := len(a)
	if len(b) > m {
		m = len(b)
	}
	return 1 - float64(d)/float64(m)
}

// Jaro returns the Jaro similarity of a and b.
func Jaro(a, b string) float64 {
	if a == b {
		return 1
	}
	la, lb := len(a), len(b)
	if la == 0 || lb == 0 {
		return 0
	}
	window := la
	if lb > window {
		window = lb
	}
	window = window/2 - 1
	if window < 0 {
		window = 0
	}
	matchA := make([]bool, la)
	matchB := make([]bool, lb)
	matches := 0
	for i := 0; i < la; i++ {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		hi := i + window + 1
		if hi > lb {
			hi = lb
		}
		for j := lo; j < hi; j++ {
			if matchB[j] || a[i] != b[j] {
				continue
			}
			matchA[i] = true
			matchB[j] = true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	// Count transpositions.
	trans := 0
	j := 0
	for i := 0; i < la; i++ {
		if !matchA[i] {
			continue
		}
		for !matchB[j] {
			j++
		}
		if a[i] != b[j] {
			trans++
		}
		j++
	}
	m := float64(matches)
	return (m/float64(la) + m/float64(lb) + (m-float64(trans)/2)/m) / 3
}

// JaroWinkler boosts the Jaro similarity for strings sharing a common prefix
// (up to 4 chars), the variant standard in record-linkage systems.
func JaroWinkler(a, b string) float64 {
	j := Jaro(a, b)
	if j < 0.7 {
		return j
	}
	prefix := 0
	for prefix < len(a) && prefix < len(b) && prefix < 4 && a[prefix] == b[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

// Jaccard returns the Jaccard coefficient |A∩B| / |A∪B| of two token sets.
func Jaccard(a, b map[string]bool) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter := 0
	for t := range a {
		if b[t] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// JaccardTokens is Jaccard over the distinct tokens of two strings.
func JaccardTokens(a, b string) float64 {
	return Jaccard(TokenSet(Tokenize(a)), TokenSet(Tokenize(b)))
}

// Dice returns the Sørensen–Dice coefficient 2|A∩B| / (|A|+|B|).
func Dice(a, b map[string]bool) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter := 0
	for t := range a {
		if b[t] {
			inter++
		}
	}
	den := len(a) + len(b)
	if den == 0 {
		return 1
	}
	return 2 * float64(inter) / float64(den)
}

// TrigramSim is Dice similarity over character trigrams — robust to small
// edits and word-order changes, used for fuzzy name comparison.
func TrigramSim(a, b string) float64 {
	ta := make(map[string]bool)
	for _, g := range CharNGrams(a, 3) {
		ta[g] = true
	}
	tb := make(map[string]bool)
	for _, g := range CharNGrams(b, 3) {
		tb[g] = true
	}
	return Dice(ta, tb)
}
