package textproc

import (
	"math"
	"sort"
)

// Vector is a sparse term-weight vector.
type Vector map[string]float64

// Norm returns the Euclidean norm of v.
func (v Vector) Norm() float64 {
	var s float64
	for _, w := range v {
		s += w * w
	}
	return math.Sqrt(s)
}

// Cosine returns the cosine similarity of two sparse vectors.
func Cosine(a, b Vector) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	// Iterate over the smaller vector.
	if len(b) < len(a) {
		a, b = b, a
	}
	var dot float64
	for t, w := range a {
		if w2, ok := b[t]; ok {
			dot += w * w2
		}
	}
	na, nb := a.Norm(), b.Norm()
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (na * nb)
}

// TermCounts returns the term-frequency vector of toks.
func TermCounts(toks []string) Vector {
	v := make(Vector, len(toks))
	for _, t := range toks {
		v[t]++
	}
	return v
}

// Corpus accumulates document frequencies and produces TF-IDF vectors.
// It underlies "related pages" (Table 1) and document-similarity features.
type Corpus struct {
	df   map[string]int
	docs int
}

// NewCorpus returns an empty corpus.
func NewCorpus() *Corpus {
	return &Corpus{df: make(map[string]int)}
}

// Add registers one document's tokens with the corpus statistics.
func (c *Corpus) Add(toks []string) {
	c.docs++
	for t := range TokenSet(toks) {
		c.df[t]++
	}
}

// Docs returns the number of documents added.
func (c *Corpus) Docs() int { return c.docs }

// IDF returns the smoothed inverse document frequency of term t:
// log(1 + N/(1+df)).
func (c *Corpus) IDF(t string) float64 {
	return math.Log(1 + float64(c.docs)/float64(1+c.df[t]))
}

// Vectorize returns the TF-IDF vector of toks, with log-scaled TF.
func (c *Corpus) Vectorize(toks []string) Vector {
	tf := TermCounts(toks)
	v := make(Vector, len(tf))
	for t, f := range tf {
		v[t] = (1 + math.Log(f)) * c.IDF(t)
	}
	return v
}

// TopTerms returns the n highest-weighted terms of v in descending weight
// order (ties broken lexicographically, for determinism).
func TopTerms(v Vector, n int) []string {
	type tw struct {
		t string
		w float64
	}
	all := make([]tw, 0, len(v))
	for t, w := range v {
		all = append(all, tw{t, w})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].w != all[j].w {
			return all[i].w > all[j].w
		}
		return all[i].t < all[j].t
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].t
	}
	return out
}
