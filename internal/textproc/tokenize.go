// Package textproc provides the text-processing substrate for the web of
// concepts: tokenization, normalization, n-grams, string-similarity measures
// (Levenshtein, Jaro–Winkler, Jaccard, cosine), and TF-IDF vectorization.
//
// Entity matching (§6 of the paper) is built on attribute-similarity scores,
// and both the inverted index and the review→record language model consume
// normalized token streams, so this package sits underneath internal/index,
// internal/match, and internal/extract.
package textproc

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// Tokenize splits s into lowercase word tokens. A token is a maximal run of
// letters or digits; everything else is a separator. Apostrophes inside words
// ("birk's") are dropped rather than splitting the word.
//
// ASCII input takes a two-pass fast path: the first pass counts tokens (so
// the result slice is allocated once, at exact capacity) and the second
// emits each token as a direct slice of s when no case-folding or apostrophe
// stripping is needed — pure-ASCII lowercase input costs exactly one
// allocation. Any non-ASCII byte falls back to the full Unicode path.
func Tokenize(s string) []string {
	return TokenizeInto(s, nil)
}

// TokenizeInto appends the tokens of s to dst and returns the extended
// slice. Hot loops that tokenize many strings (index analysis, classifier
// features) pass a reused buffer to avoid a slice allocation per call; a nil
// dst behaves like Tokenize.
func TokenizeInto(s string, dst []string) []string {
	// Pass 1: count tokens, bailing to the Unicode path on any non-ASCII
	// byte. A token starts at a letter/digit; an apostrophe extends a token
	// it is inside of but never starts one.
	n := 0
	inTok := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= utf8.RuneSelf {
			return tokenizeUnicode(s, dst)
		}
		if isASCIIAlnum(c) {
			if !inTok {
				n++
				inTok = true
			}
		} else if c != '\'' || !inTok {
			inTok = false
		}
	}
	if n == 0 {
		return dst
	}
	if free := cap(dst) - len(dst); free < n {
		grown := make([]string, len(dst), len(dst)+n)
		copy(grown, dst)
		dst = grown
	}
	// Pass 2: emit. A clean token (no uppercase, no apostrophe) is a
	// zero-copy slice of s; otherwise it is rewritten into a fresh string.
	for i := 0; i < len(s); {
		if !isASCIIAlnum(s[i]) {
			i++
			continue
		}
		j := i
		clean := true
		for j < len(s) {
			cj := s[j]
			if isASCIIAlnum(cj) {
				if cj >= 'A' && cj <= 'Z' {
					clean = false
				}
				j++
				continue
			}
			if cj == '\'' {
				clean = false
				j++
				continue
			}
			break
		}
		if clean {
			dst = append(dst, s[i:j])
		} else {
			buf := make([]byte, 0, j-i)
			for k := i; k < j; k++ {
				ck := s[k]
				if ck == '\'' {
					continue
				}
				if ck >= 'A' && ck <= 'Z' {
					ck += 'a' - 'A'
				}
				buf = append(buf, ck)
			}
			dst = append(dst, string(buf))
		}
		i = j
	}
	return dst
}

func isASCIIAlnum(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// tokenizeUnicode is the full rune-by-rune tokenizer, kept as the fallback
// for input containing any non-ASCII byte.
func tokenizeUnicode(s string, dst []string) []string {
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			dst = append(dst, b.String())
			b.Reset()
		}
	}
	for _, r := range s {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
		case r == '\'' && b.Len() > 0:
			// skip intra-word apostrophe
		default:
			flush()
		}
	}
	flush()
	return dst
}

// stopwords is a compact English stopword list. It intentionally excludes
// words that carry meaning in queries for concepts (e.g. "best", "near").
var stopwords = map[string]bool{
	"a": true, "an": true, "and": true, "are": true, "as": true, "at": true,
	"be": true, "by": true, "for": true, "from": true, "has": true,
	"he": true, "in": true, "is": true, "it": true, "its": true, "of": true,
	"on": true, "or": true, "that": true, "the": true, "to": true,
	"was": true, "were": true, "will": true, "with": true, "this": true,
	"i": true, "we": true, "you": true, "they": true, "my": true,
}

// IsStopword reports whether tok is a stopword (tok must be lowercase).
func IsStopword(tok string) bool { return stopwords[tok] }

// RemoveStopwords filters stopwords from toks, returning a new slice.
func RemoveStopwords(toks []string) []string {
	out := make([]string, 0, len(toks))
	for _, t := range toks {
		if !stopwords[t] {
			out = append(out, t)
		}
	}
	return out
}

// RemoveStopwordsInPlace filters stopwords from toks, reusing its backing
// array. The caller must own toks (e.g. a fresh Tokenize result).
func RemoveStopwordsInPlace(toks []string) []string {
	out := toks[:0]
	for _, t := range toks {
		if !stopwords[t] {
			out = append(out, t)
		}
	}
	return out
}

// Normalize lowercases s, strips punctuation, and collapses whitespace —
// the canonical form used when comparing attribute values across sources.
func Normalize(s string) string {
	return strings.Join(Tokenize(s), " ")
}

// NormalizeKey aggressively normalizes s for blocking keys: lowercase
// alphanumerics only, no separators.
func NormalizeKey(s string) string {
	return strings.Join(Tokenize(s), "")
}

// NormalizeQuery canonicalizes a raw user query: trim, collapse runs of
// whitespace to single spaces, lowercase. It is the single normalization
// point shared by query parsing and serving-layer cache keys, so
// "Pizza  NYC " and "pizza nyc" parse identically and share one cache
// entry. Unlike Normalize it keeps punctuation: the tokenizer downstream
// owns those rules (e.g. intra-word apostrophes).
func NormalizeQuery(s string) string {
	return strings.ToLower(strings.Join(strings.Fields(s), " "))
}

// NGrams returns the n-grams of the token slice. If fewer than n tokens
// exist, it returns a single gram joining all of them.
func NGrams(toks []string, n int) []string {
	if n <= 0 {
		return nil
	}
	if len(toks) == 0 {
		return nil
	}
	if len(toks) < n {
		return []string{strings.Join(toks, " ")}
	}
	out := make([]string, 0, len(toks)-n+1)
	for i := 0; i+n <= len(toks); i++ {
		out = append(out, strings.Join(toks[i:i+n], " "))
	}
	return out
}

// CharNGrams returns the character n-grams of s (after key normalization),
// padded with '^' and '$' sentinels so prefixes and suffixes are
// distinguished. Used for fuzzy blocking in entity matching. Grams are
// counted in runes, not bytes, so non-ASCII names ("café") yield valid
// UTF-8 grams instead of split multibyte sequences.
func CharNGrams(s string, n int) []string {
	rs := []rune("^" + NormalizeKey(s) + "$")
	if n <= 0 || len(rs) < n {
		return []string{string(rs)}
	}
	out := make([]string, 0, len(rs)-n+1)
	for i := 0; i+n <= len(rs); i++ {
		out = append(out, string(rs[i:i+n]))
	}
	return out
}

// TokenSet returns the set of distinct tokens in toks.
func TokenSet(toks []string) map[string]bool {
	set := make(map[string]bool, len(toks))
	for _, t := range toks {
		set[t] = true
	}
	return set
}

// Stem applies a light suffix-stripping stemmer (a small subset of Porter's
// rules) sufficient to conflate plurals and common verb forms in queries and
// page text: restaurants→restaurant, ratings→rating, reviewed→review.
func Stem(w string) string {
	if len(w) <= 3 {
		return w
	}
	switch {
	case strings.HasSuffix(w, "ies") && len(w) > 4:
		return w[:len(w)-3] + "y"
	case strings.HasSuffix(w, "sses"):
		return w[:len(w)-2]
	case strings.HasSuffix(w, "ss"):
		return w
	case strings.HasSuffix(w, "s") && !strings.HasSuffix(w, "us"):
		return w[:len(w)-1]
	}
	switch {
	case strings.HasSuffix(w, "ing") && len(w) > 5:
		return undouble(w[:len(w)-3])
	case strings.HasSuffix(w, "ed") && len(w) > 4:
		return undouble(w[:len(w)-2])
	}
	return w
}

// undouble removes a trailing doubled consonant left by suffix stripping
// ("stopp" → "stop") but keeps legitimate doubles like "ll" in "grill".
func undouble(w string) string {
	n := len(w)
	if n >= 2 && w[n-1] == w[n-2] {
		switch w[n-1] {
		case 'l', 's', 'z':
			return w
		}
		return w[:n-1]
	}
	return w
}

// StemAll stems every token in toks, returning a new slice.
func StemAll(toks []string) []string {
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = Stem(t)
	}
	return out
}

// StemInPlace stems every token of toks in place and returns toks. Use it
// instead of StemAll when the caller owns toks (e.g. a fresh Tokenize
// result), saving the copy.
func StemInPlace(toks []string) []string {
	for i, t := range toks {
		toks[i] = Stem(t)
	}
	return toks
}
