package textproc

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"unicode/utf8"
)

// The tokenizer fast path must produce exactly what the Unicode reference
// path produces on ASCII input — same tokens, same order — across the edge
// cases the fast path handles specially (case folding, apostrophes at every
// position, digit runs, punctuation separators).
func TestTokenizeFastPathEquivalence(t *testing.T) {
	cases := []string{
		"",
		"   ",
		"plain lowercase words",
		"MIXED Case WORDS",
		"birk's steakhouse",
		"'leading apostrophe",
		"trailing' apostrophe'",
		"''double '' apostrophes''",
		"rock'n'roll o'brien's",
		"a'",
		"'",
		"123 main st, suite 4B",
		"don't-stop hyphen.dot/slash",
		"tabs\tand\nnewlines  collapse",
		"x",
		"ALLCAPS",
		"ends with apostrophe in'",
	}
	for _, s := range cases {
		got := Tokenize(s)
		want := tokenizeUnicode(s, nil)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("Tokenize(%q) fast path = %v, unicode reference = %v", s, got, want)
		}
	}
}

// Pure-ASCII lowercase input must cost exactly one allocation (the result
// slice): every token is a zero-copy view of the input. This pins the fast
// path so a regression shows up as a test failure, not a silent slowdown.
func TestTokenizeAllocs(t *testing.T) {
	s := "margherita pizza with basil and buffalo mozzarella baked in a wood oven"
	allocs := testing.AllocsPerRun(100, func() {
		Tokenize(s)
	})
	if allocs > 1 {
		t.Errorf("Tokenize(pure-ASCII lowercase) = %.1f allocs/run, want <= 1", allocs)
	}

	// With a reused buffer of sufficient capacity, tokenization allocates
	// nothing at all.
	buf := make([]string, 0, 64)
	allocs = testing.AllocsPerRun(100, func() {
		buf = TokenizeInto(s, buf[:0])
	})
	if allocs > 0 {
		t.Errorf("TokenizeInto(reused buffer) = %.1f allocs/run, want 0", allocs)
	}
}

func TestCharNGramsMultibyte(t *testing.T) {
	cases := []struct {
		in   string
		n    int
		want []string
	}{
		// Every gram must be valid UTF-8 and n runes long; the old
		// byte-sliced version split the 'é' in half.
		{"café", 3, []string{"^ca", "caf", "afé", "fé$"}},
		{"日本", 2, []string{"^日", "日本", "本$"}},
		{"øl", 4, []string{"^øl$"}},
	}
	for _, c := range cases {
		got := CharNGrams(c.in, c.n)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("CharNGrams(%q, %d) = %q, want %q", c.in, c.n, got, c.want)
		}
		for _, g := range got {
			if !utf8.ValidString(g) {
				t.Errorf("CharNGrams(%q, %d): gram %q is not valid UTF-8", c.in, c.n, g)
			}
		}
	}
}

// benchText is representative page prose: ASCII with mixed case and light
// punctuation, the common case the fast path is built for.
var benchText = strings.Repeat(
	"Visit Luigi's Trattoria at 123 Main St for wood-fired Margherita pizza, "+
		"fresh pasta and a curated wine list. Open Mon-Sat 11:30am-10pm. ", 8)

var benchTokens []string

func BenchmarkTokenize(b *testing.B) {
	b.ReportAllocs()
	b.SetBytes(int64(len(benchText)))
	for i := 0; i < b.N; i++ {
		benchTokens = Tokenize(benchText)
	}
}

func BenchmarkTokenizeInto(b *testing.B) {
	b.ReportAllocs()
	b.SetBytes(int64(len(benchText)))
	buf := make([]string, 0, 256)
	for i := 0; i < b.N; i++ {
		buf = TokenizeInto(benchText, buf[:0])
	}
	benchTokens = buf
}

var benchTerms []string

func BenchmarkTopTerms(b *testing.B) {
	c := NewCorpus()
	docs := make([][]string, 0, 50)
	for i := 0; i < 50; i++ {
		doc := Tokenize(fmt.Sprintf(
			"restaurant %d serves pasta pizza seafood steak dessert wine "+
				"beer cocktails brunch dinner takeout delivery patio %d", i, i*7))
		c.Add(doc)
		docs = append(docs, doc)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchTerms = TopTerms(c.Vectorize(docs[i%len(docs)]), 10)
	}
}
