package textproc

import "testing"

// NormalizeQuery is the single canonicalization point for user queries:
// parsing and the serving-layer result cache both rely on it, so variants
// that differ only in case or whitespace must collapse to one form.
func TestNormalizeQuery(t *testing.T) {
	tests := []struct {
		name, in, want string
	}{
		{"already canonical", "pizza nyc", "pizza nyc"},
		{"double space", "pizza  nyc", "pizza nyc"},
		{"leading and trailing", "  pizza nyc  ", "pizza nyc"},
		{"uppercase", "Pizza NYC", "pizza nyc"},
		{"tabs and newlines", "pizza\tnyc\n", "pizza nyc"},
		{"mixed everything", " \tPizza \n  NYC ", "pizza nyc"},
		{"empty", "", ""},
		{"whitespace only", "  \t \n ", ""},
		{"punctuation kept", "birk's menu", "birk's menu"},
		{"multibyte", "  Café  du  Monde ", "café du monde"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := NormalizeQuery(tc.in); got != tc.want {
				t.Errorf("NormalizeQuery(%q) = %q, want %q", tc.in, got, tc.want)
			}
		})
	}
	// Variant queries must share one canonical form (and hence one cache
	// entry downstream).
	variants := []string{"pizza  NYC", "Pizza nyc", " pizza nyc ", "PIZZA\tNYC"}
	for _, v := range variants {
		if got := NormalizeQuery(v); got != "pizza nyc" {
			t.Errorf("variant %q normalized to %q; cache entries would split", v, got)
		}
	}
}
