package textproc

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Hello, World!", []string{"hello", "world"}},
		{"Birk's Steakhouse", []string{"birks", "steakhouse"}},
		{"95054-1234", []string{"95054", "1234"}},
		{"", nil},
		{"   ", nil},
		{"café MÜNCHEN", []string{"café", "münchen"}},
		{"a-b_c", []string{"a", "b", "c"}},
	}
	for _, c := range cases {
		if got := Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestNormalize(t *testing.T) {
	if got := Normalize("  Gochi   Fusion-Tapas! "); got != "gochi fusion tapas" {
		t.Errorf("Normalize = %q", got)
	}
	if got := NormalizeKey("Gochi Fusion Tapas"); got != "gochifusiontapas" {
		t.Errorf("NormalizeKey = %q", got)
	}
}

func TestRemoveStopwords(t *testing.T) {
	got := RemoveStopwords([]string{"the", "best", "salsa", "in", "chicago"})
	want := []string{"best", "salsa", "chicago"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v", got)
	}
}

func TestNGrams(t *testing.T) {
	toks := []string{"a", "b", "c", "d"}
	if got := NGrams(toks, 2); !reflect.DeepEqual(got, []string{"a b", "b c", "c d"}) {
		t.Errorf("bigrams = %v", got)
	}
	if got := NGrams(toks, 5); !reflect.DeepEqual(got, []string{"a b c d"}) {
		t.Errorf("oversize gram = %v", got)
	}
	if got := NGrams(nil, 2); got != nil {
		t.Errorf("empty = %v", got)
	}
	if got := NGrams(toks, 0); got != nil {
		t.Errorf("n=0 = %v", got)
	}
}

func TestCharNGrams(t *testing.T) {
	grams := CharNGrams("ab", 3)
	want := []string{"^ab", "ab$"}
	if !reflect.DeepEqual(grams, want) {
		t.Errorf("grams = %v, want %v", grams, want)
	}
}

func TestStem(t *testing.T) {
	cases := map[string]string{
		"restaurants": "restaurant",
		"ratings":     "rating",
		"reviewed":    "review",
		"cities":      "city",
		"glasses":     "glass",
		"bus":         "bus",
		"class":       "class",
		"booking":     "book",
		"stopped":     "stop",
		"grilling":    "grill",
		"menu":        "menu",
		"is":          "is",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "abc", 0},
		{"abc", "", 3},
		{"kitten", "sitting", 3},
		{"gochi", "gouchi", 1},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinProperties(t *testing.T) {
	// Symmetry and triangle-ish bounds via quick check on short strings.
	f := func(a, b string) bool {
		if len(a) > 30 {
			a = a[:30]
		}
		if len(b) > 30 {
			b = b[:30]
		}
		d1, d2 := Levenshtein(a, b), Levenshtein(b, a)
		if d1 != d2 {
			return false
		}
		diff := len(a) - len(b)
		if diff < 0 {
			diff = -diff
		}
		maxLen := len(a)
		if len(b) > maxLen {
			maxLen = len(b)
		}
		return d1 >= diff && d1 <= maxLen
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJaroWinkler(t *testing.T) {
	if got := JaroWinkler("martha", "marhta"); math.Abs(got-0.9611) > 0.001 {
		t.Errorf("JW(martha,marhta) = %f", got)
	}
	if got := JaroWinkler("abc", "abc"); got != 1 {
		t.Errorf("identical = %f", got)
	}
	if got := JaroWinkler("abc", "xyz"); got != 0 {
		t.Errorf("disjoint = %f", got)
	}
	// Winkler boost: shared prefix scores at least the plain Jaro.
	if JaroWinkler("prefix", "prefax") < Jaro("prefix", "prefax") {
		t.Error("prefix boost missing")
	}
}

func TestSimilarityRange(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 40 {
			a = a[:40]
		}
		if len(b) > 40 {
			b = b[:40]
		}
		for _, s := range []float64{
			LevenshteinSim(a, b), Jaro(a, b), JaroWinkler(a, b),
			JaccardTokens(a, b), TrigramSim(a, b),
		} {
			if s < 0 || s > 1.0000001 || math.IsNaN(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestJaccard(t *testing.T) {
	a := TokenSet([]string{"a", "b", "c"})
	b := TokenSet([]string{"b", "c", "d"})
	if got := Jaccard(a, b); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("Jaccard = %f", got)
	}
	if got := Jaccard(nil, nil); got != 1 {
		t.Errorf("empty Jaccard = %f", got)
	}
}

func TestTrigramSimRobustToSmallEdits(t *testing.T) {
	hi := TrigramSim("blue agave grill", "blue agave grille")
	lo := TrigramSim("blue agave grill", "red lantern noodles")
	if hi < 0.75 || lo > 0.3 || hi <= lo {
		t.Errorf("hi=%f lo=%f", hi, lo)
	}
}

func TestCosine(t *testing.T) {
	a := Vector{"x": 1, "y": 1}
	b := Vector{"x": 1, "y": 1}
	if got := Cosine(a, b); math.Abs(got-1) > 1e-9 {
		t.Errorf("identical cosine = %f", got)
	}
	c := Vector{"z": 5}
	if got := Cosine(a, c); got != 0 {
		t.Errorf("orthogonal cosine = %f", got)
	}
	if got := Cosine(nil, a); got != 0 {
		t.Errorf("empty cosine = %f", got)
	}
}

func TestCorpusTFIDF(t *testing.T) {
	c := NewCorpus()
	c.Add([]string{"pizza", "pasta", "menu"})
	c.Add([]string{"pizza", "burger", "menu"})
	c.Add([]string{"sushi", "menu"})
	// "menu" appears everywhere → low IDF; "sushi" is rare → high IDF.
	if c.IDF("menu") >= c.IDF("sushi") {
		t.Errorf("IDF(menu)=%f should be < IDF(sushi)=%f", c.IDF("menu"), c.IDF("sushi"))
	}
	v := c.Vectorize([]string{"sushi", "menu"})
	if v["sushi"] <= 0 || v["menu"] <= 0 {
		t.Errorf("weights = %v", v)
	}
	top := TopTerms(v, 1)
	if len(top) != 1 || top[0] != "sushi" {
		t.Errorf("top = %v", top)
	}
}

func TestTopTermsDeterministic(t *testing.T) {
	v := Vector{"b": 1, "a": 1, "c": 2}
	if got := TopTerms(v, 3); !reflect.DeepEqual(got, []string{"c", "a", "b"}) {
		t.Errorf("TopTerms = %v", got)
	}
	if got := TopTerms(v, 10); len(got) != 3 {
		t.Errorf("overlong n: %v", got)
	}
}

func TestStemAllAndTokenSet(t *testing.T) {
	toks := StemAll(Tokenize("Reviews of restaurants"))
	joined := strings.Join(toks, " ")
	if joined != "review of restaurant" {
		t.Errorf("StemAll = %q", joined)
	}
	set := TokenSet([]string{"a", "a", "b"})
	if len(set) != 2 || !set["a"] || !set["b"] {
		t.Errorf("TokenSet = %v", set)
	}
}
