package htmlx

import "strings"

// Parse builds a DOM tree from HTML source. It never fails: malformed input
// produces a best-effort tree, mirroring how browsers (and the paper's
// extraction targets) treat real-web HTML.
func Parse(src string) *Node {
	doc := &Node{Type: DocumentNode, Data: "#document"}
	z := NewTokenizer(src)
	// stack holds currently-open elements; stack[0] is the document.
	stack := []*Node{doc}
	top := func() *Node { return stack[len(stack)-1] }

	for {
		tok := z.Next()
		switch tok.Type {
		case ErrorToken:
			return doc
		case TextToken:
			if strings.TrimSpace(tok.Data) == "" {
				continue
			}
			top().AppendChild(&Node{Type: TextNode, Data: tok.Data})
		case CommentToken:
			top().AppendChild(&Node{Type: CommentNode, Data: tok.Data})
		case DoctypeToken:
			// Dropped: the DOM we expose starts at <html>.
		case SelfClosingTagToken:
			top().AppendChild(&Node{Type: ElementNode, Data: tok.Data, Attr: tok.Attr})
		case StartTagToken:
			if voidElements[tok.Data] {
				top().AppendChild(&Node{Type: ElementNode, Data: tok.Data, Attr: tok.Attr})
				continue
			}
			closeImplied(&stack, tok.Data)
			el := &Node{Type: ElementNode, Data: tok.Data, Attr: tok.Attr}
			stack[len(stack)-1].AppendChild(el)
			stack = append(stack, el)
		case EndTagToken:
			// Pop to the matching open element, if any; otherwise ignore
			// the stray end tag.
			for i := len(stack) - 1; i >= 1; i-- {
				if stack[i].Data == tok.Data {
					stack = stack[:i]
					break
				}
			}
		}
	}
}

// impliedClose maps a tag to the set of open tags that it implicitly closes
// when it appears as a sibling (the common subset of the HTML5 rules).
var impliedClose = map[string]map[string]bool{
	"li":     {"li": true},
	"dt":     {"dt": true, "dd": true},
	"dd":     {"dt": true, "dd": true},
	"tr":     {"tr": true, "td": true, "th": true},
	"td":     {"td": true, "th": true},
	"th":     {"td": true, "th": true},
	"p":      {"p": true},
	"option": {"option": true},
	"thead":  {"thead": true},
	"tbody":  {"thead": true, "tbody": true},
}

// closeImplied pops elements that the incoming tag implicitly closes.
func closeImplied(stack *[]*Node, incoming string) {
	closes, ok := impliedClose[incoming]
	if !ok {
		return
	}
	s := *stack
	for len(s) > 1 && closes[s[len(s)-1].Data] {
		s = s[:len(s)-1]
	}
	*stack = s
}

// ParseFragment parses src and returns the children that would be placed in
// a <body>, convenient for parsing HTML snippets in tests.
func ParseFragment(src string) []*Node {
	doc := Parse(src)
	if body := doc.FindFirst("body"); body != nil {
		return body.Children
	}
	return doc.Children
}
