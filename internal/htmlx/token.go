// Package htmlx implements a small, dependency-free HTML tokenizer, parser,
// DOM, renderer, and query layer.
//
// The package exists because the web-of-concepts pipeline must extract
// structured records from raw HTML pages (§4 of the paper), and the Go
// standard library does not ship an HTML parser. The parser is not a full
// WHATWG implementation; it handles the subset of HTML produced by real
// template-driven sites (nested elements, attributes, entities, comments,
// void and implicitly-closed elements, script/style raw text), which is the
// class of pages the paper's extraction techniques target.
package htmlx

import (
	"fmt"
	"strings"
)

// TokenType identifies the kind of a lexical token produced by the Tokenizer.
type TokenType int

// Token types.
const (
	TextToken TokenType = iota
	StartTagToken
	EndTagToken
	SelfClosingTagToken
	CommentToken
	DoctypeToken
	ErrorToken // end of input
)

// String returns a human-readable name for the token type.
func (t TokenType) String() string {
	switch t {
	case TextToken:
		return "Text"
	case StartTagToken:
		return "StartTag"
	case EndTagToken:
		return "EndTag"
	case SelfClosingTagToken:
		return "SelfClosingTag"
	case CommentToken:
		return "Comment"
	case DoctypeToken:
		return "Doctype"
	case ErrorToken:
		return "EOF"
	default:
		return fmt.Sprintf("TokenType(%d)", int(t))
	}
}

// Attribute is a single key="value" pair on a tag.
type Attribute struct {
	Key string
	Val string
}

// Token is one lexical unit of an HTML document.
type Token struct {
	Type TokenType
	// Data is the tag name for tag tokens, the text for text tokens, and
	// the comment body for comment tokens.
	Data string
	Attr []Attribute
}

// AttrVal returns the value of the named attribute and whether it was present.
func (t *Token) AttrVal(key string) (string, bool) {
	for _, a := range t.Attr {
		if a.Key == key {
			return a.Val, true
		}
	}
	return "", false
}

// voidElements are elements that never have closing tags.
var voidElements = map[string]bool{
	"area": true, "base": true, "br": true, "col": true, "embed": true,
	"hr": true, "img": true, "input": true, "link": true, "meta": true,
	"param": true, "source": true, "track": true, "wbr": true,
}

// rawTextElements have bodies that are not parsed as markup.
var rawTextElements = map[string]bool{
	"script": true, "style": true, "textarea": true, "title": true,
}

// Tokenizer splits HTML source into Tokens. It is a forgiving, single-pass
// scanner: malformed markup degrades to text rather than failing.
type Tokenizer struct {
	src string
	pos int
	// rawTag, when non-empty, means we are inside a raw-text element and
	// must scan until its matching end tag.
	rawTag string
}

// NewTokenizer returns a Tokenizer reading from src.
func NewTokenizer(src string) *Tokenizer {
	return &Tokenizer{src: src}
}

// Next returns the next token. After the input is exhausted it returns a
// token with Type == ErrorToken forever.
func (z *Tokenizer) Next() Token {
	if z.pos >= len(z.src) {
		return Token{Type: ErrorToken}
	}
	if z.rawTag != "" {
		return z.nextRawText()
	}
	if z.src[z.pos] == '<' {
		if tok, ok := z.scanMarkup(); ok {
			if tok.Type == StartTagToken && rawTextElements[tok.Data] {
				z.rawTag = tok.Data
			}
			return tok
		}
	}
	return z.scanText()
}

// nextRawText scans the body of a script/style/textarea/title element up to
// its closing tag, returning the body as a single text token. The closing
// tag is consumed on the following call.
func (z *Tokenizer) nextRawText() Token {
	closer := "</" + z.rawTag
	rest := z.src[z.pos:]
	idx := indexFold(rest, closer)
	if idx < 0 {
		z.pos = len(z.src)
		z.rawTag = ""
		return Token{Type: TextToken, Data: rest}
	}
	if idx == 0 {
		// At the closing tag itself.
		z.rawTag = ""
		tok, ok := z.scanMarkup()
		if ok {
			return tok
		}
		return z.scanText()
	}
	z.pos += idx
	z.rawTag = ""
	// Re-arm so the next call hits the closer via scanMarkup.
	return Token{Type: TextToken, Data: rest[:idx]}
}

// indexFold is strings.Index with ASCII case folding on the needle.
func indexFold(s, needle string) int {
	n := len(needle)
	if n == 0 {
		return 0
	}
	for i := 0; i+n <= len(s); i++ {
		if strings.EqualFold(s[i:i+n], needle) {
			return i
		}
	}
	return -1
}

// scanText consumes text up to the next '<' (or EOF).
func (z *Tokenizer) scanText() Token {
	start := z.pos
	// Skip a leading '<' that failed to parse as markup.
	if z.src[z.pos] == '<' {
		z.pos++
	}
	for z.pos < len(z.src) && z.src[z.pos] != '<' {
		z.pos++
	}
	return Token{Type: TextToken, Data: UnescapeEntities(z.src[start:z.pos])}
}

// scanMarkup attempts to parse a tag, comment, or doctype at z.pos (which
// must point at '<'). On failure it restores position and reports false.
func (z *Tokenizer) scanMarkup() (Token, bool) {
	start := z.pos
	if z.pos+1 >= len(z.src) {
		return Token{}, false
	}
	switch {
	case strings.HasPrefix(z.src[z.pos:], "<!--"):
		return z.scanComment(), true
	case strings.HasPrefix(z.src[z.pos:], "<!"):
		return z.scanDoctype(), true
	case z.src[z.pos+1] == '/':
		return z.scanEndTag(start)
	case isTagNameStart(z.src[z.pos+1]):
		return z.scanStartTag(start)
	default:
		return Token{}, false
	}
}

func isTagNameStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isTagNameChar(c byte) bool {
	return isTagNameStart(c) || c >= '0' && c <= '9' || c == '-' || c == ':'
}

func (z *Tokenizer) scanComment() Token {
	z.pos += 4 // len("<!--")
	end := strings.Index(z.src[z.pos:], "-->")
	var body string
	if end < 0 {
		body = z.src[z.pos:]
		z.pos = len(z.src)
	} else {
		body = z.src[z.pos : z.pos+end]
		z.pos += end + 3
	}
	return Token{Type: CommentToken, Data: body}
}

func (z *Tokenizer) scanDoctype() Token {
	z.pos += 2 // len("<!")
	end := strings.IndexByte(z.src[z.pos:], '>')
	var body string
	if end < 0 {
		body = z.src[z.pos:]
		z.pos = len(z.src)
	} else {
		body = z.src[z.pos : z.pos+end]
		z.pos += end + 1
	}
	return Token{Type: DoctypeToken, Data: strings.TrimSpace(body)}
}

func (z *Tokenizer) scanEndTag(start int) (Token, bool) {
	z.pos += 2 // len("</")
	nameStart := z.pos
	for z.pos < len(z.src) && isTagNameChar(z.src[z.pos]) {
		z.pos++
	}
	if z.pos == nameStart {
		z.pos = start
		return Token{}, false
	}
	name := strings.ToLower(z.src[nameStart:z.pos])
	// Skip to '>'.
	for z.pos < len(z.src) && z.src[z.pos] != '>' {
		z.pos++
	}
	if z.pos < len(z.src) {
		z.pos++
	}
	return Token{Type: EndTagToken, Data: name}, true
}

func (z *Tokenizer) scanStartTag(start int) (Token, bool) {
	z.pos++ // '<'
	nameStart := z.pos
	for z.pos < len(z.src) && isTagNameChar(z.src[z.pos]) {
		z.pos++
	}
	name := strings.ToLower(z.src[nameStart:z.pos])
	tok := Token{Type: StartTagToken, Data: name}
	for {
		z.skipSpace()
		if z.pos >= len(z.src) {
			return tok, true
		}
		switch z.src[z.pos] {
		case '>':
			z.pos++
			return tok, true
		case '/':
			z.pos++
			z.skipSpace()
			if z.pos < len(z.src) && z.src[z.pos] == '>' {
				z.pos++
				if !voidElements[name] {
					tok.Type = SelfClosingTagToken
				}
				return tok, true
			}
		default:
			key, val, ok := z.scanAttribute()
			if !ok {
				// Unparseable junk inside the tag; skip one byte.
				z.pos++
				continue
			}
			tok.Attr = append(tok.Attr, Attribute{Key: key, Val: val})
		}
	}
}

func (z *Tokenizer) skipSpace() {
	for z.pos < len(z.src) {
		switch z.src[z.pos] {
		case ' ', '\t', '\n', '\r', '\f':
			z.pos++
		default:
			return
		}
	}
}

// scanAttribute parses key, key=value, key="value", or key='value'.
func (z *Tokenizer) scanAttribute() (key, val string, ok bool) {
	start := z.pos
	for z.pos < len(z.src) {
		c := z.src[z.pos]
		if c == '=' || c == '>' || c == '/' || c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			break
		}
		z.pos++
	}
	if z.pos == start {
		return "", "", false
	}
	key = strings.ToLower(z.src[start:z.pos])
	z.skipSpace()
	if z.pos >= len(z.src) || z.src[z.pos] != '=' {
		return key, "", true
	}
	z.pos++ // '='
	z.skipSpace()
	if z.pos >= len(z.src) {
		return key, "", true
	}
	switch q := z.src[z.pos]; q {
	case '"', '\'':
		z.pos++
		vStart := z.pos
		for z.pos < len(z.src) && z.src[z.pos] != q {
			z.pos++
		}
		val = z.src[vStart:z.pos]
		if z.pos < len(z.src) {
			z.pos++ // closing quote
		}
	default:
		vStart := z.pos
		for z.pos < len(z.src) {
			c := z.src[z.pos]
			if c == '>' || c == ' ' || c == '\t' || c == '\n' || c == '\r' {
				break
			}
			z.pos++
		}
		val = z.src[vStart:z.pos]
	}
	return key, UnescapeEntities(val), true
}

// entityTable maps the named entities that occur in practice on the pages we
// generate and parse. Numeric entities are handled separately.
var entityTable = map[string]rune{
	"amp": '&', "lt": '<', "gt": '>', "quot": '"', "apos": '\'',
	"nbsp": '\x20', "mdash": '—', "ndash": '–', "hellip": '…',
	"copy": '©', "reg": '®', "trade": '™', "bull": '•', "middot": '·',
	"laquo": '«', "raquo": '»', "deg": '°', "frac12": '½', "eacute": 'é',
	"amp;": '&',
}

// UnescapeEntities replaces HTML entities (named from a common table, plus
// decimal and hex numeric forms) with their characters. Unknown entities are
// left untouched.
func UnescapeEntities(s string) string {
	if !strings.ContainsRune(s, '&') {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); {
		c := s[i]
		if c != '&' {
			b.WriteByte(c)
			i++
			continue
		}
		semi := strings.IndexByte(s[i:], ';')
		if semi < 0 || semi > 10 {
			b.WriteByte(c)
			i++
			continue
		}
		name := s[i+1 : i+semi]
		if r, ok := entityTable[name]; ok {
			b.WriteRune(r)
			i += semi + 1
			continue
		}
		if len(name) > 1 && name[0] == '#' {
			if r, ok := parseNumericEntity(name[1:]); ok {
				b.WriteRune(r)
				i += semi + 1
				continue
			}
		}
		b.WriteByte(c)
		i++
	}
	return b.String()
}

func parseNumericEntity(s string) (rune, bool) {
	base := 10
	if len(s) > 1 && (s[0] == 'x' || s[0] == 'X') {
		base = 16
		s = s[1:]
	}
	var n int
	for i := 0; i < len(s); i++ {
		var d int
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			d = int(c - '0')
		case base == 16 && c >= 'a' && c <= 'f':
			d = int(c-'a') + 10
		case base == 16 && c >= 'A' && c <= 'F':
			d = int(c-'A') + 10
		default:
			return 0, false
		}
		n = n*base + d
		if n > 0x10FFFF {
			return 0, false
		}
	}
	if len(s) == 0 {
		return 0, false
	}
	return rune(n), true
}

// EscapeText escapes text for inclusion in an HTML text node.
func EscapeText(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// EscapeAttr escapes text for inclusion in a double-quoted attribute value.
func EscapeAttr(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
