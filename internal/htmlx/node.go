package htmlx

import (
	"strings"
)

// NodeType identifies the kind of a DOM node.
type NodeType int

// Node types.
const (
	ElementNode NodeType = iota
	TextNode
	CommentNode
	DocumentNode
)

// Node is a node in the parsed DOM tree.
type Node struct {
	Type NodeType
	// Data is the tag name for elements and the text for text/comment nodes.
	Data string
	Attr []Attribute

	Parent   *Node
	Children []*Node
}

// AttrVal returns the value of the named attribute and whether it exists.
func (n *Node) AttrVal(key string) (string, bool) {
	for _, a := range n.Attr {
		if a.Key == key {
			return a.Val, true
		}
	}
	return "", false
}

// ID returns the element's id attribute, or "".
func (n *Node) ID() string {
	v, _ := n.AttrVal("id")
	return v
}

// Class returns the element's class attribute, or "".
func (n *Node) Class() string {
	v, _ := n.AttrVal("class")
	return v
}

// HasClass reports whether the element's class list contains name.
func (n *Node) HasClass(name string) bool {
	for _, c := range strings.Fields(n.Class()) {
		if c == name {
			return true
		}
	}
	return false
}

// AppendChild adds c as the last child of n and sets its parent pointer.
func (n *Node) AppendChild(c *Node) {
	c.Parent = n
	n.Children = append(n.Children, c)
}

// Text returns the concatenated text content of the subtree rooted at n,
// with runs of whitespace collapsed to single spaces and trimmed.
func (n *Node) Text() string {
	var b strings.Builder
	n.appendText(&b)
	return collapseSpace(b.String())
}

func (n *Node) appendText(b *strings.Builder) {
	switch n.Type {
	case TextNode:
		b.WriteString(n.Data)
		b.WriteByte(' ')
	case ElementNode:
		if n.Data == "script" || n.Data == "style" {
			return
		}
	}
	for _, c := range n.Children {
		c.appendText(b)
	}
}

func collapseSpace(s string) string {
	return strings.Join(strings.Fields(s), " ")
}

// ChildElements returns only the element-typed children of n.
func (n *Node) ChildElements() []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Type == ElementNode {
			out = append(out, c)
		}
	}
	return out
}

// NextSibling returns the node following n among its parent's children, or
// nil if n is the last child or has no parent.
func (n *Node) NextSibling() *Node {
	if n.Parent == nil {
		return nil
	}
	sibs := n.Parent.Children
	for i, s := range sibs {
		if s == n && i+1 < len(sibs) {
			return sibs[i+1]
		}
	}
	return nil
}

// Walk calls fn for every node in the subtree rooted at n, in document
// order. If fn returns false, the walk does not descend into that node's
// children (but continues with siblings).
func (n *Node) Walk(fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Find returns all element nodes in the subtree for which pred is true.
func (n *Node) Find(pred func(*Node) bool) []*Node {
	var out []*Node
	n.Walk(func(m *Node) bool {
		if m.Type == ElementNode && pred(m) {
			out = append(out, m)
		}
		return true
	})
	return out
}

// FindAll returns all descendant elements with the given tag name.
func (n *Node) FindAll(tag string) []*Node {
	return n.Find(func(m *Node) bool { return m.Data == tag })
}

// FindFirst returns the first descendant element with the given tag name in
// document order, or nil.
func (n *Node) FindFirst(tag string) *Node {
	var found *Node
	n.Walk(func(m *Node) bool {
		if found != nil {
			return false
		}
		if m.Type == ElementNode && m.Data == tag {
			found = m
			return false
		}
		return true
	})
	return found
}

// FindByClass returns all descendant elements whose class list contains name.
func (n *Node) FindByClass(name string) []*Node {
	return n.Find(func(m *Node) bool { return m.HasClass(name) })
}

// FindByID returns the first descendant element with the given id, or nil.
func (n *Node) FindByID(id string) *Node {
	var found *Node
	n.Walk(func(m *Node) bool {
		if found != nil {
			return false
		}
		if m.Type == ElementNode && m.ID() == id {
			found = m
			return false
		}
		return true
	})
	return found
}

// PathSignature returns the tag path from the document root to n, e.g.
// "html/body/div/ul/li". Structural extraction uses path signatures to
// detect record-generating templates.
func (n *Node) PathSignature() string {
	var parts []string
	for m := n; m != nil && m.Type == ElementNode; m = m.Parent {
		parts = append(parts, m.Data)
	}
	// Reverse.
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return strings.Join(parts, "/")
}

// ClassPathSignature is like PathSignature but includes class names, which
// distinguishes template slots that share tag structure:
// "html/body/div.listing/ul/li.item".
func (n *Node) ClassPathSignature() string {
	var parts []string
	for m := n; m != nil && m.Type == ElementNode; m = m.Parent {
		p := m.Data
		if cl := m.Class(); cl != "" {
			p += "." + strings.Join(strings.Fields(cl), ".")
		}
		parts = append(parts, p)
	}
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return strings.Join(parts, "/")
}

// Depth returns the number of element ancestors of n.
func (n *Node) Depth() int {
	d := 0
	for m := n.Parent; m != nil; m = m.Parent {
		d++
	}
	return d
}

// Links returns the href values of all <a> descendants, in document order.
func (n *Node) Links() []string {
	var out []string
	for _, a := range n.FindAll("a") {
		if href, ok := a.AttrVal("href"); ok && href != "" {
			out = append(out, href)
		}
	}
	return out
}
