package htmlx

import "strings"

// Render serializes the subtree rooted at n back to HTML. Parsing the output
// of Render yields an equivalent tree, which the round-trip tests rely on.
func Render(n *Node) string {
	var b strings.Builder
	render(&b, n)
	return b.String()
}

func render(b *strings.Builder, n *Node) {
	switch n.Type {
	case DocumentNode:
		for _, c := range n.Children {
			render(b, c)
		}
	case TextNode:
		b.WriteString(EscapeText(n.Data))
	case CommentNode:
		b.WriteString("<!--")
		b.WriteString(n.Data)
		b.WriteString("-->")
	case ElementNode:
		b.WriteByte('<')
		b.WriteString(n.Data)
		for _, a := range n.Attr {
			b.WriteByte(' ')
			b.WriteString(a.Key)
			if a.Val != "" {
				b.WriteString(`="`)
				b.WriteString(EscapeAttr(a.Val))
				b.WriteByte('"')
			}
		}
		b.WriteByte('>')
		if voidElements[n.Data] {
			return
		}
		for _, c := range n.Children {
			render(b, c)
		}
		b.WriteString("</")
		b.WriteString(n.Data)
		b.WriteByte('>')
	}
}

// Elem constructs an element node with the given tag, attributes, and
// children. Attributes are given as alternating key, value strings. It is a
// convenience for building test fixtures and generated pages.
func Elem(tag string, attrs []string, children ...*Node) *Node {
	n := &Node{Type: ElementNode, Data: tag}
	for i := 0; i+1 < len(attrs); i += 2 {
		n.Attr = append(n.Attr, Attribute{Key: attrs[i], Val: attrs[i+1]})
	}
	for _, c := range children {
		n.AppendChild(c)
	}
	return n
}

// TextN constructs a text node.
func TextN(s string) *Node {
	return &Node{Type: TextNode, Data: s}
}
