package htmlx

import (
	"strings"
	"testing"
	"testing/quick"
)

func collectTokens(src string) []Token {
	z := NewTokenizer(src)
	var toks []Token
	for {
		t := z.Next()
		if t.Type == ErrorToken {
			return toks
		}
		toks = append(toks, t)
	}
}

func TestTokenizerSimple(t *testing.T) {
	toks := collectTokens(`<div class="x">hi</div>`)
	if len(toks) != 3 {
		t.Fatalf("got %d tokens, want 3: %v", len(toks), toks)
	}
	if toks[0].Type != StartTagToken || toks[0].Data != "div" {
		t.Errorf("tok0 = %+v", toks[0])
	}
	if v, ok := toks[0].AttrVal("class"); !ok || v != "x" {
		t.Errorf("class attr = %q, %v", v, ok)
	}
	if toks[1].Type != TextToken || toks[1].Data != "hi" {
		t.Errorf("tok1 = %+v", toks[1])
	}
	if toks[2].Type != EndTagToken || toks[2].Data != "div" {
		t.Errorf("tok2 = %+v", toks[2])
	}
}

func TestTokenizerAttributes(t *testing.T) {
	cases := []struct {
		src, key, want string
	}{
		{`<a href="x.html">`, "href", "x.html"},
		{`<a href='x.html'>`, "href", "x.html"},
		{`<a href=x.html>`, "href", "x.html"},
		{`<a HREF="X">`, "href", "X"},
		{`<input disabled>`, "disabled", ""},
		{`<a title="a &amp; b">`, "title", "a & b"},
	}
	for _, c := range cases {
		toks := collectTokens(c.src)
		if len(toks) == 0 {
			t.Fatalf("%q: no tokens", c.src)
		}
		v, ok := toks[0].AttrVal(c.key)
		if !ok || v != c.want {
			t.Errorf("%q: attr %q = %q,%v want %q", c.src, c.key, v, ok, c.want)
		}
	}
}

func TestTokenizerVoidAndSelfClosing(t *testing.T) {
	toks := collectTokens(`<br><img src="a.png"/><hr />`)
	for i, tok := range toks {
		if tok.Type != StartTagToken {
			t.Errorf("tok %d: type %v, want StartTag (void elems stay start tags)", i, tok.Type)
		}
	}
	toks = collectTokens(`<span/>x`)
	if toks[0].Type != SelfClosingTagToken {
		t.Errorf("self-closing non-void: %+v", toks[0])
	}
}

func TestTokenizerComment(t *testing.T) {
	toks := collectTokens(`a<!-- secret -->b`)
	if len(toks) != 3 || toks[1].Type != CommentToken || toks[1].Data != " secret " {
		t.Fatalf("tokens = %+v", toks)
	}
}

func TestTokenizerScriptRawText(t *testing.T) {
	src := `<script>if (a < b) { x("<div>"); }</script><p>after</p>`
	toks := collectTokens(src)
	if toks[0].Data != "script" {
		t.Fatalf("tok0 = %+v", toks[0])
	}
	if toks[1].Type != TextToken || !strings.Contains(toks[1].Data, `a < b`) {
		t.Fatalf("script body not raw: %+v", toks[1])
	}
	if toks[2].Type != EndTagToken || toks[2].Data != "script" {
		t.Fatalf("tok2 = %+v", toks[2])
	}
}

func TestTokenizerMalformed(t *testing.T) {
	// A lone '<' degrades to text, never an infinite loop or panic.
	toks := collectTokens(`a < b and <2 more`)
	var text strings.Builder
	for _, tok := range toks {
		if tok.Type == TextToken {
			text.WriteString(tok.Data)
		}
	}
	if !strings.Contains(text.String(), "a ") || !strings.Contains(text.String(), "more") {
		t.Errorf("text = %q", text.String())
	}
}

func TestUnescapeEntities(t *testing.T) {
	cases := map[string]string{
		"a &amp; b":     "a & b",
		"&lt;tag&gt;":   "<tag>",
		"&#65;&#x42;":   "AB",
		"caf&eacute;":   "café",
		"no entities":   "no entities",
		"&notareal;":    "&notareal;",
		"dangling &amp": "dangling &amp",
		"&nbsp;":        " ",
		"&#x1F600;":     "\U0001F600",
	}
	for in, want := range cases {
		if got := UnescapeEntities(in); got != want {
			t.Errorf("UnescapeEntities(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestEscapeRoundTrip(t *testing.T) {
	f := func(s string) bool {
		return UnescapeEntities(EscapeText(s)) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseNesting(t *testing.T) {
	doc := Parse(`<html><body><div id="a"><p>one</p><p>two</p></div></body></html>`)
	div := doc.FindByID("a")
	if div == nil {
		t.Fatal("div#a not found")
	}
	ps := div.FindAll("p")
	if len(ps) != 2 {
		t.Fatalf("got %d <p>, want 2", len(ps))
	}
	if ps[0].Text() != "one" || ps[1].Text() != "two" {
		t.Errorf("texts = %q, %q", ps[0].Text(), ps[1].Text())
	}
	if ps[0].Parent != div {
		t.Error("parent pointer wrong")
	}
}

func TestParseImpliedClose(t *testing.T) {
	doc := Parse(`<ul><li>a<li>b<li>c</ul>`)
	lis := doc.FindAll("li")
	if len(lis) != 3 {
		t.Fatalf("got %d <li>, want 3", len(lis))
	}
	for i, want := range []string{"a", "b", "c"} {
		if lis[i].Text() != want {
			t.Errorf("li[%d] = %q, want %q", i, lis[i].Text(), want)
		}
		if lis[i].Depth() != lis[0].Depth() {
			t.Errorf("li[%d] depth %d != li[0] depth %d (nesting bug)", i, lis[i].Depth(), lis[0].Depth())
		}
	}
	doc = Parse(`<table><tr><td>1<td>2<tr><td>3</table>`)
	if n := len(doc.FindAll("tr")); n != 2 {
		t.Errorf("tr count = %d, want 2", n)
	}
	if n := len(doc.FindAll("td")); n != 3 {
		t.Errorf("td count = %d, want 3", n)
	}
}

func TestParseStrayEndTag(t *testing.T) {
	doc := Parse(`<div>a</span>b</div>`)
	divs := doc.FindAll("div")
	if len(divs) != 1 || divs[0].Text() != "a b" {
		t.Fatalf("divs = %d, text = %q", len(divs), divs[0].Text())
	}
}

func TestNodeTextSkipsScript(t *testing.T) {
	doc := Parse(`<div>visible<script>var hidden = 1;</script></div>`)
	if got := doc.Text(); got != "visible" {
		t.Errorf("Text() = %q", got)
	}
}

func TestFindByClass(t *testing.T) {
	doc := Parse(`<div class="item featured">a</div><div class="item">b</div><div class="other">c</div>`)
	items := doc.FindByClass("item")
	if len(items) != 2 {
		t.Fatalf("got %d items", len(items))
	}
	if !items[0].HasClass("featured") || items[1].HasClass("featured") {
		t.Error("HasClass wrong")
	}
}

func TestPathSignature(t *testing.T) {
	doc := Parse(`<html><body><div class="listing"><ul><li class="item">x</li></ul></div></body></html>`)
	li := doc.FindFirst("li")
	if got := li.PathSignature(); got != "html/body/div/ul/li" {
		t.Errorf("PathSignature = %q", got)
	}
	if got := li.ClassPathSignature(); got != "html/body/div.listing/ul/li.item" {
		t.Errorf("ClassPathSignature = %q", got)
	}
}

func TestLinks(t *testing.T) {
	doc := Parse(`<p><a href="/a">A</a><a>no href</a><a href="/b">B</a></p>`)
	links := doc.Links()
	if len(links) != 2 || links[0] != "/a" || links[1] != "/b" {
		t.Errorf("links = %v", links)
	}
}

func TestNextSibling(t *testing.T) {
	doc := Parse(`<div><p>a</p><p>b</p></div>`)
	ps := doc.FindAll("p")
	if sib := ps[0].NextSibling(); sib != ps[1] {
		t.Error("NextSibling wrong")
	}
	if sib := ps[1].NextSibling(); sib != nil {
		t.Error("last child NextSibling should be nil")
	}
}

func TestRenderRoundTrip(t *testing.T) {
	srcs := []string{
		`<html><head><title>T</title></head><body><div class="x"><p>hi <b>bold</b></p></div></body></html>`,
		`<ul><li>a</li><li>b &amp; c</li></ul>`,
		`<table><tr><td colspan="2">x</td></tr></table>`,
		`<a href="/p?q=1&amp;r=2">link</a>`,
	}
	for _, src := range srcs {
		d1 := Parse(src)
		out := Render(d1)
		d2 := Parse(out)
		if Render(d2) != out {
			t.Errorf("render not stable for %q:\n1: %s\n2: %s", src, out, Render(d2))
		}
		if d1.Text() != d2.Text() {
			t.Errorf("text changed: %q vs %q", d1.Text(), d2.Text())
		}
	}
}

func TestElemBuilder(t *testing.T) {
	n := Elem("div", []string{"class", "card"},
		Elem("span", nil, TextN("hello")),
	)
	if got := Render(n); got != `<div class="card"><span>hello</span></div>` {
		t.Errorf("Render = %q", got)
	}
}

func TestParseFragment(t *testing.T) {
	kids := ParseFragment(`<html><body><p>a</p><p>b</p></body></html>`)
	if len(kids) != 2 {
		t.Fatalf("got %d children", len(kids))
	}
}

func TestParseNeverPanics(t *testing.T) {
	f := func(s string) bool {
		doc := Parse(s)
		_ = doc.Text()
		_ = Render(doc)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestParseDeeplyNested(t *testing.T) {
	var b strings.Builder
	const depth = 500
	for i := 0; i < depth; i++ {
		b.WriteString("<div>")
	}
	b.WriteString("x")
	for i := 0; i < depth; i++ {
		b.WriteString("</div>")
	}
	doc := Parse(b.String())
	if n := len(doc.FindAll("div")); n != depth {
		t.Errorf("got %d divs, want %d", n, depth)
	}
}
