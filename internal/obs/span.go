package obs

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"
)

// Spans time named stages of a computation and assemble into a trace tree:
// Start a root span, pass its context down, and each nested Start attaches a
// child. The finished tree reports where a build spent its time — the §7.3
// maintenance question of which extraction/matching stage dominates cost.

type spanKey struct{}

// Start begins a span named name. If ctx already carries a span, the new
// span is attached as its child. The returned context carries the new span
// for further nesting; call End on the span when the stage finishes.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	s := &Span{name: name, start: time.Now()}
	if parent, ok := ctx.Value(spanKey{}).(*Span); ok && parent != nil {
		parent.attach(s)
	}
	return context.WithValue(ctx, spanKey{}, s), s
}

// Span is one timed stage. Safe for concurrent child attachment.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	dur      time.Duration
	ended    bool
	children []*Span
}

// Name returns the span's stage name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

func (s *Span) attach(child *Span) {
	s.mu.Lock()
	s.children = append(s.children, child)
	s.mu.Unlock()
}

// End stops the span (idempotent) and returns its duration.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		s.dur = time.Since(s.start)
		s.ended = true
	}
	return s.dur
}

// Duration returns the recorded duration (elapsed-so-far if not ended).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		return time.Since(s.start)
	}
	return s.dur
}

// Report freezes the span tree into a serializable trace report.
func (s *Span) Report() *TraceReport {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	d := s.dur
	if !s.ended {
		d = time.Since(s.start)
	}
	r := &TraceReport{Name: s.name, Duration: d}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		r.Children = append(r.Children, c.Report())
	}
	return r
}

// TraceReport is a finished trace tree: one node per stage.
type TraceReport struct {
	Name     string         `json:"name"`
	Duration time.Duration  `json:"duration_ns"`
	Children []*TraceReport `json:"children,omitempty"`
}

// Find returns the descendant (or self) with the given name, or nil.
func (r *TraceReport) Find(name string) *TraceReport {
	if r == nil {
		return nil
	}
	if r.Name == name {
		return r
	}
	for _, c := range r.Children {
		if hit := c.Find(name); hit != nil {
			return hit
		}
	}
	return nil
}

// Table renders the tree as an aligned per-stage timing table, durations
// plus percent of the root:
//
//	stage            duration        %
//	build            1.23s      100.0%
//	  crawl          0.41s       33.3%
func (r *TraceReport) Table() string {
	if r == nil {
		return ""
	}
	type row struct {
		label string
		dur   time.Duration
	}
	var rows []row
	var walk func(n *TraceReport, depth int)
	walk = func(n *TraceReport, depth int) {
		rows = append(rows, row{strings.Repeat("  ", depth) + n.Name, n.Duration})
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(r, 0)

	width := len("stage")
	for _, rw := range rows {
		if len(rw.label) > width {
			width = len(rw.label)
		}
	}
	total := r.Duration
	var b strings.Builder
	fmt.Fprintf(&b, "%-*s  %12s  %7s\n", width, "stage", "duration", "%")
	for _, rw := range rows {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(rw.dur) / float64(total)
		}
		fmt.Fprintf(&b, "%-*s  %12s  %6.1f%%\n", width, rw.label,
			rw.dur.Round(time.Microsecond), pct)
	}
	return b.String()
}
