package obs

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for pinning rotation behaviour
// without sleeping.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestWindowedHistogramReflectsLoadChangeWithinOneInterval is the ISSUE 6
// acceptance pin: when the load profile changes, the merged windowed p99
// must move as soon as the clock crosses one rotation interval (new
// observations land in the live window immediately; the old profile decays
// as its intervals age out).
func TestWindowedHistogramReflectsLoadChangeWithinOneInterval(t *testing.T) {
	clk := newFakeClock()
	const interval, windows = 10 * time.Second, 6
	w := NewWindowedHistogram(DefaultLatencyBuckets, interval, windows, clk.Now)

	// Phase 1: slow traffic, ~1s latencies.
	for i := 0; i < 100; i++ {
		w.Observe(1.0)
	}
	if p99 := w.Snapshot().P99; p99 < 0.5 {
		t.Fatalf("slow-phase p99 = %v, want ~1s", p99)
	}

	// Load changes: fast traffic arrives in the next interval. The merged
	// snapshot must include it immediately even though the slow phase is
	// still inside the window.
	clk.Advance(interval)
	for i := 0; i < 100; i++ {
		w.Observe(0.001)
	}
	s := w.Snapshot()
	if s.Count != 200 {
		t.Fatalf("mid-transition count = %d, want 200 (both phases in window)", s.Count)
	}
	if s.P50 > 0.01 {
		t.Errorf("mid-transition p50 = %v, want fast (half the window is 1ms)", s.P50)
	}

	// After the full span passes, the slow phase must have aged out
	// entirely: p99 reflects only the recent fast profile.
	clk.Advance(time.Duration(windows) * interval)
	for i := 0; i < 100; i++ {
		w.Observe(0.001)
	}
	s = w.Snapshot()
	if s.Count != 100 {
		t.Fatalf("post-span count = %d, want 100 (slow phase expired)", s.Count)
	}
	if s.P99 > 0.01 {
		t.Errorf("post-span p99 = %v, want ~1ms after the slow phase aged out", s.P99)
	}
}

// TestWindowedHistogramGradualDecay checks the per-interval ring semantics:
// each rotation drops exactly the observations whose interval left the
// window, not the whole history at once.
func TestWindowedHistogramGradualDecay(t *testing.T) {
	clk := newFakeClock()
	const interval, windows = time.Second, 4
	w := NewWindowedHistogram(DefaultLatencyBuckets, interval, windows, clk.Now)

	// One observation per interval for a full window.
	for i := 0; i < windows; i++ {
		w.Observe(0.01)
		clk.Advance(interval)
	}
	// The clock now sits in interval windows+0; the first observation's
	// interval just left the window.
	if got := w.Snapshot().Count; got != windows-1 {
		t.Fatalf("count after one rotation = %d, want %d", got, windows-1)
	}
	clk.Advance(interval)
	if got := w.Snapshot().Count; got != windows-2 {
		t.Fatalf("count after two rotations = %d, want %d", got, windows-2)
	}
	// Reusing a slot must reset it, not accumulate across cycles.
	w.Observe(0.01)
	w.Observe(0.01)
	if got := w.Snapshot().Count; got != windows-2+2 {
		t.Fatalf("count after slot reuse = %d, want %d", got, windows-2+2)
	}
}

func TestWindowedCounterRates(t *testing.T) {
	clk := newFakeClock()
	const interval, windows = time.Second, 10
	c := NewWindowedCounter(interval, windows, clk.Now)
	for i := 0; i < 50; i++ {
		c.Inc()
	}
	c.Add(50)
	if got := c.Value(); got != 100 {
		t.Fatalf("value = %d, want 100", got)
	}
	if got := c.Rate(); got != 10 {
		t.Errorf("rate = %v, want 10/s over the 10s window", got)
	}
	clk.Advance(time.Duration(windows) * interval)
	if got := c.Value(); got != 0 {
		t.Errorf("value after span = %d, want 0", got)
	}
	s := c.Snapshot()
	if s.Count != 0 || s.WindowSecs != 10 {
		t.Errorf("snapshot = %+v", s)
	}
}

// TestWindowedConcurrent hammers observe/snapshot across rotations from many
// goroutines; run under -race. Totals are checked loosely (an observation
// racing a rotation may land in a slot being retired), but the instrument
// must never report more than was observed or tear.
func TestWindowedConcurrent(t *testing.T) {
	clk := newFakeClock()
	w := NewWindowedHistogram(DefaultLatencyBuckets, time.Second, 4, clk.Now)
	c := NewWindowedCounter(time.Second, 4, clk.Now)
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				w.Observe(0.005)
				c.Inc()
				if i%50 == 0 {
					_ = w.Snapshot()
					_ = c.Value()
				}
				if i%100 == 0 {
					clk.Advance(100 * time.Millisecond)
				}
			}
		}()
	}
	wg.Wait()
	if got := w.Snapshot().Count; got > workers*perWorker {
		t.Errorf("windowed count = %d, beyond %d observed", got, workers*perWorker)
	}
	if got := c.Value(); got > workers*perWorker {
		t.Errorf("windowed counter = %d, beyond %d observed", got, workers*perWorker)
	}
}

func TestWindowedNilSafety(t *testing.T) {
	var w *WindowedHistogram
	w.Observe(1)
	w.ObserveDuration(time.Second)
	if s := w.Snapshot(); s.Count != 0 {
		t.Errorf("nil windowed histogram snapshot = %+v", s)
	}
	if w.Interval() != 0 || w.Span() != 0 {
		t.Error("nil windowed histogram interval/span nonzero")
	}
	var c *WindowedCounter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 || c.Rate() != 0 {
		t.Error("nil windowed counter nonzero")
	}
	var r *Registry
	r.WindowedHistogram("x").Observe(1)
	r.WindowedCounter("x").Inc()
	r.TimeWindowed("x")()
}

func TestRegistryWindowedSnapshot(t *testing.T) {
	r := NewRegistry()
	r.WindowedHistogram("http.search").Observe(0.02)
	r.WindowedCounter("http.err").Add(3)
	done := r.TimeWindowed("api.op")
	done()
	s := r.Snapshot()
	if s.Windowed["http.search"].Count != 1 {
		t.Errorf("windowed snapshot = %+v", s.Windowed)
	}
	if s.WindowedCounters["http.err"].Count != 3 {
		t.Errorf("windowed counters = %+v", s.WindowedCounters)
	}
	// TimeWindowed feeds both views under one name.
	if s.Histograms["api.op"].Count != 1 || s.Windowed["api.op"].Count != 1 {
		t.Errorf("TimeWindowed: cumulative=%+v windowed=%+v",
			s.Histograms["api.op"], s.Windowed["api.op"])
	}
	if r.WindowedHistogram("http.search") != r.WindowedHistogram("http.search") {
		t.Error("windowed histogram not shared by name")
	}
}
