package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Windowed instruments answer "what happened recently?" where the cumulative
// Histogram/Counter answer "what happened since the process started?". They
// keep a ring of fixed-interval sub-instruments: each observation lands in
// the slot owning the current wall-clock interval, snapshots merge the slots
// that are still inside the rolling window, and a slot is lazily reset the
// first time its interval index comes around again. Rotation is driven by
// observers and snapshotters alike, so an idle instrument decays to empty
// without any background goroutine.
//
// The hot path keeps the cumulative instruments' atomic discipline: reading
// the slot for the current interval is two atomic loads; the mutex is taken
// only on the first observation of a new interval (once per interval per
// instrument, not per observation).

// Default windowed-instrument shape: 12 intervals of 5s = a rolling minute.
// Wide enough to smooth per-interval noise, narrow enough that a load change
// shows up in the merged quantiles within one rotation interval.
const (
	DefaultWindowInterval = 5 * time.Second
	DefaultWindowCount    = 12
)

// windowRing is the shared rotation machinery: a ring of interval-stamped
// slots plus the swappable clock.
type windowRing struct {
	interval time.Duration
	epochs   []atomic.Int64 // interval index currently owning each slot
	mu       sync.Mutex     // serializes slot resets
	now      func() time.Time
}

// initWindowRing initializes r in place (the ring embeds a mutex, so it is
// never copied after construction).
func initWindowRing(r *windowRing, interval time.Duration, windows int, now func() time.Time) {
	if interval <= 0 {
		interval = DefaultWindowInterval
	}
	if windows <= 0 {
		windows = DefaultWindowCount
	}
	if now == nil {
		now = time.Now
	}
	r.interval, r.epochs, r.now = interval, make([]atomic.Int64, windows), now
	for i := range r.epochs {
		// Stamp slots impossible-old so interval index 0 still triggers a
		// reset the first time it is observed into.
		r.epochs[i].Store(-1)
	}
}

// epochNow returns the current interval index.
func (r *windowRing) epochNow() int64 {
	return r.now().UnixNano() / int64(r.interval)
}

// slotFor returns the slot index owning interval e, resetting it via reset
// if it still holds a previous cycle's data. The epoch is stamped only after
// reset completes, so a concurrent reader that sees the fresh epoch also
// sees the fresh slot.
func (r *windowRing) slotFor(e int64, reset func(slot int)) int {
	i := int(e % int64(len(r.epochs)))
	if r.epochs[i].Load() == e {
		return i
	}
	r.mu.Lock()
	if r.epochs[i].Load() != e {
		reset(i)
		r.epochs[i].Store(e)
	}
	r.mu.Unlock()
	return i
}

// live reports whether the slot at index i holds data inside the rolling
// window ending at interval e.
func (r *windowRing) live(i int, e int64) bool {
	se := r.epochs[i].Load()
	return se >= 0 && se > e-int64(len(r.epochs)) && se <= e
}

// Span is the rolling window's total duration.
func (r *windowRing) span() time.Duration {
	return r.interval * time.Duration(len(r.epochs))
}

// WindowedHistogram is a rolling-window histogram: a ring of fixed-bucket
// sub-histograms rotated on a wall-clock interval and merged on snapshot.
// A nil *WindowedHistogram is a no-op, like every obs instrument.
type WindowedHistogram struct {
	ring   windowRing
	bounds []float64
	slots  []atomic.Pointer[Histogram]
}

// NewWindowedHistogram builds a rolling histogram covering windows intervals
// of the given length, with the given bucket bounds. interval/windows <= 0
// take the defaults; now == nil uses time.Now (tests inject a fake clock).
func NewWindowedHistogram(bounds []float64, interval time.Duration, windows int, now func() time.Time) *WindowedHistogram {
	w := &WindowedHistogram{bounds: append([]float64(nil), bounds...)}
	initWindowRing(&w.ring, interval, windows, now)
	w.slots = make([]atomic.Pointer[Histogram], len(w.ring.epochs))
	for i := range w.slots {
		w.slots[i].Store(newHistogram(w.bounds))
	}
	return w
}

// Observe records one value into the current interval's sub-histogram.
func (w *WindowedHistogram) Observe(v float64) {
	if w == nil {
		return
	}
	e := w.ring.epochNow()
	i := w.ring.slotFor(e, func(slot int) {
		w.slots[slot].Store(newHistogram(w.bounds))
	})
	w.slots[i].Load().Observe(v)
}

// ObserveDuration records d as seconds.
func (w *WindowedHistogram) ObserveDuration(d time.Duration) { w.Observe(d.Seconds()) }

// Interval returns the rotation interval.
func (w *WindowedHistogram) Interval() time.Duration {
	if w == nil {
		return 0
	}
	return w.ring.interval
}

// Span returns the total rolling-window length (interval × window count).
func (w *WindowedHistogram) Span() time.Duration {
	if w == nil {
		return 0
	}
	return w.ring.span()
}

// Snapshot merges the sub-histograms still inside the rolling window into
// one summary. New observations appear immediately (the current, partial
// interval is included); old ones fall off as their interval leaves the
// window.
func (w *WindowedHistogram) Snapshot() HistogramSnapshot {
	if w == nil {
		return HistogramSnapshot{}
	}
	e := w.ring.epochNow()
	merged := newHistogram(w.bounds)
	for i := range w.slots {
		if !w.ring.live(i, e) {
			continue
		}
		if h := w.slots[i].Load(); h != nil {
			merged.merge(h)
		}
	}
	return merged.Snapshot()
}

// WindowedCounter counts events over the same rolling window, for recent
// error/shed rates where the cumulative counter only gives lifetime totals.
// A nil *WindowedCounter is a no-op.
type WindowedCounter struct {
	ring  windowRing
	slots []atomic.Int64
}

// NewWindowedCounter builds a rolling counter; parameter semantics match
// NewWindowedHistogram.
func NewWindowedCounter(interval time.Duration, windows int, now func() time.Time) *WindowedCounter {
	c := &WindowedCounter{}
	initWindowRing(&c.ring, interval, windows, now)
	c.slots = make([]atomic.Int64, len(c.ring.epochs))
	return c
}

// Inc adds one to the current interval.
func (c *WindowedCounter) Inc() { c.Add(1) }

// Add adds n to the current interval.
func (c *WindowedCounter) Add(n int64) {
	if c == nil {
		return
	}
	e := c.ring.epochNow()
	i := c.ring.slotFor(e, func(slot int) { c.slots[slot].Store(0) })
	c.slots[i].Add(n)
}

// Value sums the intervals still inside the rolling window.
func (c *WindowedCounter) Value() int64 {
	if c == nil {
		return 0
	}
	e := c.ring.epochNow()
	var total int64
	for i := range c.slots {
		if c.ring.live(i, e) {
			total += c.slots[i].Load()
		}
	}
	return total
}

// Rate returns events per second over the rolling window span.
func (c *WindowedCounter) Rate() float64 {
	if c == nil {
		return 0
	}
	span := c.ring.span().Seconds()
	if span <= 0 {
		return 0
	}
	return float64(c.Value()) / span
}

// Snapshot summarizes the rolling counter.
func (c *WindowedCounter) Snapshot() WindowedCounterSnapshot {
	if c == nil {
		return WindowedCounterSnapshot{}
	}
	return WindowedCounterSnapshot{
		Count:      c.Value(),
		PerSec:     c.Rate(),
		WindowSecs: c.ring.span().Seconds(),
	}
}

// WindowedCounterSnapshot is a point-in-time rolling-counter summary.
type WindowedCounterSnapshot struct {
	Count      int64   `json:"count"`
	PerSec     float64 `json:"per_sec"`
	WindowSecs float64 `json:"window_secs"`
}
