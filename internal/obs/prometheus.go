package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format (version 0.0.4): counters and gauges verbatim, histograms as
// cumulative le-buckets plus _sum/_count, and windowed instruments as gauges
// (their quantiles are already materialized and a scraper cannot merge
// rolling windows itself). Metric names are the registry's dotted names with
// every character outside [a-zA-Z0-9_:] mapped to '_', prefixed "woc_".
// Output is sorted by name so the exposition is deterministic.
func WritePrometheus(w io.Writer, s Snapshot) error {
	var b strings.Builder

	names := sortedKeys(s.Counters)
	for _, name := range names {
		pn := promName(name) + "_total"
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name])
	}

	names = sortedKeys(s.Gauges)
	for _, name := range names {
		pn := promName(name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", pn, pn, s.Gauges[name])
	}

	names = sortedKeys(s.Histograms)
	for _, name := range names {
		h := s.Histograms[name]
		pn := promName(name)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", pn)
		for _, bk := range h.Buckets {
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", pn, promFloat(bk.LE), bk.Count)
		}
		fmt.Fprintf(&b, "%s_sum %s\n", pn, promFloat(h.Sum))
		fmt.Fprintf(&b, "%s_count %d\n", pn, h.Count)
	}

	names = sortedKeys(s.Windowed)
	for _, name := range names {
		h := s.Windowed[name]
		pn := promName(name) + "_window"
		for _, q := range []struct {
			suffix string
			v      float64
		}{{"_p50", h.P50}, {"_p90", h.P90}, {"_p99", h.P99}} {
			fmt.Fprintf(&b, "# TYPE %s%s gauge\n%s%s %s\n", pn, q.suffix, pn, q.suffix, promFloat(q.v))
		}
		fmt.Fprintf(&b, "# TYPE %s_count gauge\n%s_count %d\n", pn, pn, h.Count)
	}

	names = sortedKeys(s.WindowedCounters)
	for _, name := range names {
		c := s.WindowedCounters[name]
		pn := promName(name) + "_window"
		fmt.Fprintf(&b, "# TYPE %s_count gauge\n%s_count %d\n", pn, pn, c.Count)
		fmt.Fprintf(&b, "# TYPE %s_per_sec gauge\n%s_per_sec %s\n", pn, pn, promFloat(c.PerSec))
	}

	_, err := io.WriteString(w, b.String())
	return err
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// promName maps a dotted registry name onto the Prometheus grammar.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("woc_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c >= '0' && c <= '9', c == '_', c == ':':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a float the way Prometheus expects, +Inf included.
func promFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return fmt.Sprintf("%g", v)
}
