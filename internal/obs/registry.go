// Package obs is the observability layer: a registry of named counters,
// gauges, and fixed-bucket latency histograms, plus a lightweight span/trace
// API for per-stage timing of the construction pipeline. It is stdlib-only
// and allocation-light so it can sit on hot paths (store puts, index
// lookups, HTTP handlers) without distorting what it measures.
//
// All instruments are safe for concurrent use. Every constructor and method
// tolerates a nil receiver and becomes a no-op, so instrumented code never
// needs to guard `if metrics != nil` at each call site.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing int64.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (n should be non-negative; counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous int64 value that can go up and down
// (e.g. in-flight requests).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adds n (negative to decrement).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefaultLatencyBuckets spans 100µs to 10s exponentially — wide enough for
// both an index lookup and a full pipeline stage. Values are seconds.
var DefaultLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram. Observations above the last
// boundary land in an implicit overflow bucket whose quantiles report the
// observed maximum. Quantiles are estimated by linear interpolation within
// the bucket holding the target rank, so their error is bounded by the
// bucket width.
type Histogram struct {
	bounds []float64      // upper bounds, ascending
	counts []atomic.Int64 // len(bounds)+1; last is overflow
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
	min    atomic.Uint64 // float64 bits
	max    atomic.Uint64 // float64 bits
}

func newHistogram(bounds []float64) *Histogram {
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	h.min.Store(math.Float64bits(math.Inf(1)))
	h.max.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one value (for latencies, in seconds).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	atomicAddFloat(&h.sum, v)
	atomicMinFloat(&h.min, v)
	atomicMaxFloat(&h.max, v)
}

// ObserveDuration records d as seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

func atomicAddFloat(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if a.CompareAndSwap(old, next) {
			return
		}
	}
}

func atomicMinFloat(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if a.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func atomicMaxFloat(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if a.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile estimates the q-th quantile (0 < q <= 1) of the observations.
// Returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if n == 0 {
			continue
		}
		if cum+n < rank {
			cum += n
			continue
		}
		max := math.Float64frombits(h.max.Load())
		if i == len(h.bounds) {
			// Overflow bucket: no upper bound to interpolate toward.
			return max
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		if max < hi {
			hi = max // never report beyond what was seen
		}
		if min := math.Float64frombits(h.min.Load()); min > lo {
			lo = min
		}
		if hi < lo {
			return lo
		}
		return lo + (hi-lo)*((rank-cum)/n)
	}
	return math.Float64frombits(h.max.Load())
}

// merge folds src's observations into h. Both must share bucket bounds (the
// windowed-histogram invariant); h is assumed unpublished, so plain atomic
// stores suffice.
func (h *Histogram) merge(src *Histogram) {
	for i := range h.counts {
		h.counts[i].Add(src.counts[i].Load())
	}
	n := src.count.Load()
	if n == 0 {
		return
	}
	h.count.Add(n)
	atomicAddFloat(&h.sum, math.Float64frombits(src.sum.Load()))
	atomicMinFloat(&h.min, math.Float64frombits(src.min.Load()))
	atomicMaxFloat(&h.max, math.Float64frombits(src.max.Load()))
}

// Buckets returns the cumulative bucket counts in Prometheus le-convention:
// one entry per configured upper bound plus a final +Inf entry, each count
// covering every observation at or below the bound.
func (h *Histogram) Buckets() []BucketCount {
	if h == nil {
		return nil
	}
	out := make([]BucketCount, len(h.counts))
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := math.Inf(1)
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		out[i] = BucketCount{LE: le, Count: cum}
	}
	return out
}

// BucketCount is one cumulative histogram bucket: the count of observations
// <= LE (the final bucket has LE = +Inf).
type BucketCount struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

// Snapshot summarizes the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count:   h.Count(),
		Sum:     h.Sum(),
		P50:     h.Quantile(0.50),
		P90:     h.Quantile(0.90),
		P99:     h.Quantile(0.99),
		Buckets: h.Buckets(),
	}
	if s.Count > 0 {
		s.Min = math.Float64frombits(h.min.Load())
		s.Max = math.Float64frombits(h.max.Load())
		s.Mean = s.Sum / float64(s.Count)
	}
	return s
}

// HistogramSnapshot is a point-in-time histogram summary (JSON-friendly;
// bucket detail is kept out of the JSON shape — it exists for the Prometheus
// exposition, which needs cumulative buckets, not quantile summaries).
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     float64       `json:"sum"`
	Mean    float64       `json:"mean"`
	Min     float64       `json:"min"`
	Max     float64       `json:"max"`
	P50     float64       `json:"p50"`
	P90     float64       `json:"p90"`
	P99     float64       `json:"p99"`
	Buckets []BucketCount `json:"-"`
}

// Registry is a namespace of instruments. Instruments are created on first
// use and shared thereafter; a nil *Registry hands out nil instruments,
// which are themselves no-ops.
type Registry struct {
	mu     sync.RWMutex
	ctrs   map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
	whists map[string]*WindowedHistogram
	wctrs  map[string]*WindowedCounter
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		ctrs:   make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
		whists: make(map[string]*WindowedHistogram),
		wctrs:  make(map[string]*WindowedCounter),
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.ctrs[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.ctrs[name]; c == nil {
		c = &Counter{}
		r.ctrs[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram with DefaultLatencyBuckets,
// creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	return r.HistogramWith(name, DefaultLatencyBuckets)
}

// HistogramWith returns the named histogram, creating it with the given
// bucket upper bounds (ascending) if needed. Buckets are fixed at creation;
// later calls with different bounds return the existing histogram.
func (r *Registry) HistogramWith(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// WindowedHistogram returns the named rolling histogram with
// DefaultLatencyBuckets and the default window shape (12 × 5s), creating it
// if needed. It shares a namespace with neither Histogram nor Counter: the
// same name can carry both a cumulative and a rolling instrument.
func (r *Registry) WindowedHistogram(name string) *WindowedHistogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	w := r.whists[name]
	r.mu.RUnlock()
	if w != nil {
		return w
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if w = r.whists[name]; w == nil {
		w = NewWindowedHistogram(DefaultLatencyBuckets, DefaultWindowInterval, DefaultWindowCount, nil)
		r.whists[name] = w
	}
	return w
}

// WindowedCounter returns the named rolling counter with the default window
// shape, creating it if needed.
func (r *Registry) WindowedCounter(name string) *WindowedCounter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.wctrs[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.wctrs[name]; c == nil {
		c = NewWindowedCounter(DefaultWindowInterval, DefaultWindowCount, nil)
		r.wctrs[name] = c
	}
	return c
}

// Time starts a latency measurement against the named histogram; call the
// returned func to stop and record it:
//
//	defer reg.Time("api.search")()
func (r *Registry) Time(name string) func() {
	if r == nil {
		return func() {}
	}
	h := r.Histogram(name)
	start := time.Now()
	return func() { h.ObserveDuration(time.Since(start)) }
}

// TimeWindowed starts a latency measurement recorded into both the named
// cumulative histogram and the same-named rolling histogram, so one deferred
// call feeds lifetime and recent-window views:
//
//	defer reg.TimeWindowed("api.search")()
func (r *Registry) TimeWindowed(name string) func() {
	if r == nil {
		return func() {}
	}
	h := r.Histogram(name)
	w := r.WindowedHistogram(name)
	start := time.Now()
	return func() {
		d := time.Since(start)
		h.ObserveDuration(d)
		w.ObserveDuration(d)
	}
}

// Snapshot captures every instrument's current value. The maps are fresh
// copies, safe to serialize or mutate. Windowed entries summarize only the
// rolling window, under the same names as their cumulative counterparts.
type Snapshot struct {
	Counters         map[string]int64                   `json:"counters"`
	Gauges           map[string]int64                   `json:"gauges"`
	Histograms       map[string]HistogramSnapshot       `json:"histograms"`
	Windowed         map[string]HistogramSnapshot       `json:"windowed,omitempty"`
	WindowedCounters map[string]WindowedCounterSnapshot `json:"windowed_counters,omitempty"`
}

// Snapshot returns a point-in-time copy of all instruments.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.ctrs {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	if len(r.whists) > 0 {
		s.Windowed = make(map[string]HistogramSnapshot, len(r.whists))
		for name, w := range r.whists {
			s.Windowed[name] = w.Snapshot()
		}
	}
	if len(r.wctrs) > 0 {
		s.WindowedCounters = make(map[string]WindowedCounterSnapshot, len(r.wctrs))
		for name, c := range r.wctrs {
			s.WindowedCounters[name] = c.Snapshot()
		}
	}
	return s
}
