package obs

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files")

// TestWritePrometheusGolden pins the full text exposition against a golden
// file: counters, gauges, histogram le-buckets with +Inf, and windowed
// quantile gauges. Regenerate with: go test ./internal/obs -run Golden -update-golden
func TestWritePrometheusGolden(t *testing.T) {
	clk := newFakeClock()
	r := NewRegistry()
	r.Counter("serve.hit.search").Add(42)
	r.Counter("http.req.search").Add(50)
	r.Gauge("http.inflight").Set(3)
	// Per-shard store/index gauges, as published by the partitioned store.
	r.Gauge("store.shard.0.wal_bytes").Set(4096)
	r.Gauge("store.shard.1.wal_bytes").Set(8192)
	r.Gauge("index.shard.0.postings").Set(1234)
	r.Gauge("index.shard.1.postings").Set(567)
	h := r.HistogramWith("http.latency.search", []float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.002, 0.002, 0.05, 2} {
		h.Observe(v)
	}

	// Windowed instruments on a fake clock so the exposition is stable.
	w := NewWindowedHistogram([]float64{0.001, 0.01, 0.1}, time.Second, 4, clk.Now)
	for _, v := range []float64{0.002, 0.004, 0.09} {
		w.Observe(v)
	}
	wc := NewWindowedCounter(time.Second, 4, clk.Now)
	wc.Add(8)
	r.mu.Lock()
	r.whists["http.window.search"] = w
	r.wctrs["http.window.err.search"] = wc
	r.mu.Unlock()

	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	golden := filepath.Join("testdata", "metrics.prom")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("prometheus exposition drifted from golden file.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestPromNameSanitization(t *testing.T) {
	cases := map[string]string{
		"serve.hit.search":       "woc_serve_hit_search",
		"http.status.search.200": "woc_http_status_search_200",
		"a-b c/d":                "woc_a_b_c_d",
		"ok_name:sub":            "woc_ok_name:sub",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
