package obs

import (
	"context"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("puts")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("puts") != c {
		t.Error("counter not shared by name")
	}
	g := r.Gauge("inflight")
	g.Add(3)
	g.Add(-1)
	if got := g.Value(); got != 2 {
		t.Errorf("gauge = %d, want 2", got)
	}
	g.Set(7)
	if got := g.Value(); got != 7 {
		t.Errorf("gauge = %d, want 7", got)
	}
}

// TestConcurrentInstruments exercises every instrument type from many
// goroutines; run with -race.
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("ops").Inc()
				r.Gauge("level").Add(1)
				r.Gauge("level").Add(-1)
				r.Histogram("lat").Observe(float64(i%100) / 1000)
				if i%100 == 0 {
					_ = r.Snapshot()
					_ = r.Histogram("lat").Quantile(0.5)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("ops").Value(); got != workers*perWorker {
		t.Errorf("ops = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("level").Value(); got != 0 {
		t.Errorf("level = %d, want 0", got)
	}
	if got := r.Histogram("lat").Count(); got != workers*perWorker {
		t.Errorf("lat count = %d, want %d", got, workers*perWorker)
	}
}

// TestHistogramQuantiles checks quantile estimates on a known uniform
// distribution; error must stay within the enclosing bucket's width.
func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	// Uniform over (0, 1]s in 1ms steps.
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) / 1000)
	}
	if got := h.Count(); got != 1000 {
		t.Fatalf("count = %d, want 1000", got)
	}
	if got, want := h.Sum(), 500.5; math.Abs(got-want) > 0.01 {
		t.Errorf("sum = %v, want %v", got, want)
	}
	// Bucket widths around the true quantile bound the error: p50 (0.5s) sits
	// in the (0.25, 0.5] bucket, p90 (0.9s) and p99 (0.99s) in (0.5, 1].
	cases := []struct{ q, want, tol float64 }{
		{0.50, 0.50, 0.25},
		{0.90, 0.90, 0.50},
		{0.99, 0.99, 0.50},
		{1.00, 1.00, 0.001},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); math.Abs(got-c.want) > c.tol {
			t.Errorf("q%v = %v, want %v ± %v", c.q, got, c.want, c.tol)
		}
	}
	s := h.Snapshot()
	if s.Min != 0.001 || s.Max != 1 {
		t.Errorf("min/max = %v/%v, want 0.001/1", s.Min, s.Max)
	}
	if math.Abs(s.Mean-0.5005) > 0.001 {
		t.Errorf("mean = %v, want 0.5005", s.Mean)
	}
	if s.P50 > s.P90 || s.P90 > s.P99 {
		t.Errorf("quantiles not monotone: %+v", s)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := NewRegistry().HistogramWith("h", []float64{1, 2})
	h.Observe(50) // beyond the last bound
	if got := h.Quantile(0.5); got != 50 {
		t.Errorf("overflow quantile = %v, want 50 (observed max)", got)
	}
}

// TestQuantileEdgeCases is the ISSUE 6 satellite table test: quantiles on an
// empty histogram must be 0 (no interpolation against the ±Inf min/max
// sentinels), a single observation must report itself at every quantile, and
// overflow-bucket quantiles must report the observed maximum.
func TestQuantileEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		bounds  []float64
		observe []float64
		q       float64
		want    float64
	}{
		{"empty p50", []float64{1, 2}, nil, 0.50, 0},
		{"empty p99", []float64{1, 2}, nil, 0.99, 0},
		{"empty p100", []float64{1, 2}, nil, 1.00, 0},
		{"single obs p50", []float64{1, 2}, []float64{1.5}, 0.50, 1.5},
		{"single obs p99", []float64{1, 2}, []float64{1.5}, 0.99, 1.5},
		{"single obs p100", []float64{1, 2}, []float64{1.5}, 1.00, 1.5},
		{"single overflow p50", []float64{1, 2}, []float64{9}, 0.50, 9},
		{"all overflow p99", []float64{1, 2}, []float64{5, 7, 11}, 0.99, 11},
		{"mixed overflow p100", []float64{1, 2}, []float64{0.5, 99}, 1.00, 99},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			h := NewRegistry().HistogramWith("h", c.bounds)
			for _, v := range c.observe {
				h.Observe(v)
			}
			got := h.Quantile(c.q)
			if math.IsNaN(got) || math.IsInf(got, 0) {
				t.Fatalf("Quantile(%v) = %v, not finite", c.q, got)
			}
			if got != c.want {
				t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
			}
		})
	}
	// An empty histogram's snapshot must be all-zero too, not ±Inf.
	s := NewRegistry().Histogram("empty").Snapshot()
	if s.Count != 0 || s.Min != 0 || s.Max != 0 || s.P50 != 0 || s.P99 != 0 {
		t.Errorf("empty snapshot = %+v, want zeros", s)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("x").Set(1)
	r.Histogram("x").Observe(1)
	r.Time("x")()
	if got := r.Counter("x").Value(); got != 0 {
		t.Errorf("nil counter = %d", got)
	}
	if s := r.Snapshot(); len(s.Counters) != 0 {
		t.Errorf("nil snapshot = %+v", s)
	}
	var sp *Span
	sp.End()
	if sp.Report() != nil {
		t.Error("nil span report should be nil")
	}
}

func TestSpanTree(t *testing.T) {
	ctx, root := Start(context.Background(), "build")
	ctx2, crawl := Start(ctx, "crawl")
	_, fetch := Start(ctx2, "fetch")
	time.Sleep(time.Millisecond)
	fetch.End()
	crawl.End()
	_, idx := Start(ctx, "index")
	idx.End()
	root.End()

	rep := root.Report()
	if rep.Name != "build" || len(rep.Children) != 2 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Children[0].Name != "crawl" || rep.Children[1].Name != "index" {
		t.Errorf("children = %s, %s", rep.Children[0].Name, rep.Children[1].Name)
	}
	if f := rep.Find("fetch"); f == nil || f.Duration <= 0 {
		t.Errorf("fetch = %+v", f)
	}
	if rep.Duration < rep.Children[0].Duration {
		t.Error("root shorter than child")
	}
	table := rep.Table()
	for _, want := range []string{"stage", "build", "  crawl", "    fetch", "100.0%"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}

func TestSpanConcurrentChildren(t *testing.T) {
	ctx, root := Start(context.Background(), "root")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, s := Start(ctx, "child")
			s.End()
		}()
	}
	wg.Wait()
	root.End()
	if got := len(root.Report().Children); got != 16 {
		t.Errorf("children = %d, want 16", got)
	}
}

// TestSpanConcurrentTree hammers Start/attach/End from many goroutines —
// nested subtrees ending concurrently with parent Report calls — and asserts
// the frozen TraceReport totals are consistent. PR 1 shipped the span API
// with only sequential coverage; this is the -race proof.
func TestSpanConcurrentTree(t *testing.T) {
	const workers, childrenPerWorker = 16, 50
	ctx, root := Start(context.Background(), "root")
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wctx, ws := Start(ctx, "worker")
			for i := 0; i < childrenPerWorker; i++ {
				cctx, c := Start(wctx, "op")
				if i%10 == 0 {
					_, g := Start(cctx, "grandchild")
					g.End()
				}
				c.End()
				if i%25 == 0 {
					// Concurrent Report on a still-growing tree must not race
					// or observe a torn child list.
					_ = root.Report()
					_ = ws.Duration()
				}
			}
			ws.End()
		}(w)
	}
	wg.Wait()
	root.End()

	rep := root.Report()
	if got := len(rep.Children); got != workers {
		t.Fatalf("root children = %d, want %d", got, workers)
	}
	totalOps, totalGrand := 0, 0
	for _, w := range rep.Children {
		if w.Name != "worker" {
			t.Fatalf("child name = %q", w.Name)
		}
		if len(w.Children) != childrenPerWorker {
			t.Errorf("worker ops = %d, want %d", len(w.Children), childrenPerWorker)
		}
		for _, op := range w.Children {
			totalOps++
			if op.Duration < 0 {
				t.Errorf("op duration = %v", op.Duration)
			}
			totalGrand += len(op.Children)
		}
		if w.Duration > rep.Duration {
			t.Errorf("worker %v longer than root %v", w.Duration, rep.Duration)
		}
	}
	if totalOps != workers*childrenPerWorker {
		t.Errorf("ops = %d, want %d", totalOps, workers*childrenPerWorker)
	}
	if want := workers * (childrenPerWorker / 10); totalGrand != want {
		t.Errorf("grandchildren = %d, want %d", totalGrand, want)
	}
	// End is idempotent: a second End (racing pattern in defer-heavy code)
	// must not change the frozen duration.
	d := root.End()
	if d2 := root.End(); d2 != d {
		t.Errorf("second End changed duration: %v vs %v", d2, d)
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Inc()
	r.Histogram("h").Observe(0.01)
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["a"] != 1 || back.Histograms["h"].Count != 1 {
		t.Errorf("roundtrip = %+v", back)
	}
}

func TestRegistryTime(t *testing.T) {
	r := NewRegistry()
	done := r.Time("op")
	time.Sleep(2 * time.Millisecond)
	done()
	s := r.Histogram("op").Snapshot()
	if s.Count != 1 || s.Max < 0.001 {
		t.Errorf("timed op = %+v", s)
	}
}
