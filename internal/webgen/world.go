// Package webgen generates a deterministic synthetic web with ground truth.
//
// The paper's evaluation substrate — the live web plus Yahoo! Search and
// Toolbar logs — is proprietary and unavailable, so this package synthesizes
// the closest equivalent that exercises the same code paths: multi-domain
// entities (restaurants, academics, products, TV) rendered through per-site
// HTML templates with realistic structural regularity, naming variation,
// missing attributes, and stale data. Every page carries ground truth so
// extraction, matching, and application layers can be scored; the package
// internal/logsim generates user behaviour over this web.
package webgen

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"conceptweb/internal/lrec"
)

// Config controls world size. The zero value is unusable; use DefaultConfig.
type Config struct {
	Seed               int64
	Restaurants        int
	Cities             int // number of cities used (max len(cityNames))
	Authors            int
	Papers             int
	Cameras            int
	Shows              int
	Actors             int
	EventsPerCity      int
	HotelsPerCity      int
	AttractionsPerCity int
	ReviewArticles     int // review-blog articles about restaurants
	TVArticles         int // entertainment articles about shows/actors
}

// DefaultConfig returns a laptop-scale world: large enough that every
// experiment has signal, small enough for unit tests.
func DefaultConfig() Config {
	return Config{
		Seed:               1,
		Restaurants:        120,
		Cities:             6,
		Authors:            40,
		Papers:             90,
		Cameras:            12,
		Shows:              10,
		Actors:             30,
		EventsPerCity:      8,
		HotelsPerCity:      4,
		AttractionsPerCity: 4,
		ReviewArticles:     80,
		TVArticles:         20,
	}
}

// Page kinds (PageTruth.Kind).
const (
	KindBiz         = "biz"          // aggregator page about one business
	KindSearch      = "search"       // aggregator search-results page
	KindCategory    = "category"     // aggregator pre-defined category page
	KindPortalIndex = "portal-index" // city-portal directory listing
	KindPortalLeaf  = "portal-leaf"  // city-portal leaf page
	KindHome        = "home"         // official restaurant homepage
	KindMenu        = "menu"         // homepage menu subpage
	KindLocation    = "location"     // homepage location subpage
	KindCoupons     = "coupons"      // homepage coupons subpage
	KindReviewPost  = "review-post"  // blog article reviewing restaurants
	KindAuthorHome  = "author-home"  // researcher homepage
	KindPaper       = "paper"        // paper detail page
	KindVenueIndex  = "venue-index"  // conference year index
	KindProduct     = "product"      // shop catalog product page
	KindProductList = "product-list" // shop catalog listing
	KindProductRev  = "product-review"
	KindShow        = "show"       // media site show page
	KindActor       = "actor"      // media site actor page
	KindTVArticle   = "tv-article" // entertainment article
	KindEvent       = "event"      // city calendar event page
	KindSiteIndex   = "site-index" // synthetic site-map root
)

// Page categories for relational classification (§4.2). A page's category is
// what a "global events classifier" would try to predict.
const (
	CatRestaurants = "restaurants"
	CatEvents      = "events"
	CatHotels      = "hotels"
	CatAttractions = "attractions"
	CatOther       = "other"
)

// PageTruth is the ground truth attached to a generated page.
type PageTruth struct {
	Kind      string
	Category  string
	Site      string
	EntityIDs []string          // entities genuinely described/mentioned
	Attrs     map[string]string // true attribute values exposed on this page
	// Stale marks pages publishing outdated values (OldPhone/OldStreet).
	Stale bool
}

// Page is one generated web page.
type Page struct {
	URL   string
	HTML  string
	Truth PageTruth
}

// Site groups the pages of one website and its template "style".
type Site struct {
	Host  string
	Style string // template family; wrapper induction is per (host, kind)
	Pages []*Page
}

// World is the complete synthetic web plus its ground truth.
type World struct {
	Cfg Config

	Restaurants []*Restaurant
	Authors     []*Author
	Papers      []*Paper
	Products    []*Product
	Shows       []*Show
	Actors      []*Actor
	Events      []*Event
	Hotels      []*Hotel
	Attractions []*Attraction

	Sites   []*Site
	pageMap map[string]*Page

	restByID map[string]*Restaurant
	authByID map[string]*Author
	papByID  map[string]*Paper
	prodByID map[string]*Product
	showByID map[string]*Show
	actByID  map[string]*Actor
	evByID   map[string]*Event

	// ReviewTruth maps review-post page URL -> restaurant IDs it reviews.
	ReviewTruth map[string][]string

	rng *rand.Rand
}

// Generate builds the world deterministically from cfg.
func Generate(cfg Config) *World {
	if cfg.Cities <= 0 || cfg.Cities > len(cityNames) {
		cfg.Cities = len(cityNames)
	}
	w := &World{
		Cfg:         cfg,
		pageMap:     make(map[string]*Page),
		restByID:    make(map[string]*Restaurant),
		authByID:    make(map[string]*Author),
		papByID:     make(map[string]*Paper),
		prodByID:    make(map[string]*Product),
		showByID:    make(map[string]*Show),
		actByID:     make(map[string]*Actor),
		evByID:      make(map[string]*Event),
		ReviewTruth: make(map[string][]string),
		rng:         rand.New(rand.NewSource(cfg.Seed)),
	}
	w.genRestaurants()
	w.genAcademics()
	w.genProducts()
	w.genMedia()
	w.genCityEntities()

	w.buildAggregatorSites()
	w.buildHomepageSites()
	w.buildCityPortals()
	w.buildReviewBlogs()
	w.buildAcademicSites()
	w.buildShoppingSites()
	w.buildMediaSites()
	w.addSiteRoots()
	return w
}

// addSiteRoots gives every site lacking a root page a site-map index linking
// all of its pages, so the whole world is reachable from the site roots, and
// fills in the /about, /contact, /help boilerplate the standard nav links to.
func (w *World) addSiteRoots() {
	for _, s := range w.Sites {
		if s.Style == "home" {
			continue // official homepages use their own nav, already complete
		}
		for _, path := range []string{"/about", "/contact", "/help"} {
			if _, ok := w.pageMap[s.Host+path]; ok {
				continue
			}
			var b hb
			b.el("h1", "", titleCase(strings.TrimPrefix(path, "/")))
			b.el("p", "", "Information about "+s.Host+", our editorial team, and how to reach us.")
			w.addPage(s, path, pageShell(titleCase(strings.TrimPrefix(path, "/")), s.Host, stdNav(s.Host), b.String()),
				PageTruth{Kind: KindSiteIndex, Category: CatOther})
		}
	}
	for _, s := range w.Sites {
		if _, ok := w.pageMap[s.Host+"/"]; ok {
			continue
		}
		var h hb
		h.el("h1", "", s.Host)
		h.open("ul", `class="site-map"`)
		for _, p := range s.Pages {
			h.open("li", "")
			h.a(p.URL, strings.TrimPrefix(p.URL, s.Host))
			h.close("li")
		}
		h.close("ul")
		w.addPage(s, "/", pageShell(s.Host, s.Host, stdNav(s.Host), h.String()),
			PageTruth{Kind: KindSiteIndex, Category: CatOther})
	}
}

// SeedURLs returns the root URL of every site — the standard crawl frontier.
func (w *World) SeedURLs() []string {
	out := make([]string, 0, len(w.Sites))
	for _, s := range w.Sites {
		out = append(out, s.Host+"/")
	}
	return out
}

// Fetch implements the crawler's Fetcher interface over the synthetic web.
func (w *World) Fetch(url string) (string, error) {
	p, ok := w.pageMap[url]
	if !ok {
		return "", fmt.Errorf("webgen: no page at %s", url)
	}
	return p.HTML, nil
}

// Cities returns the active city names.
func (w *World) Cities() []string {
	return cityNames[:w.Cfg.Cities]
}

// Pages returns all pages of all sites, in generation order.
func (w *World) Pages() []*Page {
	var out []*Page
	for _, s := range w.Sites {
		out = append(out, s.Pages...)
	}
	return out
}

// PageByURL returns the page at url, if it exists.
func (w *World) PageByURL(url string) (*Page, bool) {
	p, ok := w.pageMap[url]
	return p, ok
}

// SiteByHost returns the site with the given host, if it exists.
func (w *World) SiteByHost(host string) (*Site, bool) {
	for _, s := range w.Sites {
		if s.Host == host {
			return s, true
		}
	}
	return nil, false
}

func (w *World) addSite(host, style string) *Site {
	s := &Site{Host: host, Style: style}
	w.Sites = append(w.Sites, s)
	return s
}

func (w *World) addPage(s *Site, path, html string, truth PageTruth) *Page {
	truth.Site = s.Host
	url := s.Host + path
	if existing, ok := w.pageMap[url]; ok {
		// Name collisions (two entities slugifying identically) keep the
		// first page; the web has one page per URL.
		return existing
	}
	p := &Page{URL: url, HTML: html, Truth: truth}
	s.Pages = append(s.Pages, p)
	w.pageMap[p.URL] = p
	return p
}

// --- entity generation ---

func (w *World) genRestaurants() {
	used := make(map[string]bool)
	phoneLast := 100
	for i := 0; i < w.Cfg.Restaurants; i++ {
		var name string
		for tries := 0; ; tries++ {
			name = fmt.Sprintf("%s %s %s",
				pick(w.rng, restaurantFirst), pick(w.rng, restaurantSecond), pick(w.rng, restaurantSuffix))
			if !used[name] || tries > 20 {
				break
			}
		}
		used[name] = true
		city := w.Cities()[w.rng.Intn(w.Cfg.Cities)]
		cuisine := pick(w.rng, cuisines)
		zip := fmt.Sprintf("%05d", cityZipBase[city]+w.rng.Intn(3))
		phoneLast++
		r := &Restaurant{
			ID:      fmt.Sprintf("rest-%03d", i),
			Name:    name,
			Street:  fmt.Sprintf("%d %s", 100+w.rng.Intn(9900), pick(w.rng, streetNames)),
			City:    city,
			State:   "CA",
			Zip:     zip,
			Phone:   formatPhone(408, 555, phoneLast, 0),
			Cuisine: cuisine,
			Price:   strings.Repeat("$", 1+w.rng.Intn(4)),
			Rating:  float64(20+w.rng.Intn(31)) / 10, // 2.0 .. 5.0
			Hours:   fmt.Sprintf("Mon-Sun %d:00-%d:00", 10+w.rng.Intn(2), 20+w.rng.Intn(3)),
			// Sparse menus (4-7 of the cuisine's 12 dishes) keep menu overlap
			// between restaurants low enough that bootstrapping needs several
			// rounds to spread — the A3 growth curve.
			Menu: pickN(w.rng, menuItems[cuisine], 4+w.rng.Intn(4)),
		}
		if w.rng.Float64() < 0.5 {
			r.Coupons = []string{
				fmt.Sprintf("%d%% off lunch special", 10+5*w.rng.Intn(4)),
				"free dessert with entree",
			}[:1+w.rng.Intn(2)]
		}
		if w.rng.Float64() < 0.85 {
			r.Homepage = slugify(r.Name) + ".example/"
		}
		if w.rng.Float64() < 0.10 {
			// Restaurant moved / changed phone; stale sources use old values.
			phoneLast++
			r.OldPhone = formatPhone(408, 555, phoneLast, 0)
			r.OldStreet = fmt.Sprintf("%d %s", 100+w.rng.Intn(9900), pick(w.rng, streetNames))
		}
		w.Restaurants = append(w.Restaurants, r)
		w.restByID[r.ID] = r
	}
}

func (w *World) genAcademics() {
	usedNames := make(map[string]bool)
	for i := 0; i < w.Cfg.Authors; i++ {
		var name string
		for tries := 0; ; tries++ {
			name = pick(w.rng, personFirst) + " " + pick(w.rng, personLast)
			if !usedNames[name] || tries > 30 {
				break
			}
		}
		usedNames[name] = true
		a := &Author{
			ID:          fmt.Sprintf("auth-%03d", i),
			Name:        name,
			Affiliation: pick(w.rng, affiliations),
		}
		a.Homepage = "people." + slugify(a.Affiliation) + ".example/~" + slugify(a.Name)
		w.Authors = append(w.Authors, a)
		w.authByID[a.ID] = a
	}
	for i := 0; i < w.Cfg.Papers; i++ {
		title := fmt.Sprintf("%s %s %s",
			pick(w.rng, paperTopicA), pick(w.rng, paperTopicB), pick(w.rng, paperTopicC))
		p := &Paper{
			ID:    fmt.Sprintf("pap-%03d", i),
			Title: title,
			Venue: pick(w.rng, venues),
			Year:  2003 + w.rng.Intn(7),
		}
		nAuth := 1 + w.rng.Intn(3)
		perm := w.rng.Perm(len(w.Authors))
		for j := 0; j < nAuth && j < len(perm); j++ {
			a := w.Authors[perm[j]]
			p.AuthorIDs = append(p.AuthorIDs, a.ID)
			a.PaperIDs = append(a.PaperIDs, p.ID)
		}
		w.Papers = append(w.Papers, p)
		w.papByID[p.ID] = p
	}
}

func (w *World) genProducts() {
	n := 0
	for i := 0; i < w.Cfg.Cameras; i++ {
		brand := cameraBrands[i%len(cameraBrands)]
		model := fmt.Sprintf("%c%d0", 'A'+byte(w.rng.Intn(6)), 1+w.rng.Intn(9))
		cam := &Product{
			ID:         fmt.Sprintf("prod-%03d", n),
			Brand:      brand,
			Model:      model,
			Name:       brand + " " + model,
			Kind:       "camera",
			Price:      fmt.Sprintf("$%d.99", 299+50*w.rng.Intn(15)),
			Megapixels: float64(10 + w.rng.Intn(30)),
		}
		n++
		w.Products = append(w.Products, cam)
		w.prodByID[cam.ID] = cam
		for _, acc := range pickN(w.rng, cameraAccessories, 2+w.rng.Intn(3)) {
			ap := &Product{
				ID:          fmt.Sprintf("prod-%03d", n),
				Brand:       brand,
				Model:       model + "-" + slugify(acc)[:3],
				Name:        brand + " " + titleCase(acc) + " for " + model,
				Kind:        acc,
				Price:       fmt.Sprintf("$%d.99", 19+10*w.rng.Intn(8)),
				AccessoryOf: cam.ID,
			}
			n++
			w.Products = append(w.Products, ap)
			w.prodByID[ap.ID] = ap
		}
	}
}

func (w *World) genMedia() {
	for i := 0; i < w.Cfg.Actors; i++ {
		a := &Actor{
			ID:   fmt.Sprintf("act-%03d", i),
			Name: pick(w.rng, personFirst) + " " + pick(w.rng, personLast),
		}
		w.Actors = append(w.Actors, a)
		w.actByID[a.ID] = a
	}
	for i := 0; i < w.Cfg.Shows && i < len(tvShowWords); i++ {
		start := 1998 + w.rng.Intn(10)
		s := &Show{
			ID:    fmt.Sprintf("show-%03d", i),
			Title: tvShowWords[i],
			Years: fmt.Sprintf("%d-%d", start, start+1+w.rng.Intn(5)),
			Ended: w.rng.Float64() < 0.5,
		}
		// 2-5 actors per show; actors deliberately recur across shows so the
		// "same actor in Kings and Deadwood" pivot exists.
		perm := w.rng.Perm(len(w.Actors))
		for j := 0; j < 2+w.rng.Intn(4) && j < len(perm); j++ {
			a := w.Actors[perm[j]]
			s.ActorIDs = append(s.ActorIDs, a.ID)
			a.ShowIDs = append(a.ShowIDs, s.ID)
		}
		w.Shows = append(w.Shows, s)
		w.showByID[s.ID] = s
	}
}

func (w *World) genCityEntities() {
	ev := 0
	for _, city := range w.Cities() {
		for i := 0; i < w.Cfg.EventsPerCity; i++ {
			e := &Event{
				ID:    fmt.Sprintf("ev-%03d", ev),
				Name:  titleCase(pick(w.rng, eventKinds)),
				City:  city,
				Venue: fmt.Sprintf("%s Community Center", city),
				Date:  fmt.Sprintf("2009-%02d-%02d", 1+w.rng.Intn(12), 1+w.rng.Intn(28)),
			}
			ev++
			w.Events = append(w.Events, e)
			w.evByID[e.ID] = e
		}
		for i := 0; i < w.Cfg.HotelsPerCity; i++ {
			h := &Hotel{
				ID:     fmt.Sprintf("hot-%s-%d", slugify(city), i),
				Name:   pick(w.rng, hotelWords),
				City:   city,
				Street: fmt.Sprintf("%d %s", 100+w.rng.Intn(9900), pick(w.rng, streetNames)),
				Phone:  formatPhone(408, 777, 100+len(w.Hotels), 0),
			}
			w.Hotels = append(w.Hotels, h)
		}
		for i := 0; i < w.Cfg.AttractionsPerCity; i++ {
			w.Attractions = append(w.Attractions, &Attraction{
				ID:   fmt.Sprintf("att-%s-%d", slugify(city), i),
				Name: titleCase(city + " " + pick(w.rng, attractionWords)),
				City: city,
			})
		}
	}
}

// --- ground-truth lookups ---

// RestaurantByID returns the restaurant ground truth, if present.
func (w *World) RestaurantByID(id string) (*Restaurant, bool) {
	r, ok := w.restByID[id]
	return r, ok
}

// AuthorByID returns the author ground truth, if present.
func (w *World) AuthorByID(id string) (*Author, bool) { a, ok := w.authByID[id]; return a, ok }

// PaperByID returns the paper ground truth, if present.
func (w *World) PaperByID(id string) (*Paper, bool) { p, ok := w.papByID[id]; return p, ok }

// ProductByID returns the product ground truth, if present.
func (w *World) ProductByID(id string) (*Product, bool) { p, ok := w.prodByID[id]; return p, ok }

// ShowByID returns the show ground truth, if present.
func (w *World) ShowByID(id string) (*Show, bool) { s, ok := w.showByID[id]; return s, ok }

// ActorByID returns the actor ground truth, if present.
func (w *World) ActorByID(id string) (*Actor, bool) { a, ok := w.actByID[id]; return a, ok }

// EventByID returns the event ground truth, if present.
func (w *World) EventByID(id string) (*Event, bool) { e, ok := w.evByID[id]; return e, ok }

// TruthRecord returns the canonical lrec for an entity ID, across all entity
// types — the record a perfect extraction pipeline would produce.
func (w *World) TruthRecord(id string) (*lrec.Record, bool) {
	if r, ok := w.restByID[id]; ok {
		rec := lrec.NewRecord(id, ConceptRestaurant).
			Set("name", r.Name).Set("street", r.Street).Set("city", r.City).
			Set("state", r.State).Set("zip", r.Zip).Set("phone", r.Phone).
			Set("cuisine", r.Cuisine).Set("price", r.Price).
			Set("rating", fmt.Sprintf("%.1f", r.Rating)).Set("hours", r.Hours).
			Set("menu", strings.Join(r.Menu, "; "))
		if r.Homepage != "" {
			rec.Set("homepage", r.Homepage)
		}
		return rec, true
	}
	if a, ok := w.authByID[id]; ok {
		return lrec.NewRecord(id, ConceptAuthor).
			Set("name", a.Name).Set("affiliation", a.Affiliation).
			Set("homepage", a.Homepage), true
	}
	if p, ok := w.papByID[id]; ok {
		names := make([]string, len(p.AuthorIDs))
		for i, aid := range p.AuthorIDs {
			names[i] = w.authByID[aid].Name
		}
		return lrec.NewRecord(id, ConceptPaper).
			Set("title", p.Title).Set("venue", p.Venue).
			Set("year", fmt.Sprintf("%d", p.Year)).
			Set("authors", strings.Join(names, ", ")), true
	}
	if p, ok := w.prodByID[id]; ok {
		rec := lrec.NewRecord(id, ConceptProduct).
			Set("name", p.Name).Set("brand", p.Brand).Set("model", p.Model).
			Set("kind", p.Kind).Set("price", p.Price)
		if p.Megapixels > 0 {
			rec.Set("megapixels", fmt.Sprintf("%.0f", p.Megapixels))
		}
		if p.AccessoryOf != "" {
			rec.Set("accessory_of", p.AccessoryOf)
		}
		return rec, true
	}
	if s, ok := w.showByID[id]; ok {
		status := "running"
		if s.Ended {
			status = "ended"
		}
		return lrec.NewRecord(id, ConceptShow).
			Set("title", s.Title).Set("years", s.Years).Set("status", status), true
	}
	if a, ok := w.actByID[id]; ok {
		titles := make([]string, len(a.ShowIDs))
		for i, sid := range a.ShowIDs {
			titles[i] = w.showByID[sid].Title
		}
		return lrec.NewRecord(id, ConceptActor).
			Set("name", a.Name).Set("shows", strings.Join(titles, ", ")), true
	}
	if e, ok := w.evByID[id]; ok {
		return lrec.NewRecord(id, ConceptEvent).
			Set("name", e.Name).Set("city", e.City).
			Set("venue", e.Venue).Set("date", e.Date), true
	}
	return nil, false
}

// RestaurantsInCity returns the restaurants located in city, sorted by ID.
func (w *World) RestaurantsInCity(city string) []*Restaurant {
	var out []*Restaurant
	for _, r := range w.Restaurants {
		if r.City == city {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
