package webgen

import (
	"regexp"
	"testing"
)

// The streamed world's contract: plans are exact, the size distribution is
// heavy-tailed, hosts render through multiple template variants, the page
// mix spans domains, and everything is a pure function of the seed.

func streamWorld(t *testing.T, pages int) *StreamWorld {
	t.Helper()
	return NewStreamWorld(HeavyTailConfig(pages))
}

func TestStreamPlanMatchesEmission(t *testing.T) {
	w := streamWorld(t, 20000)
	if got := w.PlannedPages(); got < 19000 || got > 21500 {
		t.Fatalf("PlannedPages = %d, want within a few %% of 20000", got)
	}
	perSite := make(map[string]int)
	count := 0
	if err := w.EachPage(func(p *Page) error {
		count++
		perSite[p.Truth.Site]++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != w.PlannedPages() {
		t.Fatalf("emitted %d pages, planned %d", count, w.PlannedPages())
	}
	for _, pl := range w.Plans() {
		if perSite[pl.Host] != pl.Size {
			t.Errorf("site %s (%s): plan says %d pages, generator emitted %d",
				pl.Host, pl.Kind, pl.Size, perSite[pl.Host])
		}
	}
}

func TestStreamHeavyTailDistribution(t *testing.T) {
	w := streamWorld(t, 20000)
	plans := w.Plans()

	var aggPages, total, small, large int
	maxSite := 0
	for _, p := range plans {
		total += p.Size
		agg := p.Kind == SiteAggRestaurant || p.Kind == SiteAggHotel
		if agg {
			aggPages += p.Size
		}
		if p.Size > maxSite {
			maxSite = p.Size
		}
		if !agg {
			if p.Size < 5 || p.Size > 50 {
				t.Errorf("tail site %s has size %d outside [5,50]", p.Host, p.Size)
			}
			if p.Size <= 9 {
				small++
			}
			if p.Size >= 40 {
				large++
			}
		}
	}
	// A few huge aggregators carry roughly AggregatorShare of all pages.
	share := float64(aggPages) / float64(total)
	if share < 0.30 || share > 0.60 {
		t.Errorf("aggregator page share = %.2f, want near 0.45", share)
	}
	if maxSite < 1000 {
		t.Errorf("largest site has %d pages; want a corpus-dominating aggregator", maxSite)
	}
	// Power-law sanity: 5–9-page sites vastly outnumber 40–50-page sites.
	if small < 5*large {
		t.Errorf("tail not heavy: %d small sites vs %d large", small, large)
	}
}

var layoutRe = regexp.MustCompile(`layout-v([0-9]+)`)

func TestStreamTemplateVariantsPerHost(t *testing.T) {
	w := streamWorld(t, 20000)
	variants := make(map[string]map[string]bool) // host -> set of layout markers
	if err := w.EachPage(func(p *Page) error {
		for _, m := range layoutRe.FindAllStringSubmatch(p.HTML, -1) {
			set := variants[p.Truth.Site]
			if set == nil {
				set = make(map[string]bool)
				variants[p.Truth.Site] = set
			}
			set[m[1]] = true
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	multi := 0
	for _, pl := range w.Plans() {
		got := len(variants[pl.Host])
		if got > pl.Variants {
			t.Errorf("host %s renders %d layout variants, plan allows %d", pl.Host, got, pl.Variants)
		}
		// Large sites with >1 allowed variant should actually exercise >1.
		if pl.Variants > 1 && pl.Size >= 100 && got < 2 {
			t.Errorf("host %s (size %d, %d variants allowed) rendered only %d", pl.Host, pl.Size, pl.Variants, got)
		}
		if got > 1 {
			multi++
		}
	}
	if multi < 10 {
		t.Errorf("only %d hosts render multiple template variants; want per-site wrapper diversity", multi)
	}
}

func TestStreamCrossDomainMix(t *testing.T) {
	w := streamWorld(t, 20000)
	cats := make(map[string]int)
	if err := w.EachPage(func(p *Page) error {
		cats[p.Truth.Category]++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for _, cat := range []string{CatRestaurants, CatHotels, CatEvents} {
		if cats[cat] < 100 {
			t.Errorf("category %s has only %d pages; want a real cross-domain mix (got %v)", cat, cats[cat], cats)
		}
	}
}

func TestStreamDeterministic(t *testing.T) {
	w1 := streamWorld(t, 5000)
	w2 := streamWorld(t, 5000)
	var pages1 []*Page
	if err := w1.EachPage(func(p *Page) error { pages1 = append(pages1, p); return nil }); err != nil {
		t.Fatal(err)
	}
	i := 0
	err := w2.EachPage(func(p *Page) error {
		if i >= len(pages1) {
			t.Fatalf("second run emitted more than %d pages", len(pages1))
		}
		if p.URL != pages1[i].URL || p.HTML != pages1[i].HTML {
			t.Fatalf("page %d differs between runs: %s vs %s", i, p.URL, pages1[i].URL)
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != len(pages1) {
		t.Fatalf("second run emitted %d pages, first %d", i, len(pages1))
	}
}

func TestStreamFetchMatchesStream(t *testing.T) {
	w := streamWorld(t, 5000)
	// Sample every 97th page and check Fetch returns identical bytes.
	n := 0
	if err := w.EachPage(func(p *Page) error {
		n++
		if n%97 != 0 {
			return nil
		}
		html, err := w.Fetch(p.URL)
		if err != nil {
			t.Fatalf("Fetch(%s): %v", p.URL, err)
		}
		if html != p.HTML {
			t.Fatalf("Fetch(%s) differs from streamed page", p.URL)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Fetch("no-such-host.example/"); err == nil {
		t.Fatal("Fetch of unknown host should fail")
	}
	seeds := w.SeedURLs()
	if len(seeds) != len(w.Plans()) {
		t.Fatalf("SeedURLs returned %d, want %d", len(seeds), len(w.Plans()))
	}
}
