package webgen

// Word lists for deterministic entity-name synthesis. The lists are chosen
// so that generated names collide partially (shared tokens, chain names,
// near-duplicates) — the ambiguity that makes entity matching (§6) a real
// problem rather than string equality.

var restaurantFirst = []string{
	"Golden", "Blue", "Red", "Jade", "Silver", "Rustic", "Little", "Grand",
	"Royal", "Happy", "Lucky", "Spicy", "Sweet", "Urban", "Old", "New",
	"Crispy", "Smoky", "Green", "Sunny", "Coastal", "Twin", "Iron", "Copper",
}

var restaurantSecond = []string{
	"Dragon", "Lantern", "Agave", "Olive", "Bamboo", "Pepper", "Basil",
	"Harvest", "Anchor", "Orchid", "Maple", "Fig", "Saffron", "Ginger",
	"Lotus", "Barrel", "Hearth", "Garden", "Palm", "Cedar", "Willow",
	"Falcon", "Tortilla", "Noodle",
}

var restaurantSuffix = []string{
	"Grill", "Bistro", "Kitchen", "House", "Cafe", "Tavern", "Diner",
	"Eatery", "Cantina", "Trattoria", "Brasserie", "Steakhouse", "Taqueria",
	"Pizzeria", "Noodle Bar", "Sushi Bar", "BBQ", "Bakery", "Chophouse",
	"Tapas",
}

// Cuisines returns the cuisine vocabulary of the synthetic world, for use
// as a gazetteer in extraction and query parsing.
func Cuisines() []string {
	out := make([]string, len(cuisines))
	copy(out, cuisines)
	return out
}

var cuisines = []string{
	"italian", "mexican", "chinese", "japanese", "indian", "thai",
	"american", "french", "mediterranean", "korean", "vietnamese", "greek",
	"spanish", "bbq", "seafood", "vegetarian",
}

// menuItems maps cuisine -> dish names used to populate menus; overlapping
// dishes across cuisines give the bootstrapping extractor honest ambiguity.
var menuItems = map[string][]string{
	"italian": {"margherita pizza", "spaghetti carbonara", "lasagna",
		"risotto ai funghi", "tiramisu", "bruschetta", "gnocchi", "penne arrabbiata",
		"osso buco", "panna cotta", "caprese salad", "minestrone"},
	"mexican": {"carne asada tacos", "chicken enchiladas", "guacamole",
		"pozole", "chiles rellenos", "salsa verde", "carnitas burrito",
		"quesadilla", "tamales", "elote", "flan", "tortilla soup"},
	"chinese": {"kung pao chicken", "mapo tofu", "dumplings", "chow mein",
		"hot and sour soup", "peking duck", "fried rice", "dan dan noodles",
		"spring rolls", "char siu", "egg drop soup", "scallion pancake"},
	"japanese": {"salmon nigiri", "tonkotsu ramen", "chicken katsu",
		"miso soup", "tempura udon", "california roll", "gyoza", "unagi don",
		"edamame", "matcha ice cream", "okonomiyaki", "yakitori"},
	"indian": {"butter chicken", "palak paneer", "lamb vindaloo", "samosa",
		"chana masala", "garlic naan", "biryani", "tandoori chicken",
		"dal makhani", "gulab jamun", "aloo gobi", "mango lassi"},
	"thai": {"pad thai", "green curry", "tom yum soup", "papaya salad",
		"massaman curry", "basil fried rice", "satay skewers", "larb",
		"mango sticky rice", "drunken noodles", "tom kha gai", "spring rolls"},
	"american": {"cheeseburger", "buffalo wings", "mac and cheese",
		"pulled pork sandwich", "caesar salad", "clam chowder", "ribeye steak",
		"apple pie", "fried chicken", "cobb salad", "meatloaf", "milkshake"},
	"french": {"coq au vin", "french onion soup", "duck confit", "ratatouille",
		"croque monsieur", "beef bourguignon", "creme brulee", "quiche lorraine",
		"escargots", "souffle", "nicoise salad", "tarte tatin"},
	"mediterranean": {"hummus", "falafel wrap", "shakshuka", "lamb kebab",
		"tabbouleh", "dolmas", "baba ganoush", "greek salad", "baklava",
		"shawarma plate", "spanakopita", "grilled halloumi"},
	"korean": {"bibimbap", "bulgogi", "kimchi stew", "japchae",
		"korean fried chicken", "tteokbokki", "galbi", "soondubu jjigae",
		"kimbap", "pajeon", "samgyeopsal", "naengmyeon"},
	"vietnamese": {"pho bo", "banh mi", "spring rolls", "bun cha",
		"com tam", "banh xeo", "vermicelli bowl", "ca phe sua da",
		"goi cuon", "hu tieu", "lemongrass chicken", "che ba mau"},
	"greek": {"moussaka", "gyro plate", "souvlaki", "greek salad",
		"spanakopita", "dolmades", "tzatziki", "pastitsio", "saganaki",
		"loukoumades", "avgolemono soup", "grilled octopus"},
	"spanish": {"paella valenciana", "patatas bravas", "gambas al ajillo",
		"tortilla espanola", "jamon iberico", "churros", "gazpacho",
		"croquetas", "pulpo a la gallega", "albondigas", "pan con tomate", "sangria"},
	"bbq": {"brisket plate", "pulled pork", "baby back ribs", "smoked sausage",
		"burnt ends", "cornbread", "coleslaw", "mac and cheese",
		"smoked turkey", "banana pudding", "baked beans", "rib tips"},
	"seafood": {"grilled salmon", "fish and chips", "lobster roll",
		"shrimp scampi", "oysters on the half shell", "crab cakes", "cioppino",
		"clam chowder", "seared ahi tuna", "fried calamari", "mussels marinara", "swordfish steak"},
	"vegetarian": {"veggie burger", "buddha bowl", "eggplant parmesan",
		"lentil soup", "stuffed peppers", "quinoa salad", "mushroom risotto",
		"falafel plate", "tofu stir fry", "kale caesar", "sweet potato tacos", "ratatouille"},
}

// cities are the localities of the synthetic world, with zip prefixes; all
// restaurants and city portals live here.
var cityNames = []string{
	"Cupertino", "San Jose", "Santa Clara", "Sunnyvale", "Mountain View",
	"Palo Alto", "Los Gatos", "Campbell", "Milpitas", "Saratoga",
}

var cityZipBase = map[string]int{
	"Cupertino": 95014, "San Jose": 95112, "Santa Clara": 95050,
	"Sunnyvale": 94085, "Mountain View": 94040, "Palo Alto": 94301,
	"Los Gatos": 95030, "Campbell": 95008, "Milpitas": 95035,
	"Saratoga": 95070,
}

var streetNames = []string{
	"Main St", "1st Ave", "Stevens Creek Blvd", "El Camino Real",
	"Castro St", "Winchester Blvd", "Homestead Rd", "De Anza Blvd",
	"Lincoln Ave", "University Ave", "Bascom Ave", "Saratoga Ave",
	"Park Ave", "Market St", "Almaden Expy", "Blossom Hill Rd",
}

var personFirst = []string{
	"Alice", "Bhaskar", "Carlos", "Diana", "Elena", "Feng", "Grace",
	"Hiro", "Irene", "Jorge", "Kavita", "Liam", "Mei", "Nikhil", "Olga",
	"Priya", "Quentin", "Rosa", "Sanjay", "Tara", "Uma", "Victor",
	"Wei", "Ximena", "Yusuf", "Zoe",
}

var personLast = []string{
	"Anderson", "Bhatt", "Chen", "Dasgupta", "Evans", "Fernandez",
	"Gupta", "Huang", "Ivanova", "Johnson", "Kumar", "Li", "Martinez",
	"Nakamura", "Olsen", "Patel", "Qureshi", "Rodriguez", "Singh",
	"Tanaka", "Ueda", "Varga", "Wang", "Xu", "Yamamoto", "Zhang",
}

var affiliations = []string{
	"Bayshore University", "Valley Institute of Technology",
	"Pacific Research Labs", "Northgate College", "Almaden Research Center",
	"Foothill University", "Redwood Computing Institute", "Mission Bay University",
}

var paperTopicA = []string{
	"Scalable", "Probabilistic", "Incremental", "Distributed", "Adaptive",
	"Robust", "Efficient", "Unsupervised", "Collective", "Declarative",
}

var paperTopicB = []string{
	"Entity Resolution", "Wrapper Induction", "Query Processing",
	"Information Extraction", "Schema Matching", "Record Linkage",
	"Index Maintenance", "Data Integration", "View Maintenance",
	"Concept Discovery", "Web Search", "Log Analysis",
}

var paperTopicC = []string{
	"over Evolving Web Data", "for the Deep Web", "at Scale",
	"with Minimal Supervision", "in Dataspace Systems", "using Domain Knowledge",
	"for Vertical Search", "with Lineage Tracking", "under Uncertainty",
	"via Bootstrapping",
}

var venues = []string{
	"PODS", "SIGMOD", "VLDB", "ICDE", "KDD", "WWW", "WSDM", "CIDR",
}

var cameraBrands = []string{"Nicon", "Canox", "Pentar", "Olympia", "Sonar"}

var cameraAccessories = []string{
	"battery pack", "camera bag", "tripod", "memory card", "lens hood",
	"remote shutter", "cleaning kit", "strap",
}

var tvShowWords = []string{
	"Deadwood Creek", "Kings Road", "Harbor Lights", "The Precinct",
	"Silver Canyon", "Night Dispatch", "The Annex", "Foggy Shore",
	"Granite Falls", "The Residency", "Paper Trail", "Low Orbit",
}

var eventKinds = []string{
	"farmers market", "jazz concert", "food festival", "art walk",
	"5k fun run", "book fair", "wine tasting", "comedy night",
	"tech meetup", "holiday parade",
}

var hotelWords = []string{
	"Grand Plaza Hotel", "Parkside Inn", "The Meridian", "Bayview Suites",
	"Orchard House Hotel", "The Alameda", "Summit Lodge", "Courtyard Nine",
}

var attractionWords = []string{
	"history museum", "rose garden", "science center", "observation tower",
	"railroad park", "art gallery", "botanical garden", "aquarium",
}

var reviewPhrasesPositive = []string{
	"absolutely loved the", "cannot stop thinking about the",
	"best %s I have had in years", "the %s alone is worth the trip",
	"generous portions and friendly staff", "hidden gem of the neighborhood",
	"the service was quick and warm", "perfect spot for a date night",
}

var reviewPhrasesNegative = []string{
	"was disappointed by the", "waited forty minutes for the",
	"the %s arrived cold", "overpriced for what you get",
	"service was slow on a weeknight", "parking is a nightmare",
}
