package webgen

import (
	"fmt"
	"math/rand"
	"strconv"
)

// Site generators for the streamed heavy-tail world. Each generator emits
// exactly plan.Size pages for its site, derived purely from (seed, plan) —
// calling it twice yields byte-identical pages. Layout variant selection is
// per page within a host (hash of the path modulo the host's Variants),
// which is what produces Dalvi et al.'s within-site wrapper diversity; the
// variant is visible in the markup as a layout-v<N> class so distribution
// tests (and wrapper tooling) can count variants per host.

func (w *StreamWorld) genSite(p *SitePlan) []*Page {
	switch p.Kind {
	case SiteAggRestaurant:
		return w.genAggRest(p)
	case SiteAggHotel:
		return w.genAggHotel(p)
	case SiteRestHome:
		return w.genRestHome(p)
	case SiteHotel:
		return w.genHotelSite(p)
	case SiteEventCal:
		return w.genEventCal(p)
	case SitePortal:
		return w.genPortal(p)
	default:
		return w.genBlog(p)
	}
}

// sitePages accumulates one site's pages.
type sitePages struct {
	host  string
	pages []*Page
}

func (sp *sitePages) add(path, html string, truth PageTruth) {
	truth.Site = sp.host
	sp.pages = append(sp.pages, &Page{URL: sp.host + path, HTML: html, Truth: truth})
}

// variantOf picks the template variant for a page of this host.
func variantOf(p *SitePlan, path string) int {
	return permille(p.Host, "variant:"+path, p.Index) % p.Variants
}

// vwrap tags body markup with its layout-variant class.
func vwrap(v int, body string) string {
	return fmt.Sprintf(`<div class="layout-v%d">`, v) + body + "</div>"
}

// addBoilerplate emits the /about, /contact, /help trio (3 pages).
func (sp *sitePages) addBoilerplate(nav [][2]string) {
	for _, path := range []string{"/about", "/contact", "/help"} {
		var b hb
		b.el("h1", "", titleCase(path[1:]))
		b.el("p", "", "Information about "+sp.host+", our editorial team, and how to reach us.")
		sp.add(path, pageShell(titleCase(path[1:]), sp.host, nav, b.String()),
			PageTruth{Kind: KindSiteIndex, Category: CatOther})
	}
}

func (w *StreamWorld) maxBiz() int {
	return w.Cfg.MaxAggregatorPages - w.Cfg.MaxAggregatorPages/w.Cfg.ListPageSize - 4
}

// --- restaurant aggregator ---

func (w *StreamWorld) genAggRest(p *SitePlan) []*Page {
	sp := &sitePages{host: p.Host}
	nav := stdNav(p.Host)
	nameVar := p.Index % 3
	phoneStyle := p.Index % 4
	ids := w.coveredEntities(p.Host, w.nRest, p.CovPermille, w.maxBiz())
	l := w.Cfg.ListPageSize

	// Root: links the paginated directory.
	nDirs := ceilDiv(len(ids), l)
	var root hb
	root.el("h1", "", "Find restaurants on "+p.Host)
	root.open("ul", `class="dir-index"`)
	for d := 0; d < nDirs; d++ {
		root.open("li", "")
		root.a(p.Host+"/dir/"+strconv.Itoa(d), fmt.Sprintf("Directory page %d", d+1))
		root.close("li")
	}
	root.close("ul")
	sp.add("/", pageShell(p.Host, p.Host, nav, root.String()),
		PageTruth{Kind: KindSiteIndex, Category: CatOther})

	// Paginated directory listings: the repeated structure the list
	// extractor mines, each item anchoring a biz page.
	for d := 0; d < nDirs; d++ {
		lo, hi := d*l, (d+1)*l
		if hi > len(ids) {
			hi = len(ids)
		}
		v := variantOf(p, "/dir/"+strconv.Itoa(d))
		var h hb
		h.el("h1", "", fmt.Sprintf("Restaurants %d-%d", lo+1, hi))
		var entIDs []string
		if v%2 == 0 {
			h.open("ul", `class="results"`)
			for _, i := range ids[lo:hi] {
				r := w.restaurantAt(i)
				entIDs = append(entIDs, r.ID)
				h.open("li", `class="result"`)
				h.f(`<a class="name" href="%s">`, w.bizURL(p.Host, r, i))
				h.text(r.NameVariant(nameVar))
				h.close("a")
				h.el("span", `class="addr"`, r.Street)
				h.el("span", `class="zip"`, r.Zip)
				h.el("span", `class="phone"`, rephone(r.Phone, phoneStyle))
				h.close("li")
			}
			h.close("ul")
		} else {
			h.open("table", `class="results"`)
			h.open("tr", "")
			for _, th := range []string{"Restaurant", "Address", "Zip", "Phone"} {
				h.el("th", "", th)
			}
			h.close("tr")
			for _, i := range ids[lo:hi] {
				r := w.restaurantAt(i)
				entIDs = append(entIDs, r.ID)
				h.open("tr", `class="result-row"`)
				h.open("td", "")
				h.a(w.bizURL(p.Host, r, i), r.NameVariant(nameVar))
				h.close("td")
				h.el("td", "", r.Street)
				h.el("td", "", r.Zip)
				h.el("td", "", rephone(r.Phone, phoneStyle))
				h.close("tr")
			}
			h.close("table")
		}
		sp.add("/dir/"+strconv.Itoa(d),
			pageShell(fmt.Sprintf("Directory %d - %s", d+1, p.Host), p.Host, nav, vwrap(v, h.String())),
			PageTruth{Kind: KindCategory, Category: CatRestaurants, EntityIDs: entIDs})
	}

	// Biz detail pages.
	for _, i := range ids {
		r := w.restaurantAt(i)
		path := w.bizPath(r, i)
		v := variantOf(p, path)
		name := r.NameVariant(nameVar)
		phone := rephone(r.Phone, phoneStyle)
		body := renderBizVariant(v, name, r, phone)
		sp.add(path, pageShell(name+" - "+p.Host, p.Host, nav, vwrap(v, body)),
			PageTruth{Kind: KindBiz, Category: CatRestaurants, EntityIDs: []string{r.ID},
				Attrs: truthAttrs("name", name, "street", r.Street, "city", r.City,
					"zip", r.Zip, "phone", phone, "cuisine", r.Cuisine)})
	}

	sp.addBoilerplate(nav)
	return sp.pages
}

func (w *StreamWorld) bizPath(r *Restaurant, i int) string {
	return "/biz/" + slugify(r.Name) + "-" + strconv.Itoa(i)
}

func (w *StreamWorld) bizURL(host string, r *Restaurant, i int) string {
	return host + w.bizPath(r, i)
}

// renderBizVariant renders one restaurant detail page in one of five layout
// families. Every family exposes name (h1), street, city, zip, and phone —
// the recognizer evidence — through different markup.
func renderBizVariant(v int, name string, r *Restaurant, phone string) string {
	var h hb
	switch v % 5 {
	case 0: // card of classed spans
		h.open("div", `class="biz-card"`)
		h.el("h1", `class="biz-name"`, name)
		h.el("span", `class="rating"`, fmt.Sprintf("%.1f stars", r.Rating))
		h.open("div", `class="biz-info"`)
		h.el("span", `class="address"`, r.Street)
		h.raw(", ")
		h.el("span", `class="city"`, r.City)
		h.raw(", CA ")
		h.el("span", `class="zip"`, r.Zip)
		h.raw(" ")
		h.el("span", `class="phone"`, phone)
		h.raw(" ")
		h.el("span", `class="cuisine"`, titleCase(r.Cuisine))
		h.raw(" · ")
		h.el("span", `class="price"`, r.Price)
		h.close("div")
		h.el("p", `class="blurb"`, "Known for "+r.Menu[0]+" and "+r.Menu[1%len(r.Menu)]+".")
		h.close("div")
	case 1: // property table
		h.el("h1", "", name)
		h.open("table", `class="detail"`)
		row := func(k, val string) {
			h.open("tr", "")
			h.el("th", "", k)
			h.el("td", "", val)
			h.close("tr")
		}
		row("Name", name)
		row("Address", fmt.Sprintf("%s, %s, CA %s", r.Street, r.City, r.Zip))
		row("Phone", phone)
		row("Cuisine", titleCase(r.Cuisine))
		row("Hours", r.Hours)
		row("Price", r.Price)
		h.close("table")
	case 2: // definition list
		h.el("h1", "", name)
		h.open("dl", `class="listing"`)
		pair := func(k, val string) {
			h.el("dt", "", k)
			h.el("dd", "", val)
		}
		pair("Business", name)
		pair("Street", r.Street)
		pair("City", r.City+", CA")
		pair("Zip", r.Zip)
		pair("Telephone", phone)
		pair("Category", titleCase(r.Cuisine)+" Restaurants")
		h.close("dl")
	case 3: // label/value grid
		h.el("h1", `class="hd"`, name)
		h.open("div", `class="spec-grid"`)
		cell := func(k, val string) {
			h.open("div", `class="spec"`)
			h.el("span", `class="label"`, k)
			h.el("span", `class="value"`, val)
			h.close("div")
		}
		cell("Phone", phone)
		cell("Street", r.Street)
		cell("City", r.City)
		cell("Zip", r.Zip)
		cell("Cuisine", titleCase(r.Cuisine))
		cell("Rating", fmt.Sprintf("%.1f stars", r.Rating))
		h.close("div")
	default: // prose
		h.el("h1", "", name)
		h.el("p", "", fmt.Sprintf(
			"%s serves %s classics at %s in %s, CA %s. Call %s to book a table. Hours: %s. Price range %s.",
			name, r.Cuisine, r.Street, r.City, r.Zip, phone, r.Hours, r.Price))
		h.el("p", "", "Regulars recommend the "+r.Menu[0]+".")
	}
	return h.String()
}

// --- hotel aggregator ---

func (w *StreamWorld) genAggHotel(p *SitePlan) []*Page {
	sp := &sitePages{host: p.Host}
	nav := stdNav(p.Host)
	phoneStyle := p.Index % 4
	ids := w.coveredEntities(p.Host, w.nHotel, p.CovPermille, w.maxBiz())
	l := w.Cfg.ListPageSize

	nDirs := ceilDiv(len(ids), l)
	var root hb
	root.el("h1", "", "Compare hotels on "+p.Host)
	root.open("ul", `class="dir-index"`)
	for d := 0; d < nDirs; d++ {
		root.open("li", "")
		root.a(p.Host+"/hotels/"+strconv.Itoa(d), fmt.Sprintf("Hotels page %d", d+1))
		root.close("li")
	}
	root.close("ul")
	sp.add("/", pageShell(p.Host, p.Host, nav, root.String()),
		PageTruth{Kind: KindSiteIndex, Category: CatOther})

	for d := 0; d < nDirs; d++ {
		lo, hi := d*l, (d+1)*l
		if hi > len(ids) {
			hi = len(ids)
		}
		v := variantOf(p, "/hotels/"+strconv.Itoa(d))
		var h hb
		h.el("h1", "", fmt.Sprintf("Hotels %d-%d", lo+1, hi))
		h.open("ul", `class="results"`)
		for _, i := range ids[lo:hi] {
			hot := w.hotelAt(i)
			h.open("li", `class="result"`)
			h.f(`<a class="name" href="%s">`, p.Host+w.hotelPath(hot, i))
			h.text(hot.Name)
			h.close("a")
			h.el("span", `class="addr"`, hot.Street)
			h.el("span", `class="city"`, hot.City)
			h.el("span", `class="phone"`, rephone(hot.Phone, phoneStyle))
			h.close("li")
		}
		h.close("ul")
		sp.add("/hotels/"+strconv.Itoa(d),
			pageShell(fmt.Sprintf("Hotels %d - %s", d+1, p.Host), p.Host, nav, vwrap(v, h.String())),
			PageTruth{Kind: KindCategory, Category: CatHotels})
	}

	for _, i := range ids {
		hot := w.hotelAt(i)
		path := w.hotelPath(hot, i)
		v := variantOf(p, path)
		phone := rephone(hot.Phone, phoneStyle)
		var h hb
		h.el("h1", "", hot.Name)
		if v%2 == 0 {
			h.open("dl", `class="listing"`)
			pair := func(k, val string) {
				h.el("dt", "", k)
				h.el("dd", "", val)
			}
			pair("Name", hot.Name)
			pair("Street", hot.Street)
			pair("City", hot.City+", CA")
			pair("Telephone", phone)
			h.close("dl")
		} else {
			h.el("p", "", fmt.Sprintf(
				"%s welcomes guests at %s in %s. Reservations: %s.",
				hot.Name, hot.Street, hot.City, phone))
		}
		sp.add(path, pageShell(hot.Name+" - "+p.Host, p.Host, nav, vwrap(v, h.String())),
			PageTruth{Kind: KindBiz, Category: CatHotels, EntityIDs: []string{hot.ID},
				Attrs: truthAttrs("name", hot.Name, "street", hot.Street,
					"city", hot.City, "phone", phone)})
	}

	sp.addBoilerplate(nav)
	return sp.pages
}

func (w *StreamWorld) hotelPath(h *Hotel, i int) string {
	return "/h/" + slugify(h.Name) + "-" + strconv.Itoa(i)
}

// --- official restaurant site (tail) ---

func (w *StreamWorld) genRestHome(p *SitePlan) []*Page {
	sp := &sitePages{host: p.Host}
	r := w.restaurantAt(p.Lo)
	rng := rand.New(rand.NewSource(w.mix("resthome", p.Lo)))
	nav := [][2]string{
		{p.Host + "/", "Home"},
		{p.Host + "/menu", "Menu"},
		{p.Host + "/location", "Location & Directions"},
	}

	var h hb
	h.el("h1", `class="name"`, r.Name)
	h.el("p", `class="tagline"`, fmt.Sprintf(
		"Family-owned %s restaurant in %s. Try our famous %s!",
		r.Cuisine, r.City, r.Menu[0]))
	h.open("div", `class="contact"`)
	h.el("span", `class="street"`, r.Street)
	h.raw(" · ")
	h.el("span", `class="citystate"`, fmt.Sprintf("%s, CA %s", r.City, r.Zip))
	h.raw(" · ")
	h.el("span", `class="tel"`, r.Phone)
	h.close("div")
	h.el("p", `class="hours"`, "Hours of operation: "+r.Hours)
	sp.add("/", pageShell(r.Name, p.Host, nav, h.String()),
		PageTruth{Kind: KindHome, Category: CatRestaurants, EntityIDs: []string{r.ID},
			Attrs: truthAttrs("name", r.Name, "street", r.Street, "city", r.City,
				"zip", r.Zip, "phone", r.Phone, "hours", r.Hours)})

	v := variantOf(p, "/menu")
	var m hb
	m.el("h1", "", r.Name+" Menu")
	m.open("ul", `class="menu"`)
	for _, dish := range r.Menu {
		price := fmt.Sprintf("$%d.%02d", 7+rng.Intn(18), 25*rng.Intn(4))
		m.open("li", `class="dish"`)
		m.el("span", `class="dish-name"`, titleCase(dish))
		m.el("span", `class="dish-price"`, price)
		m.close("li")
	}
	m.close("ul")
	sp.add("/menu", pageShell(r.Name+" Menu", p.Host, nav, vwrap(v, m.String())),
		PageTruth{Kind: KindMenu, Category: CatRestaurants, EntityIDs: []string{r.ID}})

	var loc hb
	loc.el("h1", "", "Find "+r.Name)
	loc.el("p", `class="address"`, r.Address())
	loc.el("p", `class="phone"`, "Call us: "+r.Phone)
	sp.add("/location", pageShell("Location - "+r.Name, p.Host, nav, loc.String()),
		PageTruth{Kind: KindLocation, Category: CatRestaurants, EntityIDs: []string{r.ID},
			Attrs: truthAttrs("street", r.Street, "city", r.City, "zip", r.Zip, "phone", r.Phone)})

	// Filler: press/news posts mentioning the restaurant and its dishes —
	// text-link fodder, no structured evidence.
	for j := 0; j < p.Size-3; j++ {
		dish := r.Menu[(j+1)%len(r.Menu)]
		pv := variantOf(p, "/press-"+strconv.Itoa(j))
		var b hb
		b.el("h1", "", fmt.Sprintf("News %d from %s", j+1, r.Name))
		b.el("p", "", fmt.Sprintf(
			"This week at %s in %s: our chef's take on %s, plus seasonal specials all weekend.",
			r.Name, r.City, dish))
		sp.add("/press-"+strconv.Itoa(j),
			pageShell(fmt.Sprintf("News %d - %s", j+1, r.Name), p.Host, nav, vwrap(pv, b.String())),
			PageTruth{Kind: KindReviewPost, Category: CatRestaurants, EntityIDs: []string{r.ID}})
	}
	return sp.pages
}

// --- official hotel site (tail) ---

func (w *StreamWorld) genHotelSite(p *SitePlan) []*Page {
	sp := &sitePages{host: p.Host}
	hot := w.hotelAt(p.Lo)
	nav := [][2]string{
		{p.Host + "/", "Home"},
		{p.Host + "/rooms", "Rooms"},
		{p.Host + "/rates", "Rates"},
		{p.Host + "/location", "Location"},
	}

	var h hb
	h.el("h1", `class="name"`, hot.Name)
	h.el("p", "", fmt.Sprintf("%s offers comfortable rooms at %s in %s. Reservations: %s.",
		hot.Name, hot.Street, hot.City, hot.Phone))
	sp.add("/", pageShell(hot.Name, p.Host, nav, h.String()),
		PageTruth{Kind: KindHome, Category: CatHotels, EntityIDs: []string{hot.ID},
			Attrs: truthAttrs("name", hot.Name, "street", hot.Street,
				"city", hot.City, "phone", hot.Phone)})

	rng := rand.New(rand.NewSource(w.mix("hotelsite", p.Lo)))
	var rooms hb
	rooms.el("h1", "", "Rooms at "+hot.Name)
	rooms.open("ul", `class="rooms"`)
	for _, kind := range []string{"Standard Queen", "Double Double", "King Suite"} {
		rooms.open("li", `class="room"`)
		rooms.el("span", `class="room-name"`, kind)
		rooms.el("span", `class="room-rate"`, fmt.Sprintf("$%d.00", 89+10*rng.Intn(12)))
		rooms.close("li")
	}
	rooms.close("ul")
	sp.add("/rooms", pageShell("Rooms - "+hot.Name, p.Host, nav, rooms.String()),
		PageTruth{Kind: KindPortalLeaf, Category: CatHotels, EntityIDs: []string{hot.ID}})

	var rates hb
	rates.el("h1", "", "Rates and Policies")
	rates.el("p", "", fmt.Sprintf("Nightly rates from $%d.00. Call %s for group bookings.",
		89+10*rng.Intn(8), hot.Phone))
	sp.add("/rates", pageShell("Rates - "+hot.Name, p.Host, nav, rates.String()),
		PageTruth{Kind: KindPortalLeaf, Category: CatHotels, EntityIDs: []string{hot.ID}})

	var loc hb
	loc.el("h1", "", "Find "+hot.Name)
	loc.el("p", `class="address"`, fmt.Sprintf("%s, %s, CA", hot.Street, hot.City))
	loc.el("p", `class="phone"`, "Front desk: "+hot.Phone)
	sp.add("/location", pageShell("Location - "+hot.Name, p.Host, nav, loc.String()),
		PageTruth{Kind: KindLocation, Category: CatHotels, EntityIDs: []string{hot.ID},
			Attrs: truthAttrs("street", hot.Street, "city", hot.City, "phone", hot.Phone)})

	for j := 0; j < p.Size-4; j++ {
		pv := variantOf(p, "/deals-"+strconv.Itoa(j))
		var b hb
		b.el("h1", "", fmt.Sprintf("Special offer %d", j+1))
		b.el("p", "", fmt.Sprintf("Stay two nights at %s in %s and save. Mention offer %d when booking.",
			hot.Name, hot.City, j+1))
		sp.add("/deals-"+strconv.Itoa(j),
			pageShell(fmt.Sprintf("Offer %d - %s", j+1, hot.Name), p.Host, nav, vwrap(pv, b.String())),
			PageTruth{Kind: KindPortalLeaf, Category: CatHotels, EntityIDs: []string{hot.ID}})
	}
	return sp.pages
}

// --- event calendar site (tail) ---

func (w *StreamWorld) genEventCal(p *SitePlan) []*Page {
	sp := &sitePages{host: p.Host}
	nav := stdNav(p.Host)

	var root hb
	root.el("h1", "", "Upcoming events")
	root.open("ul", `class="calendar"`)
	for i := p.Lo; i < p.Hi; i++ {
		e := w.eventAt(i)
		root.open("li", `class="event"`)
		root.a(p.Host+w.eventPath(e, i), e.Name)
		root.el("span", `class="date"`, e.Date)
		root.close("li")
	}
	root.close("ul")
	sp.add("/", pageShell("Events - "+p.Host, p.Host, nav, root.String()),
		PageTruth{Kind: KindPortalIndex, Category: CatEvents})

	for i := p.Lo; i < p.Hi; i++ {
		e := w.eventAt(i)
		v := variantOf(p, w.eventPath(e, i))
		var h hb
		h.el("h1", "", e.Name)
		if v%2 == 0 {
			h.el("p", "", fmt.Sprintf("Join us for the %s at %s on %s.", e.Name, e.Venue, e.Date))
			h.el("p", `class="where"`, "Where: "+e.Venue+", "+e.City)
		} else {
			h.el("p", `class="when"`, "When: "+e.Date)
			h.el("p", `class="where"`, "Where: "+e.Venue+", "+e.City)
			h.el("p", "", "Gates open at noon and admission is free.")
		}
		sp.add(w.eventPath(e, i),
			pageShell(e.Name+" - "+p.Host, p.Host, nav, vwrap(v, h.String())),
			PageTruth{Kind: KindEvent, Category: CatEvents, EntityIDs: []string{e.ID},
				Attrs: truthAttrs("name", e.Name, "city", e.City, "venue", e.Venue, "date", e.Date)})
	}

	sp.addBoilerplate(nav)
	return sp.pages
}

func (w *StreamWorld) eventPath(e *Event, i int) string {
	return "/e/" + slugify(e.Name) + "-" + strconv.Itoa(i)
}

// --- metro portal (tail) ---

func (w *StreamWorld) genPortal(p *SitePlan) []*Page {
	sp := &sitePages{host: p.Host}
	nav := stdNav(p.Host)
	nLeaves := p.Size - 5
	voice := p.Index % 3

	type leafRef struct {
		path, title string
	}
	var refs []leafRef
	leafPaths := make([]string, nLeaves)
	for j := 0; j < nLeaves; j++ {
		leafPaths[j] = "/guide/entry-" + strconv.Itoa(j)
	}

	for j := 0; j < nLeaves; j++ {
		rng := rand.New(rand.NewSource(w.mix("portal-leaf", p.Index*100000+j)))
		v := variantOf(p, leafPaths[j])
		var b hb
		var title string
		var truth PageTruth
		switch j % 3 {
		case 0: // dining leaf
			r := w.restaurantAt(rng.Intn(w.nRest))
			title = r.Name
			b.el("h2", "", r.Name)
			b.el("p", "", fmt.Sprintf(diningVoice[voice], r.Name, r.Cuisine, r.Street, r.Phone, r.Menu[0]))
			truth = PageTruth{Kind: KindPortalLeaf, Category: CatRestaurants, EntityIDs: []string{r.ID}}
		case 1: // hotel leaf
			hot := w.hotelAt(rng.Intn(w.nHotel))
			title = hot.Name
			b.el("h2", "", hot.Name)
			b.el("p", "", fmt.Sprintf(hotelVoice[voice], hot.Name, hot.Street, hot.Phone))
			truth = PageTruth{Kind: KindPortalLeaf, Category: CatHotels, EntityIDs: []string{hot.ID}}
		default: // attraction filler
			title = titleCase(pick(rng, attractionWords))
			b.el("h2", "", title)
			b.el("p", "", fmt.Sprintf(attractionVoice[voice], title, "the metro area"))
			truth = PageTruth{Kind: KindPortalLeaf, Category: CatAttractions}
		}
		refs = append(refs, leafRef{leafPaths[j], title})
		sp.add(leafPaths[j], pageShell(title+" - "+p.Host, p.Host, nav, vwrap(v, b.String())), truth)
	}

	var idx hb
	idx.el("h1", "", "Metro guide")
	idx.open("ul", `class="dir-list"`)
	for _, ref := range refs {
		idx.open("li", "")
		idx.a(p.Host+ref.path, ref.title)
		idx.close("li")
	}
	idx.close("ul")
	sp.add("/guide/", pageShell("Guide - "+p.Host, p.Host, nav, idx.String()),
		PageTruth{Kind: KindPortalIndex, Category: CatOther})

	var root hb
	root.el("h1", "", "Welcome to "+p.Host)
	root.open("ul", `class="sections"`)
	root.open("li", "")
	root.a(p.Host+"/guide/", "Guide")
	root.close("li")
	root.close("ul")
	sp.add("/", pageShell(p.Host, p.Host, nav, root.String()),
		PageTruth{Kind: KindPortalIndex, Category: CatOther})

	sp.addBoilerplate(nav)
	return sp.pages
}

// --- review blog (tail) ---

func (w *StreamWorld) genBlog(p *SitePlan) []*Page {
	sp := &sitePages{host: p.Host}
	nav := stdNav(p.Host)
	nPosts := p.Size - 4

	var root hb
	root.el("h1", "", p.Host)
	root.open("ul", `class="posts"`)
	for j := 0; j < nPosts; j++ {
		root.open("li", "")
		root.a(p.Host+"/post/"+strconv.Itoa(j), fmt.Sprintf("Dinner notes %d", j+1))
		root.close("li")
	}
	root.close("ul")
	sp.add("/", pageShell(p.Host, p.Host, nav, root.String()),
		PageTruth{Kind: KindSiteIndex, Category: CatOther})

	for j := 0; j < nPosts; j++ {
		rng := rand.New(rand.NewSource(w.mix("blogpost", p.Index*10000+j)))
		r := w.restaurantAt(rng.Intn(w.nRest))
		v := variantOf(p, "/post/"+strconv.Itoa(j))
		mention := r.NameVariant(rng.Intn(3))
		dish := r.Menu[rng.Intn(len(r.Menu))]
		dish2 := r.Menu[rng.Intn(len(r.Menu))]
		title := "Dinner notes: " + mention
		var b hb
		b.el("h1", `class="post-title"`, title)
		b.el("p", "", fmt.Sprintf(
			"Stopped by %s in %s last week. The %s was outstanding and the %s is arguably the best %s in %s.",
			mention, r.City, dish, dish2, dish2, r.City))
		sp.add("/post/"+strconv.Itoa(j),
			pageShell(title, p.Host, nav, vwrap(v, b.String())),
			PageTruth{Kind: KindReviewPost, Category: CatOther, EntityIDs: []string{r.ID}})
	}

	sp.addBoilerplate(nav)
	return sp.pages
}
