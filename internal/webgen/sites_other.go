package webgen

import (
	"fmt"
	"sort"
	"strings"
)

// Hosts of the non-local-domain sites.
const (
	ScholarHost   = "scholarhub.example"
	ShopHost      = "shopfinder.example"
	CamReviewHost = "camreview.example"
	MediaHost     = "screenfile.example"
	TVNewsHost    = "tvdaily.example"
)

// citationStyle renders a paper citation string in one of the formats real
// publication lists use; the sequence tagger (§4.1 CRF baseline) must
// segment these into title/venue/year/authors.
func (w *World) citationStyle(p *Paper, style int) string {
	names := make([]string, len(p.AuthorIDs))
	for i, aid := range p.AuthorIDs {
		a := w.authByID[aid]
		switch style % 3 {
		case 1:
			parts := strings.Fields(a.Name)
			names[i] = parts[0][:1] + ". " + parts[len(parts)-1]
		default:
			names[i] = a.Name
		}
	}
	authors := strings.Join(names, ", ")
	switch style % 3 {
	case 1:
		return fmt.Sprintf("%s. %s. In Proceedings of %s, %d.", authors, p.Title, p.Venue, p.Year)
	case 2:
		return fmt.Sprintf("%s (%d). %s. %s.", authors, p.Year, p.Title, p.Venue)
	default:
		return fmt.Sprintf("%s. %s. %s %d.", authors, p.Title, p.Venue, p.Year)
	}
}

// PaperURL returns the scholarhub detail page URL for a paper.
func PaperURL(p *Paper) string { return ScholarHost + "/paper/" + slugify(p.Title) }

// AuthorHubURL returns the scholarhub profile URL for an author.
func AuthorHubURL(a *Author) string { return ScholarHost + "/author/" + slugify(a.Name) }

func (w *World) buildAcademicSites() {
	// scholarhub: the academic aggregator (a DBLife/DBLP stand-in).
	hub := w.addSite(ScholarHost, "scholar")
	nav := stdNav(ScholarHost)
	for _, p := range w.Papers {
		var h hb
		h.el("h1", `class="paper-title"`, p.Title)
		h.open("div", `class="meta"`)
		h.el("span", `class="venue"`, p.Venue)
		h.el("span", `class="year"`, fmt.Sprintf("%d", p.Year))
		h.close("div")
		h.open("ul", `class="authors"`)
		for _, aid := range p.AuthorIDs {
			a := w.authByID[aid]
			h.open("li", `class="author"`)
			h.a(AuthorHubURL(a), a.Name)
			h.close("li")
		}
		h.close("ul")
		w.addPage(hub, "/paper/"+slugify(p.Title),
			pageShell(p.Title, ScholarHost, nav, h.String()),
			PageTruth{Kind: KindPaper, Category: CatOther, EntityIDs: []string{p.ID},
				Attrs: truthAttrs("title", p.Title, "venue", p.Venue,
					"year", fmt.Sprintf("%d", p.Year))})
	}
	for _, a := range w.Authors {
		var h hb
		h.el("h1", `class="author-name"`, a.Name)
		h.el("p", `class="affiliation"`, a.Affiliation)
		h.open("ul", `class="pubs"`)
		ids := []string{a.ID}
		for _, pid := range a.PaperIDs {
			p := w.papByID[pid]
			ids = append(ids, p.ID)
			h.open("li", `class="pub"`)
			h.a(PaperURL(p), p.Title)
			h.el("span", `class="pub-venue"`, p.Venue)
			h.el("span", `class="pub-year"`, fmt.Sprintf("%d", p.Year))
			h.close("li")
		}
		h.close("ul")
		w.addPage(hub, "/author/"+slugify(a.Name),
			pageShell(a.Name, ScholarHost, nav, h.String()),
			PageTruth{Kind: KindAuthorHome, Category: CatOther, EntityIDs: ids,
				Attrs: truthAttrs("name", a.Name, "affiliation", a.Affiliation)})
	}
	// Venue year indexes.
	byVenueYear := map[string][]*Paper{}
	for _, p := range w.Papers {
		k := fmt.Sprintf("%s-%d", p.Venue, p.Year)
		byVenueYear[k] = append(byVenueYear[k], p)
	}
	venueKeys := make([]string, 0, len(byVenueYear))
	for k := range byVenueYear {
		venueKeys = append(venueKeys, k)
	}
	sort.Strings(venueKeys)
	for _, k := range venueKeys {
		ps := byVenueYear[k]
		var h hb
		h.el("h1", "", strings.ToUpper(k)+" accepted papers")
		h.open("ul", `class="venue-list"`)
		var ids []string
		for _, p := range ps {
			ids = append(ids, p.ID)
			h.open("li", "")
			h.a(PaperURL(p), p.Title)
			h.close("li")
		}
		h.close("ul")
		w.addPage(hub, "/venue/"+slugify(k),
			pageShell(k, ScholarHost, nav, h.String()),
			PageTruth{Kind: KindVenueIndex, Category: CatOther, EntityIDs: ids})
	}

	// Personal homepages, one site per affiliation, one page per author.
	// Each affiliation uses its own citation style — cross-site format
	// diversity for the sequence tagger.
	byAffil := map[string][]*Author{}
	for _, a := range w.Authors {
		byAffil[a.Affiliation] = append(byAffil[a.Affiliation], a)
	}
	styleOf := map[string]int{}
	for i, affil := range affiliations {
		styleOf[affil] = i
	}
	for _, affil := range affiliations {
		as := byAffil[affil]
		if len(as) == 0 {
			continue
		}
		host := "people." + slugify(affil) + ".example"
		site := w.addSite(host, fmt.Sprintf("homepage-style-%d", styleOf[affil]%3))
		for _, a := range as {
			var h hb
			h.el("h1", "", a.Name)
			h.el("p", `class="bio"`, fmt.Sprintf(
				"I am a researcher at %s working on data management and web information extraction.", affil))
			h.el("h2", "", "Publications")
			h.open("ul", `class="publications"`)
			ids := []string{a.ID}
			for _, pid := range a.PaperIDs {
				p := w.papByID[pid]
				ids = append(ids, p.ID)
				h.open("li", `class="cite"`)
				h.text(w.citationStyle(p, styleOf[affil]))
				h.close("li")
			}
			h.close("ul")
			w.addPage(site, "/~"+slugify(a.Name),
				pageShell(a.Name, host, stdNav(host), h.String()),
				PageTruth{Kind: KindAuthorHome, Category: CatOther, EntityIDs: ids,
					Attrs: truthAttrs("name", a.Name, "affiliation", affil)})
		}
	}
}

// ProductURL returns the shopfinder detail page URL for a product.
func ProductURL(p *Product) string { return ShopHost + "/p/" + slugify(p.Name) }

func (w *World) buildShoppingSites() {
	shop := w.addSite(ShopHost, "shop")
	nav := stdNav(ShopHost)
	var cameras, accessories []*Product
	for _, p := range w.Products {
		if p.Kind == "camera" {
			cameras = append(cameras, p)
		} else {
			accessories = append(accessories, p)
		}
	}
	listPage := func(path, title string, ps []*Product) {
		var h hb
		h.el("h1", "", title)
		h.open("table", `class="catalog"`)
		h.open("tr", "")
		h.el("th", "", "Product")
		h.el("th", "", "Price")
		h.close("tr")
		var ids []string
		for _, p := range ps {
			ids = append(ids, p.ID)
			h.open("tr", `class="item"`)
			h.open("td", "")
			h.a(ProductURL(p), p.Name)
			h.close("td")
			h.el("td", `class="price"`, p.Price)
			h.close("tr")
		}
		h.close("table")
		w.addPage(shop, path, pageShell(title, ShopHost, nav, h.String()),
			PageTruth{Kind: KindProductList, Category: CatOther, EntityIDs: ids})
	}
	listPage("/cameras", "Digital Cameras", cameras)
	listPage("/accessories", "Camera Accessories", accessories)

	accOf := map[string][]*Product{}
	for _, p := range accessories {
		accOf[p.AccessoryOf] = append(accOf[p.AccessoryOf], p)
	}
	for _, p := range w.Products {
		var h hb
		h.el("h1", `class="product-name"`, p.Name)
		h.open("table", `class="specs"`)
		row := func(k, v string) {
			h.open("tr", "")
			h.el("th", "", k)
			h.el("td", "", v)
			h.close("tr")
		}
		row("Brand", p.Brand)
		row("Model", p.Model)
		row("Price", p.Price)
		if p.Megapixels > 0 {
			row("Resolution", fmt.Sprintf("%.0f megapixels", p.Megapixels))
		}
		h.close("table")
		if also := accOf[p.ID]; len(also) > 0 {
			h.el("h2", "", "Customers also bought")
			h.open("ul", `class="also-bought"`)
			for _, acc := range also {
				h.open("li", "")
				h.a(ProductURL(acc), acc.Name)
				h.close("li")
			}
			h.close("ul")
		}
		w.addPage(shop, "/p/"+slugify(p.Name),
			pageShell(p.Name, ShopHost, nav, h.String()),
			PageTruth{Kind: KindProduct, Category: CatOther, EntityIDs: []string{p.ID},
				Attrs: truthAttrs("name", p.Name, "brand", p.Brand,
					"model", p.Model, "price", p.Price)})
	}

	// Camera review site (the dpreview.com stand-in).
	rev := w.addSite(CamReviewHost, "review")
	for _, p := range cameras {
		var h hb
		h.el("h1", "", p.Name+" Review")
		h.el("p", "", fmt.Sprintf(
			"We spent two weeks with the %s. At %s it delivers %.0f megapixel images that punch well above its price class. The %s remains the model to beat for enthusiasts.",
			p.Name, p.Price, p.Megapixels, p.Model))
		h.el("p", `class="verdict"`, fmt.Sprintf("Verdict: %d/10", 6+len(p.Model)%4))
		w.addPage(rev, "/review/"+slugify(p.Name),
			pageShell(p.Name+" Review", CamReviewHost, stdNav(CamReviewHost), h.String()),
			PageTruth{Kind: KindProductRev, Category: CatOther, EntityIDs: []string{p.ID}})
	}
}

// ShowURL returns the media-site page URL for a show.
func ShowURL(s *Show) string { return MediaHost + "/title/" + slugify(s.Title) }

// ActorURL returns the media-site page URL for an actor.
func ActorURL(a *Actor) string { return MediaHost + "/name/" + slugify(a.Name) }

func (w *World) buildMediaSites() {
	media := w.addSite(MediaHost, "media")
	nav := stdNav(MediaHost)
	for _, s := range w.Shows {
		var h hb
		h.el("h1", `class="show-title"`, s.Title)
		status := "running"
		if s.Ended {
			status = "ended"
		}
		h.el("p", `class="years"`, s.Years+" ("+status+")")
		h.el("h2", "", "Cast")
		h.open("ul", `class="cast"`)
		ids := []string{s.ID}
		for _, aid := range s.ActorIDs {
			a := w.actByID[aid]
			ids = append(ids, a.ID)
			h.open("li", `class="cast-member"`)
			h.a(ActorURL(a), a.Name)
			h.close("li")
		}
		h.close("ul")
		w.addPage(media, "/title/"+slugify(s.Title),
			pageShell(s.Title, MediaHost, nav, h.String()),
			PageTruth{Kind: KindShow, Category: CatOther, EntityIDs: ids,
				Attrs: truthAttrs("title", s.Title, "years", s.Years, "status", status)})
	}
	for _, a := range w.Actors {
		if len(a.ShowIDs) == 0 {
			continue
		}
		var h hb
		h.el("h1", `class="actor-name"`, a.Name)
		h.el("h2", "", "Known for")
		h.open("ul", `class="filmography"`)
		ids := []string{a.ID}
		for _, sid := range a.ShowIDs {
			s := w.showByID[sid]
			ids = append(ids, s.ID)
			h.open("li", "")
			h.a(ShowURL(s), s.Title)
			h.close("li")
		}
		h.close("ul")
		w.addPage(media, "/name/"+slugify(a.Name),
			pageShell(a.Name, MediaHost, nav, h.String()),
			PageTruth{Kind: KindActor, Category: CatOther, EntityIDs: ids,
				Attrs: truthAttrs("name", a.Name)})
	}

	// Entertainment articles cross-linking shows and actors — the raw
	// material for semantic linking and the §5.3 browsing scenario.
	news := w.addSite(TVNewsHost, "articles")
	for i := 0; i < w.Cfg.TVArticles && len(w.Shows) > 0; i++ {
		s := w.Shows[w.rng.Intn(len(w.Shows))]
		var other *Show
		var shared *Actor
		// Find a second show sharing an actor, if any (the Deadwood pivot).
		for _, aid := range s.ActorIDs {
			a := w.actByID[aid]
			for _, sid2 := range a.ShowIDs {
				if sid2 != s.ID {
					other = w.showByID[sid2]
					shared = a
					break
				}
			}
			if other != nil {
				break
			}
		}
		var h hb
		title := fmt.Sprintf("Will %s be renewed?", s.Title)
		h.el("h1", `class="headline"`, title)
		ids := []string{s.ID}
		if shared != nil && other != nil {
			ids = append(ids, shared.ID, other.ID)
			h.open("p", "")
			h.text(fmt.Sprintf("The possible demise of %s has fans worried. ", s.Title))
			h.a(ActorURL(shared), shared.Name)
			h.text(fmt.Sprintf(", who also appeared in %s, told reporters the cast remains hopeful.", other.Title))
			h.close("p")
		} else if len(s.ActorIDs) > 0 {
			a := w.actByID[s.ActorIDs[0]]
			ids = append(ids, a.ID)
			h.open("p", "")
			h.text("Star ")
			h.a(ActorURL(a), a.Name)
			h.text(fmt.Sprintf(" said the %s writers are already at work on a new season.", s.Title))
			h.close("p")
		}
		w.addPage(news, fmt.Sprintf("/article/%d", i),
			pageShell(title, TVNewsHost, stdNav(TVNewsHost), h.String()),
			PageTruth{Kind: KindTVArticle, Category: CatOther, EntityIDs: ids})
	}
}
