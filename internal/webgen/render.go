package webgen

import (
	"fmt"
	"strings"

	"conceptweb/internal/htmlx"
)

// hb is a tiny HTML builder used by the site templates. Text is escaped;
// markup is emitted verbatim. It exists so the generators read like the
// templates they simulate.
type hb struct {
	b strings.Builder
}

func (h *hb) raw(s string)                 { h.b.WriteString(s) }
func (h *hb) text(s string)                { h.b.WriteString(htmlx.EscapeText(s)) }
func (h *hb) f(format string, args ...any) { fmt.Fprintf(&h.b, format, args...) }
func (h *hb) open(tag, attrs string) {
	h.b.WriteByte('<')
	h.b.WriteString(tag)
	if attrs != "" {
		h.b.WriteByte(' ')
		h.b.WriteString(attrs)
	}
	h.b.WriteByte('>')
}
func (h *hb) close(tag string) {
	h.b.WriteString("</")
	h.b.WriteString(tag)
	h.b.WriteByte('>')
}
func (h *hb) el(tag, attrs, text string) {
	h.open(tag, attrs)
	h.text(text)
	h.close(tag)
}
func (h *hb) a(href, text string) {
	h.f(`<a href="%s">`, htmlx.EscapeAttr(href))
	h.text(text)
	h.close("a")
}
func (h *hb) String() string { return h.b.String() }

// pageShell wraps body markup in a standard page skeleton with a title, a
// site-wide nav bar (a decoy list for the extractor), and a footer.
func pageShell(title, host string, nav [][2]string, body string) string {
	var h hb
	h.raw("<!DOCTYPE html><html><head>")
	h.el("title", "", title)
	h.raw(`<meta charset="utf-8"></head><body>`)
	h.open("div", `class="topnav"`)
	h.open("ul", `class="nav"`)
	for _, n := range nav {
		h.open("li", `class="nav-item"`)
		h.a(n[0], n[1])
		h.close("li")
	}
	h.close("ul")
	h.close("div")
	h.raw(body)
	h.open("div", `class="footer"`)
	h.el("p", "", "© 2009 "+host+" — terms of service — privacy policy")
	h.close("div")
	h.raw("</body></html>")
	return h.String()
}

// stdNav returns the boilerplate nav links for a host.
func stdNav(host string) [][2]string {
	return [][2]string{
		{host + "/", "Home"},
		{host + "/about", "About"},
		{host + "/contact", "Contact"},
		{host + "/help", "Help"},
	}
}

// truthAttrs is shorthand for building PageTruth.Attrs maps.
func truthAttrs(kv ...string) map[string]string {
	m := make(map[string]string, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		m[kv[i]] = kv[i+1]
	}
	return m
}
