package webgen

import (
	"fmt"
	"strings"
)

// aggSpec describes one restaurant-aggregator website. The three aggregators
// differ in HTML template family, coverage, naming convention, phone format,
// and staleness — the cross-source diversity that makes domain-centric
// extraction (as opposed to per-site wrappers) necessary.
type aggSpec struct {
	host        string
	style       string
	coverage    float64
	phoneStyle  int
	nameVariant int
	stale       bool // publishes OldPhone/OldStreet when the business moved
}

var aggregators = []aggSpec{
	{host: "welp.example", style: "card", coverage: 0.95, phoneStyle: 1, nameVariant: 0},
	{host: "citysift.example", style: "table", coverage: 0.75, phoneStyle: 2, nameVariant: 1},
	{host: "yellowfile.example", style: "dl", coverage: 0.55, phoneStyle: 3, nameVariant: 2, stale: true},
}

// PrimaryAggregator is the host whose click-through URLs the E1 study
// classifies (the paper's yelp.com stand-in).
const PrimaryAggregator = "welp.example"

// rephone re-renders a canonical "408-555-0123" phone in another style.
func rephone(phone string, style int) string {
	digits := make([]byte, 0, 10)
	for i := 0; i < len(phone); i++ {
		if phone[i] >= '0' && phone[i] <= '9' {
			digits = append(digits, phone[i])
		}
	}
	if len(digits) != 10 {
		return phone
	}
	n := func(s []byte) int {
		v := 0
		for _, c := range s {
			v = v*10 + int(c-'0')
		}
		return v
	}
	return formatPhone(n(digits[0:3]), n(digits[3:6]), n(digits[6:10]), style)
}

// BizURL returns the aggregator biz-page URL for a restaurant on host.
func BizURL(host string, r *Restaurant) string {
	return host + "/biz/" + slugify(r.Name)
}

// CategoryURL returns the aggregator category-page URL for (city, cuisine).
func CategoryURL(host, city, cuisine string) string {
	return host + "/c/" + slugify(city) + "-" + slugify(cuisine)
}

// SearchURL returns the aggregator search-results URL for a query.
func SearchURL(host, query string) string {
	return host + "/search/" + slugify(query)
}

func (w *World) buildAggregatorSites() {
	for _, spec := range aggregators {
		site := w.addSite(spec.host, spec.style)
		covered := make([]*Restaurant, 0, len(w.Restaurants))
		for _, r := range w.Restaurants {
			if w.rng.Float64() < spec.coverage {
				covered = append(covered, r)
			}
		}
		for _, r := range covered {
			w.buildBizPage(site, spec, r)
		}
		// Category pages: one per (city, cuisine) with coverage.
		byCat := make(map[[2]string][]*Restaurant)
		for _, r := range covered {
			k := [2]string{r.City, r.Cuisine}
			byCat[k] = append(byCat[k], r)
		}
		for _, city := range w.Cities() {
			for _, cuisine := range cuisines {
				rs := byCat[[2]string{city, cuisine}]
				if len(rs) == 0 {
					continue
				}
				w.buildAggListPage(site, spec, city, cuisine, rs, KindCategory,
					"/c/"+slugify(city)+"-"+slugify(cuisine),
					fmt.Sprintf("%s Restaurants in %s", titleCase(cuisine), city))
				w.buildAggListPage(site, spec, city, cuisine, rs, KindSearch,
					"/search/"+slugify(cuisine+" "+city),
					fmt.Sprintf("Search results for %q", cuisine+" "+city))
			}
		}
		// Name searches: a search page per covered restaurant (navigational).
		for _, r := range covered {
			w.buildAggListPage(site, spec, r.City, r.Cuisine, []*Restaurant{r}, KindSearch,
				"/search/"+slugify(r.Name+" "+r.City),
				fmt.Sprintf("Search results for %q", r.Name+" "+r.City))
		}
	}
}

// bizAttrs computes the attribute values a given aggregator exposes for r,
// applying its naming variant, phone style, and staleness.
func bizAttrs(spec aggSpec, r *Restaurant) (name, street, phone string, stale bool) {
	name = r.NameVariant(spec.nameVariant)
	street, phone = r.Street, r.Phone
	if spec.stale && r.OldPhone != "" {
		street, phone = r.OldStreet, r.OldPhone
		stale = true
	}
	phone = rephone(phone, spec.phoneStyle)
	return name, street, phone, stale
}

func (w *World) buildBizPage(site *Site, spec aggSpec, r *Restaurant) {
	name, street, phone, stale := bizAttrs(spec, r)
	var h hb
	switch spec.style {
	case "card":
		h.open("div", `class="biz-card"`)
		h.el("h1", `class="biz-name"`, name)
		h.el("span", `class="rating"`, fmt.Sprintf("%.1f stars", r.Rating))
		h.open("div", `class="biz-info"`)
		h.el("span", `class="address"`, street)
		h.raw(", ")
		h.el("span", `class="city"`, r.City)
		h.raw(", CA ")
		h.el("span", `class="zip"`, r.Zip)
		h.raw(" ")
		h.el("span", `class="phone"`, phone)
		h.raw(" ")
		h.el("span", `class="cuisine"`, titleCase(r.Cuisine))
		h.raw(" · ")
		h.el("span", `class="price"`, r.Price)
		h.close("div")
		h.open("div", `class="reviews"`)
		for i, rev := range w.userReviews(r, 1+w.rng.Intn(3)) {
			h.open("div", `class="review"`)
			h.el("p", "", rev)
			h.el("span", `class="stars"`, fmt.Sprintf("%d", 2+(i+len(r.Name))%4))
			h.close("div")
		}
		h.close("div")
		if r.Homepage != "" {
			h.f(`<a class="homepage" href="%s">Official site</a>`, r.Homepage)
		}
		h.close("div")
	case "table":
		h.open("table", `class="detail"`)
		row := func(k, v string) {
			h.open("tr", "")
			h.el("th", "", k)
			h.el("td", "", v)
			h.close("tr")
		}
		row("Name", name)
		row("Address", fmt.Sprintf("%s, %s, CA %s", street, r.City, r.Zip))
		row("Phone", phone)
		row("Cuisine", titleCase(r.Cuisine))
		row("Hours", r.Hours)
		row("Price", r.Price)
		if r.Homepage != "" {
			h.open("tr", "")
			h.el("th", "", "Website")
			h.open("td", "")
			h.a(r.Homepage, r.Homepage)
			h.close("td")
			h.close("tr")
		}
		h.close("table")
	default: // "dl"
		h.open("dl", `class="listing"`)
		pair := func(k, v string) {
			h.el("dt", "", k)
			h.el("dd", "", v)
		}
		pair("Business", name)
		pair("Street", street)
		pair("City", r.City+", CA")
		pair("Zip", r.Zip)
		pair("Telephone", phone)
		pair("Category", titleCase(r.Cuisine)+" Restaurants")
		h.close("dl")
	}
	truth := PageTruth{
		Kind:      KindBiz,
		Category:  CatRestaurants,
		EntityIDs: []string{r.ID},
		Stale:     stale,
		Attrs: truthAttrs(
			"name", name, "street", street, "city", r.City, "zip", r.Zip,
			"phone", phone, "cuisine", r.Cuisine, "price", r.Price),
	}
	html := pageShell(name+" - "+site.Host, site.Host, stdNav(site.Host), h.String())
	w.addPage(site, "/biz/"+slugify(r.Name), html, truth)
}

// buildAggListPage renders a category or search results page: the repeated
// structure the domain-centric list extractor must find among decoys.
func (w *World) buildAggListPage(site *Site, spec aggSpec, city, cuisine string, rs []*Restaurant, kind, path, title string) {
	var h hb
	h.el("h1", "", title)
	// Decoy list: related searches (no addresses — statistics reject it).
	h.open("div", `class="related"`)
	h.open("ul", `class="related-searches"`)
	for _, q := range []string{"best " + cuisine, cuisine + " delivery", cuisine + " near me", "cheap " + cuisine} {
		h.open("li", "")
		// All variants resolve to the site's canonical search for the pair.
		h.a(SearchURL(site.Host, cuisine+" "+city), q+" "+city)
		h.close("li")
	}
	h.close("ul")
	h.close("div")

	var ids []string
	switch spec.style {
	case "table":
		h.open("table", `class="results"`)
		h.open("tr", "")
		for _, th := range []string{"Restaurant", "Address", "Zip", "Phone"} {
			h.el("th", "", th)
		}
		h.close("tr")
		for _, r := range rs {
			name, street, phone, _ := bizAttrs(spec, r)
			ids = append(ids, r.ID)
			h.open("tr", `class="result-row"`)
			h.open("td", "")
			h.a(BizURL(site.Host, r), name)
			h.close("td")
			h.el("td", "", street)
			h.el("td", "", r.Zip)
			h.el("td", "", phone)
			h.close("tr")
		}
		h.close("table")
	default:
		h.open("ul", `class="results"`)
		for _, r := range rs {
			name, street, phone, _ := bizAttrs(spec, r)
			ids = append(ids, r.ID)
			h.open("li", `class="result"`)
			h.f(`<a class="name" href="%s">`, BizURL(site.Host, r))
			h.text(name)
			h.close("a")
			h.el("span", `class="addr"`, street)
			h.el("span", `class="zip"`, r.Zip)
			h.el("span", `class="phone"`, phone)
			h.close("li")
		}
		h.close("ul")
	}
	truth := PageTruth{
		Kind:      kind,
		Category:  CatRestaurants,
		EntityIDs: ids,
		Attrs:     truthAttrs("city", city, "cuisine", cuisine),
	}
	html := pageShell(title, site.Host, stdNav(site.Host), h.String())
	w.addPage(site, path, html, truth)
}

// userReviews generates short user-review snippets for a restaurant,
// mentioning real menu items.
func (w *World) userReviews(r *Restaurant, n int) []string {
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		dish := r.Menu[w.rng.Intn(len(r.Menu))]
		var tmpl string
		if w.rng.Float64() < 0.75 {
			tmpl = reviewPhrasesPositive[w.rng.Intn(len(reviewPhrasesPositive))]
		} else {
			tmpl = reviewPhrasesNegative[w.rng.Intn(len(reviewPhrasesNegative))]
		}
		var s string
		if strings.Contains(tmpl, "%s") {
			s = fmt.Sprintf(tmpl, dish)
		} else {
			s = tmpl + " " + dish
		}
		out = append(out, titleCase(s[:1])+s[1:]+".")
	}
	return out
}

// HomepageHost returns the official-site host for a restaurant ("" if none).
func HomepageHost(r *Restaurant) string {
	if r.Homepage == "" {
		return ""
	}
	return strings.TrimSuffix(r.Homepage, "/")
}

func (w *World) buildHomepageSites() {
	for _, r := range w.Restaurants {
		host := HomepageHost(r)
		if host == "" {
			continue
		}
		site := w.addSite(host, "home")
		menuPath := "/menu"
		if w.rng.Float64() < 0.25 {
			menuPath = "/food"
		}
		nav := [][2]string{
			{host + "/", "Home"},
			{host + menuPath, "Menu"},
			{host + "/location", "Location & Directions"},
		}
		if len(r.Coupons) > 0 {
			nav = append(nav, [2]string{host + "/coupons", "Coupons"})
		}

		// Home page.
		var h hb
		h.el("h1", `class="name"`, r.Name)
		h.el("p", `class="tagline"`, fmt.Sprintf(
			"Family-owned %s restaurant in %s. Try our famous %s!",
			r.Cuisine, r.City, r.Menu[0]))
		h.open("div", `class="contact"`)
		h.el("span", `class="street"`, r.Street)
		h.raw(" · ")
		h.el("span", `class="citystate"`, fmt.Sprintf("%s, CA %s", r.City, r.Zip))
		h.raw(" · ")
		h.el("span", `class="tel"`, r.Phone)
		h.close("div")
		h.el("p", `class="hours"`, "Hours of operation: "+r.Hours)
		w.addPage(site, "/", pageShell(r.Name, host, nav, h.String()), PageTruth{
			Kind: KindHome, Category: CatRestaurants, EntityIDs: []string{r.ID},
			Attrs: truthAttrs("name", r.Name, "street", r.Street, "city", r.City,
				"zip", r.Zip, "phone", r.Phone, "hours", r.Hours),
		})

		// Menu page: the repeated dish/price structure bootstrapping mines.
		var m hb
		m.el("h1", "", r.Name+" Menu")
		m.open("ul", `class="menu"`)
		for _, dish := range r.Menu {
			price := fmt.Sprintf("$%d.%02d", 7+w.rng.Intn(18), 25*w.rng.Intn(4))
			m.open("li", `class="dish"`)
			m.el("span", `class="dish-name"`, titleCase(dish))
			m.el("span", `class="dish-price"`, price)
			m.close("li")
		}
		m.close("ul")
		w.addPage(site, menuPath, pageShell(r.Name+" Menu", host, nav, m.String()), PageTruth{
			Kind: KindMenu, Category: CatRestaurants, EntityIDs: []string{r.ID},
			Attrs: truthAttrs("menu", strings.Join(r.Menu, "; "), "cuisine", r.Cuisine),
		})

		// Location page.
		var l hb
		l.el("h1", "", "Find "+r.Name)
		l.el("p", `class="address"`, r.Address())
		l.el("p", `class="phone"`, "Call us: "+r.Phone)
		l.el("p", "", fmt.Sprintf("We are located on %s in downtown %s, two blocks from the %s exit.",
			r.Street, r.City, pick(w.rng, streetNames)))
		w.addPage(site, "/location", pageShell("Location - "+r.Name, host, nav, l.String()), PageTruth{
			Kind: KindLocation, Category: CatRestaurants, EntityIDs: []string{r.ID},
			Attrs: truthAttrs("street", r.Street, "city", r.City, "zip", r.Zip, "phone", r.Phone),
		})

		// Coupons page.
		if len(r.Coupons) > 0 {
			var c hb
			c.el("h1", "", "Coupons and Specials")
			c.open("ul", `class="coupons"`)
			for _, cp := range r.Coupons {
				c.open("li", `class="coupon"`)
				c.text(cp)
				c.close("li")
			}
			c.close("ul")
			w.addPage(site, "/coupons", pageShell("Coupons - "+r.Name, host, nav, c.String()), PageTruth{
				Kind: KindCoupons, Category: CatRestaurants, EntityIDs: []string{r.ID},
				Attrs: truthAttrs("coupons", strings.Join(r.Coupons, "; ")),
			})
		}
	}
}

// PortalHost returns a city portal's host name.
func PortalHost(city string) string { return slugify(city) + ".example" }

// Portal editorial voices: each city portal phrases its leaf pages in one of
// three styles with largely disjoint vocabulary. A global classifier trained
// on a subset of portals therefore degrades on unseen-voice portals — the
// "vastly different content in the large collection of sites" of §4.2 —
// while the directory structure stays informative for refinement.
var diningVoice = []string{
	"%s is a popular %s spot on %s. Call %s for reservations. Known for %s.",
	"Locals rate %s among the best tables in town; the %s menu and friendly service on %s draw crowds. Phone %s. Signature dish: %s.",
	"Stop in at %s for hearty %s plates. Find them on %s or ring %s. Regulars always order the %s.",
}

var eventVoice = []string{
	"Join us for the %s at %s on %s. Food and drinks available; local restaurants will cater.",
	"The annual %s returns to %s on %s; gates open at noon and admission is free.",
	"Mark your calendar: %s happens at %s on %s, with live performances all afternoon.",
}

var hotelVoice = []string{
	"%s offers comfortable rooms on %s, an on-site restaurant, and event space for conferences. Reservations: %s.",
	"Stay at %s: newly renovated suites on %s, complimentary breakfast, and a rooftop lounge. Front desk: %s.",
	"%s welcomes guests on %s with spacious accommodations and meeting facilities. Book by phone at %s.",
}

var attractionVoice = []string{
	"The %s is one of %s's favorite attractions, hosting seasonal events and school visits year round.",
	"Visitors flock to the %s, a beloved %s landmark open daily with guided tours.",
	"Spend an afternoon at the %s — %s's most photographed destination, free on weekends.",
}

func (w *World) buildCityPortals() {
	for ci, city := range w.Cities() {
		voice := ci % 3
		host := PortalHost(city)
		site := w.addSite(host, "portal")
		nav := stdNav(host)

		type leaf struct {
			dir, slug, title, body, category, kind string
			entityIDs                              []string
		}
		var leaves []leaf

		for _, r := range w.RestaurantsInCity(city) {
			var b hb
			b.el("h2", "", r.Name)
			b.el("p", "", fmt.Sprintf(diningVoice[voice],
				r.Name, r.Cuisine, r.Street, r.Phone, r.Menu[0]))
			// Cross-category flavour text: some dining pages read like event
			// announcements, the realistic ambiguity that makes a global
			// text classifier noisy (§4.2) and relational refinement useful.
			if w.rng.Float64() < 0.3 {
				b.el("p", "", "Hosts live jazz concert nights and a tasting festival every month; tickets at the door for these special events.")
			}
			leaves = append(leaves, leaf{"dining", slugify(r.Name), r.Name,
				b.String(), CatRestaurants, KindPortalLeaf, []string{r.ID}})
		}
		for _, e := range w.Events {
			if e.City != city {
				continue
			}
			var b hb
			b.el("h2", "", e.Name)
			b.el("p", "", fmt.Sprintf(eventVoice[voice], e.Name, e.Venue, e.Date))
			if w.rng.Float64() < 0.3 {
				b.el("p", "", "Sample menu items from a dozen kitchens: tacos, pizza, noodle bowls, and bbq plates from your favorite local dining spots and cafes.")
			}
			b.el("p", `class="when"`, "When: "+e.Date)
			b.el("p", `class="where"`, "Where: "+e.Venue)
			leaves = append(leaves, leaf{"calendar", slugify(e.Name) + "-" + e.Date, e.Name,
				b.String(), CatEvents, KindEvent, []string{e.ID}})
		}
		for _, hot := range w.Hotels {
			if hot.City != city {
				continue
			}
			var b hb
			b.el("h2", "", hot.Name)
			b.el("p", "", fmt.Sprintf(hotelVoice[voice], hot.Name, hot.Street, hot.Phone))
			leaves = append(leaves, leaf{"hotels", slugify(hot.Name), hot.Name,
				b.String(), CatHotels, KindPortalLeaf, nil})
		}
		for _, at := range w.Attractions {
			if at.City != city {
				continue
			}
			var b hb
			b.el("h2", "", at.Name)
			b.el("p", "", fmt.Sprintf(attractionVoice[voice], at.Name, city))
			leaves = append(leaves, leaf{"attractions", slugify(at.Name), at.Name,
				b.String(), CatAttractions, KindPortalLeaf, nil})
		}

		// Directory indexes + leaves.
		dirs := map[string][]leaf{}
		for _, lf := range leaves {
			dirs[lf.dir] = append(dirs[lf.dir], lf)
		}
		dirCat := map[string]string{
			"dining": CatRestaurants, "calendar": CatEvents,
			"hotels": CatHotels, "attractions": CatAttractions,
		}
		for _, dir := range []string{"dining", "calendar", "hotels", "attractions"} {
			ls := dirs[dir]
			var idx hb
			idx.el("h1", "", titleCase(dir)+" in "+city)
			idx.open("ul", `class="dir-list"`)
			for _, lf := range ls {
				idx.open("li", "")
				idx.a(host+"/"+lf.dir+"/"+lf.slug, lf.title)
				idx.close("li")
			}
			idx.close("ul")
			w.addPage(site, "/"+dir+"/", pageShell(titleCase(dir)+" - "+city, host, nav, idx.String()),
				PageTruth{Kind: KindPortalIndex, Category: dirCat[dir]})
			for _, lf := range ls {
				backlink := fmt.Sprintf(`<p class="breadcrumb"><a href="%s/%s/">Back to %s</a></p>`,
					host, lf.dir, titleCase(lf.dir))
				w.addPage(site, "/"+lf.dir+"/"+lf.slug,
					pageShell(lf.title+" - "+city, host, nav, lf.body+backlink),
					PageTruth{Kind: lf.kind, Category: lf.category, EntityIDs: lf.entityIDs})
			}
		}

		// Front page and boilerplate.
		var front hb
		front.el("h1", "", "Welcome to "+city)
		front.open("ul", `class="sections"`)
		for _, dir := range []string{"dining", "calendar", "hotels", "attractions"} {
			front.open("li", "")
			front.a(host+"/"+dir+"/", titleCase(dir))
			front.close("li")
		}
		front.close("ul")
		w.addPage(site, "/", pageShell(city+" City Guide", host, nav, front.String()),
			PageTruth{Kind: KindPortalIndex, Category: CatOther})
		for _, p := range []string{"/about", "/contact", "/help"} {
			var b hb
			b.el("h1", "", titleCase(strings.TrimPrefix(p, "/")))
			b.el("p", "", "Information about the "+city+" city guide, our staff, and how to reach the editorial team.")
			w.addPage(site, p, pageShell(titleCase(strings.TrimPrefix(p, "/")), host, nav, b.String()),
				PageTruth{Kind: KindPortalLeaf, Category: CatOther})
		}
	}
}

// Review-blog hosts.
var blogHosts = []string{"tastediary.example", "chowburb.example"}

func (w *World) buildReviewBlogs() {
	perBlog := w.Cfg.ReviewArticles / len(blogHosts)
	for bi, host := range blogHosts {
		site := w.addSite(host, "blog")
		nav := stdNav(host)
		for i := 0; i < perBlog; i++ {
			n := 1
			if w.rng.Float64() < 0.3 {
				n = 2
			}
			// Bias toward one city per article, like a real local blog post.
			city := w.Cities()[w.rng.Intn(w.Cfg.Cities)]
			pool := w.RestaurantsInCity(city)
			if len(pool) == 0 {
				pool = w.Restaurants
			}
			var subjects []*Restaurant
			for j := 0; j < n && j < len(pool); j++ {
				subjects = append(subjects, pool[w.rng.Intn(len(pool))])
			}
			var b hb
			title := fmt.Sprintf("Dinner notes: %s", subjects[0].NameVariant(w.rng.Intn(3)))
			b.el("h1", `class="post-title"`, title)
			var ids []string
			for _, r := range subjects {
				ids = append(ids, r.ID)
				mention := r.NameVariant(w.rng.Intn(3))
				dish := r.Menu[w.rng.Intn(len(r.Menu))]
				dish2 := r.Menu[w.rng.Intn(len(r.Menu))]
				b.el("p", "", fmt.Sprintf(
					"Stopped by %s in %s last week. The %s was outstanding and the %s is arguably the best %s in %s. %s",
					mention, r.City, dish, dish2, dish2, r.City,
					titleCase(w.userReviews(r, 1)[0])))
			}
			url := fmt.Sprintf("/post/%d", bi*1000+i)
			w.addPage(site, url, pageShell(title, host, nav, b.String()),
				PageTruth{Kind: KindReviewPost, Category: CatOther, EntityIDs: ids})
			w.ReviewTruth[host+url] = ids
		}
	}
}
