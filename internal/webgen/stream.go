package webgen

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sync"
)

// Streaming heavy-tail world generation (ISSUE 9 tentpole layer 1).
//
// Generate() materializes every page of the world up front — fine at 2011
// pages, fatal at 100k–1M. StreamWorld never holds the world: it computes a
// deterministic *site plan* (one small struct per site) and regenerates any
// site's pages on demand from pure functions of (seed, kind, index). Entity
// ground truth is likewise derived, not stored: restaurant i is the same
// restaurant every time restaurantAt(i) is called, on every site that
// covers it, with zero resident entity state.
//
// The site-size distribution follows Dalvi et al.'s measurements ("An
// Analysis of Structured Data on the Web", PAPERS.md): a handful of huge
// aggregator sites (capped near 10k pages) carry roughly AggregatorShare
// of all pages, and the rest is a long tail of 5–50-page sites drawn from
// a discrete power law with exponent TailAlpha. Template diversity is also
// per their wrapper findings: each host renders its pages through 1–6
// layout variants (marked layout-v<N> in the HTML), so wrapper-style
// assumptions of one template per site are wrong here, as on the real web.
//
// Beyond the default world's restaurant focus, the stream adds two more
// extractable domains: hotels (aggregators + standalone hotel sites,
// extracted by extract.HotelDomain) and events (dedicated calendar sites,
// extracted by the existing EventDomain).

// Stream site kinds.
const (
	SiteAggRestaurant = "agg-restaurant" // restaurant aggregator (huge)
	SiteAggHotel      = "agg-hotel"      // hotel aggregator (huge)
	SiteRestHome      = "rest-home"      // one restaurant's official site
	SiteHotel         = "hotel-site"     // one hotel's official site
	SiteEventCal      = "event-cal"      // event calendar site
	SitePortal        = "metro-portal"   // mixed-entity metro guide
	SiteBlog          = "blog"           // review blog
)

// StreamConfig controls a streamed heavy-tail world. Zero values take the
// documented defaults; use HeavyTailConfig for the standard profile.
type StreamConfig struct {
	Seed int64
	// TargetPages is the approximate world size; the planner lands within
	// a few percent (PlannedPages reports the exact count).
	TargetPages int
	// AggregatorShare is the fraction of pages on aggregator sites
	// (default 0.45).
	AggregatorShare float64
	// TailAlpha is the power-law exponent for tail site sizes on [5,50]
	// (default 2.2: many 5-page sites, few 50-page ones).
	TailAlpha float64
	// MaxAggregatorPages caps any single aggregator (default 10000).
	MaxAggregatorPages int
	// ListPageSize is entities per paginated listing page (default 40).
	ListPageSize int
}

// HeavyTailConfig returns the standard heavy-tail profile for ~pages pages.
func HeavyTailConfig(pages int) StreamConfig {
	return StreamConfig{Seed: 1, TargetPages: pages}
}

func (c *StreamConfig) fill() {
	if c.TargetPages <= 0 {
		c.TargetPages = 20000
	}
	if c.TargetPages < 2000 {
		c.TargetPages = 2000
	}
	if c.AggregatorShare <= 0 || c.AggregatorShare >= 1 {
		c.AggregatorShare = 0.45
	}
	if c.TailAlpha <= 1 {
		c.TailAlpha = 2.2
	}
	if c.MaxAggregatorPages <= 0 {
		c.MaxAggregatorPages = 10000
	}
	if c.ListPageSize <= 0 {
		c.ListPageSize = 40
	}
}

// SitePlan is the resident footprint of one planned site: everything
// needed to regenerate its pages, and nothing else.
type SitePlan struct {
	Host string
	Kind string
	// Index is the global site index (template/seed mixing).
	Index int
	// Size is the exact number of pages the site emits.
	Size int
	// Lo and Hi delimit the entity range the site is about; their meaning
	// depends on Kind (single entity for official sites, a range for
	// calendars, unused for aggregators whose coverage is hash-derived).
	Lo, Hi int
	// CovPermille is the aggregator coverage of its entity pool, in 1/1000.
	CovPermille int
	// Variants is how many template variants this host renders with.
	Variants int
}

// StreamWorld is a planned heavy-tail world whose pages are generated on
// demand, site by site. Safe for concurrent Fetch.
type StreamWorld struct {
	Cfg StreamConfig

	plans  []SitePlan
	byHost map[string]int
	cities []string
	nRest  int
	nHotel int
	total  int

	mu         sync.Mutex
	siteCache  map[string][]*Page // host -> generated pages
	cacheByURL map[string]map[string]*Page
	cacheOrder []string // LRU, most recent last
}

const fetchCacheSites = 8

// NewStreamWorld plans a heavy-tail world. Planning is cheap (no pages are
// generated) and fully deterministic in cfg.
func NewStreamWorld(cfg StreamConfig) *StreamWorld {
	cfg.fill()
	w := &StreamWorld{
		Cfg:        cfg,
		byHost:     make(map[string]int),
		siteCache:  make(map[string][]*Page),
		cacheByURL: make(map[string]map[string]*Page),
	}
	w.cities = scaleCityList(cfg.TargetPages)
	w.plan()
	return w
}

// scaleCityList grows the city gazetteer with world size: the 10 default
// cities plus synthetic ones, bounded so gazetteer matching stays cheap.
func scaleCityList(pages int) []string {
	n := 10 + pages/6000
	if n > 36 {
		n = 36
	}
	out := append([]string(nil), cityNames...)
	for i := 0; len(out) < n; i++ {
		c := cityPrefix[i%len(cityPrefix)] + citySuffix[(i/len(cityPrefix))%len(citySuffix)]
		out = append(out, c)
	}
	return out[:n]
}

// scaleZipBase returns the deterministic zip prefix for city index ci,
// always in the recognizer's 9xxxx range.
func scaleZipBase(ci int) int { return 90000 + (ci*937)%9990 }

// Syllable pools for entity names. Composing the first token from two
// syllables gives ~500 distinct leading tokens, which keeps the matcher's
// name-token blocks small at corpus scale (a word-list first token would
// put thousands of candidates in one block and make collective matching
// quadratic in them).
var nameSyllA = []string{
	"Zan", "Mor", "Vel", "Tor", "Bran", "Cas", "Del", "Fen", "Gal", "Hol",
	"Jas", "Kel", "Lun", "Nor", "Os", "Pel", "Quin", "Ras", "Sal", "Tam",
	"Ul", "Ver", "Wes", "Yar",
}

var nameSyllB = []string{
	"vo", "dale", "mont", "brook", "field", "haven", "ridge", "ton",
	"mere", "wick", "ford", "stone", "gate", "crest", "well", "marsh",
	"den", "low", "bury", "col",
}

var cityPrefix = []string{
	"North", "East", "West", "South", "Lake", "Glen", "Fair", "Cedar",
	"Oak", "Pine", "River", "Summit", "Harbor",
}

var citySuffix = []string{"vale", "brook", "port", "crest", "wood", "view", "ton", "field"}

var hotelSuffix = []string{"Hotel", "Inn", "Suites", "Lodge", "Resort"}

// mix derives a stable sub-seed from the world seed, a kind tag, and an
// index — the whole trick behind zero-memory entities.
func (w *StreamWorld) mix(kind string, i int) int64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(w.Cfg.Seed))
	h.Write(b[:])
	h.Write([]byte(kind))
	binary.LittleEndian.PutUint64(b[:], uint64(i))
	h.Write(b[:])
	return int64(h.Sum64() & 0x7fffffffffffffff)
}

// permille hashes (host, salt, i) to [0,1000) for coverage decisions.
func permille(host, salt string, i int) int {
	h := fnv.New64a()
	h.Write([]byte(host))
	h.Write([]byte(salt))
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(i))
	h.Write(b[:])
	return int(h.Sum64() % 1000)
}

// --- pure-function entities ---

// restaurantAt derives restaurant i. Same i, same restaurant, forever.
func (w *StreamWorld) restaurantAt(i int) *Restaurant {
	rng := rand.New(rand.NewSource(w.mix("rest", i)))
	first := nameSyllA[rng.Intn(len(nameSyllA))] + nameSyllB[rng.Intn(len(nameSyllB))]
	name := first + " " + pick(rng, restaurantSecond) + " " + pick(rng, restaurantSuffix)
	ci := rng.Intn(len(w.cities))
	cuisine := pick(rng, cuisines)
	return &Restaurant{
		ID:      fmt.Sprintf("srest-%06d", i),
		Name:    name,
		Street:  fmt.Sprintf("%d %s", 100+rng.Intn(9900), pick(rng, streetNames)),
		City:    w.cities[ci],
		State:   "CA",
		Zip:     fmt.Sprintf("%05d", scaleZipBase(ci)+rng.Intn(3)),
		Phone:   formatPhone(200+(i*131)%800, 100+(i*17)%900, i%10000, 0),
		Cuisine: cuisine,
		Price:   priceDollars(rng),
		Rating:  float64(20+rng.Intn(31)) / 10,
		Hours:   fmt.Sprintf("Mon-Sun %d:00-%d:00", 10+rng.Intn(2), 20+rng.Intn(3)),
		Menu:    pickN(rng, menuItems[cuisine], 4+rng.Intn(4)),
	}
}

// hotelAt derives hotel i.
func (w *StreamWorld) hotelAt(i int) *Hotel {
	rng := rand.New(rand.NewSource(w.mix("hotel", i)))
	name := nameSyllA[rng.Intn(len(nameSyllA))] + nameSyllB[rng.Intn(len(nameSyllB))] +
		" " + pick(rng, hotelSuffix)
	ci := rng.Intn(len(w.cities))
	return &Hotel{
		ID:     fmt.Sprintf("shot-%06d", i),
		Name:   name,
		City:   w.cities[ci],
		Street: fmt.Sprintf("%d %s", 100+rng.Intn(9900), pick(rng, streetNames)),
		Phone:  formatPhone(200+(i*73)%800, 100+(i*29)%900, (i+5000)%10000, 0),
	}
}

// eventAt derives event i.
func (w *StreamWorld) eventAt(i int) *Event {
	rng := rand.New(rand.NewSource(w.mix("event", i)))
	city := w.cities[rng.Intn(len(w.cities))]
	return &Event{
		ID:    fmt.Sprintf("sev-%06d", i),
		Name:  titleCase(pick(rng, eventKinds)) + fmt.Sprintf(" %d", 1+i%97),
		City:  city,
		Venue: city + " " + pick(rng, []string{"Community Center", "Fairgrounds", "Civic Plaza", "Amphitheater"}),
		Date:  fmt.Sprintf("2009-%02d-%02d", 1+rng.Intn(12), 1+rng.Intn(28)),
	}
}

func priceDollars(rng *rand.Rand) string {
	n := 1 + rng.Intn(4)
	return "$$$$"[:n]
}

// --- planning ---

// Aggregator coverage ladders (permille of the entity pool).
var aggRestCov = []int{950, 600, 350}
var aggHotelCov = []int{900, 500}

var aggRestHosts = []string{"dinefind.example", "tastemap.example", "localplates.example"}
var aggHotelHosts = []string{"stayscan.example", "roomlister.example"}

func (w *StreamWorld) plan() {
	cfg := &w.Cfg
	n := cfg.TargetPages
	l := float64(cfg.ListPageSize)
	aggBudget := float64(n) * cfg.AggregatorShare
	listFactor := 1 + 1/l

	// Size the entity pools so aggregator coverage sums spend the budget.
	var sumR, sumH float64
	for _, c := range aggRestCov {
		sumR += float64(c) / 1000
	}
	for _, c := range aggHotelCov {
		sumH += float64(c) / 1000
	}
	w.nRest = int(aggBudget * 0.6 / (sumR * listFactor))
	w.nHotel = int(aggBudget * 0.4 / (sumH * listFactor))

	siteIdx := 0
	addPlan := func(p SitePlan) {
		p.Index = siteIdx
		siteIdx++
		w.byHost[p.Host] = len(w.plans)
		w.plans = append(w.plans, p)
		w.total += p.Size
	}

	// Aggregators: exact sizes come from counting the same hash-coverage
	// predicate generation will use.
	maxBiz := cfg.MaxAggregatorPages - cfg.MaxAggregatorPages/cfg.ListPageSize - 4
	for j, host := range aggRestHosts {
		biz := w.countCovered(host, w.nRest, aggRestCov[j], maxBiz)
		addPlan(SitePlan{Host: host, Kind: SiteAggRestaurant,
			Size:        biz + ceilDiv(biz, cfg.ListPageSize) + 4,
			CovPermille: aggRestCov[j], Variants: 3 + j})
	}
	for j, host := range aggHotelHosts {
		biz := w.countCovered(host, w.nHotel, aggHotelCov[j], maxBiz)
		addPlan(SitePlan{Host: host, Kind: SiteAggHotel,
			Size:        biz + ceilDiv(biz, cfg.ListPageSize) + 4,
			CovPermille: aggHotelCov[j], Variants: 2 + j})
	}

	// Long tail: power-law sizes, site kinds in fixed proportions.
	remaining := n - w.total
	prng := rand.New(rand.NewSource(w.mix("plan", 0)))
	restIdx, hotelIdx, eventIdx := 0, 0, 0
	calCount, portalCount, blogCount := 0, 0, 0
	for remaining >= 5 {
		size := powerLawSize(prng.Float64(), cfg.TailAlpha)
		if size > remaining {
			size = remaining
		}
		k := prng.Float64()
		switch {
		case k < 0.30 && restIdx < w.nRest:
			r := w.restaurantAt(restIdx)
			host := fmt.Sprintf("%s-%d.example", slugify(r.Name), restIdx)
			addPlan(SitePlan{Host: host, Kind: SiteRestHome, Size: size,
				Lo: restIdx, Variants: 1 + prng.Intn(3)})
			restIdx++
		case k < 0.50 && hotelIdx < w.nHotel:
			h := w.hotelAt(hotelIdx)
			host := fmt.Sprintf("hotel-%s-%d.example", slugify(h.Name), hotelIdx)
			addPlan(SitePlan{Host: host, Kind: SiteHotel, Size: size,
				Lo: hotelIdx, Variants: 1 + prng.Intn(3)})
			hotelIdx++
		case k < 0.70:
			host := fmt.Sprintf("events-%04d.example", calCount)
			calCount++
			nEv := size - 4
			addPlan(SitePlan{Host: host, Kind: SiteEventCal, Size: size,
				Lo: eventIdx, Hi: eventIdx + nEv, Variants: 1 + prng.Intn(3)})
			eventIdx += nEv
		case k < 0.85:
			if size < 8 {
				size = 8
			}
			host := fmt.Sprintf("metroguide-%04d.example", portalCount)
			portalCount++
			addPlan(SitePlan{Host: host, Kind: SitePortal, Size: size,
				Variants: 1 + prng.Intn(4)})
		default:
			host := fmt.Sprintf("eats-%04d.example", blogCount)
			blogCount++
			addPlan(SitePlan{Host: host, Kind: SiteBlog, Size: size,
				Variants: 1 + prng.Intn(3)})
		}
		remaining = n - w.total
	}
}

// countCovered counts entities an aggregator covers: the planning-time twin
// of the generation-time coverage walk, so planned sizes are exact.
func (w *StreamWorld) countCovered(host string, pool, cov, maxBiz int) int {
	n := 0
	for i := 0; i < pool && n < maxBiz; i++ {
		if permille(host, "cov", i) < cov {
			n++
		}
	}
	return n
}

// coveredEntities returns the entity indexes an aggregator covers.
func (w *StreamWorld) coveredEntities(host string, pool, cov, maxBiz int) []int {
	out := make([]int, 0, pool)
	for i := 0; i < pool && len(out) < maxBiz; i++ {
		if permille(host, "cov", i) < cov {
			out = append(out, i)
		}
	}
	return out
}

// powerLawSize samples a discrete power-law site size on [5,50] by inverse
// transform: P(s) ∝ s^-alpha.
func powerLawSize(u, alpha float64) int {
	a := 1 - alpha
	lo := math.Pow(5, a)
	hi := math.Pow(51, a)
	s := int(math.Pow(lo+u*(hi-lo), 1/a))
	if s < 5 {
		s = 5
	}
	if s > 50 {
		s = 50
	}
	return s
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// --- world API ---

// PlannedPages returns the exact page count the stream will emit.
func (w *StreamWorld) PlannedPages() int { return w.total }

// Plans returns the site plans (read-only; do not mutate).
func (w *StreamWorld) Plans() []SitePlan { return w.plans }

// Cities returns the scaled city gazetteer.
func (w *StreamWorld) Cities() []string {
	return append([]string(nil), w.cities...)
}

// Restaurants and Hotels report entity pool sizes.
func (w *StreamWorld) Restaurants() int { return w.nRest }

// Hotels reports the hotel entity pool size.
func (w *StreamWorld) Hotels() int { return w.nHotel }

// EachPage generates the world site by site, calling fn for every page in
// deterministic order. Memory high-water is one site's pages (≤ the
// aggregator cap), never the world.
func (w *StreamWorld) EachPage(fn func(*Page) error) error {
	for i := range w.plans {
		for _, p := range w.genSite(&w.plans[i]) {
			if err := fn(p); err != nil {
				return err
			}
		}
	}
	return nil
}

// StreamPages adapts EachPage to a raw (url, html) emitter — the shape
// core.BuildStream ingests.
func (w *StreamWorld) StreamPages(emit func(url, html string) error) error {
	return w.EachPage(func(p *Page) error { return emit(p.URL, p.HTML) })
}

// SeedURLs returns every site root, mirroring World.SeedURLs.
func (w *StreamWorld) SeedURLs() []string {
	out := make([]string, 0, len(w.plans))
	for i := range w.plans {
		out = append(out, w.plans[i].Host+"/")
	}
	return out
}

// Fetch implements webgraph.Fetcher by regenerating the owning site, with a
// small LRU of recently generated sites (the crawler's sorted frontier is
// host-clustered, so locality is high).
func (w *StreamWorld) Fetch(url string) (string, error) {
	host, _ := splitHostPath(url)
	w.mu.Lock()
	defer w.mu.Unlock()
	byURL, ok := w.cacheByURL[host]
	if !ok {
		pi, found := w.byHost[host]
		if !found {
			return "", fmt.Errorf("webgen: no site at %s", host)
		}
		pages := w.genSite(&w.plans[pi])
		byURL = make(map[string]*Page, len(pages))
		for _, p := range pages {
			byURL[p.URL] = p
		}
		w.siteCache[host] = pages
		w.cacheByURL[host] = byURL
		w.cacheOrder = append(w.cacheOrder, host)
		if len(w.cacheOrder) > fetchCacheSites {
			evict := w.cacheOrder[0]
			w.cacheOrder = w.cacheOrder[1:]
			delete(w.siteCache, evict)
			delete(w.cacheByURL, evict)
		}
	}
	p, ok := byURL[url]
	if !ok {
		return "", fmt.Errorf("webgen: no page at %s", url)
	}
	return p.HTML, nil
}

func splitHostPath(url string) (host, path string) {
	for i := 0; i < len(url); i++ {
		if url[i] == '/' {
			return url[:i], url[i:]
		}
	}
	return url, "/"
}
