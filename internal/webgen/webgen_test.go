package webgen

import (
	"strings"
	"testing"

	"conceptweb/internal/htmlx"
	"conceptweb/internal/lrec"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Restaurants = 40
	cfg.Authors = 12
	cfg.Papers = 25
	cfg.Cameras = 5
	cfg.Shows = 5
	cfg.Actors = 12
	cfg.ReviewArticles = 20
	cfg.TVArticles = 8
	return cfg
}

func TestGenerateDeterministic(t *testing.T) {
	w1 := Generate(smallConfig())
	w2 := Generate(smallConfig())
	p1, p2 := w1.Pages(), w2.Pages()
	if len(p1) != len(p2) {
		t.Fatalf("page counts differ: %d vs %d", len(p1), len(p2))
	}
	for i := range p1 {
		if p1[i].URL != p2[i].URL || p1[i].HTML != p2[i].HTML {
			t.Fatalf("page %d differs: %s vs %s", i, p1[i].URL, p2[i].URL)
		}
	}
}

func TestGenerateSeedChangesWorld(t *testing.T) {
	cfg := smallConfig()
	w1 := Generate(cfg)
	cfg.Seed = 99
	w2 := Generate(cfg)
	if w1.Restaurants[0].Name == w2.Restaurants[0].Name &&
		w1.Restaurants[1].Name == w2.Restaurants[1].Name &&
		w1.Restaurants[2].Name == w2.Restaurants[2].Name {
		t.Error("different seeds produced identical restaurants")
	}
}

func TestWorldCounts(t *testing.T) {
	cfg := smallConfig()
	w := Generate(cfg)
	if len(w.Restaurants) != cfg.Restaurants {
		t.Errorf("restaurants = %d", len(w.Restaurants))
	}
	if len(w.Authors) != cfg.Authors || len(w.Papers) != cfg.Papers {
		t.Errorf("authors/papers = %d/%d", len(w.Authors), len(w.Papers))
	}
	if len(w.Products) < cfg.Cameras {
		t.Errorf("products = %d", len(w.Products))
	}
	if len(w.Events) != cfg.Cities*cfg.EventsPerCity {
		t.Errorf("events = %d", len(w.Events))
	}
	if len(w.Pages()) < 200 {
		t.Errorf("only %d pages generated", len(w.Pages()))
	}
}

func TestAllPagesParse(t *testing.T) {
	w := Generate(smallConfig())
	for _, p := range w.Pages() {
		doc := htmlx.Parse(p.HTML)
		if doc.FindFirst("body") == nil {
			t.Fatalf("page %s has no body", p.URL)
		}
		if doc.FindFirst("title") == nil {
			t.Fatalf("page %s has no title", p.URL)
		}
	}
}

func TestPageTruthConsistency(t *testing.T) {
	w := Generate(smallConfig())
	for _, p := range w.Pages() {
		if p.Truth.Site == "" {
			t.Fatalf("page %s has no site", p.URL)
		}
		if !strings.HasPrefix(p.URL, p.Truth.Site) {
			t.Fatalf("page URL %s does not start with site %s", p.URL, p.Truth.Site)
		}
		for _, id := range p.Truth.EntityIDs {
			if _, ok := w.TruthRecord(id); !ok {
				t.Fatalf("page %s references unknown entity %s", p.URL, id)
			}
		}
	}
}

func TestBizPagesExposeTrueAttributes(t *testing.T) {
	w := Generate(smallConfig())
	checked := 0
	for _, p := range w.Pages() {
		if p.Truth.Kind != KindBiz || p.Truth.Stale {
			continue
		}
		r, ok := w.RestaurantByID(p.Truth.EntityIDs[0])
		if !ok {
			t.Fatalf("biz page %s has bad entity", p.URL)
		}
		text := htmlx.Parse(p.HTML).Text()
		if !strings.Contains(text, r.Zip) {
			t.Errorf("page %s missing zip %s", p.URL, r.Zip)
		}
		if !strings.Contains(text, r.City) {
			t.Errorf("page %s missing city %s", p.URL, r.City)
		}
		checked++
	}
	if checked < 20 {
		t.Errorf("only %d fresh biz pages", checked)
	}
}

func TestStaleSourceUsesOldValues(t *testing.T) {
	w := Generate(smallConfig())
	foundStale := false
	for _, p := range w.Pages() {
		if !p.Truth.Stale {
			continue
		}
		foundStale = true
		r, _ := w.RestaurantByID(p.Truth.EntityIDs[0])
		if r.OldPhone == "" {
			t.Fatalf("stale page %s for restaurant without old phone", p.URL)
		}
		// The current phone must not appear on the stale page.
		if strings.Contains(p.HTML, r.Phone) {
			t.Errorf("stale page %s leaks current phone", p.URL)
		}
	}
	if !foundStale {
		t.Error("no stale pages generated (staleness experiment impossible)")
	}
}

func TestAggregatorCoverageOrdering(t *testing.T) {
	w := Generate(DefaultConfig())
	counts := map[string]int{}
	for _, p := range w.Pages() {
		if p.Truth.Kind == KindBiz {
			counts[p.Truth.Site]++
		}
	}
	if !(counts["welp.example"] > counts["citysift.example"] &&
		counts["citysift.example"] > counts["yellowfile.example"]) {
		t.Errorf("coverage ordering violated: %v", counts)
	}
}

func TestHomepageSubpages(t *testing.T) {
	w := Generate(smallConfig())
	menus, locations, coupons := 0, 0, 0
	for _, p := range w.Pages() {
		switch p.Truth.Kind {
		case KindMenu:
			menus++
			doc := htmlx.Parse(p.HTML)
			if len(doc.FindByClass("dish")) < 3 {
				t.Errorf("menu page %s has too few dishes", p.URL)
			}
		case KindLocation:
			locations++
		case KindCoupons:
			coupons++
		}
	}
	if menus == 0 || locations == 0 || coupons == 0 {
		t.Errorf("menus=%d locations=%d coupons=%d", menus, locations, coupons)
	}
	if menus != locations {
		t.Errorf("every homepage should have both menu and location: %d vs %d", menus, locations)
	}
}

func TestPortalCategories(t *testing.T) {
	w := Generate(smallConfig())
	cats := map[string]int{}
	for _, p := range w.Pages() {
		if strings.HasSuffix(p.Truth.Site, ".example") && p.Truth.Site == PortalHost("Cupertino") {
			cats[p.Truth.Category]++
		}
	}
	for _, c := range []string{CatRestaurants, CatEvents, CatHotels, CatAttractions, CatOther} {
		if cats[c] == 0 {
			t.Errorf("portal has no %s pages: %v", c, cats)
		}
	}
}

func TestTruthRecords(t *testing.T) {
	w := Generate(smallConfig())
	r := w.Restaurants[0]
	rec, ok := w.TruthRecord(r.ID)
	if !ok || rec.Concept != ConceptRestaurant {
		t.Fatalf("truth record missing for %s", r.ID)
	}
	if rec.Get("name") != r.Name || rec.Get("zip") != r.Zip {
		t.Errorf("truth mismatch: %s", rec)
	}
	if _, ok := w.TruthRecord("nonexistent"); ok {
		t.Error("bogus ID resolved")
	}
	for _, id := range []string{w.Authors[0].ID, w.Papers[0].ID, w.Products[0].ID,
		w.Shows[0].ID, w.Actors[0].ID, w.Events[0].ID} {
		if _, ok := w.TruthRecord(id); !ok {
			t.Errorf("truth record missing for %s", id)
		}
	}
}

func TestRegisterConcepts(t *testing.T) {
	reg := lrec.NewRegistry()
	RegisterConcepts(reg)
	for _, c := range []string{ConceptRestaurant, ConceptReview, ConceptAuthor,
		ConceptPaper, ConceptProduct, ConceptShow, ConceptActor, ConceptEvent} {
		if _, ok := reg.Lookup(c); !ok {
			t.Errorf("concept %s not registered", c)
		}
	}
	rc, _ := reg.Lookup(ConceptRestaurant)
	if spec, ok := rc.Spec("zip"); !ok || spec.MaxValues != 1 {
		t.Error("restaurant zip spec wrong")
	}
	if got := reg.Domain(DomainLocal); len(got) != 3 {
		t.Errorf("local domain = %v", got)
	}
}

func TestReviewTruthLinks(t *testing.T) {
	w := Generate(smallConfig())
	if len(w.ReviewTruth) == 0 {
		t.Fatal("no review truth")
	}
	for url, ids := range w.ReviewTruth {
		p, ok := w.PageByURL(url)
		if !ok {
			t.Fatalf("review truth references missing page %s", url)
		}
		if p.Truth.Kind != KindReviewPost {
			t.Fatalf("review truth page %s has kind %s", url, p.Truth.Kind)
		}
		if len(ids) == 0 {
			t.Fatalf("review %s has no subjects", url)
		}
	}
}

func TestNameVariants(t *testing.T) {
	r := &Restaurant{Name: "Blue Agave Cantina", Cuisine: "mexican"}
	if r.NameVariant(0) != "Blue Agave Cantina" {
		t.Error("variant 0 should be full name")
	}
	if r.NameVariant(1) != "Blue Agave" {
		t.Errorf("variant 1 = %q", r.NameVariant(1))
	}
	if !strings.Contains(r.NameVariant(2), "Mexican") {
		t.Errorf("variant 2 = %q", r.NameVariant(2))
	}
}

func TestRephone(t *testing.T) {
	if got := rephone("408-555-0123", 1); got != "(408) 555-0123" {
		t.Errorf("style 1 = %q", got)
	}
	if got := rephone("408-555-0123", 2); got != "408.555.0123" {
		t.Errorf("style 2 = %q", got)
	}
	if got := rephone("not a phone", 1); got != "not a phone" {
		t.Errorf("junk = %q", got)
	}
}

func TestSlugify(t *testing.T) {
	if got := slugify("Birk's Steak-House №9"); got != "birks-steak-house-9" {
		t.Errorf("slugify = %q", got)
	}
}

func TestSharedActorAcrossShows(t *testing.T) {
	w := Generate(DefaultConfig())
	found := false
	for _, a := range w.Actors {
		if len(a.ShowIDs) > 1 {
			found = true
			break
		}
	}
	if !found {
		t.Error("no actor appears in multiple shows; browse-pivot scenario impossible")
	}
}

func TestAccessoryRelations(t *testing.T) {
	w := Generate(smallConfig())
	accs := 0
	for _, p := range w.Products {
		if p.AccessoryOf != "" {
			accs++
			if _, ok := w.ProductByID(p.AccessoryOf); !ok {
				t.Errorf("accessory %s references missing camera", p.ID)
			}
		}
	}
	if accs == 0 {
		t.Error("no accessories generated")
	}
}

func TestSiteLookupAndURLHelpers(t *testing.T) {
	w := Generate(smallConfig())
	if _, ok := w.SiteByHost(PrimaryAggregator); !ok {
		t.Error("primary aggregator missing")
	}
	if _, ok := w.SiteByHost("nonexistent.example"); ok {
		t.Error("bogus site resolved")
	}
	r := w.Restaurants[0]
	if got := BizURL("welp.example", r); !strings.HasPrefix(got, "welp.example/biz/") {
		t.Errorf("BizURL = %q", got)
	}
	if got := CategoryURL("welp.example", "San Jose", "italian"); got != "welp.example/c/san-jose-italian" {
		t.Errorf("CategoryURL = %q", got)
	}
}
