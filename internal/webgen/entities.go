package webgen

import (
	"fmt"
	"math/rand"
	"strings"

	"conceptweb/internal/lrec"
)

// Entity ground truth. These structs are what the synthetic web is rendered
// from, and what evaluation code scores extraction against. Application code
// never sees them; it sees only pages and the extracted store.

// Restaurant is the ground truth for one restaurant instance.
type Restaurant struct {
	ID       string
	Name     string
	Street   string
	City     string
	State    string
	Zip      string
	Phone    string
	Cuisine  string
	Price    string // "$".."$$$$"
	Rating   float64
	Hours    string
	Menu     []string
	Coupons  []string
	Homepage string // "" if the restaurant has no official site

	// OldPhone and OldStreet are pre-move values that stale sources still
	// publish — the §7.3 "outdated and even contradictory information".
	OldPhone  string
	OldStreet string
}

// NameVariant returns one of the naming forms real sites use for the same
// business: the full name, the name without its type suffix, or the name
// with the cuisine prepended. variant is any integer (wrapped internally).
func (r *Restaurant) NameVariant(variant int) string {
	switch variant % 3 {
	case 1:
		// Drop the suffix word(s): "Blue Agave Cantina" -> "Blue Agave".
		parts := strings.Split(r.Name, " ")
		if len(parts) > 2 {
			return strings.Join(parts[:2], " ")
		}
		return r.Name
	case 2:
		return r.Name + " " + titleCase(r.Cuisine) + " Restaurant"
	default:
		return r.Name
	}
}

// Address returns the full postal address string.
func (r *Restaurant) Address() string {
	return fmt.Sprintf("%s, %s, %s %s", r.Street, r.City, r.State, r.Zip)
}

// Author is the ground truth for one researcher.
type Author struct {
	ID          string
	Name        string
	Affiliation string
	Homepage    string
	PaperIDs    []string
}

// Paper is the ground truth for one publication.
type Paper struct {
	ID        string
	Title     string
	Venue     string
	Year      int
	AuthorIDs []string
}

// Product is the ground truth for one shopping item (a camera model, per the
// paper's Nikon D40 running example, or one of its accessories).
type Product struct {
	ID          string
	Brand       string
	Model       string
	Name        string // brand + model + kind
	Kind        string // "camera" or accessory kind
	Price       string
	Megapixels  float64 // cameras only
	AccessoryOf string  // product ID this augments, "" for cameras
}

// Show is the ground truth for one TV series.
type Show struct {
	ID       string
	Title    string
	Years    string
	ActorIDs []string
	Ended    bool
}

// Actor is the ground truth for one performer.
type Actor struct {
	ID      string
	Name    string
	ShowIDs []string
}

// Event is the ground truth for one local event (city calendar entry).
type Event struct {
	ID    string
	Name  string
	City  string
	Venue string
	Date  string
}

// Hotel and Attraction are filler city-portal content whose only job is to
// make page classification non-trivial.
type Hotel struct {
	ID, Name, City, Street, Phone string
}

// Attraction is a city point of interest.
type Attraction struct {
	ID, Name, City string
}

// Concept names used consistently across the system.
const (
	ConceptRestaurant = "restaurant"
	ConceptReview     = "review"
	ConceptAuthor     = "author"
	ConceptPaper      = "publication"
	ConceptProduct    = "product"
	ConceptShow       = "tvshow"
	ConceptActor      = "actor"
	ConceptEvent      = "event"
	ConceptHotel      = "hotel"
)

// Domain names.
const (
	DomainLocal    = "local"
	DomainAcademic = "academic"
	DomainShopping = "shopping"
	DomainMedia    = "media"
)

// RegisterConcepts registers the synthetic world's concept metadata — the
// domain specifications of §4 ("a restaurant domain might specify the
// concepts menu, location, review; an academic domain author, publication;
// a shopping domain product, seller, review").
func RegisterConcepts(reg *lrec.Registry) {
	reg.Register(lrec.Concept{Name: ConceptRestaurant, Domain: DomainLocal, IDAttr: "address",
		Attrs: []lrec.AttrSpec{
			{Key: "name", Kind: lrec.KindName, Required: true},
			{Key: "street", Kind: lrec.KindAddress, MaxValues: 1},
			{Key: "city", Kind: lrec.KindCity},
			{Key: "state", Kind: lrec.KindText},
			{Key: "zip", Kind: lrec.KindZip, MaxValues: 1},
			{Key: "phone", Kind: lrec.KindPhone, MaxValues: 2},
			{Key: "cuisine", Kind: lrec.KindCategory},
			{Key: "price", Kind: lrec.KindPrice},
			{Key: "rating", Kind: lrec.KindNumber},
			{Key: "hours", Kind: lrec.KindText},
			{Key: "menu", Kind: lrec.KindText},
			{Key: "homepage", Kind: lrec.KindURL, MaxValues: 1},
		}})
	reg.Register(lrec.Concept{Name: ConceptReview, Domain: DomainLocal,
		Attrs: []lrec.AttrSpec{
			{Key: "text", Kind: lrec.KindText, Required: true},
			{Key: "about", Kind: lrec.KindText},
			{Key: "source", Kind: lrec.KindURL},
			{Key: "sentiment", Kind: lrec.KindCategory},
		}})
	reg.Register(lrec.Concept{Name: ConceptEvent, Domain: DomainLocal,
		Attrs: []lrec.AttrSpec{
			{Key: "name", Kind: lrec.KindName, Required: true},
			{Key: "city", Kind: lrec.KindCity},
			{Key: "venue", Kind: lrec.KindText},
			{Key: "date", Kind: lrec.KindDate},
		}})
	reg.Register(lrec.Concept{Name: ConceptAuthor, Domain: DomainAcademic,
		Attrs: []lrec.AttrSpec{
			{Key: "name", Kind: lrec.KindName, Required: true},
			{Key: "affiliation", Kind: lrec.KindText},
			{Key: "homepage", Kind: lrec.KindURL, MaxValues: 1},
		}})
	reg.Register(lrec.Concept{Name: ConceptPaper, Domain: DomainAcademic,
		Attrs: []lrec.AttrSpec{
			{Key: "title", Kind: lrec.KindName, Required: true},
			{Key: "venue", Kind: lrec.KindText},
			{Key: "year", Kind: lrec.KindDate},
			{Key: "authors", Kind: lrec.KindText},
		}})
	reg.Register(lrec.Concept{Name: ConceptProduct, Domain: DomainShopping,
		Attrs: []lrec.AttrSpec{
			{Key: "name", Kind: lrec.KindName, Required: true},
			{Key: "brand", Kind: lrec.KindText},
			{Key: "model", Kind: lrec.KindText},
			{Key: "kind", Kind: lrec.KindCategory},
			{Key: "price", Kind: lrec.KindPrice},
			{Key: "megapixels", Kind: lrec.KindNumber},
			{Key: "accessory_of", Kind: lrec.KindText},
		}})
	reg.Register(lrec.Concept{Name: ConceptShow, Domain: DomainMedia,
		Attrs: []lrec.AttrSpec{
			{Key: "title", Kind: lrec.KindName, Required: true},
			{Key: "years", Kind: lrec.KindText},
			{Key: "status", Kind: lrec.KindCategory},
		}})
	reg.Register(lrec.Concept{Name: ConceptActor, Domain: DomainMedia,
		Attrs: []lrec.AttrSpec{
			{Key: "name", Kind: lrec.KindName, Required: true},
			{Key: "shows", Kind: lrec.KindText},
		}})
}

// RegisterScaleConcepts registers the default concept set plus the concepts
// only the streamed heavy-tail world exercises (hotels). The default world's
// registry is deliberately left alone — its store snapshots are byte-stable
// across releases and a new concept would perturb them.
func RegisterScaleConcepts(reg *lrec.Registry) {
	RegisterConcepts(reg)
	reg.Register(lrec.Concept{Name: ConceptHotel, Domain: DomainLocal,
		Attrs: []lrec.AttrSpec{
			{Key: "name", Kind: lrec.KindName, Required: true},
			{Key: "hoteltype", Kind: lrec.KindCategory},
			{Key: "street", Kind: lrec.KindAddress, MaxValues: 1},
			{Key: "city", Kind: lrec.KindCity},
			{Key: "phone", Kind: lrec.KindPhone, MaxValues: 2},
			{Key: "homepage", Kind: lrec.KindURL, MaxValues: 1},
		}})
}

func titleCase(s string) string {
	if s == "" {
		return s
	}
	words := strings.Fields(s)
	for i, w := range words {
		words[i] = strings.ToUpper(w[:1]) + w[1:]
	}
	return strings.Join(words, " ")
}

func slugify(s string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == ' ' || r == '-' || r == '_':
			b.WriteByte('-')
		}
	}
	return strings.Trim(b.String(), "-")
}

// pick returns a deterministic pseudo-random element of list.
func pick(rng *rand.Rand, list []string) string {
	return list[rng.Intn(len(list))]
}

// pickN returns n distinct elements of list (fewer if list is short).
func pickN(rng *rand.Rand, list []string, n int) []string {
	if n >= len(list) {
		out := make([]string, len(list))
		copy(out, list)
		rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		return out
	}
	perm := rng.Perm(len(list))
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = list[perm[i]]
	}
	return out
}

// formatPhone renders a phone number in one of the formats used across the
// synthetic web; style is any integer.
func formatPhone(area, mid, last int, style int) string {
	switch style % 4 {
	case 1:
		return fmt.Sprintf("(%03d) %03d-%04d", area, mid, last)
	case 2:
		return fmt.Sprintf("%03d.%03d.%04d", area, mid, last)
	case 3:
		return fmt.Sprintf("%03d %03d %04d", area, mid, last)
	default:
		return fmt.Sprintf("%03d-%03d-%04d", area, mid, last)
	}
}
