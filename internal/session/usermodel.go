// Package session implements the §5.3–5.4 applications: user modeling
// (historical and session), content matching, concept recommendation
// (alternatives vs. augmentations), semantic linking, and the full Table 1
// matrix of page-to-page transition technologies.
package session

import (
	"math"
	"sort"

	"conceptweb/internal/core"
	"conceptweb/internal/textproc"
)

// Event is one observed user interaction, expressed in concept terms —
// "this user consumed reviews for three steak restaurants in zipcode 95054
// during the past hour" is a sequence of Events.
type Event struct {
	// RecordID is the concept instance involved ("" for pure queries).
	RecordID string
	// Query is the query text, if the event was a search.
	Query string
	// URL is the page visited, if any.
	URL string
	// Tick is the logical time of the event (caller-supplied, increasing).
	Tick int
}

// UserModel maintains the two §5.3 components: a historical model of
// long-standing interests and a session model of the current task.
type UserModel struct {
	Woc *core.WebOfConcepts
	// HalfLife controls historical decay in ticks (default 1000).
	HalfLife float64
	// SessionWindow is how many recent events form the session (default 10).
	SessionWindow int

	history  map[string]float64 // interest key -> decayed weight
	lastTick int
	session  []Event
}

// NewUserModel returns an empty model over a built web of concepts.
func NewUserModel(woc *core.WebOfConcepts) *UserModel {
	return &UserModel{
		Woc: woc, HalfLife: 1000, SessionWindow: 10,
		history: make(map[string]float64),
	}
}

// interestKeys derives the interest vocabulary of an event: the concept
// name, the record's category-like attributes, and its city.
func (m *UserModel) interestKeys(ev Event) []string {
	var keys []string
	if ev.RecordID != "" {
		if rec, err := m.Woc.Records.Get(ev.RecordID); err == nil {
			keys = append(keys, "concept:"+rec.Concept)
			for _, attr := range []string{"cuisine", "kind", "city", "venue", "status"} {
				if v := rec.Get(attr); v != "" {
					keys = append(keys, attr+":"+textproc.Normalize(v))
				}
			}
			if z := rec.Get("zip"); z != "" {
				keys = append(keys, "zip:"+z)
			}
		}
	}
	for _, t := range textproc.RemoveStopwords(textproc.Tokenize(ev.Query)) {
		keys = append(keys, "term:"+textproc.Stem(t))
	}
	return keys
}

// Observe folds one event into both models. Ticks must be non-decreasing.
func (m *UserModel) Observe(ev Event) {
	// Exponential decay of the historical model.
	if ev.Tick > m.lastTick && len(m.history) > 0 {
		dt := float64(ev.Tick - m.lastTick)
		decay := math.Exp2(-dt / m.HalfLife)
		for k := range m.history {
			m.history[k] *= decay
			if m.history[k] < 1e-6 {
				delete(m.history, k)
			}
		}
	}
	m.lastTick = ev.Tick
	for _, k := range m.interestKeys(ev) {
		m.history[k]++
	}
	m.session = append(m.session, ev)
	if len(m.session) > m.SessionWindow {
		m.session = m.session[len(m.session)-m.SessionWindow:]
	}
}

// Interest is one weighted interest key.
type Interest struct {
	Key    string
	Weight float64
}

// TopInterests returns the n strongest historical interests.
func (m *UserModel) TopInterests(n int) []Interest {
	out := make([]Interest, 0, len(m.history))
	for k, w := range m.history {
		out = append(out, Interest{Key: k, Weight: w})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		return out[i].Key < out[j].Key
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// SessionFocus summarizes the current session: the interest keys of the
// recent events, weighted by recency (most recent weighs most).
func (m *UserModel) SessionFocus() map[string]float64 {
	focus := make(map[string]float64)
	n := len(m.session)
	for i, ev := range m.session {
		w := float64(i+1) / float64(n)
		for _, k := range m.interestKeys(ev) {
			focus[k] += w
		}
	}
	return focus
}

// SessionRecords returns the distinct record IDs in the session window,
// most recent last.
func (m *UserModel) SessionRecords() []string {
	seen := make(map[string]bool)
	var out []string
	for _, ev := range m.session {
		if ev.RecordID != "" && !seen[ev.RecordID] {
			seen[ev.RecordID] = true
			out = append(out, ev.RecordID)
		}
	}
	return out
}
