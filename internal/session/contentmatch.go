package session

import (
	"sort"
)

// Content matching (§5.3 "Understanding Content"): "a user arriving at
// yahoo.com will encounter content that does not respond to a particular
// query, but is intended to be interesting and informative. An article about
// penetration of jai alai into the western US ... might be highly relevant
// to this user, but deeply uninteresting to other users." ScoreContent ranks
// candidate articles for a user by the overlap between the article's concept
// references and the user's historical and session interests.

// ContentItem is one candidate piece of content (an article page).
type ContentItem struct {
	URL   string
	Score float64
	// MatchedInterests are the user-interest keys that contributed.
	MatchedInterests []string
}

// ScoreContent ranks the given article URLs for the user. Articles gain
// score for every concept they reference whose interest keys appear in the
// user's models; session interests weigh more than historical ones (the
// current task dominates, per the Birks example).
func (m *UserModel) ScoreContent(urls []string, k int) []ContentItem {
	focus := m.SessionFocus()
	out := make([]ContentItem, 0, len(urls))
	for _, u := range urls {
		item := ContentItem{URL: u}
		seen := map[string]bool{}
		for _, rid := range m.Woc.AssocOf(u) {
			for _, key := range m.interestKeys(Event{RecordID: rid}) {
				if seen[key] {
					continue
				}
				seen[key] = true
				w := 2*focus[key] + 0.3*m.history[key]
				if w > 0 {
					item.Score += w
					item.MatchedInterests = append(item.MatchedInterests, key)
				}
			}
		}
		sort.Strings(item.MatchedInterests)
		out = append(out, item)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].URL < out[j].URL
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// FrontPage assembles a personalized §5.3 front page: the top content items
// plus, when the session shows a concrete local task, records matching it.
type FrontPage struct {
	Articles []ContentItem
	// TaskRecords are records matching the inferred session task (e.g. more
	// steak restaurants in zip 95054).
	TaskRecords []string
}

// BuildFrontPage ranks candidates and infers the session task.
func (m *UserModel) BuildFrontPage(candidateURLs []string, k int) FrontPage {
	fp := FrontPage{Articles: m.ScoreContent(candidateURLs, k)}
	// Session task: the strongest zip or city+cuisine focus, translated to
	// records the user has not yet seen.
	focus := m.SessionFocus()
	var bestKey string
	var bestW float64
	for key, w := range focus {
		if w > bestW && (len(key) > 4 && (key[:4] == "zip:" || key[:5] == "city:")) {
			bestKey, bestW = key, w
		}
	}
	if bestKey == "" {
		return fp
	}
	seen := map[string]bool{}
	for _, id := range m.SessionRecords() {
		seen[id] = true
	}
	var attr, val string
	if bestKey[:4] == "zip:" {
		attr, val = "zip", bestKey[4:]
	} else {
		attr, val = "city", bestKey[5:]
	}
	for _, rec := range m.Woc.Records.ByAttr("restaurant", attr, val) {
		if !seen[rec.ID] {
			fp.TaskRecords = append(fp.TaskRecords, rec.ID)
		}
		if len(fp.TaskRecords) >= k {
			break
		}
	}
	return fp
}
