package session

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"conceptweb/internal/core"
	"conceptweb/internal/logsim"
	"conceptweb/internal/lrec"
	"conceptweb/internal/search"
	"conceptweb/internal/webgen"
)

var (
	onceBuild sync.Once
	tw        *webgen.World
	teng      *search.Engine
)

func engine(t *testing.T) (*webgen.World, *search.Engine) {
	t.Helper()
	onceBuild.Do(func() {
		cfg := webgen.DefaultConfig()
		cfg.Restaurants = 60
		cfg.ReviewArticles = 24
		cfg.TVArticles = 6
		w := webgen.Generate(cfg)
		reg := lrec.NewRegistry()
		webgen.RegisterConcepts(reg)
		b := &core.Builder{Fetcher: w, Cfg: core.StandardConfig(reg, w.Cities(), webgen.Cuisines())}
		woc, _, err := b.Build(w.SeedURLs())
		if err != nil {
			panic(err)
		}
		tw = w
		teng = search.NewEngine(woc, search.NewParser(w.Cities(), webgen.Cuisines()))
	})
	return tw, teng
}

// mediaWoc hand-builds a small web of concepts holding the §5.3 browsing
// scenario: two shows sharing an actor, an article mentioning all three,
// plus a camera with an accessory.
func mediaWoc(t *testing.T) *core.WebOfConcepts {
	t.Helper()
	reg := lrec.NewRegistry()
	webgen.RegisterConcepts(reg)
	woc := &core.WebOfConcepts{
		Registry: reg,
		Records:  lrec.NewMemStore(lrec.WithRegistry(reg)),
		Assoc:    map[string][]string{},
		RevAssoc: map[string][]string{},
	}
	put := func(r *lrec.Record) {
		if err := woc.Records.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	put(lrec.NewRecord("show:kings", "tvshow").Set("title", "Kings Road").Set("status", "ended"))
	put(lrec.NewRecord("show:deadwood", "tvshow").Set("title", "Deadwood Creek").Set("status", "ended"))
	put(lrec.NewRecord("actor:mcshane", "actor").Set("name", "Ian McShane").
		Set("shows", "Kings Road, Deadwood Creek"))
	put(lrec.NewRecord("prod:g10", "product").Set("name", "Canox G10").Set("kind", "camera").Set("price", "$459.99"))
	put(lrec.NewRecord("prod:battery", "product").Set("name", "Canox Battery Pack for G10").
		Set("kind", "battery pack").Set("accessory_of", "prod:g10"))

	article := "tvdaily.example/article/0"
	for _, id := range []string{"show:kings", "show:deadwood", "actor:mcshane"} {
		woc.Assoc[article] = append(woc.Assoc[article], id)
		woc.RevAssoc[id] = append(woc.RevAssoc[id], article)
	}
	return woc
}

func TestUserModelHistoricalDecay(t *testing.T) {
	_, e := engine(t)
	m := NewUserModel(e.Woc)
	m.HalfLife = 10
	m.Observe(Event{Query: "jai alai schedule", Tick: 0})
	early := m.TopInterests(5)
	if len(early) == 0 || !strings.HasPrefix(early[0].Key, "term:") {
		t.Fatalf("interests = %v", early)
	}
	w0 := early[0].Weight
	// 20 ticks later, the old interest has decayed to ~1/4 weight.
	m.Observe(Event{Query: "completely different topic", Tick: 20})
	var wAfter float64
	for _, in := range m.TopInterests(0) {
		if in.Key == early[0].Key {
			wAfter = in.Weight
		}
	}
	if wAfter >= w0/2 {
		t.Errorf("no decay: %f -> %f", w0, wAfter)
	}
}

func TestUserModelSessionFocus(t *testing.T) {
	w, e := engine(t)
	m := NewUserModel(e.Woc)
	// Click three restaurants in the same city.
	city := ""
	n := 0
	for _, r := range w.Restaurants {
		recs := e.Woc.Records.ByAttr("restaurant", "phone", r.Phone)
		if len(recs) != 1 {
			continue
		}
		if city == "" {
			city = r.City
		}
		if r.City != city {
			continue
		}
		m.Observe(Event{RecordID: recs[0].ID, Tick: n})
		n++
		if n == 3 {
			break
		}
	}
	if n < 3 {
		t.Skip("not enough resolved restaurants in one city")
	}
	focus := m.SessionFocus()
	key := "city:" + strings.ToLower(city)
	if focus[key] <= 0 {
		t.Errorf("session focus lacks %q: %v", key, focus)
	}
	if got := m.SessionRecords(); len(got) != 3 {
		t.Errorf("session records = %v", got)
	}
}

func TestAlternativesSameCitySameCuisine(t *testing.T) {
	w, e := engine(t)
	rc := &Recommender{Woc: e.Woc}
	// Find a restaurant with at least one same-city same-cuisine peer.
	for _, r := range w.Restaurants {
		recs := e.Woc.Records.ByAttr("restaurant", "phone", r.Phone)
		if len(recs) != 1 {
			continue
		}
		alts, err := rc.Alternatives(recs[0].ID, 5)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range alts {
			if a.Record.ID == recs[0].ID {
				t.Fatal("self-recommendation")
			}
			if a.Record.Get("city") != r.City && a.Record.Get("cuisine") != r.Cuisine {
				t.Errorf("alternative %s shares neither city nor cuisine", a.Record.ID)
			}
		}
		if len(alts) > 0 {
			return // found a meaningful case and it passed
		}
	}
	t.Skip("no restaurant with alternatives at this size")
}

func TestAlternativesSuppressWorseRated(t *testing.T) {
	woc := mediaWoc(t)
	put := func(id, city, cuisine, rating string) {
		r := lrec.NewRecord(id, "restaurant").Set("name", id).
			Set("city", city).Set("cuisine", cuisine).Set("rating", rating)
		if err := woc.Records.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	put("good", "Cupertino", "thai", "4.5")
	put("peer", "Cupertino", "thai", "4.4")
	put("bad", "Cupertino", "thai", "2.0")
	rc := &Recommender{Woc: woc}
	alts, err := rc.Alternatives("good", 10)
	if err != nil {
		t.Fatal(err)
	}
	ids := map[string]bool{}
	for _, a := range alts {
		ids[a.Record.ID] = true
	}
	if !ids["peer"] {
		t.Error("similar-quality alternative missing")
	}
	if ids["bad"] {
		t.Error("clearly worse alternative not suppressed")
	}
}

func TestAugmentationsAccessory(t *testing.T) {
	woc := mediaWoc(t)
	rc := &Recommender{Woc: woc}
	augs, err := rc.Augmentations("prod:g10", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(augs) == 0 || augs[0].Record.ID != "prod:battery" {
		t.Fatalf("augmentations = %+v", augs)
	}
	// The battery augments the camera; the camera must not be *suppressed*
	// as an augmentation of the battery either (reverse direction).
	back, _ := rc.Augmentations("prod:battery", 5)
	found := false
	for _, a := range back {
		if a.Record.ID == "prod:g10" {
			found = true
		}
	}
	if !found {
		t.Error("reverse accessory link missing")
	}
}

func TestBrowsePivotScenario(t *testing.T) {
	// The §5.3 user journey: article about Kings -> concept page for the
	// actor -> concept page for Deadwood, via semantic linking pivots.
	woc := mediaWoc(t)
	article := "tvdaily.example/article/0"
	// Pivot 1: article -> concepts.
	ids := woc.AssocOf(article)
	if len(ids) != 3 {
		t.Fatalf("article concepts = %v", ids)
	}
	// Pivot 2: actor record -> its articles -> sibling concepts.
	arts := woc.PagesOf("actor:mcshane")
	if len(arts) != 1 || arts[0] != article {
		t.Fatalf("actor articles = %v", arts)
	}
	reachable := map[string]bool{}
	for _, a := range arts {
		for _, id := range woc.AssocOf(a) {
			reachable[id] = true
		}
	}
	if !reachable["show:deadwood"] {
		t.Error("cannot pivot from Kings article through actor to Deadwood")
	}
}

func TestPersonalizedRankBirksScenario(t *testing.T) {
	// Two same-name candidates: a jeweler and a steakhouse. A session spent
	// on restaurants in one zip must rank the steakhouse first.
	reg := lrec.NewRegistry()
	webgen.RegisterConcepts(reg)
	reg.Register(lrec.Concept{Name: "business", Domain: "local",
		Attrs: []lrec.AttrSpec{{Key: "name"}, {Key: "kind"}, {Key: "city"}, {Key: "zip"}}})
	woc := &core.WebOfConcepts{Registry: reg,
		Records: lrec.NewMemStore(lrec.WithRegistry(reg)),
		Assoc:   map[string][]string{}, RevAssoc: map[string][]string{}}

	jeweler := lrec.NewRecord("biz:birks-jeweler", "business").
		Set("name", "Birks and Mayors").Set("kind", "jeweler").Set("city", "Toronto")
	steak := lrec.NewRecord("rest:birks-steak", "restaurant").
		Set("name", "Birk's Steakhouse").Set("cuisine", "american").
		Set("city", "Santa Clara").Set("zip", "95054")
	other := lrec.NewRecord("rest:other-steak", "restaurant").
		Set("name", "Valley Chophouse").Set("cuisine", "american").
		Set("city", "Santa Clara").Set("zip", "95054")
	for _, r := range []*lrec.Record{jeweler, steak, other} {
		if err := woc.Records.Put(r); err != nil {
			t.Fatal(err)
		}
	}

	m := NewUserModel(woc)
	m.Observe(Event{RecordID: "rest:other-steak", Tick: 1})
	m.Observe(Event{RecordID: "rest:other-steak", Tick: 2})

	rc := &Recommender{Woc: woc}
	recs := []Recommendation{
		{Record: jeweler, Score: 1.0},
		{Record: steak, Score: 1.0},
	}
	ranked := rc.PersonalizedRank(m, recs)
	if ranked[0].Record.ID != "rest:birks-steak" {
		t.Errorf("session context did not disambiguate: %+v", ranked[0].Record.ID)
	}
	// Without session context, order is alphabetical-stable (jeweler first).
	fresh := rc.PersonalizedRank(NewUserModel(woc), recs)
	if fresh[0].Record.ID != "biz:birks-jeweler" {
		t.Errorf("baseline order unexpected: %v", fresh[0].Record.ID)
	}
}

func TestTable1AllCells(t *testing.T) {
	w, e := engine(t)
	tr := NewTransitions(e)

	// Every non-empty cell has a name; the empty cell does not.
	if CellName(ArticlePage, ResultPage) != "" {
		t.Error("article->result should be the empty cell")
	}
	filled := 0
	for _, p := range []PageType{ResultPage, ConceptPage, ArticlePage} {
		for _, q := range []PageType{ResultPage, ConceptPage, ArticlePage} {
			if CellName(p, q) != "" {
				filled++
			}
		}
	}
	if filled != 8 {
		t.Errorf("filled cells = %d, want 8", filled)
	}

	// Exercise each implemented technology on real data.
	var r *webgen.Restaurant
	var recID string
	for _, cand := range w.Restaurants {
		if cand.Homepage == "" {
			continue
		}
		recs := e.Woc.Records.ByAttr("restaurant", "phone", cand.Phone)
		if len(recs) == 1 {
			r, recID = cand, recs[0].ID
			break
		}
	}
	if r == nil {
		t.Fatal("no test restaurant")
	}
	q := r.Cuisine + " " + strings.ToLower(r.City)

	if got := tr.ResultToResult(q, 5); len(got) == 0 {
		t.Error("assistance empty")
	}
	if got := tr.ResultToConcept(q, 5); len(got) == 0 {
		t.Error("concept search empty")
	}
	if got := tr.ResultToArticle(q, 5); len(got) == 0 {
		t.Error("vanilla search empty")
	}
	if got := tr.ConceptToResult(recID, r.Menu[0], 5); len(got) == 0 {
		t.Error("search within concept empty")
	}
	if got := tr.ConceptToConcept(recID, 5); len(got) == 0 {
		t.Error("concept recommendation empty")
	}
	if got := tr.ConceptToArticle(recID, 5); len(got) == 0 {
		t.Error("concept->article semantic linking empty")
	}
	arts := tr.ConceptToArticle(recID, 5)
	if got := tr.ArticleToConcept(arts[0].Target, 5); len(got) == 0 {
		t.Error("article->concept semantic linking empty")
	}
	if got := tr.ArticleToArticle(arts[0].Target, 5); len(got) == 0 {
		t.Error("related pages empty")
	}
}

func TestRelatedPagesAreTopical(t *testing.T) {
	w, e := engine(t)
	tr := NewTransitions(e)
	// A menu page's most related pages should come from the same site or
	// same restaurant (shared dishes, shared name).
	var menuURL, host string
	for _, p := range w.Pages() {
		if p.Truth.Kind == webgen.KindMenu {
			menuURL = p.URL
			host = p.Truth.Site
			break
		}
	}
	if menuURL == "" {
		t.Fatal("no menu page")
	}
	links := tr.ArticleToArticle(menuURL, 3)
	if len(links) == 0 {
		t.Fatal("no related pages")
	}
	sameSite := 0
	for _, l := range links {
		if strings.HasPrefix(l.Target, host) {
			sameSite++
		}
	}
	if sameSite == 0 {
		t.Errorf("none of the top related pages are from %s: %+v", host, links)
	}
}

func TestScoreContentJaiAlaiScenario(t *testing.T) {
	// Two articles: one about shows the user follows, one unrelated. The
	// interested user ranks the first higher; a fresh user is indifferent.
	woc := mediaWoc(t)
	other := "tvdaily.example/article/other"
	otherShow := lrec.NewRecord("show:other", "tvshow").Set("title", "Foggy Shore").Set("status", "running")
	if err := woc.Records.Put(otherShow); err != nil {
		t.Fatal(err)
	}
	woc.Assoc[other] = []string{"show:other"}
	woc.RevAssoc["show:other"] = []string{other}

	m := NewUserModel(woc)
	m.Observe(Event{RecordID: "show:kings", Tick: 1})
	m.Observe(Event{RecordID: "actor:mcshane", Tick: 2})

	urls := []string{other, "tvdaily.example/article/0"}
	ranked := m.ScoreContent(urls, 2)
	if ranked[0].URL != "tvdaily.example/article/0" {
		t.Errorf("interest-matched article not first: %+v", ranked)
	}
	if len(ranked[0].MatchedInterests) == 0 {
		t.Error("no matched interests recorded")
	}
	fresh := NewUserModel(woc).ScoreContent(urls, 2)
	if fresh[0].Score != 0 || fresh[1].Score != 0 {
		t.Errorf("fresh user should be indifferent: %+v", fresh)
	}
}

func TestBuildFrontPageSessionTask(t *testing.T) {
	// A session of steak restaurants in zip 95054 should surface the other
	// 95054 restaurants as task records.
	reg := lrec.NewRegistry()
	webgen.RegisterConcepts(reg)
	woc := &core.WebOfConcepts{Registry: reg,
		Records: lrec.NewMemStore(lrec.WithRegistry(reg)),
		Assoc:   map[string][]string{}, RevAssoc: map[string][]string{}}
	for i, name := range []string{"Birk's Steakhouse", "Valley Chophouse", "Prime Cut"} {
		r := lrec.NewRecord(fmt.Sprintf("rest:%d", i), "restaurant").
			Set("name", name).Set("zip", "95054").Set("city", "Santa Clara")
		if err := woc.Records.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	m := NewUserModel(woc)
	m.Observe(Event{RecordID: "rest:0", Tick: 1})
	m.Observe(Event{RecordID: "rest:1", Tick: 2})
	fp := m.BuildFrontPage(nil, 5)
	if len(fp.TaskRecords) == 0 {
		t.Fatal("no task records inferred")
	}
	found := false
	for _, id := range fp.TaskRecords {
		if id == "rest:2" {
			found = true
		}
		if id == "rest:0" || id == "rest:1" {
			t.Errorf("already-seen record recommended: %s", id)
		}
	}
	if !found {
		t.Errorf("unseen 95054 restaurant missing: %v", fp.TaskRecords)
	}
}

// TestTrailsDriveUserModel closes the §5.3 loop: simulated toolbar trails
// feed the user model through semantic page→record associations, and the
// model's session focus reflects what the user actually browsed.
func TestTrailsDriveUserModel(t *testing.T) {
	w, e := engine(t)
	logs := logsim.NewSimulator(w, logsim.DefaultConfig()).Run()
	m := NewUserModel(e.Woc)
	tick := 0
	fed := 0
	for _, tr := range logs.Trails {
		for _, u := range tr.Pages {
			if strings.HasPrefix(u, logsim.SERPPrefix) {
				m.Observe(Event{Query: strings.TrimPrefix(u, logsim.SERPPrefix), Tick: tick})
				tick++
				continue
			}
			for _, rid := range e.Woc.AssocOf(u) {
				m.Observe(Event{RecordID: rid, URL: u, Tick: tick})
				tick++
				fed++
			}
		}
		if fed > 60 {
			break
		}
	}
	if fed == 0 {
		t.Fatal("no trail pages resolved to records")
	}
	interests := m.TopInterests(10)
	if len(interests) == 0 {
		t.Fatal("no interests learned")
	}
	hasConcept := false
	for _, in := range interests {
		if in.Key == "concept:restaurant" {
			hasConcept = true
		}
	}
	if !hasConcept {
		t.Errorf("restaurant browsing did not register: %v", interests)
	}
}
