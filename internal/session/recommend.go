package session

import (
	"sort"
	"strconv"

	"conceptweb/internal/core"
	"conceptweb/internal/lrec"
	"conceptweb/internal/obs"
	"conceptweb/internal/textproc"
)

// Concept recommendation (§5.4): "concept recommendation should not be
// viewed as a single problem with a single optimization criterion" — the two
// key instances are alternatives (substitutes that might displace the
// current record, where worse options are suppressed) and augmentations
// (complements ranked by conditional interest, with no displacement logic).

// Recommendation is one recommended record with its score and reason.
type Recommendation struct {
	Record *lrec.Record
	Score  float64
	Reason string
}

// Recommender produces alternatives and augmentations over a built web of
// concepts.
type Recommender struct {
	Woc *core.WebOfConcepts
	// Metrics, when non-nil, counts and times recommendation calls.
	Metrics *obs.Registry
}

// Alternatives recommends substitutes for a record: same concept, same
// city, similar cuisine or price, ranked by similarity then rating — and
// options clearly worse than the current record are suppressed ("the goal of
// the system is to suppress recommendations that the user finds less
// preferable overall").
func (rc *Recommender) Alternatives(recordID string, k int) ([]Recommendation, error) {
	defer rc.Metrics.Time("rec.alternatives.latency")()
	rc.Metrics.Counter("rec.alternatives.calls").Inc()
	cur, err := rc.Woc.Records.Get(recordID)
	if err != nil {
		return nil, err
	}
	curRating := parseRating(cur.Get("rating"))
	var out []Recommendation
	for _, cand := range rc.Woc.Records.ByConcept(cur.Concept) {
		if cand.ID == cur.ID {
			continue
		}
		score := 0.0
		reason := ""
		if eq(cand, cur, "city") {
			score += 2
			reason = "same city"
		}
		if eq(cand, cur, "cuisine") {
			score += 2
			if reason != "" {
				reason += ", "
			}
			reason += "same cuisine"
		}
		if eq(cand, cur, "price") {
			score += 0.5
		}
		if eq(cand, cur, "kind") { // products: same kind substitutes
			score += 2
			reason = "same kind"
		}
		if score < 2 {
			continue // not a plausible substitute
		}
		// Suppression: an alternative rated clearly below the current
		// record is not shown.
		candRating := parseRating(cand.Get("rating"))
		if curRating > 0 && candRating > 0 && candRating < curRating-0.5 {
			continue
		}
		score += candRating / 5
		out = append(out, Recommendation{Record: cand, Score: score, Reason: reason})
	}
	sortRecs(out)
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out, nil
}

// Augmentations recommends complements for a record: products that declare
// themselves accessories of it (the Canon G10 → NB-7L battery example), and
// for local records, events in the same city. Ranking is by "degree of
// interest conditioned on engagement with the primary record"; no
// suppression applies.
func (rc *Recommender) Augmentations(recordID string, k int) ([]Recommendation, error) {
	defer rc.Metrics.Time("rec.augmentations.latency")()
	rc.Metrics.Counter("rec.augmentations.calls").Inc()
	cur, err := rc.Woc.Records.Get(recordID)
	if err != nil {
		return nil, err
	}
	var out []Recommendation
	// Declared accessory relations.
	for _, cand := range rc.Woc.Records.ByAttr("product", "accessory_of", cur.ID) {
		out = append(out, Recommendation{Record: cand, Score: 3, Reason: "accessory"})
	}
	// Ground-truth accessory ids may reference the entity id rather than the
	// record id; try the record's own declared accessory links too.
	for _, v := range cur.All("accessory_of") {
		if cam, err := rc.Woc.Records.Get(v.Value); err == nil {
			out = append(out, Recommendation{Record: cam, Score: 2.5, Reason: "accessory of"})
		}
	}
	// Same-city events complement local entities.
	if city := cur.Get("city"); city != "" && cur.Concept != "event" {
		for _, ev := range rc.Woc.Records.ByAttr("event", "city", city) {
			out = append(out, Recommendation{Record: ev, Score: 1, Reason: "event nearby"})
		}
	}
	sortRecs(out)
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out, nil
}

func eq(a, b *lrec.Record, key string) bool {
	av, bv := a.Get(key), b.Get(key)
	return av != "" && textproc.Normalize(av) == textproc.Normalize(bv)
}

func parseRating(s string) float64 {
	if s == "" {
		return 0
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0
	}
	return f
}

func sortRecs(out []Recommendation) {
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Record.ID < out[j].Record.ID
	})
}

// PersonalizedRank re-ranks recommendations by the user's session focus and
// historical interests — the §5.3 "matching content to a particular user in
// a particular context". This is also the machinery behind the Birks
// example: a user who has been viewing restaurants in zip 95054 ranks
// Birk's Steakhouse above Birks & Mayors.
func (rc *Recommender) PersonalizedRank(m *UserModel, recs []Recommendation) []Recommendation {
	focus := m.SessionFocus()
	hist := m.history
	out := append([]Recommendation(nil), recs...)
	for i := range out {
		bonus := 0.0
		for _, key := range m.interestKeys(Event{RecordID: out[i].Record.ID}) {
			bonus += 2*focus[key] + 0.2*hist[key]
		}
		out[i].Score += bonus
	}
	sortRecs(out)
	return out
}
