package session

import (
	"sort"
	"sync"

	"conceptweb/internal/core"
	"conceptweb/internal/search"
	"conceptweb/internal/textproc"
	"conceptweb/internal/webgraph"
)

// Table 1 of the paper: "Technologies for Interconnecting Different Page
// Types". Rows are the source page type p, columns the destination type q:
//
//	p↓ q⇒      Result                Concept                  Article
//	Result     Assistance            Concept search           Vanilla search
//	Concept    Search w/in concept   Concept recommendation   Semantic linking
//	Article    —                     Semantic linking         Related pages
//
// Transitions materializes every implemented cell.

// PageType is one of the three §5.4 page types.
type PageType int

// Page types.
const (
	ResultPage PageType = iota
	ConceptPage
	ArticlePage
)

// String names the page type.
func (t PageType) String() string {
	switch t {
	case ResultPage:
		return "result"
	case ConceptPage:
		return "concept"
	default:
		return "article"
	}
}

// Link is one offered transition target.
type Link struct {
	// Target is a URL, a record ID, or a query string, per TargetKind.
	Target string
	// TargetKind is "url", "record", or "query".
	TargetKind string
	Label      string
	Score      float64
}

// Transitions implements the Table 1 technology matrix over a built web of
// concepts.
type Transitions struct {
	Woc    *core.WebOfConcepts
	Engine *search.Engine
	Rec    *Recommender

	vecOnce sync.Once
	vecs    map[string]textproc.Vector
	vecURLs []string
}

// NewTransitions wires the matrix over an engine.
func NewTransitions(e *search.Engine) *Transitions {
	// The recommender inherits the engine's metrics registry so all
	// application-layer instruments land in one namespace.
	return &Transitions{Woc: e.Woc, Engine: e,
		Rec: &Recommender{Woc: e.Woc, Metrics: e.Metrics}}
}

// CellName returns the technology in cell (p, q), "" for the empty cell.
func CellName(p, q PageType) string {
	names := map[[2]PageType]string{
		{ResultPage, ResultPage}:   "assistance",
		{ResultPage, ConceptPage}:  "concept search",
		{ResultPage, ArticlePage}:  "vanilla search",
		{ConceptPage, ResultPage}:  "search within concept",
		{ConceptPage, ConceptPage}: "concept recommendation",
		{ConceptPage, ArticlePage}: "semantic linking",
		{ArticlePage, ConceptPage}: "semantic linking",
		{ArticlePage, ArticlePage}: "related pages",
	}
	return names[[2]PageType{p, q}]
}

// ResultToResult: assistance — reformulation suggestions for a query.
func (tr *Transitions) ResultToResult(query string, k int) []Link {
	parsed := tr.Engine.Parser.Parse(query)
	var out []Link
	for _, s := range tr.Engine.Parser.SuggestAssistance(parsed) {
		out = append(out, Link{Target: s, TargetKind: "query", Label: s, Score: 1})
	}
	return cap_(out, k)
}

// ResultToConcept: concept search — records answering the query.
func (tr *Transitions) ResultToConcept(query string, k int) []Link {
	var out []Link
	for _, h := range tr.Engine.ConceptSearch(query, nil, k) {
		label := h.Record.Get("name")
		if label == "" {
			label = h.Record.Get("title")
		}
		out = append(out, Link{Target: h.Record.ID, TargetKind: "record", Label: label, Score: h.Score})
	}
	return out
}

// ResultToArticle: vanilla search — ranked documents.
func (tr *Transitions) ResultToArticle(query string, k int) []Link {
	var out []Link
	for _, d := range tr.Engine.Search(query, k).Results {
		out = append(out, Link{Target: d.URL, TargetKind: "url", Label: d.URL, Score: d.Score})
	}
	return out
}

// ConceptToResult: search within the concept's own web.
func (tr *Transitions) ConceptToResult(recordID, query string, k int) []Link {
	var out []Link
	for _, d := range tr.Engine.SearchWithinConcept(recordID, query, k) {
		out = append(out, Link{Target: d.URL, TargetKind: "url", Label: d.URL, Score: d.Score})
	}
	return out
}

// ConceptToConcept: concept recommendation (alternatives + augmentations).
func (tr *Transitions) ConceptToConcept(recordID string, k int) []Link {
	var out []Link
	alts, _ := tr.Rec.Alternatives(recordID, k)
	for _, r := range alts {
		out = append(out, Link{Target: r.Record.ID, TargetKind: "record",
			Label: "alternative: " + r.Record.Get("name"), Score: r.Score})
	}
	augs, _ := tr.Rec.Augmentations(recordID, k)
	for _, r := range augs {
		label := r.Record.Get("name")
		if label == "" {
			label = r.Record.Get("title")
		}
		out = append(out, Link{Target: r.Record.ID, TargetKind: "record",
			Label: "augmentation: " + label, Score: r.Score})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return cap_(out, k)
}

// ConceptToArticle: semantic linking — articles mentioning the record.
func (tr *Transitions) ConceptToArticle(recordID string, k int) []Link {
	var out []Link
	for _, u := range tr.Woc.PagesOf(recordID) {
		out = append(out, Link{Target: u, TargetKind: "url", Label: u, Score: 1})
	}
	return cap_(out, k)
}

// ArticleToConcept: semantic linking — records the article is about.
func (tr *Transitions) ArticleToConcept(url string, k int) []Link {
	var out []Link
	for _, id := range tr.Woc.AssocOf(url) {
		label := id
		if rec, err := tr.Woc.Records.Get(id); err == nil {
			if n := rec.Get("name"); n != "" {
				label = n
			} else if t := rec.Get("title"); t != "" {
				label = t
			}
		}
		out = append(out, Link{Target: id, TargetKind: "record", Label: label, Score: 1})
	}
	return cap_(out, k)
}

// ArticleToArticle: related pages by TF-IDF cosine over page text, with
// shared concept references as an extra feature ("perhaps employing concept
// references as part of the feature vector"). The page vectors are built
// lazily once and cached.
func (tr *Transitions) ArticleToArticle(url string, k int) []Link {
	tr.buildVectors()
	srcVec, ok := tr.vecs[url]
	if !ok {
		return nil
	}
	srcConcepts := textproc.TokenSet(tr.Woc.AssocOf(url))
	var out []Link
	for _, other := range tr.vecURLs {
		if other == url {
			continue
		}
		sim := textproc.Cosine(srcVec, tr.vecs[other])
		if sim <= 0.05 {
			continue
		}
		shared := 0
		for _, id := range tr.Woc.AssocOf(other) {
			if srcConcepts[id] {
				shared++
			}
		}
		out = append(out, Link{Target: other, TargetKind: "url", Label: other,
			Score: sim + 0.3*float64(shared)})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Target < out[j].Target
	})
	return cap_(out, k)
}

// buildVectors populates the cached TF-IDF vectors over all pages.
func (tr *Transitions) buildVectors() {
	tr.vecOnce.Do(func() {
		corpus := textproc.NewCorpus()
		toks := make(map[string][]string)
		tr.Woc.Pages.Scan(func(p *webgraph.Page) bool {
			ts := textproc.StemAll(textproc.RemoveStopwords(textproc.Tokenize(p.Doc.Text())))
			toks[p.URL] = ts
			corpus.Add(ts)
			tr.vecURLs = append(tr.vecURLs, p.URL)
			return true
		})
		tr.vecs = make(map[string]textproc.Vector, len(toks))
		for u, ts := range toks {
			tr.vecs[u] = corpus.Vectorize(ts)
		}
	})
}

func cap_(out []Link, k int) []Link {
	if k > 0 && len(out) > k {
		return out[:k]
	}
	return out
}
