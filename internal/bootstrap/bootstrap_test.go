package bootstrap

import (
	"strings"
	"testing"

	"conceptweb/internal/textproc"
	"conceptweb/internal/webgen"
	"conceptweb/internal/webgraph"
)

func menuPages(w *webgen.World) []*webgraph.Page {
	var out []*webgraph.Page
	for _, p := range w.Pages() {
		if p.Truth.Kind == webgen.KindMenu {
			out = append(out, webgraph.NewPage(p.URL, p.HTML))
		}
	}
	return out
}

// italianSeeds returns a few dishes from the first Italian menu found.
func italianSeeds(w *webgen.World, n int) []string {
	for _, r := range w.Restaurants {
		if r.Cuisine == "italian" && r.Homepage != "" {
			if n > len(r.Menu) {
				n = len(r.Menu)
			}
			return r.Menu[:n]
		}
	}
	return nil
}

func TestBootstrapGrowsFromSeeds(t *testing.T) {
	cfg := webgen.DefaultConfig()
	cfg.Restaurants = 100
	cfg.ReviewArticles = 5
	w := webgen.Generate(cfg)
	seeds := italianSeeds(w, 3)
	if len(seeds) < 2 {
		t.Fatal("no italian seeds")
	}
	b := &Bootstrapper{Concept: "menuitem", CategoryKey: "cuisine"}
	res := b.Run(menuPages(w), map[string][]string{"italian": seeds})
	if len(res.Candidates) == 0 {
		t.Fatal("bootstrap harvested nothing")
	}
	if len(res.Rounds) < 1 {
		t.Fatal("no rounds recorded")
	}
	// Growth curve: the known set must strictly grow while rounds harvest.
	prev := 0
	for _, r := range res.Rounds {
		if r.NewRecords > 0 && r.KnownAfter <= prev {
			t.Errorf("round %d: known %d did not grow from %d", r.Round, r.KnownAfter, prev)
		}
		prev = r.KnownAfter
	}
	// Precision: harvested "italian" dishes should overwhelmingly be dishes
	// that appear on real Italian menus (cross-cuisine dish overlap makes
	// 100% impossible by construction).
	truth := make(map[string]bool)
	for _, r := range w.Restaurants {
		if r.Cuisine == "italian" {
			for _, d := range r.Menu {
				truth[textproc.Normalize(d)] = true
			}
		}
	}
	good := 0
	for _, c := range res.Candidates {
		if truth[textproc.Normalize(c.Get("name"))] {
			good++
		}
	}
	precision := float64(good) / float64(len(res.Candidates))
	t.Logf("bootstrap: %d harvested over %d rounds, precision=%.3f",
		len(res.Candidates), len(res.Rounds), precision)
	if precision < 0.7 {
		t.Errorf("precision %.3f too low", precision)
	}
}

func TestBootstrapConfidenceDecays(t *testing.T) {
	cfg := webgen.DefaultConfig()
	cfg.Restaurants = 100
	cfg.ReviewArticles = 5
	w := webgen.Generate(cfg)
	b := &Bootstrapper{Concept: "menuitem", CategoryKey: "cuisine", Decay: 0.8}
	res := b.Run(menuPages(w), map[string][]string{"italian": italianSeeds(w, 2)})
	byRound := map[int]float64{}
	for _, c := range res.Candidates {
		round := 0
		for _, op := range c.Operators {
			if strings.HasPrefix(op, "bootstrap[round=") {
				// parse single digit rounds, enough for tests
				round = int(op[len("bootstrap[round=")] - '0')
			}
		}
		byRound[round] = c.Confidence
	}
	if len(byRound) < 2 {
		t.Skip("bootstrap converged in one round at this seed")
	}
	if byRound[2] >= byRound[1] {
		t.Errorf("confidence did not decay: r1=%f r2=%f", byRound[1], byRound[2])
	}
}

func TestBootstrapNeedsOverlap(t *testing.T) {
	// Seeds that match nothing on the page should harvest nothing: a single
	// accidental overlap must not be enough (MinOverlap=2 default).
	html := `<html><body><ul class="menu">
<li class="dish"><span>alpha dish</span><span>$1.00</span></li>
<li class="dish"><span>beta dish</span><span>$2.00</span></li>
<li class="dish"><span>gamma dish</span><span>$3.00</span></li>
</ul></body></html>`
	p := webgraph.NewPage("x.example/menu", html)
	b := &Bootstrapper{Concept: "menuitem", CategoryKey: "cuisine"}
	res := b.Run([]*webgraph.Page{p}, map[string][]string{
		"italian": {"alpha dish", "unrelated thing", "another unrelated"},
	})
	if len(res.Candidates) != 0 {
		t.Errorf("single overlap harvested %d records", len(res.Candidates))
	}
	// With two seed hits, the third item is harvested.
	res = b.Run([]*webgraph.Page{p}, map[string][]string{
		"italian": {"alpha dish", "beta dish"},
	})
	if len(res.Candidates) != 1 || textproc.Normalize(res.Candidates[0].Get("name")) != "gamma dish" {
		t.Errorf("harvest = %+v", res.Candidates)
	}
	if res.Candidates[0].Get("cuisine") != "italian" {
		t.Errorf("category = %q", res.Candidates[0].Get("cuisine"))
	}
}

func TestBootstrapCategoryCompetition(t *testing.T) {
	// A list overlapping two categories goes to the one with more matches.
	html := `<html><body><ul class="menu">
<li><span>shared one</span></li><li><span>shared two</span></li>
<li><span>thai only</span></li><li><span>new dish</span></li>
</ul></body></html>`
	p := webgraph.NewPage("x.example/menu", html)
	b := &Bootstrapper{Concept: "menuitem", CategoryKey: "cuisine"}
	res := b.Run([]*webgraph.Page{p}, map[string][]string{
		"italian": {"shared one", "shared two"},
		"thai":    {"shared one", "shared two", "thai only"},
	})
	for _, c := range res.Candidates {
		if c.Get("cuisine") != "thai" {
			t.Errorf("category = %q, want thai (larger overlap)", c.Get("cuisine"))
		}
	}
}

func TestBootstrapEmptyInputs(t *testing.T) {
	b := &Bootstrapper{Concept: "x", CategoryKey: "k"}
	if res := b.Run(nil, map[string][]string{"a": {"x"}}); len(res.Candidates) != 0 {
		t.Error("no pages should harvest nothing")
	}
	p := webgraph.NewPage("x/y", "<html><body><ul><li>a</li><li>b</li><li>c</li></ul></body></html>")
	if res := b.Run([]*webgraph.Page{p}, nil); len(res.Candidates) != 0 {
		t.Error("no seeds should harvest nothing")
	}
}
