// Package bootstrap implements aggregator mining (§4.2): using already
// extracted records to automatically label and extract more records. The
// paper's running example — start from a small set of Italian menu items;
// when a structurally-detected list on some restaurant site contains a few
// known items, infer that the whole list is an Italian menu and harvest the
// unknown items — is exactly what Run does, iterated to fixpoint.
package bootstrap

import (
	"fmt"
	"sort"

	"conceptweb/internal/extract"
	"conceptweb/internal/textproc"
	"conceptweb/internal/webgraph"
)

// Bootstrapper configures the mining loop.
type Bootstrapper struct {
	// Concept is the concept name stamped on harvested candidates.
	Concept string
	// CategoryKey is the attribute that carries the seed category
	// (e.g. "cuisine" for menu items).
	CategoryKey string
	// MinItems is the minimum structural list size considered (default 3).
	MinItems int
	// MinOverlap is how many list items must match known records before the
	// list is trusted (default 2; 1 invites semantic drift).
	MinOverlap int
	// MaxRounds bounds the iterations (default 10).
	MaxRounds int
	// Decay multiplies confidence per round: round-r harvests carry
	// confidence Decay^r, recording that transitively-acquired knowledge is
	// weaker evidence (default 0.9).
	Decay float64
}

// RoundStats records one bootstrap round for the growth-curve experiment A3.
type RoundStats struct {
	Round         int
	NewRecords    int
	ListsAccepted int
	KnownAfter    int
}

// Result is the outcome of a bootstrap run.
type Result struct {
	// Candidates are the newly harvested records (seeds are not re-emitted).
	Candidates []*extract.Candidate
	Rounds     []RoundStats
}

// Run mines pages starting from seeds: category -> known item names.
// It returns the harvested candidates with lineage and per-round stats.
func (b *Bootstrapper) Run(pages []*webgraph.Page, seeds map[string][]string) *Result {
	minItems := b.MinItems
	if minItems <= 0 {
		minItems = 3
	}
	minOverlap := b.MinOverlap
	if minOverlap <= 0 {
		minOverlap = 2
	}
	maxRounds := b.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 10
	}
	decay := b.Decay
	if decay <= 0 || decay > 1 {
		decay = 0.9
	}

	// known: category -> normalized name -> true.
	known := make(map[string]map[string]bool)
	var categories []string
	for cat, names := range seeds {
		m := make(map[string]bool, len(names))
		for _, n := range names {
			m[textproc.Normalize(n)] = true
		}
		known[cat] = m
		categories = append(categories, cat)
	}
	sort.Strings(categories)

	// Pre-extract the structural lists once; they do not change per round.
	type pageLists struct {
		page  *webgraph.Page
		lists [][]string
	}
	var all []pageLists
	for _, p := range pages {
		if ls := extract.PageLists(p.Doc, minItems); len(ls) > 0 {
			all = append(all, pageLists{p, ls})
		}
	}

	res := &Result{}
	conf := 1.0
	for round := 1; round <= maxRounds; round++ {
		conf *= decay
		stats := RoundStats{Round: round}
		// Collect this round's harvest per category; fold into `known` only
		// after the sweep so a round is order-independent.
		harvest := make(map[string]map[string]string) // cat -> norm -> original
		for _, pl := range all {
			for _, items := range pl.lists {
				cat, overlap := bestCategory(items, known, categories)
				if cat == "" || overlap < minOverlap {
					continue
				}
				stats.ListsAccepted++
				for _, it := range items {
					norm := textproc.Normalize(it)
					if norm == "" || known[cat][norm] {
						continue
					}
					if harvest[cat] == nil {
						harvest[cat] = make(map[string]string)
					}
					if _, dup := harvest[cat][norm]; dup {
						continue
					}
					harvest[cat][norm] = it
					c := extract.NewCandidate(b.Concept, pl.page.URL,
						fmt.Sprintf("bootstrap[round=%d]", round))
					c.Add("name", it, conf)
					c.Add(b.CategoryKey, cat, conf)
					c.Confidence = conf
					res.Candidates = append(res.Candidates, c)
					stats.NewRecords++
				}
			}
		}
		for cat, m := range harvest {
			for norm := range m {
				known[cat][norm] = true
			}
		}
		stats.KnownAfter = totalKnown(known)
		res.Rounds = append(res.Rounds, stats)
		if stats.NewRecords == 0 {
			break
		}
	}
	return res
}

// bestCategory returns the category with the largest overlap with items,
// ties broken alphabetically for determinism.
func bestCategory(items []string, known map[string]map[string]bool, categories []string) (string, int) {
	bestCat, bestN := "", 0
	for _, cat := range categories {
		n := 0
		for _, it := range items {
			if known[cat][textproc.Normalize(it)] {
				n++
			}
		}
		if n > bestN {
			bestCat, bestN = cat, n
		}
	}
	return bestCat, bestN
}

func totalKnown(known map[string]map[string]bool) int {
	n := 0
	for _, m := range known {
		n += len(m)
	}
	return n
}
