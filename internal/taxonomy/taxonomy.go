// Package taxonomy implements the concept-organization layer of §2.3: a
// curated taxonomy of typed relations between concepts (is-a, part-of,
// instance-of — the Nikon D40 example: a D40 is a kind of digital camera,
// which is a kind of camera; a D40 is part of a camera package; a physical
// unit is an instance of the D40 model) and a data-driven alternative built
// by hierarchical agglomerative clustering over record text.
package taxonomy

import (
	"errors"
	"fmt"
	"sort"
)

// Relation is the type of an edge between taxonomy nodes.
type Relation int

// Relations.
const (
	IsA Relation = iota
	PartOf
	InstanceOf
)

// String names the relation.
func (r Relation) String() string {
	switch r {
	case IsA:
		return "is-a"
	case PartOf:
		return "part-of"
	case InstanceOf:
		return "instance-of"
	default:
		return fmt.Sprintf("relation(%d)", int(r))
	}
}

// ErrCycle is returned when adding an edge would create a cycle within one
// relation type.
var ErrCycle = errors.New("taxonomy: edge would create a cycle")

type edge struct {
	to  string
	rel Relation
}

// Taxonomy is a DAG of typed relations over named nodes (concepts, concept
// instances, or anything else the caller wants to organize).
type Taxonomy struct {
	out map[string][]edge
	in  map[string][]edge
}

// New returns an empty taxonomy.
func New() *Taxonomy {
	return &Taxonomy{out: make(map[string][]edge), in: make(map[string][]edge)}
}

// Add asserts `from --rel--> to` (e.g. Add("nikon-d40", IsA, "digital camera")).
// Adding a duplicate edge is a no-op; an edge that would close a cycle in
// the same relation returns ErrCycle.
func (t *Taxonomy) Add(from string, rel Relation, to string) error {
	for _, e := range t.out[from] {
		if e.to == to && e.rel == rel {
			return nil
		}
	}
	if t.reaches(to, from, rel) {
		return fmt.Errorf("%w: %s %s %s", ErrCycle, from, rel, to)
	}
	t.out[from] = append(t.out[from], edge{to: to, rel: rel})
	t.in[to] = append(t.in[to], edge{to: from, rel: rel})
	return nil
}

// reaches reports whether start can reach goal following rel edges forward.
func (t *Taxonomy) reaches(start, goal string, rel Relation) bool {
	if start == goal {
		return true
	}
	seen := map[string]bool{start: true}
	stack := []string{start}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range t.out[n] {
			if e.rel != rel || seen[e.to] {
				continue
			}
			if e.to == goal {
				return true
			}
			seen[e.to] = true
			stack = append(stack, e.to)
		}
	}
	return false
}

// Ancestors returns every node reachable from n via rel edges, sorted.
func (t *Taxonomy) Ancestors(n string, rel Relation) []string {
	seen := make(map[string]bool)
	stack := []string{n}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range t.out[cur] {
			if e.rel == rel && !seen[e.to] {
				seen[e.to] = true
				stack = append(stack, e.to)
			}
		}
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Descendants returns every node that reaches n via rel edges, sorted.
func (t *Taxonomy) Descendants(n string, rel Relation) []string {
	seen := make(map[string]bool)
	stack := []string{n}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range t.in[cur] {
			if e.rel == rel && !seen[e.to] {
				seen[e.to] = true
				stack = append(stack, e.to)
			}
		}
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// IsKindOf reports whether a is (transitively) a kind of b.
func (t *Taxonomy) IsKindOf(a, b string) bool { return t.reaches(a, b, IsA) }

// Parents returns n's direct rel parents, sorted.
func (t *Taxonomy) Parents(n string, rel Relation) []string {
	var out []string
	for _, e := range t.out[n] {
		if e.rel == rel {
			out = append(out, e.to)
		}
	}
	sort.Strings(out)
	return out
}

// InstancesOf returns the direct InstanceOf children of n, sorted.
func (t *Taxonomy) InstancesOf(n string) []string {
	var out []string
	for _, e := range t.in[n] {
		if e.rel == InstanceOf {
			out = append(out, e.to)
		}
	}
	sort.Strings(out)
	return out
}

// Nodes returns every node mentioned by any edge, sorted.
func (t *Taxonomy) Nodes() []string {
	seen := make(map[string]bool)
	for n := range t.out {
		seen[n] = true
	}
	for n := range t.in {
		seen[n] = true
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
