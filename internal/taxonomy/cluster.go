package taxonomy

import (
	"fmt"
	"sort"

	"conceptweb/internal/textproc"
)

// Data-driven taxonomy construction (§2.3): "a collection of such concepts
// may lend itself to hierarchical categorization techniques that yield a
// data-driven taxonomy". We implement average-linkage hierarchical
// agglomerative clustering over TF-IDF vectors of record text; cutting the
// dendrogram at k clusters yields a flat categorization, and the merge tree
// itself is the taxonomy.

// Item is one object to cluster: an ID and its describing text.
type Item struct {
	ID   string
	Text string
}

// Dendrogram is the result of hierarchical clustering.
type Dendrogram struct {
	items []Item
	// merges[i] records the i-th merge: the two cluster indexes merged and
	// the similarity at which it happened. Leaf clusters are 0..n-1; merge i
	// creates cluster n+i.
	merges []merge
	vecs   []textproc.Vector
	corpus *textproc.Corpus
}

type merge struct {
	a, b int
	sim  float64
}

// Cluster runs average-linkage agglomerative clustering (via centroid
// cosine, a standard scalable approximation) until one cluster remains.
func Cluster(items []Item) *Dendrogram {
	d := &Dendrogram{items: items, corpus: textproc.NewCorpus()}
	toks := make([][]string, len(items))
	for i, it := range items {
		toks[i] = textproc.StemAll(textproc.RemoveStopwords(textproc.Tokenize(it.Text)))
		d.corpus.Add(toks[i])
	}
	type clust struct {
		idx  int
		vec  textproc.Vector
		size int
		dead bool
	}
	clusters := make([]*clust, len(items))
	for i := range items {
		vec := d.corpus.Vectorize(toks[i])
		d.vecs = append(d.vecs, vec)
		clusters[i] = &clust{idx: i, vec: vec, size: 1}
	}
	live := len(clusters)
	for live > 1 {
		// Find the most similar live pair (deterministic tie-breaks).
		bi, bj, best := -1, -1, -1.0
		for i := 0; i < len(clusters); i++ {
			if clusters[i].dead {
				continue
			}
			for j := i + 1; j < len(clusters); j++ {
				if clusters[j].dead {
					continue
				}
				s := textproc.Cosine(clusters[i].vec, clusters[j].vec)
				if s > best {
					bi, bj, best = i, j, s
				}
			}
		}
		a, b := clusters[bi], clusters[bj]
		nv := make(textproc.Vector, len(a.vec)+len(b.vec))
		for t, w := range a.vec {
			nv[t] += w * float64(a.size)
		}
		for t, w := range b.vec {
			nv[t] += w * float64(b.size)
		}
		total := float64(a.size + b.size)
		for t := range nv {
			nv[t] /= total
		}
		d.merges = append(d.merges, merge{a: a.idx, b: b.idx, sim: best})
		a.dead, b.dead = true, true
		clusters = append(clusters, &clust{
			idx: len(d.items) + len(d.merges) - 1, vec: nv, size: a.size + b.size,
		})
		live--
	}
	return d
}

// Cut returns k clusters as slices of item IDs (each sorted; clusters sorted
// by first member). k is clamped to [1, n].
func (d *Dendrogram) Cut(k int) [][]string {
	n := len(d.items)
	if n == 0 {
		return nil
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	// Apply the first n-k merges with union-find.
	parent := make([]int, n+len(d.merges))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for i := 0; i < n-k && i < len(d.merges); i++ {
		m := d.merges[i]
		node := n + i
		parent[find(m.a)] = node
		parent[find(m.b)] = node
	}
	groups := make(map[int][]string)
	for i, it := range d.items {
		groups[find(i)] = append(groups[find(i)], it.ID)
	}
	out := make([][]string, 0, len(groups))
	for _, g := range groups {
		sort.Strings(g)
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// Label summarizes a cluster (a set of item IDs) with its top TF-IDF terms.
func (d *Dendrogram) Label(cluster []string, nTerms int) []string {
	member := make(map[string]bool, len(cluster))
	for _, id := range cluster {
		member[id] = true
	}
	sum := make(textproc.Vector)
	for i, it := range d.items {
		if !member[it.ID] {
			continue
		}
		for t, w := range d.vecs[i] {
			sum[t] += w
		}
	}
	return textproc.TopTerms(sum, nTerms)
}

// BuildTaxonomy converts a k-cut of the dendrogram into a Taxonomy: each
// cluster becomes a node named by its label, each item an InstanceOf child,
// and every cluster node an IsA child of root.
func (d *Dendrogram) BuildTaxonomy(k int, root string) *Taxonomy {
	t := New()
	used := map[string]bool{root: true}
	for ci, cluster := range d.Cut(k) {
		terms := d.Label(cluster, 2)
		name := root
		if len(terms) > 0 {
			name = terms[0]
			if len(terms) > 1 {
				name += "-" + terms[1]
			}
		}
		// Distinct clusters must stay distinct even when their top terms
		// coincide.
		if used[name] {
			name = fmt.Sprintf("%s-%d", name, ci)
		}
		used[name] = true
		t.Add(name, IsA, root) //nolint:errcheck // fresh nodes cannot cycle
		for _, id := range cluster {
			t.Add(id, InstanceOf, name) //nolint:errcheck
		}
	}
	return t
}
