package taxonomy

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"conceptweb/internal/webgen"
)

// TestCameraHierarchy encodes the paper's §2.3 Nikon D40 example verbatim.
func TestCameraHierarchy(t *testing.T) {
	tx := New()
	check := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	check(tx.Add("nikon d40", IsA, "digital camera"))
	check(tx.Add("digital camera", IsA, "camera"))
	check(tx.Add("nikon d40", IsA, "nikon cameras"))
	check(tx.Add("nikon d40", PartOf, "holiday camera package"))
	check(tx.Add("unit-serial-123", InstanceOf, "nikon d40"))
	check(tx.Add("unit-serial-456", InstanceOf, "nikon d40"))

	if !tx.IsKindOf("nikon d40", "camera") {
		t.Error("transitive is-a failed")
	}
	if tx.IsKindOf("camera", "nikon d40") {
		t.Error("is-a is not symmetric")
	}
	if got := tx.Ancestors("nikon d40", IsA); !reflect.DeepEqual(got,
		[]string{"camera", "digital camera", "nikon cameras"}) {
		t.Errorf("ancestors = %v", got)
	}
	if got := tx.Descendants("camera", IsA); !reflect.DeepEqual(got,
		[]string{"digital camera", "nikon d40"}) {
		t.Errorf("descendants = %v", got)
	}
	if got := tx.InstancesOf("nikon d40"); len(got) != 2 {
		t.Errorf("instances = %v", got)
	}
	if got := tx.Parents("nikon d40", PartOf); !reflect.DeepEqual(got, []string{"holiday camera package"}) {
		t.Errorf("part-of = %v", got)
	}
}

func TestCycleRejection(t *testing.T) {
	tx := New()
	tx.Add("a", IsA, "b")
	tx.Add("b", IsA, "c")
	if err := tx.Add("c", IsA, "a"); !errors.Is(err, ErrCycle) {
		t.Errorf("err = %v", err)
	}
	if err := tx.Add("a", IsA, "a"); !errors.Is(err, ErrCycle) {
		t.Errorf("self loop err = %v", err)
	}
	// A cycle in a different relation type is allowed (is-a up, part-of down).
	if err := tx.Add("c", PartOf, "a"); err != nil {
		t.Errorf("cross-relation err = %v", err)
	}
}

func TestAddDuplicateEdge(t *testing.T) {
	tx := New()
	tx.Add("a", IsA, "b")
	if err := tx.Add("a", IsA, "b"); err != nil {
		t.Errorf("duplicate add err = %v", err)
	}
	if got := tx.Parents("a", IsA); len(got) != 1 {
		t.Errorf("parents = %v", got)
	}
}

func TestNodes(t *testing.T) {
	tx := New()
	tx.Add("x", IsA, "y")
	if got := tx.Nodes(); !reflect.DeepEqual(got, []string{"x", "y"}) {
		t.Errorf("nodes = %v", got)
	}
}

func TestClusterSeparatesTopics(t *testing.T) {
	items := []Item{
		{ID: "r1", Text: "margherita pizza pasta lasagna risotto italian trattoria"},
		{ID: "r2", Text: "spaghetti carbonara pizza gnocchi italian kitchen"},
		{ID: "r3", Text: "tacos salsa burrito carnitas mexican cantina"},
		{ID: "r4", Text: "enchiladas guacamole tacos mexican taqueria"},
		{ID: "r5", Text: "sushi ramen nigiri japanese izakaya"},
		{ID: "r6", Text: "tempura udon sushi japanese bar"},
	}
	d := Cluster(items)
	cut := d.Cut(3)
	if len(cut) != 3 {
		t.Fatalf("cut = %v", cut)
	}
	want := map[string]string{"r1": "r2", "r3": "r4", "r5": "r6"}
	clusterOf := map[string]int{}
	for ci, c := range cut {
		for _, id := range c {
			clusterOf[id] = ci
		}
	}
	for a, b := range want {
		if clusterOf[a] != clusterOf[b] {
			t.Errorf("%s and %s in different clusters: %v", a, b, cut)
		}
	}
	// Labels should surface topical terms.
	for _, c := range cut {
		terms := d.Label(c, 3)
		if len(terms) == 0 {
			t.Errorf("no label for %v", c)
		}
	}
}

func TestCutBounds(t *testing.T) {
	items := []Item{{ID: "a", Text: "x"}, {ID: "b", Text: "y"}}
	d := Cluster(items)
	if got := d.Cut(0); len(got) != 1 {
		t.Errorf("k=0 -> %v", got)
	}
	if got := d.Cut(10); len(got) != 2 {
		t.Errorf("k=10 -> %v", got)
	}
	if got := Cluster(nil).Cut(1); got != nil {
		t.Errorf("empty cluster cut = %v", got)
	}
}

func TestBuildTaxonomyFromClusters(t *testing.T) {
	items := []Item{
		{ID: "r1", Text: "pizza pasta italian"},
		{ID: "r2", Text: "pizza lasagna italian"},
		{ID: "r3", Text: "tacos salsa mexican"},
		{ID: "r4", Text: "burrito salsa mexican"},
	}
	d := Cluster(items)
	tx := d.BuildTaxonomy(2, "restaurant")
	// Every item must be an instance of some cluster that is-a restaurant.
	for _, id := range []string{"r1", "r2", "r3", "r4"} {
		parents := tx.Parents(id, InstanceOf)
		if len(parents) != 1 {
			t.Fatalf("%s parents = %v", id, parents)
		}
		if !tx.IsKindOf(parents[0], "restaurant") {
			t.Errorf("cluster %s not under root", parents[0])
		}
	}
}

// Data-driven taxonomy over the synthetic world: restaurants cluster by
// cuisine vocabulary.
func TestClusterSyntheticRestaurants(t *testing.T) {
	cfg := webgen.DefaultConfig()
	cfg.Restaurants = 40
	cfg.ReviewArticles = 2
	cfg.TVArticles = 2
	w := webgen.Generate(cfg)
	var items []Item
	cuisineOf := map[string]string{}
	for _, r := range w.Restaurants[:24] {
		items = append(items, Item{
			ID:   r.ID,
			Text: r.Cuisine + " " + fmt.Sprint(r.Menu),
		})
		cuisineOf[r.ID] = r.Cuisine
	}
	d := Cluster(items)
	cut := d.Cut(10)
	// Purity: most clusters should be cuisine-pure.
	pure, total := 0, 0
	for _, c := range cut {
		counts := map[string]int{}
		for _, id := range c {
			counts[cuisineOf[id]]++
		}
		maxN := 0
		for _, n := range counts {
			if n > maxN {
				maxN = n
			}
		}
		pure += maxN
		total += len(c)
	}
	purity := float64(pure) / float64(total)
	t.Logf("cluster purity over cuisines = %.3f", purity)
	if purity < 0.7 {
		t.Errorf("purity %.3f too low", purity)
	}
}
