package ads

import (
	"math"
	"testing"

	"conceptweb/internal/lrec"
)

func steakhouse() *lrec.Record {
	return lrec.NewRecord("rest:birks", "restaurant").
		Set("name", "Birk's Steakhouse").Set("city", "Santa Clara").
		Set("zip", "95054").Set("cuisine", "american")
}

func TestTargetMatches(t *testing.T) {
	rec := steakhouse()
	cases := []struct {
		tgt  Target
		want bool
	}{
		{Target{Concept: "restaurant", Key: "zip", Value: "95054"}, true},
		{Target{Concept: "restaurant", Key: "zip", Value: "99999"}, false},
		{Target{Concept: "restaurant"}, true},
		{Target{Concept: "hotel"}, false},
		{Target{Concept: "restaurant", Key: "cuisine", Value: "AMERICAN"}, true},
	}
	for _, c := range cases {
		if got := c.tgt.Matches(rec); got != c.want {
			t.Errorf("%+v.Matches = %v", c.tgt, got)
		}
	}
	if (Target{Concept: "restaurant"}).Matches(nil) {
		t.Error("nil record matched")
	}
}

func TestRelevanceComponents(t *testing.T) {
	rec := steakhouse()
	kw := Ad{ID: "kw", Keywords: []string{"steak dinner", "steakhouse"}}
	if r := Relevance(kw, Context{Query: "best steakhouse santa clara"}); r <= 0 {
		t.Errorf("keyword relevance = %f", r)
	}
	if r := Relevance(kw, Context{Query: "flower delivery"}); r != 0 {
		t.Errorf("irrelevant keyword relevance = %f", r)
	}
	ct := Ad{ID: "ct", Targets: []Target{{Concept: "restaurant", Key: "zip", Value: "95054"}}}
	if r := Relevance(ct, Context{Record: rec}); r != 1 {
		t.Errorf("concept relevance = %f", r)
	}
	ik := Ad{ID: "ik", InterestKeys: []string{"cuisine:american"}}
	if r := Relevance(ik, Context{Interests: map[string]float64{"cuisine:american": 0.8}}); math.Abs(r-0.8) > 1e-9 {
		t.Errorf("interest relevance = %f", r)
	}
	// Interest contribution caps at 1.
	if r := Relevance(ik, Context{Interests: map[string]float64{"cuisine:american": 5}}); r != 1 {
		t.Errorf("capped interest relevance = %f", r)
	}
}

func TestConceptBiddingBeatsKeywordOnConceptQueries(t *testing.T) {
	// The §5.5 scenario: the steakhouse owner bids on "any query that hits
	// on a restaurant in zipcode 95054". A competitor bids the same amount
	// on the keyword "restaurant". For a navigational query that triggers
	// the record but shares no keyword with the ad, only concept targeting
	// fires.
	inv := NewInventory()
	inv.Add(Ad{ID: "concept-bid", Bid: 1.0,
		Targets: []Target{{Concept: "restaurant", Key: "zip", Value: "95054"}}})
	inv.Add(Ad{ID: "keyword-bid", Bid: 1.0, Keywords: []string{"restaurant"}})
	ctx := Context{Query: "birks santa clara", Record: steakhouse()}
	placements := Auction(inv, ctx, 2)
	if len(placements) == 0 || placements[0].Ad.ID != "concept-bid" {
		t.Fatalf("placements = %+v", placements)
	}
}

func TestAuctionSecondPrice(t *testing.T) {
	inv := NewInventory()
	inv.Add(Ad{ID: "high", Bid: 2.0, Keywords: []string{"pizza"}})
	inv.Add(Ad{ID: "low", Bid: 1.0, Keywords: []string{"pizza"}})
	ctx := Context{Query: "pizza near me"}
	p := Auction(inv, ctx, 1)
	if len(p) != 1 || p[0].Ad.ID != "high" {
		t.Fatalf("placements = %+v", p)
	}
	// Winner pays just above the runner-up's rank score, not its own bid.
	if p[0].Price >= 2.0 || p[0].Price < 1.0 {
		t.Errorf("price = %f, want in [1.0, 2.0)", p[0].Price)
	}
}

func TestAuctionQualityWeighting(t *testing.T) {
	// A lower bid with much higher relevance should win.
	inv := NewInventory()
	inv.Add(Ad{ID: "rich-irrelevant", Bid: 3.0, Keywords: []string{"pizza", "tacos", "sushi", "burgers"}})
	inv.Add(Ad{ID: "poor-relevant", Bid: 1.0, Keywords: []string{"pizza"}})
	p := Auction(inv, Context{Query: "pizza"}, 1)
	if len(p) != 1 || p[0].Ad.ID != "poor-relevant" {
		t.Fatalf("placements = %+v", p)
	}
}

func TestAuctionNoEligible(t *testing.T) {
	inv := NewInventory()
	inv.Add(Ad{ID: "x", Bid: 1, Keywords: []string{"boats"}})
	if p := Auction(inv, Context{Query: "pizza"}, 3); len(p) != 0 {
		t.Errorf("placements = %+v", p)
	}
	if p := Auction(NewInventory(), Context{Query: "pizza"}, 3); len(p) != 0 {
		t.Errorf("empty inventory placements = %+v", p)
	}
}

func TestAuctionMultiSlot(t *testing.T) {
	inv := NewInventory()
	for _, tc := range []struct {
		id  string
		bid float64
	}{{"a", 3}, {"b", 2}, {"c", 1}} {
		inv.Add(Ad{ID: tc.id, Bid: tc.bid, Keywords: []string{"pizza"}})
	}
	p := Auction(inv, Context{Query: "pizza"}, 2)
	if len(p) != 2 || p[0].Ad.ID != "a" || p[1].Ad.ID != "b" {
		t.Fatalf("placements = %+v", p)
	}
	if p[0].Price > p[0].Ad.Bid || p[1].Price > p[1].Ad.Bid {
		t.Error("price exceeds bid")
	}
	// Prices are descending with slot position.
	if p[1].Price > p[0].Price {
		t.Errorf("slot prices inverted: %f then %f", p[0].Price, p[1].Price)
	}
}

func TestAuctionDeterministicTieBreak(t *testing.T) {
	inv := NewInventory()
	inv.Add(Ad{ID: "zed", Bid: 1, Keywords: []string{"pizza"}})
	inv.Add(Ad{ID: "abe", Bid: 1, Keywords: []string{"pizza"}})
	p := Auction(inv, Context{Query: "pizza"}, 2)
	if p[0].Ad.ID != "abe" {
		t.Errorf("tie break not by ID: %v", p[0].Ad.ID)
	}
}
