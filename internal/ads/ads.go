// Package ads implements the §5.5 advertising applications: matching ads to
// users through the lens of the web of concepts, and a marketplace where
// advertisers bid on concepts instead of keywords — "the proprietor of Birks
// Steakhouse might place a bid on any query that hits on a restaurant in
// zipcode 95054".
package ads

import (
	"sort"

	"conceptweb/internal/lrec"
	"conceptweb/internal/textproc"
)

// Target is a concept predicate an ad bids on: records of Concept whose
// attribute Key has value Value (Key=="" means any record of the concept).
type Target struct {
	Concept string
	Key     string
	Value   string
}

// Matches reports whether the record satisfies the target.
func (t Target) Matches(rec *lrec.Record) bool {
	if rec == nil || rec.Concept != t.Concept {
		return false
	}
	if t.Key == "" {
		return true
	}
	for _, v := range rec.All(t.Key) {
		if textproc.Normalize(v.Value) == textproc.Normalize(t.Value) {
			return true
		}
	}
	return false
}

// Ad is one advertisement with its bid and its targeting: keywords
// (traditional) and/or concept targets (the marketplace extension).
type Ad struct {
	ID         string
	Advertiser string
	Creative   string
	Bid        float64 // cost-per-click bid
	Keywords   []string
	Targets    []Target
	// InterestKeys target user-model interests ("concept:restaurant",
	// "cuisine:thai", "zip:95054") for §5.5 matching beyond the query.
	InterestKeys []string
}

// Context is what the ad system knows at serve time: the query, the record
// the query triggered (if any), and the user's interest weights.
type Context struct {
	Query     string
	Record    *lrec.Record
	Interests map[string]float64
}

// Inventory holds the ad corpus.
type Inventory struct {
	ads []Ad
}

// NewInventory returns an empty inventory.
func NewInventory() *Inventory { return &Inventory{} }

// Add registers an ad.
func (inv *Inventory) Add(ad Ad) { inv.ads = append(inv.ads, ad) }

// Len returns the number of ads.
func (inv *Inventory) Len() int { return len(inv.ads) }

// Relevance scores how well an ad matches the context, in [0, ~3]:
// keyword/query overlap, concept-target hits, and interest-key hits.
func Relevance(ad Ad, ctx Context) float64 {
	var score float64
	if ctx.Query != "" && len(ad.Keywords) > 0 {
		q := textproc.TokenSet(textproc.StemAll(textproc.Tokenize(ctx.Query)))
		hit := 0
		for _, kw := range ad.Keywords {
			for _, t := range textproc.StemAll(textproc.Tokenize(kw)) {
				if q[t] {
					hit++
					break
				}
			}
		}
		score += float64(hit) / float64(len(ad.Keywords))
	}
	for _, tgt := range ad.Targets {
		if tgt.Matches(ctx.Record) {
			score += 1
			break
		}
	}
	if len(ad.InterestKeys) > 0 && len(ctx.Interests) > 0 {
		var s float64
		for _, k := range ad.InterestKeys {
			s += ctx.Interests[k]
		}
		if s > 1 {
			s = 1
		}
		score += s
	}
	return score
}

// Placement is one auction outcome.
type Placement struct {
	Ad        Ad
	Relevance float64
	// Price is what the advertiser pays per click (second-price logic).
	Price float64
}

// Auction runs a quality-weighted generalized second-price auction for k
// slots: ads rank by bid × relevance; each winner pays the minimum bid that
// would have kept its slot (the classic GSP price), floored at 0.01.
func Auction(inv *Inventory, ctx Context, k int) []Placement {
	type scored struct {
		ad  Ad
		rel float64
		rs  float64 // rank score = bid * relevance
	}
	var elig []scored
	for _, ad := range inv.ads {
		rel := Relevance(ad, ctx)
		if rel <= 0 {
			continue
		}
		elig = append(elig, scored{ad: ad, rel: rel, rs: ad.Bid * rel})
	}
	sort.SliceStable(elig, func(i, j int) bool {
		if elig[i].rs != elig[j].rs {
			return elig[i].rs > elig[j].rs
		}
		return elig[i].ad.ID < elig[j].ad.ID
	})
	if k <= 0 {
		k = 1
	}
	if len(elig) > k {
		elig = elig[:k+min(1, len(elig)-k)] // keep one extra for pricing
	}
	out := make([]Placement, 0, k)
	for i := 0; i < len(elig) && i < k; i++ {
		price := 0.01
		if i+1 < len(elig) && elig[i].rel > 0 {
			price = elig[i+1].rs/elig[i].rel + 0.01
			if price > elig[i].ad.Bid {
				price = elig[i].ad.Bid
			}
		}
		out = append(out, Placement{Ad: elig[i].ad, Relevance: elig[i].rel, Price: price})
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
