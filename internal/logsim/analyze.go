package logsim

import (
	"sort"
	"strings"

	"conceptweb/internal/textproc"
	"conceptweb/internal/webgen"
)

// The four §3 analyses. Each consumes only the emitted logs (plus the side
// inputs the paper's analysts also had: the aggregator's URL shapes and a
// list of restaurant homepages) — never the simulator's calibration
// constants.

// E1Result is the "Concepts vs. Search" breakdown: the sub-categories of
// clicked aggregator URLs. Paper: biz 59%, search 19%, category 11%.
type E1Result struct {
	TotalClicks int
	BizFrac     float64
	SearchFrac  float64
	CatFrac     float64
	OtherFrac   float64
	// InstanceLow/High and SetLow/High are the derived §3 estimates of how
	// often users search for a specific instance vs. a set ("60%-70%" and
	// "10%-20%").
	InstanceLow, InstanceHigh float64
	SetLow, SetHigh           float64
}

// AnalyzeE1 classifies every logged click on the host by URL shape.
func AnalyzeE1(logs *Logs, host string) E1Result {
	var res E1Result
	var biz, search, cat, other int
	for _, q := range logs.Queries {
		for _, u := range q.Clicks {
			if !strings.HasPrefix(u, host+"/") {
				continue
			}
			res.TotalClicks++
			switch {
			case strings.Contains(u, "/biz/"):
				biz++
			case strings.Contains(u, "/search/"):
				search++
			case strings.Contains(u, "/c/"):
				cat++
			default:
				other++
			}
		}
	}
	if res.TotalClicks == 0 {
		return res
	}
	n := float64(res.TotalClicks)
	res.BizFrac = float64(biz) / n
	res.SearchFrac = float64(search) / n
	res.CatFrac = float64(cat) / n
	res.OtherFrac = float64(other) / n
	// The paper's derivation: biz clicks are instance searches; search-page
	// clicks split between instance and set intent; category clicks are set
	// searches. Bounds assume all/none of the search clicks lean each way.
	res.InstanceLow = res.BizFrac
	res.InstanceHigh = res.BizFrac + res.SearchFrac
	res.SetLow = res.CatFrac
	res.SetHigh = res.CatFrac + res.SearchFrac
	return res
}

// TokenFrac is one attribute token with its fraction of homepage-click
// queries.
type TokenFrac struct {
	Token string
	Frac  float64
}

// E2Result is the "Searching for Attributes of a Concept" study.
type E2Result struct {
	HomepageQueries int
	Tokens          []TokenFrac
}

// AnalyzeE2 examines queries that clicked a restaurant homepage, strips the
// restaurant's name and location tokens, and tallies what remains — the
// paper's methodology verbatim.
func AnalyzeE2(logs *Logs, w *webgen.World) E2Result {
	// Side input: homepage URL -> tokens to strip (name + location).
	strip := make(map[string]map[string]bool)
	for _, r := range w.Restaurants {
		if r.Homepage == "" {
			continue
		}
		home := strings.TrimSuffix(r.Homepage, "/") + "/"
		set := textproc.TokenSet(textproc.Tokenize(
			r.Name + " " + r.NameVariant(1) + " " + r.NameVariant(2) + " " + r.City + " " + r.Zip))
		strip[home] = set
	}

	var res E2Result
	counts := map[string]int{}
	for _, q := range logs.Queries {
		var stripSet map[string]bool
		for _, u := range q.Clicks {
			if s, ok := strip[u]; ok {
				stripSet = s
				break
			}
		}
		if stripSet == nil {
			continue
		}
		res.HomepageQueries++
		seen := map[string]bool{}
		for _, t := range textproc.Tokenize(q.Query) {
			if stripSet[t] || textproc.IsStopword(t) || seen[t] {
				continue
			}
			seen[t] = true
			counts[t]++
		}
	}
	if res.HomepageQueries == 0 {
		return res
	}
	for t, c := range counts {
		res.Tokens = append(res.Tokens, TokenFrac{Token: t, Frac: float64(c) / float64(res.HomepageQueries)})
	}
	sort.Slice(res.Tokens, func(i, j int) bool {
		if res.Tokens[i].Frac != res.Tokens[j].Frac {
			return res.Tokens[i].Frac > res.Tokens[j].Frac
		}
		return res.Tokens[i].Token < res.Tokens[j].Token
	})
	return res
}

// E3Result is the "Value in Aggregation" study: among queries with a biz
// click, how often users also clicked other URLs. Paper: ≥1 other 59%,
// ≥2 others 35%.
type E3Result struct {
	BizClickQueries int
	AtLeast1Other   float64
	AtLeast2Other   float64
}

// AnalyzeE3 measures multi-source clicking among biz-URL clickers.
func AnalyzeE3(logs *Logs, host string) E3Result {
	var res E3Result
	var ge1, ge2 int
	for _, q := range logs.Queries {
		hasBiz := false
		others := 0
		for _, u := range q.Clicks {
			if strings.HasPrefix(u, host+"/") && strings.Contains(u, "/biz/") {
				hasBiz = true
			} else {
				others++
			}
		}
		if !hasBiz {
			continue
		}
		res.BizClickQueries++
		if others >= 1 {
			ge1++
		}
		if others >= 2 {
			ge2++
		}
	}
	if res.BizClickQueries == 0 {
		return res
	}
	res.AtLeast1Other = float64(ge1) / float64(res.BizClickQueries)
	res.AtLeast2Other = float64(ge2) / float64(res.BizClickQueries)
	return res
}

// E4Result is the "Concepts vs. Browsing" study over toolbar trails.
// Paper: 42% search-preceded; next page location 11.5%, menu 9%, coupons 1%;
// 10.5% of trails contain >1 restaurant instance.
type E4Result struct {
	HomepageVisits   int
	SearchPreceded   float64
	NextLocationFrac float64
	NextMenuFrac     float64
	NextCouponsFrac  float64
	Trails           int
	MultiInstance    float64
}

// AnalyzeE4 follows the paper: take the homepage URL list, find trail steps
// through those URLs, classify the preceding and following steps.
func AnalyzeE4(logs *Logs, w *webgen.World) E4Result {
	homepages := make(map[string]string) // URL -> restaurant ID
	for _, r := range w.Restaurants {
		if r.Homepage != "" {
			homepages[strings.TrimSuffix(r.Homepage, "/")+"/"] = r.ID
		}
	}
	var res E4Result
	var preceded, nextLoc, nextMenu, nextCoupons, multi int
	for _, t := range logs.Trails {
		distinct := map[string]bool{}
		for i, u := range t.Pages {
			rid, isHome := homepages[u]
			if !isHome {
				continue
			}
			distinct[rid] = true
			res.HomepageVisits++
			if i > 0 && strings.HasPrefix(t.Pages[i-1], SERPPrefix) {
				preceded++
			}
			if i+1 < len(t.Pages) {
				next := t.Pages[i+1]
				switch {
				case strings.HasSuffix(next, "/location"):
					nextLoc++
				case strings.HasSuffix(next, "/menu") || strings.HasSuffix(next, "/food"):
					nextMenu++
				case strings.HasSuffix(next, "/coupons"):
					nextCoupons++
				}
			}
		}
		res.Trails++
		if len(distinct) > 1 {
			multi++
		}
	}
	if res.HomepageVisits > 0 {
		n := float64(res.HomepageVisits)
		res.SearchPreceded = float64(preceded) / n
		res.NextLocationFrac = float64(nextLoc) / n
		res.NextMenuFrac = float64(nextMenu) / n
		res.NextCouponsFrac = float64(nextCoupons) / n
	}
	if res.Trails > 0 {
		res.MultiInstance = float64(multi) / float64(res.Trails)
	}
	return res
}
