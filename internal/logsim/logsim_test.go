package logsim

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"conceptweb/internal/webgen"
)

var (
	once  sync.Once
	world *webgen.World
	logs  *Logs
)

func simulated(t *testing.T) (*webgen.World, *Logs) {
	t.Helper()
	once.Do(func() {
		world = webgen.Generate(webgen.DefaultConfig())
		logs = NewSimulator(world, DefaultConfig()).Run()
	})
	return world, logs
}

func TestSimulateDeterministic(t *testing.T) {
	w := webgen.Generate(webgen.DefaultConfig())
	l1 := NewSimulator(w, DefaultConfig()).Run()
	l2 := NewSimulator(w, DefaultConfig()).Run()
	if len(l1.Queries) != len(l2.Queries) || len(l1.Trails) != len(l2.Trails) {
		t.Fatal("log sizes differ across runs")
	}
	for i := range l1.Queries {
		if l1.Queries[i].Query != l2.Queries[i].Query {
			t.Fatalf("query %d differs", i)
		}
	}
}

func TestClicksPointAtRealPages(t *testing.T) {
	w, l := simulated(t)
	for _, q := range l.Queries {
		if len(q.Clicks) == 0 {
			t.Fatalf("query %q has no clicks", q.Query)
		}
		for _, u := range q.Clicks {
			if _, ok := w.PageByURL(u); !ok {
				t.Fatalf("click on nonexistent page %s (query %q)", u, q.Query)
			}
		}
	}
	for _, tr := range l.Trails {
		for _, u := range tr.Pages {
			if strings.HasPrefix(u, SERPPrefix) {
				continue
			}
			if _, ok := w.PageByURL(u); !ok {
				t.Fatalf("trail visits nonexistent page %s", u)
			}
		}
	}
}

// TestE1Shape: biz clicks dominate, then search, then category — and the
// derived instance (60-70%) vs set (10-20%) bands overlap the paper's.
func TestE1Shape(t *testing.T) {
	_, l := simulated(t)
	res := AnalyzeE1(l, webgen.PrimaryAggregator)
	t.Logf("E1: biz=%.2f search=%.2f cat=%.2f other=%.2f (n=%d)",
		res.BizFrac, res.SearchFrac, res.CatFrac, res.OtherFrac, res.TotalClicks)
	if res.TotalClicks < 500 {
		t.Fatalf("too few clicks: %d", res.TotalClicks)
	}
	if !(res.BizFrac > res.SearchFrac && res.SearchFrac > res.CatFrac) {
		t.Errorf("ordering violated: biz=%.2f search=%.2f cat=%.2f",
			res.BizFrac, res.SearchFrac, res.CatFrac)
	}
	if res.BizFrac < 0.45 || res.BizFrac > 0.75 {
		t.Errorf("biz fraction %.2f outside plausible band", res.BizFrac)
	}
	if res.InstanceLow < 0.45 || res.SetHigh > 0.45 {
		t.Errorf("derived bands off: instance>=%.2f set<=%.2f", res.InstanceLow, res.SetHigh)
	}
}

// TestE2Shape: menu is the top attribute token, a small single-digit share;
// coupons and locations follow.
func TestE2Shape(t *testing.T) {
	w, l := simulated(t)
	res := AnalyzeE2(l, w)
	if res.HomepageQueries < 100 {
		t.Fatalf("too few homepage queries: %d", res.HomepageQueries)
	}
	if len(res.Tokens) == 0 {
		t.Fatal("no attribute tokens surfaced")
	}
	frac := map[string]float64{}
	for _, tf := range res.Tokens {
		frac[tf.Token] = tf.Frac
	}
	t.Logf("E2: top tokens %v (menu=%.3f coupons=%.3f locations=%.3f, n=%d)",
		topN(res.Tokens, 5), frac["menu"], frac["coupons"], frac["locations"], res.HomepageQueries)
	if frac["menu"] == 0 || frac["menu"] < frac["coupons"] || frac["coupons"] < frac["locations"]*0.8 {
		t.Errorf("attribute ordering violated: %v", topN(res.Tokens, 6))
	}
	if frac["menu"] > 0.2 {
		t.Errorf("menu fraction %.3f implausibly high (should be a small share)", frac["menu"])
	}
}

func topN(ts []TokenFrac, n int) []string {
	var out []string
	for i := 0; i < n && i < len(ts); i++ {
		out = append(out, ts[i].Token)
	}
	return out
}

// TestE3Shape: a majority of biz-clickers click at least one other URL,
// and a substantial fraction at least two.
func TestE3Shape(t *testing.T) {
	_, l := simulated(t)
	res := AnalyzeE3(l, webgen.PrimaryAggregator)
	t.Logf("E3: >=1 other %.2f, >=2 others %.2f (n=%d)",
		res.AtLeast1Other, res.AtLeast2Other, res.BizClickQueries)
	if res.BizClickQueries < 300 {
		t.Fatalf("too few biz-click queries: %d", res.BizClickQueries)
	}
	if res.AtLeast1Other < 0.45 || res.AtLeast1Other > 0.75 {
		t.Errorf(">=1 other = %.2f, want ~0.59", res.AtLeast1Other)
	}
	if res.AtLeast2Other < 0.2 || res.AtLeast2Other > 0.5 {
		t.Errorf(">=2 others = %.2f, want ~0.35", res.AtLeast2Other)
	}
	if res.AtLeast2Other >= res.AtLeast1Other {
		t.Error("impossible: >=2 exceeds >=1")
	}
}

// TestE4Shape: ~40% of homepage visits search-preceded; location beats menu
// beats coupons as the next page; ~10% of trails touch several restaurants.
func TestE4Shape(t *testing.T) {
	w, l := simulated(t)
	res := AnalyzeE4(l, w)
	t.Logf("E4: preceded=%.2f nextLoc=%.3f nextMenu=%.3f nextCoupons=%.3f multi=%.3f (visits=%d trails=%d)",
		res.SearchPreceded, res.NextLocationFrac, res.NextMenuFrac,
		res.NextCouponsFrac, res.MultiInstance, res.HomepageVisits, res.Trails)
	if res.HomepageVisits < 300 {
		t.Fatalf("too few homepage visits: %d", res.HomepageVisits)
	}
	if res.SearchPreceded < 0.3 || res.SearchPreceded > 0.55 {
		t.Errorf("search-preceded = %.2f, want ~0.42", res.SearchPreceded)
	}
	if !(res.NextLocationFrac > res.NextMenuFrac && res.NextMenuFrac > res.NextCouponsFrac) {
		t.Errorf("next-page ordering violated: loc=%.3f menu=%.3f coupons=%.3f",
			res.NextLocationFrac, res.NextMenuFrac, res.NextCouponsFrac)
	}
	if res.MultiInstance < 0.05 || res.MultiInstance > 0.2 {
		t.Errorf("multi-instance trails = %.3f, want ~0.105", res.MultiInstance)
	}
}

func TestAnalyzeEmptyLogs(t *testing.T) {
	w := webgen.Generate(webgen.DefaultConfig())
	empty := &Logs{}
	if r := AnalyzeE1(empty, webgen.PrimaryAggregator); r.TotalClicks != 0 || r.BizFrac != 0 {
		t.Errorf("E1 on empty = %+v", r)
	}
	if r := AnalyzeE2(empty, w); r.HomepageQueries != 0 {
		t.Errorf("E2 on empty = %+v", r)
	}
	if r := AnalyzeE3(empty, webgen.PrimaryAggregator); r.BizClickQueries != 0 {
		t.Errorf("E3 on empty = %+v", r)
	}
	if r := AnalyzeE4(empty, w); r.HomepageVisits != 0 || r.Trails != 0 {
		t.Errorf("E4 on empty = %+v", r)
	}
}

func TestAttributeQueriesUseRealAttributes(t *testing.T) {
	w, l := simulated(t)
	res := AnalyzeE2(l, w)
	// The paper's oddball tail ("cod", "careers") should be observable in a
	// large enough log, and everything surfaced should come from the
	// attribute vocabulary (no junk tokens).
	known := map[string]bool{}
	for _, a := range attributeMix {
		for _, tok := range strings.Fields(a.word) {
			known[tok] = true
		}
	}
	for _, tf := range res.Tokens {
		if !known[tf.Token] {
			t.Errorf("unexpected residual token %q (%.3f)", tf.Token, tf.Frac)
		}
	}
}

// TestE1RobustAcrossAggregators: the analysis is URL-shape based and should
// show the same ordering for any aggregator host, not just the primary one
// (the paper: "even if these specific numbers might vary for other
// websites... users do conduct significant amounts of both types").
func TestE1RobustAcrossAggregators(t *testing.T) {
	w, _ := simulated(t)
	// Re-simulate with instance queries landing on citysift by reusing the
	// primary logs: primary-only clicks mean citysift sees only the
	// secondary-source clicks, which are all biz pages plus set-search
	// category pages.
	_, l := simulated(t)
	res := AnalyzeE1(l, "citysift.example")
	if res.TotalClicks == 0 {
		t.Skip("no citysift clicks at this calibration")
	}
	t.Logf("citysift E1: biz=%.2f search=%.2f cat=%.2f (n=%d)",
		res.BizFrac, res.SearchFrac, res.CatFrac, res.TotalClicks)
	if res.BizFrac <= res.SearchFrac {
		t.Errorf("biz should dominate on secondary aggregator too: %+v", res)
	}
	_ = w
}

// TestTrailsFeedUserModel: toolbar trails drive the session model the §5.3
// way — "this user consumed reviews for three steak restaurants in zipcode
// 95054 during the past hour" becomes observable session focus.
func TestTrailFormatStable(t *testing.T) {
	_, l := simulated(t)
	serps, homes := 0, 0
	for _, tr := range l.Trails {
		for _, p := range tr.Pages {
			if strings.HasPrefix(p, SERPPrefix) {
				serps++
			}
			if strings.HasSuffix(p, ".example/") && !strings.Contains(p[:len(p)-1], "/") {
				homes++
			}
		}
	}
	if serps == 0 {
		t.Error("no SERP steps in trails")
	}
	if homes == 0 {
		t.Error("no site-root visits in trails")
	}
}

// TestShapesStableAcrossSeeds: the reproduction claim is about shape, so the
// qualitative orderings of E1–E4 must hold for any seed, not just the one
// EXPERIMENTS.md reports.
func TestShapesStableAcrossSeeds(t *testing.T) {
	for _, seed := range []int64{3, 17, 101} {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			wcfg := webgen.DefaultConfig()
			wcfg.Seed = seed
			w := webgen.Generate(wcfg)
			lcfg := DefaultConfig()
			lcfg.Seed = seed * 7
			l := NewSimulator(w, lcfg).Run()

			e1 := AnalyzeE1(l, webgen.PrimaryAggregator)
			if !(e1.BizFrac > e1.SearchFrac && e1.SearchFrac > e1.CatFrac) {
				t.Errorf("E1 ordering broke: %+v", e1)
			}
			e2 := AnalyzeE2(l, w)
			frac := map[string]float64{}
			for _, tf := range e2.Tokens {
				frac[tf.Token] = tf.Frac
			}
			if frac["menu"] < frac["coupons"] {
				t.Errorf("E2 ordering broke: menu=%.3f coupons=%.3f", frac["menu"], frac["coupons"])
			}
			e3 := AnalyzeE3(l, webgen.PrimaryAggregator)
			if e3.AtLeast1Other < 0.4 || e3.AtLeast2Other >= e3.AtLeast1Other {
				t.Errorf("E3 shape broke: %+v", e3)
			}
			e4 := AnalyzeE4(l, w)
			if !(e4.NextLocationFrac > e4.NextCouponsFrac && e4.NextMenuFrac > e4.NextCouponsFrac) {
				t.Errorf("E4 shape broke: %+v", e4)
			}
			if e4.SearchPreceded < 0.3 || e4.SearchPreceded > 0.55 {
				t.Errorf("E4 preceded out of band: %.2f", e4.SearchPreceded)
			}
		})
	}
}
