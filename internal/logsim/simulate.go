// Package logsim substitutes for the paper's proprietary Yahoo! Search and
// Toolbar logs (§3): a generative model of user search and browse behaviour
// over the synthetic web emits query logs and toolbar trails, and the
// analysis half of the package recomputes every §3 statistic from the
// emitted logs — the same measurement code path the paper's study ran over
// real logs. The intent mixture is calibrated so the *shape* of the paper's
// findings holds; EXPERIMENTS.md records paper-vs-measured side by side.
package logsim

import (
	"math/rand"
	"strings"

	"conceptweb/internal/webgen"
)

// SERPPrefix marks search-engine result pages in toolbar trails.
const SERPPrefix = "serp:"

// QueryEvent is one logged query with its clicked URLs, in click order.
type QueryEvent struct {
	User   int
	Query  string
	Clicks []string
}

// Trail is one toolbar browsing trail: the sequence of visited URLs.
// SERP visits appear as SERPPrefix + query.
type Trail struct {
	User  int
	Pages []string
}

// Logs is the full simulated log corpus.
type Logs struct {
	Queries []QueryEvent
	Trails  []Trail
}

// Config tunes the behaviour model. The intent mixture and click-behaviour
// parameters are the calibration knobs; the analyses never read them — they
// recompute everything from the emitted events.
type Config struct {
	Seed           int64
	Users          int
	QueriesPerUser int
	TrailsPerUser  int

	// Intent mixture over search queries.
	PInstance  float64 // lookup of one specific restaurant
	PSet       float64 // search for a set of restaurants
	PAttribute float64 // lookup of an attribute of a restaurant

	// Within set searches: fraction issued as free-form searches (clicking
	// the aggregator's search page) vs. browsing a predefined category page.
	PSetSearchPage float64

	// Extra-click distribution for instance lookups (E3): probability of
	// clicking at least 1 / at least 2 URLs beyond the first.
	PExtraClick1 float64
	PExtraClick2 float64

	// Toolbar behaviour (E4).
	PTrailFromSearch float64 // homepage visit preceded by a SERP
	PNextLocation    float64 // next page after homepage
	PNextMenu        float64
	PNextCoupons     float64
	PSecondInstance  float64 // trail continues to another restaurant
}

// DefaultConfig returns the calibration used in the experiments.
func DefaultConfig() Config {
	return Config{
		Seed:           7,
		Users:          200,
		QueriesPerUser: 12,
		TrailsPerUser:  4,

		PInstance:  0.60,
		PSet:       0.31,
		PAttribute: 0.09,

		PSetSearchPage: 0.63,

		PExtraClick1: 0.59,
		PExtraClick2: 0.35,

		PTrailFromSearch: 0.42,
		PNextLocation:    0.115,
		PNextMenu:        0.09,
		PNextCoupons:     0.012,
		PSecondInstance:  0.105,
	}
}

// attributeMix is the vocabulary of attribute-lookup queries with the
// relative frequencies behind the §3 token study (menu > coupons >
// locations, with a long tail including the paper's own oddities).
var attributeMix = []struct {
	word string
	p    float64
}{
	{"menu", 0.34},
	{"coupons", 0.20},
	{"locations", 0.16},
	{"online", 0.08},
	{"weekly specials", 0.07},
	{"delivery", 0.05},
	{"hours", 0.04},
	{"nutrition", 0.03},
	{"to go", 0.015},
	{"careers", 0.01},
	{"cod", 0.005},
}

// Simulator generates logs over a world.
type Simulator struct {
	W   *webgen.World
	Cfg Config

	rng *rand.Rand
	// welpCovered are restaurants with a biz page on the primary aggregator.
	welpCovered []*webgen.Restaurant
	withHome    []*webgen.Restaurant
}

// NewSimulator prepares a simulator for the world.
func NewSimulator(w *webgen.World, cfg Config) *Simulator {
	s := &Simulator{W: w, Cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	for _, r := range w.Restaurants {
		if _, ok := w.PageByURL(webgen.BizURL(webgen.PrimaryAggregator, r)); ok {
			s.welpCovered = append(s.welpCovered, r)
		}
		if r.Homepage != "" {
			s.withHome = append(s.withHome, r)
		}
	}
	return s
}

// Run emits the full log corpus.
func (s *Simulator) Run() *Logs {
	logs := &Logs{}
	for u := 0; u < s.Cfg.Users; u++ {
		for q := 0; q < s.Cfg.QueriesPerUser; q++ {
			if ev, ok := s.searchEvent(u); ok {
				logs.Queries = append(logs.Queries, ev)
			}
		}
		for tr := 0; tr < s.Cfg.TrailsPerUser; tr++ {
			if t, ok := s.trail(u); ok {
				logs.Trails = append(logs.Trails, t)
			}
		}
	}
	return logs
}

func (s *Simulator) searchEvent(user int) (QueryEvent, bool) {
	x := s.rng.Float64()
	switch {
	case x < s.Cfg.PInstance:
		return s.instanceQuery(user)
	case x < s.Cfg.PInstance+s.Cfg.PSet:
		return s.setQuery(user)
	default:
		return s.attributeQuery(user)
	}
}

// instanceQuery: the user wants one specific restaurant; primary click on
// its aggregator biz page, with extra clicks on other sources per the E3
// distribution.
func (s *Simulator) instanceQuery(user int) (QueryEvent, bool) {
	if len(s.welpCovered) == 0 {
		return QueryEvent{}, false
	}
	r := s.welpCovered[s.rng.Intn(len(s.welpCovered))]
	query := r.NameVariant(s.rng.Intn(2)) // full name or suffix-dropped
	if s.rng.Float64() < 0.7 {
		query += " " + strings.ToLower(r.City)
	}
	ev := QueryEvent{User: user, Query: strings.ToLower(query)}
	ev.Clicks = append(ev.Clicks, webgen.BizURL(webgen.PrimaryAggregator, r))

	// Other-source clicks: aggregation appetite (E3).
	extras := 0
	x := s.rng.Float64()
	switch {
	case x < s.Cfg.PExtraClick2:
		extras = 2 + s.rng.Intn(2)
	case x < s.Cfg.PExtraClick1:
		extras = 1
	}
	pool := s.otherSources(r)
	for i := 0; i < extras && i < len(pool); i++ {
		ev.Clicks = append(ev.Clicks, pool[i])
	}
	return ev, true
}

// otherSources lists the other URLs about r a researching user clicks, in
// a deterministic shuffled order.
func (s *Simulator) otherSources(r *webgen.Restaurant) []string {
	var pool []string
	for _, host := range []string{"citysift.example", "yellowfile.example"} {
		u := webgen.BizURL(host, r)
		if _, ok := s.W.PageByURL(u); ok {
			pool = append(pool, u)
		}
	}
	if r.Homepage != "" {
		pool = append(pool, strings.TrimSuffix(r.Homepage, "/")+"/")
	}
	// A review-blog post about r, if one exists.
	for url, ids := range s.W.ReviewTruth {
		for _, id := range ids {
			if id == r.ID {
				pool = append(pool, url)
				break
			}
		}
		if len(pool) >= 5 {
			break
		}
	}
	s.rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	return pool
}

// setQuery: the user wants a set of restaurants; clicks the aggregator's
// search page or a predefined category page.
func (s *Simulator) setQuery(user int) (QueryEvent, bool) {
	if len(s.welpCovered) == 0 {
		return QueryEvent{}, false
	}
	// Choose a (city, cuisine) pair that exists on the aggregator.
	r := s.welpCovered[s.rng.Intn(len(s.welpCovered))]
	city, cuisine := r.City, r.Cuisine
	var query, url string
	if s.rng.Float64() < s.Cfg.PSetSearchPage {
		decor := []string{"", "best ", "cheap "}[s.rng.Intn(3)]
		query = decor + cuisine + " " + strings.ToLower(city)
		url = webgen.SearchURL(webgen.PrimaryAggregator, cuisine+" "+city)
	} else {
		query = strings.ToLower(city) + " " + cuisine + " restaurants"
		url = webgen.CategoryURL(webgen.PrimaryAggregator, city, cuisine)
	}
	if _, ok := s.W.PageByURL(url); !ok {
		return QueryEvent{}, false
	}
	ev := QueryEvent{User: user, Query: query, Clicks: []string{url}}
	// Sophisticated researchers consult a second source ("mexican food
	// chicago best salsa" clicking category + competitor + expert review).
	if s.rng.Float64() < 0.25 {
		alt := webgen.CategoryURL("citysift.example", city, cuisine)
		if _, ok := s.W.PageByURL(alt); ok {
			ev.Clicks = append(ev.Clicks, alt)
		}
	}
	return ev, true
}

// attributeQuery: the user wants an attribute of a restaurant and clicks the
// restaurant's homepage (the E2 setting: "queries that led to a click on one
// of these restaurant homepage URLs, even when the user was actually looking
// for a specific attribute").
func (s *Simulator) attributeQuery(user int) (QueryEvent, bool) {
	if len(s.withHome) == 0 {
		return QueryEvent{}, false
	}
	r := s.withHome[s.rng.Intn(len(s.withHome))]
	query := strings.ToLower(r.Name)
	if s.rng.Float64() < 0.5 {
		query += " " + strings.ToLower(r.City)
	}
	// Most homepage-seeking queries carry no attribute token; a calibrated
	// minority do.
	if s.rng.Float64() < 0.30 {
		query += " " + s.pickAttribute()
	}
	home := strings.TrimSuffix(r.Homepage, "/") + "/"
	return QueryEvent{User: user, Query: query, Clicks: []string{home}}, true
}

func (s *Simulator) pickAttribute() string {
	x := s.rng.Float64()
	acc := 0.0
	for _, a := range attributeMix {
		acc += a.p
		if x < acc {
			return a.word
		}
	}
	return attributeMix[0].word
}

// trail emits one toolbar trail through a restaurant homepage (E4).
func (s *Simulator) trail(user int) (Trail, bool) {
	if len(s.withHome) == 0 {
		return Trail{}, false
	}
	r := s.withHome[s.rng.Intn(len(s.withHome))]
	home := strings.TrimSuffix(r.Homepage, "/") + "/"
	t := Trail{User: user}

	if s.rng.Float64() < s.Cfg.PTrailFromSearch {
		t.Pages = append(t.Pages, SERPPrefix+strings.ToLower(r.Name))
	} else {
		// Arrived by browsing: from an aggregator biz page or a portal.
		if u := webgen.BizURL(webgen.PrimaryAggregator, r); s.has(u) {
			t.Pages = append(t.Pages, u)
		} else {
			t.Pages = append(t.Pages, webgen.PortalHost(r.City)+"/dining/")
		}
	}
	t.Pages = append(t.Pages, home)
	s.continueFromHome(&t, r)

	// Some trails go on to a second restaurant (aggregation appetite in
	// browse mode).
	if s.rng.Float64() < s.Cfg.PSecondInstance {
		r2 := s.withHome[s.rng.Intn(len(s.withHome))]
		if r2.ID != r.ID {
			home2 := strings.TrimSuffix(r2.Homepage, "/") + "/"
			t.Pages = append(t.Pages, home2)
			s.continueFromHome(&t, r2)
		}
	}
	return t, true
}

// continueFromHome appends the post-homepage navigation step.
func (s *Simulator) continueFromHome(t *Trail, r *webgen.Restaurant) {
	host := strings.TrimSuffix(r.Homepage, "/")
	x := s.rng.Float64()
	switch {
	case x < s.Cfg.PNextLocation:
		t.Pages = append(t.Pages, host+"/location")
	case x < s.Cfg.PNextLocation+s.Cfg.PNextMenu:
		t.Pages = append(t.Pages, s.menuURL(host))
	case x < s.Cfg.PNextLocation+s.Cfg.PNextMenu+s.Cfg.PNextCoupons:
		if s.has(host + "/coupons") {
			t.Pages = append(t.Pages, host+"/coupons")
		}
	default:
		// Leaves the site or wanders elsewhere.
		if s.rng.Float64() < 0.5 {
			t.Pages = append(t.Pages, webgen.PortalHost(r.City)+"/")
		}
	}
}

func (s *Simulator) menuURL(host string) string {
	if s.has(host + "/menu") {
		return host + "/menu"
	}
	return host + "/food"
}

func (s *Simulator) has(url string) bool {
	_, ok := s.W.PageByURL(url)
	return ok
}
