package classify

import (
	"math"
	"strings"
	"testing"

	"conceptweb/internal/webgen"
	"conceptweb/internal/webgraph"
)

func TestNaiveBayesBasics(t *testing.T) {
	nb := NewNaiveBayes()
	nb.Train([]string{"pizza", "pasta", "menu"}, "restaurants")
	nb.Train([]string{"burger", "fries", "menu"}, "restaurants")
	nb.Train([]string{"concert", "tickets", "stage"}, "events")
	nb.Train([]string{"parade", "festival", "music"}, "events")

	label, probs := nb.Predict([]string{"pizza", "menu"})
	if label != "restaurants" {
		t.Errorf("label = %q (probs %v)", label, probs)
	}
	label, _ = nb.Predict([]string{"concert", "parade"})
	if label != "events" {
		t.Errorf("label = %q", label)
	}
	// Distribution sums to 1.
	_, probs = nb.Predict([]string{"menu"})
	var sum float64
	for _, p := range probs {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probs sum = %f", sum)
	}
}

func TestNaiveBayesUntrainedAndUnknown(t *testing.T) {
	nb := NewNaiveBayes()
	if label, probs := nb.Predict([]string{"x"}); label != "" || probs != nil {
		t.Error("untrained should return empty")
	}
	nb.Train([]string{"a"}, "c1")
	nb.Train([]string{"b", "b", "b"}, "c2")
	// All-unknown tokens fall back to the class prior (c2 ties c1 on docs;
	// both priors equal, so any class is acceptable — just no panic and a
	// valid distribution).
	label, probs := nb.Predict([]string{"zzz", "qqq"})
	if label == "" || len(probs) != 2 {
		t.Errorf("label=%q probs=%v", label, probs)
	}
}

func TestNaiveBayesPriors(t *testing.T) {
	nb := NewNaiveBayes()
	for i := 0; i < 9; i++ {
		nb.Train([]string{"common"}, "big")
	}
	nb.Train([]string{"common"}, "small")
	label, probs := nb.Predict([]string{"common"})
	if label != "big" || probs["big"] < 0.8 {
		t.Errorf("prior not respected: %q %v", label, probs)
	}
}

// portalPages returns the classified pages and link graph for a city portal.
func portalPages(w *webgen.World, city string) ([]*webgen.Page, *webgraph.Graph) {
	host := webgen.PortalHost(city)
	site, _ := w.SiteByHost(host)
	st := webgraph.NewStore()
	for _, p := range site.Pages {
		st.Put(webgraph.NewPage(p.URL, p.HTML))
	}
	return site.Pages, webgraph.BuildGraph(st)
}

func worldForClassify() *webgen.World {
	cfg := webgen.DefaultConfig()
	cfg.Restaurants = 80
	cfg.ReviewArticles = 10
	cfg.TVArticles = 4
	return webgen.Generate(cfg)
}

// trainGlobal trains the "global classifier" the way the paper assumes one
// is built: a small labeled sample (a handful of pages per category) from a
// couple of sites, not exhaustive per-site labeling.
func trainGlobal(w *webgen.World) *NaiveBayes {
	nb := NewNaiveBayes()
	perCat := make(map[string]int)
	for _, city := range w.Cities()[:2] {
		pages, _ := portalPages(w, city)
		for _, p := range pages {
			if perCat[p.Truth.Category] >= 6 {
				continue
			}
			perCat[p.Truth.Category]++
			nb.Train(Features(webgraph.NewPage(p.URL, p.HTML)), p.Truth.Category)
		}
	}
	return nb
}

func accuracyOn(w *webgen.World, nb *NaiveBayes, city string, refine bool) (float64, int) {
	pages, graph := portalPages(w, city)
	var labeled []PageLabel
	truth := make(map[string]string)
	for _, p := range pages {
		label, probs := nb.Predict(Features(webgraph.NewPage(p.URL, p.HTML)))
		labeled = append(labeled, PageLabel{URL: p.URL, Label: label, Probs: probs})
		truth[p.URL] = p.Truth.Category
	}
	var final map[string]PageLabel
	if refine {
		final = Refine(labeled, graph, DefaultRefineOptions())
	} else {
		final = make(map[string]PageLabel)
		for _, pl := range labeled {
			final[pl.URL] = pl
		}
	}
	correct, total := 0, 0
	for url, want := range truth {
		total++
		if final[url].Label == want {
			correct++
		}
	}
	return float64(correct) / float64(total), total
}

func TestRelationalRefinementImproves(t *testing.T) {
	w := worldForClassify()
	nb := trainGlobal(w)
	var globalSum, refinedSum float64
	n := 0
	for _, city := range w.Cities()[2:] {
		g, total := accuracyOn(w, nb, city, false)
		r, _ := accuracyOn(w, nb, city, true)
		if total == 0 {
			continue
		}
		globalSum += g
		refinedSum += r
		n++
	}
	if n == 0 {
		t.Fatal("no held-out cities")
	}
	global, refined := globalSum/float64(n), refinedSum/float64(n)
	t.Logf("global=%.3f refined=%.3f over %d held-out portals", global, refined, n)
	if refined < global {
		t.Errorf("refinement hurt: %.3f -> %.3f", global, refined)
	}
	if refined < 0.8 {
		t.Errorf("refined accuracy %.3f too low", refined)
	}
}

func TestRefineFixesDirectoryOutlier(t *testing.T) {
	// Hand-built: four pages in /calendar/, three confidently "events", one
	// misclassified as "restaurants". Refinement must flip the outlier.
	mk := func(url string, pEvents float64) PageLabel {
		label := "events"
		if pEvents < 0.5 {
			label = "restaurants"
		}
		return PageLabel{URL: url, Label: label,
			Probs: map[string]float64{"events": pEvents, "restaurants": 1 - pEvents}}
	}
	pages := []PageLabel{
		mk("c.example/calendar/a", 0.9),
		mk("c.example/calendar/b", 0.85),
		mk("c.example/calendar/c", 0.8),
		mk("c.example/calendar/d", 0.3), // the outlier
	}
	out := Refine(pages, nil, DefaultRefineOptions())
	if got := out["c.example/calendar/d"].Label; got != "events" {
		t.Errorf("outlier label = %q, want events (probs %v)", got, out["c.example/calendar/d"].Probs)
	}
	// Confident pages stay put.
	if got := out["c.example/calendar/a"].Label; got != "events" {
		t.Errorf("confident page flipped to %q", got)
	}
}

func TestRefineUsesLinks(t *testing.T) {
	// Two root-level pages (no shared directory) linked to a cluster of
	// confident "events" pages; the uncertain one should be pulled over.
	pages := []PageLabel{
		{URL: "c.example/hub", Label: "restaurants",
			Probs: map[string]float64{"events": 0.45, "restaurants": 0.55}},
		{URL: "c.example/calendar/a", Label: "events",
			Probs: map[string]float64{"events": 0.95, "restaurants": 0.05}},
		{URL: "c.example/calendar/b", Label: "events",
			Probs: map[string]float64{"events": 0.95, "restaurants": 0.05}},
	}
	g := &webgraph.Graph{
		Out: map[string][]string{
			"c.example/hub": {"c.example/calendar/a", "c.example/calendar/b"},
		},
		In: map[string][]string{},
	}
	opts := RefineOptions{SelfWeight: 0.3, DirWeight: 0.2, LinkWeight: 0.5, Rounds: 3}
	out := Refine(pages, g, opts)
	if got := out["c.example/hub"].Label; got != "events" {
		t.Errorf("hub label = %q, want events (probs %v)", got, out["c.example/hub"].Probs)
	}
}

func TestRefineEmptyAndDegenerate(t *testing.T) {
	if out := Refine(nil, nil, DefaultRefineOptions()); len(out) != 0 {
		t.Error("empty input should give empty output")
	}
	// Zero weights fall back to defaults rather than dividing by zero.
	pages := []PageLabel{{URL: "x/y", Label: "a", Probs: map[string]float64{"a": 1}}}
	out := Refine(pages, nil, RefineOptions{})
	if out["x/y"].Label != "a" {
		t.Errorf("degenerate refine = %+v", out)
	}
}

func TestFeaturesSkipBoilerplate(t *testing.T) {
	html := `<html><body><div class="topnav"><ul><li>navigationword</li></ul></div>
<p>contentword restaurants</p><div class="footer">footerword</div></body></html>`
	feats := Features(webgraph.NewPage("x/y", html))
	joined := " " + strings.Join(feats, " ") + " "
	if strings.Contains(joined, "navigationword") || strings.Contains(joined, "footerword") {
		t.Errorf("boilerplate leaked: %v", feats)
	}
	if !strings.Contains(joined, " contentword ") {
		t.Errorf("content missing: %v", feats)
	}
	if !strings.Contains(joined, " restaurant ") {
		t.Errorf("stemming missing: %v", feats)
	}
}
