package classify

import (
	"sort"

	"conceptweb/internal/webgraph"
)

// PageLabel is a page's classification with its posterior distribution.
type PageLabel struct {
	URL   string
	Label string
	Probs map[string]float64
}

// RefineOptions weight the three evidence sources during relational
// refinement. The defaults favour the site's directory structure, the
// paper's example signal ("all the events pages in sanjose.com are placed in
// a directory called calendar").
type RefineOptions struct {
	// SelfWeight is the weight of the global classifier's posterior.
	SelfWeight float64
	// DirWeight is the weight of the same-directory average.
	DirWeight float64
	// LinkWeight is the weight of the linked-neighbour average.
	LinkWeight float64
	// Rounds is the number of propagation iterations.
	Rounds int
}

// DefaultRefineOptions returns the standard weights used in experiments.
func DefaultRefineOptions() RefineOptions {
	return RefineOptions{SelfWeight: 0.35, DirWeight: 0.5, LinkWeight: 0.15, Rounds: 3}
}

// Refine revises the global classifier's per-page posteriors within one site
// using the site's relational structure: pages in the same URL directory and
// pages connected by links pull each other's distributions together. It
// returns the revised labels keyed by URL.
//
// The procedure is a damped label propagation: on each round, a page's
// distribution becomes a weighted mix of its global posterior, the mean
// distribution of its directory, and the mean distribution of its graph
// neighbours, then renormalized.
func Refine(pages []PageLabel, graph *webgraph.Graph, opts RefineOptions) map[string]PageLabel {
	if opts.Rounds <= 0 {
		opts.Rounds = 3
	}
	total := opts.SelfWeight + opts.DirWeight + opts.LinkWeight
	if total <= 0 {
		opts = DefaultRefineOptions()
		total = opts.SelfWeight + opts.DirWeight + opts.LinkWeight
	}

	// Collect the class set and the per-page state.
	classSet := make(map[string]bool)
	cur := make(map[string]map[string]float64, len(pages))
	global := make(map[string]map[string]float64, len(pages))
	byDir := make(map[string][]string)
	var urls []string
	for _, p := range pages {
		urls = append(urls, p.URL)
		cur[p.URL] = copyDist(p.Probs)
		global[p.URL] = p.Probs
		dir := webgraph.Directory(p.URL)
		byDir[dir] = append(byDir[dir], p.URL)
		for c := range p.Probs {
			classSet[c] = true
		}
	}
	sort.Strings(urls)
	classes := make([]string, 0, len(classSet))
	for c := range classSet {
		classes = append(classes, c)
	}
	sort.Strings(classes)

	neighbours := func(u string) []string {
		var ns []string
		if graph != nil {
			ns = append(ns, graph.Out[u]...)
			ns = append(ns, graph.In[u]...)
		}
		// Keep only in-site pages we are classifying.
		kept := ns[:0]
		for _, n := range ns {
			if _, ok := cur[n]; ok {
				kept = append(kept, n)
			}
		}
		return kept
	}

	for round := 0; round < opts.Rounds; round++ {
		next := make(map[string]map[string]float64, len(cur))
		// Directory means are computed from the current round's state.
		dirMean := make(map[string]map[string]float64, len(byDir))
		for dir, members := range byDir {
			dirMean[dir] = meanDist(members, cur, classes)
		}
		for _, u := range urls {
			dm := dirMean[webgraph.Directory(u)]
			nm := meanDist(neighbours(u), cur, classes)
			nd := make(map[string]float64, len(classes))
			var z float64
			for _, c := range classes {
				v := opts.SelfWeight*global[u][c] + opts.DirWeight*dm[c] + opts.LinkWeight*nm[c]
				nd[c] = v
				z += v
			}
			if z > 0 {
				for c := range nd {
					nd[c] /= z
				}
			}
			next[u] = nd
		}
		cur = next
	}

	out := make(map[string]PageLabel, len(cur))
	for _, u := range urls {
		best, bestP := "", -1.0
		for _, c := range classes {
			if cur[u][c] > bestP {
				best, bestP = c, cur[u][c]
			}
		}
		out[u] = PageLabel{URL: u, Label: best, Probs: cur[u]}
	}
	return out
}

func copyDist(d map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(d))
	for k, v := range d {
		out[k] = v
	}
	return out
}

// meanDist averages the distributions of members; an empty member list
// yields the uniform distribution so it adds no preference.
func meanDist(members []string, cur map[string]map[string]float64, classes []string) map[string]float64 {
	out := make(map[string]float64, len(classes))
	if len(members) == 0 {
		u := 1.0 / float64(len(classes))
		for _, c := range classes {
			out[c] = u
		}
		return out
	}
	for _, m := range members {
		for _, c := range classes {
			out[c] += cur[m][c]
		}
	}
	for _, c := range classes {
		out[c] /= float64(len(members))
	}
	return out
}
