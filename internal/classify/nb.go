// Package classify implements relational page classification (§4.2): a
// global multinomial naive-Bayes text classifier, refined per site using the
// site's directory and link structure. The paper's argument: a global
// classifier "tends to be noisy given the vastly different content in the
// large collection of sites", but after "bootstrapping the pages of a site
// with the classification labels given by an inaccurate classifier, the
// relational structure present in that site can be used to revise them and
// get highly accurate classification" (citing graph-based methods [60]).
package classify

import (
	"math"
	"sort"

	"conceptweb/internal/htmlx"
	"conceptweb/internal/textproc"
	"conceptweb/internal/webgraph"
)

// Features extracts the token features of a page body for classification:
// lowercased, stemmed, stopwords removed. Boilerplate (nav, footer,
// breadcrumbs) is excluded — breadcrumbs in particular encode the site's
// directory structure, which belongs to the relational refinement step, not
// to the global text model.
func Features(p *webgraph.Page) []string {
	body := p.Doc.FindFirst("body")
	if body == nil {
		body = p.Doc
	}
	var toks []string
	var collect func(n *htmlx.Node)
	collect = func(n *htmlx.Node) {
		if n.Type == htmlx.ElementNode &&
			(n.HasClass("topnav") || n.HasClass("footer") || n.HasClass("breadcrumb")) {
			return
		}
		if n.Type == htmlx.TextNode {
			toks = textproc.TokenizeInto(n.Data, toks)
			return
		}
		for _, c := range n.Children {
			collect(c)
		}
	}
	collect(body)
	return textproc.StemAll(textproc.RemoveStopwords(toks))
}

// NaiveBayes is a multinomial naive-Bayes classifier with Laplace smoothing.
type NaiveBayes struct {
	classes     []string
	classDocs   map[string]int
	classTokens map[string]int
	tokenCount  map[string]map[string]int
	vocab       map[string]bool
	totalDocs   int
}

// NewNaiveBayes returns an empty classifier.
func NewNaiveBayes() *NaiveBayes {
	return &NaiveBayes{
		classDocs:   make(map[string]int),
		classTokens: make(map[string]int),
		tokenCount:  make(map[string]map[string]int),
		vocab:       make(map[string]bool),
	}
}

// Train adds one labeled document.
func (nb *NaiveBayes) Train(tokens []string, class string) {
	if nb.tokenCount[class] == nil {
		nb.tokenCount[class] = make(map[string]int)
		nb.classes = append(nb.classes, class)
		sort.Strings(nb.classes)
	}
	nb.classDocs[class]++
	nb.totalDocs++
	for _, t := range tokens {
		nb.tokenCount[class][t]++
		nb.classTokens[class]++
		nb.vocab[t] = true
	}
}

// Classes returns the known class labels, sorted.
func (nb *NaiveBayes) Classes() []string { return nb.classes }

// Predict returns the most probable class and the posterior distribution.
// An untrained classifier returns "" and nil.
func (nb *NaiveBayes) Predict(tokens []string) (string, map[string]float64) {
	if nb.totalDocs == 0 {
		return "", nil
	}
	logp := make(map[string]float64, len(nb.classes))
	v := float64(len(nb.vocab))
	for _, c := range nb.classes {
		lp := math.Log(float64(nb.classDocs[c]) / float64(nb.totalDocs))
		denom := float64(nb.classTokens[c]) + v
		for _, t := range tokens {
			if !nb.vocab[t] {
				continue // unseen tokens carry no signal
			}
			lp += math.Log((float64(nb.tokenCount[c][t]) + 1) / denom)
		}
		logp[c] = lp
	}
	// Normalize to probabilities (log-sum-exp).
	maxLp := math.Inf(-1)
	for _, lp := range logp {
		if lp > maxLp {
			maxLp = lp
		}
	}
	var z float64
	for _, lp := range logp {
		z += math.Exp(lp - maxLp)
	}
	probs := make(map[string]float64, len(logp))
	best, bestP := "", -1.0
	for _, c := range nb.classes {
		p := math.Exp(logp[c]-maxLp) / z
		probs[c] = p
		if p > bestP {
			best, bestP = c, p
		}
	}
	return best, probs
}
