// Package serving is the read-path layer between woc.System and HTTP
// servers: it makes the paper's §5 application surfaces (concept boxes,
// concept search, aggregation pages, recommendations) fast under the
// head-heavy traffic real concept corpora see, and well-behaved when demand
// exceeds capacity.
//
// Three mechanisms compose, in request order:
//
//  1. A sharded LRU+TTL result cache keyed by (endpoint, normalized
//     query/id, k, epoch). The epoch is the system's data generation,
//     bumped by maintenance passes, so one Refresh invalidates the whole
//     cache in O(1): new requests simply ask for new keys.
//  2. Singleflight coalescing: a stampede of identical cache misses runs
//     the computation once and shares the result.
//  3. Admission control: a bounded in-flight semaphore with a short wait
//     deadline. When every slot stays busy past the deadline, the request
//     is shed with ErrOverloaded (HTTP 503 + Retry-After upstream) instead
//     of queueing unboundedly.
//
// Everything registers in the system's obs registry: per-endpoint
// serve.hit.*/serve.miss.* counters, serve.cache.* size/eviction traffic,
// serve.coalesced, serve.shed, and serve.compute.* latency histograms.
package serving

import (
	"context"
	"strconv"
	"time"

	"conceptweb/internal/obs"
	"conceptweb/internal/textproc"
	"conceptweb/woc"
)

// Source is the read API the layer fronts. *woc.System implements it; tests
// substitute fakes to drive epochs and slow computations deterministically.
type Source interface {
	// Epoch is the data generation; it must advance whenever a maintenance
	// pass changes visible state (the cache-invalidation contract). With a
	// hash-partitioned source it is composed from the per-shard store and
	// index epochs (a sum of monotonic counters), so a mutation in any one
	// shard advances the whole generation.
	Epoch() uint64
	Search(query string, k int) *woc.Page
	ConceptSearch(query string, k int) []woc.Hit
	Aggregate(id string) (*woc.Aggregation, error)
	Alternatives(id string, k int) ([]woc.Suggestion, error)
	Augmentations(id string, k int) ([]woc.Suggestion, error)
	Record(id string) (woc.Record, error)
	Lineage(id string) ([]string, error)
}

// Defaults for Options fields left zero, shared with wocserve's flag
// declarations so -help shows the real values.
const (
	DefaultCacheSize   = 4096
	DefaultCacheTTL    = time.Minute
	DefaultMaxInflight = 64
	DefaultAdmitWait   = 50 * time.Millisecond
)

// Options configures a Layer.
type Options struct {
	// CacheSize is the total result-cache capacity in entries, spread over
	// the shards; negative disables caching, zero means DefaultCacheSize.
	CacheSize int
	// CacheTTL bounds entry lifetime, so even without a maintenance epoch
	// bump a cached result cannot outlive the TTL; negative disables
	// expiry, zero means DefaultCacheTTL.
	CacheTTL time.Duration
	// MaxInflight bounds concurrently executing computations (cache hits
	// are not counted — they do no work worth bounding); negative removes
	// the bound, zero means DefaultMaxInflight.
	MaxInflight int
	// AdmitWait is how long a computation may wait for a free slot before
	// the request is shed; zero means DefaultAdmitWait.
	AdmitWait time.Duration
	// Metrics receives the layer's instruments; nil disables them (obs
	// instruments are nil-safe).
	Metrics *obs.Registry
	// TraceRing is how many recent request traces stay resolvable by ID;
	// SlowlogK is the per-endpoint slow-query retention. Zero means the
	// DefaultTraceRing/DefaultSlowlogK in slowlog.go.
	TraceRing int
	SlowlogK  int
}

func (o Options) withDefaults() Options {
	if o.CacheSize == 0 {
		o.CacheSize = DefaultCacheSize
	}
	if o.CacheTTL == 0 {
		o.CacheTTL = DefaultCacheTTL
	}
	if o.MaxInflight == 0 {
		o.MaxInflight = DefaultMaxInflight
	}
	if o.AdmitWait == 0 {
		o.AdmitWait = DefaultAdmitWait
	}
	return o
}

// Layer is the serving layer over one Source. Safe for concurrent use.
type Layer struct {
	src    Source
	cache  *Cache
	flight flightGroup
	admit  *admission
	reg    *obs.Registry
	traces *TraceLog
}

// New builds a serving layer; zero Options fields take the defaults above.
func New(src Source, opts Options) *Layer {
	opts = opts.withDefaults()
	return &Layer{
		src:    src,
		cache:  NewCache(opts.CacheSize, opts.CacheTTL, opts.Metrics),
		admit:  newAdmission(opts.MaxInflight, opts.AdmitWait, opts.Metrics),
		reg:    opts.Metrics,
		traces: NewTraceLog(opts.TraceRing, opts.SlowlogK),
	}
}

// Traces returns the layer's bounded trace retention (recency ring +
// per-endpoint slow-query log). HTTP layers Record finished traces here and
// serve /debug/slowlog and /debug/trace from it.
func (l *Layer) Traces() *TraceLog { return l.traces }

// Epoch reports the source's current data generation.
func (l *Layer) Epoch() uint64 { return l.src.Epoch() }

// CacheLen reports live result-cache entries (stale epochs included until
// they age out).
func (l *Layer) CacheLen() int { return l.cache.Len() }

// sep separates cache-key fields; it cannot appear in normalized queries,
// record IDs, or decimal numbers, so distinct requests never collide.
const sep = "\x1f"

// do is the common read path: cache lookup keyed by the current epoch, then
// coalesced + admitted computation on miss. The epoch is read BEFORE the
// computation runs: if a refresh lands mid-flight the fresh result is stored
// under the pre-refresh key, which post-refresh requests never ask for — so
// a post-refresh request can never be served pre-refresh data.
func (l *Layer) do(ctx context.Context, endpoint, key string, tr *Trace, compute func() (any, error)) (any, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	epoch := l.src.Epoch()
	// The composed cache key is NOT stored in the trace: storing it would
	// make the key concatenation escape to the heap and cost the untraced
	// hit path an allocation. Wrappers annotate the natural argument
	// (normalized query / record id) instead, which is already heap-resident.
	if tr != nil {
		tr.Epoch = epoch
	}
	ck := endpoint + sep + key + sep + strconv.FormatUint(epoch, 10)
	if v, ok := l.cache.Get(ck); ok {
		l.reg.Counter("serve.hit." + endpoint).Inc()
		tr.setDisposition(DispositionHit)
		return v, nil
	}
	l.reg.Counter("serve.miss." + endpoint).Inc()
	v, err, shared := l.flight.do(ck, func() (any, error) {
		// This closure runs on the leader's goroutine only, so it may
		// annotate the leader's trace (tr of the caller that created the
		// flight); followers annotate their own traces below.
		release, waited, aerr := l.admit.acquire(ctx)
		tr.addAdmissionWait(waited)
		if aerr != nil {
			return nil, aerr
		}
		defer release()
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		stop := l.reg.Time("serve.compute." + endpoint)
		start := time.Now()
		v, err := compute()
		tr.setCompute(time.Since(start))
		stop()
		if err == nil {
			l.cache.Put(ck, v)
		}
		return v, err
	})
	if shared {
		l.reg.Counter("serve.coalesced").Inc()
	}
	switch {
	case err == ErrOverloaded:
		tr.setDisposition(DispositionShed)
	case shared:
		tr.setDisposition(DispositionCoalesced)
	default:
		tr.setDisposition(DispositionMiss)
	}
	return v, err
}

// Search answers a web query with concept-aware ranking, cached.
func (l *Layer) Search(ctx context.Context, query string, k int) (*woc.Page, error) {
	q := textproc.NormalizeQuery(query)
	tr := TraceFromContext(ctx)
	tr.setArg(q)
	v, err := l.do(ctx, "search", q+sep+strconv.Itoa(k), tr, func() (any, error) {
		return l.src.Search(q, k), nil
	})
	if err != nil {
		return nil, err
	}
	page := v.(*woc.Page)
	if page != nil {
		tr.SetResults(len(page.Results))
	}
	return page, nil
}

// ConceptSearch retrieves records answering the query, cached.
func (l *Layer) ConceptSearch(ctx context.Context, query string, k int) ([]woc.Hit, error) {
	q := textproc.NormalizeQuery(query)
	tr := TraceFromContext(ctx)
	tr.setArg(q)
	v, err := l.do(ctx, "concepts", q+sep+strconv.Itoa(k), tr, func() (any, error) {
		return l.src.ConceptSearch(q, k), nil
	})
	if err != nil {
		return nil, err
	}
	hits := v.([]woc.Hit)
	tr.SetResults(len(hits))
	return hits, nil
}

// Aggregate builds the aggregation page for a record, cached. Lookup errors
// (unknown id) are not cached.
func (l *Layer) Aggregate(ctx context.Context, id string) (*woc.Aggregation, error) {
	tr := TraceFromContext(ctx)
	tr.setArg(id)
	v, err := l.do(ctx, "aggregate", id, tr, func() (any, error) {
		return l.src.Aggregate(id)
	})
	if err != nil {
		return nil, err
	}
	return v.(*woc.Aggregation), nil
}

// Alternatives recommends substitutes for a record, cached.
func (l *Layer) Alternatives(ctx context.Context, id string, k int) ([]woc.Suggestion, error) {
	tr := TraceFromContext(ctx)
	tr.setArg(id)
	v, err := l.do(ctx, "alternatives", id+sep+strconv.Itoa(k), tr, func() (any, error) {
		return l.src.Alternatives(id, k)
	})
	if err != nil {
		return nil, err
	}
	recs := v.([]woc.Suggestion)
	tr.SetResults(len(recs))
	return recs, nil
}

// Augmentations recommends complements for a record, cached.
func (l *Layer) Augmentations(ctx context.Context, id string, k int) ([]woc.Suggestion, error) {
	tr := TraceFromContext(ctx)
	tr.setArg(id)
	v, err := l.do(ctx, "augmentations", id+sep+strconv.Itoa(k), tr, func() (any, error) {
		return l.src.Augmentations(id, k)
	})
	if err != nil {
		return nil, err
	}
	recs := v.([]woc.Suggestion)
	tr.SetResults(len(recs))
	return recs, nil
}

// Record fetches one record. Store point-lookups are too cheap to cache,
// but they admit through the same semaphore so overload behavior is uniform
// across endpoints.
func (l *Layer) Record(ctx context.Context, id string) (woc.Record, error) {
	if err := ctx.Err(); err != nil {
		return woc.Record{}, err
	}
	tr := TraceFromContext(ctx)
	tr.setArg(id)
	tr.setEpoch(l.src.Epoch())
	release, waited, err := l.admit.acquire(ctx)
	tr.addAdmissionWait(waited)
	if err != nil {
		if err == ErrOverloaded {
			tr.setDisposition(DispositionShed)
		}
		return woc.Record{}, err
	}
	defer release()
	return l.src.Record(id)
}

// Lineage explains a record's provenance; uncached, admitted.
func (l *Layer) Lineage(ctx context.Context, id string) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	tr := TraceFromContext(ctx)
	tr.setArg(id)
	tr.setEpoch(l.src.Epoch())
	release, waited, err := l.admit.acquire(ctx)
	tr.addAdmissionWait(waited)
	if err != nil {
		if err == ErrOverloaded {
			tr.setDisposition(DispositionShed)
		}
		return nil, err
	}
	defer release()
	lines, err := l.src.Lineage(id)
	tr.SetResults(len(lines))
	return lines, err
}
