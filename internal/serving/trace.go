package serving

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"
)

// Request-scoped tracing: every request carries one *Trace through the
// serving layer (admission → cache → singleflight → compute), collecting
// typed annotations as it goes. The HTTP layer creates the trace, exposes
// its ID in the X-Woc-Trace response header, finalizes it with the status
// code and total latency, and records it into the TraceLog — so a slow
// request is explainable after the fact: was it admission wait, a cache
// miss, a coalesce stall, or the computation itself?
//
// A Trace is written only by its request goroutine (the singleflight leader
// writes its own trace; followers annotate theirs as coalesced), so the
// fields need no lock. Recording into the TraceLog copies the struct, and
// readers only ever see those immutable copies.

// Disposition classifies how the serving layer satisfied (or refused) a
// request.
type Disposition string

const (
	// DispositionNone marks endpoints the result cache does not front
	// (record, lineage, healthz, debug surfaces).
	DispositionNone Disposition = ""
	// DispositionHit: served from the result cache.
	DispositionHit Disposition = "hit"
	// DispositionMiss: computed (this request was the singleflight leader).
	DispositionMiss Disposition = "miss"
	// DispositionCoalesced: shared a concurrent identical computation.
	DispositionCoalesced Disposition = "coalesced"
	// DispositionShed: refused by admission control.
	DispositionShed Disposition = "shed"
)

// traceSeq numbers traces process-wide; traceEpochBase anchors IDs to the
// process start so IDs from different runs do not collide in archived logs.
var (
	traceSeq       atomic.Uint64
	traceEpochBase = uint64(time.Now().UnixNano()) & 0xffffffff
)

// newTraceID mints a deterministic-format trace ID:
// "woc-<8 hex process nonce>-<8 hex sequence>". The format (not the value)
// is the contract — clients and the slow-query log parse nothing, but tests
// and humans can recognize and correlate the IDs at a glance.
func newTraceID() string {
	return fmt.Sprintf("woc-%08x-%08x", traceEpochBase, traceSeq.Add(1))
}

// Trace is one request's annotation record. Create with NewTrace, thread via
// WithTrace/TraceFromContext, finalize with Finish.
type Trace struct {
	ID       string    `json:"id"`
	Endpoint string    `json:"endpoint"`
	Arg      string    `json:"arg,omitempty"` // normalized query or record id
	Start    time.Time `json:"start"`

	Epoch         uint64        `json:"epoch,omitempty"`             // data generation the response was computed against
	Disposition   Disposition   `json:"disposition,omitempty"`       // hit/miss/coalesced/shed
	AdmissionWait time.Duration `json:"admission_wait_ns,omitempty"` // time spent waiting for a compute slot
	Compute       time.Duration `json:"compute_ns,omitempty"`        // time inside the Source computation
	Results       int           `json:"results,omitempty"`           // result count (hits, docs, suggestions…)

	Status int           `json:"status,omitempty"`   // HTTP status, set by Finish
	Total  time.Duration `json:"total_ns,omitempty"` // full request latency, set by Finish
	Err    string        `json:"err,omitempty"`      // terminal error, if any
}

// NewTrace starts a trace for one request against the named endpoint.
func NewTrace(endpoint string) *Trace {
	return &Trace{ID: newTraceID(), Endpoint: endpoint, Start: time.Now()}
}

// Finish stamps the terminal status and total latency.
func (t *Trace) Finish(status int, total time.Duration, err error) {
	if t == nil {
		return
	}
	t.Status = status
	t.Total = total
	if err != nil {
		t.Err = err.Error()
	}
}

// setArg records the request argument once (the first do() call wins; the
// layer's public methods pass the normalized form).
func (t *Trace) setArg(arg string) {
	if t == nil || t.Arg != "" {
		return
	}
	t.Arg = arg
}

func (t *Trace) setEpoch(e uint64) {
	if t == nil {
		return
	}
	t.Epoch = e
}

func (t *Trace) setDisposition(d Disposition) {
	if t == nil {
		return
	}
	t.Disposition = d
}

func (t *Trace) addAdmissionWait(d time.Duration) {
	if t == nil {
		return
	}
	t.AdmissionWait += d
}

func (t *Trace) setCompute(d time.Duration) {
	if t == nil {
		return
	}
	t.Compute = d
}

// SetError records the terminal error before Finish runs; HTTP layers call
// it where the error is mapped to a status code, so the slow-query log can
// show why a request failed, not just that it did.
func (t *Trace) SetError(err error) {
	if t == nil || err == nil {
		return
	}
	t.Err = err.Error()
}

// SetResults annotates how many results the response carried.
func (t *Trace) SetResults(n int) {
	if t == nil {
		return
	}
	t.Results = n
}

type traceCtxKey struct{}

// WithTrace attaches t to the context for the serving layer to annotate.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, t)
}

// TraceFromContext returns the request's trace, or nil (all annotation
// methods are nil-safe, so untraced requests pay only this lookup).
func TraceFromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceCtxKey{}).(*Trace)
	return t
}
