package serving

import (
	"container/list"
	"sync"
	"time"

	"conceptweb/internal/obs"
)

// cacheShards is the number of independently locked cache segments. Keys
// spread by FNV-1a hash, so under parallel load goroutines contend on
// 1/cacheShards of the lock traffic a single-mutex LRU would see.
const cacheShards = 16

// Cache is a sharded LRU cache with per-entry TTL. A nil *Cache is valid and
// never hits — callers need no "is caching on" branches.
//
// Keys are expected to embed the data epoch (see Layer.do), which makes
// invalidation free: a maintenance pass bumps the epoch, new requests ask
// for new keys, and the orphaned old-epoch entries age out through LRU
// pressure or TTL without any scan.
type Cache struct {
	shards   [cacheShards]cacheShard
	perShard int
	ttl      time.Duration
	// now is swappable so TTL expiry is testable without sleeping.
	now func() time.Time

	hits, misses, evictions, expirations *obs.Counter
	size                                 *obs.Gauge
}

type cacheShard struct {
	mu    sync.Mutex
	items map[string]*list.Element
	lru   *list.List // front = most recently used
}

type cacheEntry struct {
	key     string
	val     any
	expires time.Time // zero: no expiry
}

// NewCache builds a cache holding up to capacity entries (split evenly
// across shards) with the given per-entry TTL (<= 0 disables expiry).
// capacity <= 0 returns nil: caching off.
func NewCache(capacity int, ttl time.Duration, reg *obs.Registry) *Cache {
	if capacity <= 0 {
		return nil
	}
	c := &Cache{
		perShard:    (capacity + cacheShards - 1) / cacheShards,
		ttl:         ttl,
		now:         time.Now,
		hits:        reg.Counter("serve.cache.hits"),
		misses:      reg.Counter("serve.cache.misses"),
		evictions:   reg.Counter("serve.cache.evictions"),
		expirations: reg.Counter("serve.cache.expirations"),
		size:        reg.Gauge("serve.cache.size"),
	}
	for i := range c.shards {
		c.shards[i].items = make(map[string]*list.Element)
		c.shards[i].lru = list.New()
	}
	return c
}

// fnv32a hashes key with FNV-1a; inlined to avoid a hash.Hash allocation on
// every lookup.
func fnv32a(key string) uint32 {
	const offset, prime = 2166136261, 16777619
	h := uint32(offset)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime
	}
	return h
}

// Get returns the cached value for key, if present and unexpired.
func (c *Cache) Get(key string) (any, bool) {
	if c == nil {
		return nil, false
	}
	s := &c.shards[fnv32a(key)%cacheShards]
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if !e.expires.IsZero() && c.now().After(e.expires) {
		s.lru.Remove(el)
		delete(s.items, key)
		c.size.Add(-1)
		c.expirations.Inc()
		c.misses.Inc()
		return nil, false
	}
	s.lru.MoveToFront(el)
	c.hits.Inc()
	return e.val, true
}

// Put stores val under key, evicting the shard's least-recently-used entry
// when the shard is full.
func (c *Cache) Put(key string, val any) {
	if c == nil {
		return
	}
	var expires time.Time
	if c.ttl > 0 {
		expires = c.now().Add(c.ttl)
	}
	s := &c.shards[fnv32a(key)%cacheShards]
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		e := el.Value.(*cacheEntry)
		e.val, e.expires = val, expires
		s.lru.MoveToFront(el)
		return
	}
	s.items[key] = s.lru.PushFront(&cacheEntry{key: key, val: val, expires: expires})
	c.size.Add(1)
	if s.lru.Len() > c.perShard {
		oldest := s.lru.Back()
		s.lru.Remove(oldest)
		delete(s.items, oldest.Value.(*cacheEntry).key)
		c.size.Add(-1)
		c.evictions.Inc()
	}
}

// Len reports the number of live entries across all shards.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.lru.Len()
		s.mu.Unlock()
	}
	return n
}
