package serving

import (
	"context"
	"errors"
	"fmt"
	"regexp"
	"sync"
	"testing"
	"time"

	"conceptweb/internal/obs"
	"conceptweb/woc"
)

// traceSource is a controllable Source for trace tests: epoch is settable,
// Search latency injectable, and every other endpoint returns canned data.
type traceSource struct {
	epoch  uint64
	delay  time.Duration
	hits   int
	gate   chan struct{} // if non-nil, Search parks until closed
	calls  int
	callMu sync.Mutex
}

func (s *traceSource) Epoch() uint64 { return s.epoch }

func (s *traceSource) Search(q string, k int) *woc.Page {
	s.callMu.Lock()
	s.calls++
	s.callMu.Unlock()
	if s.gate != nil {
		<-s.gate
	}
	if s.delay > 0 {
		time.Sleep(s.delay)
	}
	p := &woc.Page{}
	for i := 0; i < s.hits; i++ {
		p.Results = append(p.Results, woc.Doc{URL: fmt.Sprintf("u%d", i)})
	}
	return p
}

func (s *traceSource) ConceptSearch(q string, k int) []woc.Hit {
	return make([]woc.Hit, s.hits)
}
func (s *traceSource) Aggregate(id string) (*woc.Aggregation, error) {
	return &woc.Aggregation{Title: id}, nil
}
func (s *traceSource) Alternatives(id string, k int) ([]woc.Suggestion, error) {
	return make([]woc.Suggestion, s.hits), nil
}
func (s *traceSource) Augmentations(id string, k int) ([]woc.Suggestion, error) {
	return nil, nil
}
func (s *traceSource) Record(id string) (woc.Record, error) {
	return woc.Record{ID: id}, nil
}
func (s *traceSource) Lineage(id string) ([]string, error) {
	return []string{"a", "b"}, nil
}

var traceIDRe = regexp.MustCompile(`^woc-[0-9a-f]{8}-[0-9a-f]{8}$`)

func TestTraceIDFormatAndUniqueness(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		tr := NewTrace("search")
		if !traceIDRe.MatchString(tr.ID) {
			t.Fatalf("trace ID %q does not match the deterministic format", tr.ID)
		}
		if seen[tr.ID] {
			t.Fatalf("duplicate trace ID %q", tr.ID)
		}
		seen[tr.ID] = true
	}
}

// TestTraceAnnotationsMissThenHit drives the same query twice and asserts
// the full annotation set: the first request is a miss with epoch and
// compute time, the second a hit with no compute.
func TestTraceAnnotationsMissThenHit(t *testing.T) {
	src := &traceSource{epoch: 7, hits: 3, delay: 2 * time.Millisecond}
	l := New(src, Options{Metrics: obs.NewRegistry()})

	tr1 := NewTrace("search")
	ctx := WithTrace(context.Background(), tr1)
	if _, err := l.Search(ctx, "pizza", 8); err != nil {
		t.Fatal(err)
	}
	if tr1.Disposition != DispositionMiss {
		t.Errorf("first disposition = %q, want miss", tr1.Disposition)
	}
	if tr1.Epoch != 7 {
		t.Errorf("epoch = %d, want 7", tr1.Epoch)
	}
	if tr1.Compute < time.Millisecond {
		t.Errorf("compute = %v, want >= injected 2ms delay", tr1.Compute)
	}
	if tr1.Results != 3 {
		t.Errorf("results = %d, want 3", tr1.Results)
	}
	if tr1.Arg == "" {
		t.Error("arg not recorded")
	}

	tr2 := NewTrace("search")
	if _, err := l.Search(WithTrace(context.Background(), tr2), "pizza", 8); err != nil {
		t.Fatal(err)
	}
	if tr2.Disposition != DispositionHit {
		t.Errorf("second disposition = %q, want hit", tr2.Disposition)
	}
	if tr2.Compute != 0 {
		t.Errorf("hit compute = %v, want 0", tr2.Compute)
	}
	if tr2.Results != 3 {
		t.Errorf("hit results = %d, want 3 (annotated from the cached value)", tr2.Results)
	}
}

// TestTraceCoalescedAndShed covers the two contention dispositions: a
// follower sharing the leader's in-flight computation is marked coalesced;
// a request shed by admission control is marked shed with its wait recorded.
func TestTraceCoalescedAndShed(t *testing.T) {
	src := &traceSource{epoch: 1, hits: 1, gate: make(chan struct{})}
	l := New(src, Options{
		CacheSize:   -1, // everything goes to the compute path
		MaxInflight: 1,
		AdmitWait:   20 * time.Millisecond,
		Metrics:     obs.NewRegistry(),
	})

	leaderTr := NewTrace("search")
	leaderDone := make(chan error, 1)
	go func() {
		_, err := l.Search(WithTrace(context.Background(), leaderTr), "q", 8)
		leaderDone <- err
	}()
	// Wait for the leader to reach the gated computation.
	deadline := time.Now().Add(5 * time.Second)
	for {
		src.callMu.Lock()
		started := src.calls > 0
		src.callMu.Unlock()
		if started {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("leader never started computing")
		}
		time.Sleep(time.Millisecond)
	}

	// Identical query: coalesces onto the leader's flight.
	followerTr := NewTrace("search")
	followerDone := make(chan error, 1)
	go func() {
		_, err := l.Search(WithTrace(context.Background(), followerTr), "q", 8)
		followerDone <- err
	}()

	// Different query: needs its own compute slot, which the leader holds
	// past the admit wait → shed.
	shedTr := NewTrace("search")
	_, err := l.Search(WithTrace(context.Background(), shedTr), "other", 8)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("contending query err = %v, want ErrOverloaded", err)
	}
	if shedTr.Disposition != DispositionShed {
		t.Errorf("shed disposition = %q, want shed", shedTr.Disposition)
	}
	if shedTr.AdmissionWait < 10*time.Millisecond {
		t.Errorf("shed admission wait = %v, want >= most of the 20ms deadline", shedTr.AdmissionWait)
	}

	close(src.gate)
	if err := <-leaderDone; err != nil {
		t.Fatal(err)
	}
	if err := <-followerDone; err != nil {
		t.Fatal(err)
	}
	if leaderTr.Disposition != DispositionMiss {
		t.Errorf("leader disposition = %q, want miss", leaderTr.Disposition)
	}
	if followerTr.Disposition != DispositionCoalesced {
		t.Errorf("follower disposition = %q, want coalesced", followerTr.Disposition)
	}
}

// TestUntracedRequestsWork pins the nil-trace fast path: requests without a
// trace in context must behave identically.
func TestUntracedRequestsWork(t *testing.T) {
	src := &traceSource{epoch: 1, hits: 2}
	l := New(src, Options{Metrics: obs.NewRegistry()})
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		page, err := l.Search(ctx, "q", 8)
		if err != nil || len(page.Results) != 2 {
			t.Fatalf("untraced search: %v %+v", err, page)
		}
	}
	if _, err := l.Record(ctx, "id1"); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Lineage(ctx, "id1"); err != nil {
		t.Fatal(err)
	}
}

func TestTraceLogRingAndLookup(t *testing.T) {
	l := NewTraceLog(4, 2)
	var ids []string
	for i := 0; i < 6; i++ {
		tr := NewTrace("search")
		tr.Finish(200, time.Duration(i+1)*time.Millisecond, nil)
		l.Record(tr)
		ids = append(ids, tr.ID)
	}
	if l.Len() != 4 {
		t.Errorf("ring len = %d, want 4", l.Len())
	}
	// The two oldest fell out of the ring; the four newest resolve.
	for _, id := range ids[:2] {
		if _, ok := l.ByID(id); ok {
			t.Errorf("evicted trace %s still resolvable", id)
		}
	}
	for _, id := range ids[2:] {
		got, ok := l.ByID(id)
		if !ok || got.ID != id {
			t.Errorf("trace %s not resolvable", id)
		}
	}
}

func TestTraceLogTopKSlowest(t *testing.T) {
	l := NewTraceLog(64, 3)
	// Record 10 traces with latencies 1..10ms plus a different endpoint.
	for i := 1; i <= 10; i++ {
		tr := NewTrace("search")
		tr.AdmissionWait = time.Duration(i) * time.Microsecond
		tr.Finish(200, time.Duration(i)*time.Millisecond, nil)
		l.Record(tr)
	}
	other := NewTrace("aggregate")
	other.Finish(200, 99*time.Millisecond, nil)
	l.Record(other)

	slow := l.Slowest()
	got := slow["search"]
	if len(got) != 3 {
		t.Fatalf("search slowlog len = %d, want 3", len(got))
	}
	wants := []time.Duration{10 * time.Millisecond, 9 * time.Millisecond, 8 * time.Millisecond}
	for i, want := range wants {
		if got[i].Total != want {
			t.Errorf("slowlog[%d].Total = %v, want %v (slowest first)", i, got[i].Total, want)
		}
	}
	// Annotations survive retention.
	if got[0].AdmissionWait != 10*time.Microsecond {
		t.Errorf("slowlog[0].AdmissionWait = %v, want 10µs", got[0].AdmissionWait)
	}
	if len(slow["aggregate"]) != 1 || slow["aggregate"][0].Total != 99*time.Millisecond {
		t.Errorf("aggregate slowlog = %+v", slow["aggregate"])
	}
}

// TestTraceLogConcurrent hammers Record/ByID/Slowest under -race.
func TestTraceLogConcurrent(t *testing.T) {
	l := NewTraceLog(128, 8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr := NewTrace("search")
				tr.Finish(200, time.Duration(i)*time.Microsecond, nil)
				l.Record(tr)
				if i%20 == 0 {
					_, _ = l.ByID(tr.ID)
					_ = l.Slowest()
				}
			}
		}(w)
	}
	wg.Wait()
	if l.Len() != 128 {
		t.Errorf("ring len = %d, want full 128", l.Len())
	}
	if got := len(l.Slowest()["search"]); got != 8 {
		t.Errorf("slowlog len = %d, want 8", got)
	}
}

func TestTraceLogNilSafety(t *testing.T) {
	var l *TraceLog
	l.Record(NewTrace("x"))
	if _, ok := l.ByID("woc-0-0"); ok {
		t.Error("nil TraceLog resolved an ID")
	}
	if l.Slowest() != nil || l.Len() != 0 {
		t.Error("nil TraceLog not empty")
	}
	var tr *Trace
	tr.Finish(200, 0, nil)
	tr.SetResults(1)
	tr.setArg("x")
	tr.setEpoch(1)
	tr.setDisposition(DispositionHit)
	tr.addAdmissionWait(1)
	tr.setCompute(1)
}
