package serving

import (
	"sort"
	"sync"
)

// TraceLog retains finished request traces in two bounded structures:
//
//   - a ring of the most recent traces, indexed by trace ID, backing the
//     /debug/trace?id= lookup — any ID a client just saw in X-Woc-Trace
//     resolves while it is among the last ringSize requests;
//   - a per-endpoint top-K slow-query log ordered by total latency, backing
//     /debug/slowlog — the worst requests are retained with their full
//     annotations even after they fall out of the recency ring.
//
// Memory is hard-bounded: ringSize + endpoints×K trace copies, no growth
// under sustained traffic. A nil *TraceLog drops everything.
type TraceLog struct {
	mu   sync.Mutex
	ring []Trace
	byID map[string]int // trace ID → ring slot, while still resident
	next int

	topK int
	slow map[string][]Trace // per endpoint, min-first by Total
}

// Defaults shared with wocserve's flags.
const (
	DefaultTraceRing = 1024
	DefaultSlowlogK  = 16
)

// NewTraceLog builds a trace log retaining the last ringSize traces and the
// topK slowest per endpoint; non-positive values take the defaults.
func NewTraceLog(ringSize, topK int) *TraceLog {
	if ringSize <= 0 {
		ringSize = DefaultTraceRing
	}
	if topK <= 0 {
		topK = DefaultSlowlogK
	}
	return &TraceLog{
		ring: make([]Trace, 0, ringSize),
		byID: make(map[string]int, ringSize),
		topK: topK,
		slow: make(map[string][]Trace),
	}
}

// Record stores a copy of the finished trace. Call after Finish; later
// mutations of t are not reflected.
func (l *TraceLog) Record(t *Trace) {
	if l == nil || t == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()

	// Recency ring.
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, *t)
		l.byID[t.ID] = len(l.ring) - 1
	} else {
		delete(l.byID, l.ring[l.next].ID)
		l.ring[l.next] = *t
		l.byID[t.ID] = l.next
		l.next = (l.next + 1) % cap(l.ring)
	}

	// Per-endpoint top-K, min-first so the cheapest retained trace is at
	// index 0 and eviction is O(K) shift (K is small).
	sl := l.slow[t.Endpoint]
	if len(sl) >= l.topK {
		if t.Total <= sl[0].Total {
			return
		}
		sl = sl[1:]
	}
	i := sort.Search(len(sl), func(i int) bool { return sl[i].Total > t.Total })
	sl = append(sl, Trace{})
	copy(sl[i+1:], sl[i:])
	sl[i] = *t
	l.slow[t.Endpoint] = sl
}

// ByID resolves a trace ID still in the recency ring.
func (l *TraceLog) ByID(id string) (Trace, bool) {
	if l == nil {
		return Trace{}, false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	i, ok := l.byID[id]
	if !ok {
		return Trace{}, false
	}
	return l.ring[i], true
}

// Slowest returns the retained slow queries per endpoint, slowest first.
// The slices are fresh copies, safe to serialize.
func (l *TraceLog) Slowest() map[string][]Trace {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string][]Trace, len(l.slow))
	for ep, sl := range l.slow {
		cp := make([]Trace, len(sl))
		for i := range sl {
			cp[len(sl)-1-i] = sl[i] // reverse: slowest first
		}
		out[ep] = cp
	}
	return out
}

// Len reports how many traces the recency ring currently holds.
func (l *TraceLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.ring)
}
