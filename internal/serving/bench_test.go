package serving

import (
	"context"
	"sync"
	"testing"

	"conceptweb/internal/obs"
	"conceptweb/internal/webgen"
	"conceptweb/woc"
)

var (
	benchOnce sync.Once
	benchSys  *woc.System
	benchQ    string
)

func benchFixture(b *testing.B) (*woc.System, string) {
	b.Helper()
	benchOnce.Do(func() {
		cfg := webgen.DefaultConfig()
		cfg.Restaurants = 30
		cfg.ReviewArticles = 10
		cfg.TVArticles = 2
		w := webgen.Generate(cfg)
		sys, err := woc.Build(w.Fetch, w.SeedURLs(),
			woc.WithLocalDomain(w.Cities(), webgen.Cuisines()))
		if err != nil {
			panic(err)
		}
		benchSys = sys
		benchQ = w.Restaurants[0].Name + " " + w.Restaurants[0].City
	})
	return benchSys, benchQ
}

// BenchmarkServeHot measures the cached read path: a repeated hot query
// served from the sharded result cache. Compare with BenchmarkServeCold —
// the ratio is the cache's whole-request speedup for head traffic.
func BenchmarkServeHot(b *testing.B) {
	sys, q := benchFixture(b)
	l := New(sys, Options{Metrics: obs.NewRegistry()})
	ctx := context.Background()
	if _, err := l.Search(ctx, q, 8); err != nil { // fill the entry
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := l.Search(ctx, q, 8); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkServeCold measures the uncached read path for the same query:
// what every request cost before the serving layer existed (and what a
// cache miss still costs).
func BenchmarkServeCold(b *testing.B) {
	sys, q := benchFixture(b)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			sys.Search(q, 8)
		}
	})
}
