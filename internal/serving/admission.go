package serving

import (
	"context"
	"errors"
	"time"

	"conceptweb/internal/obs"
)

// ErrOverloaded is returned when admission control sheds a request: every
// compute slot stayed busy for the full wait deadline. HTTP layers should
// translate it to 503 with a Retry-After hint rather than letting requests
// queue unboundedly.
var ErrOverloaded = errors.New("serving: overloaded, retry later")

// admission is a bounded in-flight semaphore with a short wait deadline.
// A request that cannot get a slot within the deadline is shed — under
// sustained overload the server degrades to fast 503s instead of building
// an unbounded queue whose every entry eventually times out anyway.
// A nil *admission admits everything.
type admission struct {
	slots   chan struct{}
	wait    time.Duration
	shed    *obs.Counter
	waiting *obs.Gauge
}

func newAdmission(maxInflight int, wait time.Duration, reg *obs.Registry) *admission {
	if maxInflight <= 0 {
		return nil
	}
	return &admission{
		slots:   make(chan struct{}, maxInflight),
		wait:    wait,
		shed:    reg.Counter("serve.shed"),
		waiting: reg.Gauge("serve.admission.waiting"),
	}
}

// acquire obtains a compute slot, waiting at most the configured deadline
// (bounded further by ctx). It returns the release func, how long the
// request waited for its slot (the tracing annotation answering "was it
// admission or compute?"), ErrOverloaded on shed, or the ctx error if the
// caller gave up first.
func (a *admission) acquire(ctx context.Context) (release func(), waited time.Duration, err error) {
	if a == nil {
		return func() {}, 0, nil
	}
	select {
	case a.slots <- struct{}{}:
		return a.releaseFunc(), 0, nil
	default:
	}
	a.waiting.Add(1)
	defer a.waiting.Add(-1)
	start := time.Now()
	timer := time.NewTimer(a.wait)
	defer timer.Stop()
	select {
	case a.slots <- struct{}{}:
		return a.releaseFunc(), time.Since(start), nil
	case <-timer.C:
		a.shed.Inc()
		return nil, time.Since(start), ErrOverloaded
	case <-ctx.Done():
		return nil, time.Since(start), ctx.Err()
	}
}

func (a *admission) releaseFunc() func() {
	return func() { <-a.slots }
}
