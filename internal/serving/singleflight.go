package serving

import (
	"fmt"
	"sync"
)

// flightGroup coalesces concurrent calls with the same key into one
// execution: the first caller runs fn, late arrivals block and share the
// leader's result. A cache-miss stampede on a hot query thus costs one
// computation instead of one per request (and one admission slot instead of
// many — admission happens inside fn).
//
// Unlike golang.org/x/sync/singleflight this carries no forget/async
// machinery: keys embed the data epoch, so a completed flight's key is
// naturally retired when the data changes.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	wg  sync.WaitGroup
	val any
	err error
}

// do returns the result of running fn under key, sharing it with concurrent
// callers. shared reports whether this caller got another flight's result
// rather than running fn itself.
func (g *flightGroup) do(key string, fn func() (any, error)) (val any, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err, true
	}
	c := &flightCall{}
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	func() {
		defer func() {
			// A panicking compute must not strand waiters: give them an
			// error, unblock them, drop the key, and re-panic on the leader.
			if r := recover(); r != nil {
				c.val, c.err = nil, fmt.Errorf("serving: compute panicked: %v", r)
				g.finish(key, c)
				panic(r)
			}
		}()
		c.val, c.err = fn()
	}()
	g.finish(key, c)
	return c.val, c.err, false
}

func (g *flightGroup) finish(key string, c *flightCall) {
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	c.wg.Done()
}
