package serving

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"conceptweb/internal/obs"
	"conceptweb/woc"
)

// fakeSource is a controllable Source: computations count themselves, can
// block on a gate (to hold admission slots and force coalescing windows),
// and stamp results with the epoch they were computed at so staleness is
// observable in the value itself.
type fakeSource struct {
	epoch    atomic.Uint64
	searches atomic.Int64
	aggs     atomic.Int64
	gate     chan struct{} // when non-nil, Search blocks until closed
}

func (f *fakeSource) Epoch() uint64 { return f.epoch.Load() }

func (f *fakeSource) Search(q string, k int) *woc.Page {
	f.searches.Add(1)
	if f.gate != nil {
		<-f.gate
	}
	return &woc.Page{Assistance: []string{fmt.Sprintf("%s@%d", q, f.epoch.Load())}}
}

func (f *fakeSource) ConceptSearch(q string, k int) []woc.Hit {
	return []woc.Hit{{Score: float64(len(q))}}
}

func (f *fakeSource) Aggregate(id string) (*woc.Aggregation, error) {
	f.aggs.Add(1)
	if id == "missing" {
		return nil, errors.New("not found")
	}
	return &woc.Aggregation{Title: id}, nil
}

func (f *fakeSource) Alternatives(id string, k int) ([]woc.Suggestion, error) {
	return []woc.Suggestion{{Reason: id}}, nil
}

func (f *fakeSource) Augmentations(id string, k int) ([]woc.Suggestion, error) {
	return []woc.Suggestion{{Reason: id}}, nil
}

func (f *fakeSource) Record(id string) (woc.Record, error) {
	return woc.Record{ID: id}, nil
}

func (f *fakeSource) Lineage(id string) ([]string, error) {
	return []string{id}, nil
}

func newTestLayer(src Source, opts Options) (*Layer, *obs.Registry) {
	reg := obs.NewRegistry()
	opts.Metrics = reg
	return New(src, opts), reg
}

// --- Cache unit tests ---

func TestCacheLRUEviction(t *testing.T) {
	reg := obs.NewRegistry()
	// Capacity 16 with 16 shards = one entry per shard: inserting two keys
	// that land in the same shard must evict the older one.
	c := NewCache(16, 0, reg)
	c.now = func() time.Time { return time.Unix(0, 0) }

	// Find two keys in the same shard.
	a := "k0"
	b := ""
	for i := 1; i < 10000; i++ {
		k := fmt.Sprintf("k%d", i)
		if fnv32a(k)%cacheShards == fnv32a(a)%cacheShards {
			b = k
			break
		}
	}
	if b == "" {
		t.Fatal("no shard-colliding key found")
	}
	c.Put(a, 1)
	c.Put(b, 2)
	if _, ok := c.Get(a); ok {
		t.Error("LRU entry survived over-capacity insert")
	}
	if v, ok := c.Get(b); !ok || v != 2 {
		t.Errorf("newest entry missing: %v %v", v, ok)
	}
	if got := reg.Counter("serve.cache.evictions").Value(); got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
}

func TestCacheLRURecency(t *testing.T) {
	c := NewCache(16, 0, obs.NewRegistry())
	a := "k0"
	var b, d string
	for i := 1; i < 20000 && (b == "" || d == ""); i++ {
		k := fmt.Sprintf("k%d", i)
		if fnv32a(k)%cacheShards != fnv32a(a)%cacheShards {
			continue
		}
		if b == "" {
			b = k
		} else {
			d = k
		}
	}
	// Bump the shard capacity to 2 by using capacity 32 (2 per shard).
	c = NewCache(32, 0, obs.NewRegistry())
	c.Put(a, 1)
	c.Put(b, 2)
	c.Get(a) // a is now most recent
	c.Put(d, 3)
	if _, ok := c.Get(a); !ok {
		t.Error("recently used entry was evicted")
	}
	if _, ok := c.Get(b); ok {
		t.Error("least recently used entry survived")
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewCache(64, time.Minute, reg)
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }
	c.Put("k", "v")
	if _, ok := c.Get("k"); !ok {
		t.Fatal("fresh entry missing")
	}
	now = now.Add(2 * time.Minute)
	if _, ok := c.Get("k"); ok {
		t.Error("expired entry served")
	}
	if got := reg.Counter("serve.cache.expirations").Value(); got != 1 {
		t.Errorf("expirations = %d, want 1", got)
	}
	if got := c.Len(); got != 0 {
		t.Errorf("Len = %d after expiry, want 0", got)
	}
}

func TestCacheDisabled(t *testing.T) {
	var c *Cache // capacity <= 0 returns nil; nil must be inert
	c.Put("k", 1)
	if _, ok := c.Get("k"); ok {
		t.Error("nil cache returned a hit")
	}
	if c.Len() != 0 {
		t.Error("nil cache has length")
	}
	if NewCache(0, time.Minute, nil) != nil {
		t.Error("capacity 0 should disable the cache")
	}
}

// --- Layer behavior ---

func TestServeHitAvoidsRecompute(t *testing.T) {
	src := &fakeSource{}
	l, reg := newTestLayer(src, Options{})
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := l.Search(ctx, "gochi cupertino", 8); err != nil {
			t.Fatal(err)
		}
	}
	if got := src.searches.Load(); got != 1 {
		t.Errorf("computations = %d, want 1 (cache should absorb repeats)", got)
	}
	if got := reg.Counter("serve.hit.search").Value(); got != 4 {
		t.Errorf("serve.hit.search = %d, want 4", got)
	}
	if got := reg.Counter("serve.miss.search").Value(); got != 1 {
		t.Errorf("serve.miss.search = %d, want 1", got)
	}
}

func TestNormalizedVariantsShareEntry(t *testing.T) {
	src := &fakeSource{}
	l, _ := newTestLayer(src, Options{})
	ctx := context.Background()
	for _, q := range []string{"pizza  NYC", "pizza nyc", " Pizza NYC ", "PIZZA\tNYC"} {
		if _, err := l.Search(ctx, q, 8); err != nil {
			t.Fatal(err)
		}
	}
	if got := src.searches.Load(); got != 1 {
		t.Errorf("computations = %d, want 1: whitespace/case variants must share a cache entry", got)
	}
	// Different k is a different result shape: separate entry.
	if _, err := l.Search(ctx, "pizza nyc", 20); err != nil {
		t.Fatal(err)
	}
	if got := src.searches.Load(); got != 2 {
		t.Errorf("computations = %d, want 2 after distinct k", got)
	}
}

func TestEpochBumpInvalidates(t *testing.T) {
	src := &fakeSource{}
	l, _ := newTestLayer(src, Options{})
	ctx := context.Background()
	p1, _ := l.Search(ctx, "q", 8)
	if p1.Assistance[0] != "q@0" {
		t.Fatalf("unexpected result %v", p1.Assistance)
	}
	src.epoch.Add(1) // a maintenance pass changed the data
	p2, _ := l.Search(ctx, "q", 8)
	if p2.Assistance[0] != "q@1" {
		t.Errorf("post-refresh request served pre-refresh result: %v", p2.Assistance)
	}
	if got := src.searches.Load(); got != 2 {
		t.Errorf("computations = %d, want 2 (epoch bump must invalidate)", got)
	}
	// Same epoch again: back to cached.
	l.Search(ctx, "q", 8) //nolint:errcheck
	if got := src.searches.Load(); got != 2 {
		t.Errorf("computations = %d, want still 2", got)
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	src := &fakeSource{}
	l, _ := newTestLayer(src, Options{})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := l.Aggregate(ctx, "missing"); err == nil {
			t.Fatal("want error for missing id")
		}
	}
	if got := src.aggs.Load(); got != 3 {
		t.Errorf("computations = %d, want 3: errors must not be cached", got)
	}
	if _, err := l.Aggregate(ctx, "r1"); err != nil {
		t.Fatal(err)
	}
	l.Aggregate(ctx, "r1") //nolint:errcheck
	if got := src.aggs.Load(); got != 4 {
		t.Errorf("computations = %d, want 4: successes are cached", got)
	}
}

// TestCoalescing floods one cold key with concurrent requests and asserts a
// single computation: the leader runs while everyone else waits and shares.
func TestCoalescing(t *testing.T) {
	src := &fakeSource{gate: make(chan struct{})}
	l, reg := newTestLayer(src, Options{})
	ctx := context.Background()

	const n = 20
	var wg sync.WaitGroup
	results := make([]*woc.Page, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := l.Search(ctx, "hot query", 8)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = p
		}(i)
	}
	// Wait until all n requests have registered a miss (leader computing,
	// n-1 parked in the flight), then open the gate.
	deadline := time.Now().Add(5 * time.Second)
	for reg.Counter("serve.miss.search").Value() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d misses registered", reg.Counter("serve.miss.search").Value())
		}
		time.Sleep(time.Millisecond)
	}
	close(src.gate)
	wg.Wait()

	if got := src.searches.Load(); got != 1 {
		t.Errorf("computations = %d, want 1 (stampede must coalesce)", got)
	}
	if got := reg.Counter("serve.coalesced").Value(); got != n-1 {
		t.Errorf("serve.coalesced = %d, want %d", got, n-1)
	}
	for i, p := range results {
		if p == nil || p.Assistance[0] != results[0].Assistance[0] {
			t.Fatalf("result %d diverged: %+v", i, p)
		}
	}
}

// TestAdmissionSheds saturates the single compute slot and asserts that a
// second, distinct request gets ErrOverloaded within the wait deadline
// instead of queueing behind it.
func TestAdmissionSheds(t *testing.T) {
	src := &fakeSource{gate: make(chan struct{})}
	l, reg := newTestLayer(src, Options{MaxInflight: 1, AdmitWait: 30 * time.Millisecond})
	ctx := context.Background()

	holderDone := make(chan error, 1)
	go func() {
		_, err := l.Search(ctx, "slow query", 8)
		holderDone <- err
	}()
	// Wait for the holder to be inside the computation (slot taken).
	deadline := time.Now().Add(5 * time.Second)
	for src.searches.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("holder never started computing")
		}
		time.Sleep(time.Millisecond)
	}

	start := time.Now()
	_, err := l.Search(ctx, "another query", 8)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("shed took %v; must fail within the wait deadline, not queue", elapsed)
	}
	if got := reg.Counter("serve.shed").Value(); got != 1 {
		t.Errorf("serve.shed = %d, want 1", got)
	}

	close(src.gate)
	if err := <-holderDone; err != nil {
		t.Fatalf("holder failed: %v", err)
	}
	// Slot free again: requests are admitted.
	if _, err := l.Search(ctx, "third query", 8); err != nil {
		t.Errorf("post-recovery request failed: %v", err)
	}
}

func TestUncachedEndpointsShedToo(t *testing.T) {
	src := &fakeSource{gate: make(chan struct{})}
	l, _ := newTestLayer(src, Options{MaxInflight: 1, AdmitWait: 20 * time.Millisecond})
	ctx := context.Background()

	done := make(chan struct{})
	go func() {
		defer close(done)
		l.Search(ctx, "holder", 8) //nolint:errcheck
	}()
	deadline := time.Now().Add(5 * time.Second)
	for src.searches.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("holder never started")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := l.Record(ctx, "r1"); !errors.Is(err, ErrOverloaded) {
		t.Errorf("Record under overload: err = %v, want ErrOverloaded", err)
	}
	if _, err := l.Lineage(ctx, "r1"); !errors.Is(err, ErrOverloaded) {
		t.Errorf("Lineage under overload: err = %v, want ErrOverloaded", err)
	}
	close(src.gate)
	<-done
}

func TestContextCancellation(t *testing.T) {
	src := &fakeSource{}
	l, _ := newTestLayer(src, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := l.Search(ctx, "q", 8); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if got := src.searches.Load(); got != 0 {
		t.Errorf("computations = %d, want 0 for dead context", got)
	}
}

func TestSingleflightPanicPropagatesAndUnblocks(t *testing.T) {
	var g flightGroup
	defer func() {
		if recover() == nil {
			t.Error("leader panic was swallowed")
		}
	}()
	g.do("k", func() (any, error) { panic("boom") }) //nolint:errcheck
}
