package serving

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"conceptweb/internal/webgen"
	"conceptweb/woc"
)

// buildVersionedSystem builds a small real system whose fetcher appends a
// version comment to every page, so bumping the version makes the next
// Refresh see every refreshed page as changed (content hash differs).
func buildVersionedSystem(t testing.TB) (*woc.System, *webgen.World, *atomic.Int64) {
	t.Helper()
	cfg := webgen.DefaultConfig()
	cfg.Restaurants = 20
	cfg.ReviewArticles = 5
	cfg.TVArticles = 2
	w := webgen.Generate(cfg)
	var version atomic.Int64
	fetch := func(u string) (string, error) {
		h, err := w.Fetch(u)
		if err != nil {
			return "", err
		}
		return h + fmt.Sprintf("<!-- v%d -->", version.Load()), nil
	}
	sys, err := woc.Build(fetch, w.SeedURLs(),
		woc.WithLocalDomain(w.Cities(), webgen.Cuisines()))
	if err != nil {
		t.Fatal(err)
	}
	return sys, w, &version
}

// TestConcurrentReadsDuringMaintenance is the read/maintenance race proof:
// it hammers Search/Aggregate/ConceptSearch/Alternatives/Record through the
// serving layer while Refresh and Reconcile mutate the system, under -race.
// Before the System read/maintenance lock existed, Refresh rewrote the
// association maps and indexes with readers in flight and this test raced;
// with the lock, every response is computed against a single epoch.
func TestConcurrentReadsDuringMaintenance(t *testing.T) {
	sys, w, version := buildVersionedSystem(t)
	// Cache off and admission unbounded: every request must reach the
	// engine, otherwise warm cache entries would absorb the reads and mask
	// the very race this test exists to catch.
	l := New(sys, Options{CacheSize: -1, MaxInflight: -1, Metrics: sys.Metrics()})
	ctx := context.Background()

	var queries []string
	for _, r := range w.Restaurants[:10] {
		queries = append(queries, r.Name+" "+r.City)
		queries = append(queries, "best "+r.Cuisine+" "+r.City)
	}
	var ids []string
	for _, rec := range sys.Records("restaurant") {
		ids = append(ids, rec.ID)
	}
	if len(ids) == 0 {
		t.Fatal("no restaurant records to read")
	}
	urls := w.SeedURLs()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	const readers = 6
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := queries[(g+i)%len(queries)]
				id := ids[(g+i)%len(ids)]
				switch i % 5 {
				case 0:
					if _, err := l.Search(ctx, q, 8); err != nil {
						t.Error(err)
					}
				case 1:
					l.Aggregate(ctx, id) //nolint:errcheck // unknown ids are fine
				case 2:
					if _, err := l.ConceptSearch(ctx, q, 8); err != nil {
						t.Error(err)
					}
				case 3:
					l.Alternatives(ctx, id, 5) //nolint:errcheck
				case 4:
					if _, err := l.Record(ctx, id); err != nil {
						t.Error(err)
					}
				}
			}
		}(g)
	}

	// Maintenance loop: each pass changes every page (version bump), so the
	// epoch must advance strictly; Reconcile interleaves for extra churn.
	lastEpoch := l.Epoch()
	for pass := 0; pass < 4; pass++ {
		version.Add(1)
		st, err := sys.Refresh(urls)
		if err != nil {
			t.Fatalf("refresh pass %d: %v", pass, err)
		}
		if st.PagesChanged == 0 {
			t.Fatalf("pass %d changed no pages; the versioned fetcher is broken", pass)
		}
		if st.Epoch <= lastEpoch {
			t.Fatalf("epoch did not advance: %d -> %d", lastEpoch, st.Epoch)
		}
		lastEpoch = st.Epoch
		sys.Reconcile("restaurant")
	}
	close(stop)
	wg.Wait()
}

// TestPostRefreshNeverServesStale pins the acceptance criterion directly: a
// request arriving after a state-changing Refresh must recompute, never
// serve a result cached before the refresh.
func TestPostRefreshNeverServesStale(t *testing.T) {
	sys, w, version := buildVersionedSystem(t)
	l := New(sys, Options{Metrics: sys.Metrics()})
	reg := sys.Metrics()
	ctx := context.Background()
	q := w.Restaurants[0].Name + " " + w.Restaurants[0].City

	if _, err := l.Search(ctx, q, 8); err != nil { // cold: compute + fill
		t.Fatal(err)
	}
	if _, err := l.Search(ctx, q, 8); err != nil { // warm: hit
		t.Fatal(err)
	}
	hitsBefore := reg.Counter("serve.hit.search").Value()
	missBefore := reg.Counter("serve.miss.search").Value()
	if hitsBefore == 0 {
		t.Fatal("warm request did not hit the cache")
	}

	epochBefore := l.Epoch()
	version.Add(1)
	st, err := sys.Refresh(w.SeedURLs())
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch <= epochBefore {
		t.Fatalf("refresh with changed pages must bump epoch (%d -> %d)", epochBefore, st.Epoch)
	}

	if _, err := l.Search(ctx, q, 8); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("serve.miss.search").Value(); got != missBefore+1 {
		t.Fatalf("post-refresh request was served from the pre-refresh cache (miss %d -> %d)",
			missBefore, got)
	}

	// An unchanged refresh (same version) keeps the cache warm.
	st, err = sys.Refresh(w.SeedURLs())
	if err != nil {
		t.Fatal(err)
	}
	if st.PagesChanged != 0 {
		t.Fatalf("second refresh unexpectedly changed pages: %+v", st)
	}
	epochAfter := l.Epoch()
	if epochAfter != st.Epoch {
		t.Fatalf("epoch mismatch: %d vs %d", epochAfter, st.Epoch)
	}
	hits2 := reg.Counter("serve.hit.search").Value()
	if _, err := l.Search(ctx, q, 8); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("serve.hit.search").Value(); got != hits2+1 {
		t.Error("no-op refresh should keep the cache warm")
	}
}
