package shard

import (
	"fmt"
	"hash/fnv"
	"testing"
)

// TestHashMatchesStdlibFNV pins the inlined hash to the stdlib FNV-1a it
// reimplements: the function is part of the on-disk routing contract, so a
// drift here would orphan every record in every sharded directory.
func TestHashMatchesStdlibFNV(t *testing.T) {
	for _, id := range []string{"", "a", "restaurant:gochi-cupertino", "doc-007", "日本語"} {
		h := fnv.New64a()
		h.Write([]byte(id))
		if got, want := Hash(id), h.Sum64(); got != want {
			t.Errorf("Hash(%q) = %d, want %d (stdlib fnv-1a)", id, got, want)
		}
	}
}

func TestOf(t *testing.T) {
	for _, n := range []int{-1, 0, 1} {
		if got := Of("anything", n); got != 0 {
			t.Errorf("Of(_, %d) = %d, want 0", n, got)
		}
	}
	for _, n := range []int{2, 4, 16} {
		counts := make([]int, n)
		for i := 0; i < 4096; i++ {
			k := Of(fmt.Sprintf("id-%d", i), n)
			if k < 0 || k >= n {
				t.Fatalf("Of out of range: %d with n=%d", k, n)
			}
			counts[k]++
		}
		// Stability: same id, same shard, every time.
		if Of("id-0", n) != Of("id-0", n) {
			t.Fatal("routing is not deterministic")
		}
		// Spread: no shard may be empty or hold the majority at 4096 ids.
		for k, c := range counts {
			if c == 0 || c > 4096/2 {
				t.Errorf("n=%d: shard %d holds %d of 4096 ids — bad spread", n, k, c)
			}
		}
	}
}
