// Package shard is the one routing function the partitioned store and the
// partitioned inverted index share: FNV-1a over the record/document ID,
// reduced modulo the shard count.
//
// Hash partitioning (not range partitioning) is the right cut for this
// corpus: site sizes are heavy-tailed (Dalvi et al., "An Analysis of
// Structured Data on the Web"), so any contiguous key range would
// concentrate one aggregator's records on one shard, while a hash spreads
// the head sites evenly. The function is pinned here — and recorded in the
// store manifest — because every reopen must route an ID to the shard that
// logged it.
package shard

// offset64 and prime64 are the FNV-1a 64-bit parameters.
const (
	offset64 = 14695981039346656037
	prime64  = 1099511628211
)

// Hash returns the FNV-1a 64-bit hash of id. Inlined rather than using
// hash/fnv to keep routing allocation-free on hot write paths.
func Hash(id string) uint64 {
	h := uint64(offset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	return h
}

// Of routes id to one of n shards. n <= 1 always routes to shard 0.
func Of(id string, n int) int {
	if n <= 1 {
		return 0
	}
	return int(Hash(id) % uint64(n))
}
