package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/url"
	"sync"
	"time"

	"conceptweb/internal/obs"
)

// Options configures a sweep.
type Options struct {
	// BaseURL of the running wocserve, e.g. http://127.0.0.1:8639.
	BaseURL string
	// Levels are the target aggregate QPS levels, swept in order.
	Levels []float64
	// Duration each level runs for.
	Duration time.Duration
	// MaxSessions caps concurrently running sessions so an overloaded server
	// cannot drive the client to unbounded goroutines; arrivals past the cap
	// are counted as dropped, which is itself an overload signal. Zero means
	// DefaultMaxSessions.
	MaxSessions int
	// SLOP99 asserts the client-observed p99 of SLOEndpoint at the LOWEST
	// level stays under this bound; zero disables the assert.
	SLOP99      time.Duration
	SLOEndpoint string
	// Client overrides the HTTP client (tests); nil builds a pooled default.
	Client *http.Client
	// Logf receives progress lines; nil silences them.
	Logf func(format string, args ...any)
}

// DefaultMaxSessions bounds client-side concurrency.
const DefaultMaxSessions = 256

// shedOnsetFraction: the sweep reports the first level where at least this
// fraction of requests was shed as the shed onset.
const shedOnsetFraction = 0.005

// Report is the sweep result, written as BENCH_PR6.json by CI and make
// loadtest.
type Report struct {
	BaseURL      string        `json:"base_url"`
	Seed         int64         `json:"seed"`
	Notes        string        `json:"notes,omitempty"` // e.g. the server flags swept against
	DurationSecs float64       `json:"duration_secs_per_level"`
	Levels       []LevelReport `json:"levels"`
	// ShedOnsetQPS is the first swept level where the server shed >=0.5% of
	// requests; 0 means no level reached shedding.
	ShedOnsetQPS float64 `json:"shed_onset_qps"`
}

// LevelReport is one QPS level's client-side view.
type LevelReport struct {
	TargetQPS       float64 `json:"target_qps"`
	AchievedQPS     float64 `json:"achieved_qps"`
	Requests        int64   `json:"requests"`
	Errors          int64   `json:"errors"` // transport errors + 5xx other than shed
	Shed            int64   `json:"shed"`   // 503 responses
	ShedRate        float64 `json:"shed_rate"`
	SessionsDropped int64   `json:"sessions_dropped,omitempty"`

	Endpoints map[string]EndpointStats `json:"endpoints"`
}

// EndpointStats is the per-endpoint latency/disposition split. The
// hit/miss/coalesced/shed classification comes from the server's X-Woc-Cache
// response header, so the split is exact, not inferred from latency.
type EndpointStats struct {
	Requests  int64 `json:"requests"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"`
	Shed      int64 `json:"shed"`

	P50ms float64 `json:"p50_ms"`
	P99ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`

	HitP50ms  float64 `json:"hit_p50_ms,omitempty"`
	HitP99ms  float64 `json:"hit_p99_ms,omitempty"`
	MissP50ms float64 `json:"miss_p50_ms,omitempty"`
	MissP99ms float64 `json:"miss_p99_ms,omitempty"`
}

// Bootstrap harvests record IDs from the live server by probing /concepts
// with the workload's head queries, enabling the id-addressed endpoints.
// Returns how many IDs were installed.
func Bootstrap(w *Workload, baseURL string, client *http.Client) (int, error) {
	if client == nil {
		client = defaultClient()
	}
	seen := make(map[string]bool)
	var ids []string
	for _, q := range w.HarvestQueries(25) {
		resp, err := client.Get(baseURL + "/concepts?k=20&q=" + url.QueryEscape(q))
		if err != nil {
			return 0, fmt.Errorf("loadgen bootstrap: %w", err)
		}
		var hits []struct {
			Record struct {
				ID string
			}
		}
		err = json.NewDecoder(resp.Body).Decode(&hits)
		resp.Body.Close()
		if err != nil {
			continue // non-200 or odd body; other probes may still yield IDs
		}
		for _, h := range hits {
			if h.Record.ID != "" && !seen[h.Record.ID] {
				seen[h.Record.ID] = true
				ids = append(ids, h.Record.ID)
			}
		}
	}
	w.SetIDs(ids)
	return len(ids), nil
}

// Run sweeps the configured QPS levels and returns the report. A non-nil
// error with a non-nil report means the sweep completed but the SLO assert
// failed.
func Run(w *Workload, opts Options) (*Report, error) {
	if len(opts.Levels) == 0 {
		return nil, fmt.Errorf("loadgen: no QPS levels")
	}
	if opts.Duration <= 0 {
		opts.Duration = 5 * time.Second
	}
	if opts.MaxSessions <= 0 {
		opts.MaxSessions = DefaultMaxSessions
	}
	if opts.Client == nil {
		opts.Client = defaultClient()
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	rep := &Report{BaseURL: opts.BaseURL, DurationSecs: opts.Duration.Seconds()}
	for i, qps := range opts.Levels {
		lr := runLevel(w, opts, qps, int64(i))
		rep.Levels = append(rep.Levels, lr)
		logf("level %4.0f qps: achieved %6.1f, %6d reqs, shed %.2f%%, search p99 %.1fms",
			qps, lr.AchievedQPS, lr.Requests, 100*lr.ShedRate, lr.Endpoints["search"].P99ms)
		if rep.ShedOnsetQPS == 0 && lr.ShedRate >= shedOnsetFraction {
			rep.ShedOnsetQPS = qps
		}
	}

	if opts.SLOP99 > 0 {
		ep := opts.SLOEndpoint
		if ep == "" {
			ep = "search"
		}
		// Assert at the lowest level: the SLO is about the healthy regime,
		// not about behaviour past the shed onset.
		low := rep.Levels[0]
		got := time.Duration(low.Endpoints[ep].P99ms * float64(time.Millisecond))
		if got > opts.SLOP99 {
			return rep, fmt.Errorf("loadgen: %s p99 %.1fms exceeds SLO %s at %v qps",
				ep, low.Endpoints[ep].P99ms, opts.SLOP99, low.TargetQPS)
		}
	}
	return rep, nil
}

// runLevel drives one open-loop level: session starts form a Poisson process
// whose rate converts the target per-request QPS through the mean session
// length, independent of how fast the server answers — so when the server
// saturates, latency and shedding rise instead of the offered load silently
// dropping (the closed-loop coordination trap).
func runLevel(w *Workload, opts Options, qps float64, levelSeed int64) LevelReport {
	reg := obs.NewRegistry()
	arrivals := rand.New(rand.NewSource(levelSeed + 1))
	lambda := qps / MeanOpsPerSession // sessions per second

	sem := make(chan struct{}, opts.MaxSessions)
	var wg sync.WaitGroup
	var dropped int64

	start := time.Now()
	deadline := start.Add(opts.Duration)
	for now := start; now.Before(deadline); {
		// Exponential inter-arrival time.
		wait := time.Duration(-math.Log(1-arrivals.Float64()) / lambda * float64(time.Second))
		time.Sleep(wait)
		now = time.Now()
		if !now.Before(deadline) {
			break
		}
		ops := w.Session() // sampled here: Workload is single-goroutine
		select {
		case sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				for _, op := range ops {
					doOp(opts.Client, opts.BaseURL, op, reg)
				}
			}()
		default:
			dropped++
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	return assemble(reg, qps, elapsed, dropped)
}

// doOp issues one operation and records its client-side view.
func doOp(client *http.Client, baseURL string, op Op, reg *obs.Registry) {
	ep := sanitizeEndpoint(op.Endpoint)
	reqStart := time.Now()
	resp, err := client.Get(baseURL + op.Path)
	if err != nil {
		reg.Counter("err." + ep).Inc()
		reg.Counter("req." + ep).Inc()
		return
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining for keep-alive
	resp.Body.Close()
	lat := time.Since(reqStart)

	reg.Counter("req." + ep).Inc()
	reg.Histogram("lat." + ep).ObserveDuration(lat)
	switch disp := resp.Header.Get("X-Woc-Cache"); disp {
	case "hit":
		reg.Counter("hit." + ep).Inc()
		reg.Histogram("lat." + ep + ".hit").ObserveDuration(lat)
	case "miss":
		reg.Counter("miss." + ep).Inc()
		reg.Histogram("lat." + ep + ".miss").ObserveDuration(lat)
	case "coalesced":
		reg.Counter("coal." + ep).Inc()
		reg.Histogram("lat." + ep + ".miss").ObserveDuration(lat)
	}
	switch {
	case resp.StatusCode == http.StatusServiceUnavailable:
		reg.Counter("shed." + ep).Inc()
	case resp.StatusCode >= 500:
		reg.Counter("err." + ep).Inc()
	}
}

// assemble folds the level's registry into the report row.
func assemble(reg *obs.Registry, qps float64, elapsed time.Duration, dropped int64) LevelReport {
	snap := reg.Snapshot()
	lr := LevelReport{
		TargetQPS:       qps,
		SessionsDropped: dropped,
		Endpoints:       make(map[string]EndpointStats),
	}
	msQ := func(h obs.HistogramSnapshot) (p50, p99, max float64) {
		return h.P50 * 1000, h.P99 * 1000, h.Max * 1000
	}
	for name, n := range snap.Counters {
		ep, kind := "", ""
		for _, prefix := range []string{"req.", "hit.", "miss.", "coal.", "shed.", "err."} {
			if len(name) > len(prefix) && name[:len(prefix)] == prefix {
				ep, kind = name[len(prefix):], prefix
				break
			}
		}
		if ep == "" {
			continue
		}
		st := lr.Endpoints[ep]
		switch kind {
		case "req.":
			st.Requests = n
			lr.Requests += n
		case "hit.":
			st.Hits = n
		case "miss.":
			st.Misses = n
		case "coal.":
			st.Coalesced = n
		case "shed.":
			st.Shed = n
			lr.Shed += n
		case "err.":
			lr.Errors += n
		}
		lr.Endpoints[ep] = st
	}
	for ep, st := range lr.Endpoints {
		st.P50ms, st.P99ms, st.MaxMs = msQ(snap.Histograms["lat."+ep])
		if st.Hits > 0 {
			st.HitP50ms, st.HitP99ms, _ = msQ(snap.Histograms["lat."+ep+".hit"])
		}
		if st.Misses+st.Coalesced > 0 {
			st.MissP50ms, st.MissP99ms, _ = msQ(snap.Histograms["lat."+ep+".miss"])
		}
		lr.Endpoints[ep] = st
	}
	if secs := elapsed.Seconds(); secs > 0 {
		lr.AchievedQPS = float64(lr.Requests) / secs
	}
	if lr.Requests > 0 {
		lr.ShedRate = float64(lr.Shed) / float64(lr.Requests)
	}
	return lr
}

func defaultClient() *http.Client {
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConns = 512
	tr.MaxIdleConnsPerHost = 512
	return &http.Client{Timeout: 30 * time.Second, Transport: tr}
}
