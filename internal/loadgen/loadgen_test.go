package loadgen

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"conceptweb/internal/logsim"
	"conceptweb/internal/webgen"
)

func testLogs(t *testing.T) *logsim.Logs {
	t.Helper()
	cfg := webgen.DefaultConfig()
	cfg.Restaurants = 30
	cfg.ReviewArticles = 5
	cfg.TVArticles = 1
	w := webgen.Generate(cfg)
	simCfg := logsim.DefaultConfig()
	simCfg.Users = 50
	return logsim.NewSimulator(w, simCfg).Run()
}

func TestWorkloadZipfHeadHeavy(t *testing.T) {
	logs := testLogs(t)
	w, err := FromLogs(logs, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Queries()) < 10 {
		t.Fatalf("only %d unique queries; world too small for the test", len(w.Queries()))
	}
	// Sample many queries: the head rank must dominate (zipf), and every
	// sample must come from the vocabulary.
	vocab := make(map[string]int, len(w.Queries()))
	for i, q := range w.Queries() {
		vocab[q] = i
	}
	const n = 5000
	counts := make(map[string]int)
	headRanks := 0
	for i := 0; i < n; i++ {
		q := w.Query()
		r, ok := vocab[q]
		if !ok {
			t.Fatalf("sampled query %q not in vocabulary", q)
		}
		counts[q]++
		if r < len(w.Queries())/10 {
			headRanks++
		}
	}
	if frac := float64(headRanks) / n; frac < 0.5 {
		t.Errorf("top-decile ranks drew %.0f%% of samples, want head-heavy (>=50%%)", 100*frac)
	}
}

func TestWorkloadDeterministic(t *testing.T) {
	logs := testLogs(t)
	w1, _ := FromLogs(logs, 7)
	w2, _ := FromLogs(logs, 7)
	for i := 0; i < 50; i++ {
		s1, s2 := w1.Session(), w2.Session()
		if len(s1) != len(s2) {
			t.Fatalf("session %d lengths differ: %d vs %d", i, len(s1), len(s2))
		}
		for j := range s1 {
			if s1[j] != s2[j] {
				t.Fatalf("session %d op %d differs: %+v vs %+v", i, j, s1[j], s2[j])
			}
		}
	}
}

func TestWorkloadSessionsUseIDPool(t *testing.T) {
	logs := testLogs(t)
	w, _ := FromLogs(logs, 3)

	// Without IDs every op must be a query endpoint.
	for i := 0; i < 100; i++ {
		for _, op := range w.Session() {
			if op.Endpoint != "search" && op.Endpoint != "concepts" {
				t.Fatalf("op %+v uses an id endpoint before IDs were harvested", op)
			}
			if !strings.HasPrefix(op.Path, "/"+op.Endpoint+"?") {
				t.Fatalf("malformed path %q", op.Path)
			}
		}
	}
	w.SetIDs([]string{"rest:1", "rest:2"})
	sawID := false
	for i := 0; i < 200 && !sawID; i++ {
		for _, op := range w.Session() {
			if strings.Contains(op.Path, "id=") {
				sawID = true
				if !strings.Contains(op.Path, "rest%3A1") && !strings.Contains(op.Path, "rest%3A2") {
					t.Fatalf("id op %+v not drawn from the pool", op)
				}
			}
		}
	}
	if !sawID {
		t.Error("no id-addressed ops after SetIDs")
	}
}

// fakeServe is a stand-in wocserve: instant answers, X-Woc-Cache miss on
// first sight of a path then hit, 503 on demand.
type fakeServe struct {
	seen  map[string]bool
	shedN atomic.Int64 // every Nth request is shed when > 0
	reqs  atomic.Int64
}

func (f *fakeServe) handler() http.Handler {
	mux := http.NewServeMux()
	answer := func(rw http.ResponseWriter, r *http.Request) {
		n := f.reqs.Add(1)
		if k := f.shedN.Load(); k > 0 && n%k == 0 {
			rw.Header().Set("Retry-After", "1")
			http.Error(rw, `{"error":"overloaded"}`, http.StatusServiceUnavailable)
			return
		}
		key := r.URL.String()
		disp := "miss"
		if f.seen[key] {
			disp = "hit"
		}
		f.seen[key] = true
		rw.Header().Set("X-Woc-Cache", disp)
		rw.Header().Set("X-Woc-Trace", "woc-00000000-00000001")
		rw.Write([]byte(`[]`)) //nolint:errcheck
	}
	for _, ep := range []string{"search", "concepts", "aggregate", "alternatives",
		"augmentations", "record", "lineage"} {
		mux.HandleFunc("/"+ep, answer)
	}
	mux.HandleFunc("/healthz", func(rw http.ResponseWriter, r *http.Request) {
		rw.Write([]byte(`{"ok":true}`)) //nolint:errcheck
	})
	return mux
}

func TestRunnerSweepAndHitMissSplit(t *testing.T) {
	logs := testLogs(t)
	w, _ := FromLogs(logs, 11)
	fake := &fakeServe{seen: make(map[string]bool)}
	srv := httptest.NewServer(fake.handler())
	defer srv.Close()

	rep, err := Run(w, Options{
		BaseURL:  srv.URL,
		Levels:   []float64{60, 120},
		Duration: 600 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Levels) != 2 {
		t.Fatalf("levels = %d, want 2", len(rep.Levels))
	}
	lv := rep.Levels[0]
	if lv.Requests == 0 {
		t.Fatal("no requests completed")
	}
	if lv.AchievedQPS <= 0 {
		t.Error("achieved QPS not computed")
	}
	st, ok := lv.Endpoints["search"]
	if !ok || st.Requests == 0 {
		t.Fatalf("no search stats: %+v", lv.Endpoints)
	}
	// The zipf head repeats queries, so the fake cache must yield both
	// misses (first sight) and hits (repeats), split via the header.
	if st.Misses == 0 || st.Hits == 0 {
		t.Errorf("hit/miss split empty: hits=%d misses=%d", st.Hits, st.Misses)
	}
	if st.P99ms < st.P50ms || st.P50ms <= 0 {
		t.Errorf("latency quantiles inconsistent: %+v", st)
	}
	if rep.ShedOnsetQPS != 0 {
		t.Errorf("shed onset = %v with no shedding", rep.ShedOnsetQPS)
	}
	if _, err := json.Marshal(rep); err != nil {
		t.Errorf("report not serializable: %v", err)
	}
}

func TestRunnerShedOnsetAndSLO(t *testing.T) {
	logs := testLogs(t)
	w, _ := FromLogs(logs, 13)
	fake := &fakeServe{seen: make(map[string]bool)}
	fake.shedN.Store(5) // 20% of requests shed
	srv := httptest.NewServer(fake.handler())
	defer srv.Close()

	rep, err := Run(w, Options{
		BaseURL:  srv.URL,
		Levels:   []float64{80},
		Duration: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	lv := rep.Levels[0]
	if lv.Shed == 0 || lv.ShedRate < 0.05 {
		t.Errorf("shed not recorded: shed=%d rate=%v", lv.Shed, lv.ShedRate)
	}
	if rep.ShedOnsetQPS != 80 {
		t.Errorf("shed onset = %v, want 80", rep.ShedOnsetQPS)
	}

	// An absurdly tight SLO must fail the run but still return the report.
	rep2, err := Run(w, Options{
		BaseURL:  srv.URL,
		Levels:   []float64{40},
		Duration: 300 * time.Millisecond,
		SLOP99:   time.Nanosecond,
	})
	if err == nil {
		t.Error("1ns SLO passed")
	}
	if rep2 == nil || len(rep2.Levels) != 1 {
		t.Error("SLO failure must still return the completed report")
	}
}

func TestBootstrapHarvestsIDs(t *testing.T) {
	logs := testLogs(t)
	w, _ := FromLogs(logs, 17)
	mux := http.NewServeMux()
	mux.HandleFunc("/concepts", func(rw http.ResponseWriter, r *http.Request) {
		rw.Write([]byte(`[{"Record":{"ID":"rest:a"}},{"Record":{"ID":"rest:b"}}]`)) //nolint:errcheck
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	n, err := Bootstrap(w, srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("harvested %d IDs, want 2 unique", n)
	}
}
