// Package loadgen drives a running wocserve over HTTP with a workload
// derived from the logsim behaviour model: query popularity follows a
// zipfian distribution over the vocabulary logsim emits (rank-ordered by
// empirical frequency, so the head queries the simulated users repeat most
// are also the load generator's hottest), and traffic arrives as user
// sessions — a burst of related operations from one simulated user — whose
// starts form a Poisson process tuned to hit a target aggregate QPS.
//
// The runner half sweeps QPS levels against the live server, keeping
// client-side latency histograms per endpoint with the hit/miss/coalesced/
// shed split read back from the X-Woc-Cache response header, and writes a
// JSON report (BENCH_PR6.json in CI) that shows where the serving layer's
// admission control starts shedding.
package loadgen

import (
	"fmt"
	"math/rand"
	"net/url"
	"sort"
	"strings"

	"conceptweb/internal/logsim"
)

// Op is one HTTP operation of a session: the endpoint name (for per-endpoint
// stats) and the request path with query string.
type Op struct {
	Endpoint string
	Path     string
}

// zipfS and zipfV shape the rank-popularity curve. s just above 1 matches
// the head-heavy query frequencies real engines see (and logsim emits).
const (
	zipfS = 1.1
	zipfV = 1
)

// Workload samples sessions over a fixed query vocabulary and record-ID pool.
// Not safe for concurrent use; the runner samples sessions from one goroutine
// and hands them to workers.
type Workload struct {
	rng     *rand.Rand
	zipf    *rand.Zipf
	queries []string // rank 0 = most frequent in the logsim corpus
	ids     []string // record IDs, harvested from the live server
}

// FromLogs builds a workload from a simulated log corpus: unique queries are
// rank-ordered by how often the simulated users issued them, and the zipf
// sampler replays that popularity curve. The seed fixes the sampling
// sequence, so two runs against the same server issue the same traffic.
func FromLogs(logs *logsim.Logs, seed int64) (*Workload, error) {
	freq := make(map[string]int)
	for _, ev := range logs.Queries {
		freq[ev.Query]++
	}
	if len(freq) == 0 {
		return nil, fmt.Errorf("loadgen: log corpus has no queries")
	}
	queries := make([]string, 0, len(freq))
	for q := range freq {
		queries = append(queries, q)
	}
	// Rank by frequency, ties broken lexically so the ranking is stable
	// across map iteration orders.
	sort.Slice(queries, func(i, j int) bool {
		if freq[queries[i]] != freq[queries[j]] {
			return freq[queries[i]] > freq[queries[j]]
		}
		return queries[i] < queries[j]
	})
	rng := rand.New(rand.NewSource(seed))
	return &Workload{
		rng:     rng,
		zipf:    rand.NewZipf(rng, zipfS, zipfV, uint64(len(queries)-1)),
		queries: queries,
	}, nil
}

// SetIDs installs the record-ID pool for the id-addressed endpoints
// (aggregate, alternatives, augmentations, record, lineage). The runner
// harvests IDs from the live server before the sweep; until then sessions
// contain only query endpoints.
func (w *Workload) SetIDs(ids []string) { w.ids = ids }

// Queries returns the rank-ordered vocabulary (most popular first).
func (w *Workload) Queries() []string { return w.queries }

// Query samples one query by zipfian popularity.
func (w *Workload) Query() string {
	return w.queries[w.zipf.Uint64()]
}

// opMix is the per-operation endpoint mixture within a session, mirroring
// the behaviour model: instance/set/attribute queries dominate (search and
// concept search), with follow-up aggregation-page visits and recommendation
// clicks — the §5 applications — behind them.
var opMix = []struct {
	endpoint string
	p        float64
}{
	{"search", 0.50},
	{"concepts", 0.15},
	{"aggregate", 0.15},
	{"alternatives", 0.08},
	{"record", 0.06},
	{"augmentations", 0.04},
	{"lineage", 0.02},
}

// MeanOpsPerSession is the expected session length; the runner converts a
// target QPS into a session arrival rate by dividing through it.
const MeanOpsPerSession = 4.0

// Session samples one user session: a geometrically distributed number of
// operations (mean MeanOpsPerSession) over the endpoint mixture. ID-addressed
// operations degrade to searches while the ID pool is empty.
func (w *Workload) Session() []Op {
	n := 1
	for w.rng.Float64() < 1-1/MeanOpsPerSession {
		n++
	}
	ops := make([]Op, 0, n)
	for i := 0; i < n; i++ {
		ops = append(ops, w.op())
	}
	return ops
}

func (w *Workload) op() Op {
	x := w.rng.Float64()
	acc := 0.0
	endpoint := opMix[0].endpoint
	for _, m := range opMix {
		acc += m.p
		if x < acc {
			endpoint = m.endpoint
			break
		}
	}
	switch endpoint {
	case "search", "concepts":
		return Op{endpoint, "/" + endpoint + "?k=8&q=" + url.QueryEscape(w.Query())}
	default:
		if len(w.ids) == 0 {
			return Op{"search", "/search?k=8&q=" + url.QueryEscape(w.Query())}
		}
		id := w.ids[w.rng.Intn(len(w.ids))]
		path := "/" + endpoint + "?id=" + url.QueryEscape(id)
		if endpoint == "alternatives" || endpoint == "augmentations" {
			path += "&k=8"
		}
		return Op{endpoint, path}
	}
}

// HarvestQueries returns the head of the vocabulary, used by the runner to
// bootstrap the record-ID pool via /concepts probes.
func (w *Workload) HarvestQueries(n int) []string {
	if n > len(w.queries) {
		n = len(w.queries)
	}
	return w.queries[:n]
}

// sanitizeEndpoint maps an endpoint name into a metric-name segment.
func sanitizeEndpoint(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			return r
		default:
			return '_'
		}
	}, name)
}
