package search

import (
	"sort"
	"strings"

	"conceptweb/internal/lrec"
	"conceptweb/internal/textproc"
)

// Aggregation pages (§3 "Value in Aggregation", §5.2): "an aggregated page
// with locations of different mexican food places in chicago, accompanied by
// reviews that commented on salsa from different sources, with meta
// information on the trust-worthiness of these sources".

// SourceRef is one source contributing to an aggregation page, with the
// §7.3 trust metadata derived from extraction confidence and agreement.
type SourceRef struct {
	URL string
	// Kind is a coarse role: "homepage", "aggregator", "review", "other".
	Kind string
	// Trust is the mean confidence of the values this source contributed.
	Trust float64
}

// AttrView is one attribute on an aggregation page: the chosen value plus
// any conflicting values still present.
type AttrView struct {
	Key       string
	Value     string
	Conflicts []string
	Support   int
}

// AggregationPage unifies everything known about one instance.
type AggregationPage struct {
	Record  *lrec.Record
	Title   string
	Attrs   []AttrView
	Sources []SourceRef
	Reviews []string
}

// Aggregate builds the aggregation page for a record ID.
func (e *Engine) Aggregate(recordID string) (*AggregationPage, error) {
	defer e.Metrics.Time("search.aggregate.latency")()
	e.Metrics.Counter("search.aggregate.calls").Inc()
	rec, err := e.Woc.Records.Get(recordID)
	if err != nil {
		return nil, err
	}
	page := &AggregationPage{
		Record: rec,
		Title:  firstNonEmpty(rec.Get("name"), rec.Get("title"), rec.ID),
	}

	// Attribute views with conflicts surfaced rather than hidden.
	for _, k := range rec.Keys() {
		best, _ := rec.Best(k)
		av := AttrView{Key: k, Value: best.Value, Support: best.Support}
		for _, v := range rec.All(k) {
			if textproc.Normalize(v.Value) != textproc.Normalize(best.Value) {
				av.Conflicts = append(av.Conflicts, v.Value)
			}
		}
		page.Attrs = append(page.Attrs, av)
	}

	// Source trust: group provenance by URL, average confidence.
	trust := map[string][]float64{}
	for _, k := range rec.Keys() {
		for _, v := range rec.All(k) {
			if v.Prov.SourceURL != "" {
				trust[v.Prov.SourceURL] = append(trust[v.Prov.SourceURL], v.Confidence)
			}
		}
	}
	homepage := strings.TrimSuffix(rec.Get("homepage"), "/")
	seen := map[string]bool{}
	addSource := func(u, kind string, confs []float64) {
		if u == "" || seen[u] {
			return
		}
		seen[u] = true
		t := 0.0
		for _, c := range confs {
			t += c
		}
		if len(confs) > 0 {
			t /= float64(len(confs))
		}
		page.Sources = append(page.Sources, SourceRef{URL: u, Kind: kind, Trust: t})
	}
	urls := make([]string, 0, len(trust))
	for u := range trust {
		urls = append(urls, u)
	}
	sort.Strings(urls)
	for _, u := range urls {
		addSource(u, sourceKind(u, homepage), trust[u])
	}
	// Linked pages beyond extraction provenance (reviews, mentions).
	for _, u := range e.Woc.PagesOf(rec.ID) {
		addSource(u, sourceKind(u, homepage), []float64{0.5})
	}

	for _, rv := range e.Woc.Records.ByAttr("review", "about", rec.ID) {
		if t := rv.Get("text"); t != "" {
			page.Reviews = append(page.Reviews, t)
		}
	}
	sort.Strings(page.Reviews)
	return page, nil
}

func sourceKind(u, homepage string) string {
	host := u
	if i := strings.IndexByte(u, '/'); i >= 0 {
		host = u[:i]
	}
	switch {
	case homepage != "" && (u == homepage || strings.HasPrefix(u, homepage+"/")):
		return "homepage"
	case strings.Contains(u, "/biz/") || strings.Contains(u, "/c/") || strings.Contains(u, "/search/"):
		return "aggregator"
	case strings.Contains(u, "/post/"):
		return "review"
	default:
		_ = host
		return "other"
	}
}

// BestValue exposes the aggregation choice for one attribute, convenient for
// callers that need a single reconciled answer without the full page.
func BestValue(rec *lrec.Record, key string) (string, bool) {
	v, ok := rec.Best(key)
	if !ok {
		return "", false
	}
	return v.Value, true
}
