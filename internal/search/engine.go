package search

import (
	"sort"
	"strings"

	"conceptweb/internal/core"
	"conceptweb/internal/lrec"
	"conceptweb/internal/obs"
	"conceptweb/internal/textproc"
)

// Engine is the concept-aware search engine of §5.1: classic BM25 document
// retrieval, augmented with concept-box triggering and record-association
// ranking features, all driven by the built web of concepts.
type Engine struct {
	Woc    *core.WebOfConcepts
	Parser *Parser
	// TriggerMargin is the confidence margin (top vs. runner-up record
	// score) required to show a concept box (default 1.15).
	TriggerMargin float64
	// HomepageBoost / AssocBoost are the ranking feature weights for
	// documents that are the triggered record's homepage / are associated
	// with it.
	HomepageBoost float64
	AssocBoost    float64
	// Metrics, when non-nil, receives query counters and latency histograms
	// for the engine's hot paths (search, concept search, aggregation).
	Metrics *obs.Registry
}

// NewEngine builds an engine over a built web of concepts.
func NewEngine(woc *core.WebOfConcepts, parser *Parser) *Engine {
	return &Engine{
		Woc: woc, Parser: parser,
		TriggerMargin: 1.15, HomepageBoost: 6, AssocBoost: 2,
	}
}

// ConceptBox is the Figure 1 artifact: the structured answer shown above the
// web results when the query references a known instance.
type ConceptBox struct {
	Record   *lrec.Record
	Name     string
	Address  string
	Phone    string
	Rating   string
	Homepage string
	// Reviews are snippets of linked review pages (up to 2).
	Reviews []string
	// Requested holds the attribute the query explicitly asked for
	// ("gochi menu" -> Key "menu"), when the record has it.
	Requested struct{ Key, Value string }
	// Confidence is the triggering confidence in (0,1].
	Confidence float64
}

// DocResult is one ranked web result with its concept annotations.
type DocResult struct {
	URL   string
	Score float64
	// RecordIDs are the records this document is associated with.
	RecordIDs []string
	// IsHomepage marks the official homepage of the triggered record.
	IsHomepage bool
}

// ResultPage is the full §5.1 search response.
type ResultPage struct {
	Query      Parsed
	Box        *ConceptBox
	Results    []DocResult
	Assistance []string
}

// Search answers a query with a concept box (when triggered), augmented
// document ranking, and query assistance.
func (e *Engine) Search(query string, k int) *ResultPage {
	defer e.Metrics.Time("search.latency")()
	e.Metrics.Counter("search.queries").Inc()
	parsed := e.Parser.Parse(query)
	page := &ResultPage{Query: parsed, Assistance: e.Parser.SuggestAssistance(parsed)}

	rec, conf := e.Trigger(parsed)
	if rec != nil {
		e.Metrics.Counter("search.box.triggered").Inc()
		page.Box = e.buildBox(rec, conf)
		// Attribute intent: surface the asked-for attribute directly in the
		// box (§3: "users explicitly search for different attributes of a
		// concept").
		if parsed.Attribute != "" {
			if v := rec.Get(parsed.Attribute); v != "" {
				page.Box.Requested.Key = parsed.Attribute
				page.Box.Requested.Value = v
			}
		}
	}

	page.Results = e.rankDocs(parsed, rec, k)
	return page
}

// Trigger decides whether the query references a specific known instance
// (§5.1: "deploy technology to trigger the special box when appropriate").
// It returns the record and a confidence, or (nil, 0).
func (e *Engine) Trigger(q Parsed) (*lrec.Record, float64) {
	if q.Kind == IntentSet || len(q.NameTokens) == 0 {
		return nil, 0
	}
	lookup := strings.Join(q.NameTokens, " ")
	if q.City != "" {
		lookup += " " + q.City
	}
	hits := e.Woc.RecIndex.Search(lookup, 3)
	if len(hits) == 0 {
		// Misspelled navigational queries ("gouchi cupertino") retrieve
		// nothing by token match; fall back to fuzzy name comparison.
		return e.fuzzyTrigger(q)
	}
	margin := e.TriggerMargin
	if len(hits) > 1 && hits[1].Score > 0 && hits[0].Score/hits[1].Score < margin {
		return nil, 0 // ambiguous: no box
	}
	rec, err := e.Woc.Records.Get(hits[0].ID)
	if err != nil {
		return nil, 0
	}
	// The record must actually cover the name tokens: BM25 can surface a
	// record matching only the city.
	name := textproc.Normalize(rec.Get("name") + " " + rec.Get("title") + " " + rec.FlatText())
	nameSet := textproc.TokenSet(textproc.StemAll(textproc.Tokenize(name)))
	matched := 0
	for _, t := range q.NameTokens {
		if nameSet[textproc.Stem(t)] {
			matched++
		}
	}
	cover := float64(matched) / float64(len(q.NameTokens))
	if cover < 0.5 {
		return nil, 0
	}
	// Geographic constraint must agree when both sides have one.
	if q.City != "" && rec.Has("city") &&
		textproc.Normalize(rec.Get("city")) != textproc.Normalize(q.City) {
		return nil, 0
	}
	conf := 0.5 + 0.5*cover
	return rec, conf
}

// fuzzyTrigger scans record names with trigram similarity — the recovery
// path for misspelled instance queries. The best name must be clearly
// similar and clearly ahead of the runner-up.
func (e *Engine) fuzzyTrigger(q Parsed) (*lrec.Record, float64) {
	e.Metrics.Counter("search.trigger.fuzzy").Inc()
	needle := textproc.Normalize(strings.Join(q.NameTokens, " "))
	if needle == "" {
		return nil, 0
	}
	var best, second float64
	var bestRec *lrec.Record
	e.Woc.Records.Scan(func(r *lrec.Record) bool {
		name := r.Get("name")
		if name == "" {
			name = r.Get("title")
		}
		if name == "" {
			return true
		}
		if q.City != "" && r.Has("city") &&
			textproc.Normalize(r.Get("city")) != textproc.Normalize(q.City) {
			return true
		}
		s := textproc.TrigramSim(needle, textproc.Normalize(name))
		switch {
		case s > best:
			second = best
			best, bestRec = s, r.Clone()
		case s > second:
			second = s
		}
		return true
	})
	if bestRec == nil || best < 0.55 || (second > 0 && best-second < 0.1) {
		return nil, 0
	}
	return bestRec, 0.4 + 0.4*best
}

func (e *Engine) buildBox(rec *lrec.Record, conf float64) *ConceptBox {
	box := &ConceptBox{
		Record:     rec,
		Name:       firstNonEmpty(rec.Get("name"), rec.Get("title")),
		Phone:      rec.Get("phone"),
		Rating:     rec.Get("rating"),
		Homepage:   rec.Get("homepage"),
		Confidence: conf,
	}
	var addr []string
	for _, k := range []string{"street", "city", "state", "zip"} {
		if v := rec.Get(k); v != "" {
			addr = append(addr, v)
		}
	}
	box.Address = strings.Join(addr, ", ")
	// Attach up to two linked reviews.
	for _, rv := range e.Woc.Records.ByAttr("review", "about", rec.ID) {
		if t := rv.Get("text"); t != "" {
			box.Reviews = append(box.Reviews, t)
			if len(box.Reviews) == 2 {
				break
			}
		}
	}
	return box
}

func firstNonEmpty(ss ...string) string {
	for _, s := range ss {
		if s != "" {
			return s
		}
	}
	return ""
}

// rankDocs runs BM25 over the document index and applies the §5.1 record
// features: documents associated with the triggered record move up, and the
// record's official homepage gets "preferential treatment by the ranker".
func (e *Engine) rankDocs(q Parsed, triggered *lrec.Record, k int) []DocResult {
	raw := e.Woc.DocIndex.Search(q.Raw, k*4+20)
	var homepage string
	if triggered != nil {
		homepage = strings.TrimSuffix(triggered.Get("homepage"), "/")
	}
	out := make([]DocResult, 0, len(raw))
	for _, hit := range raw {
		dr := DocResult{URL: hit.ID, Score: hit.Score, RecordIDs: e.Woc.AssocOf(hit.ID)}
		if triggered != nil {
			for _, id := range dr.RecordIDs {
				if id == triggered.ID {
					dr.Score += e.AssocBoost
					break
				}
			}
			if homepage != "" && (hit.ID == homepage || hit.ID == homepage+"/") {
				dr.Score += e.HomepageBoost
				dr.IsHomepage = true
			}
		}
		out = append(out, dr)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].URL < out[j].URL
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}
