package search

import (
	"reflect"
	"testing"

	"conceptweb/internal/core"
	"conceptweb/internal/lrec"
	"conceptweb/internal/webgen"
)

// shardedEngine builds the same small world as the shared fixture but with
// the store and indexes hash-partitioned.
func shardedEngine(t *testing.T, shards int) *Engine {
	t.Helper()
	cfg := webgen.DefaultConfig()
	cfg.Restaurants = 60
	cfg.Authors = 8
	cfg.Papers = 15
	cfg.ReviewArticles = 30
	cfg.TVArticles = 4
	w := webgen.Generate(cfg)
	reg := lrec.NewRegistry()
	webgen.RegisterConcepts(reg)
	ccfg := core.StandardConfig(reg, w.Cities(), webgen.Cuisines())
	ccfg.Shards = shards
	b := &core.Builder{Fetcher: w, Cfg: ccfg}
	woc, _, err := b.Build(w.SeedURLs())
	if err != nil {
		t.Fatal(err)
	}
	woc.Reconcile("restaurant", core.PreferSupport)
	b.EnrichMenus(woc)
	return NewEngine(woc, NewParser(w.Cities(), webgen.Cuisines()))
}

// TestEngineShardInvariance: the full query engine — intent parsing, ranked
// concept retrieval, page search, aggregation — must answer identically over
// a partitioned store/index and an unpartitioned one. This is the
// scatter-gather contract observed from the top of the stack.
func TestEngineShardInvariance(t *testing.T) {
	flat, parted := shardedEngine(t, 1), shardedEngine(t, 8)
	queries := []string{
		"best mexican san jose",
		"golden dragon grill cupertino",
		"pizza cupertino",
		"sushi",
		"thai food",
	}
	for _, q := range queries {
		a, b := flat.ConceptSearch(q, nil, 8), parted.ConceptSearch(q, nil, 8)
		if len(a) != len(b) {
			t.Fatalf("ConceptSearch(%q): %d vs %d hits", q, len(a), len(b))
		}
		for i := range a {
			if a[i].Record.ID != b[i].Record.ID || a[i].Score != b[i].Score {
				t.Errorf("ConceptSearch(%q) hit %d diverges: %s@%v vs %s@%v",
					q, i, a[i].Record.ID, a[i].Score, b[i].Record.ID, b[i].Score)
			}
		}
		pa, pb := flat.Search(q, 10), parted.Search(q, 10)
		if !reflect.DeepEqual(pa, pb) {
			t.Errorf("Search(%q) page diverges between 1 and 8 shards", q)
		}
	}
	// Aggregations walk the store by ID; spot-check one per concept page.
	hits := flat.ConceptSearch("mexican", nil, 3)
	for _, h := range hits {
		ga, ea := flat.Aggregate(h.Record.ID)
		gb, eb := parted.Aggregate(h.Record.ID)
		if (ea == nil) != (eb == nil) {
			t.Fatalf("Aggregate(%s) error mismatch: %v vs %v", h.Record.ID, ea, eb)
		}
		if ea == nil && !reflect.DeepEqual(ga, gb) {
			t.Errorf("Aggregate(%s) diverges between shard counts", h.Record.ID)
		}
	}
	if len(hits) == 0 {
		t.Log("no mexican hits; aggregate spot-check skipped")
	}
}
