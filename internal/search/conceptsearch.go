package search

import (
	"sort"
	"strings"

	"conceptweb/internal/lrec"
	"conceptweb/internal/textproc"
)

// Concept search (§5.2): "users search a highly heterogeneous collection of
// records through a uniform interface", with refinement using specialized
// features (only Chinese restaurants), special query parsing (geographic
// locations), and custom query processing.

// RecordHit is one concept-search result.
type RecordHit struct {
	Record *lrec.Record
	Score  float64
}

// Filter constrains concept search to records with a given attribute value
// (the "show only Chinese restaurants" refinement).
type Filter struct {
	Key   string
	Value string
}

// ConceptSearch retrieves records matching the query, applying parsed
// geographic/category constraints plus any explicit filters, ranked by
// index score with attribute-agreement bonuses.
func (e *Engine) ConceptSearch(query string, filters []Filter, k int) []RecordHit {
	defer e.Metrics.Time("search.concept.latency")()
	e.Metrics.Counter("search.concept.queries").Inc()
	parsed := e.Parser.Parse(query)
	// Retrieval: the normalized query against the record index; for pure set
	// queries the category+city string retrieves better than decorations
	// like "best".
	retrieval := parsed.Raw
	if parsed.Kind == IntentSet {
		parts := append([]string{}, parsed.NameTokens...)
		if parsed.Category != "" {
			parts = append(parts, parsed.Category)
		}
		if parsed.City != "" {
			parts = append(parts, parsed.City)
		}
		retrieval = strings.Join(parts, " ")
	}
	hits := e.Woc.RecIndex.Search(retrieval, k*6+30)
	out := make([]RecordHit, 0, len(hits))
	for _, h := range hits {
		rec, err := e.Woc.Records.Get(h.ID)
		if err != nil {
			continue
		}
		if !passesFilters(rec, parsed, filters) {
			continue
		}
		score := h.Score
		// Attribute-agreement bonuses: matching the parsed city/category is
		// worth more than matching their tokens in passing.
		if parsed.City != "" && textproc.Normalize(rec.Get("city")) == textproc.Normalize(parsed.City) {
			score += 2
		}
		if parsed.Category != "" && textproc.Normalize(rec.Get("cuisine")) == textproc.Normalize(parsed.Category) {
			score += 2
		}
		out = append(out, RecordHit{Record: rec, Score: score})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Record.ID < out[j].Record.ID
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

func passesFilters(rec *lrec.Record, parsed Parsed, filters []Filter) bool {
	for _, f := range filters {
		match := false
		for _, v := range rec.All(f.Key) {
			if textproc.Normalize(v.Value) == textproc.Normalize(f.Value) {
				match = true
				break
			}
		}
		if !match {
			return false
		}
	}
	// Hard geographic constraint for set queries: "pizza in San Jose" must
	// not return Cupertino records, however well they score textually.
	if parsed.Kind == IntentSet && parsed.City != "" && rec.Has("city") {
		if textproc.Normalize(rec.Get("city")) != textproc.Normalize(parsed.City) {
			return false
		}
	}
	// Category-constrained set search returns only records known to be in
	// the category (§5.2's "show only Chinese restaurants" refinement).
	if parsed.Kind == IntentSet && parsed.Category != "" {
		if textproc.Normalize(rec.Get("cuisine")) != textproc.Normalize(parsed.Category) {
			return false
		}
	}
	return true
}

// SearchWithinConcept is the Table 1 "Search w/in concept" cell: retrieve
// documents, restricted to pages associated with the given record (e.g.
// searching for a dish within one restaurant's web).
func (e *Engine) SearchWithinConcept(recordID, query string, k int) []DocResult {
	member := make(map[string]bool)
	for _, u := range e.Woc.PagesOf(recordID) {
		member[u] = true
	}
	if len(member) == 0 {
		return nil
	}
	raw := e.Woc.DocIndex.Search(query, 0)
	var out []DocResult
	for _, h := range raw {
		if member[h.ID] {
			out = append(out, DocResult{URL: h.ID, Score: h.Score,
				RecordIDs: e.Woc.AssocOf(h.ID)})
		}
	}
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// Facet is one refinement option with its result count — the §5.2
// "refinement using specialized features (e.g., show only Chinese
// restaurants)" surfaced as navigation.
type Facet struct {
	Key   string
	Value string
	Count int
}

// Facets summarizes a concept-search result set along the given attribute
// keys, producing the counts a result page shows as refinement links.
// Facet lists are ordered by count (desc), then value.
func Facets(hits []RecordHit, keys ...string) map[string][]Facet {
	out := make(map[string][]Facet, len(keys))
	for _, key := range keys {
		counts := map[string]int{}
		for _, h := range hits {
			if v := textproc.Normalize(h.Record.Get(key)); v != "" {
				counts[v]++
			}
		}
		fs := make([]Facet, 0, len(counts))
		for v, n := range counts {
			fs = append(fs, Facet{Key: key, Value: v, Count: n})
		}
		sort.Slice(fs, func(i, j int) bool {
			if fs[i].Count != fs[j].Count {
				return fs[i].Count > fs[j].Count
			}
			return fs[i].Value < fs[j].Value
		})
		out[key] = fs
	}
	return out
}

// Refine re-runs a concept search narrowed by a facet selection.
func (e *Engine) Refine(query string, facet Facet, k int) []RecordHit {
	return e.ConceptSearch(query, []Filter{{Key: facet.Key, Value: facet.Value}}, k)
}
