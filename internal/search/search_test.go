package search

import (
	"strings"
	"sync"
	"testing"

	"conceptweb/internal/core"
	"conceptweb/internal/logsim"
	"conceptweb/internal/lrec"
	"conceptweb/internal/textproc"
	"conceptweb/internal/webgen"
)

var (
	onceBuild sync.Once
	tw        *webgen.World
	teng      *Engine
)

func engine(t *testing.T) (*webgen.World, *Engine) {
	t.Helper()
	onceBuild.Do(func() {
		cfg := webgen.DefaultConfig()
		cfg.Restaurants = 60
		cfg.Authors = 8
		cfg.Papers = 15
		cfg.ReviewArticles = 30
		cfg.TVArticles = 4
		w := webgen.Generate(cfg)
		reg := lrec.NewRegistry()
		webgen.RegisterConcepts(reg)
		b := &core.Builder{Fetcher: w, Cfg: core.StandardConfig(reg, w.Cities(), webgen.Cuisines())}
		woc, _, err := b.Build(w.SeedURLs())
		if err != nil {
			panic(err)
		}
		woc.Reconcile("restaurant", core.PreferSupport)
		b.EnrichMenus(woc)
		tw = w
		teng = NewEngine(woc, NewParser(w.Cities(), webgen.Cuisines()))
	})
	return tw, teng
}

// testRestaurant picks a restaurant with a homepage whose record resolved
// cleanly (unique by phone).
func testRestaurant(t *testing.T) (*webgen.Restaurant, *lrec.Record) {
	w, e := engine(t)
	for _, r := range w.Restaurants {
		if r.Homepage == "" {
			continue
		}
		recs := e.Woc.Records.ByAttr("restaurant", "phone", r.Phone)
		if len(recs) == 1 && recs[0].Get("homepage") != "" {
			return r, recs[0]
		}
	}
	t.Fatal("no suitable restaurant")
	return nil, nil
}

func TestParseIntents(t *testing.T) {
	_, e := engine(t)
	cases := []struct {
		q    string
		kind IntentKind
	}{
		{"golden dragon grill cupertino", IntentInstance},
		{"best mexican san jose", IntentSet},
		{"italian restaurants in sunnyvale", IntentSet},
		{"golden dragon menu", IntentAttribute},
		{"blue agave coupons", IntentAttribute},
	}
	for _, c := range cases {
		got := e.Parser.Parse(c.q)
		if got.Kind != c.kind {
			t.Errorf("Parse(%q).Kind = %v, want %v (%+v)", c.q, got.Kind, c.kind, got)
		}
	}
}

func TestParseExtractsConstraints(t *testing.T) {
	_, e := engine(t)
	p := e.Parser.Parse("best mexican food in San Jose")
	if p.City != "San Jose" {
		t.Errorf("city = %q", p.City)
	}
	if p.Category != "mexican" {
		t.Errorf("category = %q", p.Category)
	}
	p = e.Parser.Parse("gochi fusion menu")
	if p.Attribute != "menu" {
		t.Errorf("attribute = %q", p.Attribute)
	}
	if len(p.NameTokens) == 0 {
		t.Errorf("name tokens = %v", p.NameTokens)
	}
	// Multi-word city beats its substrings.
	p = e.Parser.Parse("tacos mountain view")
	if p.City != "Mountain View" {
		t.Errorf("city = %q", p.City)
	}
}

func TestSuggestAssistance(t *testing.T) {
	_, e := engine(t)
	p := e.Parser.Parse("golden dragon cupertino")
	sugg := e.Parser.SuggestAssistance(p)
	if len(sugg) == 0 {
		t.Fatal("no assistance")
	}
	joined := strings.Join(sugg, "|")
	if !strings.Contains(joined, "menu") {
		t.Errorf("suggestions = %v", sugg)
	}
}

// TestF1ConceptBox reproduces Figure 1: a navigational query for a specific
// restaurant yields a box with address/phone/reviews and the homepage ranked
// with preference.
func TestF1ConceptBox(t *testing.T) {
	r, rec := testRestaurant(t)
	_, e := engine(t)
	page := e.Search(r.Name+" "+r.City, 10)
	if page.Box == nil {
		t.Fatalf("no concept box for %q", r.Name+" "+r.City)
	}
	if page.Box.Record.ID != rec.ID {
		t.Errorf("box record = %s, want %s", page.Box.Record.ID, rec.ID)
	}
	if !strings.Contains(page.Box.Address, r.Zip) {
		t.Errorf("box address %q missing zip", page.Box.Address)
	}
	if page.Box.Phone == "" {
		t.Error("box has no phone")
	}
	// Homepage ranked first with the feature on.
	if len(page.Results) == 0 {
		t.Fatal("no results")
	}
	if !page.Results[0].IsHomepage {
		t.Errorf("top result %q is not the homepage (%s)", page.Results[0].URL, r.Homepage)
	}
}

func TestNoBoxForSetQueries(t *testing.T) {
	_, e := engine(t)
	page := e.Search("best italian san jose", 10)
	if page.Box != nil {
		t.Errorf("set query triggered a box: %+v", page.Box.Name)
	}
}

func TestNoBoxForWrongCity(t *testing.T) {
	w, e := engine(t)
	// Find a restaurant and query it with a different city.
	r, _ := testRestaurant(t)
	other := ""
	for _, c := range w.Cities() {
		if c != r.City {
			other = c
			break
		}
	}
	page := e.Search(r.Name+" "+other, 10)
	if page.Box != nil && page.Box.Record.Get("city") == r.City {
		t.Errorf("box triggered despite city mismatch: %v", page.Box.Name)
	}
}

func TestRankingAugmentationImprovesMRR(t *testing.T) {
	w, e := engine(t)
	mrr := func(boost bool) float64 {
		hb, ab := e.HomepageBoost, e.AssocBoost
		if !boost {
			e.HomepageBoost, e.AssocBoost = 0, 0
		}
		defer func() { e.HomepageBoost, e.AssocBoost = hb, ab }()
		var sum float64
		n := 0
		for _, r := range w.Restaurants {
			if r.Homepage == "" {
				continue
			}
			n++
			page := e.Search(r.Name+" "+r.City, 10)
			want := strings.TrimSuffix(r.Homepage, "/") + "/"
			for i, res := range page.Results {
				if res.URL == want {
					sum += 1 / float64(i+1)
					break
				}
			}
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	plain := mrr(false)
	augmented := mrr(true)
	t.Logf("homepage MRR: plain=%.3f augmented=%.3f", plain, augmented)
	if augmented <= plain {
		t.Errorf("concept features did not improve MRR: %.3f -> %.3f", plain, augmented)
	}
	if augmented < 0.6 {
		t.Errorf("augmented MRR %.3f too low", augmented)
	}
}

func TestConceptSearchSetQuery(t *testing.T) {
	w, e := engine(t)
	// Pick a (city, cuisine) pair with at least 2 restaurants.
	counts := map[[2]string]int{}
	for _, r := range w.Restaurants {
		counts[[2]string{r.City, r.Cuisine}]++
	}
	var city, cuisine string
	for k, n := range counts {
		if n >= 2 {
			city, cuisine = k[0], k[1]
			break
		}
	}
	if city == "" {
		t.Skip("no dense pair")
	}
	hits := e.ConceptSearch("best "+cuisine+" "+strings.ToLower(city), nil, 10)
	if len(hits) == 0 {
		t.Fatalf("no hits for %s %s", cuisine, city)
	}
	for _, h := range hits {
		if got := h.Record.Get("city"); textproc.Normalize(got) != textproc.Normalize(city) {
			t.Errorf("hit %s has city %q, want %q", h.Record.ID, got, city)
		}
	}
	// Top hits should be of the right cuisine.
	if got := hits[0].Record.Get("cuisine"); textproc.Normalize(got) != cuisine {
		t.Errorf("top hit cuisine = %q, want %q", got, cuisine)
	}
}

func TestConceptSearchFilters(t *testing.T) {
	_, e := engine(t)
	hits := e.ConceptSearch("restaurants", []Filter{{Key: "cuisine", Value: "italian"}}, 20)
	for _, h := range hits {
		if textproc.Normalize(h.Record.Get("cuisine")) != "italian" {
			t.Errorf("filter leak: %s is %q", h.Record.ID, h.Record.Get("cuisine"))
		}
	}
}

func TestSearchWithinConcept(t *testing.T) {
	r, rec := testRestaurant(t)
	_, e := engine(t)
	// Search for a dish within the restaurant's own web.
	dish := r.Menu[0]
	res := e.SearchWithinConcept(rec.ID, dish, 5)
	if len(res) == 0 {
		t.Fatalf("no in-concept results for %q", dish)
	}
	member := map[string]bool{}
	for _, u := range e.Woc.PagesOf(rec.ID) {
		member[u] = true
	}
	for _, d := range res {
		if !member[d.URL] {
			t.Errorf("result %s outside the concept's pages", d.URL)
		}
	}
	if e.SearchWithinConcept("nonexistent", dish, 5) != nil {
		t.Error("unknown record should yield nil")
	}
}

func TestAggregationPage(t *testing.T) {
	r, rec := testRestaurant(t)
	_, e := engine(t)
	page, err := e.Aggregate(rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	if page.Title == "" || len(page.Attrs) == 0 {
		t.Fatalf("page = %+v", page)
	}
	kinds := map[string]int{}
	for _, s := range page.Sources {
		kinds[s.Kind]++
		if s.Trust <= 0 || s.Trust > 1 {
			t.Errorf("trust out of range: %+v", s)
		}
	}
	if kinds["homepage"] == 0 {
		t.Errorf("no homepage source: %v", kinds)
	}
	if kinds["aggregator"] == 0 {
		t.Errorf("no aggregator source: %v", kinds)
	}
	_ = r
	if _, err := e.Aggregate("missing-id"); err == nil {
		t.Error("aggregate of missing id should fail")
	}
}

func TestAggregationSurfacesConflicts(t *testing.T) {
	w, e := engine(t)
	// A moved restaurant has stale street/phone on yellowfile; its page
	// should expose the conflict rather than silently drop it.
	found := false
	for _, r := range w.Restaurants {
		if r.OldPhone == "" {
			continue
		}
		recs := e.Woc.Records.ByAttr("restaurant", "phone", r.Phone)
		if len(recs) != 1 {
			continue
		}
		page, err := e.Aggregate(recs[0].ID)
		if err != nil {
			continue
		}
		for _, av := range page.Attrs {
			if av.Key == "phone" && len(av.Conflicts) > 0 {
				found = true
			}
		}
		if found {
			break
		}
	}
	if !found {
		t.Log("no conflicting phone surfaced (moves may not be covered by the stale source at this seed)")
	}
}

func TestAttributeQueryBox(t *testing.T) {
	_, e := engine(t)
	r, rec := testRestaurant(t)
	page := e.Search(r.Name+" menu", 5)
	if page.Box == nil {
		t.Skipf("no box for attribute query on %q", r.Name)
	}
	if page.Query.Attribute != "menu" {
		t.Errorf("parsed attribute = %q", page.Query.Attribute)
	}
	cur, err := e.Woc.Records.Get(rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	if cur.Has("menu") {
		if page.Box.Requested.Key != "menu" || page.Box.Requested.Value == "" {
			t.Errorf("requested = %+v, record menu = %q", page.Box.Requested, cur.Get("menu"))
		}
	} else {
		t.Log("record has no enriched menu; Requested stays empty by design")
	}
}

func TestFuzzyTriggerMisspelling(t *testing.T) {
	r, rec := testRestaurant(t)
	_, e := engine(t)
	// Misspell the first name token by swapping two inner letters.
	toks := strings.Fields(r.Name)
	w0 := []byte(strings.ToLower(toks[0]))
	if len(w0) < 4 {
		t.Skip("name token too short to misspell")
	}
	w0[1], w0[2] = w0[2], w0[1]
	if string(w0) == strings.ToLower(toks[0]) {
		w0[len(w0)-2], w0[len(w0)-1] = w0[len(w0)-1], w0[len(w0)-2]
	}
	misspelled := string(w0) + " " + strings.ToLower(strings.Join(toks[1:], " ")) + " " + strings.ToLower(r.City)
	page := e.Search(misspelled, 5)
	if page.Box == nil {
		t.Skipf("fuzzy trigger found nothing for %q (acceptable for heavy misspellings)", misspelled)
	}
	if page.Box.Record.ID != rec.ID {
		t.Errorf("fuzzy box = %s, want %s (query %q)", page.Box.Record.ID, rec.ID, misspelled)
	}
	if page.Box.Confidence >= 0.95 {
		t.Errorf("fuzzy trigger should carry reduced confidence, got %.2f", page.Box.Confidence)
	}
}

func TestFacetsAndRefine(t *testing.T) {
	w, e := engine(t)
	city := strings.ToLower(w.Restaurants[0].City)
	hits := e.ConceptSearch("restaurants in "+city, nil, 40)
	if len(hits) < 3 {
		t.Skipf("too few hits in %s", city)
	}
	facets := Facets(hits, "cuisine", "price")
	cuisines := facets["cuisine"]
	if len(cuisines) == 0 {
		t.Fatal("no cuisine facets")
	}
	// Counts are consistent with the hit set and ordered descending.
	total := 0
	for i, f := range cuisines {
		total += f.Count
		if i > 0 && f.Count > cuisines[i-1].Count {
			t.Error("facets not ordered by count")
		}
	}
	if total > len(hits) {
		t.Errorf("facet counts %d exceed hits %d", total, len(hits))
	}
	// Refining narrows to exactly the facet's records.
	top := cuisines[0]
	refined := e.Refine("restaurants in "+city, top, 40)
	if len(refined) == 0 {
		t.Fatal("refine returned nothing")
	}
	for _, h := range refined {
		if textproc.Normalize(h.Record.Get("cuisine")) != top.Value {
			t.Errorf("refined hit %s has cuisine %q, want %q",
				h.Record.ID, h.Record.Get("cuisine"), top.Value)
		}
	}
}

// TestQueryLogEndToEnd replays simulated §3 instance queries against the
// engine: the query a real user issued to find a restaurant should trigger
// the right concept box and rank a page about that restaurant at the top.
func TestQueryLogEndToEnd(t *testing.T) {
	w, e := engine(t)
	logs := logsim.NewSimulator(w, logsim.DefaultConfig()).Run()
	checked, boxOK, rankOK := 0, 0, 0
	for _, q := range logs.Queries {
		if checked >= 120 {
			break
		}
		// Instance queries are identified by their biz-page click.
		var clicked string
		for _, u := range q.Clicks {
			if strings.Contains(u, "/biz/") {
				clicked = u
				break
			}
		}
		if clicked == "" {
			continue
		}
		truthIDs := e.Woc.AssocOf(clicked)
		if len(truthIDs) == 0 {
			continue
		}
		checked++
		page := e.Search(q.Query, 8)
		if page.Box != nil {
			for _, id := range truthIDs {
				if page.Box.Record.ID == id {
					boxOK++
					break
				}
			}
		}
		for _, res := range page.Results[:min(3, len(page.Results))] {
			hit := false
			for _, rid := range res.RecordIDs {
				for _, id := range truthIDs {
					if rid == id {
						hit = true
					}
				}
			}
			if hit {
				rankOK++
				break
			}
		}
	}
	if checked < 50 {
		t.Fatalf("only %d instance queries checked", checked)
	}
	boxAcc := float64(boxOK) / float64(checked)
	rankAcc := float64(rankOK) / float64(checked)
	t.Logf("query-log replay: box accuracy=%.2f, about-page in top-3=%.2f (n=%d)", boxAcc, rankAcc, checked)
	if boxAcc < 0.7 {
		t.Errorf("box accuracy %.2f too low on real query mix", boxAcc)
	}
	if rankAcc < 0.8 {
		t.Errorf("top-3 about-page rate %.2f too low", rankAcc)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
