// Package search implements the search applications of §5.1–5.2: query
// parsing with geographic and attribute understanding, concept-box
// triggering (Figure 1), document ranking augmented with record-association
// features, concept search over heterogeneous records, and aggregation
// pages that unify everything known about an instance.
package search

import (
	"sort"
	"strings"

	"conceptweb/internal/textproc"
)

// IntentKind classifies a parsed query, following §3's two search modes
// plus attribute lookup.
type IntentKind int

// Intent kinds.
const (
	// IntentInstance seeks one specific concept instance ("gochi cupertino").
	IntentInstance IntentKind = iota
	// IntentSet seeks a set of instances ("mexican food chicago best salsa",
	// "wedding cakes los angeles").
	IntentSet
	// IntentAttribute seeks an attribute of an instance ("gochi menu").
	IntentAttribute
)

// String names the intent kind.
func (k IntentKind) String() string {
	switch k {
	case IntentInstance:
		return "instance"
	case IntentSet:
		return "set"
	default:
		return "attribute"
	}
}

// attributeWords are the §3 attribute-lookup tokens observed in query logs
// ("menu (3%), coupons (1.8%), ... locations (1.5%)"), mapped to record keys.
var attributeWords = map[string]string{
	"menu": "menu", "menus": "menu",
	"coupon": "coupons", "coupons": "coupons",
	"location": "street", "locations": "street", "address": "street",
	"directions": "street", "hours": "hours", "phone": "phone",
	"review": "reviews", "reviews": "reviews", "rating": "rating",
	"delivery": "delivery", "nutrition": "nutrition",
}

// setWords signal category intent rather than a specific instance.
var setWords = map[string]bool{
	"best": true, "cheap": true, "good": true, "top": true, "near": true,
	"nearby": true, "restaurants": true, "places": true, "food": true,
}

// Parsed is the structured reading of a query.
type Parsed struct {
	Raw    string
	Tokens []string
	Kind   IntentKind
	// City is the recognized geographic constraint, "" if none.
	City string
	// Category is the recognized category constraint (e.g. cuisine).
	Category string
	// Attribute is the record key the user wants, "" if none.
	Attribute string
	// NameTokens are the remaining tokens, presumed to name the instance.
	NameTokens []string
}

// Parser holds the gazetteer knowledge that query understanding needs.
type Parser struct {
	cities     map[string]string // normalized -> display
	categories map[string]string
	maxCityLen int
}

// NewParser builds a parser over the given city and category vocabularies.
func NewParser(cities, categories []string) *Parser {
	p := &Parser{cities: map[string]string{}, categories: map[string]string{}}
	for _, c := range cities {
		n := textproc.Normalize(c)
		p.cities[n] = c
		if l := len(strings.Fields(n)); l > p.maxCityLen {
			p.maxCityLen = l
		}
	}
	for _, c := range categories {
		p.categories[textproc.Normalize(c)] = c
	}
	return p
}

// Parse analyses a raw query. The query is canonicalized first
// (NormalizeQuery: trim, collapse whitespace, lowercase), so every caller —
// search, concept search, the serving-layer cache — agrees on one reading.
func (p *Parser) Parse(query string) Parsed {
	query = textproc.NormalizeQuery(query)
	toks := textproc.Tokenize(query)
	out := Parsed{Raw: query, Tokens: toks}

	consumed := make([]bool, len(toks))
	// Longest-first city match over token windows.
	for l := p.maxCityLen; l >= 1 && out.City == ""; l-- {
		for i := 0; i+l <= len(toks); i++ {
			window := strings.Join(toks[i:i+l], " ")
			if city, ok := p.cities[window]; ok {
				out.City = city
				for j := i; j < i+l; j++ {
					consumed[j] = true
				}
				break
			}
		}
	}
	isSet := false
	for i, t := range toks {
		if consumed[i] {
			continue
		}
		if cat, ok := p.categories[t]; ok && out.Category == "" {
			out.Category = cat
			consumed[i] = true
			continue
		}
		if attr, ok := attributeWords[t]; ok && out.Attribute == "" {
			out.Attribute = attr
			consumed[i] = true
			continue
		}
		if setWords[t] {
			isSet = true
			consumed[i] = true
			continue
		}
	}
	for i, t := range toks {
		if !consumed[i] && !textproc.IsStopword(t) {
			out.NameTokens = append(out.NameTokens, t)
		}
	}

	switch {
	case out.Attribute != "" && len(out.NameTokens) > 0:
		out.Kind = IntentAttribute
	case len(out.NameTokens) == 0 || isSet || (out.Category != "" && len(out.NameTokens) == 0):
		out.Kind = IntentSet
	case out.Category != "" && len(out.NameTokens) == 0:
		out.Kind = IntentSet
	default:
		out.Kind = IntentInstance
	}
	if isSet && out.Attribute == "" {
		out.Kind = IntentSet
	}
	return out
}

// SuggestAssistance produces the "Assistance" cell of Table 1: follow-up
// query reformulations for a parsed query (refine by attribute, by city,
// or relax to the category).
func (p *Parser) SuggestAssistance(q Parsed) []string {
	var out []string
	name := strings.Join(q.NameTokens, " ")
	add := func(s string) {
		s = strings.TrimSpace(s)
		if s != "" && s != strings.TrimSpace(q.Raw) {
			out = append(out, s)
		}
	}
	if name != "" {
		for _, attr := range []string{"menu", "reviews", "coupons", "hours"} {
			if q.Attribute != attr {
				add(name + " " + attr)
			}
		}
	}
	if q.Category != "" && q.City != "" {
		add("best " + strings.ToLower(q.Category) + " " + strings.ToLower(q.City))
	}
	if q.Category != "" && q.City == "" {
		add(strings.ToLower(q.Category) + " near me")
	}
	sort.Strings(out)
	if len(out) > 6 {
		out = out[:6]
	}
	return out
}
