package match

import (
	"math"
	"testing"

	"conceptweb/internal/lrec"
)

func rest(id, name, zip, phone, city string) *lrec.Record {
	r := lrec.NewRecord(id, "restaurant").Set("name", name).Set("city", city)
	if zip != "" {
		r.Set("zip", zip)
	}
	if phone != "" {
		r.Set("phone", phone)
	}
	return r
}

func TestMatcherScoresObviousPairs(t *testing.T) {
	m := NewMatcher(RestaurantComparators())
	a := rest("a", "Gochi Fusion Tapas", "95014", "408-555-0101", "Cupertino")
	b := rest("b", "Gochi", "95014", "(408) 555-0101", "Cupertino")
	c := rest("c", "Red Lantern Noodle Bar", "95112", "408-555-0999", "San Jose")
	if d := m.Decide(a, b); d != Match {
		t.Errorf("a~b = %v (score %.2f)", d, m.Score(a, b))
	}
	if d := m.Decide(a, c); d != NonMatch {
		t.Errorf("a~c = %v (score %.2f)", d, m.Score(a, c))
	}
	if m.Score(a, b) <= m.Score(a, c) {
		t.Error("score ordering wrong")
	}
}

func TestMatcherMissingDataNeutral(t *testing.T) {
	m := NewMatcher(RestaurantComparators())
	a := rest("a", "Gochi Fusion Tapas", "", "", "")
	b := rest("b", "Gochi Fusion Tapas", "95014", "408-555-0101", "Cupertino")
	// Name agreement alone should still push toward match, and missing
	// attributes must not count as disagreement.
	if s := m.Score(a, b); s <= 0 {
		t.Errorf("score with missing attrs = %.2f", s)
	}
}

func TestPhoneFormatInsensitive(t *testing.T) {
	m := NewMatcher(RestaurantComparators())
	a := rest("a", "Casa Azul", "", "408.555.0123", "")
	b := rest("b", "Casa Azul Taqueria", "", "(408) 555-0123", "")
	if m.Decide(a, b) != Match {
		t.Errorf("phone formats broke matching (score %.2f)", m.Score(a, b))
	}
}

func TestNameSimVariants(t *testing.T) {
	cases := []struct {
		a, b string
		hi   bool
	}{
		{"Gochi Fusion Tapas", "Gochi", true},
		{"Blue Agave Cantina", "Blue Agave Cantina Mexican Restaurant", true},
		{"Blue Agave Cantina", "Red Lantern Noodles", false},
		{"Golden Dragon Grill", "Golden Orchid Grill", false},
	}
	for _, c := range cases {
		s := nameSim(c.a, c.b)
		if c.hi && s < 0.75 {
			t.Errorf("nameSim(%q,%q) = %.2f, want high", c.a, c.b, s)
		}
		if !c.hi && s >= 0.75 {
			t.Errorf("nameSim(%q,%q) = %.2f, want low", c.a, c.b, s)
		}
	}
}

func TestComparatorWeights(t *testing.T) {
	c := Comparator{M: 0.9, U: 0.1}
	if w := c.Weight(Agree); math.Abs(w-math.Log(9)) > 1e-9 {
		t.Errorf("agree weight = %f", w)
	}
	if w := c.Weight(Disagree); math.Abs(w-math.Log(0.1/0.9)) > 1e-9 {
		t.Errorf("disagree weight = %f", w)
	}
	if w := c.Weight(AgreementMissing); w != 0 {
		t.Errorf("missing weight = %f", w)
	}
}

func TestEstimateMU(t *testing.T) {
	comps := []Comparator{{Key: "zip", Sim: equalNorm, AgreeAt: 1, M: 0.5, U: 0.5}}
	var pairs []LabeledPair
	// Same-entity pairs agree on zip 9/10 times; different 1/10.
	for i := 0; i < 10; i++ {
		zipB := "95014"
		if i == 0 {
			zipB = "95999"
		}
		pairs = append(pairs, LabeledPair{
			A: rest("a", "X", "95014", "", ""), B: rest("b", "X", zipB, "", ""), Same: true})
	}
	for i := 0; i < 10; i++ {
		zipB := "95000"
		if i == 0 {
			zipB = "95014"
		}
		pairs = append(pairs, LabeledPair{
			A: rest("a", "X", "95014", "", ""), B: rest("b", "Y", zipB, "", ""), Same: false})
	}
	est := EstimateMU(comps, pairs)
	if est[0].M < 0.7 || est[0].M > 0.95 {
		t.Errorf("M = %f", est[0].M)
	}
	if est[0].U < 0.05 || est[0].U > 0.3 {
		t.Errorf("U = %f", est[0].U)
	}
}

func TestBlocking(t *testing.T) {
	recs := []*lrec.Record{
		rest("a", "Gochi Fusion", "95014", "408-555-0101", "Cupertino"),
		rest("b", "Gochi", "95014", "", "Cupertino"),
		rest("c", "Unrelated Diner", "95999", "", "Elsewhere"),
		rest("d", "Gochi Tapas", "", "408-555-0101", "Cupertino"),
	}
	pairs := BlockBy(recs, ZipBlock, NameTokenBlock, PhoneBlock)
	has := func(x, y string) bool {
		want := MakePair(x, y)
		for _, p := range pairs {
			if p == want {
				return true
			}
		}
		return false
	}
	if !has("a", "b") {
		t.Error("zip block missed a-b")
	}
	if !has("a", "d") {
		t.Error("phone/name block missed a-d")
	}
	if has("a", "c") || has("b", "c") {
		t.Error("blocking produced cross-block pair with c")
	}
	// No duplicates.
	seen := map[Pair]int{}
	for _, p := range pairs {
		seen[p]++
		if seen[p] > 1 {
			t.Errorf("duplicate pair %v", p)
		}
	}
}

func TestPairwiseResolve(t *testing.T) {
	recs := []*lrec.Record{
		rest("w", "Gochi Fusion Tapas", "95014", "408-555-0101", "Cupertino"),
		rest("c", "Gochi Fusion", "95014", "(408) 555-0101", "Cupertino"),
		rest("x", "Red Lantern Noodle Bar", "95112", "408-555-0202", "San Jose"),
	}
	clusters := PairwiseResolve(recs, NewMatcher(RestaurantComparators()))
	if len(clusters) != 2 {
		t.Fatalf("got %d clusters: %+v", len(clusters), clusters)
	}
	if len(clusters[0].Members) != 2 {
		t.Errorf("cluster members = %v", clusters[0].Members)
	}
	// The representative holds merged evidence.
	if clusters[0].Rep.Get("phone") == "" || clusters[0].Rep.Get("zip") != "95014" {
		t.Errorf("rep = %s", clusters[0].Rep)
	}
}

func TestCollectiveResolvesChains(t *testing.T) {
	// "Gochi" (no zip, no phone, just city) matches the full record only
	// weakly; but after "Gochi Fusion Tapas" merges with the phone-bearing
	// variant, the merged evidence pulls the sparse record in. Construct:
	// a: full name + zip;  b: full name + phone;  c: short name + phone.
	a := rest("a", "Gochi Fusion Tapas", "95014", "", "Cupertino")
	b := rest("b", "Gochi Fusion Tapas", "", "408-555-0101", "Cupertino")
	c := rest("c", "Gochi", "", "408-555-0101", "Cupertino")
	m := NewMatcher(RestaurantComparators())
	collective := Resolve([]*lrec.Record{a, b, c}, m, DefaultCollectiveOptions())
	if len(collective) != 1 {
		t.Fatalf("collective clusters = %d, want 1: %+v", len(collective), collective)
	}
	rep := collective[0].Rep
	if rep.Get("zip") != "95014" || rep.Get("phone") == "" {
		t.Errorf("merged rep = %s", rep)
	}
}

func TestResolveKeepsDistinctEntitiesApart(t *testing.T) {
	// Same chain name, different cities/zips: two records that must NOT
	// merge (same-name different-instance is the classic EM trap).
	a := rest("a", "Pizza My Heart", "95014", "408-555-0301", "Cupertino")
	b := rest("b", "Pizza My Heart", "95112", "408-555-0302", "San Jose")
	clusters := Resolve([]*lrec.Record{a, b}, NewMatcher(RestaurantComparators()), DefaultCollectiveOptions())
	if len(clusters) != 2 {
		t.Fatalf("chain locations merged: %+v", clusters)
	}
}

func TestResolveEmptyAndSingle(t *testing.T) {
	m := NewMatcher(RestaurantComparators())
	if got := Resolve(nil, m, DefaultCollectiveOptions()); len(got) != 0 {
		t.Error("empty resolve")
	}
	one := []*lrec.Record{rest("a", "Solo Cafe", "95014", "", "Cupertino")}
	got := Resolve(one, m, DefaultCollectiveOptions())
	if len(got) != 1 || len(got[0].Members) != 1 {
		t.Errorf("single resolve = %+v", got)
	}
}

func TestTextMatcher(t *testing.T) {
	records := []*lrec.Record{
		rest("gochi", "Gochi Fusion Tapas", "95014", "", "Cupertino").
			Set("menu", "salmon nigiri; tonkotsu ramen; gyoza"),
		rest("azul", "Casa Azul Taqueria", "95112", "", "San Jose").
			Set("menu", "carne asada tacos; salsa verde; guacamole"),
		rest("lantern", "Red Lantern Noodle Bar", "95112", "", "San Jose").
			Set("menu", "dan dan noodles; dumplings; chow mein"),
	}
	tm := NewTextMatcher(records)

	got := tm.Match("had amazing gyoza and ramen at Gochi in Cupertino last night", 3)
	if len(got) == 0 || got[0].Record.ID != "gochi" {
		t.Fatalf("match = %+v", got)
	}
	got = tm.Match("the salsa verde and tacos at Casa Azul are the best in San Jose", 1)
	if len(got) != 1 || got[0].Record.ID != "azul" {
		t.Fatalf("match = %+v", got)
	}
	// Text about nothing in the corpus.
	if got := tm.Match("quarterly earnings report for the semiconductor industry", 3); len(got) != 0 {
		for _, g := range got {
			if g.Score > 0.5 {
				t.Errorf("high-confidence spurious match: %+v", g)
			}
		}
	}
}

func TestTextMatcherBest(t *testing.T) {
	records := []*lrec.Record{
		rest("gochi", "Gochi Fusion Tapas", "95014", "", "Cupertino"),
		rest("azul", "Casa Azul Taqueria", "95112", "", "San Jose"),
	}
	tm := NewTextMatcher(records)
	if r, ok := tm.Best("dinner at gochi fusion tapas in cupertino", 0.1); !ok || r.ID != "gochi" {
		t.Errorf("best = %v %v", r, ok)
	}
	if _, ok := tm.Best("totally unrelated text", 0.1); ok {
		t.Error("unrelated text matched")
	}
	if _, ok := tm.Best("", 0); ok {
		t.Error("empty text matched")
	}
}

func TestDecisionString(t *testing.T) {
	if Match.String() != "match" || NonMatch.String() != "nonmatch" || Possible.String() != "possible" {
		t.Error("decision names")
	}
}
