package match

import "sort"

// matchTokensReference is the naive §4.2 scorer MatchTokens replaced: one
// log-likelihood term per (candidate × token) pair, summed in token order.
// It is retained as the correctness oracle — the decomposed, pruned scorer
// must return bit-identical scores and ordering, which the property tests
// in textmatch_prop_test.go cross-check on randomized corpora. It shares
// tokenContrib with the fast path so both evaluate the same floating-point
// instruction sequence.
func (tm *TextMatcher) matchTokensReference(all []string, k int) []ScoredRecord {
	if len(all) == 0 || len(tm.records) == 0 {
		return nil
	}
	tokens := all[:0:0]
	for _, t := range all {
		if len(tm.invIndex[t]) > 0 {
			tokens = append(tokens, t)
		}
	}
	if len(tokens) < tm.MinInformative {
		return nil
	}
	candSet := make(map[int]bool)
	for _, t := range tokens {
		for _, i := range tm.invIndex[t] {
			candSet[i] = true
		}
	}
	if len(candSet) == 0 {
		return nil
	}
	cands := make([]int, 0, len(candSet))
	for i := range candSet {
		cands = append(cands, i)
	}
	sort.Ints(cands)

	scored := make([]ScoredRecord, 0, len(cands))
	for _, i := range cands {
		model := tm.models[i]
		var ll float64
		for _, t := range tokens {
			ll += tokenContrib(tm.Lambda, model[t], tm.bg[t], tm.bgTotal)
		}
		scored = append(scored, ScoredRecord{
			Record: tm.records[i],
			Score:  ll / float64(len(tokens)),
		})
	}
	sort.Slice(scored, func(a, b int) bool {
		if scored[a].Score != scored[b].Score {
			return scored[a].Score > scored[b].Score
		}
		return scored[a].Record.ID < scored[b].Record.ID
	})
	if k > 0 && len(scored) > k {
		scored = scored[:k]
	}
	return scored
}
