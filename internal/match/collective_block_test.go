package match

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"conceptweb/internal/lrec"
)

// resolveReference is the pre-blocked-streaming Resolve: clone every record
// up front, materialize the deduplicated pair list with BlockBy each round,
// rebuild every cluster representative after any merge. Kept verbatim as
// the equivalence oracle for the streaming, cap-or-split resolver.
func resolveReference(records []*lrec.Record, m *Matcher, opts CollectiveOptions) []Cluster {
	if opts.MaxRounds <= 0 {
		opts.MaxRounds = 3
	}
	if len(opts.Blockers) == 0 {
		opts.Blockers = DefaultCollectiveOptions().Blockers
	}
	uf := newUnionFind()
	for _, r := range records {
		uf.find(r.ID)
	}
	byID := make(map[string]*lrec.Record, len(records))
	for _, r := range records {
		byID[r.ID] = r
	}
	reps := make([]*lrec.Record, len(records))
	for i, r := range records {
		reps[i] = r.Clone()
	}
	for round := 0; round < opts.MaxRounds; round++ {
		pairs := BlockBy(reps, opts.Blockers...)
		merged := false
		repByID := make(map[string]*lrec.Record, len(reps))
		for _, r := range reps {
			repByID[r.ID] = r
		}
		for _, p := range pairs {
			a, b := repByID[p.A], repByID[p.B]
			if a == nil || b == nil || uf.find(a.ID) == uf.find(b.ID) {
				continue
			}
			if m.Decide(a, b) == Match {
				uf.union(a.ID, b.ID)
				merged = true
			}
		}
		if !merged {
			break
		}
		groups := make(map[string][]*lrec.Record)
		for _, r := range records {
			root := uf.find(r.ID)
			groups[root] = append(groups[root], r)
		}
		reps = reps[:0]
		roots := make([]string, 0, len(groups))
		for root := range groups {
			roots = append(roots, root)
		}
		sort.Strings(roots)
		for _, root := range roots {
			rep := lrec.NewRecord(root, groups[root][0].Concept)
			for _, r := range groups[root] {
				rep.Merge(r) //nolint:errcheck
			}
			reps = append(reps, rep)
		}
	}
	groups := make(map[string][]string)
	for _, r := range records {
		root := uf.find(r.ID)
		groups[root] = append(groups[root], r.ID)
	}
	roots := make([]string, 0, len(groups))
	for root := range groups {
		roots = append(roots, root)
	}
	sort.Strings(roots)
	out := make([]Cluster, 0, len(groups))
	for _, root := range roots {
		ids := groups[root]
		sort.Strings(ids)
		rep := lrec.NewRecord(root, byID[ids[0]].Concept)
		for _, id := range ids {
			rep.Merge(byID[id]) //nolint:errcheck
		}
		out = append(out, Cluster{Rep: rep, Members: ids})
	}
	return out
}

// randomRestaurantCorpus generates entity clusters the way sources mangle
// them: each base entity appears 1–4 times under different IDs with
// truncated or decorated names, shared phones/zips, and dropped attributes.
func randomRestaurantCorpus(rng *rand.Rand, entities int) []*lrec.Record {
	words := []string{"gochi", "fusion", "tapas", "old", "hearth", "diner",
		"sushi", "bar", "golden", "dragon", "palace", "cafe", "luna", "verde",
		"blue", "fig", "olive", "grove", "red", "lantern"}
	var recs []*lrec.Record
	id := 0
	for e := 0; e < entities; e++ {
		nw := 2 + rng.Intn(3)
		name := ""
		for w := 0; w < nw; w++ {
			if w > 0 {
				name += " "
			}
			name += words[rng.Intn(len(words))]
		}
		zip := fmt.Sprintf("94%03d", rng.Intn(6))
		phone := fmt.Sprintf("(650) 555-%04d", rng.Intn(10000))
		street := fmt.Sprintf("%d castro st", 100+rng.Intn(40))
		variants := 1 + rng.Intn(4)
		for v := 0; v < variants; v++ {
			r := lrec.NewRecord(fmt.Sprintf("r%04d", id), "restaurant")
			id++
			vn := name
			if v > 0 && rng.Intn(2) == 0 {
				// Truncate to the first word — the chain-match case.
				for i := 0; i < len(vn); i++ {
					if vn[i] == ' ' {
						vn = vn[:i]
						break
					}
				}
			}
			r.Add("name", lrec.AttrValue{Value: vn, Confidence: 0.9})
			if rng.Intn(4) != 0 {
				r.Add("zip", lrec.AttrValue{Value: zip, Confidence: 0.9})
			}
			if rng.Intn(3) != 0 {
				r.Add("phone", lrec.AttrValue{Value: phone, Confidence: 0.9})
			}
			if rng.Intn(3) != 0 {
				r.Add("street", lrec.AttrValue{Value: street, Confidence: 0.8})
			}
			recs = append(recs, r)
		}
	}
	return recs
}

func clustersEqual(t *testing.T, got, want []Cluster, ctx string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d clusters, want %d", ctx, len(got), len(want))
	}
	for i := range want {
		if got[i].Rep.ID != want[i].Rep.ID {
			t.Fatalf("%s: cluster %d root %q, want %q", ctx, i, got[i].Rep.ID, want[i].Rep.ID)
		}
		if fmt.Sprint(got[i].Members) != fmt.Sprint(want[i].Members) {
			t.Fatalf("%s: cluster %q members %v, want %v",
				ctx, got[i].Rep.ID, got[i].Members, want[i].Members)
		}
		if got[i].Rep.String() != want[i].Rep.String() {
			t.Fatalf("%s: cluster %q rep %s, want %s",
				ctx, got[i].Rep.ID, got[i].Rep, want[i].Rep)
		}
	}
}

// TestResolveBlockedEqualsReference: with every block under MaxBlock (the
// default-world regime), the streaming resolver must reproduce the
// reference resolver exactly — same roots, members, and merged rep content.
func TestResolveBlockedEqualsReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := NewMatcher(RestaurantComparators())
	for trial := 0; trial < 20; trial++ {
		recs := randomRestaurantCorpus(rng, 5+rng.Intn(40))
		got := Resolve(recs, m, DefaultCollectiveOptions())
		want := resolveReference(recs, m, DefaultCollectiveOptions())
		clustersEqual(t, got, want, fmt.Sprintf("trial %d (%d records)", trial, len(recs)))
	}
}

// TestResolveOversizedBlockDeterministic pins the cap-or-split path: with
// MaxBlock forced tiny so every zip block splits into sorted-neighborhood
// passes, the result must be identical run to run and invariant under input
// permutation, and variants of one entity must still co-cluster (adjacency
// in name order plus transitive closure recovers them).
func TestResolveOversizedBlockDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m := NewMatcher(RestaurantComparators())
	opts := DefaultCollectiveOptions()
	opts.MaxBlock = 4
	opts.Window = 3
	for trial := 0; trial < 10; trial++ {
		recs := randomRestaurantCorpus(rng, 20+rng.Intn(30))
		first := Resolve(recs, m, opts)
		again := Resolve(recs, m, opts)
		clustersEqual(t, first, again, fmt.Sprintf("trial %d rerun", trial))

		shuffled := append([]*lrec.Record(nil), recs...)
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		perm := Resolve(shuffled, m, opts)
		if len(perm) != len(first) {
			t.Fatalf("trial %d: %d clusters after permutation, want %d",
				trial, len(perm), len(first))
		}
		for i := range first {
			if first[i].Rep.ID != perm[i].Rep.ID ||
				fmt.Sprint(first[i].Members) != fmt.Sprint(perm[i].Members) {
				t.Fatalf("trial %d: partition differs under input permutation:\n%v %v\nvs\n%v %v",
					trial, first[i].Rep.ID, first[i].Members, perm[i].Rep.ID, perm[i].Members)
			}
		}
	}
}

// TestResolveSplitStillClusters: identical duplicate records inside one
// giant block sort adjacent, so even the windowed pass must merge them.
func TestResolveSplitStillClusters(t *testing.T) {
	m := NewMatcher(RestaurantComparators())
	words := []string{"gochi", "fusion", "tapas", "hearth", "diner",
		"sushi", "golden", "dragon", "palace", "luna", "verde",
		"blue", "fig", "olive", "grove", "red", "lantern", "jasmine",
		"ember", "harvest"}
	var recs []*lrec.Record
	for i := 0; i < 40; i++ {
		e := i / 2
		r := lrec.NewRecord(fmt.Sprintf("d%02d", i), "restaurant")
		name := words[e] + " " + words[(e+3)%len(words)] + " kitchen"
		r.Add("name", lrec.AttrValue{Value: name, Confidence: 0.9})
		r.Add("zip", lrec.AttrValue{Value: "94040", Confidence: 0.9})
		r.Add("phone", lrec.AttrValue{Value: fmt.Sprintf("(650) 555-%04d", e), Confidence: 0.9})
		r.Add("street", lrec.AttrValue{Value: fmt.Sprintf("%d main st", 100+e), Confidence: 0.9})
		recs = append(recs, r)
	}
	opts := DefaultCollectiveOptions()
	opts.MaxBlock = 8
	opts.Window = 2
	clusters := Resolve(recs, m, opts)
	if len(clusters) != 20 {
		t.Fatalf("got %d clusters, want 20 (each duplicate pair merged)", len(clusters))
	}
	for _, cl := range clusters {
		if len(cl.Members) != 2 {
			t.Fatalf("cluster %q has members %v, want exactly 2", cl.Rep.ID, cl.Members)
		}
	}
}
