package match

import (
	"math/rand"
	"testing"
)

// Microbenchmarks for the two formerly super-linear hot paths of the build:
// §5.4 text matching (link stage) and collective resolution (resolve stage).
// Each has a *Reference variant running the retained naive implementation,
// so `make microbench` archives the speedup alongside the absolute numbers.

func benchTextCorpusAndQueries() (*TextMatcher, [][]string) {
	rng := rand.New(rand.NewSource(1))
	vocab := propVocab(99)
	tm := NewTextMatcher(randomTextCorpus(rng, vocab, 2000))
	queries := make([][]string, 64)
	for i := range queries {
		queries[i] = randomQuery(rng, vocab, 80)
	}
	return tm, queries
}

func BenchmarkMatchTokens(b *testing.B) {
	tm, queries := benchTextCorpusAndQueries()
	tm.MatchTokens(queries[0], 1) // freeze outside the timing loop
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm.MatchTokens(queries[i%len(queries)], 1)
	}
}

func BenchmarkMatchTokensReference(b *testing.B) {
	tm, queries := benchTextCorpusAndQueries()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm.matchTokensReference(queries[i%len(queries)], 1)
	}
}

// The resolve benchmarks share a corpus concentrated into a handful of
// zips, so the dominant blocks are oversized: the blocked resolver takes
// the sorted-neighborhood split path while the reference pays all-pairs.
func BenchmarkResolve(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	recs := randomRestaurantCorpus(rng, 160)
	m := NewMatcher(RestaurantComparators())
	opts := DefaultCollectiveOptions()
	opts.MaxBlock = 16
	opts.Window = 8
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Resolve(recs, m, opts)
	}
}

func BenchmarkResolveReference(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	recs := randomRestaurantCorpus(rng, 160)
	m := NewMatcher(RestaurantComparators())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resolveReference(recs, m, DefaultCollectiveOptions())
	}
}
