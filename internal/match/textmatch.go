package match

import (
	"math"
	"sort"

	"conceptweb/internal/lrec"
	"conceptweb/internal/textproc"
)

// TextMatcher matches a free-text fragment (a review, a blog mention) to the
// structured record it is "about" (§4.2 "Matching"): a domain-centric
// generative model of text. Each record defines a unigram language model
// over its attribute tokens, weighted per attribute (name tokens count more
// than menu tokens); a document is scored by the smoothed mixture of the
// record model and a background model built from the whole record corpus.
//
// All state (per-record models, background model, inverted token index) is
// frozen by NewTextMatcher; Match and Best only read it, so one matcher is
// safe for any number of concurrent scoring goroutines — the link stage of
// the parallel build pipeline builds the matcher once and fans page scoring
// out over its worker pool. Mutating the exported tuning fields after
// construction is not synchronized; set them before sharing the matcher.
type TextMatcher struct {
	// Lambda is the record-model mixture weight (default 0.7).
	Lambda float64
	// AttrWeights scale each attribute's token contributions; attributes
	// absent from the map get weight 1.
	AttrWeights map[string]float64
	// MinInformative is the minimum number of text tokens that occur in any
	// record's vocabulary for a match to be attempted (default 4): a page
	// sharing only a word or two with the corpus is not "about" anything.
	MinInformative int

	records []*lrec.Record
	models  []map[string]float64 // per-record token probabilities
	bg      map[string]float64   // background token probabilities
	bgTotal float64
	// candidate index: token -> record indexes containing it
	invIndex map[string][]int
}

// DefaultAttrWeights reflect how strongly each restaurant attribute
// identifies the subject of a review.
func DefaultAttrWeights() map[string]float64 {
	return map[string]float64{
		"name": 5, "street": 2, "city": 1.5, "menu": 1, "cuisine": 1,
		"title": 5, "brand": 2, "model": 3,
	}
}

// NewTextMatcher builds the matcher over a record corpus.
func NewTextMatcher(records []*lrec.Record) *TextMatcher {
	tm := &TextMatcher{
		Lambda:         0.7,
		AttrWeights:    DefaultAttrWeights(),
		MinInformative: 4,
		records:        records,
		invIndex:       make(map[string][]int),
		bg:             make(map[string]float64),
	}
	for i, r := range records {
		model := make(map[string]float64)
		var total float64
		for _, key := range r.Keys() {
			w := tm.AttrWeights[key]
			if w == 0 {
				w = 1
			}
			for _, v := range r.All(key) {
				for _, t := range textproc.RemoveStopwords(textproc.Tokenize(v.Value)) {
					t = textproc.Stem(t)
					model[t] += w
					total += w
				}
			}
		}
		for t := range model {
			model[t] /= total
			tm.invIndex[t] = append(tm.invIndex[t], i)
			tm.bg[t] += model[t]
			tm.bgTotal += model[t]
		}
		tm.models = append(tm.models, model)
	}
	return tm
}

// ScoredRecord is one ranked match.
type ScoredRecord struct {
	Record *lrec.Record
	Score  float64 // mean per-token log-likelihood ratio vs background
}

// Match returns the k records most likely to be the subject of text,
// best first. Records sharing no token with the text are never candidates.
func (tm *TextMatcher) Match(text string, k int) []ScoredRecord {
	toks := textproc.RemoveStopwordsInPlace(textproc.Tokenize(text))
	return tm.MatchTokens(textproc.StemInPlace(toks), k)
}

// MatchTokens is Match over a pre-analyzed token stream (Tokenize →
// RemoveStopwords → Stem, the pipeline PageAnalysis.MainTokens produces).
// The input is read-only, so one token slice may be shared across scoring
// goroutines.
func (tm *TextMatcher) MatchTokens(all []string, k int) []ScoredRecord {
	if len(all) == 0 || len(tm.records) == 0 {
		return nil
	}
	// Score only informative tokens — those in some record's vocabulary.
	// Generic prose carries no signal about which record the text is about
	// and would only dilute the per-token likelihood ratio.
	tokens := all[:0:0]
	for _, t := range all {
		if len(tm.invIndex[t]) > 0 {
			tokens = append(tokens, t)
		}
	}
	if len(tokens) < tm.MinInformative {
		return nil
	}
	candSet := make(map[int]bool)
	for _, t := range tokens {
		for _, i := range tm.invIndex[t] {
			candSet[i] = true
		}
	}
	if len(candSet) == 0 {
		return nil
	}
	cands := make([]int, 0, len(candSet))
	for i := range candSet {
		cands = append(cands, i)
	}
	sort.Ints(cands)

	const floor = 1e-7
	scored := make([]ScoredRecord, 0, len(cands))
	for _, i := range cands {
		model := tm.models[i]
		var ll float64
		for _, t := range tokens {
			pBg := tm.bg[t]/tm.bgTotal + floor
			p := tm.Lambda*model[t] + (1-tm.Lambda)*pBg
			// Log-likelihood ratio against pure background: tokens absent
			// from the record model pull the score down only mildly, tokens
			// unique to the record pull it up strongly.
			ll += math.Log((p + floor) / (pBg + floor))
		}
		scored = append(scored, ScoredRecord{
			Record: tm.records[i],
			Score:  ll / float64(len(tokens)),
		})
	}
	sort.Slice(scored, func(a, b int) bool {
		if scored[a].Score != scored[b].Score {
			return scored[a].Score > scored[b].Score
		}
		return scored[a].Record.ID < scored[b].Record.ID
	})
	if k > 0 && len(scored) > k {
		scored = scored[:k]
	}
	return scored
}

// Best returns the single best match and whether its score clears minScore.
func (tm *TextMatcher) Best(text string, minScore float64) (*lrec.Record, bool) {
	top := tm.Match(text, 1)
	if len(top) == 0 || top[0].Score < minScore {
		return nil, false
	}
	return top[0].Record, true
}

// BestTokens is Best over a pre-analyzed token stream.
func (tm *TextMatcher) BestTokens(toks []string, minScore float64) (*lrec.Record, bool) {
	top := tm.MatchTokens(toks, 1)
	if len(top) == 0 || top[0].Score < minScore {
		return nil, false
	}
	return top[0].Record, true
}
