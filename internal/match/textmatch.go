package match

import (
	"math"
	"sort"
	"sync"

	"conceptweb/internal/lrec"
	"conceptweb/internal/textproc"
)

// TextMatcher matches a free-text fragment (a review, a blog mention) to the
// structured record it is "about" (§4.2 "Matching"): a domain-centric
// generative model of text. Each record defines a unigram language model
// over its attribute tokens, weighted per attribute (name tokens count more
// than menu tokens); a document is scored by the smoothed mixture of the
// record model and a background model built from the whole record corpus.
//
// Scoring is decomposed per token: a record-independent "absent" penalty
// (the token is not in the record's model) plus a per-(record, token) delta
// for records that do contain it. The deltas are precomputed once and laid
// out along the inverted index, so MatchTokens accumulates sparse per-record
// sums driven by postings instead of computing a log-likelihood per
// (candidate × token) pair, then exactly rescores the few candidates that
// can still reach the top-k / minScore threshold. The pruning is lossless:
// results are bit-identical to the retained naive scorer
// (matchTokensReference), which the property tests cross-check.
//
// All state (per-record models, background model, inverted token index, the
// frozen score table) is built by NewTextMatcher or frozen on first use;
// Match and Best only read it, so one matcher is safe for any number of
// concurrent scoring goroutines — the link stage of the parallel build
// pipeline builds the matcher once and fans page scoring out over its
// worker pool. Mutating the exported tuning fields after construction is
// not synchronized and Lambda is frozen into the score table on the first
// match; set them before sharing the matcher.
type TextMatcher struct {
	// Lambda is the record-model mixture weight (default 0.7).
	Lambda float64
	// AttrWeights scale each attribute's token contributions; attributes
	// absent from the map get weight 1.
	AttrWeights map[string]float64
	// MinInformative is the minimum number of text tokens that occur in any
	// record's vocabulary for a match to be attempted (default 4): a page
	// sharing only a word or two with the corpus is not "about" anything.
	MinInformative int

	records []*lrec.Record
	models  []map[string]float64 // per-record token probabilities
	bg      map[string]float64   // background token probabilities
	bgTotal float64
	// candidate index: token -> record indexes containing it
	invIndex map[string][]int

	freezeOnce sync.Once
	table      map[string]*tokenScore
	tableLam   float64 // Lambda captured at freeze time
	scratch    sync.Pool
}

// tokenScore is the frozen per-token score decomposition. For a text token t
// and record i, the log-likelihood-ratio contribution is absent when i's
// model lacks t and absent+delta[j] (up to rounding) when invIndex[t][j] == i.
type tokenScore struct {
	absent float64 // contribution of t for a record without it
	maxAbs float64 // max |contribution| over absent and all present records
	recs   []int   // shares the invIndex postings slice
	delta  []float64
}

// DefaultAttrWeights reflect how strongly each restaurant attribute
// identifies the subject of a review.
func DefaultAttrWeights() map[string]float64 {
	return map[string]float64{
		"name": 5, "street": 2, "city": 1.5, "menu": 1, "cuisine": 1,
		"title": 5, "brand": 2, "model": 3,
	}
}

// NewTextMatcher builds the matcher over a record corpus.
func NewTextMatcher(records []*lrec.Record) *TextMatcher {
	tm := &TextMatcher{
		Lambda:         0.7,
		AttrWeights:    DefaultAttrWeights(),
		MinInformative: 4,
		records:        records,
		invIndex:       make(map[string][]int),
		bg:             make(map[string]float64),
	}
	tm.scratch.New = func() any { return new(matchScratch) }
	// Model tokens recur across records (cuisine words, street/city names,
	// menu vocabulary), so intern them: every record's model map then keys
	// into one shared string per distinct token instead of retaining its own
	// copy sliced from the attribute value.
	intern := make(map[string]string)
	var toks []string
	for i, r := range records {
		model := make(map[string]float64)
		var total float64
		for _, key := range r.Keys() {
			w := tm.AttrWeights[key]
			if w == 0 {
				w = 1
			}
			for _, v := range r.All(key) {
				toks = textproc.TokenizeInto(v.Value, toks[:0])
				toks = textproc.StemInPlace(textproc.RemoveStopwordsInPlace(toks))
				for _, t := range toks {
					ti, ok := intern[t]
					if !ok {
						intern[t] = t
						ti = t
					}
					model[ti] += w
					total += w
				}
			}
		}
		for t := range model {
			model[t] /= total
			tm.invIndex[t] = append(tm.invIndex[t], i)
			tm.bg[t] += model[t]
			tm.bgTotal += model[t]
		}
		tm.models = append(tm.models, model)
	}
	return tm
}

// scoreFloor is the smoothing floor added to every probability before the
// log ratio, matching the naive scorer exactly.
const scoreFloor = 1e-7

// tokenContrib is the per-token log-likelihood ratio of one record for one
// text token. Both the frozen score table and the exact rescore (and the
// naive reference scorer) go through this one function so every path
// evaluates the identical floating-point instruction sequence — bit-equal
// results even on architectures where the compiler fuses multiply-adds.
func tokenContrib(lambda, model, bgMass, bgTotal float64) float64 {
	pBg := bgMass/bgTotal + scoreFloor
	p := lambda*model + (1-lambda)*pBg
	// Log-likelihood ratio against pure background: tokens absent from the
	// record model pull the score down only mildly, tokens unique to the
	// record pull it up strongly.
	return math.Log((p + scoreFloor) / (pBg + scoreFloor))
}

// freeze builds the per-token score decomposition once, on first use, so a
// Lambda set after construction but before the first match is honored.
func (tm *TextMatcher) freeze() {
	tm.freezeOnce.Do(func() {
		tm.tableLam = tm.Lambda
		tm.table = make(map[string]*tokenScore, len(tm.invIndex))
		for t, recs := range tm.invIndex {
			ts := &tokenScore{
				absent: tokenContrib(tm.tableLam, 0, tm.bg[t], tm.bgTotal),
				recs:   recs,
				delta:  make([]float64, len(recs)),
			}
			ts.maxAbs = math.Abs(ts.absent)
			for j, i := range recs {
				c := tokenContrib(tm.tableLam, tm.models[i][t], tm.bg[t], tm.bgTotal)
				ts.delta[j] = c - ts.absent
				if a := math.Abs(c); a > ts.maxAbs {
					ts.maxAbs = a
				}
			}
			tm.table[t] = ts
		}
	})
}

// matchScratch holds the reusable per-call buffers of matchTokens. acc/mark
// are sized to the record corpus and reset by generation counter, so a call
// touching 200 of 50k records pays for 200, not 50k.
type matchScratch struct {
	gen     uint64
	mark    []uint64
	acc     []float64 // per-record approximate delta sum, valid if mark==gen
	touched []int     // record indexes with mark==gen, in first-touch order
	counts  map[string]int
	uniq    []string
	tokens  []string
	bestK   []float64
}

// ScoredRecord is one ranked match.
type ScoredRecord struct {
	Record *lrec.Record
	Score  float64 // mean per-token log-likelihood ratio vs background
}

// Match returns the k records most likely to be the subject of text,
// best first. Records sharing no token with the text are never candidates.
func (tm *TextMatcher) Match(text string, k int) []ScoredRecord {
	toks := textproc.RemoveStopwordsInPlace(textproc.Tokenize(text))
	return tm.MatchTokens(textproc.StemInPlace(toks), k)
}

// MatchTokens is Match over a pre-analyzed token stream (Tokenize →
// RemoveStopwords → Stem, the pipeline PageAnalysis.MainTokens produces).
// The input is read-only, so one token slice may be shared across scoring
// goroutines.
func (tm *TextMatcher) MatchTokens(all []string, k int) []ScoredRecord {
	return tm.matchTokens(all, k, math.Inf(-1))
}

// matchTokens scores candidates in two phases. Phase 1 accumulates an
// approximate score per candidate from the frozen decomposition: every
// candidate starts from the shared all-tokens-absent base and each posting
// of each distinct text token adds count × delta. Phase 2 walks candidates
// in approximate-score order and rescores them exactly (same token order and
// arithmetic as the naive scorer); once the k-th best exact score — or
// minScore — exceeds every remaining candidate's upper bound
// (approx + slack), the rest are abandoned. slack is a proven bound on the
// float summation error (see DESIGN.md §15), so pruning never changes the
// result: pruned candidates are strictly below the final k-th exact score,
// and below minScore for the Best path, where the caller discards such a
// top-1 anyway.
func (tm *TextMatcher) matchTokens(all []string, k int, minScore float64) []ScoredRecord {
	if len(all) == 0 || len(tm.records) == 0 {
		return nil
	}
	tm.freeze()
	sc := tm.scratch.Get().(*matchScratch)
	defer tm.scratch.Put(sc)
	if sc.counts == nil {
		sc.counts = make(map[string]int)
	}
	if len(sc.mark) < len(tm.records) {
		sc.mark = make([]uint64, len(tm.records))
		sc.acc = make([]float64, len(tm.records))
	}
	sc.gen++
	gen := sc.gen

	// Score only informative tokens — those in some record's vocabulary.
	// Generic prose carries no signal about which record the text is about
	// and would only dilute the per-token likelihood ratio.
	tokens := sc.tokens[:0]
	uniq := sc.uniq[:0]
	for _, t := range all {
		ts := tm.table[t]
		if ts == nil {
			continue
		}
		tokens = append(tokens, t)
		if sc.counts[t] == 0 {
			uniq = append(uniq, t)
		}
		sc.counts[t]++
	}
	sc.tokens, sc.uniq = tokens, uniq
	defer clear(sc.counts)
	if len(tokens) < tm.MinInformative {
		return nil
	}

	// Phase 1: sparse accumulation. base is the score of a hypothetical
	// record containing none of the tokens; postings add the deltas. maxSum
	// accumulates Σ count×maxAbs — the magnitude budget T of the slack bound.
	var base, maxSum float64
	touched := sc.touched[:0]
	for _, t := range uniq {
		ts := tm.table[t]
		cnt := float64(sc.counts[t])
		base += cnt * ts.absent
		maxSum += cnt * ts.maxAbs
		for j, i := range ts.recs {
			if sc.mark[i] != gen {
				sc.mark[i] = gen
				sc.acc[i] = 0
				touched = append(touched, i)
			}
			sc.acc[i] += cnt * ts.delta[j]
		}
	}
	sc.touched = touched
	n := float64(len(tokens))
	for _, i := range touched {
		sc.acc[i] = (base + sc.acc[i]) / n
	}
	// Upper bound on |approx − exact| on the mean-per-token scale. The true
	// error of re-associating ≤ 2·len(tokens)+1 summands of total magnitude
	// ≤ 3T, plus the delta and division roundings, is below ~11·ε·(T+1);
	// 64 leaves ≥5× headroom (DESIGN.md §15 has the derivation).
	slack := 64 * 0x1p-52 * (maxSum + 1)

	// Candidates in approximate-score order (best first), index ascending on
	// ties, so the prune threshold rises as fast as possible and the visit
	// order is deterministic.
	sort.Slice(touched, func(a, b int) bool {
		ia, ib := touched[a], touched[b]
		if sc.acc[ia] != sc.acc[ib] {
			return sc.acc[ia] > sc.acc[ib]
		}
		return ia < ib
	})

	// Phase 2: exact rescore with pruning. bestK tracks the k highest exact
	// scores seen so far (descending); once full, its last entry is the bar
	// a candidate must reach to appear in the final top-k.
	bestK := sc.bestK[:0]
	scored := make([]ScoredRecord, 0, min(len(touched), max(k, 1)*4))
	for _, i := range touched {
		thr := minScore
		if k > 0 && len(bestK) == k && bestK[k-1] > thr {
			thr = bestK[k-1]
		}
		if sc.acc[i]+slack < thr {
			break // every remaining candidate's upper bound is lower still
		}
		s := tm.rescore(i, tokens) / n
		scored = append(scored, ScoredRecord{Record: tm.records[i], Score: s})
		if k > 0 {
			pos := sort.Search(len(bestK), func(j int) bool { return bestK[j] < s })
			if pos < k {
				if len(bestK) < k {
					bestK = append(bestK, 0)
				}
				copy(bestK[pos+1:], bestK[pos:])
				bestK[pos] = s
			}
		}
	}
	sc.bestK = bestK
	sort.Slice(scored, func(a, b int) bool {
		if scored[a].Score != scored[b].Score {
			return scored[a].Score > scored[b].Score
		}
		return scored[a].Record.ID < scored[b].Record.ID
	})
	if k > 0 && len(scored) > k {
		scored = scored[:k]
	}
	if len(scored) == 0 {
		return nil
	}
	return scored
}

// rescore computes record i's exact total log-likelihood ratio over tokens,
// in token order — the identical summation the naive scorer performs, via
// the same tokenContrib helper (absent contributions come from the table,
// where they were produced by the same call with model = 0).
func (tm *TextMatcher) rescore(i int, tokens []string) float64 {
	model := tm.models[i]
	var ll float64
	for _, t := range tokens {
		if m, ok := model[t]; ok {
			ll += tokenContrib(tm.tableLam, m, tm.bg[t], tm.bgTotal)
		} else {
			ll += tm.table[t].absent
		}
	}
	return ll
}

// Best returns the single best match and whether its score clears minScore.
func (tm *TextMatcher) Best(text string, minScore float64) (*lrec.Record, bool) {
	toks := textproc.RemoveStopwordsInPlace(textproc.Tokenize(text))
	return tm.BestTokens(textproc.StemInPlace(toks), minScore)
}

// BestTokens is Best over a pre-analyzed token stream. minScore is also a
// pruning threshold: candidates provably below it are never fully scored.
func (tm *TextMatcher) BestTokens(toks []string, minScore float64) (*lrec.Record, bool) {
	top := tm.matchTokens(toks, 1, minScore)
	if len(top) == 0 || top[0].Score < minScore {
		return nil, false
	}
	return top[0].Record, true
}
