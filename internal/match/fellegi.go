// Package match implements entity matching for the web of concepts (§6,
// §7.2): Fellegi–Sunter probabilistic pairwise matching over attribute
// similarities, blocking to avoid the quadratic pair explosion, iterative
// collective matching that lets accepted matches trigger new ones, and a
// domain-centric generative text model that matches free text (reviews,
// blog mentions) to structured records.
package match

import (
	"math"
	"sort"

	"conceptweb/internal/lrec"
	"conceptweb/internal/textproc"
)

// Agreement levels produced by attribute comparison.
type Agreement int

// Agreement outcomes for one attribute comparison.
const (
	AgreementMissing Agreement = iota // one or both sides lack the attribute
	Agree
	Disagree
)

// Comparator measures agreement of one attribute between two records.
type Comparator struct {
	Key string
	// Sim maps two non-empty values to [0,1].
	Sim func(a, b string) float64
	// AgreeAt is the similarity threshold counted as agreement.
	AgreeAt float64
	// M is P(agree | same entity); U is P(agree | different entities).
	// log(M/U) is the agreement weight; log((1-M)/(1-U)) the disagreement
	// penalty, per Fellegi–Sunter.
	M, U float64
	// MostSpecific compares only the most specific (longest) value on each
	// side instead of the best pairing over all values. Name comparators
	// need this: after collective merging, both clusters may hold the same
	// truncated variant ("Old Hearth"), and best-pairing would manufacture
	// agreement between "Old Hearth Diner" and "Old Hearth Sushi Bar".
	MostSpecific bool
}

// Weight returns the log-likelihood-ratio contribution of this comparator
// for the given agreement outcome.
func (c Comparator) Weight(a Agreement) float64 {
	switch a {
	case Agree:
		return math.Log(c.M / c.U)
	case Disagree:
		return math.Log((1 - c.M) / (1 - c.U))
	default:
		return 0 // missing data is uninformative
	}
}

// equalNorm is exact equality after normalization.
func equalNorm(a, b string) float64 {
	if textproc.Normalize(a) == textproc.Normalize(b) {
		return 1
	}
	return 0
}

// digitsEqual compares only the digits of two strings (phone formats).
func digitsEqual(a, b string) float64 {
	if onlyDigits(a) == onlyDigits(b) {
		return 1
	}
	return 0
}

func onlyDigits(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] >= '0' && s[i] <= '9' {
			out = append(out, s[i])
		}
	}
	return string(out)
}

// nameSim combines trigram and token overlap, tolerant of the suffix
// dropping and decoration that sources apply to business names.
func nameSim(a, b string) float64 {
	an, bn := textproc.Normalize(a), textproc.Normalize(b)
	tri := textproc.TrigramSim(an, bn)
	// Containment: "gochi fusion tapas" vs "gochi" — score the shorter
	// against its best containment in the longer.
	at, bt := textproc.TokenSet(textproc.Tokenize(an)), textproc.TokenSet(textproc.Tokenize(bn))
	small, large := at, bt
	if len(bt) < len(at) {
		small, large = bt, at
	}
	contained := 0
	for t := range small {
		if large[t] {
			contained++
		}
	}
	var cont float64
	if len(small) > 0 {
		cont = float64(contained) / float64(len(small))
	}
	if cont > tri {
		return cont
	}
	return tri
}

// RestaurantComparators returns the standard comparator set for the
// restaurant concept. M/U defaults reflect the synthetic corpus's noise
// profile and can be re-estimated with EstimateMU.
func RestaurantComparators() []Comparator {
	return []Comparator{
		{Key: "name", Sim: nameSim, AgreeAt: 0.75, M: 0.95, U: 0.02, MostSpecific: true},
		// U(zip) accounts for blocking: candidate pairs are largely generated
		// by shared zip, so zip agreement among non-matches is common.
		{Key: "zip", Sim: equalNorm, AgreeAt: 1, M: 0.97, U: 0.10},
		{Key: "phone", Sim: digitsEqual, AgreeAt: 1, M: 0.90, U: 0.001},
		{Key: "street", Sim: textproc.TrigramSim, AgreeAt: 0.8, M: 0.85, U: 0.01},
		{Key: "city", Sim: equalNorm, AgreeAt: 1, M: 0.98, U: 0.15},
		{Key: "cuisine", Sim: equalNorm, AgreeAt: 1, M: 0.9, U: 0.12},
	}
}

// PublicationComparators returns the comparator set for publications.
func PublicationComparators() []Comparator {
	return []Comparator{
		{Key: "title", Sim: nameSim, AgreeAt: 0.85, M: 0.97, U: 0.005, MostSpecific: true},
		{Key: "venue", Sim: equalNorm, AgreeAt: 1, M: 0.95, U: 0.15},
		{Key: "year", Sim: equalNorm, AgreeAt: 1, M: 0.97, U: 0.15},
	}
}

// Decision is the three-way Fellegi–Sunter outcome.
type Decision int

// Decisions.
const (
	NonMatch Decision = iota
	Possible
	Match
)

// String names the decision.
func (d Decision) String() string {
	switch d {
	case Match:
		return "match"
	case Possible:
		return "possible"
	default:
		return "nonmatch"
	}
}

// Matcher scores record pairs with a comparator set and two thresholds on
// the summed log-likelihood ratio.
type Matcher struct {
	Comparators []Comparator
	// Upper: scores >= Upper are matches; scores <= Lower are non-matches;
	// in between is the clerical-review band ("possible").
	Upper, Lower float64
}

// NewMatcher returns a matcher with thresholds suited to the comparator
// weights (Upper 4.5 ≈ odds 90:1, Lower 0).
func NewMatcher(comps []Comparator) *Matcher {
	return &Matcher{Comparators: comps, Upper: 4.5, Lower: 0}
}

// CompareAttr compares one attribute of two records.
func CompareAttr(c Comparator, a, b *lrec.Record) Agreement {
	av, aok := a.Best(c.Key)
	bv, bok := b.Best(c.Key)
	if !aok || !bok {
		return AgreementMissing
	}
	_ = av
	_ = bv
	if c.MostSpecific {
		if c.Sim(mostSpecific(a.All(c.Key)), mostSpecific(b.All(c.Key))) >= c.AgreeAt {
			return Agree
		}
		return Disagree
	}
	// Compare against all values, take the best: multi-valued attributes
	// agree if any pairing agrees.
	best := 0.0
	for _, x := range a.All(c.Key) {
		for _, y := range b.All(c.Key) {
			if s := c.Sim(x.Value, y.Value); s > best {
				best = s
			}
		}
	}
	if best >= c.AgreeAt {
		return Agree
	}
	return Disagree
}

// mostSpecific picks the longest value (by token count, then length, then
// lexicographically) — the most specific known form of a name.
func mostSpecific(vals []lrec.AttrValue) string {
	best := ""
	bestToks := -1
	for _, v := range vals {
		n := len(textproc.Tokenize(v.Value))
		if n > bestToks ||
			(n == bestToks && (len(v.Value) > len(best) ||
				(len(v.Value) == len(best) && v.Value < best))) {
			best = v.Value
			bestToks = n
		}
	}
	return best
}

// Score returns the total log-likelihood ratio for the pair.
func (m *Matcher) Score(a, b *lrec.Record) float64 {
	var s float64
	for _, c := range m.Comparators {
		s += c.Weight(CompareAttr(c, a, b))
	}
	return s
}

// Decide classifies the pair.
func (m *Matcher) Decide(a, b *lrec.Record) Decision {
	s := m.Score(a, b)
	switch {
	case s >= m.Upper:
		return Match
	case s <= m.Lower:
		return NonMatch
	default:
		return Possible
	}
}

// LabeledPair is a training pair for M/U estimation.
type LabeledPair struct {
	A, B *lrec.Record
	Same bool
}

// EstimateMU re-estimates each comparator's M and U probabilities from
// labeled pairs (the supervised variant of Fellegi–Sunter parameter
// fitting), with add-one smoothing. Comparators absent from the data keep
// their priors.
func EstimateMU(comps []Comparator, pairs []LabeledPair) []Comparator {
	out := make([]Comparator, len(comps))
	copy(out, comps)
	for i, c := range out {
		agreeSame, totalSame := 1.0, 2.0 // smoothing
		agreeDiff, totalDiff := 1.0, 2.0
		for _, p := range pairs {
			a := CompareAttr(c, p.A, p.B)
			if a == AgreementMissing {
				continue
			}
			if p.Same {
				totalSame++
				if a == Agree {
					agreeSame++
				}
			} else {
				totalDiff++
				if a == Agree {
					agreeDiff++
				}
			}
		}
		if totalSame > 2 {
			out[i].M = clampProb(agreeSame / totalSame)
		}
		if totalDiff > 2 {
			out[i].U = clampProb(agreeDiff / totalDiff)
		}
	}
	return out
}

func clampProb(p float64) float64 {
	const eps = 1e-4
	if p < eps {
		return eps
	}
	if p > 1-eps {
		return 1 - eps
	}
	return p
}

// Pair is an unordered candidate record pair (IDs sorted).
type Pair struct {
	A, B string
}

// MakePair returns the canonical ordering of a pair.
func MakePair(a, b string) Pair {
	if b < a {
		a, b = b, a
	}
	return Pair{A: a, B: b}
}

// BlockBy groups records by one or more keys and emits all within-block
// pairs, deduplicated. Key functions returning "" exclude the record from
// that blocking pass.
func BlockBy(records []*lrec.Record, keys ...func(*lrec.Record) string) []Pair {
	seen := make(map[Pair]bool)
	var out []Pair
	for _, key := range keys {
		blocks := make(map[string][]string)
		for _, r := range records {
			k := key(r)
			if k == "" {
				continue
			}
			blocks[k] = append(blocks[k], r.ID)
		}
		// Deterministic block order.
		bkeys := make([]string, 0, len(blocks))
		for k := range blocks {
			bkeys = append(bkeys, k)
		}
		sort.Strings(bkeys)
		for _, k := range bkeys {
			ids := blocks[k]
			sort.Strings(ids)
			for i := 0; i < len(ids); i++ {
				for j := i + 1; j < len(ids); j++ {
					p := MakePair(ids[i], ids[j])
					if !seen[p] {
						seen[p] = true
						out = append(out, p)
					}
				}
			}
		}
	}
	return out
}

// ZipBlock blocks on the record's zip value.
func ZipBlock(r *lrec.Record) string { return textproc.Normalize(r.Get("zip")) }

// NameTokenBlock blocks on the first non-stopword name token.
func NameTokenBlock(r *lrec.Record) string {
	name := r.Get("name")
	if name == "" {
		name = r.Get("title")
	}
	for _, t := range textproc.RemoveStopwords(textproc.Tokenize(name)) {
		return t
	}
	return ""
}

// PhoneBlock blocks on phone digits.
func PhoneBlock(r *lrec.Record) string { return onlyDigits(r.Get("phone")) }
