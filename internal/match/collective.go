package match

import (
	"sort"

	"conceptweb/internal/lrec"
)

// Collective matching (§6): rather than deciding pairs independently,
// accepted matches merge evidence and can trigger further matches — the
// "iterative [approach], where matching decisions trigger new matches" of
// Bhattacharya & Getoor. The implementation clusters with union-find and
// re-scores merged cluster representatives until fixpoint.

// unionFind is a standard disjoint-set forest with path compression.
type unionFind struct {
	parent map[string]string
}

func newUnionFind() *unionFind {
	return &unionFind{parent: make(map[string]string)}
}

func (u *unionFind) find(x string) string {
	p, ok := u.parent[x]
	if !ok || p == x {
		u.parent[x] = x
		return x
	}
	root := u.find(p)
	u.parent[x] = root
	return root
}

// union merges the sets of a and b; the lexicographically smaller root wins,
// keeping cluster ids deterministic.
func (u *unionFind) union(a, b string) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if rb < ra {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
}

// Cluster is one resolved entity: the representative (merged) record and the
// member record IDs.
type Cluster struct {
	Rep     *lrec.Record
	Members []string
}

// CollectiveOptions configures iterative collective matching.
type CollectiveOptions struct {
	// MaxRounds bounds the merge-rescore loop (default 3).
	MaxRounds int
	// Blockers generate candidate pairs each round.
	Blockers []func(*lrec.Record) string
}

// DefaultCollectiveOptions returns the standard configuration.
func DefaultCollectiveOptions() CollectiveOptions {
	return CollectiveOptions{
		MaxRounds: 3,
		Blockers:  []func(*lrec.Record) string{ZipBlock, NameTokenBlock, PhoneBlock},
	}
}

// Resolve clusters records of one concept. Pairwise decisions use m; after
// each round, clusters merge their attribute evidence and the merged
// representatives are re-blocked and re-scored, so a chain like
// "Gochi Fusion Tapas" ← "Gochi" → "Gochi Japanese Restaurant" resolves even
// when the two endpoints would not match directly.
func Resolve(records []*lrec.Record, m *Matcher, opts CollectiveOptions) []Cluster {
	if opts.MaxRounds <= 0 {
		opts.MaxRounds = 3
	}
	if len(opts.Blockers) == 0 {
		opts.Blockers = DefaultCollectiveOptions().Blockers
	}
	uf := newUnionFind()
	for _, r := range records {
		uf.find(r.ID)
	}
	byID := make(map[string]*lrec.Record, len(records))
	for _, r := range records {
		byID[r.ID] = r
	}

	reps := make([]*lrec.Record, len(records))
	for i, r := range records {
		reps[i] = r.Clone()
	}

	for round := 0; round < opts.MaxRounds; round++ {
		pairs := BlockBy(reps, opts.Blockers...)
		merged := false
		repByID := make(map[string]*lrec.Record, len(reps))
		for _, r := range reps {
			repByID[r.ID] = r
		}
		for _, p := range pairs {
			a, b := repByID[p.A], repByID[p.B]
			if a == nil || b == nil || uf.find(a.ID) == uf.find(b.ID) {
				continue
			}
			if m.Decide(a, b) == Match {
				uf.union(a.ID, b.ID)
				merged = true
			}
		}
		if !merged {
			break
		}
		// Rebuild representatives: one merged record per cluster root.
		groups := make(map[string][]*lrec.Record)
		for _, r := range records {
			root := uf.find(r.ID)
			groups[root] = append(groups[root], r)
		}
		reps = reps[:0]
		roots := make([]string, 0, len(groups))
		for root := range groups {
			roots = append(roots, root)
		}
		sort.Strings(roots)
		for _, root := range roots {
			rep := lrec.NewRecord(root, groups[root][0].Concept)
			for _, r := range groups[root] {
				rep.Merge(r) //nolint:errcheck // same concept by construction
			}
			reps = append(reps, rep)
		}
	}

	// Emit final clusters.
	groups := make(map[string][]string)
	for _, r := range records {
		root := uf.find(r.ID)
		groups[root] = append(groups[root], r.ID)
	}
	roots := make([]string, 0, len(groups))
	for root := range groups {
		roots = append(roots, root)
	}
	sort.Strings(roots)
	out := make([]Cluster, 0, len(groups))
	for _, root := range roots {
		ids := groups[root]
		sort.Strings(ids)
		rep := lrec.NewRecord(root, byID[ids[0]].Concept)
		for _, id := range ids {
			rep.Merge(byID[id]) //nolint:errcheck // same concept by construction
		}
		out = append(out, Cluster{Rep: rep, Members: ids})
	}
	return out
}

// PairwiseResolve is the non-collective baseline: one blocking pass, one
// scoring pass, transitive closure of accepted matches, no evidence merging.
func PairwiseResolve(records []*lrec.Record, m *Matcher, blockers ...func(*lrec.Record) string) []Cluster {
	if len(blockers) == 0 {
		blockers = DefaultCollectiveOptions().Blockers
	}
	uf := newUnionFind()
	byID := make(map[string]*lrec.Record, len(records))
	for _, r := range records {
		byID[r.ID] = r
		uf.find(r.ID)
	}
	for _, p := range BlockBy(records, blockers...) {
		a, b := byID[p.A], byID[p.B]
		if m.Decide(a, b) == Match {
			uf.union(a.ID, b.ID)
		}
	}
	groups := make(map[string][]string)
	for _, r := range records {
		groups[uf.find(r.ID)] = append(groups[uf.find(r.ID)], r.ID)
	}
	roots := make([]string, 0, len(groups))
	for root := range groups {
		roots = append(roots, root)
	}
	sort.Strings(roots)
	out := make([]Cluster, 0, len(groups))
	for _, root := range roots {
		ids := groups[root]
		sort.Strings(ids)
		rep := lrec.NewRecord(root, byID[ids[0]].Concept)
		for _, id := range ids {
			rep.Merge(byID[id]) //nolint:errcheck
		}
		out = append(out, Cluster{Rep: rep, Members: ids})
	}
	return out
}
