package match

import (
	"sort"

	"conceptweb/internal/lrec"
	"conceptweb/internal/textproc"
)

// Collective matching (§6): rather than deciding pairs independently,
// accepted matches merge evidence and can trigger further matches — the
// "iterative [approach], where matching decisions trigger new matches" of
// Bhattacharya & Getoor. The implementation clusters with union-find and
// re-scores merged cluster representatives until fixpoint.

// unionFind is a standard disjoint-set forest with path compression.
type unionFind struct {
	parent map[string]string
}

func newUnionFind() *unionFind {
	return &unionFind{parent: make(map[string]string)}
}

func (u *unionFind) find(x string) string {
	p, ok := u.parent[x]
	if !ok || p == x {
		u.parent[x] = x
		return x
	}
	root := u.find(p)
	u.parent[x] = root
	return root
}

// union merges the sets of a and b; the lexicographically smaller root wins,
// keeping cluster ids deterministic.
func (u *unionFind) union(a, b string) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if rb < ra {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
}

// Cluster is one resolved entity: the representative (merged) record and the
// member record IDs.
type Cluster struct {
	Rep     *lrec.Record
	Members []string
}

// CollectiveOptions configures iterative collective matching.
type CollectiveOptions struct {
	// MaxRounds bounds the merge-rescore loop (default 3).
	MaxRounds int
	// Blockers generate candidate pairs each round.
	Blockers []func(*lrec.Record) string
	// MaxBlock caps the block size scored all-pairs (default 256). Larger
	// blocks — the heavy-tail aggregator hosts — switch to a
	// sorted-neighborhood pass: members ordered by normalized name, each
	// compared to its next Window neighbors, so a block of B costs B×Window
	// pairs instead of B². Transitive closure plus rounds of merged-rep
	// re-blocking recover matches farther apart than Window.
	MaxBlock int
	// Window is the sorted-neighborhood comparison distance (default 12).
	Window int
}

// DefaultCollectiveOptions returns the standard configuration.
func DefaultCollectiveOptions() CollectiveOptions {
	return CollectiveOptions{
		MaxRounds: 3,
		Blockers:  []func(*lrec.Record) string{ZipBlock, NameTokenBlock, PhoneBlock},
		MaxBlock:  defaultMaxBlock,
		Window:    defaultWindow,
	}
}

// Cap-or-split defaults; see CollectiveOptions.MaxBlock.
const (
	defaultMaxBlock = 256
	defaultWindow   = 12
)

// neighborSortKey orders members of an oversized block so that likely
// matches are adjacent: the normalized primary name, with the record ID as a
// deterministic tie-break.
func neighborSortKey(r *lrec.Record) string {
	name := r.Get("name")
	if name == "" {
		name = r.Get("title")
	}
	return textproc.Normalize(name)
}

// forEachCandidatePair streams the within-block pairs of every blocker
// partition to visit, one block at a time — no materialized global pair
// slice, no cross-blocker dedup map; the caller's same-root check makes
// duplicate visits free. Blocks at or under maxBlock are scored all-pairs in
// record-ID order (exactly the pairs BlockBy emits); larger blocks get the
// sorted-neighborhood pass. Iteration order is deterministic: blockers in
// argument order, block keys sorted, members sorted.
func forEachCandidatePair(reps []*lrec.Record, blockers []func(*lrec.Record) string, maxBlock, window int, visit func(a, b *lrec.Record)) {
	blocks := make(map[string][]*lrec.Record)
	for _, key := range blockers {
		clear(blocks)
		for _, r := range reps {
			k := key(r)
			if k == "" {
				continue
			}
			blocks[k] = append(blocks[k], r)
		}
		bkeys := make([]string, 0, len(blocks))
		for k := range blocks {
			bkeys = append(bkeys, k)
		}
		sort.Strings(bkeys)
		for _, k := range bkeys {
			members := blocks[k]
			if len(members) <= maxBlock {
				sort.Slice(members, func(i, j int) bool { return members[i].ID < members[j].ID })
				for i := 0; i < len(members); i++ {
					for j := i + 1; j < len(members); j++ {
						visit(members[i], members[j])
					}
				}
				continue
			}
			skeys := make([]string, len(members))
			for i, r := range members {
				skeys[i] = neighborSortKey(r)
			}
			sort.Sort(&neighborOrder{keys: skeys, recs: members})
			for i := 0; i < len(members); i++ {
				for j := i + 1; j < len(members) && j <= i+window; j++ {
					visit(members[i], members[j])
				}
			}
		}
	}
}

// neighborOrder sorts a block's members and their precomputed sort keys
// together: key ascending, then ID ascending.
type neighborOrder struct {
	keys []string
	recs []*lrec.Record
}

func (o *neighborOrder) Len() int { return len(o.recs) }
func (o *neighborOrder) Less(i, j int) bool {
	if o.keys[i] != o.keys[j] {
		return o.keys[i] < o.keys[j]
	}
	return o.recs[i].ID < o.recs[j].ID
}
func (o *neighborOrder) Swap(i, j int) {
	o.keys[i], o.keys[j] = o.keys[j], o.keys[i]
	o.recs[i], o.recs[j] = o.recs[j], o.recs[i]
}

// Resolve clusters records of one concept. Pairwise decisions use m; after
// each round, clusters merge their attribute evidence and the merged
// representatives are re-blocked and re-scored, so a chain like
// "Gochi Fusion Tapas" ← "Gochi" → "Gochi Japanese Restaurant" resolves even
// when the two endpoints would not match directly.
//
// Pairs are streamed block by block (forEachCandidatePair) rather than
// materialized, and between rounds only the representatives of clusters that
// actually merged are rebuilt — untouched clusters keep their record (a
// single-member cluster's representative is the input record itself, never
// cloned). On the heavy-tail block-size distributions of aggregator sites
// this turns the formerly quadratic within-block work into B×Window while
// keeping the fixpoint deterministic at any block layout.
func Resolve(records []*lrec.Record, m *Matcher, opts CollectiveOptions) []Cluster {
	if opts.MaxRounds <= 0 {
		opts.MaxRounds = 3
	}
	if len(opts.Blockers) == 0 {
		opts.Blockers = DefaultCollectiveOptions().Blockers
	}
	if opts.MaxBlock <= 0 {
		opts.MaxBlock = defaultMaxBlock
	}
	if opts.Window <= 0 {
		opts.Window = defaultWindow
	}
	uf := newUnionFind()
	byID := make(map[string]*lrec.Record, len(records))
	for _, r := range records {
		uf.find(r.ID)
		byID[r.ID] = r
	}

	// Current cluster representatives. Input records double as their own
	// initial representatives: blocking and Decide only read them.
	reps := make([]*lrec.Record, len(records))
	copy(reps, records)

	for round := 0; round < opts.MaxRounds; round++ {
		dirty := make(map[string]bool)
		forEachCandidatePair(reps, opts.Blockers, opts.MaxBlock, opts.Window, func(a, b *lrec.Record) {
			ra, rb := uf.find(a.ID), uf.find(b.ID)
			if ra == rb {
				return
			}
			if m.Decide(a, b) == Match {
				uf.union(a.ID, b.ID)
				dirty[ra] = true
				dirty[rb] = true
			}
		})
		if len(dirty) == 0 {
			break
		}
		// Rebuild representatives only for clusters whose membership grew
		// this round; unmerged clusters keep their current representative.
		dirtyRoot := make(map[string]bool, len(dirty))
		for r := range dirty {
			dirtyRoot[uf.find(r)] = true
		}
		groups := make(map[string][]*lrec.Record)
		for _, r := range records {
			if root := uf.find(r.ID); dirtyRoot[root] {
				groups[root] = append(groups[root], r)
			}
		}
		kept := reps[:0]
		for _, rep := range reps {
			if !dirtyRoot[uf.find(rep.ID)] {
				kept = append(kept, rep)
			}
		}
		roots := make([]string, 0, len(groups))
		for root := range groups {
			roots = append(roots, root)
		}
		sort.Strings(roots)
		for _, root := range roots {
			rep := lrec.NewRecord(root, groups[root][0].Concept)
			for _, r := range groups[root] {
				rep.Merge(r) //nolint:errcheck // same concept by construction
			}
			kept = append(kept, rep)
		}
		reps = kept
	}

	// Emit final clusters.
	groups := make(map[string][]string)
	for _, r := range records {
		root := uf.find(r.ID)
		groups[root] = append(groups[root], r.ID)
	}
	roots := make([]string, 0, len(groups))
	for root := range groups {
		roots = append(roots, root)
	}
	sort.Strings(roots)
	out := make([]Cluster, 0, len(groups))
	for _, root := range roots {
		ids := groups[root]
		sort.Strings(ids)
		rep := lrec.NewRecord(root, byID[ids[0]].Concept)
		for _, id := range ids {
			rep.Merge(byID[id]) //nolint:errcheck // same concept by construction
		}
		out = append(out, Cluster{Rep: rep, Members: ids})
	}
	return out
}

// PairwiseResolve is the non-collective baseline: one blocking pass, one
// scoring pass, transitive closure of accepted matches, no evidence merging.
func PairwiseResolve(records []*lrec.Record, m *Matcher, blockers ...func(*lrec.Record) string) []Cluster {
	if len(blockers) == 0 {
		blockers = DefaultCollectiveOptions().Blockers
	}
	uf := newUnionFind()
	byID := make(map[string]*lrec.Record, len(records))
	for _, r := range records {
		byID[r.ID] = r
		uf.find(r.ID)
	}
	for _, p := range BlockBy(records, blockers...) {
		a, b := byID[p.A], byID[p.B]
		if m.Decide(a, b) == Match {
			uf.union(a.ID, b.ID)
		}
	}
	groups := make(map[string][]string)
	for _, r := range records {
		groups[uf.find(r.ID)] = append(groups[uf.find(r.ID)], r.ID)
	}
	roots := make([]string, 0, len(groups))
	for root := range groups {
		roots = append(roots, root)
	}
	sort.Strings(roots)
	out := make([]Cluster, 0, len(groups))
	for _, root := range roots {
		ids := groups[root]
		sort.Strings(ids)
		rep := lrec.NewRecord(root, byID[ids[0]].Concept)
		for _, id := range ids {
			rep.Merge(byID[id]) //nolint:errcheck
		}
		out = append(out, Cluster{Rep: rep, Members: ids})
	}
	return out
}
