package match

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"conceptweb/internal/lrec"
	"conceptweb/internal/textproc"
)

// The decomposed, pruned MatchTokens must be indistinguishable from the
// naive reference scorer: same candidates, same bit-exact scores, same
// order, same tie-breaks, at every k. These tests drive both over
// randomized corpora and token streams.

// propVocab returns a vocabulary of 3-character words: short enough that
// Stem leaves them untouched, so query tokens equal model tokens.
func propVocab(n int) []string {
	v := make([]string, n)
	for i := range v {
		v[i] = fmt.Sprintf("w%02d", i)
	}
	return v
}

// randomTextCorpus builds a record corpus whose attribute values are drawn
// from vocab. Roughly one record in eight duplicates the previous record's
// content under a different ID, manufacturing exact score ties that exercise
// the ID tie-break.
func randomTextCorpus(rng *rand.Rand, vocab []string, n int) []*lrec.Record {
	attrs := []string{"name", "street", "city", "menu", "cuisine"}
	recs := make([]*lrec.Record, 0, n)
	for i := 0; i < n; i++ {
		r := lrec.NewRecord(fmt.Sprintf("rec%03d", i), "restaurant")
		if len(recs) > 0 && rng.Intn(8) == 0 {
			prev := recs[len(recs)-1]
			for _, k := range prev.Keys() {
				for _, v := range prev.All(k) {
					r.Add(k, lrec.AttrValue{Value: v.Value, Confidence: v.Confidence})
				}
			}
			recs = append(recs, r)
			continue
		}
		for _, key := range attrs {
			if key != "name" && rng.Intn(3) == 0 {
				continue
			}
			words := 1 + rng.Intn(4)
			val := ""
			for w := 0; w < words; w++ {
				if w > 0 {
					val += " "
				}
				val += vocab[rng.Intn(len(vocab))]
			}
			r.Add(key, lrec.AttrValue{Value: val, Confidence: 0.9})
		}
		recs = append(recs, r)
	}
	return recs
}

// randomQuery draws a token stream: mostly vocabulary words, some
// out-of-vocabulary noise the informative filter must drop.
func randomQuery(rng *rand.Rand, vocab []string, n int) []string {
	q := make([]string, n)
	for i := range q {
		if rng.Intn(5) == 0 {
			q[i] = fmt.Sprintf("zz%d", rng.Intn(50)) // not in any model
		} else {
			q[i] = vocab[rng.Intn(len(vocab))]
		}
	}
	return q
}

func sameScored(t *testing.T, got, want []ScoredRecord, ctx string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d results, want %d", ctx, len(got), len(want))
	}
	for i := range want {
		if got[i].Record.ID != want[i].Record.ID {
			t.Fatalf("%s: result %d: got record %q, want %q",
				ctx, i, got[i].Record.ID, want[i].Record.ID)
		}
		if math.Float64bits(got[i].Score) != math.Float64bits(want[i].Score) {
			t.Fatalf("%s: result %d (%s): got score %v (%x), want %v (%x)",
				ctx, i, got[i].Record.ID,
				got[i].Score, math.Float64bits(got[i].Score),
				want[i].Score, math.Float64bits(want[i].Score))
		}
	}
}

// TestMatchTokensPrunedEqualsReference is the lossless-pruning property
// test: across random corpora, queries, and ks, the sparse scorer's output
// is bit-identical to the naive scorer's.
func TestMatchTokensPrunedEqualsReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	vocab := propVocab(60)
	ks := []int{0, 1, 2, 3, 7, 1000}
	for corpus := 0; corpus < 40; corpus++ {
		recs := randomTextCorpus(rng, vocab, 20+rng.Intn(60))
		tm := NewTextMatcher(recs)
		for q := 0; q < 25; q++ {
			query := randomQuery(rng, vocab, rng.Intn(40))
			k := ks[rng.Intn(len(ks))]
			got := tm.MatchTokens(query, k)
			want := tm.matchTokensReference(query, k)
			sameScored(t, got, want,
				fmt.Sprintf("corpus %d query %d k=%d", corpus, q, k))
		}
	}
}

// TestBestTokensEqualsReference pins the minScore-pruned Best path: for any
// threshold, BestTokens agrees with thresholding the reference's top-1.
func TestBestTokensEqualsReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vocab := propVocab(50)
	thresholds := []float64{math.Inf(-1), -1, 0, 0.1, 0.35, 1, 3, math.Inf(1)}
	for corpus := 0; corpus < 25; corpus++ {
		recs := randomTextCorpus(rng, vocab, 15+rng.Intn(50))
		tm := NewTextMatcher(recs)
		for q := 0; q < 20; q++ {
			query := randomQuery(rng, vocab, rng.Intn(35))
			for _, min := range thresholds {
				gotRec, gotOK := tm.BestTokens(query, min)
				top := tm.matchTokensReference(query, 1)
				wantOK := len(top) > 0 && top[0].Score >= min
				if gotOK != wantOK {
					t.Fatalf("corpus %d query %d min=%v: ok=%v, want %v",
						corpus, q, min, gotOK, wantOK)
				}
				if gotOK && gotRec.ID != top[0].Record.ID {
					t.Fatalf("corpus %d query %d min=%v: got %q, want %q",
						corpus, q, min, gotRec.ID, top[0].Record.ID)
				}
			}
		}
	}
}

// TestMatchPipelineEqualsReference runs the full Match path (tokenize →
// stem → score) over free text, including repeated calls on one matcher to
// exercise the pooled scratch state.
func TestMatchPipelineEqualsReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	vocab := propVocab(40)
	recs := randomTextCorpus(rng, vocab, 64)
	tm := NewTextMatcher(recs)
	for q := 0; q < 60; q++ {
		n := 4 + rng.Intn(30)
		text := ""
		for i := 0; i < n; i++ {
			if i > 0 {
				text += " "
			}
			text += vocab[rng.Intn(len(vocab))]
		}
		got := tm.Match(text, 3)
		toks := textproc.StemInPlace(textproc.RemoveStopwordsInPlace(textproc.Tokenize(text)))
		want := tm.matchTokensReference(toks, 3)
		sameScored(t, got, want, fmt.Sprintf("text query %d", q))
	}
}
