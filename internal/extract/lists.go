package extract

import (
	"conceptweb/internal/htmlx"
)

// PageLists returns, for every repeated-structure list on the page, the
// primary text of each item (the first text span, which in menu/listing
// templates is the item's name). It is the structural half of aggregator
// mining (§4.2): bootstrapping supplies the semantics by matching these
// texts against already-extracted records.
func PageLists(doc *htmlx.Node, minItems int) [][]string {
	var out [][]string
	for _, group := range repeatedGroups(doc, minItems) {
		items := make([]string, 0, len(group))
		for _, item := range group {
			spans := itemSpans(item)
			if len(spans) == 0 {
				continue
			}
			items = append(items, spans[0].text)
		}
		if len(items) >= minItems {
			out = append(out, items)
		}
	}
	return out
}
