package extract

import (
	"conceptweb/internal/htmlx"
	"conceptweb/internal/webgraph"
)

// CitationExtractor applies a trained sequence tagger to citation-like list
// items, producing publication candidates. It is the deployment vehicle for
// the §4.1 semantic baseline: structure finds the citation strings, the
// tagger segments them.
type CitationExtractor struct {
	Tagger *Tagger
	// MinItems is the minimum repeated-sibling count to treat a list as a
	// publication list (default 2).
	MinItems int
}

// Name implements Operator.
func (e *CitationExtractor) Name() string { return "citation-tagger" }

// Extract implements Operator.
func (e *CitationExtractor) Extract(p *webgraph.Page) []*Candidate {
	return e.ExtractAnalyzed(Analyze(p))
}

// ExtractAnalyzed implements Operator over a shared page analysis.
func (e *CitationExtractor) ExtractAnalyzed(pa *PageAnalysis) []*Candidate {
	minItems := e.MinItems
	if minItems < 2 {
		minItems = 2
	}
	var out []*Candidate
	for _, group := range pa.Groups(minItems) {
		if group[0].Data != "li" {
			continue
		}
		for _, item := range group {
			if c := e.extractItem(pa, item); c != nil {
				out = append(out, c)
			}
		}
	}
	return out
}

func (e *CitationExtractor) extractItem(pa *PageAnalysis, item *htmlx.Node) *Candidate {
	text := pa.itemTextOf(item).full
	tokens := TokenizeCitation(text)
	if len(tokens) < 5 {
		return nil
	}
	labels := e.Tagger.Predict(tokens)
	spans := SpansOf(tokens, labels)
	title, hasTitle := spans[LabelTitle]
	if !hasTitle {
		return nil
	}
	cand := NewCandidate("publication", pa.Page.URL, e.Name())
	cand.Add("title", title, 0.8)
	if v, ok := spans[LabelVenue]; ok {
		cand.Add("venue", v, 0.8)
	}
	if y, ok := spans[LabelYear]; ok {
		cand.Add("year", y, 0.85)
	}
	if a, ok := spans[LabelAuthor]; ok {
		cand.Add("authors", a, 0.7)
	}
	return cand
}
