// Package extract implements the paper's extraction layer (§4): a common
// operator framework with lineage and confidence propagation, plus three
// extractor families —
//
//   - wrapper induction (site-centric structural baseline, §4.1),
//   - a sequence tagger trained with the structured perceptron
//     (site-centric semantic baseline, the paper's CRF stand-in, §4.1),
//   - domain-centric list extraction combining repeated HTML structure with
//     domain knowledge and statistical constraints (§4.2), which is the
//     technique the paper argues makes a web of concepts feasible.
package extract

import (
	"fmt"
	"sort"
	"strings"

	"conceptweb/internal/lrec"
	"conceptweb/internal/textproc"
	"conceptweb/internal/webgraph"
)

// Candidate is a proto-record produced by an extraction operator: attribute
// values with confidences, plus lineage (source page and operator chain).
// Candidates become lrecs once an ID is assigned.
type Candidate struct {
	Concept    string
	Attrs      map[string][]lrec.AttrValue
	SourceURL  string
	Operators  []string
	Confidence float64
}

// NewCandidate returns an empty candidate for concept extracted from url by
// operator op.
func NewCandidate(concept, url, op string) *Candidate {
	return &Candidate{
		Concept:    concept,
		Attrs:      make(map[string][]lrec.AttrValue),
		SourceURL:  url,
		Operators:  []string{op},
		Confidence: 1,
	}
}

// Add records an attribute value with the candidate's lineage attached.
func (c *Candidate) Add(key, value string, conf float64) {
	if strings.TrimSpace(value) == "" {
		return
	}
	vals := c.Attrs[key]
	norm := textproc.Normalize(value)
	for _, v := range vals {
		if textproc.Normalize(v.Value) == norm {
			return
		}
	}
	c.Attrs[key] = append(vals, lrec.AttrValue{
		Value:      value,
		Confidence: conf,
		Prov:       lrec.Provenance{SourceURL: c.SourceURL, Operators: c.Operators},
	})
}

// Get returns the first value for key, or "".
func (c *Candidate) Get(key string) string {
	if vs := c.Attrs[key]; len(vs) > 0 {
		return vs[0].Value
	}
	return ""
}

// Keys returns the candidate's attribute keys, sorted.
func (c *Candidate) Keys() []string {
	out := make([]string, 0, len(c.Attrs))
	for k := range c.Attrs {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Chain returns a copy of the candidate with op appended to its operator
// chain and confidence scaled by factor — how downstream operators (e.g.
// matchers) record their participation in lineage (§7.3).
func (c *Candidate) Chain(op string, factor float64) *Candidate {
	cp := &Candidate{
		Concept:    c.Concept,
		Attrs:      make(map[string][]lrec.AttrValue, len(c.Attrs)),
		SourceURL:  c.SourceURL,
		Operators:  append(append([]string(nil), c.Operators...), op),
		Confidence: c.Confidence * factor,
	}
	for k, vs := range c.Attrs {
		nvs := make([]lrec.AttrValue, len(vs))
		copy(nvs, vs)
		for i := range nvs {
			nvs[i].Confidence *= factor
			nvs[i].Prov.Operators = cp.Operators
		}
		cp.Attrs[k] = nvs
	}
	return cp
}

// ToRecord converts the candidate into an lrec with the given id, stamping
// provenance sequence numbers from seq.
func (c *Candidate) ToRecord(id string, seq uint64) *lrec.Record {
	r := lrec.NewRecord(id, c.Concept)
	for k, vs := range c.Attrs {
		for _, v := range vs {
			v.Prov.Seq = seq
			r.Add(k, v)
		}
	}
	return r
}

// SynthesizeID builds a deterministic record ID from the candidate's
// identifying attributes: concept:normalized(name|title):qualifier, where
// the qualifier prefers phone digits (the strongest natural key — two
// businesses whose truncated names coincide still differ by phone), then
// zip, city, year. Two candidates describing the same instance from
// different sources get the same ID only if their names normalize
// identically — entity matching (internal/match) handles the rest.
func (c *Candidate) SynthesizeID() string {
	name := c.Get("name")
	if name == "" {
		name = c.Get("title")
	}
	qual := phoneDigits(c.Get("phone"))
	if qual == "" {
		qual = c.Get("zip")
	}
	if qual == "" {
		// Dated instances (events) are distinguished by date before place:
		// two "Jazz Concert"s in one city on different days are different
		// instances.
		qual = c.Get("date")
	}
	if qual == "" {
		qual = c.Get("city")
	}
	if qual == "" {
		qual = c.Get("year")
	}
	base := textproc.NormalizeKey(name)
	if base == "" {
		// Fall back to a content hash of all attributes.
		base = fmt.Sprintf("h%08x", webgraph.HashContent(flatten(c)))
	}
	id := c.Concept + ":" + base
	if q := textproc.NormalizeKey(qual); q != "" {
		id += ":" + q
	}
	return id
}

// phoneDigits extracts the digits of a phone value ("" if too few).
func phoneDigits(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] >= '0' && s[i] <= '9' {
			out = append(out, s[i])
		}
	}
	if len(out) < 7 {
		return ""
	}
	return string(out)
}

func flatten(c *Candidate) string {
	var b strings.Builder
	for _, k := range c.Keys() {
		for _, v := range c.Attrs[k] {
			b.WriteString(k)
			b.WriteByte('=')
			b.WriteString(v.Value)
			b.WriteByte(';')
		}
	}
	return b.String()
}

// Operator is one extraction step: given a crawled page, produce candidates.
// Implementations: ListExtractor, Wrapper, CitationExtractor, and the
// bootstrapping and matching layers built on top.
type Operator interface {
	// Name identifies the operator in lineage chains.
	Name() string
	// Extract returns candidate records found on the page (possibly none),
	// analyzing the page privately.
	Extract(p *webgraph.Page) []*Candidate
	// ExtractAnalyzed is Extract over a shared PageAnalysis, so operators
	// (and domains) running over the same page reuse one set of DOM passes
	// instead of each re-walking the tree.
	ExtractAnalyzed(pa *PageAnalysis) []*Candidate
}

// Pipeline runs several operators over a page sequence, concatenating their
// candidates. It is deliberately simple: cross-operator reconciliation is
// the job of internal/core, which owns the store.
type Pipeline struct {
	Ops []Operator
}

// Run applies every operator to every page, analyzing each page once.
func (pl *Pipeline) Run(pages []*webgraph.Page) []*Candidate {
	var out []*Candidate
	for _, p := range pages {
		pa := Analyze(p)
		for _, op := range pl.Ops {
			out = append(out, op.ExtractAnalyzed(pa)...)
		}
	}
	return out
}
