package extract

import (
	"reflect"
	"strings"
	"testing"
)

func TestCandidateAddDedup(t *testing.T) {
	c := NewCandidate("restaurant", "u.example/p", "op1")
	c.Add("phone", "408-555-0101", 0.9)
	c.Add("phone", "(408) 555 0101", 0.8) // same after normalization
	c.Add("phone", "408-555-0202", 0.7)
	if len(c.Attrs["phone"]) != 2 {
		t.Errorf("phones = %v", c.Attrs["phone"])
	}
	c.Add("empty", "   ", 1)
	if c.Get("empty") != "" {
		t.Error("blank value stored")
	}
}

func TestCandidateChain(t *testing.T) {
	c := NewCandidate("restaurant", "u.example/p", "listextract")
	c.Add("name", "Gochi", 0.9)
	c2 := c.Chain("match", 0.5)
	if !reflect.DeepEqual(c2.Operators, []string{"listextract", "match"}) {
		t.Errorf("ops = %v", c2.Operators)
	}
	if c2.Confidence != 0.5 {
		t.Errorf("conf = %f", c2.Confidence)
	}
	if got := c2.Attrs["name"][0].Confidence; got != 0.45 {
		t.Errorf("attr conf = %f", got)
	}
	// Original unchanged.
	if c.Confidence != 1 || len(c.Operators) != 1 {
		t.Error("Chain mutated original")
	}
	if got := c2.Attrs["name"][0].Prov.Operators; !reflect.DeepEqual(got, []string{"listextract", "match"}) {
		t.Errorf("prov ops = %v", got)
	}
}

func TestCandidateToRecord(t *testing.T) {
	c := NewCandidate("restaurant", "u.example/p", "op")
	c.Add("name", "Gochi", 0.9)
	c.Add("zip", "95014", 1)
	r := c.ToRecord("rest-1", 42)
	if r.ID != "rest-1" || r.Concept != "restaurant" {
		t.Errorf("record = %s", r)
	}
	v, _ := r.Best("name")
	if v.Prov.Seq != 42 || v.Prov.SourceURL != "u.example/p" {
		t.Errorf("prov = %+v", v.Prov)
	}
}

func TestSynthesizeID(t *testing.T) {
	a := NewCandidate("restaurant", "u1", "op")
	a.Add("name", "Gochi Fusion Tapas", 1)
	a.Add("zip", "95014", 1)
	b := NewCandidate("restaurant", "u2", "other-op")
	b.Add("name", "GOCHI fusion tapas", 1)
	b.Add("zip", "95014", 1)
	if a.SynthesizeID() != b.SynthesizeID() {
		t.Errorf("ids differ: %q vs %q", a.SynthesizeID(), b.SynthesizeID())
	}
	if !strings.HasPrefix(a.SynthesizeID(), "restaurant:") {
		t.Errorf("id = %q", a.SynthesizeID())
	}
	// Same name, different zip: different instances.
	c := NewCandidate("restaurant", "u3", "op")
	c.Add("name", "Gochi Fusion Tapas", 1)
	c.Add("zip", "94040", 1)
	if a.SynthesizeID() == c.SynthesizeID() {
		t.Error("different zips collide")
	}
	// No name at all: content-hash fallback, still deterministic.
	d := NewCandidate("restaurant", "u4", "op")
	d.Add("phone", "408-555-0101", 1)
	if d.SynthesizeID() == "" || d.SynthesizeID() != d.SynthesizeID() {
		t.Error("fallback id unstable")
	}
}

func TestCandidateKeysSorted(t *testing.T) {
	c := NewCandidate("x", "u", "op")
	c.Add("zeta", "1", 1)
	c.Add("alpha", "2", 1)
	if got := c.Keys(); !reflect.DeepEqual(got, []string{"alpha", "zeta"}) {
		t.Errorf("keys = %v", got)
	}
}
