package extract

import (
	"conceptweb/internal/htmlx"
	"conceptweb/internal/textproc"
	"conceptweb/internal/webgraph"
)

// KeyValueExtractor extracts records from label–value markup: property
// tables (<tr><th>Brand</th><td>Nicon</td></tr>) and definition lists
// (<dt>Telephone</dt><dd>…</dd>). It is the structural complement of the
// recognizer-driven extractors: where those recognize value *shapes*, this
// one reads the page's own labels, mapped into the domain's attribute keys.
type KeyValueExtractor struct {
	Concept string
	// Labels maps normalized page labels to record attribute keys, e.g.
	// "brand" -> "brand", "telephone" -> "phone", "resolution" -> "megapixels".
	Labels map[string]string
	// NameKey, when set, takes the record name from the page's first <h1>.
	NameKey string
	// MinAttrs is the minimum mapped attributes for a candidate (default 2).
	MinAttrs int
}

// Name implements Operator.
func (e *KeyValueExtractor) Name() string { return internOpName("keyvalue:", e.Concept) }

// Extract implements Operator.
func (e *KeyValueExtractor) Extract(p *webgraph.Page) []*Candidate {
	return e.ExtractAnalyzed(Analyze(p))
}

// ExtractAnalyzed implements Operator over a shared page analysis.
func (e *KeyValueExtractor) ExtractAnalyzed(pa *PageAnalysis) []*Candidate {
	minAttrs := e.MinAttrs
	if minAttrs <= 0 {
		minAttrs = 2
	}
	pairs := pa.Pairs()
	if len(pairs) == 0 {
		return nil
	}
	cand := NewCandidate(e.Concept, pa.Page.URL, e.Name())
	n := 0
	for _, pr := range pairs {
		key, ok := e.Labels[textproc.Normalize(pr[0])]
		if !ok || pr[1] == "" {
			continue
		}
		cand.Add(key, pr[1], 0.9)
		n++
	}
	if n < minAttrs {
		return nil
	}
	if e.NameKey != "" && cand.Get(e.NameKey) == "" {
		if h1 := pa.Page.Doc.FindFirst("h1"); h1 != nil {
			cand.Add(e.NameKey, cleanHeading(h1.Text()), 0.85)
		}
	}
	return []*Candidate{cand}
}

// collectPairs gathers (label, value) pairs from th/td rows and dt/dd runs.
func collectPairs(doc *htmlx.Node) [][2]string {
	var pairs [][2]string
	// Table rows: a tr whose first cell is th and second is td.
	for _, tr := range doc.FindAll("tr") {
		kids := tr.ChildElements()
		if len(kids) == 2 && kids[0].Data == "th" && kids[1].Data == "td" {
			pairs = append(pairs, [2]string{kids[0].Text(), kids[1].Text()})
		}
	}
	// Definition lists: alternating dt/dd children.
	for _, dl := range doc.FindAll("dl") {
		kids := dl.ChildElements()
		for i := 0; i+1 < len(kids); i++ {
			if kids[i].Data == "dt" && kids[i+1].Data == "dd" {
				pairs = append(pairs, [2]string{kids[i].Text(), kids[i+1].Text()})
			}
		}
	}
	return pairs
}

// ProductLabels returns the standard label map for camera-catalog pages.
func ProductLabels() map[string]string {
	return map[string]string{
		"brand":      "brand",
		"model":      "model",
		"price":      "price",
		"resolution": "megapixels",
	}
}

// BusinessLabels returns the label map for directory-style business pages.
func BusinessLabels() map[string]string {
	return map[string]string{
		"business":  "name",
		"name":      "name",
		"street":    "street",
		"address":   "street",
		"city":      "city",
		"zip":       "zip",
		"telephone": "phone",
		"phone":     "phone",
		"category":  "cuisine",
		"hours":     "hours",
	}
}
