package extract

import (
	"errors"
	"fmt"
	"sort"

	"conceptweb/internal/htmlx"
	"conceptweb/internal/textproc"
	"conceptweb/internal/webgraph"
)

// Wrapper induction (§4.1): learn per-site extraction rules from a few
// labeled example pages. This is the site-centric structural baseline the
// paper contrasts with domain-centric extraction — "with relatively few
// labeled examples, extraction rules, called wrappers, can be learnt", but
// "they rely on the existence of a structure" and do not transfer across
// sites. Experiment A1 measures exactly that failure mode.

// ErrNoRules is returned when induction cannot find any consistent rule.
var ErrNoRules = errors.New("extract: no consistent wrapper rules found")

// LabeledExample is one training page with its true attribute values.
type LabeledExample struct {
	Page  *webgraph.Page
	Attrs map[string]string
}

// wrapperRule locates an attribute on a page: the class-path signature of
// the node holding the value, and the occurrence index among nodes sharing
// that signature.
type wrapperRule struct {
	Sig   string
	Index int
}

// Wrapper is a learned site-specific extractor.
type Wrapper struct {
	Concept string
	Host    string
	Rules   map[string]wrapperRule
}

// Name implements Operator.
func (w *Wrapper) Name() string { return "wrapper:" + w.Host }

// InduceWrapper learns extraction rules for concept on host from labeled
// examples. For each attribute it finds, on each example page, the DOM nodes
// whose text matches the labeled value, keyed by (signature, index); the
// majority key across examples becomes the rule. Attributes with no
// consistent location are skipped; if no attribute yields a rule, ErrNoRules.
func InduceWrapper(concept, host string, examples []LabeledExample) (*Wrapper, error) {
	votes := make(map[string]map[wrapperRule]int) // attr -> rule -> count
	for _, ex := range examples {
		for attr, val := range ex.Attrs {
			want := textproc.Normalize(val)
			if want == "" {
				continue
			}
			for _, loc := range locateValue(ex.Page.Doc, want) {
				m := votes[attr]
				if m == nil {
					m = make(map[wrapperRule]int)
					votes[attr] = m
				}
				m[loc]++
			}
		}
	}
	w := &Wrapper{Concept: concept, Host: host, Rules: make(map[string]wrapperRule)}
	for attr, m := range votes {
		best, bestN := wrapperRule{}, 0
		// Deterministic winner: highest count, ties by signature then index.
		rules := make([]wrapperRule, 0, len(m))
		for r := range m {
			rules = append(rules, r)
		}
		sort.Slice(rules, func(i, j int) bool {
			if rules[i].Sig != rules[j].Sig {
				return rules[i].Sig < rules[j].Sig
			}
			return rules[i].Index < rules[j].Index
		})
		for _, r := range rules {
			if m[r] > bestN {
				best, bestN = r, m[r]
			}
		}
		// Require the rule to hold on a majority of examples.
		if bestN*2 > len(examples) {
			w.Rules[attr] = best
		}
	}
	if len(w.Rules) == 0 {
		return nil, fmt.Errorf("%w (host %s)", ErrNoRules, host)
	}
	return w, nil
}

// locateValue finds the (signature, index) locations of nodes whose own text
// normalizes to want. Only the deepest matching nodes are reported.
func locateValue(doc *htmlx.Node, want string) []wrapperRule {
	counts := make(map[string]int)
	var out []wrapperRule
	doc.Walk(func(n *htmlx.Node) bool {
		if n.Type != htmlx.ElementNode {
			return true
		}
		sig := n.ClassPathSignature()
		idx := counts[sig]
		counts[sig]++
		if textproc.Normalize(n.Text()) == want {
			// Deepest match: if a child also matches exactly, prefer it.
			deeper := false
			for _, c := range n.ChildElements() {
				if textproc.Normalize(c.Text()) == want {
					deeper = true
					break
				}
			}
			if !deeper {
				out = append(out, wrapperRule{Sig: sig, Index: idx})
			}
		}
		return true
	})
	return out
}

// ExtractAnalyzed implements Operator. Wrapper rules key on occurrence
// indexes of every signature on the page, a view no other operator shares,
// so this simply delegates to Extract.
func (w *Wrapper) ExtractAnalyzed(pa *PageAnalysis) []*Candidate {
	return w.Extract(pa.Page)
}

// Extract implements Operator: apply the learned rules to a page. The rules
// fire only where the template matches — on other sites they silently find
// nothing, which is the wrapper brittleness the A1 experiment demonstrates.
func (w *Wrapper) Extract(p *webgraph.Page) []*Candidate {
	counts := make(map[string]int)
	found := make(map[string]string)
	p.Doc.Walk(func(n *htmlx.Node) bool {
		if n.Type != htmlx.ElementNode {
			return true
		}
		sig := n.ClassPathSignature()
		idx := counts[sig]
		counts[sig]++
		for attr, rule := range w.Rules {
			if rule.Sig == sig && rule.Index == idx {
				if _, dup := found[attr]; !dup {
					found[attr] = n.Text()
				}
			}
		}
		return true
	})
	if len(found) == 0 {
		return nil
	}
	cand := NewCandidate(w.Concept, p.URL, w.Name())
	for attr, val := range found {
		cand.Add(attr, val, 0.95)
	}
	// A lone attribute with no name is unusable noise.
	if cand.Get("name") == "" && cand.Get("title") == "" && len(found) < 2 {
		return nil
	}
	return []*Candidate{cand}
}
