package extract

import (
	"errors"
	"strings"
	"testing"

	"conceptweb/internal/textproc"
	"conceptweb/internal/webgen"
	"conceptweb/internal/webgraph"
)

// bizPages returns (page, truth-attrs) pairs for fresh biz pages of a host.
func bizPages(w *webgen.World, host string) []LabeledExample {
	site, _ := w.SiteByHost(host)
	var out []LabeledExample
	for _, p := range site.Pages {
		if p.Truth.Kind != webgen.KindBiz {
			continue
		}
		out = append(out, LabeledExample{
			Page: webgraph.NewPage(p.URL, p.HTML),
			Attrs: map[string]string{
				"name":  p.Truth.Attrs["name"],
				"zip":   p.Truth.Attrs["zip"],
				"phone": p.Truth.Attrs["phone"],
			},
		})
	}
	return out
}

func TestWrapperInductionSameSite(t *testing.T) {
	cfg := webgen.DefaultConfig()
	cfg.Restaurants = 40
	cfg.ReviewArticles = 5
	w := webgen.Generate(cfg)
	exs := bizPages(w, "welp.example")
	if len(exs) < 10 {
		t.Fatalf("only %d biz pages", len(exs))
	}
	wr, err := InduceWrapper("restaurant", "welp.example", exs[:3])
	if err != nil {
		t.Fatal(err)
	}
	if len(wr.Rules) < 2 {
		t.Fatalf("learned only %d rules: %+v", len(wr.Rules), wr.Rules)
	}
	// Apply to held-out pages of the same site: should be near-perfect.
	correct, total := 0, 0
	for _, ex := range exs[3:] {
		cands := wr.Extract(ex.Page)
		if len(cands) != 1 {
			t.Fatalf("page %s: %d candidates", ex.Page.URL, len(cands))
		}
		for attr, want := range ex.Attrs {
			if _, hasRule := wr.Rules[attr]; !hasRule {
				continue
			}
			total++
			if textproc.Normalize(cands[0].Get(attr)) == textproc.Normalize(want) {
				correct++
			}
		}
	}
	if total == 0 {
		t.Fatal("nothing to score")
	}
	acc := float64(correct) / float64(total)
	t.Logf("wrapper same-site accuracy = %.3f (%d/%d)", acc, correct, total)
	if acc < 0.95 {
		t.Errorf("same-site accuracy %.3f too low", acc)
	}
}

func TestWrapperCollapsesCrossSite(t *testing.T) {
	cfg := webgen.DefaultConfig()
	cfg.Restaurants = 40
	cfg.ReviewArticles = 5
	w := webgen.Generate(cfg)
	wr, err := InduceWrapper("restaurant", "welp.example", bizPages(w, "welp.example")[:3])
	if err != nil {
		t.Fatal(err)
	}
	// Apply to a different aggregator: the template differs, so the wrapper
	// extracts essentially nothing correct — the §4.1 brittleness.
	correct, total := 0, 0
	for _, ex := range bizPages(w, "citysift.example") {
		total++
		for _, c := range wr.Extract(ex.Page) {
			if textproc.Normalize(c.Get("name")) == textproc.Normalize(ex.Attrs["name"]) &&
				c.Get("zip") == ex.Attrs["zip"] {
				correct++
			}
		}
	}
	if total == 0 {
		t.Fatal("no cross-site pages")
	}
	frac := float64(correct) / float64(total)
	t.Logf("wrapper cross-site accuracy = %.3f", frac)
	if frac > 0.1 {
		t.Errorf("wrapper unexpectedly works cross-site (%.3f)", frac)
	}
}

func TestInduceWrapperNoRules(t *testing.T) {
	p := webgraph.NewPage("x.example/1", "<html><body><p>nothing labeled here</p></body></html>")
	_, err := InduceWrapper("c", "x.example", []LabeledExample{
		{Page: p, Attrs: map[string]string{"name": "absent value"}},
	})
	if !errors.Is(err, ErrNoRules) {
		t.Errorf("err = %v, want ErrNoRules", err)
	}
}

func TestWrapperMajorityVoting(t *testing.T) {
	// Three examples; the value appears at a consistent slot in all three
	// plus a spurious slot in one. Majority voting must pick the consistent
	// one.
	mk := func(name string, extra string) *webgraph.Page {
		return webgraph.NewPage("s.example/"+name,
			`<html><body><div class="main"><h1 class="nm">`+name+`</h1>`+extra+`</div></body></html>`)
	}
	exs := []LabeledExample{
		{Page: mk("alpha", `<span class="junk">alpha</span>`), Attrs: map[string]string{"name": "alpha"}},
		{Page: mk("beta", ""), Attrs: map[string]string{"name": "beta"}},
		{Page: mk("gamma", ""), Attrs: map[string]string{"name": "gamma"}},
	}
	wr, err := InduceWrapper("c", "s.example", exs)
	if err != nil {
		t.Fatal(err)
	}
	rule := wr.Rules["name"]
	if rule.Sig == "" {
		t.Fatal("no name rule")
	}
	cands := wr.Extract(mk("delta", `<span class="junk">unrelated</span>`))
	if len(cands) != 1 || cands[0].Get("name") != "delta" {
		t.Errorf("cands = %+v", cands)
	}
}

// TestRedesignRobustness reproduces the §7.3 concern: when a site redesigns
// (here: renames every CSS class), wrappers keyed to the old template break,
// while domain-centric extraction — anchored in repetition and field shapes,
// not class names — keeps working. This is the motivation the paper cites
// for robust extraction [22, 50].
func TestRedesignRobustness(t *testing.T) {
	cfg := webgen.DefaultConfig()
	cfg.Restaurants = 40
	cfg.ReviewArticles = 5
	w := webgen.Generate(cfg)

	redesign := func(html string) string {
		r := strings.NewReplacer(
			`class="results"`, `class="hits-v2"`,
			`class="result"`, `class="hit-v2"`,
			`class="name"`, `class="title-v2"`,
			`class="addr"`, `class="loc-v2"`,
			`class="zip"`, `class="postal-v2"`,
			`class="phone"`, `class="tel-v2"`,
			`class="biz-card"`, `class="panel-v2"`,
			`class="biz-name"`, `class="heading-v2"`,
			`class="biz-info"`, `class="info-v2"`,
			`class="address"`, `class="street-v2"`,
			`class="city"`, `class="town-v2"`,
		)
		return r.Replace(html)
	}

	// Train a wrapper on the original welp biz pages.
	exs := bizPages(w, "welp.example")
	wr, err := InduceWrapper("restaurant", "welp.example", exs[:3])
	if err != nil {
		t.Fatal(err)
	}

	site, _ := w.SiteByHost("welp.example")
	domain := RestaurantDomain(w.Cities(), webgen.Cuisines())
	le := &ListExtractor{Domain: domain}

	wrapperOK, domainOK, total := 0, 0, 0
	for _, p := range site.Pages {
		if p.Truth.Kind != webgen.KindCategory || len(p.Truth.EntityIDs) < 2 {
			continue
		}
		redesigned := webgraph.NewPage(p.URL, redesign(p.HTML))
		total += len(p.Truth.EntityIDs)
		names := map[string]bool{}
		for _, id := range p.Truth.EntityIDs {
			r, _ := w.RestaurantByID(id)
			names[textproc.Normalize(r.Name)] = true
		}
		for _, c := range le.Extract(redesigned) {
			if names[textproc.Normalize(c.Get("name"))] {
				domainOK++
			}
		}
		for _, c := range wr.Extract(redesigned) {
			if names[textproc.Normalize(c.Get("name"))] {
				wrapperOK++
			}
		}
	}
	if total == 0 {
		t.Skip("no multi-entity category pages")
	}
	dFrac := float64(domainOK) / float64(total)
	wFrac := float64(wrapperOK) / float64(total)
	t.Logf("after redesign: domain-centric recall=%.2f, wrapper recall=%.2f (n=%d)", dFrac, wFrac, total)
	if dFrac < 0.9 {
		t.Errorf("domain-centric extraction broke under redesign: %.2f", dFrac)
	}
	if wFrac > 0.1 {
		t.Errorf("wrapper unexpectedly survived the redesign: %.2f", wFrac)
	}
}
