package extract

import "sync"

// internTable interns strings formed by joining two parts with a separator.
// Hot loops that would otherwise concatenate the parts for every DOM node
// (the tag+"."+class child signatures of repeated-structure detection) or
// every candidate (operator-name prefixes) get back a canonical shared
// string, allocation-free after first use. The table only grows — the set of
// tag/class pairs and operator names is bounded by the site templates — so
// no eviction is needed.
type internTable struct {
	sep string
	mu  sync.RWMutex
	m   map[string]map[string]string
}

func (t *internTable) get(a, b string) string {
	t.mu.RLock()
	s, ok := t.m[a][b]
	t.mu.RUnlock()
	if ok {
		return s
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.m == nil {
		t.m = make(map[string]map[string]string)
	}
	inner := t.m[a]
	if inner == nil {
		inner = make(map[string]string)
		t.m[a] = inner
	}
	s, ok = inner[b]
	if !ok {
		s = a + t.sep + b
		inner[b] = s
	}
	return s
}

var (
	sigTable    = internTable{sep: "."}
	opNameTable = internTable{sep: ""}
)

// internSig returns the canonical "tag.class" sibling signature.
func internSig(tag, class string) string { return sigTable.get(tag, class) }

// internOpName returns the canonical "prefix+suffix" operator name.
func internOpName(prefix, suffix string) string { return opNameTable.get(prefix, suffix) }
