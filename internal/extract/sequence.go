package extract

import (
	"sort"
	"strings"
	"unicode"
)

// Sequence tagging (§4.1's "semantic" baseline): the paper cites CRF-based
// parsing of postal addresses and publication lists. We implement the
// training-compatible structured perceptron (Collins 2002) over the same
// linear-chain feature templates — a standard CRF stand-in with no external
// dependencies — and note the paper's caveat that such models "require large
// supervised training data and are sensitive to the construction of this
// training data"; experiment A1 reproduces that sensitivity.

// Citation labels.
const (
	LabelAuthor = "AUTHOR"
	LabelTitle  = "TITLE"
	LabelVenue  = "VENUE"
	LabelYear   = "YEAR"
	LabelOther  = "O"
)

// TokenizeCitation splits a citation string into word and punctuation
// tokens; punctuation is significant for segmentation.
func TokenizeCitation(s string) []string {
	var toks []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			toks = append(toks, b.String())
			b.Reset()
		}
	}
	for _, r := range s {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(r)
		case unicode.IsSpace(r):
			flush()
		default:
			flush()
			toks = append(toks, string(r))
		}
	}
	flush()
	return toks
}

// Tagged is one training sequence.
type Tagged struct {
	Tokens []string
	Labels []string
}

// Tagger is a linear-chain structured perceptron sequence model.
type Tagger struct {
	Labels  []string
	weights map[string]float64
	// Averaging bookkeeping (lazy average trick).
	totals  map[string]float64
	stamps  map[string]int
	updates int
	// Gazetteers give the model lexicon features (e.g. known venues).
	Gazetteer map[string]string // normalized token -> feature tag
}

// NewTagger returns an untrained tagger over the given label set.
func NewTagger(labels []string) *Tagger {
	return &Tagger{
		Labels:    labels,
		weights:   make(map[string]float64),
		totals:    make(map[string]float64),
		stamps:    make(map[string]int),
		Gazetteer: make(map[string]string),
	}
}

// features returns the emission feature strings for position i.
func (t *Tagger) features(tokens []string, i int) []string {
	w := tokens[i]
	lw := strings.ToLower(w)
	feats := []string{
		"w=" + lw,
		"shape=" + shape(w),
	}
	if tag, ok := t.Gazetteer[lw]; ok {
		feats = append(feats, "gaz="+tag)
	}
	if i == 0 {
		feats = append(feats, "first")
	}
	if i == len(tokens)-1 {
		feats = append(feats, "last")
	}
	if i > 0 {
		feats = append(feats, "prevw="+strings.ToLower(tokens[i-1]))
	}
	if i+1 < len(tokens) {
		feats = append(feats, "nextw="+strings.ToLower(tokens[i+1]))
	}
	// Coarse position bucket.
	switch {
	case 3*i < len(tokens):
		feats = append(feats, "pos=begin")
	case 3*i < 2*len(tokens):
		feats = append(feats, "pos=mid")
	default:
		feats = append(feats, "pos=end")
	}
	return feats
}

func shape(w string) string {
	switch {
	case isYearToken(w):
		return "year"
	case allDigits(w):
		return "digits"
	case len(w) == 1 && !unicode.IsLetter(rune(w[0])) && !unicode.IsDigit(rune(w[0])):
		return "punct:" + w
	case allUpper(w):
		return "allcaps"
	case unicode.IsUpper(rune(w[0])):
		return "cap"
	default:
		return "lower"
	}
}

func isYearToken(w string) bool {
	if len(w) != 4 || !allDigits(w) {
		return false
	}
	return (w[0] == '1' && w[1] == '9') || (w[0] == '2' && w[1] == '0')
}

func allDigits(w string) bool {
	for _, r := range w {
		if !unicode.IsDigit(r) {
			return false
		}
	}
	return len(w) > 0
}

func allUpper(w string) bool {
	hasLetter := false
	for _, r := range w {
		if unicode.IsLetter(r) {
			hasLetter = true
			if !unicode.IsUpper(r) {
				return false
			}
		}
	}
	return hasLetter && len(w) > 1
}

func (t *Tagger) get(feat, label string) float64 {
	return t.weights[feat+"\x00"+label]
}

func (t *Tagger) bump(feat, label string, delta float64) {
	key := feat + "\x00" + label
	// Lazy averaging: settle the pending contribution before updating.
	t.totals[key] += float64(t.updates-t.stamps[key]) * t.weights[key]
	t.stamps[key] = t.updates
	t.weights[key] += delta
}

// score computes the local score of assigning label at position i given the
// previous label.
func (t *Tagger) score(feats []string, prev, label string) float64 {
	s := t.get("T|"+prev, label)
	for _, f := range feats {
		s += t.get(f, label)
	}
	return s
}

// Predict returns the Viterbi-best label sequence for tokens.
func (t *Tagger) Predict(tokens []string) []string {
	n := len(tokens)
	if n == 0 {
		return nil
	}
	L := len(t.Labels)
	delta := make([][]float64, n)
	back := make([][]int, n)
	feats0 := t.features(tokens, 0)
	delta[0] = make([]float64, L)
	back[0] = make([]int, L)
	for j, lab := range t.Labels {
		delta[0][j] = t.score(feats0, "START", lab)
	}
	for i := 1; i < n; i++ {
		feats := t.features(tokens, i)
		delta[i] = make([]float64, L)
		back[i] = make([]int, L)
		for j, lab := range t.Labels {
			best, bestK := delta[i-1][0]+t.score(feats, t.Labels[0], lab), 0
			for k := 1; k < L; k++ {
				if s := delta[i-1][k] + t.score(feats, t.Labels[k], lab); s > best {
					best, bestK = s, k
				}
			}
			delta[i][j] = best
			back[i][j] = bestK
		}
	}
	bestJ := 0
	for j := 1; j < L; j++ {
		if delta[n-1][j] > delta[n-1][bestJ] {
			bestJ = j
		}
	}
	out := make([]string, n)
	for i := n - 1; i >= 0; i-- {
		out[i] = t.Labels[bestJ]
		bestJ = back[i][bestJ]
	}
	return out
}

// Train runs the averaged structured perceptron for the given epochs.
// Training is deterministic: examples are visited in order.
func (t *Tagger) Train(data []Tagged, epochs int) {
	for e := 0; e < epochs; e++ {
		for _, ex := range data {
			t.updates++
			pred := t.Predict(ex.Tokens)
			if equalLabels(pred, ex.Labels) {
				continue
			}
			prevGold, prevPred := "START", "START"
			for i := range ex.Tokens {
				feats := t.features(ex.Tokens, i)
				if pred[i] != ex.Labels[i] || prevGold != prevPred {
					for _, f := range feats {
						if pred[i] != ex.Labels[i] {
							t.bump(f, ex.Labels[i], 1)
							t.bump(f, pred[i], -1)
						}
					}
					t.bump("T|"+prevGold, ex.Labels[i], 1)
					t.bump("T|"+prevPred, pred[i], -1)
				}
				prevGold, prevPred = ex.Labels[i], pred[i]
			}
		}
	}
	t.average()
}

// average finalizes weights to their running averages, which stabilizes the
// perceptron's predictions.
func (t *Tagger) average() {
	if t.updates == 0 {
		return
	}
	keys := make([]string, 0, len(t.weights))
	for k := range t.weights {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		t.totals[k] += float64(t.updates-t.stamps[k]) * t.weights[k]
		t.stamps[k] = t.updates
		t.weights[k] = t.totals[k] / float64(t.updates)
	}
}

func equalLabels(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// SpansOf groups a predicted label sequence into (label, text) segments,
// skipping LabelOther and punctuation-only segments.
func SpansOf(tokens, labels []string) map[string]string {
	out := make(map[string]string)
	var cur []string
	curLab := ""
	flush := func() {
		if curLab == "" || curLab == LabelOther || len(cur) == 0 {
			cur, curLab = nil, ""
			return
		}
		text := strings.Join(cur, " ")
		if strings.TrimFunc(text, func(r rune) bool {
			return !unicode.IsLetter(r) && !unicode.IsDigit(r)
		}) == "" {
			cur, curLab = nil, ""
			return
		}
		if _, dup := out[curLab]; !dup { // keep the first segment per label
			out[curLab] = text
		}
		cur, curLab = nil, ""
	}
	for i, tok := range tokens {
		if labels[i] != curLab {
			flush()
			curLab = labels[i]
		}
		// Skip bare punctuation inside segments.
		if len(tok) == 1 && !unicode.IsLetter(rune(tok[0])) && !unicode.IsDigit(rune(tok[0])) {
			continue
		}
		cur = append(cur, tok)
	}
	flush()
	return out
}
