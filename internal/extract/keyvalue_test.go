package extract

import (
	"testing"

	"conceptweb/internal/webgen"
	"conceptweb/internal/webgraph"
)

func TestKeyValueExtractorTable(t *testing.T) {
	html := `<html><body><h1 class="product-name">Nicon D40</h1>
<table class="specs">
<tr><th>Brand</th><td>Nicon</td></tr>
<tr><th>Model</th><td>D40</td></tr>
<tr><th>Price</th><td>$449.99</td></tr>
<tr><th>Resolution</th><td>10 megapixels</td></tr>
</table></body></html>`
	e := &KeyValueExtractor{Concept: "product", Labels: ProductLabels(), NameKey: "name"}
	cands := e.Extract(webgraph.NewPage("shop.example/p/d40", html))
	if len(cands) != 1 {
		t.Fatalf("candidates = %d", len(cands))
	}
	c := cands[0]
	if c.Get("brand") != "Nicon" || c.Get("model") != "D40" || c.Get("price") != "$449.99" {
		t.Errorf("attrs = %v", c.Attrs)
	}
	if c.Get("name") != "Nicon D40" {
		t.Errorf("name = %q", c.Get("name"))
	}
}

func TestKeyValueExtractorDL(t *testing.T) {
	html := `<html><body><dl class="listing">
<dt>Business</dt><dd>Blue Agave Cantina</dd>
<dt>Street</dt><dd>12 Main St</dd>
<dt>Zip</dt><dd>95112</dd>
<dt>Telephone</dt><dd>408 555 0101</dd>
<dt>Unmapped</dt><dd>ignored</dd>
</dl></body></html>`
	e := &KeyValueExtractor{Concept: "restaurant", Labels: BusinessLabels()}
	cands := e.Extract(webgraph.NewPage("dir.example/biz/x", html))
	if len(cands) != 1 {
		t.Fatalf("candidates = %d", len(cands))
	}
	c := cands[0]
	if c.Get("name") != "Blue Agave Cantina" || c.Get("zip") != "95112" || c.Get("phone") != "408 555 0101" {
		t.Errorf("attrs = %v", c.Attrs)
	}
	if c.Get("unmapped") != "" {
		t.Error("unmapped label extracted")
	}
}

func TestKeyValueExtractorMinAttrs(t *testing.T) {
	html := `<html><body><table><tr><th>Brand</th><td>Nicon</td></tr></table></body></html>`
	e := &KeyValueExtractor{Concept: "product", Labels: ProductLabels()}
	if cands := e.Extract(webgraph.NewPage("x/y", html)); len(cands) != 0 {
		t.Errorf("1 attr should not make a record: %+v", cands)
	}
	plain := `<html><body><p>no structure at all</p></body></html>`
	if cands := e.Extract(webgraph.NewPage("x/z", plain)); len(cands) != 0 {
		t.Errorf("plain page yielded %d candidates", len(cands))
	}
}

func TestKeyValueOnSyntheticShopPages(t *testing.T) {
	cfg := webgen.DefaultConfig()
	cfg.Restaurants = 5
	cfg.ReviewArticles = 2
	cfg.TVArticles = 2
	w := webgen.Generate(cfg)
	e := &KeyValueExtractor{Concept: "product", Labels: ProductLabels(), NameKey: "name"}
	checked := 0
	for _, page := range w.Pages() {
		if page.Truth.Kind != webgen.KindProduct {
			continue
		}
		p, ok := w.ProductByID(page.Truth.EntityIDs[0])
		if !ok {
			continue
		}
		cands := e.Extract(webgraph.NewPage(page.URL, page.HTML))
		if len(cands) != 1 {
			t.Fatalf("page %s: %d candidates", page.URL, len(cands))
		}
		if cands[0].Get("brand") != p.Brand || cands[0].Get("model") != p.Model {
			t.Errorf("page %s: got brand=%q model=%q want %q %q", page.URL,
				cands[0].Get("brand"), cands[0].Get("model"), p.Brand, p.Model)
		}
		checked++
	}
	if checked < 10 {
		t.Errorf("only %d product pages checked", checked)
	}
}
