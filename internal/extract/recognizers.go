package extract

import (
	"regexp"
	"strings"

	"conceptweb/internal/lrec"
	"conceptweb/internal/textproc"
)

// Recognizer is one unit of domain knowledge: a named attribute plus a rule
// that recognizes values of that attribute in free text ("rules to identify
// zips/phones", §4.2). Recognizers are intentionally high-precision: the
// list extractor relies on them as anchors.
type Recognizer struct {
	Key  string
	Kind lrec.ValueKind
	// Match scans text and returns the first recognized value.
	Match func(text string) (value string, ok bool)
	// MatchNorm, when non-nil, is Match over already-normalized text
	// (textproc.Normalize applied). Recognizers whose matching starts by
	// normalizing the input (gazetteers) expose it so callers holding a
	// precomputed normalization (the shared page analysis) skip the
	// per-call re-tokenization. Match and MatchNorm must agree:
	// Match(t) == MatchNorm(Normalize(t)).
	MatchNorm func(norm string) (value string, ok bool)
	// Weight is the evidence strength this field contributes when scoring
	// candidate lists (anchor fields like zip/phone weigh more than, say,
	// free-text names).
	Weight float64
}

// matchSpan matches against one analyzed text span, preferring the span's
// precomputed normalization for recognizers that want normalized input. The
// span is read-only: it may be shared across goroutines.
func (r Recognizer) matchSpan(sp *span) (string, bool) {
	if r.MatchNorm == nil {
		return r.Match(sp.text)
	}
	norm := sp.norm
	if norm == "" && sp.text != "" {
		norm = textproc.Normalize(sp.text)
	}
	return r.MatchNorm(norm)
}

// matchNormalized matches against a full text whose normalization the caller
// has already computed.
func (r Recognizer) matchNormalized(text, norm string) (string, bool) {
	if r.MatchNorm != nil {
		return r.MatchNorm(norm)
	}
	return r.Match(text)
}

var (
	zipRe    = regexp.MustCompile(`\b(9[0-9]{4})\b`)
	phoneRe  = regexp.MustCompile(`\(?([2-9][0-9]{2})\)?[ .-]([0-9]{3})[ .-]([0-9]{4})\b`)
	priceRe  = regexp.MustCompile(`\$[0-9]+(?:\.[0-9]{2})?\b`)
	yearRe   = regexp.MustCompile(`\b(19[5-9][0-9]|20[0-4][0-9])\b`)
	dateRe   = regexp.MustCompile(`\b(20[0-4][0-9])-([01][0-9])-([0-3][0-9])\b`)
	ratingRe = regexp.MustCompile(`\b([0-5]\.[0-9]) stars?\b`)
	hoursRe  = regexp.MustCompile(`\b(Mon|Tue|Wed|Thu|Fri|Sat|Sun)[a-z]*[ -].*[0-9]{1,2}:[0-9]{2}`)
	mpRe     = regexp.MustCompile(`\b([0-9]{1,3}) megapixels?\b`)
)

// streetSuffixes anchor street-address recognition.
var streetSuffixes = []string{
	"St", "Ave", "Blvd", "Rd", "Real", "Expy", "Way", "Dr", "Ln", "Ct",
}

var streetRe = regexp.MustCompile(`\b[0-9]{1,5} (?:[0-9]{1,2}(?:st|nd|rd|th) )?(?:[A-Z][A-Za-z .]*? )?(` +
	strings.Join(streetSuffixes, "|") + `)\b`)

// matchRe adapts a regexp into a Match func.
func matchRe(re *regexp.Regexp) func(string) (string, bool) {
	return func(text string) (string, bool) {
		if m := re.FindString(text); m != "" {
			return m, true
		}
		return "", false
	}
}

// matchReDigit is matchRe for regexps every match of which contains an ASCII
// digit: text without one is rejected by a byte scan before the regexp
// engine starts, which is the common case for short spans.
func matchReDigit(re *regexp.Regexp) func(string) (string, bool) {
	return func(text string) (string, bool) {
		if !hasDigit(text) {
			return "", false
		}
		if m := re.FindString(text); m != "" {
			return m, true
		}
		return "", false
	}
}

func hasDigit(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= '0' && s[i] <= '9' {
			return true
		}
	}
	return false
}

// ZipRecognizer recognizes 5-digit California-range zip codes.
func ZipRecognizer() Recognizer {
	return Recognizer{Key: "zip", Kind: lrec.KindZip, Match: matchReDigit(zipRe), Weight: 1.0}
}

// PhoneRecognizer recognizes North-American phone numbers in the formats
// used across the corpus.
func PhoneRecognizer() Recognizer {
	return Recognizer{Key: "phone", Kind: lrec.KindPhone, Match: matchReDigit(phoneRe), Weight: 1.0}
}

// PriceRecognizer recognizes dollar amounts.
func PriceRecognizer() Recognizer {
	return Recognizer{Key: "price", Kind: lrec.KindPrice, Match: matchReDigit(priceRe), Weight: 0.8}
}

// StreetRecognizer recognizes street addresses by number + suffix shape.
func StreetRecognizer() Recognizer {
	return Recognizer{Key: "street", Kind: lrec.KindAddress, Match: matchReDigit(streetRe), Weight: 0.9}
}

// YearRecognizer recognizes plausible publication years.
func YearRecognizer() Recognizer {
	return Recognizer{Key: "year", Kind: lrec.KindDate, Match: matchReDigit(yearRe), Weight: 0.6}
}

// DateRecognizer recognizes ISO dates.
func DateRecognizer() Recognizer {
	return Recognizer{Key: "date", Kind: lrec.KindDate, Match: matchReDigit(dateRe), Weight: 0.9}
}

// RatingRecognizer recognizes "4.2 stars"-style ratings.
func RatingRecognizer() Recognizer {
	return Recognizer{Key: "rating", Kind: lrec.KindNumber, Match: func(text string) (string, bool) {
		if !hasDigit(text) {
			return "", false
		}
		if m := ratingRe.FindStringSubmatch(text); m != nil {
			return m[1], true
		}
		return "", false
	}, Weight: 0.5}
}

// HoursRecognizer recognizes opening-hours strings.
func HoursRecognizer() Recognizer {
	return Recognizer{Key: "hours", Kind: lrec.KindText, Match: matchReDigit(hoursRe), Weight: 0.5}
}

// MegapixelRecognizer recognizes camera resolutions.
func MegapixelRecognizer() Recognizer {
	return Recognizer{Key: "megapixels", Kind: lrec.KindNumber, Match: func(text string) (string, bool) {
		if !hasDigit(text) {
			return "", false
		}
		if m := mpRe.FindStringSubmatch(text); m != nil {
			return m[1], true
		}
		return "", false
	}, Weight: 0.7}
}

// GazetteerRecognizer recognizes values from a closed vocabulary (cities,
// cuisines, venues). Matching is token-subsequence based and case-blind.
// Both match paths are allocation-free per call: matching walks the
// normalized text for token-boundary occurrences of each (pre-normalized)
// vocabulary entry instead of building padded copies.
func GazetteerRecognizer(key string, kind lrec.ValueKind, vocab []string, weight float64) Recognizer {
	norm := make(map[string]string, len(vocab))
	for _, v := range vocab {
		norm[textproc.Normalize(v)] = v
	}
	// Longest entries first so "San Jose" beats "Jose".
	keys := make([]string, 0, len(norm))
	for k := range norm {
		keys = append(keys, k)
	}
	sortByLenDesc(keys)
	matchNorm := func(nt string) (string, bool) {
		for _, k := range keys {
			if containsTokenRun(nt, k) {
				return norm[k], true
			}
		}
		return "", false
	}
	return Recognizer{Key: key, Kind: kind, Weight: weight,
		MatchNorm: matchNorm,
		Match: func(text string) (string, bool) {
			return matchNorm(textproc.Normalize(text))
		}}
}

// containsTokenRun reports whether the normalized text norm contains k as a
// run of whole tokens — the same predicate as padding both with spaces and
// calling strings.Contains, without the two temporary strings.
func containsTokenRun(norm, k string) bool {
	if k == "" {
		return norm == ""
	}
	for from := 0; ; {
		i := strings.Index(norm[from:], k)
		if i < 0 {
			return false
		}
		i += from
		if (i == 0 || norm[i-1] == ' ') &&
			(i+len(k) == len(norm) || norm[i+len(k)] == ' ') {
			return true
		}
		from = i + 1
	}
}

func sortByLenDesc(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && (len(ss[j]) > len(ss[j-1]) ||
			(len(ss[j]) == len(ss[j-1]) && ss[j] < ss[j-1])); j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

// Constraint is a statistical domain constraint on extracted records (§4.2:
// "each restaurant is associated with a single zip code and has one or two
// phone numbers").
type Constraint struct {
	Key       string
	MaxValues int
}

// Domain bundles the domain knowledge for extracting one concept: the
// recognizers, the attribute treated as the record's name, the fields whose
// presence is required evidence that a list is really about this concept,
// and multiplicity constraints.
type Domain struct {
	Concept     string
	Recognizers []Recognizer
	// NameFrom selects where the record name comes from: "anchor" (link
	// text), "first-span" (first unrecognized text span), or "" (no name).
	NameFrom string
	// NameKey is the attribute the name is stored under ("name" or "title").
	NameKey string
	// Evidence lists attribute keys at least one of which must be present
	// in a list item for the item to count as a record of this concept.
	Evidence []string
	// MinEvidenceFrac is the fraction of items in a candidate list that must
	// carry evidence for the list to be accepted (default 0.5).
	MinEvidenceFrac float64
	Constraints     []Constraint
}

// RestaurantDomain returns the restaurant domain knowledge used throughout
// the experiments, with the city gazetteer supplied by the caller.
func RestaurantDomain(cities []string, cuisines []string) Domain {
	return Domain{
		Concept: "restaurant",
		Recognizers: []Recognizer{
			ZipRecognizer(), PhoneRecognizer(), StreetRecognizer(),
			GazetteerRecognizer("city", lrec.KindCity, cities, 0.7),
			GazetteerRecognizer("cuisine", lrec.KindCategory, cuisines, 0.4),
			RatingRecognizer(), HoursRecognizer(),
		},
		NameFrom: "anchor",
		NameKey:  "name",
		Evidence: []string{"zip", "phone", "street"},
		Constraints: []Constraint{
			{Key: "zip", MaxValues: 1},
			{Key: "phone", MaxValues: 2},
			{Key: "street", MaxValues: 1},
		},
	}
}

// MenuDomain returns the domain knowledge for menu-item lists.
func MenuDomain() Domain {
	return Domain{
		Concept:     "menuitem",
		Recognizers: []Recognizer{PriceRecognizer()},
		NameFrom:    "first-span",
		NameKey:     "name",
		Evidence:    []string{"price"},
		Constraints: []Constraint{{Key: "price", MaxValues: 1}},
	}
}

// PublicationDomain returns the domain knowledge for publication lists.
func PublicationDomain(venues []string) Domain {
	return Domain{
		Concept: "publication",
		Recognizers: []Recognizer{
			YearRecognizer(),
			GazetteerRecognizer("venue", lrec.KindText, venues, 1.0),
		},
		NameFrom:        "anchor",
		NameKey:         "title",
		Evidence:        []string{"venue", "year"},
		MinEvidenceFrac: 0.6,
		Constraints:     []Constraint{{Key: "year", MaxValues: 1}},
	}
}

// EventDomain returns the domain knowledge for local-event pages (city
// calendars): an ISO date is the required evidence, the city comes from the
// gazetteer, and a single-date constraint keeps calendar *indexes* (many
// dates) from being read as one event.
func EventDomain(cities []string) Domain {
	return Domain{
		Concept: "event",
		Recognizers: []Recognizer{
			DateRecognizer(),
			GazetteerRecognizer("city", lrec.KindCity, cities, 0.7),
		},
		NameFrom:    "anchor",
		NameKey:     "name",
		Evidence:    []string{"date"},
		Constraints: []Constraint{{Key: "date", MaxValues: 1}},
	}
}

// HotelDomain returns the domain knowledge for hotel listings, the streamed
// corpus's second business domain. Evidence is keyed on the hotel-type word
// every hotel name carries (Inn, Suites, ...) rather than on phone/street:
// restaurant pages also expose phones and streets, and without the lexical
// key the hotel extractor would shadow-extract every restaurant directory.
// Hotels carry no collective matcher — aggregators render hotel names and
// phone digits consistently, so synthesized IDs merge cross-site mentions.
func HotelDomain(cities []string) Domain {
	return Domain{
		Concept: "hotel",
		Recognizers: []Recognizer{
			PhoneRecognizer(), StreetRecognizer(),
			GazetteerRecognizer("city", lrec.KindCity, cities, 0.7),
			GazetteerRecognizer("hoteltype", lrec.KindCategory,
				[]string{"hotel", "inn", "suites", "lodge", "resort", "motel"}, 0.4),
		},
		NameFrom: "anchor",
		NameKey:  "name",
		Evidence: []string{"hoteltype"},
		Constraints: []Constraint{
			{Key: "phone", MaxValues: 2},
			{Key: "street", MaxValues: 1},
		},
	}
}

// ProductDomain returns the domain knowledge for product listings.
func ProductDomain() Domain {
	return Domain{
		Concept:     "product",
		Recognizers: []Recognizer{PriceRecognizer(), MegapixelRecognizer()},
		NameFrom:    "anchor",
		NameKey:     "name",
		Evidence:    []string{"price"},
		Constraints: []Constraint{{Key: "price", MaxValues: 1}},
	}
}
