package extract

import (
	"sort"

	"conceptweb/internal/htmlx"
	"conceptweb/internal/textproc"
	"conceptweb/internal/webgraph"
)

// SitePropagator extends domain-centric list extraction with site-level
// template propagation: a template slot (class-path signature) that produced
// accepted records anywhere on a site is trusted on every page of that site,
// including pages where it occurs only once. This recovers the records that
// pure repetition detection misses — a category page listing a single
// restaurant still uses the site's result template — and is the "leverage
// extraction efforts across sources within a site" idea of §7.2 applied at
// the smallest scale.
//
// Concurrency audit (for the parallel build pipeline): ExtractSite keeps all
// mutable state — the trusted-signature set, the dedup set, the leftovers
// list — local to the call; the propagator itself holds only the Inner
// extractor. One SitePropagator value must not be shared across concurrent
// ExtractSite calls for different sites only because callers conventionally
// construct one per (site, domain) task; nothing in the struct would break,
// but per-task construction keeps the invariant obvious and free.
type SitePropagator struct {
	Inner *ListExtractor
}

// Name identifies the operator in lineage chains.
func (s *SitePropagator) Name() string { return s.Inner.Name() + "+propagate" }

// ExtractSite runs two passes over one site's pages: first normal list
// extraction (which also learns the accepted item signatures), then a sweep
// that applies those signatures to unrepeated items. Candidates are deduped
// by (source URL, name, evidence values).
func (s *SitePropagator) ExtractSite(pages []*webgraph.Page) []*Candidate {
	trusted := make(map[string]bool)
	var out []*Candidate
	seen := make(map[string]bool)

	add := func(c *Candidate) {
		key := c.SourceURL + "\x00" + textproc.Normalize(c.Get(s.Inner.Domain.NameKey)) +
			"\x00" + textproc.Normalize(c.Get("zip")) + textproc.Normalize(c.Get("phone"))
		if seen[key] {
			return
		}
		seen[key] = true
		out = append(out, c)
	}

	// Pass 1: repetition-based extraction; learn trusted signatures.
	minItems := s.Inner.MinItems
	if minItems < 2 {
		minItems = 2
	}
	type pending struct {
		page  *webgraph.Page
		items []*htmlx.Node
	}
	var leftovers []pending
	for _, p := range pages {
		for _, group := range repeatedGroups(p.Doc, minItems) {
			cands := s.Inner.extractGroup(p, group)
			for _, c := range cands {
				add(c)
			}
			if len(cands) > 0 {
				trusted[group[0].ClassPathSignature()] = true
			}
		}
		// Collect singleton items for pass 2.
		var singles []*htmlx.Node
		p.Doc.Walk(func(n *htmlx.Node) bool {
			if n.Type != htmlx.ElementNode {
				return true
			}
			kids := n.ChildElements()
			bySig := make(map[string][]*htmlx.Node)
			for _, k := range kids {
				sig := k.Data + "." + k.Class()
				bySig[sig] = append(bySig[sig], k)
			}
			for _, g := range bySig {
				if len(g) < minItems {
					singles = append(singles, g...)
				}
			}
			return true
		})
		leftovers = append(leftovers, pending{p, singles})
	}

	if len(trusted) == 0 {
		return out
	}

	// Pass 2: apply trusted signatures to unrepeated items.
	for _, lo := range leftovers {
		// Deterministic order.
		sort.SliceStable(lo.items, func(i, j int) bool {
			return lo.items[i].PathSignature() < lo.items[j].PathSignature()
		})
		for _, item := range lo.items {
			if !trusted[item.ClassPathSignature()] {
				continue
			}
			cand, hasEvidence, ok := s.Inner.parseItem(lo.page, item)
			if !ok || !hasEvidence {
				continue
			}
			add(cand.Chain("propagate", 0.9))
		}
	}
	return out
}
