package extract

import (
	"conceptweb/internal/htmlx"
	"conceptweb/internal/textproc"
	"conceptweb/internal/webgraph"
)

// SitePropagator extends domain-centric list extraction with site-level
// template propagation: a template slot (class-path signature) that produced
// accepted records anywhere on a site is trusted on every page of that site,
// including pages where it occurs only once. This recovers the records that
// pure repetition detection misses — a category page listing a single
// restaurant still uses the site's result template — and is the "leverage
// extraction efforts across sources within a site" idea of §7.2 applied at
// the smallest scale.
//
// Concurrency audit (for the parallel build pipeline): ExtractSite keeps all
// mutable state — the trusted-signature set, the dedup set, the leftovers
// list — local to the call; the propagator itself holds only the Inner
// extractor. One SitePropagator value must not be shared across concurrent
// ExtractSite calls for different sites only because callers conventionally
// construct one per (site, domain) task; nothing in the struct would break,
// but per-task construction keeps the invariant obvious and free.
type SitePropagator struct {
	Inner *ListExtractor
}

// Name identifies the operator in lineage chains.
func (s *SitePropagator) Name() string { return s.Inner.Name() + "+propagate" }

// ExtractSite runs two passes over one site's pages: first normal list
// extraction (which also learns the accepted item signatures), then a sweep
// that applies those signatures to unrepeated items. Candidates are deduped
// by (source URL, name, evidence values).
func (s *SitePropagator) ExtractSite(pages []*webgraph.Page) []*Candidate {
	return s.ExtractSiteAnalyzed(AnalyzeAll(pages))
}

// ExtractSiteAnalyzed is ExtractSite over shared page analyses, so the
// repeated-group detection, item spans, and signature computations are done
// once per page no matter how many domains sweep the site.
func (s *SitePropagator) ExtractSiteAnalyzed(pas []*PageAnalysis) []*Candidate {
	trusted := make(map[string]bool)
	var out []*Candidate
	seen := make(map[string]bool)

	add := func(c *Candidate) {
		key := c.SourceURL + "\x00" + textproc.Normalize(c.Get(s.Inner.Domain.NameKey)) +
			"\x00" + textproc.Normalize(c.Get("zip")) + textproc.Normalize(c.Get("phone"))
		if seen[key] {
			return
		}
		seen[key] = true
		out = append(out, c)
	}

	// Pass 1: repetition-based extraction; learn trusted signatures.
	minItems := s.Inner.MinItems
	if minItems < 2 {
		minItems = 2
	}
	type pending struct {
		pa    *PageAnalysis
		items []*htmlx.Node
		cps   []string // class-path signatures aligned with items
	}
	var leftovers []pending
	for _, pa := range pas {
		groups, sigs := pa.GroupsWithSigs(minItems)
		for gi, group := range groups {
			cands := s.Inner.extractGroup(pa, group)
			for _, c := range cands {
				add(c)
			}
			if len(cands) > 0 {
				trusted[sigs[gi]] = true
			}
		}
		// Collect singleton items (pre-sorted by the analysis) for pass 2.
		items, cps := pa.Singles(minItems)
		leftovers = append(leftovers, pending{pa, items, cps})
	}

	if len(trusted) == 0 {
		return out
	}

	// Pass 2: apply trusted signatures to unrepeated items.
	for _, lo := range leftovers {
		for i, item := range lo.items {
			if !trusted[lo.cps[i]] {
				continue
			}
			cand, hasEvidence, ok := s.Inner.parseItem(lo.pa, item)
			if !ok || !hasEvidence {
				continue
			}
			add(cand.Chain("propagate", 0.9))
		}
	}
	return out
}
