package extract

import (
	"testing"

	"conceptweb/internal/lrec"
)

func TestZipRecognizer(t *testing.T) {
	r := ZipRecognizer()
	if v, ok := r.Match("located at 123 Main St, San Jose, CA 95112 today"); !ok || v != "95112" {
		t.Errorf("zip = %q, %v", v, ok)
	}
	if _, ok := r.Match("call 1234 for info"); ok {
		t.Error("matched non-zip")
	}
	if _, ok := r.Match("item 123456 in stock"); ok {
		t.Error("matched 6-digit number")
	}
}

func TestPhoneRecognizer(t *testing.T) {
	r := PhoneRecognizer()
	for _, s := range []string{"408-555-0123", "(408) 555-0123", "408.555.0123", "408 555 0123"} {
		if v, ok := r.Match("call " + s + " now"); !ok || v == "" {
			t.Errorf("missed phone %q (got %q)", s, v)
		}
	}
	if _, ok := r.Match("the year 2009-06-29 was"); ok {
		t.Error("matched a date as phone")
	}
	if _, ok := r.Match("123-456-7890"); ok {
		t.Error("matched invalid area code starting with 1")
	}
}

func TestPriceAndStreet(t *testing.T) {
	if v, ok := PriceRecognizer().Match("only $12.95 per plate"); !ok || v != "$12.95" {
		t.Errorf("price = %q", v)
	}
	if v, ok := PriceRecognizer().Match("only $12 per plate"); !ok || v != "$12" {
		t.Errorf("int price = %q", v)
	}
	if v, ok := StreetRecognizer().Match("visit 1234 Stevens Creek Blvd today"); !ok || v == "" {
		t.Errorf("street = %q", v)
	}
	if _, ok := StreetRecognizer().Match("no address here"); ok {
		t.Error("street false positive")
	}
}

func TestYearDateRating(t *testing.T) {
	if v, ok := YearRecognizer().Match("published in 2007."); !ok || v != "2007" {
		t.Errorf("year = %q", v)
	}
	if _, ok := YearRecognizer().Match("room 1234"); ok {
		t.Error("year false positive")
	}
	if v, ok := DateRecognizer().Match("on 2009-06-29 we met"); !ok || v != "2009-06-29" {
		t.Errorf("date = %q", v)
	}
	if v, ok := RatingRecognizer().Match("earned 4.2 stars overall"); !ok || v != "4.2" {
		t.Errorf("rating = %q", v)
	}
}

func TestHoursAndMegapixels(t *testing.T) {
	if v, ok := HoursRecognizer().Match("Open Mon-Sun 11:00-22:00"); !ok || v == "" {
		t.Errorf("hours = %q", v)
	}
	if v, ok := MegapixelRecognizer().Match("shoots 24 megapixel images"); !ok || v != "24" {
		t.Errorf("mp = %q", v)
	}
}

func TestGazetteerRecognizer(t *testing.T) {
	g := GazetteerRecognizer("city", lrec.KindCity, []string{"San Jose", "Cupertino", "Jose"}, 0.7)
	if v, ok := g.Match("great food in san jose tonight"); !ok || v != "San Jose" {
		t.Errorf("gaz = %q (longest match should win)", v)
	}
	if v, ok := g.Match("CUPERTINO location"); !ok || v != "Cupertino" {
		t.Errorf("case-blind match = %q", v)
	}
	if _, ok := g.Match("san francisco"); ok {
		t.Error("gazetteer false positive")
	}
	// Token boundaries: "sanjose" must not match "San Jose"... but it does
	// match entry "Jose"? No: normalized "sanjose" is one token.
	if _, ok := g.Match("sanjoseans"); ok {
		t.Error("substring false positive")
	}
}

func TestDomainConstructors(t *testing.T) {
	d := RestaurantDomain([]string{"San Jose"}, []string{"italian"})
	if d.Concept != "restaurant" || len(d.Recognizers) < 5 {
		t.Errorf("restaurant domain = %+v", d)
	}
	if _, ok := recognizerFor(d, "zip"); !ok {
		t.Error("zip recognizer missing")
	}
	if _, ok := recognizerFor(d, "nope"); ok {
		t.Error("bogus recognizer found")
	}
	for _, dom := range []Domain{MenuDomain(), PublicationDomain([]string{"PODS"}), ProductDomain()} {
		if dom.Concept == "" || len(dom.Evidence) == 0 {
			t.Errorf("bad domain %+v", dom)
		}
	}
}

func TestCountDistinct(t *testing.T) {
	r := ZipRecognizer()
	if n := countDistinct(r, "zips 95014 and 95112 and 95014 again"); n != 2 {
		t.Errorf("distinct = %d", n)
	}
	if n := countDistinct(r, "no zips here"); n != 0 {
		t.Errorf("distinct = %d", n)
	}
}
