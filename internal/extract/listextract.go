package extract

import (
	"strings"

	"conceptweb/internal/htmlx"
	"conceptweb/internal/textproc"
	"conceptweb/internal/webgraph"
)

// ListExtractor implements domain-centric list extraction (§4.2): it detects
// repeated HTML structure, then uses domain knowledge (field recognizers)
// and statistical constraints to decide which repeated structures are lists
// of records of the target concept, and to extract those records — fully
// unsupervised and site-independent.
//
// A ListExtractor holds no mutable state: Extract reads only the page and
// the Domain, whose recognizers close over data frozen at construction
// (compiled regexps, gazetteer maps). A Domain value may therefore be shared
// by extractors running concurrently on different goroutines.
type ListExtractor struct {
	Domain Domain
	// MinItems is the minimum number of repeated siblings to consider a
	// container a list (default 2).
	MinItems int
}

// Name implements Operator.
func (e *ListExtractor) Name() string { return internOpName("listextract:", e.Domain.Concept) }

// Extract implements Operator.
func (e *ListExtractor) Extract(p *webgraph.Page) []*Candidate {
	return e.ExtractAnalyzed(Analyze(p))
}

// ExtractAnalyzed implements Operator over a shared page analysis.
func (e *ListExtractor) ExtractAnalyzed(pa *PageAnalysis) []*Candidate {
	minItems := e.MinItems
	if minItems < 2 {
		minItems = 2
	}
	var out []*Candidate
	for _, group := range pa.Groups(minItems) {
		out = append(out, e.extractGroup(pa, group)...)
	}
	return out
}

// repeatedGroups finds maximal runs of sibling elements sharing a tag and
// class signature — the page's repeated template slots.
func repeatedGroups(doc *htmlx.Node, minItems int) [][]*htmlx.Node {
	var groups [][]*htmlx.Node
	doc.Walk(func(n *htmlx.Node) bool {
		if n.Type != htmlx.ElementNode && n.Type != htmlx.DocumentNode {
			return true
		}
		kids := n.ChildElements()
		if len(kids) < minItems {
			return true
		}
		bySig := make(map[string][]*htmlx.Node)
		var order []string
		for _, k := range kids {
			sig := internSig(k.Data, k.Class())
			if _, seen := bySig[sig]; !seen {
				order = append(order, sig)
			}
			bySig[sig] = append(bySig[sig], k)
		}
		for _, sig := range order {
			g := bySig[sig]
			if len(g) >= minItems && !isHeaderGroup(g) {
				groups = append(groups, g)
			}
		}
		return true
	})
	return groups
}

// isHeaderGroup filters groups made of table header rows.
func isHeaderGroup(g []*htmlx.Node) bool {
	if g[0].Data != "tr" {
		return false
	}
	ths := 0
	for _, c := range g[0].ChildElements() {
		if c.Data == "th" {
			ths++
		}
	}
	return ths > 0 && ths == len(g[0].ChildElements())
}

// span is one text fragment inside a list item. norm, when filled by
// analyzeSpans, is the precomputed textproc.Normalize(text) that gazetteer
// recognizers match against (shared across every domain run on the page).
type span struct {
	text   string
	anchor bool
	norm   string
}

// itemSpans collects the visible text fragments of an item in document
// order: leaf element texts, with anchors flagged.
func itemSpans(item *htmlx.Node) []span {
	var spans []span
	item.Walk(func(n *htmlx.Node) bool {
		if n.Type != htmlx.ElementNode {
			return true
		}
		if n.Data == "a" {
			if t := n.Text(); t != "" {
				spans = append(spans, span{text: t, anchor: true})
			}
			return false
		}
		if len(n.ChildElements()) == 0 {
			if t := n.Text(); t != "" {
				spans = append(spans, span{text: t})
			}
			return false
		}
		return true
	})
	if len(spans) == 0 {
		if t := item.Text(); t != "" {
			spans = append(spans, span{text: t})
		}
	}
	return spans
}

// extractGroup scores one repeated group against the domain and, if it
// passes, emits one candidate per item.
func (e *ListExtractor) extractGroup(pa *PageAnalysis, group []*htmlx.Node) []*Candidate {
	d := e.Domain
	minFrac := d.MinEvidenceFrac
	if minFrac == 0 {
		minFrac = 0.5
	}
	type parsedItem struct {
		cand     *Candidate
		evidence bool
	}
	items := make([]parsedItem, 0, len(group))
	withEvidence := 0
	for _, item := range group {
		cand, hasEvidence, ok := e.parseItem(pa, item)
		if !ok {
			continue
		}
		items = append(items, parsedItem{cand, hasEvidence})
		if hasEvidence {
			withEvidence++
		}
	}
	if len(items) == 0 {
		return nil
	}
	listScore := float64(withEvidence) / float64(len(items))
	if listScore < minFrac {
		return nil // not a list of this concept (e.g. a nav bar)
	}
	var out []*Candidate
	for _, it := range items {
		if !it.evidence {
			continue // item inside an accepted list but without evidence
		}
		out = append(out, scaleConfidence(it.cand, listScore))
	}
	return out
}

// parseItem extracts one item's attributes. ok is false if the item violates
// a multiplicity constraint (it is probably not a single record).
func (e *ListExtractor) parseItem(pa *PageAnalysis, item *htmlx.Node) (cand *Candidate, hasEvidence, ok bool) {
	d := e.Domain
	spans := pa.itemSpansOf(item)
	it := pa.itemTextOf(item)
	full := it.full

	// Statistical constraints: more distinct values than allowed means the
	// "item" actually spans several records.
	for _, c := range d.Constraints {
		if rec, found := recognizerFor(d, c.Key); found {
			if distinctExceeds(rec, full, c.MaxValues) {
				return nil, false, false
			}
		}
	}

	cand = NewCandidate(d.Concept, pa.Page.URL, e.Name())
	matched := make(map[string]bool) // span texts consumed by recognizers
	for _, rec := range d.Recognizers {
		// Prefer span-local matches (more precise provenance), fall back to
		// the full item text. A span counts as consumed only when the match
		// covers most of it — a cuisine word inside "Blue Palm American
		// Restaurant" must not eat the name span.
		found := false
		for i := range spans {
			sp := &spans[i]
			if v, okm := rec.matchSpan(sp); okm {
				cand.Add(rec.Key, v, attrConf(rec.Weight))
				if len(v)*2 >= len(strings.TrimSpace(sp.text)) {
					matched[sp.text] = true
				}
				found = true
				break
			}
		}
		if !found {
			if v, okm := rec.matchNormalized(full, it.norm); okm {
				cand.Add(rec.Key, v, attrConf(rec.Weight)*0.9)
			}
		}
	}

	// Name assignment.
	switch d.NameFrom {
	case "anchor":
		for i := range spans {
			sp := &spans[i]
			if sp.anchor && !matched[sp.text] {
				cand.Add(d.NameKey, sp.text, 0.9)
				break
			}
		}
	case "first-span":
		for i := range spans {
			sp := &spans[i]
			if !matched[sp.text] && !recognizedByAnySpan(d, sp) {
				cand.Add(d.NameKey, sp.text, 0.85)
				break
			}
		}
	}

	for _, k := range d.Evidence {
		if len(cand.Attrs[k]) > 0 {
			hasEvidence = true
			break
		}
	}
	// A record needs a name (when the domain defines one) to be usable.
	if d.NameKey != "" && cand.Get(d.NameKey) == "" {
		hasEvidence = false
	}
	return cand, hasEvidence, true
}

func attrConf(weight float64) float64 {
	c := 0.55 + 0.45*weight
	if c > 1 {
		return 1
	}
	return c
}

func scaleConfidence(c *Candidate, listScore float64) *Candidate {
	factor := 0.5 + 0.5*listScore
	return c.Chain("listscore", factor)
}

func recognizerFor(d Domain, key string) (Recognizer, bool) {
	for _, r := range d.Recognizers {
		if r.Key == key {
			return r, true
		}
	}
	return Recognizer{}, false
}

func recognizedByAny(d Domain, text string) bool {
	for _, r := range d.Recognizers {
		if v, ok := r.Match(text); ok {
			// Only treat as recognized if the match covers most of the span;
			// "Pizza My Heart 95014" should still yield a name.
			if len(v)*2 >= len(strings.TrimSpace(text)) {
				return true
			}
		}
	}
	return false
}

// recognizedByAnySpan is recognizedByAny over an analyzed span, letting
// gazetteer recognizers reuse the span's precomputed normalization.
func recognizedByAnySpan(d Domain, sp *span) bool {
	for _, r := range d.Recognizers {
		if v, ok := r.matchSpan(sp); ok {
			if len(v)*2 >= len(strings.TrimSpace(sp.text)) {
				return true
			}
		}
	}
	return false
}

// countDistinct counts distinct normalized values of rec in text (bounded at
// 64 match scans). Constraint checks use distinctExceeds instead, which
// stops as soon as the limit is crossed.
func countDistinct(rec Recognizer, text string) int {
	seen := make(map[string]bool)
	rest := text
	for i := 0; i < 64; i++ { // bound the scan
		v, ok := rec.Match(rest)
		if !ok {
			break
		}
		seen[textproc.Normalize(v)] = true
		idx := strings.Index(rest, v)
		if idx < 0 {
			break
		}
		rest = rest[idx+len(v):]
	}
	return len(seen)
}

// distinctExceeds reports whether text holds more than max distinct
// normalized values of rec. It decides exactly like counting all distinct
// values (bounded at 64 match scans) and comparing, but returns as soon as
// the limit is crossed instead of scanning out the rest of the text.
func distinctExceeds(rec Recognizer, text string, max int) bool {
	seen := make(map[string]bool)
	rest := text
	for i := 0; i < 64; i++ { // bound the scan
		v, ok := rec.Match(rest)
		if !ok {
			break
		}
		seen[textproc.Normalize(v)] = true
		if len(seen) > max {
			return true
		}
		idx := strings.Index(rest, v)
		if idx < 0 {
			break
		}
		rest = rest[idx+len(v):]
	}
	return false
}

// DetailExtractor extracts a single record from a detail page (an aggregator
// biz page, an official homepage, a portal leaf): the page-level analogue of
// list extraction, using the same domain knowledge. The multiplicity
// constraints are what tell a detail page apart from a listing page —
// a page with five zip codes is not about one restaurant. Like
// ListExtractor, it is stateless and safe to run concurrently.
type DetailExtractor struct {
	Domain Domain
}

// Name implements Operator.
func (e *DetailExtractor) Name() string { return internOpName("detail:", e.Domain.Concept) }

// Extract implements Operator.
func (e *DetailExtractor) Extract(p *webgraph.Page) []*Candidate {
	return e.ExtractAnalyzed(Analyze(p))
}

// ExtractAnalyzed implements Operator over a shared page analysis.
func (e *DetailExtractor) ExtractAnalyzed(pa *PageAnalysis) []*Candidate {
	d := e.Domain
	full := pa.BodyText()

	for _, c := range d.Constraints {
		if rec, found := recognizerFor(d, c.Key); found {
			if distinctExceeds(rec, full, c.MaxValues) {
				return nil
			}
		}
	}

	cand := NewCandidate(d.Concept, pa.Page.URL, e.Name())
	for _, rec := range d.Recognizers {
		var v string
		var ok bool
		if rec.MatchNorm != nil {
			v, ok = rec.MatchNorm(pa.BodyNorm())
		} else {
			v, ok = rec.Match(full)
		}
		if ok {
			cand.Add(rec.Key, v, attrConf(rec.Weight))
		}
	}
	// Name from the page's main heading, else its title.
	if d.NameKey != "" {
		if h1, ok := pa.BodyH1(); ok {
			cand.Add(d.NameKey, cleanHeading(h1), 0.9)
		} else if t, ok := pa.Title(); ok {
			cand.Add(d.NameKey, cleanHeading(t), 0.7)
		}
	}
	hasEvidence := false
	for _, k := range d.Evidence {
		if len(cand.Attrs[k]) > 0 {
			hasEvidence = true
			break
		}
	}
	if !hasEvidence || (d.NameKey != "" && cand.Get(d.NameKey) == "") {
		return nil
	}
	return []*Candidate{cand}
}

// mainText returns the page text excluding nav and footer boilerplate.
func mainText(body *htmlx.Node) string {
	var b strings.Builder
	for _, c := range body.Children {
		if c.Type == htmlx.ElementNode && (c.HasClass("topnav") || c.HasClass("footer")) {
			continue
		}
		b.WriteString(c.Text())
		b.WriteByte(' ')
	}
	return strings.Join(strings.Fields(b.String()), " ")
}

// cleanHeading strips site-name decorations like " - welp.example" and
// boilerplate prefixes from headings used as names.
func cleanHeading(h string) string {
	if i := strings.Index(h, " - "); i > 0 {
		h = h[:i]
	}
	for _, prefix := range []string{"Find ", "Welcome to "} {
		h = strings.TrimPrefix(h, prefix)
	}
	for _, suffix := range []string{" Menu", " Review"} {
		h = strings.TrimSuffix(h, suffix)
	}
	return strings.TrimSpace(h)
}
