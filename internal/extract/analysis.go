package extract

import (
	"sort"
	"strings"
	"sync"

	"conceptweb/internal/htmlx"
	"conceptweb/internal/textproc"
	"conceptweb/internal/webgraph"
)

// PageAnalysis caches the per-page DOM passes that every extraction operator
// used to redo independently: repeated-sibling groups, singleton template
// slots, per-item text spans (with precomputed normalizations for gazetteer
// matching), the boilerplate-free body and main text, and label/value pairs.
// One analysis is computed per page and shared across all operators and all
// domains running over that page — at two domains per page, that alone
// halves the DOM-walk cost of the extract stage.
//
// Every derived view is built lazily under a sync.Once and is immutable
// afterwards, so a single PageAnalysis may be shared by operators running on
// different goroutines (the parallel build fans one site's analyses out to
// one task per domain).
type PageAnalysis struct {
	Page *webgraph.Page

	groupsOnce sync.Once
	groups     [][]*htmlx.Node          // repeated groups at minItems=2
	groupCPS   []string                 // ClassPathSignature of each group's first item
	spans      map[*htmlx.Node][]span   // text spans of every group member
	itemTexts  map[*htmlx.Node]itemText // full text + normalization of every group member

	singlesOnce sync.Once
	singles     []*htmlx.Node // singleton template slots at minItems=2, sorted
	singleCPS   []string      // ClassPathSignature aligned with singles

	bodyOnce  sync.Once
	bodyText  string // mainText of the body (nav/footer stripped)
	bodyH1    string // text of the body's first h1
	hasBodyH1 bool
	titleText string // text of the document title
	hasTitle  bool

	bodyNormOnce sync.Once
	bodyNorm     string // textproc.Normalize(bodyText)

	mainOnce sync.Once
	mainTxt  string // whole-document text minus topnav/footer/breadcrumb

	mainToksOnce sync.Once
	mainToks     []string // MainText tokenized, stopword-filtered, stemmed

	pairsOnce sync.Once
	pairs     [][2]string // label/value pairs from th/td rows and dt/dd runs
}

// itemText is a list item's full text and its normalization, computed once
// and reused by every recognizer and constraint check that scans the item.
type itemText struct {
	full string
	norm string
}

// Analyze wraps p in a fresh analysis. All views are computed on first use.
func Analyze(p *webgraph.Page) *PageAnalysis {
	return &PageAnalysis{Page: p}
}

// AnalyzeAll wraps each page. The result slice is what site-level extraction
// shares across the per-domain tasks of one host.
func AnalyzeAll(pages []*webgraph.Page) []*PageAnalysis {
	pas := make([]*PageAnalysis, len(pages))
	for i, p := range pages {
		pas[i] = Analyze(p)
	}
	return pas
}

func (pa *PageAnalysis) ensureGroups() {
	pa.groupsOnce.Do(func() {
		pa.groups = repeatedGroups(pa.Page.Doc, 2)
		pa.groupCPS = make([]string, len(pa.groups))
		pa.spans = make(map[*htmlx.Node][]span)
		pa.itemTexts = make(map[*htmlx.Node]itemText)
		for gi, g := range pa.groups {
			pa.groupCPS[gi] = g[0].ClassPathSignature()
			for _, item := range g {
				if _, ok := pa.spans[item]; ok {
					continue
				}
				pa.spans[item] = analyzeSpans(item)
				full := item.Text()
				pa.itemTexts[item] = itemText{full: full, norm: textproc.Normalize(full)}
			}
		}
	})
}

// GroupsWithSigs returns the page's repeated-sibling groups of at least
// minItems members, with each group's first-item class-path signature.
// Groups are detected once at the base threshold of 2 and filtered upward:
// a group of >= m members is exactly a base group of >= m members, and the
// header-row filter depends only on the group's first item.
func (pa *PageAnalysis) GroupsWithSigs(minItems int) ([][]*htmlx.Node, []string) {
	pa.ensureGroups()
	if minItems <= 2 {
		return pa.groups, pa.groupCPS
	}
	var gs [][]*htmlx.Node
	var sigs []string
	for i, g := range pa.groups {
		if len(g) >= minItems {
			gs = append(gs, g)
			sigs = append(sigs, pa.groupCPS[i])
		}
	}
	return gs, sigs
}

// Groups returns the repeated-sibling groups of at least minItems members.
func (pa *PageAnalysis) Groups(minItems int) [][]*htmlx.Node {
	g, _ := pa.GroupsWithSigs(minItems)
	return g
}

// itemSpansOf returns the cached spans for a group member, or computes them
// fresh for other nodes (pass-2 propagation singles) without mutating the
// shared cache.
func (pa *PageAnalysis) itemSpansOf(item *htmlx.Node) []span {
	pa.ensureGroups()
	if s, ok := pa.spans[item]; ok {
		return s
	}
	return analyzeSpans(item)
}

// analyzeSpans computes an item's spans with their normalizations filled in
// (plain itemSpans leaves norm empty for callers that never run gazetteer
// recognizers over spans).
func analyzeSpans(item *htmlx.Node) []span {
	spans := itemSpans(item)
	for i := range spans {
		spans[i].norm = textproc.Normalize(spans[i].text)
	}
	return spans
}

// itemTextOf returns the cached full text and normalization for a group
// member, computing them fresh for other nodes.
func (pa *PageAnalysis) itemTextOf(item *htmlx.Node) itemText {
	pa.ensureGroups()
	if t, ok := pa.itemTexts[item]; ok {
		return t
	}
	full := item.Text()
	return itemText{full: full, norm: textproc.Normalize(full)}
}

// Singles returns the page's singleton template slots — element children
// whose sibling signature group is smaller than minItems — sorted stably by
// path signature, with each node's class-path signature aligned. This is the
// pass-2 input of site-level template propagation.
func (pa *PageAnalysis) Singles(minItems int) ([]*htmlx.Node, []string) {
	if minItems <= 2 {
		pa.singlesOnce.Do(func() {
			pa.singles, pa.singleCPS = collectSingles(pa.Page.Doc, 2)
		})
		return pa.singles, pa.singleCPS
	}
	nodes, cps := collectSingles(pa.Page.Doc, minItems)
	return nodes, cps
}

// collectSingles gathers element children whose sibling-signature group has
// fewer than minItems members, in first-seen signature order, then sorts
// them stably by path signature (the deterministic order pass 2 consumes).
func collectSingles(doc *htmlx.Node, minItems int) ([]*htmlx.Node, []string) {
	var singles []*htmlx.Node
	doc.Walk(func(n *htmlx.Node) bool {
		if n.Type != htmlx.ElementNode {
			return true
		}
		kids := n.ChildElements()
		bySig := make(map[string][]*htmlx.Node)
		var order []string
		for _, k := range kids {
			sig := internSig(k.Data, k.Class())
			if _, seen := bySig[sig]; !seen {
				order = append(order, sig)
			}
			bySig[sig] = append(bySig[sig], k)
		}
		for _, sig := range order {
			if g := bySig[sig]; len(g) < minItems {
				singles = append(singles, g...)
			}
		}
		return true
	})
	if len(singles) == 0 {
		return nil, nil
	}
	pathSigs := make([]string, len(singles))
	for i, n := range singles {
		pathSigs[i] = n.PathSignature()
	}
	idx := make([]int, len(singles))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return pathSigs[idx[a]] < pathSigs[idx[b]]
	})
	sorted := make([]*htmlx.Node, len(singles))
	cps := make([]string, len(singles))
	for k, i := range idx {
		sorted[k] = singles[i]
		cps[k] = singles[i].ClassPathSignature()
	}
	return sorted, cps
}

func (pa *PageAnalysis) ensureBody() {
	pa.bodyOnce.Do(func() {
		body := pa.Page.Doc.FindFirst("body")
		if body == nil {
			body = pa.Page.Doc
		}
		pa.bodyText = mainText(body)
		if h1 := body.FindFirst("h1"); h1 != nil {
			pa.hasBodyH1 = true
			pa.bodyH1 = h1.Text()
		}
		if t := pa.Page.Doc.FindFirst("title"); t != nil {
			pa.hasTitle = true
			pa.titleText = t.Text()
		}
	})
}

// BodyText returns the page body's text with nav/footer boilerplate removed
// — the detail extractor's haystack.
func (pa *PageAnalysis) BodyText() string {
	pa.ensureBody()
	return pa.bodyText
}

// BodyNorm returns the normalization of BodyText, shared by every gazetteer
// recognizer across every domain run on the page.
func (pa *PageAnalysis) BodyNorm() string {
	pa.bodyNormOnce.Do(func() {
		pa.bodyNorm = textproc.Normalize(pa.BodyText())
	})
	return pa.bodyNorm
}

// BodyH1 returns the text of the body's first h1 heading, if any.
func (pa *PageAnalysis) BodyH1() (string, bool) {
	pa.ensureBody()
	return pa.bodyH1, pa.hasBodyH1
}

// Title returns the text of the document's title element, if any.
func (pa *PageAnalysis) Title() (string, bool) {
	pa.ensureBody()
	return pa.titleText, pa.hasTitle
}

// MainText returns the whole-document text with topnav/footer/breadcrumb
// boilerplate removed — what semantic linking scores against records.
func (pa *PageAnalysis) MainText() string {
	pa.mainOnce.Do(func() {
		var b strings.Builder
		var walk func(n *htmlx.Node)
		walk = func(n *htmlx.Node) {
			if n.Type == htmlx.ElementNode &&
				(n.HasClass("topnav") || n.HasClass("footer") || n.HasClass("breadcrumb")) {
				return
			}
			if n.Type == htmlx.TextNode {
				b.WriteString(n.Data)
				b.WriteByte(' ')
				return
			}
			for _, c := range n.Children {
				walk(c)
			}
		}
		walk(pa.Page.Doc)
		pa.mainTxt = strings.Join(strings.Fields(b.String()), " ")
	})
	return pa.mainTxt
}

// MainTokens returns MainText tokenized, stopword-filtered, and stemmed —
// the token stream the text matcher consumes. Callers must not mutate it.
func (pa *PageAnalysis) MainTokens() []string {
	pa.mainToksOnce.Do(func() {
		toks := textproc.RemoveStopwordsInPlace(textproc.Tokenize(pa.MainText()))
		pa.mainToks = textproc.StemInPlace(toks)
	})
	return pa.mainToks
}

// Pairs returns the page's (label, value) pairs from th/td table rows and
// dt/dd definition runs.
func (pa *PageAnalysis) Pairs() [][2]string {
	pa.pairsOnce.Do(func() {
		pa.pairs = collectPairs(pa.Page.Doc)
	})
	return pa.pairs
}
