package extract

import (
	"fmt"
	"strings"
	"testing"

	"conceptweb/internal/htmlx"
)

// benchListPage synthesizes a listing page shaped like the generated
// restaurant-guide sites: a repeated card group plus nav/footer chrome.
func benchListPage() *htmlx.Node {
	var b strings.Builder
	b.WriteString(`<html><head><title>Guide</title></head><body>` +
		`<div class="topnav"><a href="/">Home</a><a href="/about">About</a></div>` +
		`<h1>Best Restaurants</h1><div class="results">`)
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&b, `<div class="card"><h2 class="name">Place %d</h2>`+
			`<span class="addr">%d Main St, Springfield, IL 627%02d</span>`+
			`<span class="phone">(217) 555-01%02d</span>`+
			`<span class="cuisine">Italian</span><span class="price">$%d.50</span></div>`,
			i, 100+i, i%100, i%100, 10+i%20)
	}
	b.WriteString(`</div><div class="footer">© Guide</div></body></html>`)
	return htmlx.Parse(b.String())
}

func BenchmarkRepeatedGroups(b *testing.B) {
	doc := benchListPage()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if g := repeatedGroups(doc, 2); len(g) == 0 {
			b.Fatal("no groups found")
		}
	}
}

// The signature-interning table means a warmed-up repeatedGroups walk
// allocates its group bookkeeping (per-parent maps and slices) but never
// per-node signature strings. Measured ~560 allocs/run for this 40-card
// page; dropping the intern table adds one string concatenation per child
// element (~290 more here), which the ceiling is tight enough to catch.
func TestRepeatedGroupsAllocs(t *testing.T) {
	doc := benchListPage()
	repeatedGroups(doc, 2) // warm the intern table
	allocs := testing.AllocsPerRun(50, func() {
		repeatedGroups(doc, 2)
	})
	if allocs > 700 {
		t.Errorf("repeatedGroups = %.1f allocs/run, want <= 700", allocs)
	}
}
