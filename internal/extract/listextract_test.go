package extract

import (
	"strings"
	"testing"

	"conceptweb/internal/textproc"
	"conceptweb/internal/webgen"
	"conceptweb/internal/webgraph"
)

const categoryPageHTML = `<html><head><title>Italian in San Jose</title></head><body>
<ul class="nav"><li><a href="/">Home</a></li><li><a href="/about">About</a></li>
<li><a href="/contact">Contact</a></li><li><a href="/help">Help</a></li></ul>
<h1>Italian Restaurants in San Jose</h1>
<ul class="results">
<li class="result"><a class="name" href="/biz/luigi">Luigi Trattoria</a>
<span class="addr">12 Main St</span><span class="zip">95112</span><span class="phone">408-555-0101</span></li>
<li class="result"><a class="name" href="/biz/roma">Roma Kitchen</a>
<span class="addr">900 Park Ave</span><span class="zip">95113</span><span class="phone">(408) 555-0102</span></li>
<li class="result"><a class="name" href="/biz/nonna">Nonna House</a>
<span class="addr">77 Market St</span><span class="zip">95112</span><span class="phone">408.555.0103</span></li>
</ul>
<ul class="related-searches"><li><a href="/s/1">best italian</a></li>
<li><a href="/s/2">italian delivery</a></li><li><a href="/s/3">cheap italian</a></li></ul>
</body></html>`

func restaurantExtractor() *ListExtractor {
	return &ListExtractor{Domain: RestaurantDomain(
		[]string{"San Jose", "Cupertino", "Santa Clara"},
		[]string{"italian", "mexican", "chinese"})}
}

func TestListExtractCategoryPage(t *testing.T) {
	p := webgraph.NewPage("agg.example/c/san-jose-italian", categoryPageHTML)
	cands := restaurantExtractor().Extract(p)
	if len(cands) != 3 {
		t.Fatalf("got %d candidates, want 3: %+v", len(cands), cands)
	}
	byName := map[string]*Candidate{}
	for _, c := range cands {
		byName[c.Get("name")] = c
		if c.Concept != "restaurant" {
			t.Errorf("concept = %q", c.Concept)
		}
		if c.SourceURL != p.URL {
			t.Errorf("lineage source = %q", c.SourceURL)
		}
		if len(c.Operators) == 0 || !strings.HasPrefix(c.Operators[0], "listextract") {
			t.Errorf("lineage ops = %v", c.Operators)
		}
	}
	luigi := byName["Luigi Trattoria"]
	if luigi == nil {
		t.Fatalf("Luigi missing: %v", byName)
	}
	if luigi.Get("zip") != "95112" {
		t.Errorf("zip = %q", luigi.Get("zip"))
	}
	if luigi.Get("phone") != "408-555-0101" {
		t.Errorf("phone = %q", luigi.Get("phone"))
	}
	if luigi.Get("street") != "12 Main St" {
		t.Errorf("street = %q", luigi.Get("street"))
	}
}

func TestListExtractRejectsNavDecoys(t *testing.T) {
	p := webgraph.NewPage("agg.example/c/x", categoryPageHTML)
	cands := restaurantExtractor().Extract(p)
	for _, c := range cands {
		n := textproc.Normalize(c.Get("name"))
		for _, bad := range []string{"home", "about", "contact", "best italian", "cheap italian"} {
			if n == bad {
				t.Errorf("decoy extracted as record: %q", n)
			}
		}
	}
}

func TestListExtractTableStyle(t *testing.T) {
	html := `<html><body><table class="results">
<tr><th>Restaurant</th><th>Address</th><th>Zip</th><th>Phone</th></tr>
<tr class="result-row"><td><a href="/b/1">Taco Loco</a></td><td>1 First Ave</td><td>95050</td><td>408-555-0201</td></tr>
<tr class="result-row"><td><a href="/b/2">El Farol</a></td><td>2 Main St</td><td>95051</td><td>408-555-0202</td></tr>
<tr class="result-row"><td><a href="/b/3">Casa Azul</a></td><td>3 Park Ave</td><td>95050</td><td>408-555-0203</td></tr>
</table></body></html>`
	p := webgraph.NewPage("agg.example/t", html)
	cands := restaurantExtractor().Extract(p)
	if len(cands) != 3 {
		t.Fatalf("got %d from table, want 3", len(cands))
	}
	for _, c := range cands {
		if c.Get("name") == "" || c.Get("zip") == "" {
			t.Errorf("incomplete: %v %v", c.Get("name"), c.Attrs)
		}
	}
}

func TestListExtractConstraintRejection(t *testing.T) {
	// An "item" containing two different zips spans multiple records and
	// must be rejected by the multiplicity constraint.
	html := `<html><body><ul class="results">
<li class="result"><a href="/1">Mega Row</a> 95112 and also 95050 408-555-0301</li>
<li class="result"><a href="/2">Good Row</a> 95112 408-555-0302</li>
<li class="result"><a href="/3">Other Row</a> 95113 408-555-0303</li>
</ul></body></html>`
	p := webgraph.NewPage("agg.example/c", html)
	cands := restaurantExtractor().Extract(p)
	for _, c := range cands {
		if c.Get("name") == "Mega Row" {
			t.Error("constraint-violating item extracted")
		}
	}
	if len(cands) != 2 {
		t.Errorf("got %d candidates, want 2", len(cands))
	}
}

func TestListExtractMenu(t *testing.T) {
	html := `<html><body><ul class="menu">
<li class="dish"><span class="dish-name">Margherita Pizza</span><span class="dish-price">$12.50</span></li>
<li class="dish"><span class="dish-name">Lasagna</span><span class="dish-price">$14.00</span></li>
<li class="dish"><span class="dish-name">Tiramisu</span><span class="dish-price">$7.25</span></li>
</ul></body></html>`
	p := webgraph.NewPage("rest.example/menu", html)
	e := &ListExtractor{Domain: MenuDomain()}
	cands := e.Extract(p)
	if len(cands) != 3 {
		t.Fatalf("got %d menu items", len(cands))
	}
	if cands[0].Get("name") != "Margherita Pizza" || cands[0].Get("price") != "$12.50" {
		t.Errorf("item = %v", cands[0].Attrs)
	}
}

func TestListExtractEmptyAndJunkPages(t *testing.T) {
	e := restaurantExtractor()
	for _, html := range []string{
		"", "<html></html>",
		"<html><body><p>just prose, no lists</p></body></html>",
		"<html><body><ul><li>a</li><li>b</li><li>c</li></ul></body></html>", // list, no evidence
	} {
		p := webgraph.NewPage("x.example/p", html)
		if cands := e.Extract(p); len(cands) != 0 {
			t.Errorf("junk page %q yielded %d candidates", html[:min(30, len(html))], len(cands))
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Integration: run list extraction over real webgen category pages and score
// against ground truth. The shape claim of A1: high precision and recall on
// structured aggregator lists, with no supervision.
func TestListExtractOnSyntheticWorld(t *testing.T) {
	cfg := webgen.DefaultConfig()
	cfg.Restaurants = 60
	cfg.ReviewArticles = 10
	w := webgen.Generate(cfg)
	e := &SitePropagator{Inner: &ListExtractor{Domain: RestaurantDomain(w.Cities(), nil)}}
	tp, fp, total := 0, 0, 0
	for _, host := range []string{"welp.example", "citysift.example", "yellowfile.example"} {
		site, _ := w.SiteByHost(host)
		var pages []*webgraph.Page
		truthNames := make(map[string]bool)
		for _, page := range site.Pages {
			if page.Truth.Kind != webgen.KindCategory {
				continue
			}
			for _, id := range page.Truth.EntityIDs {
				r, _ := w.RestaurantByID(id)
				for v := 0; v < 3; v++ {
					truthNames[textproc.Normalize(r.NameVariant(v))] = true
				}
			}
			total += len(page.Truth.EntityIDs)
			pages = append(pages, webgraph.NewPage(page.URL, page.HTML))
		}
		for _, c := range e.ExtractSite(pages) {
			if truthNames[textproc.Normalize(c.Get("name"))] {
				tp++
			} else {
				fp++
			}
		}
	}
	if total == 0 {
		t.Fatal("no category pages in world")
	}
	precision := float64(tp) / float64(tp+fp)
	recall := float64(tp) / float64(total)
	t.Logf("list extraction: precision=%.3f recall=%.3f (tp=%d fp=%d total=%d)", precision, recall, tp, fp, total)
	if precision < 0.9 {
		t.Errorf("precision %.3f too low", precision)
	}
	if recall < 0.8 {
		t.Errorf("recall %.3f too low", recall)
	}
}

func TestDetailExtractorOnBizPage(t *testing.T) {
	cfg := webgen.DefaultConfig()
	cfg.Restaurants = 30
	cfg.ReviewArticles = 5
	w := webgen.Generate(cfg)
	e := &DetailExtractor{Domain: RestaurantDomain(w.Cities(), nil)}
	checked := 0
	for _, page := range w.Pages() {
		if page.Truth.Kind != webgen.KindBiz || page.Truth.Site != webgen.PrimaryAggregator {
			continue
		}
		r, _ := w.RestaurantByID(page.Truth.EntityIDs[0])
		cands := e.Extract(webgraph.NewPage(page.URL, page.HTML))
		if len(cands) != 1 {
			t.Fatalf("biz page %s: %d candidates", page.URL, len(cands))
		}
		c := cands[0]
		if c.Get("zip") != r.Zip {
			t.Errorf("%s: zip %q want %q", page.URL, c.Get("zip"), r.Zip)
		}
		if c.Get("city") != r.City {
			t.Errorf("%s: city %q want %q", page.URL, c.Get("city"), r.City)
		}
		if textproc.Normalize(c.Get("name")) != textproc.Normalize(r.Name) {
			t.Errorf("%s: name %q want %q", page.URL, c.Get("name"), r.Name)
		}
		checked++
		if checked >= 15 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no biz pages checked")
	}
}

func TestDetailExtractorRejectsListingPages(t *testing.T) {
	cfg := webgen.DefaultConfig()
	cfg.Restaurants = 40
	cfg.ReviewArticles = 5
	w := webgen.Generate(cfg)
	e := &DetailExtractor{Domain: RestaurantDomain(w.Cities(), nil)}
	rejected, multi := 0, 0
	for _, page := range w.Pages() {
		if page.Truth.Kind != webgen.KindCategory || len(page.Truth.EntityIDs) < 2 {
			continue
		}
		multi++
		if cands := e.Extract(webgraph.NewPage(page.URL, page.HTML)); len(cands) == 0 {
			rejected++
		}
	}
	if multi == 0 {
		t.Skip("no multi-entity category pages at this size")
	}
	if frac := float64(rejected) / float64(multi); frac < 0.9 {
		t.Errorf("only %.2f of listing pages rejected by detail extractor", frac)
	}
}

func TestPipelineRuns(t *testing.T) {
	p1 := webgraph.NewPage("a.example/1", categoryPageHTML)
	pl := &Pipeline{Ops: []Operator{restaurantExtractor(), &DetailExtractor{Domain: MenuDomain()}}}
	cands := pl.Run([]*webgraph.Page{p1})
	if len(cands) == 0 {
		t.Error("pipeline produced nothing")
	}
}
