package extract

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"conceptweb/internal/webgen"
	"conceptweb/internal/webgraph"
)

func TestTokenizeCitation(t *testing.T) {
	got := TokenizeCitation("A. Smith (2005). Title Here. VLDB.")
	want := []string{"A", ".", "Smith", "(", "2005", ")", ".", "Title", "Here", ".", "VLDB", "."}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("tokens = %v", got)
	}
	if TokenizeCitation("") != nil {
		t.Error("empty should be nil")
	}
}

func TestShapeFeatures(t *testing.T) {
	cases := map[string]string{
		"2005":  "year",
		"1999":  "year",
		"1234":  "digits",
		"12345": "digits",
		"VLDB":  "allcaps",
		"Title": "cap",
		"word":  "lower",
		".":     "punct:.",
	}
	for in, want := range cases {
		if got := shape(in); got != want {
			t.Errorf("shape(%q) = %q, want %q", in, got, want)
		}
	}
}

// labelCitation builds a gold label sequence for a synthetic citation built
// from known parts, by aligning token spans.
func labelCitation(authors, title, venue, year string, full string) Tagged {
	toks := TokenizeCitation(full)
	labels := make([]string, len(toks))
	mark := func(part, label string) {
		pt := TokenizeCitation(part)
		if len(pt) == 0 {
			return
		}
		for i := 0; i+len(pt) <= len(toks); i++ {
			match := true
			for j := range pt {
				if toks[i+j] != pt[j] {
					match = false
					break
				}
			}
			if match {
				for j := range pt {
					labels[i+j] = label
				}
			}
		}
	}
	for i := range labels {
		labels[i] = LabelOther
	}
	mark(title, LabelTitle)
	mark(authors, LabelAuthor)
	mark(venue, LabelVenue)
	mark(year, LabelYear)
	return Tagged{Tokens: toks, Labels: labels}
}

// citeCorpus builds a labeled corpus in the given style from the world's
// papers. Styles follow webgen's citation formats.
func citeCorpus(w *webgen.World, style int, limit int) []Tagged {
	var out []Tagged
	for _, a := range w.Authors {
		for _, pid := range a.PaperIDs {
			p, _ := w.PaperByID(pid)
			names := make([]string, len(p.AuthorIDs))
			for i, aid := range p.AuthorIDs {
				au, _ := w.AuthorByID(aid)
				if style%3 == 1 {
					parts := strings.Fields(au.Name)
					names[i] = parts[0][:1] + ". " + parts[len(parts)-1]
				} else {
					names[i] = au.Name
				}
			}
			authors := strings.Join(names, ", ")
			var full string
			switch style % 3 {
			case 1:
				full = fmt.Sprintf("%s. %s. In Proceedings of %s, %d.", authors, p.Title, p.Venue, p.Year)
			case 2:
				full = fmt.Sprintf("%s (%d). %s. %s.", authors, p.Year, p.Title, p.Venue)
			default:
				full = fmt.Sprintf("%s. %s. %s %d.", authors, p.Title, p.Venue, p.Year)
			}
			out = append(out, labelCitation(authors, p.Title, p.Venue, fmt.Sprintf("%d", p.Year), full))
			if len(out) >= limit {
				return out
			}
		}
	}
	return out
}

func trainTestWorld() *webgen.World {
	cfg := webgen.DefaultConfig()
	cfg.Restaurants = 5
	cfg.Authors = 30
	cfg.Papers = 80
	cfg.ReviewArticles = 2
	cfg.TVArticles = 2
	return webgen.Generate(cfg)
}

func newCitationTagger(w *webgen.World) *Tagger {
	tg := NewTagger([]string{LabelAuthor, LabelTitle, LabelVenue, LabelYear, LabelOther})
	for _, v := range []string{"PODS", "SIGMOD", "VLDB", "ICDE", "KDD", "WWW", "WSDM", "CIDR"} {
		tg.Gazetteer[strings.ToLower(v)] = "venue"
	}
	return tg
}

func tokenAccuracy(tg *Tagger, data []Tagged) float64 {
	correct, total := 0, 0
	for _, ex := range data {
		pred := tg.Predict(ex.Tokens)
		for i := range pred {
			total++
			if pred[i] == ex.Labels[i] {
				correct++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

func TestTaggerLearnsCitations(t *testing.T) {
	w := trainTestWorld()
	data := citeCorpus(w, 0, 120)
	if len(data) < 40 {
		t.Fatalf("corpus too small: %d", len(data))
	}
	split := len(data) * 3 / 4
	tg := newCitationTagger(w)
	tg.Train(data[:split], 8)
	acc := tokenAccuracy(tg, data[split:])
	t.Logf("held-out token accuracy (same style) = %.3f", acc)
	if acc < 0.9 {
		t.Errorf("accuracy %.3f too low", acc)
	}
}

func TestTaggerDegradesCrossStyle(t *testing.T) {
	// The paper: "a model learnt to extract Computer Science publications
	// may perform poorly on Physics publications" — train on style 0, test
	// on style 2 (year moves to the front). Accuracy must drop measurably.
	w := trainTestWorld()
	train := citeCorpus(w, 0, 120)
	testSame := citeCorpus(w, 0, 40)
	testCross := citeCorpus(w, 2, 40)
	tg := newCitationTagger(w)
	tg.Train(train, 8)
	same := tokenAccuracy(tg, testSame)
	cross := tokenAccuracy(tg, testCross)
	t.Logf("same-style=%.3f cross-style=%.3f", same, cross)
	if cross >= same {
		t.Errorf("cross-style accuracy %.3f >= same-style %.3f; expected degradation", cross, same)
	}
	if same-cross < 0.05 {
		t.Errorf("degradation %.3f too small to demonstrate sensitivity", same-cross)
	}
}

func TestPredictEmptyAndUntrained(t *testing.T) {
	tg := NewTagger([]string{"A", "B"})
	if got := tg.Predict(nil); got != nil {
		t.Errorf("empty predict = %v", got)
	}
	got := tg.Predict([]string{"x", "y"})
	if len(got) != 2 {
		t.Errorf("untrained predict = %v", got)
	}
}

func TestSpansOf(t *testing.T) {
	tokens := []string{"J", ".", "Smith", ".", "Great", "Paper", ".", "VLDB", "2005", "."}
	labels := []string{"AUTHOR", "AUTHOR", "AUTHOR", "O", "TITLE", "TITLE", "O", "VENUE", "YEAR", "O"}
	spans := SpansOf(tokens, labels)
	if spans[LabelTitle] != "Great Paper" {
		t.Errorf("title = %q", spans[LabelTitle])
	}
	if spans[LabelAuthor] != "J Smith" {
		t.Errorf("author = %q", spans[LabelAuthor])
	}
	if spans[LabelVenue] != "VLDB" || spans[LabelYear] != "2005" {
		t.Errorf("venue/year = %q/%q", spans[LabelVenue], spans[LabelYear])
	}
}

func TestSpansOfSkipsPunctuationOnly(t *testing.T) {
	spans := SpansOf([]string{".", ","}, []string{"TITLE", "TITLE"})
	if _, ok := spans[LabelTitle]; ok {
		t.Error("punctuation-only span kept")
	}
}

func TestCitationExtractorEndToEnd(t *testing.T) {
	w := trainTestWorld()
	tg := newCitationTagger(w)
	tg.Train(citeCorpus(w, 0, 150), 8)
	ce := &CitationExtractor{Tagger: tg}

	// Find a personal homepage rendered in style 0.
	var page *webgen.Page
	for _, p := range w.Pages() {
		if p.Truth.Kind == webgen.KindAuthorHome &&
			strings.HasPrefix(p.Truth.Site, "people.") &&
			len(p.Truth.EntityIDs) > 2 {
			site, _ := w.SiteByHost(p.Truth.Site)
			if site.Style == "homepage-style-0" {
				page = p
				break
			}
		}
	}
	if page == nil {
		t.Skip("no style-0 homepage with enough papers")
	}
	cands := ce.Extract(webgraph.NewPage(page.URL, page.HTML))
	if len(cands) == 0 {
		t.Fatal("no citations extracted")
	}
	// Titles extracted should mostly be real paper titles of this author.
	truthTitles := map[string]bool{}
	for _, id := range page.Truth.EntityIDs {
		if p, ok := w.PaperByID(id); ok {
			truthTitles[strings.ToLower(p.Title)] = true
		}
	}
	hits := 0
	for _, c := range cands {
		if truthTitles[strings.ToLower(c.Get("title"))] {
			hits++
		}
	}
	t.Logf("citation extractor: %d/%d titles exact", hits, len(cands))
	if hits == 0 {
		t.Error("no extracted title matched ground truth")
	}
}

func TestTaggerDeterministic(t *testing.T) {
	w := trainTestWorld()
	data := citeCorpus(w, 0, 60)
	run := func() []string {
		tg := newCitationTagger(w)
		tg.Train(data[:40], 4)
		return tg.Predict(data[45].Tokens)
	}
	if !reflect.DeepEqual(run(), run()) {
		t.Error("training not deterministic")
	}
}

// TestTaggerTransferLearning exercises the §7.2 suggestion: "suppose we
// produce sufficient labeled data to develop a good extractor [for one
// source]; we should not require the full efforts to develop a new
// extractor [for the next]". Fine-tuning the style-0 model with a handful
// of style-2 examples recovers most of the lost accuracy — far fewer labels
// than training style 2 from scratch would need.
func TestTaggerTransferLearning(t *testing.T) {
	w := trainTestWorld()
	trainBase := citeCorpus(w, 0, 120)
	fewShot := citeCorpus(w, 2, 10)
	testCross := citeCorpus(w, 2, 60)[20:] // disjoint from fewShot

	// Baseline: source-style model on the target style.
	base := newCitationTagger(w)
	base.Train(trainBase, 8)
	before := tokenAccuracy(base, testCross)

	// Transfer: continue training with the few target-style labels.
	transfer := newCitationTagger(w)
	transfer.Train(append(append([]Tagged{}, trainBase...), fewShot...), 8)
	after := tokenAccuracy(transfer, testCross)

	// Scratch model with only the same few labels: fine on the target style
	// (the templates are regular) but it has never seen the source style.
	scratch := newCitationTagger(w)
	scratch.Train(fewShot, 8)
	scratchCross := tokenAccuracy(scratch, testCross)
	testSource := citeCorpus(w, 0, 40)
	scratchSource := tokenAccuracy(scratch, testSource)
	transferSource := tokenAccuracy(transfer, testSource)

	t.Logf("target style: base=%.3f transfer=%.3f scratch=%.3f; source style: transfer=%.3f scratch=%.3f",
		before, after, scratchCross, transferSource, scratchSource)
	if after <= before {
		t.Errorf("transfer did not help on the target style: %.3f -> %.3f", before, after)
	}
	if after < 0.85 {
		t.Errorf("transferred accuracy %.3f too low", after)
	}
	// The transfer payoff: one model now covers both styles, which the
	// few-label scratch model does not.
	if transferSource < 0.9 {
		t.Errorf("transfer forgot the source style: %.3f", transferSource)
	}
	if scratchSource >= transferSource {
		t.Errorf("scratch model unexpectedly covers the source style: %.3f >= %.3f",
			scratchSource, transferSource)
	}
}
