package lrec

import (
	"io"
	"os"
)

// storeFS abstracts every filesystem operation the store performs, so tests
// can inject faults — kill a write at any byte offset, fail any syscall —
// and prove the recovery contract instead of assuming it (see fault_test.go
// and crash_test.go). Production code always uses osFS.
type storeFS interface {
	MkdirAll(path string, perm os.FileMode) error
	// Open opens for reading (replay).
	Open(name string) (storeFile, error)
	// OpenFile opens with the given flags (the append-mode log handle).
	OpenFile(name string, flag int, perm os.FileMode) (storeFile, error)
	// Create truncates-or-creates for writing (snapshot tmp, fresh log).
	Create(name string) (storeFile, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	// Truncate cuts the named file to size (torn-tail repair).
	Truncate(name string, size int64) error
	// SyncDir fsyncs the directory itself, making renames and file
	// creations durable — without it a crash can roll back a completed
	// snapshot rename and lose the truncated log's contents with it.
	SyncDir(dir string) error
}

// storeFile is the subset of *os.File the store uses.
type storeFile interface {
	io.Reader
	io.Writer
	io.Closer
	Sync() error
}

// osFS is the real filesystem.
type osFS struct{}

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) Open(name string) (storeFile, error) { return os.Open(name) }

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (storeFile, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) Create(name string) (storeFile, error) { return os.Create(name) }

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
