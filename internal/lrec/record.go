// Package lrec implements the paper's core representation (§2.2): the
// loosely-structured record, or lrec — a flat collection of
// (attribute-key, value) pairs with a distinguished unique id and an
// associated concept — together with concept/domain metadata, provenance
// (lineage), confidence, versions, and a persistent log-structured store
// with secondary indexes.
package lrec

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"conceptweb/internal/textproc"
)

// Errors returned by the package.
var (
	ErrNotFound        = errors.New("lrec: record not found")
	ErrNoID            = errors.New("lrec: record has no id")
	ErrNoConcept       = errors.New("lrec: record has no concept")
	ErrUnknownConcept  = errors.New("lrec: concept not registered")
	ErrDuplicateID     = errors.New("lrec: duplicate record id")
	ErrConceptMismatch = errors.New("lrec: merging records of different concepts")
)

// Provenance records where a value came from: the source document and the
// chain of operators that produced it (§7.3 "managing lineage"). Seq is the
// store's logical clock at extraction time, giving a total order without
// wall-clock nondeterminism.
type Provenance struct {
	SourceURL string
	Operators []string
	Seq       uint64
}

// String renders the provenance compactly, e.g.
// "welp.example/biz/gochi via listextract>match @17".
func (p Provenance) String() string {
	ops := strings.Join(p.Operators, ">")
	if ops == "" {
		ops = "?"
	}
	return fmt.Sprintf("%s via %s @%d", p.SourceURL, ops, p.Seq)
}

// AttrValue is one extracted value of an attribute, with its confidence
// in (0, 1] and provenance. A record may hold several AttrValues for one
// key — conflicting phone numbers from two sources, say — which is exactly
// the uncertainty §7.3 requires us to track rather than discard.
type AttrValue struct {
	Value      string
	Confidence float64
	Prov       Provenance
	// Support counts how many independent extractions produced this value
	// (duplicates merged by Add accumulate here); reconciliation prefers
	// well-supported values.
	Support int
}

// Record is a loosely-structured record: a concept name, a unique ID, and
// multi-valued attributes. The zero value is empty but usable.
type Record struct {
	ID      string
	Concept string
	Attrs   map[string][]AttrValue
	Version uint64
	Deleted bool
}

// NewRecord returns an empty record of the given concept.
func NewRecord(id, concept string) *Record {
	return &Record{ID: id, Concept: concept, Attrs: make(map[string][]AttrValue)}
}

// Set replaces all values of key with the single given value at full
// confidence and no provenance — convenient for ground truth and tests.
func (r *Record) Set(key, value string) *Record {
	if r.Attrs == nil {
		r.Attrs = make(map[string][]AttrValue)
	}
	r.Attrs[key] = []AttrValue{{Value: value, Confidence: 1}}
	return r
}

// Add appends a value for key, keeping existing values. Duplicate values
// (after normalization) are merged, keeping the higher confidence and the
// earlier provenance.
func (r *Record) Add(key string, v AttrValue) {
	if r.Attrs == nil {
		r.Attrs = make(map[string][]AttrValue)
	}
	if v.Confidence <= 0 || v.Confidence > 1 {
		v.Confidence = clamp01(v.Confidence)
	}
	if v.Support <= 0 {
		v.Support = 1
	}
	norm := textproc.Normalize(v.Value)
	for i, old := range r.Attrs[key] {
		if textproc.Normalize(old.Value) == norm {
			if v.Confidence > old.Confidence {
				old.Confidence = v.Confidence
				old.Value = v.Value
			}
			old.Support += v.Support
			r.Attrs[key][i] = old
			return
		}
	}
	r.Attrs[key] = append(r.Attrs[key], v)
}

func clamp01(c float64) float64 {
	if c <= 0 {
		return 0.01
	}
	if c > 1 {
		return 1
	}
	return c
}

// Get returns the highest-confidence value for key, or "" if absent.
func (r *Record) Get(key string) string {
	v, ok := r.Best(key)
	if !ok {
		return ""
	}
	return v.Value
}

// Best returns the highest-confidence AttrValue for key. Ties are broken by
// lexicographic value for determinism.
func (r *Record) Best(key string) (AttrValue, bool) {
	vals := r.Attrs[key]
	if len(vals) == 0 {
		return AttrValue{}, false
	}
	best := vals[0]
	for _, v := range vals[1:] {
		if v.Confidence > best.Confidence ||
			(v.Confidence == best.Confidence && v.Value < best.Value) {
			best = v
		}
	}
	return best, true
}

// All returns every value stored for key (may be empty).
func (r *Record) All(key string) []AttrValue { return r.Attrs[key] }

// Keys returns the record's attribute keys in sorted order.
func (r *Record) Keys() []string {
	keys := make([]string, 0, len(r.Attrs))
	for k := range r.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Has reports whether the record has at least one value for key.
func (r *Record) Has(key string) bool { return len(r.Attrs[key]) > 0 }

// Confidence returns the record-level confidence: the mean of the best
// per-attribute confidences. An empty record has confidence 0.
func (r *Record) Confidence() float64 {
	if len(r.Attrs) == 0 {
		return 0
	}
	var sum float64
	for k := range r.Attrs {
		if v, ok := r.Best(k); ok {
			sum += v.Confidence
		}
	}
	return sum / float64(len(r.Attrs))
}

// Clone returns a deep copy of the record.
func (r *Record) Clone() *Record {
	c := &Record{ID: r.ID, Concept: r.Concept, Version: r.Version, Deleted: r.Deleted}
	c.Attrs = make(map[string][]AttrValue, len(r.Attrs))
	for k, vals := range r.Attrs {
		cp := make([]AttrValue, len(vals))
		copy(cp, vals)
		// Deep-copy the operator slices inside provenance.
		for i := range cp {
			if len(cp[i].Prov.Operators) > 0 {
				ops := make([]string, len(cp[i].Prov.Operators))
				copy(ops, cp[i].Prov.Operators)
				cp[i].Prov.Operators = ops
			}
		}
		c.Attrs[k] = cp
	}
	return c
}

// Merge folds other's attribute values into r. Both records must belong to
// the same concept. r keeps its ID; this is the primitive the entity-matching
// layer uses after deciding two records are co-referent.
func (r *Record) Merge(other *Record) error {
	if other.Concept != r.Concept {
		return fmt.Errorf("%w: %q vs %q", ErrConceptMismatch, r.Concept, other.Concept)
	}
	for k, vals := range other.Attrs {
		for _, v := range vals {
			r.Add(k, v)
		}
	}
	return nil
}

// FlatText renders the record as searchable text: "key value" pairs of the
// best values, sorted by key. This is how lrecs are fed to the inverted
// index, per the paper's stipulation that the representation stay compatible
// with search-engine infrastructure.
func (r *Record) FlatText() string {
	var b strings.Builder
	for _, k := range r.Keys() {
		if v, ok := r.Best(k); ok {
			b.WriteString(k)
			b.WriteByte(' ')
			b.WriteString(v.Value)
			b.WriteByte(' ')
		}
	}
	return strings.TrimSpace(b.String())
}

// String renders the record for debugging.
func (r *Record) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s[%s]{", r.Concept, r.ID)
	for i, k := range r.Keys() {
		if i > 0 {
			b.WriteString(", ")
		}
		v, _ := r.Best(k)
		fmt.Fprintf(&b, "%s=%q", k, v.Value)
	}
	b.WriteByte('}')
	return b.String()
}
