package lrec

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"conceptweb/internal/obs"
	"conceptweb/internal/textproc"
)

// Store is the concept database: a map of records with secondary indexes,
// durably backed by an append-only log plus periodic snapshots. It is the
// "logically centralized and unified store that serves as the basis of query
// processing" (§6). All methods are safe for concurrent use.
//
// Durability model: every Put/Delete appends a framed operation to the log
// and the log is fsynced on Sync/Close. Open replays snapshot + log;
// a torn final frame (crash mid-write) is discarded.
type Store struct {
	mu   sync.RWMutex
	recs map[string]*Record
	// byConcept maps concept name -> set of record ids.
	byConcept map[string]map[string]bool
	// byAttr maps concept \x00 key \x00 normalizedValue -> set of ids.
	byAttr map[string]map[string]bool
	// history holds superseded versions, newest last, capped per record.
	history     map[string][]*Record
	maxVersions int

	seq uint64 // logical clock; advances on every mutation

	dir     string
	logFile *os.File
	logW    *bufio.Writer

	registry *Registry
	metrics  *obs.Registry // nil-safe; counts puts/gets/WAL appends/compactions
}

// StoreOption configures a Store.
type StoreOption func(*Store)

// WithRegistry attaches a concept registry; Puts are then validated.
func WithRegistry(r *Registry) StoreOption {
	return func(s *Store) { s.registry = r }
}

// WithMaxVersions caps retained superseded versions per record (default 4).
func WithMaxVersions(n int) StoreOption {
	return func(s *Store) { s.maxVersions = n }
}

// WithMetrics attaches an observability registry; the store then counts
// puts, gets, deletes, WAL appends, and compactions into it. A nil registry
// keeps the store un-instrumented.
func WithMetrics(m *obs.Registry) StoreOption {
	return func(s *Store) { s.metrics = m }
}

// NewMemStore returns a purely in-memory store (no durability), used by
// tests and short-lived pipelines.
func NewMemStore(opts ...StoreOption) *Store {
	s := &Store{
		recs:        make(map[string]*Record),
		byConcept:   make(map[string]map[string]bool),
		byAttr:      make(map[string]map[string]bool),
		history:     make(map[string][]*Record),
		maxVersions: 4,
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

const (
	logName  = "lrec.log"
	snapName = "lrec.snap"
)

// Open opens (or creates) a durable store in dir, replaying any snapshot and
// log found there.
func Open(dir string, opts ...StoreOption) (*Store, error) {
	s := NewMemStore(opts...)
	s.dir = dir
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("lrec: open: %w", err)
	}
	if err := s.replayFile(filepath.Join(dir, snapName)); err != nil {
		return nil, err
	}
	if err := s.replayFile(filepath.Join(dir, logName)); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, logName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("lrec: open log: %w", err)
	}
	s.logFile = f
	s.logW = bufio.NewWriter(f)
	return s, nil
}

// replayFile applies the operations in path, ignoring a missing file and
// stopping cleanly at a torn tail.
func (s *Store) replayFile(path string) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("lrec: replay %s: %w", path, err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	for {
		op, r, err := readFrame(br)
		switch err {
		case nil:
		case io.EOF, errTornTail:
			return nil
		default:
			return fmt.Errorf("lrec: replay %s: %w", path, err)
		}
		switch op {
		case opPut:
			s.applyPut(r)
		case opDelete:
			s.applyDelete(r.ID)
		}
		if r.Version > s.seq {
			s.seq = r.Version
		}
	}
}

// NextSeq atomically advances and returns the store's logical clock,
// used to stamp provenance.
func (s *Store) NextSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	return s.seq
}

// Put inserts or replaces the record with r.ID. The stored copy is
// independent of r. Version is assigned by the store.
func (s *Store) Put(r *Record) error {
	if r.ID == "" {
		return ErrNoID
	}
	if r.Concept == "" {
		return ErrNoConcept
	}
	if s.registry != nil {
		// Only concept existence is checked at write time; multiplicity
		// constraints are tolerated and resolved later by reconciliation
		// (§7.3 tolerate-then-reconcile), via Registry.Validate.
		if _, ok := s.registry.Lookup(r.Concept); !ok {
			return fmt.Errorf("%w: %q", ErrUnknownConcept, r.Concept)
		}
	}
	s.metrics.Counter("lrec.puts").Inc()
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := r.Clone()
	s.seq++
	cp.Version = s.seq
	cp.Deleted = false
	s.applyPut(cp)
	return s.logOp(opPut, cp)
}

// applyPut installs cp into maps and indexes; caller holds mu.
func (s *Store) applyPut(cp *Record) {
	if old, ok := s.recs[cp.ID]; ok {
		s.unindex(old)
		s.pushHistory(old)
	}
	s.recs[cp.ID] = cp
	s.indexRec(cp)
}

func (s *Store) pushHistory(old *Record) {
	h := append(s.history[old.ID], old)
	if len(h) > s.maxVersions {
		h = h[len(h)-s.maxVersions:]
	}
	s.history[old.ID] = h
}

// Delete removes the record (a tombstone is logged so replay converges).
func (s *Store) Delete(id string) error {
	s.metrics.Counter("lrec.deletes").Inc()
	s.mu.Lock()
	defer s.mu.Unlock()
	old, ok := s.recs[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	s.seq++
	s.applyDelete(id)
	tomb := &Record{ID: id, Concept: old.Concept, Version: s.seq, Deleted: true}
	return s.logOp(opDelete, tomb)
}

func (s *Store) applyDelete(id string) {
	old, ok := s.recs[id]
	if !ok {
		return
	}
	s.unindex(old)
	s.pushHistory(old)
	delete(s.recs, id)
}

func (s *Store) logOp(op byte, r *Record) error {
	if s.logW == nil {
		return nil
	}
	if err := writeFrame(s.logW, op, r); err != nil {
		return fmt.Errorf("lrec: log write: %w", err)
	}
	s.metrics.Counter("lrec.wal.appends").Inc()
	return nil
}

func attrKey(concept, key, normVal string) string {
	return concept + "\x00" + key + "\x00" + normVal
}

func (s *Store) indexRec(r *Record) {
	set := s.byConcept[r.Concept]
	if set == nil {
		set = make(map[string]bool)
		s.byConcept[r.Concept] = set
	}
	set[r.ID] = true
	for k, vals := range r.Attrs {
		for _, v := range vals {
			ak := attrKey(r.Concept, k, textproc.Normalize(v.Value))
			m := s.byAttr[ak]
			if m == nil {
				m = make(map[string]bool)
				s.byAttr[ak] = m
			}
			m[r.ID] = true
		}
	}
}

func (s *Store) unindex(r *Record) {
	if set := s.byConcept[r.Concept]; set != nil {
		delete(set, r.ID)
		if len(set) == 0 {
			delete(s.byConcept, r.Concept)
		}
	}
	for k, vals := range r.Attrs {
		for _, v := range vals {
			ak := attrKey(r.Concept, k, textproc.Normalize(v.Value))
			if m := s.byAttr[ak]; m != nil {
				delete(m, r.ID)
				if len(m) == 0 {
					delete(s.byAttr, ak)
				}
			}
		}
	}
}

// Get returns a copy of the record with the given id.
func (s *Store) Get(id string) (*Record, error) {
	s.metrics.Counter("lrec.gets").Inc()
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.recs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return r.Clone(), nil
}

// Len returns the number of live records.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.recs)
}

// ByConcept returns copies of all records of the concept, sorted by ID.
func (s *Store) ByConcept(concept string) []*Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := sortedIDs(s.byConcept[concept])
	out := make([]*Record, len(ids))
	for i, id := range ids {
		out[i] = s.recs[id].Clone()
	}
	return out
}

// CountByConcept returns the number of live records of the concept.
func (s *Store) CountByConcept(concept string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byConcept[concept])
}

// ByAttr returns copies of the concept's records having the given attribute
// value (compared after normalization), sorted by ID.
func (s *Store) ByAttr(concept, key, value string) []*Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := sortedIDs(s.byAttr[attrKey(concept, key, textproc.Normalize(value))])
	out := make([]*Record, len(ids))
	for i, id := range ids {
		out[i] = s.recs[id].Clone()
	}
	return out
}

func sortedIDs(set map[string]bool) []string {
	ids := make([]string, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Scan calls fn for every live record in sorted-ID order. fn receives a
// shared reference for speed and must not mutate it; return false to stop.
func (s *Store) Scan(fn func(*Record) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := make([]string, 0, len(s.recs))
	for id := range s.recs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if !fn(s.recs[id]) {
			return
		}
	}
}

// Versions returns copies of superseded versions of id, oldest first.
// The live version is not included.
func (s *Store) Versions(id string) []*Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	h := s.history[id]
	out := make([]*Record, len(h))
	for i, r := range h {
		out[i] = r.Clone()
	}
	return out
}

// Concepts returns the concept names with at least one live record, sorted.
func (s *Store) Concepts() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.byConcept))
	for c := range s.byConcept {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Sync flushes buffered log writes to the OS and fsyncs the log file.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncLocked()
}

func (s *Store) syncLocked() error {
	if s.logW == nil {
		return nil
	}
	if err := s.logW.Flush(); err != nil {
		return fmt.Errorf("lrec: sync: %w", err)
	}
	if err := s.logFile.Sync(); err != nil {
		return fmt.Errorf("lrec: sync: %w", err)
	}
	return nil
}

// Compact writes a snapshot of the live records and truncates the log,
// bounding recovery time. Safe to call at any point between mutations.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dir == "" {
		return nil
	}
	s.metrics.Counter("lrec.compactions").Inc()
	tmp := filepath.Join(s.dir, snapName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("lrec: compact: %w", err)
	}
	w := bufio.NewWriter(f)
	ids := make([]string, 0, len(s.recs))
	for id := range s.recs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if err := writeFrame(w, opPut, s.recs[id]); err != nil {
			f.Close()
			return fmt.Errorf("lrec: compact: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("lrec: compact: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("lrec: compact: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("lrec: compact: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapName)); err != nil {
		return fmt.Errorf("lrec: compact: %w", err)
	}
	// Truncate the log: everything live is now in the snapshot.
	if s.logFile != nil {
		if err := s.logW.Flush(); err != nil {
			return fmt.Errorf("lrec: compact: %w", err)
		}
		if err := s.logFile.Close(); err != nil {
			return fmt.Errorf("lrec: compact: %w", err)
		}
	}
	f2, err := os.Create(filepath.Join(s.dir, logName))
	if err != nil {
		return fmt.Errorf("lrec: compact: %w", err)
	}
	s.logFile = f2
	s.logW = bufio.NewWriter(f2)
	return nil
}

// Close flushes and closes the store's files. The store must not be used
// afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.logW == nil {
		return nil
	}
	if err := s.syncLocked(); err != nil {
		return err
	}
	err := s.logFile.Close()
	s.logFile = nil
	s.logW = nil
	if err != nil {
		return fmt.Errorf("lrec: close: %w", err)
	}
	return nil
}
