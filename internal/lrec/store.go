package lrec

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"conceptweb/internal/obs"
	"conceptweb/internal/shard"
	"conceptweb/internal/textproc"
)

// Store is the concept database: a map of records with secondary indexes,
// durably backed by an append-only log plus periodic snapshots. It is the
// "logically centralized and unified store that serves as the basis of query
// processing" (§6). All methods are safe for concurrent use.
//
// Internally the store is hash-partitioned into N shards (see WithShards),
// each with its own WAL file, snapshot, mutex, and degraded latch; record
// IDs route to shards with hash(id) % N and the count is pinned in a
// directory manifest so a reopen always routes an ID to the shard that
// logged it. N = 1 (the default) reproduces the pre-sharding single-file
// layout byte for byte, so existing directories open unchanged. Version
// numbers come from one store-wide clock regardless of shard count.
//
// Durability model: every Put/Delete appends a framed operation to its
// shard's log before mutating memory, and logs are fsynced on Sync/Close.
// Open replays snapshot + log per shard; a torn final frame (crash
// mid-write) is truncated away so subsequent appends continue from the last
// good frame, while corruption in the middle of a log (valid frames after a
// bad one) refuses to open with ErrCorrupt rather than silently discarding
// acknowledged writes. A failed log write or fsync latches only the failing
// shard into a degraded read-only state (see Degraded) instead of letting
// memory diverge from the log; sibling shards keep accepting writes.
type Store struct {
	shards []*shardEngine

	// seq is the store-wide logical clock; it advances on every mutation
	// no matter which shard it lands on, so versions stay totally ordered
	// (and deterministic) across any shard count.
	seq atomic.Uint64

	dir         string
	fs          storeFS
	registry    *Registry
	metrics     *obs.Registry // nil-safe; counts puts/gets/WAL appends/compactions
	maxVersions int
	nshards     int // requested via WithShards; 0 = unspecified (manifest or 1)
}

// ErrDegraded wraps the first write/fsync error after which a shard
// refuses mutations; reads keep working. Reopen the directory to recover.
var ErrDegraded = errors.New("lrec: store degraded, read-only")

// RecoveryStats reports what Open found and repaired while replaying.
// For a sharded store the counts are aggregated across shards; use
// ShardStates for the per-shard breakdown.
type RecoveryStats struct {
	SnapshotRecords int   // live records loaded from the snapshot(s)
	LogFrames       int   // frames replayed from the log(s)
	TornTail        bool  // at least one log ended in a torn frame
	TruncatedBytes  int64 // bytes cut from log tails to repair them
}

// ShardState is the per-shard view surfaced through health endpoints: which
// partition, how much data it holds, whether it is latched read-only, and
// what its Open repaired.
type ShardState struct {
	Shard    int
	Records  int
	Degraded string // empty while the shard accepts writes
	Recovery RecoveryStats
	WALBytes int64
	Epoch    uint64
}

// StoreOption configures a Store.
type StoreOption func(*Store)

// WithRegistry attaches a concept registry; Puts are then validated.
func WithRegistry(r *Registry) StoreOption {
	return func(s *Store) { s.registry = r }
}

// WithMaxVersions caps retained superseded versions per record (default 4).
func WithMaxVersions(n int) StoreOption {
	return func(s *Store) { s.maxVersions = n }
}

// WithMetrics attaches an observability registry; the store then counts
// puts, gets, deletes, WAL appends, and compactions into it. A nil registry
// keeps the store un-instrumented.
func WithMetrics(m *obs.Registry) StoreOption {
	return func(s *Store) { s.metrics = m }
}

// WithShards partitions the store into n hash-routed shards, each with its
// own WAL and mutex. n <= 1 keeps the pre-sharding single-file layout. For
// a durable store the count is pinned by the directory manifest on first
// create: reopening with a conflicting explicit count fails rather than
// scattering records across the wrong partitions, and n = 0 (the default)
// means "whatever the directory already is".
func WithShards(n int) StoreOption {
	return func(s *Store) { s.nshards = n }
}

// withFS injects a filesystem implementation. Only the fault-injection
// tests use it (fault_test.go); Open defaults to the real filesystem.
func withFS(fs storeFS) StoreOption {
	return func(s *Store) { s.fs = fs }
}

// NewMemStore returns a purely in-memory store (no durability), used by
// tests and short-lived pipelines.
func NewMemStore(opts ...StoreOption) *Store {
	s := &Store{maxVersions: 4}
	for _, o := range opts {
		o(s)
	}
	n := s.nshards
	if n < 1 {
		n = 1
	}
	s.buildShards(n)
	return s
}

const (
	logName  = "lrec.log"
	snapName = "lrec.snap"
)

// shardFileNames returns the log and snapshot file names for shard i of n.
// A single shard keeps the historical names so pre-sharding directories
// stay byte-compatible in both directions.
func shardFileNames(n, i int) (log, snap string) {
	if n == 1 {
		return logName, snapName
	}
	return fmt.Sprintf("lrec-%02d.wal", i), fmt.Sprintf("lrec-%02d.snap", i)
}

func (s *Store) buildShards(n int) {
	s.shards = make([]*shardEngine, n)
	for i := range s.shards {
		sh := newShard(i, s)
		sh.logName, sh.snapName = shardFileNames(n, i)
		s.shards[i] = sh
	}
}

// shardFor routes a record ID to its shard.
func (s *Store) shardFor(id string) *shardEngine {
	return s.shards[shard.Of(id, len(s.shards))]
}

// Open opens (or creates) a durable store in dir, replaying any snapshot and
// log found there. The shard count is resolved from the directory manifest
// (or the legacy single-file layout) before any shard is touched; see
// WithShards. Shards replay concurrently. A torn log tail (crash mid-append)
// is truncated to the last good frame before that shard's log is reopened
// for appending, so new writes never land after bad bytes — the bug class
// where replay would stop at the old tear forever and silently drop
// everything written after it. Mid-log corruption (a bad frame with valid
// frames after it) fails with ErrCorrupt. Recovery details are available
// from Recovery() and, per shard, ShardStates().
func Open(dir string, opts ...StoreOption) (*Store, error) {
	s := &Store{maxVersions: 4}
	for _, o := range opts {
		o(s)
	}
	s.dir = dir
	if s.fs == nil {
		s.fs = osFS{}
	}
	if err := s.fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("lrec: open: %w", err)
	}
	n, err := resolveShardCount(s.fs, dir, s.nshards)
	if err != nil {
		return nil, err
	}
	s.buildShards(n)
	if n == 1 {
		if err := s.shards[0].open(dir); err != nil {
			return nil, err
		}
	} else {
		errs := make([]error, n)
		var wg sync.WaitGroup
		for i, sh := range s.shards {
			wg.Add(1)
			go func(i int, sh *shardEngine) {
				defer wg.Done()
				errs[i] = sh.open(dir)
			}(i, sh)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				// Release whatever did open; the store is not returned.
				for _, sh := range s.shards {
					sh.closeShard()
				}
				return nil, fmt.Errorf("shard %d: %w", i, err)
			}
		}
	}
	var max uint64
	for _, sh := range s.shards {
		if sh.seq > max {
			max = sh.seq
		}
	}
	s.seq.Store(max)
	return s, nil
}

// Recovery reports what the Open that produced this store found and
// repaired, aggregated across shards: snapshot/log frame counts and any
// torn-tail truncation.
func (s *Store) Recovery() RecoveryStats {
	var agg RecoveryStats
	for _, sh := range s.shards {
		sh.mu.RLock()
		r := sh.recovery
		sh.mu.RUnlock()
		agg.SnapshotRecords += r.SnapshotRecords
		agg.LogFrames += r.LogFrames
		agg.TornTail = agg.TornTail || r.TornTail
		agg.TruncatedBytes += r.TruncatedBytes
	}
	return agg
}

// NumShards returns the store's shard count (1 for unsharded).
func (s *Store) NumShards() int { return len(s.shards) }

// ShardStates returns the per-shard health view, ordered by shard index.
func (s *Store) ShardStates() []ShardState {
	out := make([]ShardState, len(s.shards))
	for i, sh := range s.shards {
		sh.mu.RLock()
		st := ShardState{
			Shard:    i,
			Records:  len(sh.recs),
			Recovery: sh.recovery,
			WALBytes: sh.walOff,
			Epoch:    sh.epoch.Load(),
		}
		if err := sh.degradedErrLocked(); err != nil {
			st.Degraded = err.Error()
		}
		sh.mu.RUnlock()
		out[i] = st
	}
	return out
}

// ShardEpochs returns each shard's mutation epoch, ordered by shard index.
// Serving layers fold this vector into a composed cache-invalidation epoch.
func (s *Store) ShardEpochs() []uint64 {
	out := make([]uint64, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.epoch.Load()
	}
	return out
}

// Degraded returns nil while the store accepts writes, or the latched error
// of the first degraded shard. With multiple shards the error names the
// failed partition; the others keep serving writes, so callers that can
// route around a partition should consult ShardStates instead.
func (s *Store) Degraded() error {
	for i, sh := range s.shards {
		if err := sh.degradedErr(); err != nil {
			if len(s.shards) > 1 {
				return fmt.Errorf("shard %d: %w", i, err)
			}
			return err
		}
	}
	return nil
}

// LatchReadOnly flips every shard into the degraded read-only state, as if
// its first log write had failed with cause. Reads keep working; every
// subsequent Put/Delete returns ErrDegraded. Intended for fault-injection
// tests of layers above the store that must stay consistent when writes
// start failing; there is no un-latch, matching the real failure path.
func (s *Store) LatchReadOnly(cause error) {
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.latch(cause)
		sh.mu.Unlock()
	}
}

// NextSeq atomically advances and returns the store's logical clock,
// used to stamp provenance.
func (s *Store) NextSeq() uint64 {
	return s.seq.Add(1)
}

// AdvanceSeq atomically reserves n consecutive values of the logical clock
// and returns the last one: the reserved range is [ret-n+1, ret]. Callers
// that stamp a batch of provenance entries (the resolve stage's candidate
// fold) reserve once instead of taking the atomic per value, and the counter
// ends exactly where n NextSeq calls would have left it.
func (s *Store) AdvanceSeq(n uint64) uint64 {
	return s.seq.Add(n)
}

// validatePut checks the parts of Put that do not need any lock.
func (s *Store) validatePut(r *Record) error {
	if r.ID == "" {
		return ErrNoID
	}
	if r.Concept == "" {
		return ErrNoConcept
	}
	if s.registry != nil {
		// Only concept existence is checked at write time; multiplicity
		// constraints are tolerated and resolved later by reconciliation
		// (§7.3 tolerate-then-reconcile), via Registry.Validate.
		if _, ok := s.registry.Lookup(r.Concept); !ok {
			return fmt.Errorf("%w: %q", ErrUnknownConcept, r.Concept)
		}
	}
	return nil
}

// Put inserts or replaces the record with r.ID. The stored copy is
// independent of r. Version is assigned by the store. The operation is
// logged before memory is mutated: if the log write fails, the store state
// is unchanged and the failing shard latches read-only (ErrDegraded on
// later writes to it) rather than letting memory diverge from the log.
func (s *Store) Put(r *Record) error {
	if err := s.validatePut(r); err != nil {
		return err
	}
	cp := r.Clone()
	cp.Deleted = false
	return s.shardFor(cp.ID).put(cp, &s.seq)
}

// PutBatch stores recs with up to workers concurrent writers, one per
// shard, and returns a per-record error slice. Versions are assigned
// serially in input order before any write starts, so the resulting store
// state — version numbers included — is identical for every (workers ×
// shards) combination; only wall-clock time changes. A shard that fails
// mid-batch latches degraded and fails its remaining records while other
// shards proceed.
func (s *Store) PutBatch(recs []*Record, workers int) []error {
	errs := make([]error, len(recs))
	clones := make([]*Record, len(recs))
	perShard := make([][]int, len(s.shards))
	for i, r := range recs {
		if err := s.validatePut(r); err != nil {
			errs[i] = err
			continue
		}
		cp := r.Clone()
		cp.Deleted = false
		cp.Version = s.seq.Add(1)
		clones[i] = cp
		si := shard.Of(cp.ID, len(s.shards))
		perShard[si] = append(perShard[si], i)
	}
	if workers <= 1 || len(s.shards) == 1 {
		for _, idxs := range perShard {
			if len(idxs) == 0 {
				continue
			}
			s.shards[shard.Of(clones[idxs[0]].ID, len(s.shards))].putBatch(clones, idxs, errs)
		}
		return errs
	}
	var wg sync.WaitGroup
	for si, idxs := range perShard {
		if len(idxs) == 0 {
			continue
		}
		wg.Add(1)
		go func(sh *shardEngine, idxs []int) {
			defer wg.Done()
			sh.putBatch(clones, idxs, errs)
		}(s.shards[si], idxs)
	}
	wg.Wait()
	return errs
}

// Delete removes the record (a tombstone is logged so replay converges).
// Like Put, the tombstone is logged before memory changes; a failed log
// write leaves the record in place and latches its shard read-only.
func (s *Store) Delete(id string) error {
	return s.shardFor(id).deleteID(id, &s.seq)
}

// Get returns a copy of the record with the given id.
func (s *Store) Get(id string) (*Record, error) {
	return s.shardFor(id).get(id)
}

// Len returns the number of live records.
func (s *Store) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.length()
	}
	return n
}

// ByConcept returns copies of all records of the concept, sorted by ID.
func (s *Store) ByConcept(concept string) []*Record {
	if len(s.shards) == 1 {
		return s.shards[0].byConceptClones(concept)
	}
	var out []*Record
	for _, sh := range s.shards {
		out = append(out, sh.byConceptClones(concept)...)
	}
	if out == nil {
		out = []*Record{}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// CountByConcept returns the number of live records of the concept.
func (s *Store) CountByConcept(concept string) int {
	n := 0
	for _, sh := range s.shards {
		n += sh.countByConcept(concept)
	}
	return n
}

// ByAttr returns copies of the concept's records having the given attribute
// value (compared after normalization), sorted by ID.
func (s *Store) ByAttr(concept, key, value string) []*Record {
	ak := attrKey(concept, key, textproc.Normalize(value))
	if len(s.shards) == 1 {
		return s.shards[0].byAttrClones(ak)
	}
	var out []*Record
	for _, sh := range s.shards {
		out = append(out, sh.byAttrClones(ak)...)
	}
	if out == nil {
		out = []*Record{}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Scan calls fn for every live record in sorted-ID order. fn receives a
// shared reference for speed and must not mutate it; return false to stop.
// All shard read-locks are held for the duration, so the scan observes one
// consistent cut of the store.
func (s *Store) Scan(fn func(*Record) bool) {
	for _, sh := range s.shards {
		sh.mu.RLock()
	}
	defer func() {
		for _, sh := range s.shards {
			sh.mu.RUnlock()
		}
	}()
	total := 0
	for _, sh := range s.shards {
		total += len(sh.recs)
	}
	ids := make([]string, 0, total)
	where := make(map[string]*Record, total)
	for _, sh := range s.shards {
		for id, r := range sh.recs {
			ids = append(ids, id)
			where[id] = r
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		if !fn(where[id]) {
			return
		}
	}
}

// Versions returns copies of superseded versions of id, oldest first.
// The live version is not included.
func (s *Store) Versions(id string) []*Record {
	return s.shardFor(id).versions(id)
}

// Concepts returns the concept names with at least one live record, sorted.
func (s *Store) Concepts() []string {
	set := make(map[string]bool)
	for _, sh := range s.shards {
		sh.conceptNames(set)
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Sync flushes buffered log writes to the OS and fsyncs every shard's log
// file. Only mutations acknowledged by a successful Sync (or Close) are
// guaranteed to survive a crash. A flush or fsync failure latches that
// shard read-only: after a failed fsync the kernel may have dropped the
// dirty pages, so pretending later syncs can succeed would break the
// durability contract. All shards are synced even if one fails; the first
// error is returned.
func (s *Store) Sync() error {
	var first error
	for i, sh := range s.shards {
		if err := sh.sync(); err != nil && first == nil {
			if len(s.shards) > 1 {
				err = fmt.Errorf("shard %d: %w", i, err)
			}
			first = err
		}
	}
	return first
}

// Compact writes a snapshot of the live records and truncates the log,
// per shard, bounding recovery time. Safe to call at any point between
// mutations, and crash-safe at every step (see shard.compact). Every
// shard's snapshot records the store-wide clock, so a reopen resumes
// version numbering correctly even if only some shards have fresh
// snapshots. All shards are compacted even if one fails; the first error
// is returned, and the compactions counter increments only on full
// success so a partially failed pass is visible as a gap.
func (s *Store) Compact() error {
	if s.dir == "" {
		return nil
	}
	clock := s.seq.Load()
	var first error
	for i, sh := range s.shards {
		if err := sh.compact(clock); err != nil && first == nil {
			if len(s.shards) > 1 {
				err = fmt.Errorf("shard %d: %w", i, err)
			}
			first = err
		}
	}
	if first == nil {
		s.metrics.Counter("lrec.compactions").Inc()
	}
	return first
}

// Close flushes and closes the store's files. The store must not be used
// afterwards. File handles are released even on error; a degraded shard
// skips the final sync (its log tail is already suspect and will be handled
// as a torn tail on the next Open) and reports the latched error. All
// shards are closed even if one fails; the first error is returned.
func (s *Store) Close() error {
	var first error
	for i, sh := range s.shards {
		if err := sh.closeShard(); err != nil && first == nil {
			if len(s.shards) > 1 {
				err = fmt.Errorf("shard %d: %w", i, err)
			}
			first = err
		}
	}
	return first
}
