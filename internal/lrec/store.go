package lrec

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"conceptweb/internal/obs"
	"conceptweb/internal/textproc"
)

// Store is the concept database: a map of records with secondary indexes,
// durably backed by an append-only log plus periodic snapshots. It is the
// "logically centralized and unified store that serves as the basis of query
// processing" (§6). All methods are safe for concurrent use.
//
// Durability model: every Put/Delete appends a framed operation to the log
// before mutating memory, and the log is fsynced on Sync/Close. Open replays
// snapshot + log; a torn final frame (crash mid-write) is truncated away so
// subsequent appends continue from the last good frame, while corruption in
// the middle of the log (valid frames after a bad one) refuses to open with
// ErrCorrupt rather than silently discarding acknowledged writes. A failed
// log write or fsync latches the store into a degraded read-only state (see
// Degraded) instead of letting memory diverge from the log.
type Store struct {
	mu   sync.RWMutex
	recs map[string]*Record
	// byConcept maps concept name -> set of record ids.
	byConcept map[string]map[string]bool
	// byAttr maps concept \x00 key \x00 normalizedValue -> set of ids.
	byAttr map[string]map[string]bool
	// history holds superseded versions, newest last, capped per record.
	history     map[string][]*Record
	maxVersions int

	seq uint64 // logical clock; advances on every mutation

	dir     string
	fs      storeFS
	logFile storeFile
	logW    *bufio.Writer

	// degraded, once set, latches the store read-only: the first log write
	// or fsync failure means the on-disk log no longer reflects memory, so
	// accepting further mutations would silently widen the divergence.
	degraded error
	recovery RecoveryStats

	registry *Registry
	metrics  *obs.Registry // nil-safe; counts puts/gets/WAL appends/compactions
}

// ErrDegraded wraps the first write/fsync error after which the store
// refuses mutations; reads keep working. Reopen the directory to recover.
var ErrDegraded = errors.New("lrec: store degraded, read-only")

// RecoveryStats reports what Open found and repaired while replaying.
type RecoveryStats struct {
	SnapshotRecords int   // live records loaded from the snapshot
	LogFrames       int   // frames replayed from the log
	TornTail        bool  // the log ended in a torn frame
	TruncatedBytes  int64 // bytes cut from the log tail to repair it
}

// StoreOption configures a Store.
type StoreOption func(*Store)

// WithRegistry attaches a concept registry; Puts are then validated.
func WithRegistry(r *Registry) StoreOption {
	return func(s *Store) { s.registry = r }
}

// WithMaxVersions caps retained superseded versions per record (default 4).
func WithMaxVersions(n int) StoreOption {
	return func(s *Store) { s.maxVersions = n }
}

// WithMetrics attaches an observability registry; the store then counts
// puts, gets, deletes, WAL appends, and compactions into it. A nil registry
// keeps the store un-instrumented.
func WithMetrics(m *obs.Registry) StoreOption {
	return func(s *Store) { s.metrics = m }
}

// withFS injects a filesystem implementation. Only the fault-injection
// tests use it (fault_test.go); Open defaults to the real filesystem.
func withFS(fs storeFS) StoreOption {
	return func(s *Store) { s.fs = fs }
}

// NewMemStore returns a purely in-memory store (no durability), used by
// tests and short-lived pipelines.
func NewMemStore(opts ...StoreOption) *Store {
	s := &Store{
		recs:        make(map[string]*Record),
		byConcept:   make(map[string]map[string]bool),
		byAttr:      make(map[string]map[string]bool),
		history:     make(map[string][]*Record),
		maxVersions: 4,
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

const (
	logName  = "lrec.log"
	snapName = "lrec.snap"
)

// Open opens (or creates) a durable store in dir, replaying any snapshot and
// log found there. A torn log tail (crash mid-append) is truncated to the
// last good frame before the log is reopened for appending, so new writes
// never land after bad bytes — the bug class where replay would stop at the
// old tear forever and silently drop everything written after it. Mid-log
// corruption (a bad frame with valid frames after it) fails with ErrCorrupt.
// Recovery details are available from Recovery().
func Open(dir string, opts ...StoreOption) (*Store, error) {
	s := NewMemStore(opts...)
	s.dir = dir
	if s.fs == nil {
		s.fs = osFS{}
	}
	if err := s.fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("lrec: open: %w", err)
	}
	if err := s.replaySnapshot(filepath.Join(dir, snapName)); err != nil {
		return nil, err
	}
	logPath := filepath.Join(dir, logName)
	good, size, err := s.replayLog(logPath)
	if err != nil {
		return nil, err
	}
	if good < size {
		// Torn tail: cut the log back to the last good frame so appends
		// resume exactly where replay will next time.
		if err := s.fs.Truncate(logPath, good); err != nil {
			return nil, fmt.Errorf("lrec: open: truncate torn tail: %w", err)
		}
		s.recovery.TornTail = true
		s.recovery.TruncatedBytes = size - good
		s.metrics.Counter("lrec.recovery.torn_tails").Inc()
		s.metrics.Counter("lrec.recovery.truncated_bytes").Add(size - good)
	}
	f, err := s.fs.OpenFile(logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("lrec: open log: %w", err)
	}
	// Make the (possibly just-created) log's directory entry durable.
	if err := s.fs.SyncDir(dir); err != nil {
		f.Close()
		return nil, fmt.Errorf("lrec: open: sync dir: %w", err)
	}
	s.logFile = f
	s.logW = bufio.NewWriter(f)
	return s, nil
}

// Recovery reports what the Open that produced this store found and
// repaired: snapshot/log frame counts and any torn-tail truncation.
func (s *Store) Recovery() RecoveryStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.recovery
}

// Degraded returns nil while the store accepts writes, or the latched error
// after a log write or fsync failure has forced it read-only.
func (s *Store) Degraded() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.degradedErrLocked()
}

func (s *Store) degradedErrLocked() error {
	if s.degraded == nil {
		return nil
	}
	return fmt.Errorf("%w: %v", ErrDegraded, s.degraded)
}

// latch records the first write-path failure and flips the store read-only.
// Caller holds mu.
func (s *Store) latch(err error) {
	if s.degraded == nil {
		s.degraded = err
		s.metrics.Gauge("lrec.degraded").Set(1)
	}
}

// applyFrame applies one replayed operation and advances the clock. opSeq
// frames carry only a Version and exist purely to advance the clock.
func (s *Store) applyFrame(op byte, r *Record) {
	switch op {
	case opPut:
		s.applyPut(r)
	case opDelete:
		s.applyDelete(r.ID)
	}
	if r.Version > s.seq {
		s.seq = r.Version
	}
}

// replaySnapshot applies the snapshot at path. Snapshots are written to a
// temp file, fsynced, and renamed into place, so a valid one is always
// complete: any torn or corrupt frame here is real damage and fails Open.
func (s *Store) replaySnapshot(path string) error {
	f, err := s.fs.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("lrec: replay %s: %w", path, err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	for {
		op, r, _, err := readFrame(br)
		switch {
		case err == nil:
		case err == io.EOF:
			return nil
		case err == errTornTail:
			return fmt.Errorf("lrec: replay %s: %w: snapshot damaged (snapshots are atomic; torn frames here are not a crash artifact)", path, ErrCorrupt)
		default:
			return fmt.Errorf("lrec: replay %s: %w", path, err)
		}
		s.applyFrame(op, r)
		if op == opPut {
			s.recovery.SnapshotRecords++
		}
	}
}

// replayLog applies the log at path and returns the offset just past the
// last good frame plus the file's total size; good < size means a torn tail
// the caller must truncate. A bad frame followed by any CRC-valid frame is
// mid-log corruption and returns ErrCorrupt: truncating there would discard
// acknowledged writes, which is exactly what recovery must never do.
func (s *Store) replayLog(path string) (good, size int64, err error) {
	f, err := s.fs.Open(path)
	if os.IsNotExist(err) {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, fmt.Errorf("lrec: replay %s: %w", path, err)
	}
	defer f.Close()
	// The whole log is read into memory so the tail beyond a bad frame can
	// be scanned for valid frames; Compact bounds log growth, keeping this
	// proportional to one compaction interval rather than store size.
	data, err := io.ReadAll(f)
	if err != nil {
		return 0, 0, fmt.Errorf("lrec: replay %s: %w", path, err)
	}
	size = int64(len(data))
	br := bufio.NewReader(bytes.NewReader(data))
	for {
		op, r, n, err := readFrame(br)
		switch {
		case err == nil:
		case err == io.EOF:
			return good, size, nil
		case err == errTornTail:
			if off := scanValidFrame(data[good:]); off >= 0 {
				return 0, 0, fmt.Errorf("lrec: replay %s: %w: bad frame at offset %d but valid frame at %d — mid-log corruption, refusing to truncate", path, ErrCorrupt, good, good+off)
			}
			return good, size, nil
		default:
			return 0, 0, fmt.Errorf("lrec: replay %s: %w", path, err)
		}
		s.applyFrame(op, r)
		good += n
		s.recovery.LogFrames++
	}
}

// NextSeq atomically advances and returns the store's logical clock,
// used to stamp provenance.
func (s *Store) NextSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	return s.seq
}

// Put inserts or replaces the record with r.ID. The stored copy is
// independent of r. Version is assigned by the store. The operation is
// logged before memory is mutated: if the log write fails, the store state
// is unchanged and the store latches read-only (ErrDegraded on later
// writes) rather than letting memory diverge from the log.
func (s *Store) Put(r *Record) error {
	if r.ID == "" {
		return ErrNoID
	}
	if r.Concept == "" {
		return ErrNoConcept
	}
	if s.registry != nil {
		// Only concept existence is checked at write time; multiplicity
		// constraints are tolerated and resolved later by reconciliation
		// (§7.3 tolerate-then-reconcile), via Registry.Validate.
		if _, ok := s.registry.Lookup(r.Concept); !ok {
			return fmt.Errorf("%w: %q", ErrUnknownConcept, r.Concept)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.degradedErrLocked(); err != nil {
		return err
	}
	cp := r.Clone()
	s.seq++
	cp.Version = s.seq
	cp.Deleted = false
	if err := s.logOp(opPut, cp); err != nil {
		s.latch(err)
		return err
	}
	s.applyPut(cp)
	// Counted after validation and logging so rejected or failed puts do
	// not inflate the metric.
	s.metrics.Counter("lrec.puts").Inc()
	return nil
}

// applyPut installs cp into maps and indexes; caller holds mu.
func (s *Store) applyPut(cp *Record) {
	if old, ok := s.recs[cp.ID]; ok {
		s.unindex(old)
		s.pushHistory(old)
	}
	s.recs[cp.ID] = cp
	s.indexRec(cp)
}

func (s *Store) pushHistory(old *Record) {
	h := append(s.history[old.ID], old)
	if len(h) > s.maxVersions {
		h = h[len(h)-s.maxVersions:]
	}
	s.history[old.ID] = h
}

// Delete removes the record (a tombstone is logged so replay converges).
// Like Put, the tombstone is logged before memory changes; a failed log
// write leaves the record in place and latches the store read-only.
func (s *Store) Delete(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.degradedErrLocked(); err != nil {
		return err
	}
	old, ok := s.recs[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	s.seq++
	tomb := &Record{ID: id, Concept: old.Concept, Version: s.seq, Deleted: true}
	if err := s.logOp(opDelete, tomb); err != nil {
		s.latch(err)
		return err
	}
	s.applyDelete(id)
	// Counted after the not-found check so rejected deletes don't inflate
	// the metric.
	s.metrics.Counter("lrec.deletes").Inc()
	return nil
}

func (s *Store) applyDelete(id string) {
	old, ok := s.recs[id]
	if !ok {
		return
	}
	s.unindex(old)
	s.pushHistory(old)
	delete(s.recs, id)
}

func (s *Store) logOp(op byte, r *Record) error {
	if s.logW == nil {
		return nil
	}
	if err := writeFrame(s.logW, op, r); err != nil {
		return fmt.Errorf("lrec: log write: %w", err)
	}
	s.metrics.Counter("lrec.wal.appends").Inc()
	return nil
}

func attrKey(concept, key, normVal string) string {
	return concept + "\x00" + key + "\x00" + normVal
}

func (s *Store) indexRec(r *Record) {
	set := s.byConcept[r.Concept]
	if set == nil {
		set = make(map[string]bool)
		s.byConcept[r.Concept] = set
	}
	set[r.ID] = true
	for k, vals := range r.Attrs {
		for _, v := range vals {
			ak := attrKey(r.Concept, k, textproc.Normalize(v.Value))
			m := s.byAttr[ak]
			if m == nil {
				m = make(map[string]bool)
				s.byAttr[ak] = m
			}
			m[r.ID] = true
		}
	}
}

func (s *Store) unindex(r *Record) {
	if set := s.byConcept[r.Concept]; set != nil {
		delete(set, r.ID)
		if len(set) == 0 {
			delete(s.byConcept, r.Concept)
		}
	}
	for k, vals := range r.Attrs {
		for _, v := range vals {
			ak := attrKey(r.Concept, k, textproc.Normalize(v.Value))
			if m := s.byAttr[ak]; m != nil {
				delete(m, r.ID)
				if len(m) == 0 {
					delete(s.byAttr, ak)
				}
			}
		}
	}
}

// Get returns a copy of the record with the given id.
func (s *Store) Get(id string) (*Record, error) {
	s.metrics.Counter("lrec.gets").Inc()
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.recs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return r.Clone(), nil
}

// Len returns the number of live records.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.recs)
}

// ByConcept returns copies of all records of the concept, sorted by ID.
func (s *Store) ByConcept(concept string) []*Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := sortedIDs(s.byConcept[concept])
	out := make([]*Record, len(ids))
	for i, id := range ids {
		out[i] = s.recs[id].Clone()
	}
	return out
}

// CountByConcept returns the number of live records of the concept.
func (s *Store) CountByConcept(concept string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byConcept[concept])
}

// ByAttr returns copies of the concept's records having the given attribute
// value (compared after normalization), sorted by ID.
func (s *Store) ByAttr(concept, key, value string) []*Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := sortedIDs(s.byAttr[attrKey(concept, key, textproc.Normalize(value))])
	out := make([]*Record, len(ids))
	for i, id := range ids {
		out[i] = s.recs[id].Clone()
	}
	return out
}

func sortedIDs(set map[string]bool) []string {
	ids := make([]string, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Scan calls fn for every live record in sorted-ID order. fn receives a
// shared reference for speed and must not mutate it; return false to stop.
func (s *Store) Scan(fn func(*Record) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := make([]string, 0, len(s.recs))
	for id := range s.recs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if !fn(s.recs[id]) {
			return
		}
	}
}

// Versions returns copies of superseded versions of id, oldest first.
// The live version is not included.
func (s *Store) Versions(id string) []*Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	h := s.history[id]
	out := make([]*Record, len(h))
	for i, r := range h {
		out[i] = r.Clone()
	}
	return out
}

// Concepts returns the concept names with at least one live record, sorted.
func (s *Store) Concepts() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.byConcept))
	for c := range s.byConcept {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Sync flushes buffered log writes to the OS and fsyncs the log file. Only
// mutations acknowledged by a successful Sync (or Close) are guaranteed to
// survive a crash. A flush or fsync failure latches the store read-only:
// after a failed fsync the kernel may have dropped the dirty pages, so
// pretending later syncs can succeed would break the durability contract.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.degradedErrLocked(); err != nil {
		return err
	}
	return s.syncLocked()
}

func (s *Store) syncLocked() error {
	if s.logW == nil {
		return nil
	}
	if err := s.logW.Flush(); err != nil {
		s.latch(err)
		return fmt.Errorf("lrec: sync: %w", err)
	}
	if err := s.logFile.Sync(); err != nil {
		s.latch(err)
		return fmt.Errorf("lrec: sync: %w", err)
	}
	return nil
}

// Compact writes a snapshot of the live records and truncates the log,
// bounding recovery time. Safe to call at any point between mutations, and
// crash-safe at every step: the snapshot is written to a temp file, fsynced,
// renamed into place, and the rename itself is made durable with a
// directory fsync before the log is touched. The old log handle stays open
// until the fresh log exists, so any mid-compact failure leaves a fully
// working store (the error paths remove the temp file; replaying the new
// snapshot plus the old log is idempotent, so the old log is never unsafe).
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dir == "" {
		return nil
	}
	if err := s.degradedErrLocked(); err != nil {
		return err
	}
	tmp := filepath.Join(s.dir, snapName+".tmp")
	f, err := s.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("lrec: compact: %w", err)
	}
	fail := func(err error) error {
		f.Close()
		s.fs.Remove(tmp)
		return fmt.Errorf("lrec: compact: %w", err)
	}
	w := bufio.NewWriter(f)
	// The clock goes first: the snapshot holds only live records, so if the
	// newest mutation was a Delete its tombstone's version would otherwise
	// be lost and a reopened store would hand out duplicate versions.
	if err := writeFrame(w, opSeq, &Record{Version: s.seq}); err != nil {
		return fail(err)
	}
	ids := make([]string, 0, len(s.recs))
	for id := range s.recs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if err := writeFrame(w, opPut, s.recs[id]); err != nil {
			return fail(err)
		}
	}
	if err := w.Flush(); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		s.fs.Remove(tmp)
		return fmt.Errorf("lrec: compact: %w", err)
	}
	if err := s.fs.Rename(tmp, filepath.Join(s.dir, snapName)); err != nil {
		s.fs.Remove(tmp)
		return fmt.Errorf("lrec: compact: %w", err)
	}
	// Until the rename is fsynced into the directory, a crash could revert
	// to the old snapshot — so the log must not be truncated before this.
	if err := s.fs.SyncDir(s.dir); err != nil {
		return fmt.Errorf("lrec: compact: %w", err)
	}
	// The log is now redundant; replace it. Create the fresh log before
	// releasing the old handle: if Create fails, appends continue on the
	// old log, which remains correct (snapshot + old log replays to the
	// same state).
	f2, err := s.fs.Create(filepath.Join(s.dir, logName))
	if err != nil {
		return fmt.Errorf("lrec: compact: %w", err)
	}
	if s.logFile != nil {
		// Buffered frames are already captured by the snapshot and the log
		// they belong to is obsolete; close errors change nothing durable.
		s.logFile.Close()
	}
	s.logFile = f2
	s.logW = bufio.NewWriter(f2)
	s.metrics.Counter("lrec.compactions").Inc()
	return nil
}

// Close flushes and closes the store's files. The store must not be used
// afterwards. File handles are released even on error; a degraded store
// skips the final sync (its log tail is already suspect and will be handled
// as a torn tail on the next Open) and reports the latched error.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.logW == nil {
		return nil
	}
	degraded := s.degradedErrLocked()
	var syncErr error
	if degraded == nil {
		syncErr = s.syncLocked()
	}
	closeErr := s.logFile.Close()
	s.logFile = nil
	s.logW = nil
	switch {
	case degraded != nil:
		return degraded
	case syncErr != nil:
		return syncErr
	case closeErr != nil:
		return fmt.Errorf("lrec: close: %w", closeErr)
	}
	return nil
}
