package lrec

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestRecordSetGet(t *testing.T) {
	r := NewRecord("r1", "restaurant").Set("name", "Gochi").Set("city", "Cupertino")
	if r.Get("name") != "Gochi" || r.Get("city") != "Cupertino" {
		t.Errorf("record = %s", r)
	}
	if r.Get("missing") != "" {
		t.Error("missing key should be empty")
	}
	if !r.Has("name") || r.Has("missing") {
		t.Error("Has wrong")
	}
}

func TestRecordAddMergesDuplicates(t *testing.T) {
	r := NewRecord("r1", "restaurant")
	r.Add("phone", AttrValue{Value: "408-555-0101", Confidence: 0.5})
	r.Add("phone", AttrValue{Value: "(408) 555 0101", Confidence: 0.9}) // same after normalization
	r.Add("phone", AttrValue{Value: "408-555-0202", Confidence: 0.7})
	if n := len(r.All("phone")); n != 2 {
		t.Fatalf("got %d phone values, want 2: %+v", n, r.All("phone"))
	}
	best, _ := r.Best("phone")
	if best.Confidence != 0.9 {
		t.Errorf("best = %+v", best)
	}
}

func TestRecordBestTieBreak(t *testing.T) {
	r := NewRecord("r1", "c")
	r.Add("k", AttrValue{Value: "zeta", Confidence: 0.5})
	r.Add("k", AttrValue{Value: "alpha", Confidence: 0.5})
	best, ok := r.Best("k")
	if !ok || best.Value != "alpha" {
		t.Errorf("best = %+v", best)
	}
}

func TestRecordConfidenceClamping(t *testing.T) {
	r := NewRecord("r1", "c")
	r.Add("a", AttrValue{Value: "x", Confidence: -3})
	r.Add("b", AttrValue{Value: "y", Confidence: 7})
	if v, _ := r.Best("a"); v.Confidence <= 0 || v.Confidence > 1 {
		t.Errorf("a conf = %f", v.Confidence)
	}
	if v, _ := r.Best("b"); v.Confidence != 1 {
		t.Errorf("b conf = %f", v.Confidence)
	}
}

func TestRecordConfidenceAggregate(t *testing.T) {
	r := NewRecord("r1", "c")
	if r.Confidence() != 0 {
		t.Error("empty record confidence should be 0")
	}
	r.Add("a", AttrValue{Value: "x", Confidence: 0.8})
	r.Add("b", AttrValue{Value: "y", Confidence: 0.4})
	if got := r.Confidence(); got < 0.59 || got > 0.61 {
		t.Errorf("confidence = %f", got)
	}
}

func TestRecordClone(t *testing.T) {
	r := NewRecord("r1", "c")
	r.Add("k", AttrValue{Value: "v", Confidence: 1,
		Prov: Provenance{SourceURL: "u", Operators: []string{"op1"}}})
	c := r.Clone()
	c.Add("k", AttrValue{Value: "other", Confidence: 1})
	c.Attrs["k"][0].Prov.Operators[0] = "mutated"
	if len(r.All("k")) != 1 {
		t.Error("clone shares value slice")
	}
	if r.Attrs["k"][0].Prov.Operators[0] != "op1" {
		t.Error("clone shares operator slice")
	}
}

func TestRecordMerge(t *testing.T) {
	a := NewRecord("a", "restaurant").Set("name", "Gochi")
	b := NewRecord("b", "restaurant").Set("city", "Cupertino")
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Get("city") != "Cupertino" || a.ID != "a" {
		t.Errorf("merged = %s", a)
	}
	c := NewRecord("c", "person")
	if err := a.Merge(c); !errors.Is(err, ErrConceptMismatch) {
		t.Errorf("err = %v", err)
	}
}

func TestRecordKeysSortedAndFlatText(t *testing.T) {
	r := NewRecord("r1", "c").Set("zeta", "1").Set("alpha", "2")
	if got := r.Keys(); !reflect.DeepEqual(got, []string{"alpha", "zeta"}) {
		t.Errorf("Keys = %v", got)
	}
	if got := r.FlatText(); got != "alpha 2 zeta 1" {
		t.Errorf("FlatText = %q", got)
	}
}

func TestProvenanceString(t *testing.T) {
	p := Provenance{SourceURL: "site/page", Operators: []string{"list", "match"}, Seq: 3}
	if got := p.String(); !strings.Contains(got, "list>match") || !strings.Contains(got, "@3") {
		t.Errorf("String = %q", got)
	}
	if got := (Provenance{SourceURL: "u"}).String(); !strings.Contains(got, "?") {
		t.Errorf("empty ops = %q", got)
	}
}

func TestRegistryRegisterAndEvolve(t *testing.T) {
	g := NewRegistry()
	g.Register(Concept{Name: "restaurant", Domain: "local",
		Attrs: []AttrSpec{{Key: "name", Kind: KindName}, {Key: "zip", Kind: KindZip, MaxValues: 1}}})
	// Re-register with a new attribute: additive evolution.
	g.Register(Concept{Name: "restaurant",
		Attrs: []AttrSpec{{Key: "menu", Kind: KindText}}})
	c, ok := g.Lookup("restaurant")
	if !ok {
		t.Fatal("lookup failed")
	}
	if len(c.Attrs) != 3 {
		t.Errorf("attrs = %v", c.AttrKeys())
	}
	if c.Domain != "local" {
		t.Errorf("domain = %q", c.Domain)
	}
	if _, ok := c.Spec("zip"); !ok {
		t.Error("zip spec missing")
	}
}

func TestRegistryDomains(t *testing.T) {
	g := NewRegistry()
	g.Register(Concept{Name: "restaurant", Domain: "local"})
	g.Register(Concept{Name: "review", Domain: "local"})
	g.Register(Concept{Name: "paper", Domain: "academic"})
	if got := g.Domain("local"); !reflect.DeepEqual(got, []string{"restaurant", "review"}) {
		t.Errorf("Domain(local) = %v", got)
	}
	if got := g.Domains(); !reflect.DeepEqual(got, []string{"academic", "local"}) {
		t.Errorf("Domains = %v", got)
	}
	if got := g.Names(); len(got) != 3 {
		t.Errorf("Names = %v", got)
	}
}

func TestRegistryValidate(t *testing.T) {
	g := NewRegistry()
	g.Register(Concept{Name: "restaurant", Domain: "local",
		Attrs: []AttrSpec{{Key: "name"}, {Key: "zip", MaxValues: 1}}})

	r := NewRecord("r1", "restaurant").Set("name", "Gochi")
	r.Set("surprise", "extra")
	unknown, err := g.Validate(r)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(unknown, []string{"surprise"}) {
		t.Errorf("unknown = %v", unknown)
	}

	r2 := NewRecord("r2", "restaurant")
	r2.Add("zip", AttrValue{Value: "95054", Confidence: 1})
	r2.Add("zip", AttrValue{Value: "95014", Confidence: 1})
	if _, err := g.Validate(r2); err == nil {
		t.Error("multiplicity violation not caught")
	}

	if _, err := g.Validate(NewRecord("", "restaurant")); !errors.Is(err, ErrNoID) {
		t.Errorf("err = %v", err)
	}
	if _, err := g.Validate(NewRecord("x", "")); !errors.Is(err, ErrNoConcept) {
		t.Errorf("err = %v", err)
	}
	if _, err := g.Validate(NewRecord("x", "alien")); !errors.Is(err, ErrUnknownConcept) {
		t.Errorf("err = %v", err)
	}
}

func TestValueKindString(t *testing.T) {
	if KindZip.String() != "zip" || KindText.String() != "text" {
		t.Error("kind names wrong")
	}
	if got := ValueKind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown kind = %q", got)
	}
}

// randomRecord builds a pseudo-random record for property tests.
func randomRecord(rng *rand.Rand) *Record {
	r := NewRecord(randStr(rng, 8), "concept"+randStr(rng, 2))
	nattrs := rng.Intn(5)
	for i := 0; i < nattrs; i++ {
		key := "k" + randStr(rng, 3)
		nvals := 1 + rng.Intn(3)
		for j := 0; j < nvals; j++ {
			r.Add(key, AttrValue{
				Value:      randStr(rng, 12),
				Confidence: rng.Float64(),
				Prov: Provenance{
					SourceURL: "http://" + randStr(rng, 6),
					Operators: []string{"op" + randStr(rng, 2)},
					Seq:       rng.Uint64() % 1000,
				},
			})
		}
	}
	return r
}

const alpha = "abcdefghijklmnopqrstuvwxyz0123456789 "

func randStr(rng *rand.Rand, n int) string {
	b := make([]byte, 1+rng.Intn(n))
	for i := range b {
		b[i] = alpha[rng.Intn(len(alpha))]
	}
	return string(b)
}

func TestCodecRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		r := randomRecord(rng)
		r.Version = rng.Uint64() % 1e6
		got, err := DecodeRecord(EncodeRecord(r))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(normAttrs(r), normAttrs(got)) ||
			got.ID != r.ID || got.Concept != r.Concept || got.Version != r.Version {
			t.Fatalf("round trip mismatch:\n in: %#v\nout: %#v", r, got)
		}
	}
}

// normAttrs nil-safes empty maps/slices for comparison.
func normAttrs(r *Record) map[string][]AttrValue {
	if len(r.Attrs) == 0 {
		return map[string][]AttrValue{}
	}
	return r.Attrs
}

func TestDecodeGarbage(t *testing.T) {
	f := func(b []byte) bool {
		// Must not panic; errors are fine.
		_, _ = DecodeRecord(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	if _, err := DecodeRecord(nil); err == nil {
		t.Error("nil decode should fail")
	}
}

func TestDecodeTruncated(t *testing.T) {
	r := NewRecord("id", "c").Set("key", "value with some length")
	enc := EncodeRecord(r)
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeRecord(enc[:cut]); err == nil && cut < len(enc)-1 {
			// Some prefixes can decode to a valid shorter record only if
			// lengths happen to align; requiring error for all cuts would be
			// too strict, but it must never panic (reaching here is enough).
			_ = err
		}
	}
}

// Property: whatever values are Added, Best stays in (0,1], Keys stay
// sorted, Support stays positive, and Merge is idempotent.
func TestRecordInvariantsProperty(t *testing.T) {
	f := func(keys []string, vals []string, confs []float64) bool {
		r := NewRecord("id", "c")
		for i := range keys {
			if keys[i] == "" {
				continue
			}
			v, c := "v", 0.5
			if i < len(vals) {
				v = vals[i]
			}
			if i < len(confs) {
				c = confs[i]
			}
			r.Add(keys[i], AttrValue{Value: v, Confidence: c})
		}
		ks := r.Keys()
		for i := 1; i < len(ks); i++ {
			if ks[i-1] >= ks[i] {
				return false
			}
		}
		for _, k := range ks {
			best, ok := r.Best(k)
			if !ok || best.Confidence <= 0 || best.Confidence > 1 || best.Support <= 0 {
				return false
			}
		}
		// Merge idempotence: merging the same record twice equals once.
		a1 := NewRecord("a", "c")
		a1.Merge(r)
		once := fmt.Sprintf("%v", a1.Attrs)
		a1.Merge(r)
		// Support counts grow on re-merge (by design), so compare values
		// and keys only.
		a2 := NewRecord("a", "c")
		a2.Merge(r)
		if fmt.Sprintf("%v", a2.Keys()) != fmt.Sprintf("%v", a1.Keys()) {
			return false
		}
		for _, k := range a1.Keys() {
			if len(a1.All(k)) != len(a2.All(k)) {
				return false // re-merge must not create duplicate values
			}
		}
		_ = once
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
