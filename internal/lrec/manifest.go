package lrec

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// The manifest pins a sharded directory's partition count. Routing is
// hash(id) % N, so N is part of the data layout: reopening with a different
// N would look up every record on the wrong shard and resurrect deleted
// ones from stale partitions. The file exists only for N > 1 — a
// single-shard store is exactly the pre-sharding layout (lrec.log +
// lrec.snap, no manifest), which is what keeps old directories opening
// unchanged and new single-shard directories readable by old builds.
//
// Format (text, one header line then one key-value line):
//
//	lrec manifest v1
//	shards N
const (
	manifestName   = "lrec.manifest"
	manifestHeader = "lrec manifest v1"
)

// readManifest returns the pinned shard count, or 0 if dir has no manifest.
func readManifest(fs storeFS, dir string) (int, error) {
	f, err := fs.Open(filepath.Join(dir, manifestName))
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("lrec: manifest: %w", err)
	}
	defer f.Close()
	data, err := io.ReadAll(io.LimitReader(f, 4096))
	if err != nil {
		return 0, fmt.Errorf("lrec: manifest: %w", err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != 2 || lines[0] != manifestHeader {
		return 0, fmt.Errorf("lrec: manifest: unrecognized format %q", string(data))
	}
	val, ok := strings.CutPrefix(lines[1], "shards ")
	if !ok {
		return 0, fmt.Errorf("lrec: manifest: unrecognized format %q", string(data))
	}
	n, err := strconv.Atoi(val)
	if err != nil || n < 2 {
		return 0, fmt.Errorf("lrec: manifest: bad shard count %q", val)
	}
	return n, nil
}

// writeManifest durably pins n as dir's shard count: temp file, fsync,
// rename, directory fsync — the same discipline as snapshots, so a crash
// during first create leaves either no manifest (and no shard WALs yet) or
// a complete one.
func writeManifest(fs storeFS, dir string, n int) error {
	path := filepath.Join(dir, manifestName)
	tmp := path + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("lrec: manifest: %w", err)
	}
	fail := func(err error) error {
		f.Close()
		fs.Remove(tmp)
		return fmt.Errorf("lrec: manifest: %w", err)
	}
	if _, err := fmt.Fprintf(f, "%s\nshards %d\n", manifestHeader, n); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		fs.Remove(tmp)
		return fmt.Errorf("lrec: manifest: %w", err)
	}
	if err := fs.Rename(tmp, path); err != nil {
		fs.Remove(tmp)
		return fmt.Errorf("lrec: manifest: %w", err)
	}
	if err := fs.SyncDir(dir); err != nil {
		return fmt.Errorf("lrec: manifest: %w", err)
	}
	return nil
}

// resolveShardCount decides how many shards dir has, reconciling the
// manifest, any legacy single-file layout, and the caller's request
// (0 = unspecified). Precedence: an existing manifest wins and a
// conflicting explicit request is an error; an existing legacy layout is
// pinned at 1 the same way; otherwise the directory is fresh and the
// request (durably recorded for n > 1) decides.
func resolveShardCount(fs storeFS, dir string, requested int) (int, error) {
	pinned, err := readManifest(fs, dir)
	if err != nil {
		return 0, err
	}
	if pinned > 0 {
		if requested > 0 && requested != pinned {
			return 0, fmt.Errorf("lrec: open: directory has %d shards (pinned by manifest), cannot reopen with %d — resharding requires a rebuild", pinned, requested)
		}
		return pinned, nil
	}
	if legacyLayout(fs, dir) {
		if requested > 1 {
			return 0, fmt.Errorf("lrec: open: directory has a single-WAL layout, cannot reopen with %d shards — resharding requires a rebuild", requested)
		}
		return 1, nil
	}
	n := requested
	if n < 1 {
		n = 1
	}
	if n > 1 {
		if err := writeManifest(fs, dir, n); err != nil {
			return 0, err
		}
	}
	return n, nil
}

// legacyLayout reports whether dir already holds a pre-sharding single-WAL
// store (lrec.log or lrec.snap present).
func legacyLayout(fs storeFS, dir string) bool {
	for _, name := range []string{logName, snapName} {
		if f, err := fs.Open(filepath.Join(dir, name)); err == nil {
			f.Close()
			return true
		}
	}
	return false
}
